#!/usr/bin/env bash
# Docs lint (wired into ctest as `docs_lint`): every observability name the
# code exports must be documented in OBSERVABILITY.md.
#
# Checked surfaces:
#   * metric names registered in src/ or bench/ — matched by their namespaced
#     quoted form ("smr.x", "ordering.x", "frontend.x", "consensus.x",
#     "sim.x", "runtime.x", "runner.x", "transport.x", "storage.x"), which
#     survives line-wrapped registry calls. Test-only fake names (tests/) are
#     deliberately out of scope.
#   * the eight trace stage names from obs::trace_stage_name.
#
# Exits nonzero listing every undocumented name.
set -u

repo="$(cd "$(dirname "$0")/.." && pwd)"
doc="$repo/OBSERVABILITY.md"
fail=0

if [ ! -f "$doc" ]; then
  echo "docs_lint: $doc is missing"
  exit 1
fi

names="$(grep -rhoE '"(smr|ordering|frontend|consensus|sim|runtime|runner|transport|storage)\.[a-z0-9_]+"' \
  "$repo/src" "$repo/bench" | tr -d '"' | sort -u)"
if [ -z "$names" ]; then
  echo "docs_lint: found no registered metric names under src/ or bench/"
  exit 1
fi

checked=0
for name in $names; do
  checked=$((checked + 1))
  if ! grep -qF "$name" "$doc"; then
    echo "docs_lint: metric '$name' is registered in code but missing from OBSERVABILITY.md"
    fail=1
  fi
done

for stage in submit propose write_quorum accept blockcut sign push frontend_accept; do
  if ! grep -qE "(^|[^a-z_])$stage([^a-z_]|$)" "$doc"; then
    echo "docs_lint: trace stage '$stage' missing from OBSERVABILITY.md"
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "docs_lint: $checked metric names + 8 trace stages documented"
fi
exit "$fail"

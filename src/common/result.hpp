// Lightweight expected-style result for operations whose failure is a normal
// outcome (signature verification, message decoding, policy evaluation).
// Exceptions remain reserved for programming and configuration errors.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace bft {

template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional value conversion.
  Result(T value) : value_(std::move(value)) {}

  static Result failure(std::string error) {
    Result r;
    r.error_ = std::move(error);
    return r;
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    require_ok();
    return *value_;
  }
  T& value() & {
    require_ok();
    return *value_;
  }
  T take() && {
    require_ok();
    return std::move(*value_);
  }

  const std::string& error() const { return error_; }

 private:
  Result() = default;
  void require_ok() const {
    if (!ok()) throw std::logic_error("Result::value on failure: " + error_);
  }

  std::optional<T> value_;
  std::string error_;
};

/// Result with no payload — success or an error message.
class Status {
 public:
  static Status ok() { return Status(); }
  static Status failure(std::string error) {
    Status s;
    s.error_ = std::move(error);
    s.ok_ = false;
    return s;
  }

  bool is_ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  const std::string& error() const { return error_; }

 private:
  bool ok_ = true;
  std::string error_;
};

}  // namespace bft

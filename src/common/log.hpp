// Tiny leveled logger.
//
// Thread-safe, writes to stderr, off-by-default below `warn` so benchmark
// output stays clean. Use BFT_LOG(info) << "..."; the stream is only
// materialized when the level is enabled.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace bft {

enum class LogLevel { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {

void emit_log(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { emit_log(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace bft

#define BFT_LOG(level)                                  \
  if (::bft::LogLevel::level < ::bft::log_level()) {    \
  } else                                                \
    ::bft::detail::LogLine(::bft::LogLevel::level)

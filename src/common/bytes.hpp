// Byte-buffer primitives shared by every module.
//
// A `Bytes` value is the universal currency of the system: envelopes, blocks,
// signatures and wire messages are all carried as owned byte vectors, with
// `ByteView` used on read-only paths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bft {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Immutable, cheaply copyable byte buffer: a refcounted handle to an owned
/// `Bytes`. This is the currency of message fan-out — a replica broadcasting
/// one encoded batch to n-1 peers hands every runtime/transport layer the
/// same underlying allocation instead of deep-copying per destination.
/// Implicitly constructible from `Bytes` so `env().send(to, encode_x(...))`
/// call sites need no change.
class Payload {
 public:
  /// Empty payload (shares a process-wide empty buffer; never null).
  Payload();
  /// Takes ownership of `data` — the one allocation all copies share.
  Payload(Bytes data);  // NOLINT(google-explicit-constructor)
  /// Adopts an existing shared buffer (must not be null).
  explicit Payload(std::shared_ptr<const Bytes> data);

  ByteView view() const { return ByteView(data_->data(), data_->size()); }
  const Bytes& bytes() const { return *data_; }
  std::size_t size() const { return data_->size(); }
  bool empty() const { return data_->empty(); }

  /// Number of Payload handles sharing the buffer (introspection for tests
  /// proving single-allocation broadcast).
  long use_count() const { return data_.use_count(); }
  /// Stable identity of the underlying allocation.
  const Bytes* buffer_id() const { return data_.get(); }

  /// Copies the contents out into a fresh owned vector.
  Bytes to_bytes() const { return *data_; }

 private:
  std::shared_ptr<const Bytes> data_;
};

/// Renders `data` as lowercase hexadecimal ("" for empty input).
std::string to_hex(ByteView data);

/// Parses lowercase/uppercase hex into bytes. Throws std::invalid_argument on
/// odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Copies a string's bytes (no encoding transformation).
Bytes to_bytes(std::string_view text);

/// Interprets bytes as text (caller asserts the payload is printable).
std::string to_string(ByteView data);

/// Appends `src` to `dst`.
void append(Bytes& dst, ByteView src);

/// Concatenates any number of byte views.
Bytes concat(std::initializer_list<ByteView> parts);

/// Constant-time equality; use for comparing MACs/signatures.
bool constant_time_equal(ByteView a, ByteView b);

}  // namespace bft

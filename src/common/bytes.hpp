// Byte-buffer primitives shared by every module.
//
// A `Bytes` value is the universal currency of the system: envelopes, blocks,
// signatures and wire messages are all carried as owned byte vectors, with
// `ByteView` used on read-only paths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bft {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Renders `data` as lowercase hexadecimal ("" for empty input).
std::string to_hex(ByteView data);

/// Parses lowercase/uppercase hex into bytes. Throws std::invalid_argument on
/// odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Copies a string's bytes (no encoding transformation).
Bytes to_bytes(std::string_view text);

/// Interprets bytes as text (caller asserts the payload is printable).
std::string to_string(ByteView data);

/// Appends `src` to `dst`.
void append(Bytes& dst, ByteView src);

/// Concatenates any number of byte views.
Bytes concat(std::initializer_list<ByteView> parts);

/// Constant-time equality; use for comparing MACs/signatures.
bool constant_time_equal(ByteView a, ByteView b);

}  // namespace bft

// Minimal deterministic binary serialization.
//
// All wire messages, block framing and digests use this format so that two
// replicas always produce byte-identical encodings for equal values:
//   * fixed-width integers are little-endian;
//   * byte strings / vectors are length-prefixed with a u32;
//   * no padding, no alignment, no implementation-defined layout.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace bft {

/// Error thrown by Reader on truncated or malformed input.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends encoded values to an owned buffer.
class Writer {
 public:
  Writer() = default;
  explicit Writer(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed byte string.
  void bytes(ByteView v);
  /// Length-prefixed UTF-8 string.
  void str(std::string_view v);
  /// Raw bytes with NO length prefix (for fixed-size fields like hashes).
  void raw(ByteView v);

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Consumes encoded values from a non-owned view.
class Reader {
 public:
  explicit Reader(ByteView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool boolean();

  Bytes bytes();
  std::string str();
  /// Reads exactly `n` raw bytes (fixed-size fields).
  Bytes raw(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  /// Clamp an attacker-controlled element count for container reserve():
  /// never pre-allocate more elements than the remaining bytes could encode.
  std::size_t safe_reserve(std::uint32_t claimed_count) const {
    return std::min<std::size_t>(claimed_count, remaining());
  }
  bool done() const { return remaining() == 0; }
  /// Throws DecodeError unless the whole input was consumed.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace bft

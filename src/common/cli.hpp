// Minimal command-line flag parsing for benches and examples.
// Supports `--name value` and `--name=value`; unknown flags are an error so
// experiment scripts fail loudly on typos.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace bft {

class CliFlags {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input.
  CliFlags(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Flags the caller never queried (typo detection); empty when all consumed.
  std::string unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace bft

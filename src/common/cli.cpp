#include "common/cli.hpp"

#include <stdexcept>

namespace bft {

CliFlags::CliFlags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
      throw std::invalid_argument("unexpected argument: " + arg);
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

bool CliFlags::has(const std::string& name) const {
  used_[name] = true;
  return values_.count(name) > 0;
}

std::string CliFlags::get(const std::string& name, const std::string& fallback) const {
  used_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliFlags::get_int(const std::string& name, std::int64_t fallback) const {
  auto v = get(name, "");
  return v.empty() ? fallback : std::stoll(v);
}

double CliFlags::get_double(const std::string& name, double fallback) const {
  auto v = get(name, "");
  return v.empty() ? fallback : std::stod(v);
}

bool CliFlags::get_bool(const std::string& name, bool fallback) const {
  auto v = get(name, "");
  if (v.empty()) return fallback;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("flag --" + name + ": expected boolean, got " + v);
}

std::string CliFlags::unused() const {
  std::string out;
  for (const auto& [k, v] : values_) {
    (void)v;
    if (!used_.count(k)) {
      if (!out.empty()) out += ", ";
      out += "--" + k;
    }
  }
  return out;
}

}  // namespace bft

#include "common/rng.hpp"

#include <cmath>

namespace bft {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : uniform(span));
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::gaussian() {
  double u1;
  do {
    u1 = uniform01();
  } while (u1 == 0.0);
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double Rng::lognormal_factor(double sigma) {
  // exp(N(-sigma^2/2, sigma)) has mean exactly 1.
  return std::exp(gaussian() * sigma - 0.5 * sigma * sigma);
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i < n) {
    std::uint64_t r = next();
    for (int b = 0; b < 8 && i < n; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(r >> (8 * b));
    }
  }
  return out;
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace bft

// Deterministic pseudo-random generation.
//
// All simulation randomness flows through `Rng` (xoshiro256**, seeded via
// SplitMix64) so that every benchmark run is reproducible from a single seed.
// Never use std::random_device / rand() inside the simulator.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace bft {

/// xoshiro256** seeded deterministically; also satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias; bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Exponential with the given mean (> 0); used for Poisson arrivals.
  double exponential(double mean);

  /// Log-normal shaped jitter: returns a multiplicative factor with mean ~1
  /// and the given coefficient of variation (sigma of underlying normal).
  double lognormal_factor(double sigma);

  /// Standard normal via Box-Muller.
  double gaussian();

  /// `n` random bytes (test keys, payload filler).
  Bytes bytes(std::size_t n);

  /// Derives an independent child generator (per-node streams).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace bft

#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace bft {

namespace {

std::atomic<LogLevel> g_level{LogLevel::warn};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info:  return "INFO";
    case LogLevel::warn:  return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off:   return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {

void emit_log(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace detail

}  // namespace bft

#include "common/serial.hpp"

namespace bft {

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::bytes(ByteView v) {
  u32(static_cast<std::uint32_t>(v.size()));
  raw(v);
}

void Writer::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void Writer::raw(ByteView v) { buf_.insert(buf_.end(), v.begin(), v.end()); }

void Reader::need(std::size_t n) const {
  if (remaining() < n) throw DecodeError("truncated input");
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

bool Reader::boolean() {
  std::uint8_t v = u8();
  if (v > 1) throw DecodeError("invalid boolean");
  return v == 1;
}

Bytes Reader::bytes() {
  std::uint32_t n = u32();
  return raw(n);
}

std::string Reader::str() {
  std::uint32_t n = u32();
  need(n);
  std::string out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Bytes Reader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

void Reader::expect_done() const {
  if (!done()) throw DecodeError("trailing bytes after message");
}

}  // namespace bft

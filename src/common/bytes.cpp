#include "common/bytes.hpp"

#include <stdexcept>

namespace bft {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: invalid hex character");
}

const std::shared_ptr<const Bytes>& shared_empty_bytes() {
  static const std::shared_ptr<const Bytes> empty =
      std::make_shared<const Bytes>();
  return empty;
}

}  // namespace

Payload::Payload() : data_(shared_empty_bytes()) {}

Payload::Payload(Bytes data)
    : data_(std::make_shared<const Bytes>(std::move(data))) {}

Payload::Payload(std::shared_ptr<const Bytes> data) : data_(std::move(data)) {
  if (data_ == nullptr) data_ = shared_empty_bytes();
}

std::string to_hex(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((hex_nibble(hex[i]) << 4) |
                                            hex_nibble(hex[i + 1])));
  }
  return out;
}

Bytes to_bytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string to_string(ByteView data) {
  return std::string(data.begin(), data.end());
}

void append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

Bytes concat(std::initializer_list<ByteView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) append(out, p);
  return out;
}

bool constant_time_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace bft

#include "crypto/authenticator.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <string>

#include "crypto/hmac.hpp"

namespace bft::crypto {

PrivateKey process_private_key(std::uint32_t id) {
  return PrivateKey::from_seed(to_bytes("bft-process-" + std::to_string(id)));
}

const PublicKey& process_public_key(std::uint32_t id) {
  static std::mutex mutex;
  static std::map<std::uint32_t, PublicKey> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(id);
  if (it == cache.end()) {
    it = cache.emplace(id, process_private_key(id).public_key()).first;
  }
  return it->second;
}

EcdsaAuthenticator::EcdsaAuthenticator(std::uint32_t self)
    : self_(self), key_(process_private_key(self)) {}

Bytes EcdsaAuthenticator::sign_for(std::uint32_t peer,
                                   const Hash256& digest) const {
  (void)peer;  // one ECDSA signature verifies for every recipient
  return key_.sign(digest).to_bytes();
}

bool EcdsaAuthenticator::verify_from(std::uint32_t from, const Hash256& digest,
                                     ByteView signature) const {
  const auto sig = Signature::from_bytes(signature);
  if (!sig.ok()) return false;
  return process_public_key(from).verify(digest, sig.value());
}

Hash256 HmacAuthenticator::session_key(std::uint32_t peer) const {
  // Symmetric derivation: both ends hash the same (lo, hi) pair, so the pair
  // shares one MAC key. Rooted in the deterministic per-process key material
  // the simulated PKI hands out.
  const std::uint32_t lo = std::min(self_, peer);
  const std::uint32_t hi = std::max(self_, peer);
  Bytes seed = to_bytes("bft-hmac-session-" + std::to_string(lo) + "-" +
                        std::to_string(hi));
  const Bytes lo_key = process_private_key(lo).to_bytes();
  const Bytes hi_key = process_private_key(hi).to_bytes();
  seed.insert(seed.end(), lo_key.begin(), lo_key.end());
  seed.insert(seed.end(), hi_key.begin(), hi_key.end());
  return sha256(seed);
}

Bytes HmacAuthenticator::sign_for(std::uint32_t peer,
                                  const Hash256& digest) const {
  const Hash256 key = session_key(peer);
  const Hash256 tag =
      hmac_sha256(ByteView(key.data(), key.size()),
                  ByteView(digest.data(), digest.size()));
  return Bytes(tag.begin(), tag.end());
}

bool HmacAuthenticator::verify_from(std::uint32_t from, const Hash256& digest,
                                    ByteView signature) const {
  const Bytes expected = sign_for(from, digest);
  return constant_time_equal(expected, signature);
}

std::shared_ptr<const Authenticator> make_process_authenticator(
    std::uint32_t self) {
  return std::make_shared<EcdsaAuthenticator>(self);
}

}  // namespace bft::crypto

// Modular arithmetic over a fixed odd 256-bit modulus using Montgomery
// multiplication (CIOS). One instance serves the secp256k1 base field (mod p)
// and another the scalar group (mod n).
//
// Values passed to mul/sqr/pow/inv must already be in Montgomery form
// (via to_mont); add/sub work in either representation as long as both
// operands use the same one.
//
// NOTE: this implementation is *not* constant-time. That is acceptable for a
// research reproduction whose threat model is protocol-level Byzantine
// behaviour, not local side channels; do not reuse for production key
// handling.
#pragma once

#include "crypto/u256.hpp"

namespace bft::crypto {

class ModArith {
 public:
  /// modulus must be odd and > 2^255 (true for secp256k1 p and n).
  explicit ModArith(const U256& modulus);

  const U256& modulus() const { return m_; }
  /// R mod m, i.e. the Montgomery form of 1.
  const U256& mont_one() const { return r_mod_m_; }

  U256 to_mont(const U256& a) const;
  U256 from_mont(const U256& a) const;

  /// (a + b) mod m; operands must be < m.
  U256 add(const U256& a, const U256& b) const;
  /// (a - b) mod m; operands must be < m.
  U256 sub(const U256& a, const U256& b) const;
  /// (-a) mod m.
  U256 neg(const U256& a) const;
  /// Montgomery product: a*b*R^-1 mod m.
  U256 mul(const U256& a, const U256& b) const;
  U256 sqr(const U256& a) const { return mul(a, a); }
  /// Montgomery exponentiation; base in Montgomery form, exponent plain.
  U256 pow(const U256& base, const U256& exp) const;
  /// Modular inverse via Fermat (modulus must be prime); input/output in
  /// Montgomery form. Throws std::domain_error on zero.
  U256 inv(const U256& a) const;

  /// Reduces an arbitrary 256-bit value (not Montgomery form) mod m.
  U256 reduce(const U256& a) const;

 private:
  U256 m_;
  std::uint64_t n0inv_;  // -m^-1 mod 2^64
  U256 r_mod_m_;         // 2^256 mod m
  U256 r2_mod_m_;        // 2^512 mod m
};

}  // namespace bft::crypto

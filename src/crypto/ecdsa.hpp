// ECDSA over secp256k1 with RFC-6979 deterministic nonces and low-s
// normalization. This is the signature scheme the ordering nodes use to sign
// blocks and the endorsing peers use to sign endorsements (the paper uses
// ECDSA via the HLF SDK).
#pragma once

#include "common/result.hpp"
#include "common/rng.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/sha256.hpp"

namespace bft::crypto {

/// 64-byte signature: r || s, both 32-byte big-endian.
struct Signature {
  U256 r;
  U256 s;

  Bytes to_bytes() const;
  static Result<Signature> from_bytes(ByteView data);

  bool operator==(const Signature& other) const {
    return r == other.r && s == other.s;
  }
};

class PublicKey {
 public:
  explicit PublicKey(secp256k1::Affine point) : point_(std::move(point)) {}

  /// 33-byte SEC1 compressed encoding (02/03 prefix + x).
  Bytes to_bytes() const;
  /// Decodes and validates a compressed point.
  static Result<PublicKey> from_bytes(ByteView data);

  /// True iff `sig` is a valid signature on `digest`.
  bool verify(const Hash256& digest, const Signature& sig) const;

  const secp256k1::Affine& point() const { return point_; }
  bool operator==(const PublicKey& other) const { return point_ == other.point_; }

 private:
  secp256k1::Affine point_;
};

class PrivateKey {
 public:
  /// Fresh key from a deterministic generator (tests, simulations).
  static PrivateKey generate(Rng& rng);
  /// Key derived from arbitrary seed material (hashed then reduced mod n).
  static PrivateKey from_seed(ByteView seed);
  /// Exact scalar import; fails unless 0 < d < n.
  static Result<PrivateKey> from_bytes(ByteView data);

  Bytes to_bytes() const { return d_.to_be_bytes(); }
  PublicKey public_key() const;

  /// Deterministic (RFC 6979) signature over a 32-byte digest.
  Signature sign(const Hash256& digest) const;

 private:
  explicit PrivateKey(U256 d) : d_(d) {}
  U256 d_;
};

/// RFC-6979 nonce derivation, exposed for test vectors.
U256 rfc6979_nonce(const U256& priv, const Hash256& digest);

}  // namespace bft::crypto

// HMAC-SHA256 (RFC 2104), used by the RFC-6979 deterministic nonce generator.
#pragma once

#include "crypto/sha256.hpp"

namespace bft::crypto {

/// Streaming HMAC-SHA256 keyed at construction.
class HmacSha256 {
 public:
  explicit HmacSha256(ByteView key);

  void update(ByteView data);
  Hash256 finish();

 private:
  std::array<std::uint8_t, 64> opad_key_;
  Sha256 inner_;
};

/// One-shot convenience.
Hash256 hmac_sha256(ByteView key, ByteView data);

}  // namespace bft::crypto

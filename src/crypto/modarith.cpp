#include "crypto/modarith.hpp"

#include <stdexcept>

namespace bft::crypto {

using u128 = unsigned __int128;

ModArith::ModArith(const U256& modulus) : m_(modulus) {
  if (!modulus.is_odd()) throw std::invalid_argument("ModArith: modulus must be odd");
  if (modulus.highest_bit() != 255) {
    throw std::invalid_argument("ModArith: modulus must be a 256-bit value");
  }

  // Inverse of m[0] mod 2^64 by Newton iteration, then negate.
  std::uint64_t inv = m_.limbs[0];
  for (int i = 0; i < 5; ++i) inv *= 2 - m_.limbs[0] * inv;
  n0inv_ = ~inv + 1;

  // R mod m: since 2^255 < m < 2^256 we have 2^256 mod m == 2^256 - m.
  sub_with_borrow(U256::zero(), m_, r_mod_m_);

  // R^2 mod m by 256 modular doublings of R mod m.
  U256 acc = r_mod_m_;
  for (int i = 0; i < 256; ++i) acc = add(acc, acc);
  r2_mod_m_ = acc;
}

U256 ModArith::add(const U256& a, const U256& b) const {
  U256 sum;
  const std::uint64_t carry = add_with_carry(a, b, sum);
  if (carry != 0 || cmp(sum, m_) >= 0) {
    U256 reduced;
    sub_with_borrow(sum, m_, reduced);
    return reduced;
  }
  return sum;
}

U256 ModArith::sub(const U256& a, const U256& b) const {
  U256 diff;
  const std::uint64_t borrow = sub_with_borrow(a, b, diff);
  if (borrow != 0) {
    U256 fixed;
    add_with_carry(diff, m_, fixed);
    return fixed;
  }
  return diff;
}

U256 ModArith::neg(const U256& a) const {
  if (a.is_zero()) return a;
  U256 out;
  sub_with_borrow(m_, a, out);
  return out;
}

U256 ModArith::mul(const U256& a, const U256& b) const {
  // CIOS Montgomery multiplication, 4 x 64-bit limbs.
  std::uint64_t t[6] = {0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < 4; ++i) {
    // t += a[i] * b
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const u128 cur = static_cast<u128>(a.limbs[i]) * b.limbs[j] + t[j] + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    {
      const u128 cur = static_cast<u128>(t[4]) + carry;
      t[4] = static_cast<std::uint64_t>(cur);
      t[5] = static_cast<std::uint64_t>(cur >> 64);
    }

    // Reduce one limb: t = (t + q*m) / 2^64 with q chosen so the low limb
    // cancels.
    const std::uint64_t q = t[0] * n0inv_;
    u128 cur = static_cast<u128>(q) * m_.limbs[0] + t[0];
    carry = static_cast<std::uint64_t>(cur >> 64);
    for (std::size_t j = 1; j < 4; ++j) {
      cur = static_cast<u128>(q) * m_.limbs[j] + t[j] + carry;
      t[j - 1] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    cur = static_cast<u128>(t[4]) + carry;
    t[3] = static_cast<std::uint64_t>(cur);
    t[4] = t[5] + static_cast<std::uint64_t>(cur >> 64);
    t[5] = 0;
  }

  U256 out{{t[0], t[1], t[2], t[3]}};
  if (t[4] != 0 || cmp(out, m_) >= 0) {
    U256 reduced;
    sub_with_borrow(out, m_, reduced);
    return reduced;
  }
  return out;
}

U256 ModArith::to_mont(const U256& a) const { return mul(a, r2_mod_m_); }

U256 ModArith::from_mont(const U256& a) const { return mul(a, U256::one()); }

U256 ModArith::pow(const U256& base, const U256& exp) const {
  U256 result = r_mod_m_;  // 1 in Montgomery form
  const int top = exp.highest_bit();
  for (int i = top; i >= 0; --i) {
    result = sqr(result);
    if (exp.bit(static_cast<unsigned>(i))) result = mul(result, base);
  }
  return result;
}

U256 ModArith::inv(const U256& a) const {
  if (a.is_zero()) throw std::domain_error("ModArith::inv: zero has no inverse");
  U256 exp;
  sub_with_borrow(m_, U256::from_u64(2), exp);
  return pow(a, exp);
}

U256 ModArith::reduce(const U256& a) const {
  if (cmp(a, m_) < 0) return a;
  U256 out;
  sub_with_borrow(a, m_, out);
  // Input < 2^256 < 2m, so one subtraction suffices.
  return out;
}

}  // namespace bft::crypto

// secp256k1 elliptic-curve group operations (y^2 = x^3 + 7 over F_p).
//
// Points are kept in Jacobian coordinates with field elements in Montgomery
// form; `Affine` is the external representation. Scalar multiplication uses a
// 4-bit fixed window (variable time — see the side-channel note in
// modarith.hpp).
#pragma once

#include <optional>

#include "crypto/modarith.hpp"

namespace bft::crypto::secp256k1 {

/// Base-field arithmetic (mod p). Singleton — construction is nontrivial.
const ModArith& field();
/// Scalar arithmetic (mod n, the group order).
const ModArith& order();

/// Curve order n as an integer.
const U256& order_n();
/// n / 2 rounded down (for low-s signature normalization).
const U256& half_order();

/// Affine point in plain (non-Montgomery) representation.
struct Affine {
  U256 x;
  U256 y;
  bool infinity = false;

  bool operator==(const Affine& other) const;
};

/// Jacobian point; field elements in Montgomery form. (X/Z^2, Y/Z^3).
struct Jacobian {
  U256 x;
  U256 y;
  U256 z;  // zero <=> point at infinity

  static Jacobian infinity();
  bool is_infinity() const { return z.is_zero(); }
};

/// The group generator G.
const Affine& generator();

Jacobian to_jacobian(const Affine& p);
Affine to_affine(const Jacobian& p);

Jacobian dbl(const Jacobian& p);
Jacobian add(const Jacobian& p, const Jacobian& q);
/// p + q with q affine (faster mixed addition).
Jacobian add_mixed(const Jacobian& p, const Affine& q);

/// k * P via 4-bit window; k is a plain integer (reduced internally mod n is
/// NOT applied — pass scalars already < n).
Jacobian scalar_mul(const Affine& p, const U256& k);

/// k * G using a precomputed window table for the generator.
Jacobian generator_mul(const U256& k);

/// u1*G + u2*Q (Shamir's trick), the ECDSA verification workhorse.
Jacobian double_scalar_mul(const U256& u1, const U256& u2, const Affine& q);

/// Checks the affine point satisfies the curve equation (and is not infinity).
bool on_curve(const Affine& p);

/// Lifts an x coordinate to a curve point with the given y parity; nullopt if
/// x^3 + 7 is not a quadratic residue.
std::optional<Affine> lift_x(const U256& x, bool y_odd);

}  // namespace bft::crypto::secp256k1

#include "crypto/secp256k1.hpp"

#include <array>
#include <vector>

namespace bft::crypto::secp256k1 {

namespace {

const char* const kP =
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f";
const char* const kN =
    "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141";
const char* const kGx =
    "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798";
const char* const kGy =
    "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8";

// Window table: table[i] = (i+1) * P for i in [0, 15), points Jacobian.
using WindowTable = std::array<Jacobian, 15>;

WindowTable build_table(const Affine& p) {
  WindowTable table;
  table[0] = to_jacobian(p);
  for (std::size_t i = 1; i < table.size(); ++i) {
    table[i] = add_mixed(table[i - 1], p);
  }
  return table;
}

Jacobian windowed_mul(const WindowTable& table, const U256& k) {
  Jacobian acc = Jacobian::infinity();
  bool started = false;
  for (int nibble = 63; nibble >= 0; --nibble) {
    if (started) acc = dbl(dbl(dbl(dbl(acc))));
    const unsigned limb = static_cast<unsigned>(nibble) / 16;
    const unsigned shift = (static_cast<unsigned>(nibble) % 16) * 4;
    const unsigned digit = static_cast<unsigned>((k.limbs[limb] >> shift) & 0xf);
    if (digit != 0) {
      acc = add(acc, table[digit - 1]);
      started = true;
    }
  }
  return acc;
}

const WindowTable& generator_table() {
  static const WindowTable table = build_table(generator());
  return table;
}

}  // namespace

const ModArith& field() {
  static const ModArith fp(U256::from_hex(kP));
  return fp;
}

const ModArith& order() {
  static const ModArith fn(U256::from_hex(kN));
  return fn;
}

const U256& order_n() {
  static const U256 n = U256::from_hex(kN);
  return n;
}

const U256& half_order() {
  static const U256 half = shr1(order_n());
  return half;
}

const Affine& generator() {
  static const Affine g{U256::from_hex(kGx), U256::from_hex(kGy), false};
  return g;
}

bool Affine::operator==(const Affine& other) const {
  if (infinity || other.infinity) return infinity == other.infinity;
  return x == other.x && y == other.y;
}

Jacobian Jacobian::infinity() {
  return Jacobian{field().mont_one(), field().mont_one(), U256::zero()};
}

Jacobian to_jacobian(const Affine& p) {
  if (p.infinity) return Jacobian::infinity();
  const ModArith& fp = field();
  return Jacobian{fp.to_mont(p.x), fp.to_mont(p.y), fp.mont_one()};
}

Affine to_affine(const Jacobian& p) {
  if (p.is_infinity()) return Affine{U256::zero(), U256::zero(), true};
  const ModArith& fp = field();
  const U256 zinv = fp.inv(p.z);
  const U256 zinv2 = fp.sqr(zinv);
  const U256 zinv3 = fp.mul(zinv2, zinv);
  return Affine{fp.from_mont(fp.mul(p.x, zinv2)),
                fp.from_mont(fp.mul(p.y, zinv3)), false};
}

Jacobian dbl(const Jacobian& p) {
  if (p.is_infinity() || p.y.is_zero()) return Jacobian::infinity();
  const ModArith& fp = field();
  const U256 a = fp.sqr(p.x);
  const U256 b = fp.sqr(p.y);
  const U256 c = fp.sqr(b);
  U256 d = fp.sqr(fp.add(p.x, b));
  d = fp.sub(fp.sub(d, a), c);
  d = fp.add(d, d);
  const U256 e = fp.add(fp.add(a, a), a);
  const U256 f = fp.sqr(e);
  const U256 x3 = fp.sub(f, fp.add(d, d));
  U256 c8 = fp.add(c, c);
  c8 = fp.add(c8, c8);
  c8 = fp.add(c8, c8);
  const U256 y3 = fp.sub(fp.mul(e, fp.sub(d, x3)), c8);
  const U256 yz = fp.mul(p.y, p.z);
  const U256 z3 = fp.add(yz, yz);
  return Jacobian{x3, y3, z3};
}

Jacobian add(const Jacobian& p, const Jacobian& q) {
  if (p.is_infinity()) return q;
  if (q.is_infinity()) return p;
  const ModArith& fp = field();
  const U256 z1z1 = fp.sqr(p.z);
  const U256 z2z2 = fp.sqr(q.z);
  const U256 u1 = fp.mul(p.x, z2z2);
  const U256 u2 = fp.mul(q.x, z1z1);
  const U256 s1 = fp.mul(fp.mul(p.y, q.z), z2z2);
  const U256 s2 = fp.mul(fp.mul(q.y, p.z), z1z1);
  if (u1 == u2) {
    if (!(s1 == s2)) return Jacobian::infinity();
    return dbl(p);
  }
  const U256 h = fp.sub(u2, u1);
  const U256 h2 = fp.add(h, h);
  const U256 i = fp.sqr(h2);
  const U256 j = fp.mul(h, i);
  U256 r = fp.sub(s2, s1);
  r = fp.add(r, r);
  const U256 v = fp.mul(u1, i);
  const U256 x3 = fp.sub(fp.sub(fp.sqr(r), j), fp.add(v, v));
  const U256 s1j = fp.mul(s1, j);
  const U256 y3 = fp.sub(fp.mul(r, fp.sub(v, x3)), fp.add(s1j, s1j));
  U256 z3 = fp.sqr(fp.add(p.z, q.z));
  z3 = fp.sub(fp.sub(z3, z1z1), z2z2);
  z3 = fp.mul(z3, h);
  return Jacobian{x3, y3, z3};
}

Jacobian add_mixed(const Jacobian& p, const Affine& q) {
  if (q.infinity) return p;
  const ModArith& fp = field();
  const U256 qx = fp.to_mont(q.x);
  const U256 qy = fp.to_mont(q.y);
  if (p.is_infinity()) return Jacobian{qx, qy, fp.mont_one()};
  const U256 z1z1 = fp.sqr(p.z);
  const U256 u2 = fp.mul(qx, z1z1);
  const U256 s2 = fp.mul(fp.mul(qy, p.z), z1z1);
  if (p.x == u2) {
    if (!(p.y == s2)) return Jacobian::infinity();
    return dbl(p);
  }
  const U256 h = fp.sub(u2, p.x);
  const U256 hh = fp.sqr(h);
  U256 i = fp.add(hh, hh);
  i = fp.add(i, i);
  const U256 j = fp.mul(h, i);
  U256 r = fp.sub(s2, p.y);
  r = fp.add(r, r);
  const U256 v = fp.mul(p.x, i);
  const U256 x3 = fp.sub(fp.sub(fp.sqr(r), j), fp.add(v, v));
  const U256 yj = fp.mul(p.y, j);
  const U256 y3 = fp.sub(fp.mul(r, fp.sub(v, x3)), fp.add(yj, yj));
  U256 z3 = fp.sqr(fp.add(p.z, h));
  z3 = fp.sub(fp.sub(z3, z1z1), hh);
  return Jacobian{x3, y3, z3};
}

Jacobian scalar_mul(const Affine& p, const U256& k) {
  if (p.infinity || k.is_zero()) return Jacobian::infinity();
  return windowed_mul(build_table(p), k);
}

Jacobian generator_mul(const U256& k) {
  if (k.is_zero()) return Jacobian::infinity();
  return windowed_mul(generator_table(), k);
}

Jacobian double_scalar_mul(const U256& u1, const U256& u2, const Affine& q) {
  // Shamir's trick: shared doubling pass over both scalars, bit by bit.
  const Jacobian jg = to_jacobian(generator());
  const Jacobian jq = to_jacobian(q);
  const Jacobian jgq = add(jg, jq);
  Jacobian acc = Jacobian::infinity();
  const int top = std::max(u1.highest_bit(), u2.highest_bit());
  for (int i = top; i >= 0; --i) {
    acc = dbl(acc);
    const bool b1 = u1.bit(static_cast<unsigned>(i));
    const bool b2 = u2.bit(static_cast<unsigned>(i));
    if (b1 && b2) {
      acc = add(acc, jgq);
    } else if (b1) {
      acc = add(acc, jg);
    } else if (b2) {
      acc = add(acc, jq);
    }
  }
  return acc;
}

bool on_curve(const Affine& p) {
  if (p.infinity) return false;
  const ModArith& fp = field();
  if (cmp(p.x, fp.modulus()) >= 0 || cmp(p.y, fp.modulus()) >= 0) return false;
  const U256 x = fp.to_mont(p.x);
  const U256 y = fp.to_mont(p.y);
  const U256 lhs = fp.sqr(y);
  const U256 seven = fp.to_mont(U256::from_u64(7));
  const U256 rhs = fp.add(fp.mul(fp.sqr(x), x), seven);
  return lhs == rhs;
}

std::optional<Affine> lift_x(const U256& x, bool y_odd) {
  const ModArith& fp = field();
  if (cmp(x, fp.modulus()) >= 0) return std::nullopt;
  const U256 xm = fp.to_mont(x);
  const U256 seven = fp.to_mont(U256::from_u64(7));
  const U256 rhs = fp.add(fp.mul(fp.sqr(xm), xm), seven);

  // p == 3 (mod 4), so sqrt(a) = a^((p+1)/4) when a is a QR.
  U256 exp;
  add_with_carry(fp.modulus(), U256::one(), exp);  // p+1 wraps? p+1 < 2^256 holds.
  exp = shr1(shr1(exp));
  const U256 ym = fp.pow(rhs, exp);
  if (!(fp.sqr(ym) == rhs)) return std::nullopt;

  U256 y = fp.from_mont(ym);
  if (y.is_odd() != y_odd) y = fp.neg(y);
  return Affine{x, y, false};
}

}  // namespace bft::crypto::secp256k1

// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for block-header hashing, the blockchain hash chain, transaction ids,
// ECDSA message digests and RFC-6979 nonce derivation.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace bft::crypto {

using Hash256 = std::array<std::uint8_t, 32>;

/// Streaming SHA-256: init -> update* -> finish. Reusable after reset().
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(ByteView data);
  Hash256 finish();

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot convenience.
Hash256 sha256(ByteView data);

/// SHA-256(SHA-256(data)).
Hash256 sha256d(ByteView data);

/// Hash as an owned byte vector (for serialization paths).
Bytes hash_bytes(const Hash256& h);

/// Parses exactly 32 bytes into a Hash256; throws std::invalid_argument.
Hash256 hash_from_bytes(ByteView data);

/// Lowercase hex rendering of a hash.
std::string hash_hex(const Hash256& h);

}  // namespace bft::crypto

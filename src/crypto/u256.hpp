// 256-bit unsigned integer on four 64-bit little-endian limbs.
//
// Substrate for the secp256k1 field/scalar arithmetic. Only the operations
// the EC code needs are provided; everything is branch-light and allocation
// free.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"

namespace bft::crypto {

struct U256 {
  // limbs[0] is least significant.
  std::array<std::uint64_t, 4> limbs{0, 0, 0, 0};

  static U256 zero() { return U256{}; }
  static U256 one() { return U256{{1, 0, 0, 0}}; }
  static U256 from_u64(std::uint64_t v) { return U256{{v, 0, 0, 0}}; }

  /// Parses big-endian hex (up to 64 digits); throws std::invalid_argument.
  static U256 from_hex(std::string_view hex);

  /// Parses exactly 32 big-endian bytes.
  static U256 from_be_bytes(ByteView data);

  /// 32 big-endian bytes.
  Bytes to_be_bytes() const;
  std::array<std::uint8_t, 32> to_be_array() const;

  bool is_zero() const;
  bool is_odd() const { return (limbs[0] & 1) != 0; }
  /// Bit i (0 = least significant); i must be < 256.
  bool bit(unsigned i) const;
  /// Index of the highest set bit, or -1 if zero.
  int highest_bit() const;

  bool operator==(const U256& other) const { return limbs == other.limbs; }
  bool operator!=(const U256& other) const { return !(*this == other); }
};

/// -1 / 0 / +1 three-way comparison.
int cmp(const U256& a, const U256& b);
bool operator<(const U256& a, const U256& b);

/// out = a + b, returns the carry bit.
std::uint64_t add_with_carry(const U256& a, const U256& b, U256& out);

/// out = a - b, returns the borrow bit.
std::uint64_t sub_with_borrow(const U256& a, const U256& b, U256& out);

/// Full 256x256 -> 512-bit product, little-endian 8 limbs.
std::array<std::uint64_t, 8> mul_wide(const U256& a, const U256& b);

/// Logical shift right by one bit.
U256 shr1(const U256& a);

}  // namespace bft::crypto

#include "crypto/u256.hpp"

#include <stdexcept>

namespace bft::crypto {

using u128 = unsigned __int128;

U256 U256::from_hex(std::string_view hex) {
  if (hex.empty() || hex.size() > 64) {
    throw std::invalid_argument("U256::from_hex: need 1..64 hex digits");
  }
  std::string padded(64 - hex.size(), '0');
  padded.append(hex);
  return from_be_bytes(bft::from_hex(padded));
}

U256 U256::from_be_bytes(ByteView data) {
  if (data.size() != 32) {
    throw std::invalid_argument("U256::from_be_bytes: expected 32 bytes");
  }
  U256 out;
  for (int limb = 0; limb < 4; ++limb) {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      v = (v << 8) | data[static_cast<std::size_t>((3 - limb) * 8 + b)];
    }
    out.limbs[static_cast<std::size_t>(limb)] = v;
  }
  return out;
}

Bytes U256::to_be_bytes() const {
  const auto arr = to_be_array();
  return Bytes(arr.begin(), arr.end());
}

std::array<std::uint8_t, 32> U256::to_be_array() const {
  std::array<std::uint8_t, 32> out;
  for (int limb = 0; limb < 4; ++limb) {
    const std::uint64_t v = limbs[static_cast<std::size_t>(limb)];
    for (int b = 0; b < 8; ++b) {
      out[static_cast<std::size_t>((3 - limb) * 8 + b)] =
          static_cast<std::uint8_t>(v >> (56 - 8 * b));
    }
  }
  return out;
}

bool U256::is_zero() const {
  return (limbs[0] | limbs[1] | limbs[2] | limbs[3]) == 0;
}

bool U256::bit(unsigned i) const {
  return ((limbs[i / 64] >> (i % 64)) & 1) != 0;
}

int U256::highest_bit() const {
  for (int limb = 3; limb >= 0; --limb) {
    const std::uint64_t v = limbs[static_cast<std::size_t>(limb)];
    if (v != 0) return limb * 64 + (63 - __builtin_clzll(v));
  }
  return -1;
}

int cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    const auto idx = static_cast<std::size_t>(i);
    if (a.limbs[idx] < b.limbs[idx]) return -1;
    if (a.limbs[idx] > b.limbs[idx]) return 1;
  }
  return 0;
}

bool operator<(const U256& a, const U256& b) { return cmp(a, b) < 0; }

std::uint64_t add_with_carry(const U256& a, const U256& b, U256& out) {
  u128 carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 sum = static_cast<u128>(a.limbs[i]) + b.limbs[i] + carry;
    out.limbs[i] = static_cast<std::uint64_t>(sum);
    carry = sum >> 64;
  }
  return static_cast<std::uint64_t>(carry);
}

std::uint64_t sub_with_borrow(const U256& a, const U256& b, U256& out) {
  u128 borrow = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 diff = static_cast<u128>(a.limbs[i]) - b.limbs[i] - borrow;
    out.limbs[i] = static_cast<std::uint64_t>(diff);
    borrow = (diff >> 64) & 1;
  }
  return static_cast<std::uint64_t>(borrow);
}

std::array<std::uint64_t, 8> mul_wide(const U256& a, const U256& b) {
  std::array<std::uint64_t, 8> out{};
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const u128 cur = static_cast<u128>(a.limbs[i]) * b.limbs[j] +
                       out[i + j] + carry;
      out[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out[i + 4] = carry;
  }
  return out;
}

U256 shr1(const U256& a) {
  U256 out;
  for (std::size_t i = 0; i < 4; ++i) {
    out.limbs[i] = a.limbs[i] >> 1;
    if (i < 3) out.limbs[i] |= a.limbs[i + 1] << 63;
  }
  return out;
}

}  // namespace bft::crypto

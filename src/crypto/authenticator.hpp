// Unified process-keyed authentication seam. Every signature the protocol
// produces or checks — FORWARD relays, WRITE attestations, STOPDATA
// certificates, ordered-block signatures — goes through one interface keyed
// by process id, so the staged runner prologue (runner.hpp) has a single
// thread-safe verification entry point instead of the previous ad-hoc trio
// (ecdsa::PublicKey::verify, raw HMAC checks, per-message inline
// digest+verify).
//
// Two schemes:
//   * EcdsaAuthenticator — the paper's scheme: per-process secp256k1 keys
//     from the deterministic simulated PKI. Signatures verify for everyone.
//   * HmacAuthenticator — pairwise session MACs (the ROADMAP's BFT-SMaRt
//     style fast path): cheap, but only the session counterparty can verify,
//     so it suits point-to-point traffic (relays, replies), not broadcast.
#pragma once

#include <cstdint>
#include <memory>

#include "common/bytes.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/sha256.hpp"

namespace bft::crypto {

/// Deterministic per-process key material (the simulated PKI): every process
/// derives its signing key from its id, so any process can reconstruct any
/// other's public key without a handshake.
PrivateKey process_private_key(std::uint32_t id);
/// Cached public counterpart; the reference stays valid for the program's
/// lifetime. Thread-safe.
const PublicKey& process_public_key(std::uint32_t id);

/// Signing/verification keyed by process id. Implementations must be
/// thread-safe: both methods are called concurrently from runner prologue
/// workers and from event-loop threads.
class Authenticator {
 public:
  virtual ~Authenticator() = default;

  /// Produces this process's authentication tag over `digest`, bound to
  /// `peer`: for public-key schemes `peer` is ignored (one signature verifies
  /// everywhere — pass the recipient or your own id); for session-MAC
  /// schemes it selects the pairwise key, so only `peer` can verify.
  virtual Bytes sign_for(std::uint32_t peer, const Hash256& digest) const = 0;

  /// True iff `signature` is process `from`'s valid tag over `digest`.
  virtual bool verify_from(std::uint32_t from, const Hash256& digest,
                           ByteView signature) const = 0;
};

/// ECDSA (secp256k1, RFC-6979) over the deterministic per-process keys.
class EcdsaAuthenticator final : public Authenticator {
 public:
  explicit EcdsaAuthenticator(std::uint32_t self);

  Bytes sign_for(std::uint32_t peer, const Hash256& digest) const override;
  bool verify_from(std::uint32_t from, const Hash256& digest,
                   ByteView signature) const override;

  std::uint32_t self() const { return self_; }

 private:
  std::uint32_t self_;
  PrivateKey key_;
};

/// Pairwise HMAC-SHA256 session authenticator. The session key for the pair
/// (a, b) is derived symmetrically from the two process keys, so both ends
/// compute the same MAC key and verification is a constant-time tag compare
/// — no point multiplication. Landing point for the HMAC fast path; not yet
/// wired as a protocol default because WRITE/block signatures are broadcast.
class HmacAuthenticator final : public Authenticator {
 public:
  explicit HmacAuthenticator(std::uint32_t self) : self_(self) {}

  Bytes sign_for(std::uint32_t peer, const Hash256& digest) const override;
  bool verify_from(std::uint32_t from, const Hash256& digest,
                   ByteView signature) const override;

  std::uint32_t self() const { return self_; }

 private:
  Hash256 session_key(std::uint32_t peer) const;

  std::uint32_t self_;
};

/// Shared ECDSA authenticator for `self` (the common case; one per process).
std::shared_ptr<const Authenticator> make_process_authenticator(
    std::uint32_t self);

}  // namespace bft::crypto

#include "crypto/ecdsa.hpp"

#include <cstring>

#include "crypto/hmac.hpp"

namespace bft::crypto {

namespace {

namespace ec = secp256k1;

/// bits2int for a 256-bit curve with a 256-bit hash: interpret big-endian,
/// then reduce mod n (one conditional subtraction suffices).
U256 digest_to_scalar(const Hash256& digest) {
  const U256 e = U256::from_be_bytes(ByteView(digest.data(), digest.size()));
  return ec::order().reduce(e);
}

}  // namespace

Bytes Signature::to_bytes() const {
  Bytes out = r.to_be_bytes();
  append(out, s.to_be_bytes());
  return out;
}

Result<Signature> Signature::from_bytes(ByteView data) {
  if (data.size() != 64) {
    return Result<Signature>::failure("signature must be 64 bytes");
  }
  Signature sig{U256::from_be_bytes(data.subspan(0, 32)),
                U256::from_be_bytes(data.subspan(32, 32))};
  const U256& n = ec::order_n();
  if (sig.r.is_zero() || sig.s.is_zero() || !(sig.r < n) || !(sig.s < n)) {
    return Result<Signature>::failure("signature scalar out of range");
  }
  return sig;
}

Bytes PublicKey::to_bytes() const {
  Bytes out;
  out.reserve(33);
  out.push_back(point_.y.is_odd() ? 0x03 : 0x02);
  append(out, point_.x.to_be_bytes());
  return out;
}

Result<PublicKey> PublicKey::from_bytes(ByteView data) {
  if (data.size() != 33 || (data[0] != 0x02 && data[0] != 0x03)) {
    return Result<PublicKey>::failure("invalid compressed point encoding");
  }
  const U256 x = U256::from_be_bytes(data.subspan(1, 32));
  const auto point = ec::lift_x(x, data[0] == 0x03);
  if (!point) {
    return Result<PublicKey>::failure("x coordinate not on curve");
  }
  return PublicKey(*point);
}

bool PublicKey::verify(const Hash256& digest, const Signature& sig) const {
  const ModArith& fn = ec::order();
  const U256& n = ec::order_n();
  if (sig.r.is_zero() || sig.s.is_zero() || !(sig.r < n) || !(sig.s < n)) {
    return false;
  }
  const U256 e = digest_to_scalar(digest);

  const U256 s_mont = fn.to_mont(sig.s);
  const U256 w_mont = fn.inv(s_mont);
  const U256 u1 = fn.from_mont(fn.mul(fn.to_mont(e), w_mont));
  const U256 u2 = fn.from_mont(fn.mul(fn.to_mont(sig.r), w_mont));

  const ec::Jacobian rp = ec::double_scalar_mul(u1, u2, point_);
  if (rp.is_infinity()) return false;

  // R.x < p < 2n, so one conditional subtraction reduces it mod n.
  const ec::Affine aff = ec::to_affine(rp);
  const U256 rx = ec::order().reduce(aff.x);
  return rx == sig.r;
}

PrivateKey PrivateKey::generate(Rng& rng) {
  for (;;) {
    const Bytes candidate = rng.bytes(32);
    auto key = from_bytes(candidate);
    if (key.ok()) return std::move(key).take();
  }
}

PrivateKey PrivateKey::from_seed(ByteView seed) {
  Bytes material(seed.begin(), seed.end());
  for (;;) {
    const Hash256 h = sha256(material);
    auto key = from_bytes(ByteView(h.data(), h.size()));
    if (key.ok()) return std::move(key).take();
    material = hash_bytes(h);  // extremely unlikely; rehash and retry
  }
}

Result<PrivateKey> PrivateKey::from_bytes(ByteView data) {
  if (data.size() != 32) {
    return Result<PrivateKey>::failure("private key must be 32 bytes");
  }
  const U256 d = U256::from_be_bytes(data);
  if (d.is_zero() || !(d < ec::order_n())) {
    return Result<PrivateKey>::failure("private scalar out of range");
  }
  return PrivateKey(d);
}

PublicKey PrivateKey::public_key() const {
  return PublicKey(ec::to_affine(ec::generator_mul(d_)));
}

U256 rfc6979_nonce(const U256& priv, const Hash256& digest) {
  // RFC 6979 §3.2 with SHA-256; h1 is already the message digest.
  const Bytes x = priv.to_be_bytes();
  const U256 e = digest_to_scalar(digest);
  const Bytes h1 = e.to_be_bytes();  // bits2octets(H(m))

  std::array<std::uint8_t, 32> v;
  v.fill(0x01);
  std::array<std::uint8_t, 32> k;
  k.fill(0x00);

  auto mac = [&](std::initializer_list<ByteView> parts) {
    HmacSha256 h(ByteView(k.data(), k.size()));
    for (const auto& p : parts) h.update(p);
    return h.finish();
  };
  const std::uint8_t zero = 0x00;
  const std::uint8_t one = 0x01;

  k = mac({ByteView(v.data(), v.size()), ByteView(&zero, 1), ByteView(x), ByteView(h1)});
  v = mac({ByteView(v.data(), v.size())});
  k = mac({ByteView(v.data(), v.size()), ByteView(&one, 1), ByteView(x), ByteView(h1)});
  v = mac({ByteView(v.data(), v.size())});

  for (;;) {
    v = mac({ByteView(v.data(), v.size())});
    const U256 candidate = U256::from_be_bytes(ByteView(v.data(), v.size()));
    if (!candidate.is_zero() && candidate < ec::order_n()) return candidate;
    k = mac({ByteView(v.data(), v.size()), ByteView(&zero, 1)});
    v = mac({ByteView(v.data(), v.size())});
  }
}

Signature PrivateKey::sign(const Hash256& digest) const {
  const ModArith& fn = ec::order();
  const U256 e = digest_to_scalar(digest);

  U256 nonce = rfc6979_nonce(d_, digest);
  for (;;) {
    const ec::Affine rp = ec::to_affine(ec::generator_mul(nonce));
    const U256 r = fn.reduce(rp.x);
    if (!r.is_zero()) {
      // s = k^-1 (e + r d) mod n
      const U256 k_mont = fn.to_mont(nonce);
      const U256 kinv = fn.inv(k_mont);
      const U256 rd = fn.mul(fn.to_mont(r), fn.to_mont(d_));
      const U256 sum = fn.add(fn.to_mont(e), rd);
      U256 s = fn.from_mont(fn.mul(kinv, sum));
      if (!s.is_zero()) {
        if (ec::half_order() < s) {
          U256 flipped;
          sub_with_borrow(ec::order_n(), s, flipped);
          s = flipped;
        }
        return Signature{r, s};
      }
    }
    // Degenerate nonce (probability ~2^-256): derive a fresh one.
    const Hash256 retry = sha256(nonce.to_be_bytes());
    nonce = ec::order().reduce(U256::from_be_bytes(ByteView(retry.data(), 32)));
    if (nonce.is_zero()) nonce = U256::one();
  }
}

}  // namespace bft::crypto

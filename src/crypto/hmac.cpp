#include "crypto/hmac.hpp"

#include <cstring>

namespace bft::crypto {

HmacSha256::HmacSha256(ByteView key) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > block.size()) {
    const Hash256 shrunk = sha256(key);
    std::memcpy(block.data(), shrunk.data(), shrunk.size());
  } else {
    std::memcpy(block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, 64> ipad_key;
  for (std::size_t i = 0; i < block.size(); ++i) {
    ipad_key[i] = block[i] ^ 0x36;
    opad_key_[i] = block[i] ^ 0x5c;
  }
  inner_.update(ByteView(ipad_key.data(), ipad_key.size()));
}

void HmacSha256::update(ByteView data) { inner_.update(data); }

Hash256 HmacSha256::finish() {
  const Hash256 inner_digest = inner_.finish();
  Sha256 outer;
  outer.update(ByteView(opad_key_.data(), opad_key_.size()));
  outer.update(ByteView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

Hash256 hmac_sha256(ByteView key, ByteView data) {
  HmacSha256 mac(key);
  mac.update(data);
  return mac.finish();
}

}  // namespace bft::crypto

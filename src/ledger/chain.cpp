#include "ledger/chain.hpp"

#include <stdexcept>

namespace bft::ledger {

crypto::Hash256 chain_position_digest(std::string_view channel,
                                      std::uint64_t next_number,
                                      const crypto::Hash256& previous_hash) {
  Writer w;
  w.str(channel);
  w.u64(next_number);
  w.raw(ByteView(previous_hash.data(), previous_hash.size()));
  return crypto::sha256(w.data());
}

BlockStore::BlockStore(std::string channel)
    : channel_(std::move(channel)), tip_hash_(genesis_hash(channel_)) {}

Status BlockStore::append(Block block) {
  if (!blocks_.empty() && block == blocks_.back()) {
    return Status::ok();  // idempotent duplicate of the tip
  }
  if (block.header.number != next_number()) {
    return Status::failure("block number " + std::to_string(block.header.number) +
                           " does not extend height " +
                           std::to_string(height()));
  }
  if (block.header.previous_hash != tip_hash_) {
    return Status::failure("previous-hash mismatch at block " +
                           std::to_string(block.header.number));
  }
  if (block.header.data_hash != compute_data_hash(block.envelopes)) {
    return Status::failure("data-hash mismatch at block " +
                           std::to_string(block.header.number));
  }
  tip_hash_ = block.header.digest();
  blocks_.push_back(std::move(block));
  return Status::ok();
}

const Block& BlockStore::at(std::uint64_t number) const {
  if (number == 0 || number > blocks_.size()) {
    throw std::out_of_range("BlockStore::at: no block " + std::to_string(number));
  }
  return blocks_[number - 1];
}

const Block& BlockStore::tip() const {
  if (blocks_.empty()) throw std::out_of_range("BlockStore::tip: empty chain");
  return blocks_.back();
}

const crypto::Hash256& BlockStore::expected_previous_hash() const {
  return tip_hash_;
}

Status BlockStore::verify() const {
  crypto::Hash256 prev = genesis_hash(channel_);
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const Block& b = blocks_[i];
    if (b.header.number != i + 1) {
      return Status::failure("non-contiguous number at index " + std::to_string(i));
    }
    if (b.header.previous_hash != prev) {
      return Status::failure("broken hash chain at block " +
                             std::to_string(b.header.number));
    }
    if (b.header.data_hash != compute_data_hash(b.envelopes)) {
      return Status::failure("tampered envelopes in block " +
                             std::to_string(b.header.number));
    }
    prev = b.header.digest();
  }
  return Status::ok();
}

}  // namespace bft::ledger

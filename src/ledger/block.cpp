#include "ledger/block.hpp"

namespace bft::ledger {

namespace {

void put_hash(Writer& w, const crypto::Hash256& h) {
  w.raw(ByteView(h.data(), h.size()));
}

crypto::Hash256 get_hash(Reader& r) {
  return crypto::hash_from_bytes(r.raw(32));
}

}  // namespace

Bytes BlockHeader::encode() const {
  Writer w(8 + 64);
  w.u64(number);
  put_hash(w, previous_hash);
  put_hash(w, data_hash);
  return std::move(w).take();
}

BlockHeader BlockHeader::decode(ByteView data) {
  Reader r(data);
  BlockHeader h;
  h.number = r.u64();
  h.previous_hash = get_hash(r);
  h.data_hash = get_hash(r);
  r.expect_done();
  return h;
}

crypto::Hash256 BlockHeader::digest() const { return crypto::sha256(encode()); }

bool BlockHeader::operator==(const BlockHeader& other) const {
  return number == other.number && previous_hash == other.previous_hash &&
         data_hash == other.data_hash;
}

Bytes Block::encode() const {
  Writer w;
  w.bytes(header.encode());
  w.u32(static_cast<std::uint32_t>(envelopes.size()));
  for (const Bytes& e : envelopes) w.bytes(e);
  return std::move(w).take();
}

Block Block::decode(ByteView data) {
  Reader r(data);
  Block b;
  b.header = BlockHeader::decode(r.bytes());
  const std::uint32_t count = r.u32();
  b.envelopes.reserve(r.safe_reserve(count));
  for (std::uint32_t i = 0; i < count; ++i) b.envelopes.push_back(r.bytes());
  r.expect_done();
  return b;
}

bool Block::operator==(const Block& other) const {
  return header == other.header && envelopes == other.envelopes;
}

crypto::Hash256 compute_data_hash(const std::vector<Bytes>& envelopes) {
  crypto::Sha256 h;
  Writer count;
  count.u32(static_cast<std::uint32_t>(envelopes.size()));
  h.update(count.data());
  for (const Bytes& e : envelopes) {
    Writer len;
    len.u32(static_cast<std::uint32_t>(e.size()));
    h.update(len.data());
    h.update(e);
  }
  return h.finish();
}

Block make_block(std::uint64_t number, const crypto::Hash256& previous_hash,
                 std::vector<Bytes> envelopes) {
  Block b;
  b.header.number = number;
  b.header.previous_hash = previous_hash;
  b.header.data_hash = compute_data_hash(envelopes);
  b.envelopes = std::move(envelopes);
  return b;
}

crypto::Hash256 genesis_hash(std::string_view channel) {
  Bytes seed = to_bytes("bft-ordering-genesis:");
  append(seed, to_bytes(channel));
  return crypto::sha256(seed);
}

}  // namespace bft::ledger

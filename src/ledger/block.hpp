// HLF-style blocks: a header binding (sequence number, hash of the previous
// header, hash of the envelope data) plus the opaque envelopes themselves.
// Signatures are generated over the header digest — which is why the paper's
// signing throughput (§6.1) is independent of envelope and block size.
#pragma once

#include <vector>

#include "common/serial.hpp"
#include "crypto/sha256.hpp"

namespace bft::ledger {

struct BlockHeader {
  std::uint64_t number = 0;
  crypto::Hash256 previous_hash{};
  crypto::Hash256 data_hash{};

  Bytes encode() const;
  static BlockHeader decode(ByteView data);
  /// The digest signatures are computed over.
  crypto::Hash256 digest() const;

  bool operator==(const BlockHeader& other) const;
};

struct Block {
  BlockHeader header;
  std::vector<Bytes> envelopes;

  Bytes encode() const;
  static Block decode(ByteView data);

  bool operator==(const Block& other) const;
};

/// Deterministic digest over an envelope list.
crypto::Hash256 compute_data_hash(const std::vector<Bytes>& envelopes);

/// Builds a block whose data hash matches its envelopes.
Block make_block(std::uint64_t number, const crypto::Hash256& previous_hash,
                 std::vector<Bytes> envelopes);

/// Hash chained to by the first block of a channel.
crypto::Hash256 genesis_hash(std::string_view channel);

}  // namespace bft::ledger

// Per-channel block store with hash-chain verification. Committing peers use
// this to maintain their copy of the ledger (ordering nodes do not store the
// chain — footnote 9 of the paper — they only keep the previous header hash).
#pragma once

#include "common/result.hpp"
#include "ledger/block.hpp"

namespace bft::ledger {

/// Deterministic digest of one channel's chain position (the ordering node's
/// whole per-channel ledger footprint: the number the next block will carry
/// and the header hash it must chain to). Durable checkpoints store the
/// combined digest so recovery can prove a restored snapshot still describes
/// the same chain head — any fork or corruption changes it.
crypto::Hash256 chain_position_digest(std::string_view channel,
                                      std::uint64_t next_number,
                                      const crypto::Hash256& previous_hash);

class BlockStore {
 public:
  explicit BlockStore(std::string channel);

  const std::string& channel() const { return channel_; }

  /// Appends after verifying number continuity, previous-hash linkage and the
  /// data hash. Duplicate re-append of the current tip block is ok (idempotent).
  Status append(Block block);

  std::size_t height() const { return blocks_.size(); }
  bool empty() const { return blocks_.empty(); }
  /// Block with sequence `number` (1-based); throws std::out_of_range.
  const Block& at(std::uint64_t number) const;
  const Block& tip() const;
  /// Hash the next block must chain to.
  const crypto::Hash256& expected_previous_hash() const;
  std::uint64_t next_number() const { return blocks_.size() + 1; }

  /// Full-chain audit: re-verifies every link and data hash.
  Status verify() const;

 private:
  std::string channel_;
  std::vector<Block> blocks_;
  crypto::Hash256 tip_hash_;  // digest of the latest header (or genesis)
};

}  // namespace bft::ledger

#include "storage/wal.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/log.hpp"
#include "storage/crc32.hpp"

namespace bft::storage {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'B', 'F', 'T', 'W', 'A', 'L', '1', '\n'};
constexpr std::size_t kMagicSize = sizeof(kMagic);
constexpr std::size_t kFrameHeader = 8;  // u32 len + u32 crc
// A decided batch is bounded by batch_max * envelope size; anything claiming
// more than this is a corrupt length field, not a record.
constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

std::uint32_t load_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(load_u32(p)) |
         (static_cast<std::uint64_t>(load_u32(p + 4)) << 32);
}

void store_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void store_u64(std::uint8_t* p, std::uint64_t v) {
  store_u32(p, static_cast<std::uint32_t>(v));
  store_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::string segment_name(std::uint64_t first_cid) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.seg",
                static_cast<unsigned long long>(first_cid));
  return buf;
}

/// Memory-maps a whole file read-only; falls back to a heap read when mmap is
/// unavailable (empty files, exotic filesystems). `out` owns the bytes either
/// way via the returned unmapper.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return;
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return;
    }
    size_ = static_cast<std::size_t>(st.st_size);
    ok_ = true;
    if (size_ == 0) {
      ::close(fd);
      return;
    }
    void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      data_ = static_cast<const std::uint8_t*>(map);
      mapped_ = true;
      // Sequential scan hint: recovery reads every byte exactly once.
      ::madvise(map, size_, MADV_SEQUENTIAL);
    } else {
      fallback_.resize(size_);
      std::size_t got = 0;
      while (got < size_) {
        const ssize_t n =
            ::pread(fd, fallback_.data() + got, size_ - got,
                    static_cast<off_t>(got));
        if (n <= 0) {
          ok_ = false;
          break;
        }
        got += static_cast<std::size_t>(n);
      }
      data_ = fallback_.data();
    }
    ::close(fd);
  }

  ~MappedFile() {
    if (mapped_) {
      ::munmap(const_cast<std::uint8_t*>(data_), size_);
    }
  }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  bool ok() const { return ok_; }
  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  bool ok_ = false;
  bool mapped_ = false;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  Bytes fallback_;
};

/// Scans frames in [kMagicSize, size); calls `fn(cid, value)` for each valid
/// frame (fn may be null). Returns the offset just past the last valid frame
/// and whether the scan ended cleanly at EOF.
struct ScanResult {
  std::size_t valid_end = kMagicSize;
  std::uint64_t first_cid = 0;
  std::uint64_t last_cid = 0;
  bool clean = true;  // false: truncated/corrupt frame found
};

ScanResult scan_frames(
    const std::uint8_t* data, std::size_t size, std::uint64_t prev_cid,
    const std::function<void(std::uint64_t, ByteView)>* fn) {
  ScanResult result;
  std::size_t pos = kMagicSize;
  std::uint64_t last = prev_cid;
  while (pos + kFrameHeader <= size) {
    const std::uint32_t len = load_u32(data + pos);
    if (len < 8 || len > kMaxRecordBytes || pos + kFrameHeader + len > size) {
      result.clean = false;
      break;
    }
    const std::uint8_t* payload = data + pos + kFrameHeader;
    const std::uint32_t crc = load_u32(data + pos + 4);
    if (crc32_ieee(ByteView(payload, len)) != crc) {
      result.clean = false;
      break;
    }
    const std::uint64_t cid = load_u64(payload);
    if (cid <= last) {  // non-monotonic: forked or corrupted history
      result.clean = false;
      break;
    }
    last = cid;
    if (result.first_cid == 0) result.first_cid = cid;
    result.last_cid = cid;
    if (fn != nullptr && *fn) {
      (*fn)(cid, ByteView(payload + 8, len - 8));
    }
    pos += kFrameHeader + len;
  }
  if (pos != size) result.clean = false;
  result.valid_end = pos;
  return result;
}

}  // namespace

Result<FsyncPolicy> parse_fsync_policy(const std::string& name) {
  if (name == "always") return FsyncPolicy::always;
  if (name == "group") return FsyncPolicy::group;
  if (name == "off") return FsyncPolicy::off;
  return Result<FsyncPolicy>::failure("unknown fsync policy '" + name +
                                      "' (always|group|off)");
}

const char* fsync_policy_name(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::always: return "always";
    case FsyncPolicy::group: return "group";
    case FsyncPolicy::off: return "off";
  }
  return "?";
}

WriteAheadLog::WriteAheadLog(WalOptions options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::open(WalOptions options) {
  std::error_code ec;
  fs::create_directories(options.directory, ec);
  if (ec) {
    return Result<std::unique_ptr<WriteAheadLog>>::failure(
        "wal: cannot create " + options.directory + ": " + ec.message());
  }
  std::unique_ptr<WriteAheadLog> wal(new WriteAheadLog(std::move(options)));
  wal->dir_fd_ = ::open(wal->options_.directory.c_str(),
                        O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (wal->dir_fd_ < 0) {
    return Result<std::unique_ptr<WriteAheadLog>>::failure(
        "wal: cannot open directory " + wal->options_.directory);
  }
  const Status scanned = wal->scan_on_open();
  if (!scanned.is_ok()) {
    return Result<std::unique_ptr<WriteAheadLog>>::failure(scanned.error());
  }
  if (wal->options_.instruments.truncated_tail != nullptr &&
      wal->truncated_bytes_ > 0) {
    wal->options_.instruments.truncated_tail->add(wal->truncated_bytes_);
  }
  if (wal->options_.fsync == FsyncPolicy::group) {
    wal->flusher_ = std::thread([w = wal.get()] { w->flusher_main(); });
  }
  return wal;
}

WriteAheadLog::~WriteAheadLog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  flusher_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dirty_ && options_.fsync != FsyncPolicy::off) fsync_active_locked();
    if (active_fd_ >= 0) ::close(active_fd_);
    if (dir_fd_ >= 0) ::close(dir_fd_);
  }
}

Status WriteAheadLog::scan_on_open() {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(options_.directory)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0 && name.size() > 8 &&
        name.substr(name.size() - 4) == ".seg") {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());  // fixed-width cid => lexicographic

  std::uint64_t prev_cid = 0;
  bool broken = false;
  for (const std::string& name : names) {
    Segment segment;
    segment.path = options_.directory + "/" + name;
    if (broken) {
      // Everything after a break is unreachable history: discard it.
      std::error_code ec;
      truncated_bytes_ += fs::file_size(segment.path, ec);
      fs::remove(segment.path, ec);
      continue;
    }
    const std::uint64_t truncated_before = truncated_bytes_;
    if (!scan_segment(segment, prev_cid)) {
      std::error_code ec;
      truncated_bytes_ += fs::file_size(segment.path, ec);
      fs::remove(segment.path, ec);
      broken = true;
      continue;
    }
    // A mid-segment truncation also severs everything after it: records in
    // later segments are beyond the hole and must not survive as a fork.
    if (truncated_bytes_ > truncated_before) broken = true;
    if (segment.last_cid > 0) prev_cid = segment.last_cid;
    segments_.push_back(std::move(segment));
  }
  tail_cid_ = prev_cid;

  // Reopen the last segment for appending (if any).
  if (!segments_.empty()) {
    Segment& last = segments_.back();
    active_fd_ = ::open(last.path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (active_fd_ < 0) {
      return Status::failure("wal: cannot reopen " + last.path);
    }
  }
  return Status::ok();
}

bool WriteAheadLog::scan_segment(Segment& segment, std::uint64_t prev_cid) {
  MappedFile file(segment.path);
  if (!file.ok()) return false;
  if (file.size() < kMagicSize ||
      std::memcmp(file.data(), kMagic, kMagicSize) != 0) {
    return false;  // bad header: the whole file is garbage
  }
  const ScanResult scan = scan_frames(file.data(), file.size(), prev_cid, nullptr);
  if (!scan.clean) {
    // Torn or corrupt tail: keep the clean prefix, drop the rest.
    truncated_bytes_ += file.size() - scan.valid_end;
    if (::truncate(segment.path.c_str(),
                   static_cast<off_t>(scan.valid_end)) != 0) {
      return false;
    }
    BFT_LOG(warn) << "wal: truncated " << segment.path << " to "
                  << scan.valid_end << " bytes ("
                  << (file.size() - scan.valid_end) << " torn bytes dropped)";
  }
  segment.first_cid = scan.first_cid;
  segment.last_cid = scan.last_cid;
  segment.size_bytes = scan.valid_end;
  return true;
}

Status WriteAheadLog::open_active_segment(std::uint64_t first_cid) {
  if (active_fd_ >= 0) {
    if (dirty_ && options_.fsync != FsyncPolicy::off) fsync_active_locked();
    ::close(active_fd_);
    active_fd_ = -1;
  }
  Segment segment;
  segment.path = options_.directory + "/" + segment_name(first_cid);
  active_fd_ = ::open(segment.path.c_str(),
                      O_CREAT | O_EXCL | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (active_fd_ < 0) {
    return Status::failure("wal: cannot create " + segment.path + ": " +
                           std::strerror(errno));
  }
  const Status header = write_fully(
      ByteView(reinterpret_cast<const std::uint8_t*>(kMagic), kMagicSize));
  if (!header.is_ok()) return header;
  // Make the new segment name durable before any record relies on it.
  if (options_.fsync != FsyncPolicy::off && dir_fd_ >= 0) ::fsync(dir_fd_);
  segment.size_bytes = kMagicSize;
  segments_.push_back(std::move(segment));
  return Status::ok();
}

Status WriteAheadLog::write_fully(ByteView data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(active_fd_, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::failure(std::string("wal: write failed: ") +
                             std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Status WriteAheadLog::append(std::uint64_t cid, ByteView value) {
  std::unique_lock<std::mutex> lock(mu_);
  if (cid <= tail_cid_) return Status::ok();  // idempotent re-persist

  if (active_fd_ < 0 ||
      (!segments_.empty() &&
       segments_.back().size_bytes >= options_.segment_bytes)) {
    const Status opened = open_active_segment(cid);
    if (!opened.is_ok()) return opened;
  }

  const std::uint32_t payload_len = static_cast<std::uint32_t>(8 + value.size());
  Bytes frame(kFrameHeader + payload_len);
  store_u64(frame.data() + kFrameHeader, cid);
  std::memcpy(frame.data() + kFrameHeader + 8, value.data(), value.size());
  store_u32(frame.data(), payload_len);
  store_u32(frame.data() + 4,
            crc32_ieee(ByteView(frame.data() + kFrameHeader, payload_len)));

  const Status written = write_fully(frame);
  if (!written.is_ok()) return written;

  Segment& active = segments_.back();
  active.size_bytes += frame.size();
  if (active.first_cid == 0) active.first_cid = cid;
  active.last_cid = cid;
  tail_cid_ = cid;
  ++appended_;
  if (options_.instruments.appends != nullptr) {
    options_.instruments.appends->add();
  }

  switch (options_.fsync) {
    case FsyncPolicy::always:
      fsync_active_locked();
      break;
    case FsyncPolicy::group:
      dirty_ = true;
      break;
    case FsyncPolicy::off:
      break;
  }
  return Status::ok();
}

void WriteAheadLog::fsync_active_locked() {
  if (active_fd_ < 0) return;
  const auto start = std::chrono::steady_clock::now();
  ::fsync(active_fd_);
  dirty_ = false;
  if (options_.instruments.fsync_ns != nullptr) {
    options_.instruments.fsync_ns->record(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }
}

void WriteAheadLog::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dirty_ && options_.fsync != FsyncPolicy::off) fsync_active_locked();
}

void WriteAheadLog::flusher_main() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    flusher_cv_.wait_for(
        lock, std::chrono::nanoseconds(options_.group_interval_ns),
        [this] { return stopping_; });
    if (stopping_) break;
    if (!dirty_ || active_fd_ < 0) continue;
    // Group commit: fsync a dup of the fd outside the lock so appends keep
    // flowing while the disk syncs. Writes that land after the dup simply
    // re-mark the log dirty for the next round.
    const int fd = ::dup(active_fd_);
    dirty_ = false;
    lock.unlock();
    const auto start = std::chrono::steady_clock::now();
    if (fd >= 0) {
      ::fsync(fd);
      ::close(fd);
    }
    const std::int64_t elapsed =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (options_.instruments.fsync_ns != nullptr) {
      options_.instruments.fsync_ns->record(elapsed);
    }
    lock.lock();
  }
}

std::uint64_t WriteAheadLog::replay(
    std::uint64_t after,
    const std::function<void(std::uint64_t, ByteView)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t next = after + 1;
  std::uint64_t emitted = 0;
  for (const Segment& segment : segments_) {
    if (segment.last_cid != 0 && segment.last_cid < next) continue;
    MappedFile file(segment.path);
    if (!file.ok() || file.size() < kMagicSize) break;
    bool stop = false;
    const std::function<void(std::uint64_t, ByteView)> emit =
        [&](std::uint64_t cid, ByteView value) {
          if (stop || cid < next) return;
          if (cid > next) {  // gap: the rest is unusable
            stop = true;
            return;
          }
          fn(cid, value);
          ++next;
          ++emitted;
        };
    scan_frames(file.data(), file.size(), 0, &emit);
    if (stop) break;
  }
  return emitted;
}

void WriteAheadLog::prune_below(std::uint64_t cid) {
  std::lock_guard<std::mutex> lock(mu_);
  while (segments_.size() > 1) {
    const Segment& first = segments_.front();
    if (first.last_cid == 0 || first.last_cid >= cid) break;
    std::error_code ec;
    fs::remove(first.path, ec);
    segments_.erase(segments_.begin());
  }
}

std::uint64_t WriteAheadLog::tail_cid() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tail_cid_;
}

std::uint64_t WriteAheadLog::appended_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

std::size_t WriteAheadLog::segment_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.size();
}

}  // namespace bft::storage

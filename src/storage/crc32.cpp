#include "storage/crc32.hpp"

#include <array>

namespace bft::storage {

namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32_ieee_update(std::uint32_t seed, ByteView data) {
  const auto& t = table();
  std::uint32_t crc = ~seed;
  for (const std::uint8_t byte : data) {
    crc = (crc >> 8) ^ t[(crc ^ byte) & 0xFFu];
  }
  return ~crc;
}

std::uint32_t crc32_ieee(ByteView data) { return crc32_ieee_update(0, data); }

}  // namespace bft::storage

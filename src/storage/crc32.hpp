// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for on-disk frame
// integrity. Cryptographic digests guard against adversaries; the WAL and
// checkpoint files only need to detect torn writes and bit rot, where a
// 4-byte CRC per frame is the storage-systems standard (and 8x cheaper than
// SHA-256 on the append path).
#pragma once

#include "common/bytes.hpp"

namespace bft::storage {

/// CRC-32 of `data` (initial value 0; standard final xor). Matches zlib's
/// crc32(): crc32_ieee(to_bytes("123456789")) == 0xCBF43926.
std::uint32_t crc32_ieee(ByteView data);

/// Streaming form: feed the previous return value back in as `seed` to
/// checksum discontiguous parts (seed 0 to start).
std::uint32_t crc32_ieee_update(std::uint32_t seed, ByteView data);

}  // namespace bft::storage

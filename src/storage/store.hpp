// Per-node durable storage root: one data directory owning a write-ahead log
// of decided values and a dual-slot checkpoint store, stamped with the node
// id so a replica cannot accidentally start against another node's history
// (which would serve a forked view of the chain).
//
// Layout under `directory`:
//   NODE                 one-line stamp "node <id>\n" written on first open
//   wal/wal-*.seg        append-only decision log (storage/wal.hpp)
//   checkpoint-{a,b}.ckpt  alternating checkpoint slots (storage/checkpoint.hpp)
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "obs/metrics.hpp"
#include "storage/checkpoint.hpp"
#include "storage/wal.hpp"

namespace bft::storage {

struct StoreOptions {
  std::string directory;       // created if missing
  std::uint32_t node_id = 0;   // stamped into NODE; mismatch refuses to open
  std::size_t wal_segment_bytes = 8u << 20;
  FsyncPolicy fsync = FsyncPolicy::group;
  std::int64_t group_interval_ns = 2'000'000;
  obs::MetricsRegistry* metrics = nullptr;  // optional storage.* instruments
};

/// Owns the durable state of one replica process. All methods delegate to the
/// WAL / checkpoint store; this class adds the node-id stamp, the metric
/// registrations and restart bookkeeping (replayed-record counting).
class NodeStore {
 public:
  static Result<std::unique_ptr<NodeStore>> open(StoreOptions options);

  /// Write-ahead persist of one decided value (call BEFORE executing it).
  Status append_decision(std::uint64_t cid, ByteView value);

  /// Valid checkpoints, newest first (0..2 entries).
  std::vector<Checkpoint> load_checkpoints() const { return checkpoints_->load(); }

  /// Persists a checkpoint and prunes WAL segments older than the retained
  /// window (both on-disk slots).
  Status write_checkpoint(const Checkpoint& cp);

  /// Replays contiguous decisions with cid > `after`; counts them into the
  /// storage.replayed_blocks metric. Returns the number replayed.
  std::uint64_t replay(
      std::uint64_t after,
      const std::function<void(std::uint64_t cid, ByteView value)>& fn);

  /// Force-fsync outstanding WAL writes (used before orderly shutdown).
  void flush() { wal_->flush(); }

  /// Startup recovery runs on the replica's own event loop; the hosting
  /// process sets/reads this to know when the replay counters are final
  /// (e.g. bft_node blocks on it before printing its storage banner).
  void mark_recovery_complete() {
    recovery_complete_.store(true, std::memory_order_release);
  }
  bool recovery_complete() const {
    return recovery_complete_.load(std::memory_order_acquire);
  }

  const std::string& directory() const { return options_.directory; }
  std::uint64_t wal_tail_cid() const { return wal_->tail_cid(); }
  std::uint64_t replayed_records() const { return replayed_; }
  std::uint64_t truncated_tail_bytes() const {
    return wal_->truncated_tail_bytes();
  }
  WriteAheadLog& wal() { return *wal_; }

 private:
  explicit NodeStore(StoreOptions options);

  StoreOptions options_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::unique_ptr<CheckpointStore> checkpoints_;
  std::uint64_t replayed_ = 0;
  std::atomic<bool> recovery_complete_{false};

  obs::Counter* replayed_metric_ = nullptr;    // storage.replayed_blocks
  obs::Counter* checkpoint_bytes_ = nullptr;   // storage.checkpoint_bytes
};

}  // namespace bft::storage

// Append-only write-ahead log of decided consensus values.
//
// On-disk layout (see DESIGN.md §9): a directory of segment files named
// `wal-<first-cid, 20 decimal digits>.seg`. Each segment starts with an
// 8-byte magic ("BFTWAL1\n") followed by length+CRC32-framed records:
//
//   u32 payload_len | u32 crc32(payload) | payload
//   payload = u64 cid (LE) | value bytes
//
// Records carry strictly increasing cids (consecutive on the normal path; a
// state-transfer jump may leave a gap, which replay treats as the end of the
// usable prefix). Segments rotate once the active one exceeds
// `segment_bytes`; whole segments strictly below a persisted checkpoint are
// pruned.
//
// Durability policies:
//   * always — fsync inline after every append (slow, zero loss window);
//   * group  — appends only write(); a background flusher thread fsyncs the
//              active segment every `group_interval_ns` while dirty
//              (group commit: one fsync amortizes every append in the
//              window);
//   * off    — never fsync (page cache only; survives process crashes, not
//              power loss).
//
// Crash recovery: open() scans every segment with mmap-backed sequential
// reads, validates each frame, and truncates the log at the first torn,
// corrupt or non-monotonic frame — the clean prefix survives, everything
// after the break (including later segments) is discarded, and the byte
// count is reported so operators can see how much a power failure cost.
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "obs/metrics.hpp"

namespace bft::storage {

enum class FsyncPolicy : std::uint8_t { always = 0, group = 1, off = 2 };

/// Parses "always" | "group" | "off" (the --fsync flag values).
Result<FsyncPolicy> parse_fsync_policy(const std::string& name);
const char* fsync_policy_name(FsyncPolicy policy);

/// Pre-resolved instrument handles (all optional). The owning NodeStore
/// registers the storage.* names; the WAL only bumps them.
struct WalInstruments {
  obs::Counter* appends = nullptr;            // storage.wal_appends
  obs::LatencyHistogram* fsync_ns = nullptr;  // storage.fsync_ns
  obs::Counter* truncated_tail = nullptr;     // storage.truncated_tail_bytes
};

struct WalOptions {
  std::string directory;               // created if missing
  std::size_t segment_bytes = 8u << 20;  // rotate past this size
  FsyncPolicy fsync = FsyncPolicy::group;
  std::int64_t group_interval_ns = 2'000'000;  // flusher period under `group`
  WalInstruments instruments;
};

class WriteAheadLog {
 public:
  /// Opens (creating the directory if needed), scans all segments and
  /// truncates any torn/corrupt tail. Fails on unreadable directories.
  static Result<std::unique_ptr<WriteAheadLog>> open(WalOptions options);

  /// Joins the flusher (if any) and fsyncs dirty state (unless `off`).
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one decision. Records must arrive in increasing cid order;
  /// appends at or below the current tail cid are skipped (idempotent
  /// re-persist after a state transfer). Fails only on I/O errors.
  Status append(std::uint64_t cid, ByteView value);

  /// Invokes `fn` for every record with cid > `after` that is contiguous
  /// from `after` (first emitted must be after+1, then +1 each); stops at
  /// the first gap. Returns the number of records emitted.
  std::uint64_t replay(
      std::uint64_t after,
      const std::function<void(std::uint64_t cid, ByteView value)>& fn) const;

  /// fsync now if anything is unsynced (no-op under `off`).
  void flush();

  /// Deletes whole segments whose records all have cid < `cid`. The active
  /// segment is never pruned.
  void prune_below(std::uint64_t cid);

  /// Highest cid in the log (0 when empty).
  std::uint64_t tail_cid() const;
  /// Records accepted by append() in this process lifetime.
  std::uint64_t appended_records() const;
  /// Bytes discarded by torn-tail/corruption truncation at open().
  std::uint64_t truncated_tail_bytes() const { return truncated_bytes_; }
  std::size_t segment_count() const;

 private:
  struct Segment {
    std::string path;
    std::uint64_t first_cid = 0;  // 0 = header-only (no records yet)
    std::uint64_t last_cid = 0;
    std::uint64_t size_bytes = 0;
  };

  explicit WriteAheadLog(WalOptions options);

  Status scan_on_open();
  /// Validates one segment file; truncates it at the first bad frame.
  /// Returns false if the segment is unusable (bad header) — caller deletes.
  bool scan_segment(Segment& segment, std::uint64_t prev_cid);
  Status open_active_segment(std::uint64_t first_cid);
  Status write_fully(ByteView data);
  void fsync_active_locked();
  void flusher_main();

  WalOptions options_;
  mutable std::mutex mu_;
  std::vector<Segment> segments_;
  int active_fd_ = -1;
  int dir_fd_ = -1;
  std::uint64_t tail_cid_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t truncated_bytes_ = 0;
  bool dirty_ = false;

  // Group-commit flusher.
  std::thread flusher_;
  std::condition_variable flusher_cv_;
  bool stopping_ = false;
};

}  // namespace bft::storage

// Persistent replica checkpoints with atomic replacement.
//
// Two slots (`checkpoint-a.ckpt` / `checkpoint-b.ckpt`) alternate: a write
// goes to a temporary file, is fsynced, then renamed over the slot holding
// the older (or invalid) checkpoint, and the directory entry is fsynced. A
// crash at any point leaves at least one intact checkpoint; a torn write
// corrupts only the slot being replaced, which load() rejects by CRC.
//
// File format:
//   magic "BFTCKPT1" | u32 payload_len | u32 crc32(payload) | payload
//   payload = u64 cid | 32-byte integrity digest | u32-len snapshot bytes
//
// The integrity digest is computed by the application over its chain heads
// (ledger::chain_position_digest per channel); recovery recomputes it after
// restoring the snapshot and refuses the checkpoint on mismatch — a CRC-valid
// file that decodes into a forked or mis-stamped chain fails closed.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/serial.hpp"
#include "crypto/sha256.hpp"

namespace bft::storage {

struct Checkpoint {
  std::uint64_t cid = 0;            // decisions up to and including this one
  crypto::Hash256 integrity{};      // app chain-head digest at `cid`
  Bytes snapshot;                   // replica core snapshot (opaque here)
};

class CheckpointStore {
 public:
  /// Opens (creating the directory if needed). Never fails on corrupt slot
  /// contents — those surface as an empty load().
  static Result<std::unique_ptr<CheckpointStore>> open(std::string directory);

  /// All slots that parse and pass CRC, highest cid first (0..2 entries).
  std::vector<Checkpoint> load() const;

  /// Atomically persists `cp` into the slot holding the older checkpoint.
  Status write(const Checkpoint& cp);

  /// Size of the last file written by this process (0 before any write).
  std::uint64_t last_written_bytes() const { return last_written_bytes_; }

  /// Lowest cid across valid slots (0 when empty): WAL segments entirely
  /// below this are no longer needed for recovery.
  std::uint64_t retain_floor() const;

 private:
  explicit CheckpointStore(std::string directory);

  std::string slot_path(int slot) const;

  std::string directory_;
  std::uint64_t last_written_bytes_ = 0;
};

}  // namespace bft::storage

#include "storage/checkpoint.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>

#include <fcntl.h>
#include <unistd.h>

#include "storage/crc32.hpp"

namespace bft::storage {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'B', 'F', 'T', 'C', 'K', 'P', 'T', '1'};
constexpr std::size_t kHeaderSize = sizeof(kMagic) + 8;  // + len + crc

std::optional<Checkpoint> read_slot(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  Bytes contents;
  std::uint8_t buf[64 * 1024];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    contents.insert(contents.end(), buf, buf + n);
  }
  std::fclose(file);

  if (contents.size() < kHeaderSize) return std::nullopt;  // empty or partial
  if (std::memcmp(contents.data(), kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  Reader header(ByteView(contents.data() + sizeof(kMagic), 8));
  const std::uint32_t payload_len = header.u32();
  const std::uint32_t crc = header.u32();
  if (contents.size() != kHeaderSize + payload_len) {
    return std::nullopt;  // truncated (torn write) or trailing garbage
  }
  const ByteView payload(contents.data() + kHeaderSize, payload_len);
  if (crc32_ieee(payload) != crc) return std::nullopt;

  try {
    Reader r(payload);
    Checkpoint cp;
    cp.cid = r.u64();
    cp.integrity = crypto::hash_from_bytes(r.raw(32));
    cp.snapshot = r.bytes();
    r.expect_done();
    return cp;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace

CheckpointStore::CheckpointStore(std::string directory)
    : directory_(std::move(directory)) {}

Result<std::unique_ptr<CheckpointStore>> CheckpointStore::open(
    std::string directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Result<std::unique_ptr<CheckpointStore>>::failure(
        "checkpoint: cannot create " + directory + ": " + ec.message());
  }
  return std::unique_ptr<CheckpointStore>(
      new CheckpointStore(std::move(directory)));
}

std::string CheckpointStore::slot_path(int slot) const {
  return directory_ + (slot == 0 ? "/checkpoint-a.ckpt" : "/checkpoint-b.ckpt");
}

std::vector<Checkpoint> CheckpointStore::load() const {
  std::vector<Checkpoint> out;
  for (int slot = 0; slot < 2; ++slot) {
    auto cp = read_slot(slot_path(slot));
    if (cp.has_value()) out.push_back(std::move(*cp));
  }
  std::sort(out.begin(), out.end(),
            [](const Checkpoint& a, const Checkpoint& b) { return a.cid > b.cid; });
  return out;
}

std::uint64_t CheckpointStore::retain_floor() const {
  const std::vector<Checkpoint> slots = load();
  if (slots.empty()) return 0;
  return slots.back().cid;
}

Status CheckpointStore::write(const Checkpoint& cp) {
  // Pick the victim slot: the one with the older checkpoint (invalid = oldest).
  int victim = 0;
  std::uint64_t victim_cid = UINT64_MAX;
  for (int slot = 0; slot < 2; ++slot) {
    const auto existing = read_slot(slot_path(slot));
    const std::uint64_t cid = existing.has_value() ? existing->cid : 0;
    if (cid < victim_cid) {
      victim_cid = cid;
      victim = slot;
    }
  }

  Writer payload;
  payload.u64(cp.cid);
  payload.raw(ByteView(cp.integrity.data(), cp.integrity.size()));
  payload.bytes(cp.snapshot);

  Writer file;
  file.raw(ByteView(reinterpret_cast<const std::uint8_t*>(kMagic),
                    sizeof(kMagic)));
  file.u32(static_cast<std::uint32_t>(payload.size()));
  file.u32(crc32_ieee(ByteView(payload.data().data(), payload.size())));
  file.raw(ByteView(payload.data().data(), payload.size()));

  const std::string target = slot_path(victim);
  const std::string tmp = target + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::failure("checkpoint: cannot create " + tmp + ": " +
                           std::strerror(errno));
  }
  const Bytes& bytes = file.data();
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::failure(std::string("checkpoint: write failed: ") +
                             std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  ::fsync(fd);
  ::close(fd);
  if (::rename(tmp.c_str(), target.c_str()) != 0) {
    return Status::failure("checkpoint: rename to " + target + " failed: " +
                           std::strerror(errno));
  }
  const int dir_fd = ::open(directory_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  last_written_bytes_ = bytes.size();
  return Status::ok();
}

}  // namespace bft::storage

#include "storage/store.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/log.hpp"

namespace bft::storage {

namespace fs = std::filesystem;

namespace {

/// Reads the NODE stamp; empty string when absent.
std::string read_stamp(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return "";
  char buf[128] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, file);
  std::fclose(file);
  return std::string(buf, n);
}

}  // namespace

NodeStore::NodeStore(StoreOptions options) : options_(std::move(options)) {}

Result<std::unique_ptr<NodeStore>> NodeStore::open(StoreOptions options) {
  using R = Result<std::unique_ptr<NodeStore>>;

  std::error_code ec;
  fs::create_directories(options.directory, ec);
  if (ec) {
    return R::failure("storage: cannot create " + options.directory + ": " +
                      ec.message());
  }

  // Node-id stamp: refuse to adopt another node's history. A mis-addressed
  // --data-dir must fail loudly, not replay a different replica's chain.
  const std::string stamp_path = options.directory + "/NODE";
  const std::string want = "node " + std::to_string(options.node_id) + "\n";
  const std::string have = read_stamp(stamp_path);
  if (have.empty()) {
    std::FILE* file = std::fopen(stamp_path.c_str(), "wb");
    if (file == nullptr) {
      return R::failure("storage: cannot write " + stamp_path + ": " +
                        std::strerror(errno));
    }
    std::fwrite(want.data(), 1, want.size(), file);
    std::fclose(file);
  } else if (have != want) {
    return R::failure("storage: data dir " + options.directory +
                      " is stamped \"" +
                      have.substr(0, have.find('\n')) +
                      "\" but this process is node " +
                      std::to_string(options.node_id) +
                      " — refusing to reuse another node's history");
  }

  std::unique_ptr<NodeStore> store(new NodeStore(options));

  WalOptions wal_options;
  wal_options.directory = options.directory + "/wal";
  wal_options.segment_bytes = options.wal_segment_bytes;
  wal_options.fsync = options.fsync;
  wal_options.group_interval_ns = options.group_interval_ns;
  if (options.metrics != nullptr) {
    auto& m = *options.metrics;
    wal_options.instruments.appends =
        &m.counter("storage.wal_appends", "decisions appended to the WAL");
    wal_options.instruments.fsync_ns = &m.histogram(
        "storage.fsync_ns", "ns", "latency of WAL fsync calls");
    wal_options.instruments.truncated_tail = &m.counter(
        "storage.truncated_tail_bytes",
        "bytes discarded truncating torn/corrupt WAL tails at open");
    store->replayed_metric_ = &m.counter(
        "storage.replayed_blocks", "decisions replayed from disk at restart");
    store->checkpoint_bytes_ = &m.counter(
        "storage.checkpoint_bytes", "bytes written to checkpoint files");
  }

  auto wal = WriteAheadLog::open(std::move(wal_options));
  if (!wal.ok()) return R::failure(wal.error());
  store->wal_ = std::move(wal).take();

  auto checkpoints = CheckpointStore::open(options.directory);
  if (!checkpoints.ok()) return R::failure(checkpoints.error());
  store->checkpoints_ = std::move(checkpoints).take();

  return R(std::move(store));
}

Status NodeStore::append_decision(std::uint64_t cid, ByteView value) {
  return wal_->append(cid, value);
}

Status NodeStore::write_checkpoint(const Checkpoint& cp) {
  Status status = checkpoints_->write(cp);
  if (!status.is_ok()) return status;
  if (checkpoint_bytes_ != nullptr) {
    checkpoint_bytes_->add(checkpoints_->last_written_bytes());
  }
  // Everything below the older surviving slot is unreachable by recovery.
  const std::uint64_t floor = checkpoints_->retain_floor();
  if (floor > 0) wal_->prune_below(floor);
  return Status::ok();
}

std::uint64_t NodeStore::replay(
    std::uint64_t after,
    const std::function<void(std::uint64_t cid, ByteView value)>& fn) {
  const std::uint64_t n = wal_->replay(after, fn);
  replayed_ += n;
  if (replayed_metric_ != nullptr) replayed_metric_->add(n);
  return n;
}

}  // namespace bft::storage

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace bft {

void Histogram::merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  dirty_ = true;
}

void Histogram::sort_if_needed() const {
  if (dirty_) {
    std::sort(samples_.begin(), samples_.end());
    dirty_ = false;
  }
}

double Histogram::min() const {
  if (empty()) throw std::logic_error("Histogram::min on empty histogram");
  sort_if_needed();
  return samples_.front();
}

double Histogram::max() const {
  if (empty()) throw std::logic_error("Histogram::max on empty histogram");
  sort_if_needed();
  return samples_.back();
}

double Histogram::mean() const {
  if (empty()) throw std::logic_error("Histogram::mean on empty histogram");
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Histogram::percentile(double q) const {
  if (empty()) throw std::logic_error("Histogram::percentile on empty histogram");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: q outside [0,1]");
  sort_if_needed();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(index, samples_.size() - 1)];
}

double RateMeter::rate(double seconds) const {
  if (seconds <= 0.0) throw std::invalid_argument("RateMeter::rate: seconds <= 0");
  return static_cast<double>(events_) / seconds;
}

}  // namespace bft

// Fixed-size worker pool used for block signing (the paper's "signing &
// sending threads", §5.1) and for running real-runtime node hosts.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bft {

class ThreadPool {
 public:
  /// Spawns `workers` threads (>= 1).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job; throws std::runtime_error after shutdown began.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished executing.
  void drain();

  std::size_t worker_count() const { return threads_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> jobs_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace bft

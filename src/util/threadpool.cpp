#include "util/threadpool.hpp"

#include <stdexcept>

namespace bft {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) throw std::invalid_argument("ThreadPool: need >= 1 worker");
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
    jobs_.push_back(std::move(job));
  }
  wake_.notify_one();
}

void ThreadPool::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return jobs_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stopping and nothing left to run
      job = std::move(jobs_.front());
      jobs_.pop_front();
      ++in_flight_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (jobs_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace bft

// Bounded-optional MPMC blocking queue for the real (threaded) runtime:
// frontends' client threads, node inboxes and replier fan-out.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace bft {

template <typename T>
class BlockingQueue {
 public:
  /// capacity == 0 means unbounded.
  explicit BlockingQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Blocks while full; returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T value) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || (capacity_ != 0 && items_.size() >= capacity_)) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the queue is closed-and-empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain remaining items.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace bft

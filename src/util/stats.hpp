// Latency/throughput accumulators used by benches and EXPERIMENTS.md tables.
#pragma once

#include <cstdint>
#include <vector>

namespace bft {

/// Collects samples and reports order statistics. Not thread-safe.
class Histogram {
 public:
  void add(double sample) { samples_.push_back(sample); dirty_ = true; }
  void merge(const Histogram& other);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  /// q in [0,1]; nearest-rank on the sorted samples.
  double percentile(double q) const;
  double median() const { return percentile(0.5); }

 private:
  void sort_if_needed() const;

  mutable std::vector<double> samples_;
  mutable bool dirty_ = false;
};

/// Counts events over a known duration; reports a rate.
class RateMeter {
 public:
  void add(std::uint64_t events = 1) { events_ += events; }
  std::uint64_t events() const { return events_; }
  /// events per second over `seconds` (> 0).
  double rate(double seconds) const;

 private:
  std::uint64_t events_ = 0;
};

}  // namespace bft

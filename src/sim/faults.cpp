#include "sim/faults.hpp"

namespace bft::sim {

FaultPlan& FaultPlan::crash_at(SimTime at, ProcessId p) {
  crashes.push_back(ProcessFault{at, p});
  return *this;
}

FaultPlan& FaultPlan::recover_at(SimTime at, ProcessId p) {
  recoveries.push_back(ProcessFault{at, p});
  return *this;
}

FaultPlan& FaultPlan::crash_between(SimTime at, SimTime until, ProcessId p) {
  crash_at(at, p);
  recover_at(until, p);
  return *this;
}

FaultPlan& FaultPlan::partition_between(SimTime from, SimTime until,
                                        std::vector<ProcessId> group) {
  partitions.push_back(Partition{from, until, std::move(group)});
  return *this;
}

FaultPlan& FaultPlan::link(LinkFault fault) {
  link_faults.push_back(std::move(fault));
  return *this;
}

LinkFaultModel::LinkFaultModel(const FaultPlan& plan,
                               std::uint64_t runtime_seed)
    : partitions_(plan.partitions),
      link_faults_(plan.link_faults),
      // Mix the plan's own seed with the runtime seed so distinct plans on
      // the same cluster (and the same plan on distinct clusters) draw
      // independent fault patterns.
      rng_(plan.seed * 0x9e3779b97f4a7c15ULL + runtime_seed) {}

LinkVerdict LinkFaultModel::decide(ProcessId from, ProcessId to, SimTime now) {
  for (const Partition& p : partitions_) {
    if (p.active_at(now) && p.severs(from, to)) {
      return LinkVerdict{LinkFaultKind::drop, 0};
    }
  }
  for (const LinkFault& f : link_faults_) {
    if (!f.active_at(now) || !f.matches(from, to)) continue;
    // The coin is flipped only for matching rules, so adding a rule for one
    // link does not perturb the fault pattern of unrelated links beyond the
    // shared stream draw — and the whole run stays seed-reproducible.
    if (f.probability < 1.0 && rng_.uniform01() >= f.probability) continue;
    SimTime delay = f.delay_min;
    if (f.delay_max > f.delay_min) {
      delay = rng_.uniform_range(f.delay_min, f.delay_max);
    }
    return LinkVerdict{f.kind, delay};
  }
  return LinkVerdict{};
}

}  // namespace bft::sim

// Network models for the simulated runtime.
//
// A model answers one question: when does a message of `size` bytes sent from
// process a to process b at time t arrive? Two effects are modelled:
//
//   * serialization — each process has an egress NIC and an ingress NIC with
//     finite bandwidth; transmissions queue FIFO per NIC (this is what makes
//     block fan-out to many receivers the bottleneck in Figure 7);
//   * propagation — per-pair base latency plus multiplicative jitter (this is
//     what shapes the WAN latencies of Figures 8/9).
//
// Processes may share a machine (the paper packs 16-32 frontends onto two
// client machines); machine mapping makes them share NICs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/scheduler.hpp"

namespace bft::sim {

using ProcessId = std::uint32_t;

struct NetworkConfig {
  /// NIC bandwidth in bytes/second (full duplex: egress and ingress separate).
  double bandwidth_bps = 125e6;  // 1 Gbit/s
  /// Fixed per-message overhead added to the payload size (headers, framing).
  std::uint32_t overhead_bytes = 120;
  /// Multiplicative latency jitter (sigma of a lognormal with mean 1); 0 = none.
  double jitter_sigma = 0.0;
  /// Messages between processes on the same machine skip the NICs and use
  /// this constant latency instead.
  SimTime loopback_latency = 20 * kMicrosecond;
};

class Network {
 public:
  /// `process_machine[p]` maps each process to a machine; processes on the
  /// same machine share NICs. `latency[m1][m2]` is the one-way propagation
  /// delay between machines.
  Network(NetworkConfig config, std::vector<std::uint32_t> process_machine,
          std::vector<std::vector<SimTime>> machine_latency, Rng rng);

  /// Phase 1 of a transfer: egress serialization + propagation. Returns when
  /// the message reaches the receiver's NIC (`ingress == true`) or, for
  /// same-machine messages, the final delivery time (`ingress == false`).
  /// Call once per message in send order.
  struct Transit {
    SimTime arrival = 0;
    bool needs_ingress = false;
  };
  Transit begin_transit(ProcessId from, ProcessId to, std::size_t payload_size,
                        SimTime now);

  /// Phase 2: ingress serialization at the receiver's NIC. MUST be called in
  /// nic_arrival order (the simulated runtime does this by scheduling the
  /// admission as an event), otherwise far senders would reserve the NIC
  /// ahead of earlier-arriving near traffic.
  SimTime finish_transit(ProcessId to, std::size_t payload_size,
                         SimTime nic_arrival);

  /// Convenience for unit tests: both phases back to back.
  SimTime delivery_time(ProcessId from, ProcessId to, std::size_t payload_size,
                        SimTime now);

  /// Overrides one machine's NIC bandwidth (bytes/s, both directions); the
  /// default is NetworkConfig::bandwidth_bps.
  void set_machine_bandwidth(std::uint32_t machine, double bandwidth_bps);

  std::uint32_t machine_of(ProcessId p) const { return process_machine_.at(p); }

 private:
  NetworkConfig config_;
  std::vector<std::uint32_t> process_machine_;
  std::vector<std::vector<SimTime>> machine_latency_;
  std::vector<SimTime> egress_free_;  // per machine
  std::vector<SimTime> ingress_free_;
  std::vector<double> machine_bandwidth_;
  Rng rng_;
};

/// Builds a uniform-latency single-switch LAN where every process has its own
/// machine.
Network make_lan(std::uint32_t processes, SimTime latency, NetworkConfig config,
                 std::uint64_t seed);

}  // namespace bft::sim

#include "sim/network.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bft::sim {

Network::Network(NetworkConfig config, std::vector<std::uint32_t> process_machine,
                 std::vector<std::vector<SimTime>> machine_latency, Rng rng)
    : config_(config),
      process_machine_(std::move(process_machine)),
      machine_latency_(std::move(machine_latency)),
      rng_(rng) {
  if (config_.bandwidth_bps <= 0) {
    throw std::invalid_argument("Network: bandwidth must be positive");
  }
  std::uint32_t machines = 0;
  for (auto m : process_machine_) machines = std::max(machines, m + 1);
  if (machine_latency_.size() < machines) {
    throw std::invalid_argument("Network: latency matrix smaller than machine count");
  }
  for (const auto& row : machine_latency_) {
    if (row.size() != machine_latency_.size()) {
      throw std::invalid_argument("Network: latency matrix must be square");
    }
  }
  egress_free_.assign(machine_latency_.size(), 0);
  ingress_free_.assign(machine_latency_.size(), 0);
  machine_bandwidth_.assign(machine_latency_.size(), config_.bandwidth_bps);
}

void Network::set_machine_bandwidth(std::uint32_t machine, double bandwidth_bps) {
  if (bandwidth_bps <= 0) {
    throw std::invalid_argument("set_machine_bandwidth: bandwidth must be positive");
  }
  machine_bandwidth_.at(machine) = bandwidth_bps;
}

namespace {

SimTime wire_time_for(double bandwidth_bps, std::uint32_t overhead,
                      std::size_t payload_size) {
  const double bytes = static_cast<double>(payload_size) + overhead;
  return static_cast<SimTime>(bytes / bandwidth_bps *
                              static_cast<double>(kSecond));
}

}  // namespace

Network::Transit Network::begin_transit(ProcessId from, ProcessId to,
                                        std::size_t payload_size, SimTime now) {
  const std::uint32_t m_from = process_machine_.at(from);
  const std::uint32_t m_to = process_machine_.at(to);

  if (m_from == m_to) {
    return Transit{now + config_.loopback_latency, false};
  }

  const SimTime wire_time =
      wire_time_for(machine_bandwidth_[m_from], config_.overhead_bytes,
                    payload_size);

  // Egress serialization at the sender's NIC.
  SimTime& egress = egress_free_[m_from];
  const SimTime tx_start = std::max(now, egress);
  const SimTime tx_done = tx_start + wire_time;
  egress = tx_done;

  // Propagation with optional jitter.
  SimTime latency = machine_latency_[m_from][m_to];
  if (config_.jitter_sigma > 0.0) {
    latency = static_cast<SimTime>(static_cast<double>(latency) *
                                   rng_.lognormal_factor(config_.jitter_sigma));
  }
  return Transit{tx_done + latency, true};
}

SimTime Network::finish_transit(ProcessId to, std::size_t payload_size,
                                SimTime nic_arrival) {
  const std::uint32_t m_to = process_machine_.at(to);
  SimTime& ingress = ingress_free_[m_to];
  const SimTime rx_start = std::max(nic_arrival, ingress);
  const SimTime rx_done =
      rx_start + wire_time_for(machine_bandwidth_[m_to], config_.overhead_bytes,
                               payload_size);
  ingress = rx_done;
  return rx_done;
}

SimTime Network::delivery_time(ProcessId from, ProcessId to,
                               std::size_t payload_size, SimTime now) {
  const Transit transit = begin_transit(from, to, payload_size, now);
  if (!transit.needs_ingress) return transit.arrival;
  return finish_transit(to, payload_size, transit.arrival);
}

Network make_lan(std::uint32_t processes, SimTime latency, NetworkConfig config,
                 std::uint64_t seed) {
  std::vector<std::uint32_t> machine(processes);
  for (std::uint32_t p = 0; p < processes; ++p) machine[p] = p;
  std::vector<std::vector<SimTime>> matrix(
      processes, std::vector<SimTime>(processes, latency));
  for (std::uint32_t p = 0; p < processes; ++p) matrix[p][p] = 0;
  return Network(config, std::move(machine), std::move(matrix), Rng(seed));
}

}  // namespace bft::sim

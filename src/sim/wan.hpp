// Inter-region latencies for the geo-distributed experiments (§6.3).
//
// The paper deploys ordering nodes in Oregon, Ireland, Sydney and São Paulo
// (plus Virginia as WHEAT's extra replica) and frontends in Canada, Oregon,
// Virginia and São Paulo, all on Amazon EC2. We substitute the live testbed
// with a latency matrix of publicly measured AWS inter-region round-trip
// times (c. 2017, the paper's era); one-way delay is RTT/2 with lognormal
// jitter applied by the network model.
#pragma once

#include <string>
#include <vector>

#include "sim/scheduler.hpp"

namespace bft::sim {

enum class Region {
  oregon = 0,
  ireland = 1,
  sydney = 2,
  sao_paulo = 3,
  virginia = 4,
  canada = 5,
};

constexpr std::size_t kRegionCount = 6;

const std::string& region_name(Region r);

/// One-way propagation delay between two regions (RTT/2). Intra-region pairs
/// get a small in-datacenter delay.
SimTime one_way_latency(Region a, Region b);

/// Builds the full machine-latency matrix for a deployment: machine i sits in
/// regions[i].
std::vector<std::vector<SimTime>> wan_latency_matrix(
    const std::vector<Region>& regions);

}  // namespace bft::sim

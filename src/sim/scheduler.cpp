#include "sim/scheduler.hpp"

#include <stdexcept>

namespace bft::sim {

void Scheduler::schedule_at(SimTime at, std::function<void()> fn) {
  if (at < now_) throw std::invalid_argument("Scheduler: event scheduled in the past");
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void Scheduler::schedule_after(SimTime delay, std::function<void()> fn) {
  schedule_at(now_ + delay, std::move(fn));
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the function object must be moved out
  // before pop, so copy the header fields and steal the callable.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

void Scheduler::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) step();
  if (now_ < deadline) now_ = deadline;
}

void Scheduler::run_to_completion() {
  while (step()) {
  }
}

}  // namespace bft::sim

#include "sim/cpu.hpp"

#include <algorithm>
#include <stdexcept>

namespace bft::sim {

CpuModel::CpuModel(CpuConfig config) : config_(config) {
  if (config_.worker_threads == 0) {
    throw std::invalid_argument("CpuModel: need at least one worker thread");
  }
  worker_free_.assign(config_.worker_threads, 0);
  prologue_free_.assign(config_.prologue_workers, 0);
}

SimTime CpuModel::run_protocol_job(SimTime now, SimTime cost) {
  const SimTime start = std::max(now, protocol_free_);
  const SimTime idle = start - std::max(protocol_free_, SimTime{0});
  const SimTime done = start + cost;
  protocol_free_ = done;

  // Busy fraction of the interval spanning this job plus the idle gap
  // preceding it, folded into the EWMA.
  const double span = static_cast<double>(cost + idle);
  if (span > 0) {
    const double busy = static_cast<double>(cost) / span;
    utilization_ = config_.utilization_alpha * busy +
                   (1.0 - config_.utilization_alpha) * utilization_;
  }
  return done;
}

SimTime CpuModel::run_worker_job(SimTime now, SimTime cost) {
  auto it = std::min_element(worker_free_.begin(), worker_free_.end());
  const SimTime start = std::max(now, *it);
  const double factor = 1.0 + config_.contention_beta * utilization_;
  const SimTime done = start + static_cast<SimTime>(static_cast<double>(cost) * factor);
  *it = done;
  return done;
}

SimTime CpuModel::run_prologue_job(SimTime now, SimTime cost) {
  if (prologue_free_.empty()) {
    throw std::logic_error("CpuModel: prologue job without prologue workers");
  }
  auto it = std::min_element(prologue_free_.begin(), prologue_free_.end());
  const SimTime start = std::max(now, *it);
  const double factor = 1.0 + config_.contention_beta * utilization_;
  const SimTime done =
      start + static_cast<SimTime>(static_cast<double>(cost) * factor);
  *it = done;
  return done;
}

}  // namespace bft::sim

#include "sim/wan.hpp"

#include <array>
#include <stdexcept>

namespace bft::sim {

namespace {

// Round-trip times in milliseconds between AWS regions, approximating public
// measurements from the paper's period (2017): us-west-2, eu-west-1,
// ap-southeast-2, sa-east-1, us-east-1, ca-central-1.
constexpr std::array<std::array<double, kRegionCount>, kRegionCount> kRttMs = {{
    //           OR     IE     SYD    SP     VA     CA
    /* OR  */ {{0.5, 130.0, 160.0, 180.0, 70.0, 65.0}},
    /* IE  */ {{130.0, 0.5, 280.0, 185.0, 80.0, 90.0}},
    /* SYD */ {{160.0, 280.0, 0.5, 310.0, 200.0, 210.0}},
    /* SP  */ {{180.0, 185.0, 310.0, 0.5, 120.0, 130.0}},
    /* VA  */ {{70.0, 80.0, 200.0, 120.0, 0.5, 20.0}},
    /* CA  */ {{65.0, 90.0, 210.0, 130.0, 20.0, 0.5}},
}};

}  // namespace

const std::string& region_name(Region r) {
  static const std::array<std::string, kRegionCount> names = {
      "Oregon", "Ireland", "Sydney", "SaoPaulo", "Virginia", "Canada"};
  const auto idx = static_cast<std::size_t>(r);
  if (idx >= kRegionCount) throw std::out_of_range("region_name: bad region");
  return names[idx];
}

SimTime one_way_latency(Region a, Region b) {
  const auto ia = static_cast<std::size_t>(a);
  const auto ib = static_cast<std::size_t>(b);
  if (ia >= kRegionCount || ib >= kRegionCount) {
    throw std::out_of_range("one_way_latency: bad region");
  }
  return static_cast<SimTime>(kRttMs[ia][ib] / 2.0 *
                              static_cast<double>(kMillisecond));
}

std::vector<std::vector<SimTime>> wan_latency_matrix(
    const std::vector<Region>& regions) {
  const std::size_t n = regions.size();
  std::vector<std::vector<SimTime>> matrix(n, std::vector<SimTime>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      matrix[i][j] = i == j ? 0 : one_way_latency(regions[i], regions[j]);
    }
  }
  return matrix;
}

}  // namespace bft::sim

// Declarative fault injection for the simulated runtime.
//
// A FaultPlan describes, ahead of a run, everything that will go wrong:
//
//   * scheduled process faults — crash at t, recover at t (the runtime wipes
//     the process's pending timers and worker completions on crash, so a
//     recovery starts from a clean event slate);
//   * partitions that heal — during [from, until) messages crossing the
//     boundary between `group` and the rest of the cluster are dropped;
//   * per-link message faults — seeded-random drop / delay / duplicate /
//     corrupt with an activity window, optional endpoint restriction and a
//     probability.
//
// The plan itself is passive data; LinkFaultModel evaluates the message-level
// faults deterministically from a seed, and the simulated runtime applies the
// verdicts (see SimCluster::install_fault_plan). Keeping the evaluation here,
// below the runtime layer, lets unit tests exercise fault selection without a
// cluster.
//
// The randomized chaos sweep (`ctest -L chaos`) builds one FaultPlan per
// seed; DESIGN.md §6c describes the scenario shapes and the
// BFT_CHAOS_SEED / BFT_CHAOS_METRICS_DIR reproduction workflow. Fault
// evaluation shares no state with the obs metrics layer, which is what keeps
// an instrumented chaos run byte-identical to an uninstrumented one.
#pragma once

#include <algorithm>
#include <limits>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "sim/scheduler.hpp"

namespace bft::sim {

using ProcessId = std::uint32_t;

/// Activity window end meaning "never heals".
constexpr SimTime kSimForever = std::numeric_limits<SimTime>::max();

/// What a link fault does to a matched message.
enum class LinkFaultKind : std::uint8_t { drop, delay, duplicate, corrupt };

/// One probabilistic message-level fault rule.
struct LinkFault {
  LinkFaultKind kind = LinkFaultKind::drop;
  /// Active while from <= now < until.
  SimTime from = 0;
  SimTime until = kSimForever;
  /// Endpoint restriction; nullopt matches any process.
  std::optional<ProcessId> src;
  std::optional<ProcessId> dst;
  /// Probability in [0, 1] that a matched message is affected.
  double probability = 1.0;
  /// Extra latency for `delay`, offset of the second copy for `duplicate`
  /// (uniform in [delay_min, delay_max]).
  SimTime delay_min = 0;
  SimTime delay_max = 0;

  bool active_at(SimTime now) const { return now >= from && now < until; }
  bool matches(ProcessId f, ProcessId t) const {
    return (!src.has_value() || *src == f) && (!dst.has_value() || *dst == t);
  }
};

/// A group of processes cut off from everyone else during [from, until).
struct Partition {
  SimTime from = 0;
  SimTime until = kSimForever;
  std::vector<ProcessId> group;

  bool active_at(SimTime now) const { return now >= from && now < until; }
  bool severs(ProcessId a, ProcessId b) const {
    const auto in = [this](ProcessId p) {
      return std::find(group.begin(), group.end(), p) != group.end();
    };
    return in(a) != in(b);
  }
};

/// A scheduled process-lifecycle event.
struct ProcessFault {
  SimTime at = 0;
  ProcessId process = 0;
};

/// The full declarative schedule of faults for one run.
struct FaultPlan {
  std::vector<ProcessFault> crashes;
  std::vector<ProcessFault> recoveries;
  std::vector<Partition> partitions;
  std::vector<LinkFault> link_faults;
  /// Seeds the link-fault coin flips (combined with the cluster seed).
  std::uint64_t seed = 0;

  // Fluent builders, so test scenarios read as a schedule.
  FaultPlan& crash_at(SimTime at, ProcessId p);
  FaultPlan& recover_at(SimTime at, ProcessId p);
  /// Crash at `at`, recover at `until`.
  FaultPlan& crash_between(SimTime at, SimTime until, ProcessId p);
  FaultPlan& partition_between(SimTime from, SimTime until,
                               std::vector<ProcessId> group);
  FaultPlan& link(LinkFault fault);

  bool empty() const {
    return crashes.empty() && recoveries.empty() && partitions.empty() &&
           link_faults.empty();
  }
};

/// Outcome of evaluating the message-level faults for one send.
struct LinkVerdict {
  /// nullopt = deliver untouched.
  std::optional<LinkFaultKind> action;
  /// For delay: added latency. For duplicate: offset of the extra copy.
  SimTime delay = 0;
};

/// Deterministic evaluator for partitions and link faults. One instance per
/// run; verdicts depend only on the plan, the seed and the call sequence, so
/// a rerun with the same seed replays the identical fault pattern.
class LinkFaultModel {
 public:
  LinkFaultModel(const FaultPlan& plan, std::uint64_t runtime_seed);

  /// Decides the fate of one message. Partitions take precedence; otherwise
  /// the first matching link fault whose coin flip hits applies.
  LinkVerdict decide(ProcessId from, ProcessId to, SimTime now);

 private:
  std::vector<Partition> partitions_;
  std::vector<LinkFault> link_faults_;
  Rng rng_;
};

}  // namespace bft::sim

// Deterministic discrete-event scheduler.
//
// Events are ordered by (time, insertion sequence), so two runs with the same
// seed execute the exact same event sequence — the property the benchmark
// determinism test relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace bft::sim {

/// Simulated time in nanoseconds since simulation start.
using SimTime = std::int64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000;
constexpr SimTime kMillisecond = 1000 * 1000;
constexpr SimTime kSecond = 1000 * 1000 * 1000;

class Scheduler {
 public:
  /// Schedules `fn` at absolute time `at` (must be >= now()).
  void schedule_at(SimTime at, std::function<void()> fn);
  /// Schedules `fn` after `delay` relative to now().
  void schedule_after(SimTime delay, std::function<void()> fn);

  SimTime now() const { return now_; }
  bool empty() const { return queue_.empty(); }
  std::uint64_t executed_events() const { return executed_; }

  /// Runs a single event; returns false if none remain.
  bool step();
  /// Runs until the queue empties or `deadline` passes; on return now() is
  /// min(deadline, time of last event).
  void run_until(SimTime deadline);
  /// Drains everything (use only with self-terminating workloads).
  void run_to_completion();

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace bft::sim

// Per-node CPU model for the simulated runtime.
//
// Each node mirrors the paper's Dell R410 (16 hardware threads) running two
// kinds of work:
//
//   * the protocol thread — BFT-SMaRt's single-threaded message loop, modelled
//     as a FIFO server whose per-event service times the protocol code charges
//     explicitly (charge_cpu);
//   * the worker pool — the 16 signing threads (§5.1), modelled as k parallel
//     servers.
//
// §6.2 observes a "tug-of-war" between the two: with the protocol stack near
// saturation, effective signing throughput drops from 8.4 ksig/s to ~5 ksig/s.
// We reproduce that with a contention factor: worker service times inflate by
// (1 + beta * protocol_utilization), where utilization is an EWMA of the
// protocol server's busy fraction. beta defaults to 0.8, calibrated to the
// paper's 84k -> 50k tx/s drop for 10-envelope blocks.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/scheduler.hpp"

namespace bft::sim {

struct CpuConfig {
  std::uint32_t worker_threads = 16;
  double contention_beta = 0.8;
  /// EWMA smoothing constant for the utilization estimate.
  double utilization_alpha = 0.05;
  /// Staged-pipeline verification workers (the `--workers N` knob, mirroring
  /// runtime::WorkerPoolRunner): 0 keeps the serial reference behavior where
  /// prologue work is charged to the protocol FIFO thread; N > 0 models N
  /// parallel servers absorbing the thread-safe prologue share of message
  /// handling (decode + signature checks), with epilogues released back to
  /// the protocol thread in arrival order.
  std::uint32_t prologue_workers = 0;
};

class CpuModel {
 public:
  explicit CpuModel(CpuConfig config);

  /// Serialized protocol-thread work: returns the completion time of a job of
  /// `cost` arriving at `now` (starts when the previous one finished).
  SimTime run_protocol_job(SimTime now, SimTime cost);

  /// Worker-pool job (block signing): returns completion time, inflating
  /// `cost` by the current contention factor.
  SimTime run_worker_job(SimTime now, SimTime cost);

  /// Staged-pipeline prologue job (message decode/verify offload): one of
  /// `prologue_workers` parallel servers, inflated by the same contention
  /// factor as the signing pool (both contend with the protocol stack).
  /// Never called when prologue_workers == 0.
  SimTime run_prologue_job(SimTime now, SimTime cost);

  std::uint32_t prologue_worker_count() const {
    return config_.prologue_workers;
  }

  /// Current EWMA of the protocol thread's busy fraction, in [0, 1].
  double protocol_utilization() const { return utilization_; }
  /// Time at which the protocol thread becomes idle.
  SimTime protocol_ready_at() const { return protocol_free_; }

 private:
  CpuConfig config_;
  SimTime protocol_free_ = 0;
  double utilization_ = 0.0;
  std::vector<SimTime> worker_free_;
  std::vector<SimTime> prologue_free_;
};

}  // namespace bft::sim

#include "consensus/quorum.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace bft::consensus {

QuorumSystem::QuorumSystem(std::vector<Weight> weights, std::uint32_t f)
    : weights_(std::move(weights)), f_(f) {
  total_ = std::accumulate(weights_.begin(), weights_.end(), Weight{0});
  const Weight vmax = *std::max_element(weights_.begin(), weights_.end());
  const Weight f_vmax = static_cast<Weight>(f_) * vmax;
  quorum_ = (total_ + f_vmax) / 2 + 1;
  evidence_ = f_vmax + 1;
  if (quorum_ > total_) {
    throw std::invalid_argument("QuorumSystem: quorum unattainable (n too small for f)");
  }
}

QuorumSystem QuorumSystem::classic(std::uint32_t n) {
  if (n == 0) throw std::invalid_argument("QuorumSystem: n must be positive");
  // f = floor((n-1)/3); n in {1,2,3} yields f = 0 (majority quorums, used by
  // crash-fault baselines and degenerate test setups).
  const std::uint32_t f = (n - 1) / 3;
  return QuorumSystem(std::vector<Weight>(n, 1), f);
}

QuorumSystem QuorumSystem::wheat(std::uint32_t n, std::uint32_t f,
                                 const std::set<ReplicaId>& vmax_replicas) {
  if (f == 0) throw std::invalid_argument("wheat: f must be >= 1");
  if (n < 3 * f + 1) throw std::invalid_argument("wheat: need n >= 3f+1");
  const std::uint32_t delta = n - (3 * f + 1);
  if (vmax_replicas.size() != 2 * f) {
    throw std::invalid_argument("wheat: exactly 2f replicas must carry Vmax");
  }
  for (ReplicaId id : vmax_replicas) {
    if (id >= n) throw std::invalid_argument("wheat: Vmax replica id out of range");
  }
  // Scaled by f: Vmax = f + delta, Vmin = f.
  std::vector<Weight> weights(n, f);
  for (ReplicaId id : vmax_replicas) weights[id] = f + delta;
  return QuorumSystem(std::move(weights), f);
}

Weight QuorumSystem::weight_of_set(const std::set<ReplicaId>& replicas) const {
  Weight sum = 0;
  for (ReplicaId id : replicas) {
    if (id < weights_.size()) sum += weights_[id];
  }
  return sum;
}

}  // namespace bft::consensus

#include "consensus/instance.hpp"

#include "common/serial.hpp"

namespace bft::consensus {

ValueHash value_hash(ByteView value) { return crypto::sha256(value); }

crypto::Hash256 write_attestation_digest(ConsensusId cid, Epoch epoch,
                                         const ValueHash& hash) {
  Writer w(48);
  w.str("bft.write");  // domain separation
  w.u64(cid);
  w.u32(epoch);
  w.raw(ByteView(hash.data(), hash.size()));
  return crypto::sha256(w.data());
}

Instance::Instance(ConsensusId cid, const QuorumSystem* quorums)
    : cid_(cid), quorums_(quorums) {}

ValueHash Instance::add_value(Bytes value) {
  const ValueHash hash = value_hash(value);
  values_.emplace(hash, std::move(value));
  return hash;
}

bool Instance::has_value(const ValueHash& hash) const {
  return values_.count(hash) > 0;
}

const Bytes* Instance::value_for(const ValueHash& hash) const {
  const auto it = values_.find(hash);
  return it == values_.end() ? nullptr : &it->second;
}

bool Instance::on_propose(Epoch epoch, ReplicaId from,
                          ReplicaId expected_leader, const ValueHash& hash) {
  if (from != expected_leader) return false;
  EpochBook& book = epochs_[epoch];
  if (book.proposed.has_value()) return false;  // one proposal per epoch
  book.proposed = hash;
  return true;
}

std::optional<ValueHash> Instance::proposed_hash(Epoch epoch) const {
  const auto it = epochs_.find(epoch);
  return it == epochs_.end() ? std::nullopt : it->second.proposed;
}

Weight Instance::weight_of_votes(const std::vector<WriteVote>& votes) const {
  Weight sum = 0;
  for (const WriteVote& v : votes) sum += quorums_->weight_of(v.from);
  return sum;
}

bool Instance::on_write(Epoch epoch, ReplicaId from, const ValueHash& hash,
                        Bytes signature) {
  EpochBook& book = epochs_[epoch];
  if (book.write_votes.count(from) > 0) {  // first vote only
    if (metrics_ != nullptr && metrics_->duplicate_votes != nullptr) {
      metrics_->duplicate_votes->add();
    }
    return false;
  }
  if (metrics_ != nullptr && metrics_->write_votes != nullptr) {
    metrics_->write_votes->add();
  }
  book.write_votes.emplace(from, hash);
  auto& votes = book.write_by_hash[hash];
  votes.push_back(WriteVote{from, std::move(signature)});
  if (!book.write_quorum.has_value() &&
      weight_of_votes(votes) >= quorums_->quorum_weight()) {
    book.write_quorum = hash;
    return true;
  }
  return false;
}

bool Instance::on_accept(Epoch epoch, ReplicaId from, const ValueHash& hash) {
  EpochBook& book = epochs_[epoch];
  if (book.accept_votes.count(from) > 0) {
    if (metrics_ != nullptr && metrics_->duplicate_votes != nullptr) {
      metrics_->duplicate_votes->add();
    }
    return false;
  }
  if (metrics_ != nullptr && metrics_->accept_votes != nullptr) {
    metrics_->accept_votes->add();
  }
  book.accept_votes.emplace(from, hash);
  auto& voters = book.accept_by_hash[hash];
  voters.insert(from);
  if (!decided_ && quorums_->weight_of_set(voters) >= quorums_->quorum_weight()) {
    decided_ = hash;
    decided_epoch_ = epoch;
    return true;
  }
  return false;
}

std::optional<ValueHash> Instance::write_quorum_hash(Epoch epoch) const {
  const auto it = epochs_.find(epoch);
  return it == epochs_.end() ? std::nullopt : it->second.write_quorum;
}

std::optional<WriteCertificate> Instance::write_certificate(Epoch epoch) const {
  const auto it = epochs_.find(epoch);
  if (it == epochs_.end() || !it->second.write_quorum.has_value()) {
    return std::nullopt;
  }
  WriteCertificate cert;
  cert.cid = cid_;
  cert.epoch = epoch;
  cert.hash = *it->second.write_quorum;
  cert.votes = it->second.write_by_hash.at(cert.hash);
  return cert;
}

Epoch Instance::highest_epoch() const {
  return epochs_.empty() ? 0 : epochs_.rbegin()->first;
}

}  // namespace bft::consensus

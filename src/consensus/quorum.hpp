// Quorum systems for BFT-SMaRt (uniform votes) and WHEAT (weighted votes).
//
// BFT-SMaRt with n = 3f+1 replicas needs ceil((n+f+1)/2) matching WRITE or
// ACCEPT messages. WHEAT [23] adds Δ spare replicas and assigns the binary
// weight distribution: 2f replicas get Vmax = 1 + Δ/f, the rest Vmin = 1.
// Quorums are then "any set with vote weight >= Qv" where Qv is the smallest
// weight guaranteeing that two quorums intersect in a correct replica:
//
//     2*Qv - Tv > f * Vmax   =>   Qv = floor((Tv + f*Vmax) / 2) + 1
//
// With Δ = 0 this degenerates to the classic ceil((n+f+1)/2). Weights are
// stored scaled by f so everything stays integral (Vmax -> f+Δ, Vmin -> f).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

namespace bft::consensus {

using ReplicaId = std::uint32_t;
using Weight = std::uint64_t;
/// Consensus slot number (1-based; 0 means "nothing decided yet").
using ConsensusId = std::uint64_t;
/// Regency / view number.
using Epoch = std::uint32_t;

class QuorumSystem {
 public:
  /// Uniform weights; requires n >= 3f+1 with f = floor((n-1)/3) >= 1 unless
  /// n == 1 (degenerate single-node setup used in some unit tests).
  static QuorumSystem classic(std::uint32_t n);

  /// WHEAT binary weights for n = 3f+1+delta replicas. `vmax_replicas` picks
  /// which 2f replicas carry Vmax (typically the best-connected ones).
  static QuorumSystem wheat(std::uint32_t n, std::uint32_t f,
                            const std::set<ReplicaId>& vmax_replicas);

  std::uint32_t n() const { return static_cast<std::uint32_t>(weights_.size()); }
  std::uint32_t f() const { return f_; }
  /// Weight of a replica; 0 for out-of-range ids (tolerates votes recorded
  /// just before a membership shrink).
  Weight weight_of(ReplicaId id) const {
    return id < weights_.size() ? weights_[id] : 0;
  }
  const std::vector<Weight>& weights() const { return weights_; }

  Weight total_weight() const { return total_; }
  /// Minimal weight of a Byzantine-quorum (WRITE/ACCEPT threshold).
  Weight quorum_weight() const { return quorum_; }
  /// Minimal weight that must contain at least one correct replica
  /// (f*Vmax + 1): the STOP-join / proof-of-misbehaviour threshold.
  Weight evidence_weight() const { return evidence_; }

  /// Sum of weights over a replica set (ignores unknown ids).
  Weight weight_of_set(const std::set<ReplicaId>& replicas) const;

  bool is_quorum(const std::set<ReplicaId>& replicas) const {
    return weight_of_set(replicas) >= quorum_;
  }
  bool is_evidence(const std::set<ReplicaId>& replicas) const {
    return weight_of_set(replicas) >= evidence_;
  }

  /// Count-based thresholds used where the paper counts replies rather than
  /// weighing them (frontend block collection, state transfer).
  std::uint32_t count_2f_plus_1() const { return 2 * f_ + 1; }
  std::uint32_t count_f_plus_1() const { return f_ + 1; }

 private:
  QuorumSystem(std::vector<Weight> weights, std::uint32_t f);

  std::vector<Weight> weights_;
  std::uint32_t f_;
  Weight total_;
  Weight quorum_;
  Weight evidence_;
};

}  // namespace bft::consensus

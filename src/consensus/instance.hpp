// One VP-Consensus instance (Mod-SMaRt's per-slot Byzantine consensus, the
// PROPOSE / WRITE / ACCEPT pattern of Figure 3 in the paper).
//
// The Instance is a passive vote-accounting state machine: the SMR replica
// feeds it decoded messages and acts on the returned edge-triggered booleans
// (send WRITE, send ACCEPT, deliver decision). Epochs correspond to regencies;
// a leader change moves the instance to a higher epoch, keeping per-epoch
// vote books separate.
//
// Byzantine-safety accounting per epoch: only a replica's first vote counts
// (equivocating duplicates are ignored), quorums are weighed through the
// QuorumSystem, and decisions latch permanently once reached.
#pragma once

#include <map>
#include <optional>
#include <set>

#include "consensus/quorum.hpp"
#include "crypto/sha256.hpp"
#include "obs/metrics.hpp"

namespace bft::consensus {

using ValueHash = crypto::Hash256;

/// Digest a proposed value for WRITE/ACCEPT voting.
ValueHash value_hash(ByteView value);

/// Digest the (cid, epoch, hash) triple a signed WRITE attests to.
crypto::Hash256 write_attestation_digest(ConsensusId cid, Epoch epoch,
                                         const ValueHash& hash);

/// A signed WRITE vote, transferable evidence for the synchronization phase.
struct WriteVote {
  ReplicaId from = 0;
  Bytes signature;  // empty when the cluster runs unsigned writes
};

/// Proof that some write quorum backed `hash` in `epoch`.
struct WriteCertificate {
  ConsensusId cid = 0;
  Epoch epoch = 0;
  ValueHash hash{};
  std::vector<WriteVote> votes;
};

/// Optional vote-accounting counters shared by every instance of one replica
/// (the replica registers them once and points each driver here). All-null
/// pointers (the default) disable the accounting.
struct InstanceMetrics {
  obs::Counter* write_votes = nullptr;      // WRITE votes registered
  obs::Counter* accept_votes = nullptr;     // ACCEPT votes registered
  obs::Counter* duplicate_votes = nullptr;  // re-votes dropped by the
                                            // first-vote-only rule
};

class Instance {
 public:
  Instance(ConsensusId cid, const QuorumSystem* quorums);

  ConsensusId cid() const { return cid_; }

  /// Attaches shared vote counters (non-owning; may be null to detach).
  void set_metrics(const InstanceMetrics* metrics) { metrics_ = metrics; }

  /// Stores a value so it can be matched against its hash later; returns the
  /// hash. Idempotent.
  ValueHash add_value(Bytes value);
  bool has_value(const ValueHash& hash) const;
  /// Value bytes for `hash`; nullptr if never seen.
  const Bytes* value_for(const ValueHash& hash) const;

  /// Validates and registers a PROPOSE. Returns true exactly when this is the
  /// first valid proposal of `epoch` from its expected leader (the caller
  /// should then send WRITE).
  bool on_propose(Epoch epoch, ReplicaId from, ReplicaId expected_leader,
                  const ValueHash& hash);

  /// The hash proposed in `epoch`, if a valid PROPOSE was registered.
  std::optional<ValueHash> proposed_hash(Epoch epoch) const;

  /// Registers a WRITE vote. Returns true exactly when a write quorum is
  /// newly assembled in `epoch` (the caller should then send ACCEPT).
  bool on_write(Epoch epoch, ReplicaId from, const ValueHash& hash,
                Bytes signature);

  /// Registers an ACCEPT vote. Returns true exactly when the instance newly
  /// decides (in any epoch; decisions latch).
  bool on_accept(Epoch epoch, ReplicaId from, const ValueHash& hash);

  /// Hash that reached the write quorum in `epoch`, if any.
  std::optional<ValueHash> write_quorum_hash(Epoch epoch) const;
  /// Certificate for the write quorum of `epoch` (empty optional if none).
  std::optional<WriteCertificate> write_certificate(Epoch epoch) const;

  bool decided() const { return decided_.has_value(); }
  const ValueHash& decided_hash() const { return *decided_; }
  /// Epoch in which the decision was reached.
  Epoch decided_epoch() const { return decided_epoch_; }

  /// Highest epoch for which this instance saw any traffic.
  Epoch highest_epoch() const;

 private:
  struct EpochBook {
    std::optional<ValueHash> proposed;
    // First WRITE per replica; by-hash tallies with signatures.
    std::map<ReplicaId, ValueHash> write_votes;
    std::map<ValueHash, std::vector<WriteVote>> write_by_hash;
    std::optional<ValueHash> write_quorum;
    std::map<ReplicaId, ValueHash> accept_votes;
    std::map<ValueHash, std::set<ReplicaId>> accept_by_hash;
  };

  Weight weight_of_votes(const std::vector<WriteVote>& votes) const;

  ConsensusId cid_;
  const QuorumSystem* quorums_;
  std::map<Epoch, EpochBook> epochs_;
  std::map<ValueHash, Bytes> values_;
  std::optional<ValueHash> decided_;
  Epoch decided_epoch_ = 0;
  const InstanceMetrics* metrics_ = nullptr;
};

}  // namespace bft::consensus

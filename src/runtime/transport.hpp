// Transport seam: the pluggable substrate that carries frames between
// processes that do NOT share a runtime instance.
//
// The protocol core never sees this interface — actors keep talking through
// `Env::send`. A runtime (RealCluster, TcpCluster) resolves each send:
// destinations it hosts are delivered through in-memory inboxes, everything
// else is handed to the attached Transport. Inbound frames flow back through
// the DeliverFn the runtime passed to start(). BFT-SMaRt-style deployments
// treat the communication layer as replaceable under an unchanged protocol
// core; this seam is how the repo earns the same property.
//
// Contract (mirrors Env::send):
//   * best-effort: a transport may drop frames (backpressure, dead peer);
//   * FIFO per (from, to) pair while a connection lasts; no ordering across
//     reconnects or across pairs;
//   * `send` must never block the caller (runtimes call it from event loops);
//   * `deliver` may be invoked from arbitrary transport threads — the
//     runtime's delivery path must be thread-safe.
#pragma once

#include <functional>

#include "common/bytes.hpp"
#include "runtime/actor.hpp"

namespace bft::runtime {

class Transport {
 public:
  using DeliverFn =
      std::function<void(ProcessId from, ProcessId to, Payload frame)>;

  virtual ~Transport() = default;

  /// Begins accepting/producing frames; inbound frames invoke `deliver`.
  virtual void start(DeliverFn deliver) = 0;
  /// Stops all transport activity and joins internal threads; idempotent.
  virtual void stop() = 0;
  /// Queues one frame for `to`. Returns false when the frame was dropped
  /// immediately (unknown destination or full send queue). A true return
  /// still only means "queued": delivery stays best-effort.
  virtual bool send(ProcessId from, ProcessId to, Payload frame) = 0;
};

}  // namespace bft::runtime

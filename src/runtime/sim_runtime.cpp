#include "runtime/sim_runtime.hpp"

#include <stdexcept>

namespace bft::runtime {

// Env implementation backing one simulated process. Logical time within a
// handler is the handler's activation time advanced by any charge_cpu calls,
// so messages sent after a charge leave after the modelled work completes.
class SimCluster::ProcessEnv final : public Env {
 public:
  ProcessEnv(SimCluster& cluster, ProcessId id)
      : cluster_(cluster), id_(id) {}

  ProcessId self() const override { return id_; }

  TimePoint now() const override {
    return std::max(logical_now_, cluster_.scheduler_.now());
  }

  void send(ProcessId to, Payload payload) override {
    if (cluster_.crashed_.count(id_)) return;
    FilterVerdict verdict;
    if (cluster_.filter_) verdict = cluster_.filter_(id_, to, payload.view());
    if (verdict.action == FilterAction::deliver && cluster_.fault_model_) {
      const sim::LinkVerdict lv = cluster_.fault_model_->decide(id_, to, now());
      if (lv.action.has_value()) {
        switch (*lv.action) {
          case sim::LinkFaultKind::drop:
            verdict = FilterAction::drop;
            break;
          case sim::LinkFaultKind::delay:
            verdict = FilterVerdict(FilterAction::delay, lv.delay);
            break;
          case sim::LinkFaultKind::duplicate:
            verdict = FilterVerdict(FilterAction::duplicate, lv.delay);
            break;
          case sim::LinkFaultKind::corrupt:
            verdict = FilterAction::corrupt;
            break;
        }
      }
    }

    switch (verdict.action) {
      case FilterAction::drop:
        return;
      case FilterAction::delay:
        // The message is already on the wire: it leaves even if the sender
        // crashes meanwhile, so the deferred transmit skips the crash check.
        cluster_.scheduler_.schedule_at(
            now() + std::max<Duration>(verdict.delay, 0),
            [this, to, payload = std::move(payload)]() mutable {
              transmit(to, std::move(payload), cluster_.scheduler_.now());
            });
        return;
      case FilterAction::duplicate: {
        Payload copy = payload;  // refcount bump, no deep copy
        cluster_.scheduler_.schedule_at(
            now() + std::max<Duration>(verdict.delay, 1),
            [this, to, copy = std::move(copy)]() mutable {
              transmit(to, std::move(copy), cluster_.scheduler_.now());
            });
        transmit(to, std::move(payload), now());
        return;
      }
      case FilterAction::corrupt:
        if (!payload.empty()) {
          // The only path that mutates bytes: corrupt a private copy so other
          // holders of the shared buffer stay untouched.
          Bytes mutated = payload.to_bytes();
          const std::size_t pos = cluster_.fault_rng_.uniform(mutated.size());
          mutated[pos] ^=
              static_cast<std::uint8_t>(1 + cluster_.fault_rng_.uniform(255));
          payload = Payload(std::move(mutated));
        }
        transmit(to, std::move(payload), now());
        return;
      case FilterAction::deliver:
        transmit(to, std::move(payload), now());
        return;
    }
  }

  std::uint64_t set_timer(Duration delay) override {
    Process& proc = cluster_.process(id_);
    const std::uint64_t id = proc.next_timer_id++;
    const std::uint64_t inc = proc.incarnation;
    cluster_.scheduler_.schedule_at(now() + delay, [this, id, inc] {
      Process& p = cluster_.process(id_);
      if (p.incarnation != inc || cluster_.crashed_.count(id_)) return;
      if (p.cancelled_timers.erase(id) > 0) return;
      if (cluster_.timers_fired_ != nullptr) cluster_.timers_fired_->add();
      activate(cluster_.scheduler_.now());
      p.actor->on_timer(id);
    });
    return id;
  }

  void cancel_timer(std::uint64_t id) override {
    cluster_.process(id_).cancelled_timers.insert(id);
  }

  void submit_work(Duration cost_hint, std::function<Bytes()> work,
                   std::function<void(Bytes)> done) override {
    Process& proc = cluster_.process(id_);
    const std::uint64_t inc = proc.incarnation;
    // Execute the computation immediately (zero wall-clock assumptions would
    // break signatures); deliver the result at the modelled completion time.
    Bytes result = work();
    const sim::SimTime completion =
        proc.cpu ? proc.cpu->run_worker_job(now(), cost_hint)
                 : now() + cost_hint;
    cluster_.scheduler_.schedule_at(
        completion, [this, inc, done = std::move(done),
                     result = std::move(result)]() mutable {
          Process& p = cluster_.process(id_);
          if (p.incarnation != inc || cluster_.crashed_.count(id_)) return;
          if (cluster_.worker_jobs_ != nullptr) cluster_.worker_jobs_->add();
          activate(cluster_.scheduler_.now());
          done(std::move(result));
        });
  }

  void charge_cpu(Duration cost) override {
    Process& proc = cluster_.process(id_);
    if (!proc.cpu) return;
    logical_now_ = proc.cpu->run_protocol_job(now(), cost);
  }

  Rng& rng() override { return cluster_.process(id_).rng; }

  /// Marks the start of a handler at simulation time `t`.
  void activate(sim::SimTime t) { logical_now_ = t; }

 private:
  /// Hands one message (possibly a delayed or duplicated copy) to the network
  /// model starting at `start`.
  void transmit(ProcessId to, Payload payload, sim::SimTime start) {
    // Two-phase transfer: egress + propagation now (send order), ingress
    // admission as a scheduled event so the receiving NIC serves messages in
    // arrival order regardless of sender distance.
    const auto transit =
        cluster_.network_.begin_transit(id_, to, payload.size(), start);
    if (!transit.needs_ingress) {
      cluster_.deliver_message(id_, to, std::move(payload), transit.arrival);
      return;
    }
    cluster_.scheduler_.schedule_at(
        transit.arrival,
        [this, to, payload = std::move(payload)]() mutable {
          const sim::SimTime rx_done = cluster_.network_.finish_transit(
              to, payload.size(), cluster_.scheduler_.now());
          cluster_.deliver_message(id_, to, std::move(payload), rx_done);
        });
  }

  SimCluster& cluster_;
  ProcessId id_;
  sim::SimTime logical_now_ = 0;
};

SimCluster::SimCluster(sim::Network network, std::uint64_t seed)
    : network_(std::move(network)),
      seed_(seed),
      seed_rng_(seed),
      fault_rng_(seed ^ 0xc0ffee5eedULL) {}

SimCluster::~SimCluster() = default;

void SimCluster::add_process(ProcessId id, Actor* actor,
                             std::optional<sim::CpuConfig> cpu) {
  if (actor == nullptr) throw std::invalid_argument("add_process: null actor");
  if (processes_.count(id) > 0) {
    throw std::invalid_argument("add_process: duplicate process id");
  }
  Process proc;
  proc.actor = actor;
  proc.env = std::make_unique<ProcessEnv>(*this, id);
  if (cpu) proc.cpu = std::make_unique<sim::CpuModel>(*cpu);
  proc.rng = seed_rng_.fork();
  processes_.emplace(id, std::move(proc));
}

void SimCluster::start() {
  for (auto& [id, proc] : processes_) {
    (void)id;
    if (!proc.started) {
      proc.started = true;
      proc.actor->on_start(*proc.env);
    }
  }
}

void SimCluster::run_until(sim::SimTime deadline) {
  start();
  scheduler_.run_until(deadline);
}

void SimCluster::crash(ProcessId id) {
  if (!crashed_.insert(id).second) return;  // already down
  const auto it = processes_.find(id);
  if (it != processes_.end()) {
    // Invalidate every pending timer and worker completion: a recovered
    // process must not observe events armed by its previous incarnation.
    ++it->second.incarnation;
    it->second.cancelled_timers.clear();
    it->second.epilogue_release = 0;  // staged epilogues died with the process
  }
}

void SimCluster::recover(ProcessId id) {
  if (crashed_.erase(id) == 0) return;  // not crashed: nothing to do
  Process& proc = process(id);
  if (proc.started) {
    proc.env->activate(scheduler_.now());
    proc.actor->on_recover();
  }
}

void SimCluster::restart(ProcessId id, Actor* fresh) {
  if (fresh == nullptr) throw std::invalid_argument("restart: null actor");
  Process& proc = process(id);
  crashed_.erase(id);
  ++proc.incarnation;
  proc.cancelled_timers.clear();
  proc.actor = fresh;
  proc.started = true;
  proc.env->activate(scheduler_.now());
  fresh->on_start(*proc.env);
}

void SimCluster::install_fault_plan(const sim::FaultPlan& plan) {
  for (const sim::ProcessFault& c : plan.crashes) {
    scheduler_.schedule_at(c.at, [this, p = c.process] { crash(p); });
  }
  for (const sim::ProcessFault& r : plan.recoveries) {
    scheduler_.schedule_at(r.at, [this, p = r.process] { recover(p); });
  }
  fault_model_.emplace(plan, seed_);
}

void SimCluster::schedule_at(sim::SimTime at, std::function<void()> fn) {
  scheduler_.schedule_at(at, std::move(fn));
}

double SimCluster::protocol_utilization(ProcessId id) const {
  const auto it = processes_.find(id);
  if (it == processes_.end() || !it->second.cpu) return 0.0;
  return it->second.cpu->protocol_utilization();
}

void SimCluster::deliver_message(ProcessId from, ProcessId to, Payload payload,
                                 sim::SimTime arrival) {
  if (processes_.count(to) == 0) return;  // unknown destination: drop
  scheduler_.schedule_at(
      arrival, [this, from, to, payload = std::move(payload)]() mutable {
        if (crashed_.count(to)) return;
        Process& proc = process(to);
        proc.env->activate(scheduler_.now());
        // Two-phase delivery: the thread-safe prologue always executes here
        // (it is deterministic and side-effect free); what changes with the
        // staged pipeline is only where its cost is charged.
        Verified v = proc.actor->prologue(from, std::move(payload));
        const bool staged = proc.cpu != nullptr &&
                            proc.cpu->prologue_worker_count() > 0 &&
                            v.prologue_cost > 0;
        if (!staged) {
          // Serial reference path (--workers 0): consume immediately in the
          // same event; consume() charges the full handler cost itself, so
          // this is byte-identical to the old single-phase delivery.
          if (messages_delivered_ != nullptr) messages_delivered_->add();
          proc.actor->consume(std::move(v));
          return;
        }
        // Staged path: the prologue share is served by one of the k
        // prologue workers, and the epilogue is released in arrival order
        // (the ordered reorder-buffer guarantee, modelled as a running
        // release cursor since arrivals are processed in time order).
        const sim::SimTime ready =
            proc.cpu->run_prologue_job(scheduler_.now(), v.prologue_cost);
        const sim::SimTime release = std::max(ready, proc.epilogue_release);
        proc.epilogue_release = release;
        v.prologue_charged = v.prologue_cost;
        const std::uint64_t inc = proc.incarnation;
        scheduler_.schedule_at(release, [this, to, inc, v = std::move(v)]() mutable {
          Process& p = process(to);
          if (p.incarnation != inc || crashed_.count(to)) return;
          if (messages_delivered_ != nullptr) messages_delivered_->add();
          p.env->activate(scheduler_.now());
          p.actor->consume(std::move(v));
        });
      });
}

void SimCluster::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    messages_delivered_ = nullptr;
    timers_fired_ = nullptr;
    worker_jobs_ = nullptr;
    return;
  }
  messages_delivered_ = &registry->counter("sim.messages_delivered",
                                           "messages handed to live actors");
  timers_fired_ = &registry->counter("sim.timers_fired",
                                     "timer callbacks delivered");
  worker_jobs_ = &registry->counter("sim.worker_jobs",
                                    "worker-pool completions delivered");
}

void SimCluster::export_metrics(obs::MetricsRegistry& registry,
                                ProcessId utilization_of) const {
  registry.gauge("sim.executed_events", "scheduler events executed")
      .set(static_cast<std::int64_t>(executed_events()));
  registry.gauge("sim.now_ns", "simulated clock at export").set(now());
  registry
      .gauge("sim.protocol_utilization_ppm",
             "protocol-thread utilization of the probed node, ppm")
      .set(static_cast<std::int64_t>(protocol_utilization(utilization_of) *
                                     1e6));
}

SimCluster::Process& SimCluster::process(ProcessId id) {
  const auto it = processes_.find(id);
  if (it == processes_.end()) {
    throw std::logic_error("SimCluster: unknown process");
  }
  return it->second;
}

}  // namespace bft::runtime

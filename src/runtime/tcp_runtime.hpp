// Multi-process deployment runtime: one TcpCluster per OS process.
//
// Composition, not a new runtime: a TcpCluster is a RealCluster (thread-per-
// actor event loops) whose off-host sends route into a TcpTransport, and
// whose inbound frames come back through RealCluster::deliver_local. Protocol
// code (src/smr, src/consensus, src/ordering) is identical across SimCluster,
// RealCluster and TcpCluster — only the Env wiring differs.
//
// Start order matters and is handled here: the transport starts before the
// actor loops so that messages sent from on_start handlers (e.g. a
// frontend's receiver registration) already have a live outbound path; stop
// reverses it so no frame is delivered into a stopping cluster.
#pragma once

#include <vector>

#include "runtime/real_runtime.hpp"
#include "runtime/tcp_transport.hpp"
#include "runtime/topology.hpp"

namespace bft::runtime {

struct TcpClusterOptions {
  /// See RealClusterOptions::inbox_capacity.
  std::size_t inbox_capacity = 65536;
  /// Transport tuning. The `metrics` field inside is ignored; set the
  /// cluster-level one below and both layers share it.
  TcpTransportOptions transport;
  /// Optional observability registry (borrowed; must outlive the cluster).
  obs::MetricsRegistry* metrics = nullptr;
};

class TcpCluster {
 public:
  /// Hosts `local_ids` (all mapped to one listen address in `topology`) in
  /// this OS process; every other topology id is reachable over TCP.
  TcpCluster(Topology topology, std::vector<ProcessId> local_ids,
             TcpClusterOptions options = {});
  ~TcpCluster();

  TcpCluster(const TcpCluster&) = delete;
  TcpCluster& operator=(const TcpCluster&) = delete;

  /// Registers a locally hosted actor; `id` must be one of the local ids.
  void add_process(ProcessId id, Actor* actor, std::size_t worker_threads = 2);

  void start();
  void stop();

  /// Injects a message from outside any actor; routes locally or over TCP.
  void send_external(ProcessId from, ProcessId to, Payload payload);
  /// Runs `fn` on a local actor's event-loop thread.
  void post(ProcessId to, std::function<void()> fn);
  TimePoint now() const { return local_.now(); }

  RealCluster& local() { return local_; }
  TcpTransport& transport() { return transport_; }

 private:
  std::vector<ProcessId> local_ids_;
  TcpTransport transport_;
  RealCluster local_;
  bool started_ = false;
};

}  // namespace bft::runtime

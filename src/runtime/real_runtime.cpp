#include "runtime/real_runtime.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace bft::runtime {

struct RealCluster::Process {
  explicit Process(std::size_t inbox_capacity) : inbox(inbox_capacity) {}

  Actor* actor = nullptr;
  std::unique_ptr<ProcessEnv> env;
  BlockingQueue<std::function<void()>> inbox;
  /// Staged crypto pipeline: message prologues and submit_work jobs run on
  /// its workers; ordered epilogues land back in `inbox` as control items.
  /// Null when the process runs serially (worker_threads == 0).
  std::unique_ptr<Runner> runner;
  std::size_t runner_workers = 0;
  /// Prologues submitted to the runner but not yet finished — the staged
  /// half of the admission bound (the inbox bounds the epilogue half).
  std::atomic<std::uint64_t> staged{0};
  Rng rng{0};
  std::atomic<bool> crashed{false};
  std::atomic<std::uint64_t> next_timer_id{1};
  std::mutex cancel_mutex;
  std::set<std::uint64_t> cancelled_timers;
  std::thread loop;
};

class RealCluster::ProcessEnv final : public Env {
 public:
  ProcessEnv(RealCluster& cluster, ProcessId id, Process& proc)
      : cluster_(cluster), id_(id), proc_(proc) {}

  ProcessId self() const override { return id_; }
  TimePoint now() const override { return cluster_.now(); }

  void send(ProcessId to, Payload payload) override {
    if (proc_.crashed.load(std::memory_order_relaxed)) return;
    cluster_.route(id_, to, std::move(payload));
  }

  std::uint64_t set_timer(Duration delay) override {
    const std::uint64_t id =
        proc_.next_timer_id.fetch_add(1, std::memory_order_relaxed);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::nanoseconds(delay);
    {
      std::lock_guard<std::mutex> lock(cluster_.timer_mutex_);
      cluster_.timer_heap_.push_back(
          TimerEntry{deadline, id_, id, cluster_.timer_seq_++});
      std::push_heap(cluster_.timer_heap_.begin(), cluster_.timer_heap_.end(),
                     std::greater<>());
    }
    cluster_.timer_cv_.notify_one();
    return id;
  }

  void cancel_timer(std::uint64_t id) override {
    std::lock_guard<std::mutex> lock(proc_.cancel_mutex);
    proc_.cancelled_timers.insert(id);
  }

  void submit_work(Duration cost_hint, std::function<Bytes()> work,
                   std::function<void(Bytes)> done) override {
    (void)cost_hint;  // real work takes real time
    if (proc_.runner == nullptr) {
      // Serial reference mode: the work blocks the event loop, exactly the
      // single-threaded execution the sim's --workers 0 models.
      Bytes result = work();
      done(std::move(result));
      return;
    }
    // Staged: the work is a prologue, the completion its ordered epilogue —
    // two signatures submitted back-to-back finish in submission order even
    // if the second worker is faster.
    proc_.runner->submit(
        [work = std::move(work), done = std::move(done)]() mutable -> Epilogue {
          Bytes result = work();
          return [done = std::move(done),
                  result = std::move(result)]() mutable {
            done(std::move(result));
          };
        });
  }

  void charge_cpu(Duration) override {}  // the hardware charges itself

  Rng& rng() override { return proc_.rng; }

 private:
  RealCluster& cluster_;
  ProcessId id_;
  Process& proc_;
};

RealCluster::RealCluster() : RealCluster(RealClusterOptions{}) {}

RealCluster::RealCluster(RealClusterOptions options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {
  if (options_.metrics != nullptr) {
    inbox_depth_gauge_ = &options_.metrics->gauge(
        "runtime.inbox_depth", "depth of the most recently written inbox");
    inbox_dropped_counter_ = &options_.metrics->counter(
        "runtime.inbox_dropped", "messages shed by full bounded inboxes");
    runner_metrics_ = RunnerMetrics::registered(*options_.metrics);
  }
}

RealCluster::~RealCluster() { stop(); }

void RealCluster::add_process(ProcessId id, Actor* actor,
                              std::size_t worker_threads) {
  if (started_.load()) {
    throw std::logic_error("RealCluster: add_process after start");
  }
  if (actor == nullptr) throw std::invalid_argument("add_process: null actor");
  if (processes_.count(id) > 0) {
    throw std::invalid_argument("add_process: duplicate process id");
  }
  auto proc = std::make_unique<Process>(options_.inbox_capacity);
  proc->actor = actor;
  proc->env = std::make_unique<ProcessEnv>(*this, id, *proc);
  proc->runner_workers = worker_threads;
  if (worker_threads > 0) {
    WorkerPoolRunnerOptions runner_options;
    runner_options.workers = worker_threads;
    runner_options.first_core = options_.runner_first_core;
    runner_options.metrics = runner_metrics_;
    // Epilogues enter the inbox as control items: the sink is invoked in
    // sequence order and the inbox is FIFO, so consume order == arrival
    // order even though prologues complete on arbitrary workers.
    proc->runner = std::make_unique<WorkerPoolRunner>(
        runner_options, [this, id](Epilogue epilogue) {
          enqueue(id, std::move(epilogue), /*droppable=*/false);
        });
  }
  proc->rng = Rng(0x5eed0000 + id);
  processes_.emplace(id, std::move(proc));
}

void RealCluster::start() {
  if (started_.exchange(true)) return;
  timer_thread_ = std::thread([this] { timer_loop(); });
  for (auto& [id, proc] : processes_) {
    (void)id;
    Process* p = proc.get();
    p->loop = std::thread([p] {
      while (auto fn = p->inbox.pop()) {
        if (!p->crashed.load(std::memory_order_relaxed)) (*fn)();
      }
    });
    p->inbox.push([p] { p->actor->on_start(*p->env); });
  }
}

void RealCluster::stop() {
  if (!started_.load() || stopping_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(timer_mutex_);
    timer_heap_.clear();
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  // Drain the staged runners first so in-flight prologues can still sink
  // their epilogues, then close inboxes and join loops.
  for (auto& [id, proc] : processes_) {
    (void)id;
    if (proc->runner != nullptr) proc->runner->drain();
  }
  for (auto& [id, proc] : processes_) {
    (void)id;
    proc->inbox.close();
  }
  for (auto& [id, proc] : processes_) {
    (void)id;
    if (proc->loop.joinable()) proc->loop.join();
  }
}

void RealCluster::route(ProcessId from, ProcessId to, Payload payload) {
  const auto it = processes_.find(to);
  if (it != processes_.end()) {
    deliver_local(from, to, std::move(payload));
    return;
  }
  if (options_.transport != nullptr) {
    options_.transport->send(from, to, std::move(payload));
  }
  // No local process and no transport: drop (unknown destination).
}

void RealCluster::send_external(ProcessId from, ProcessId to, Payload payload) {
  route(from, to, std::move(payload));
}

void RealCluster::deliver_local(ProcessId from, ProcessId to, Payload payload) {
  const auto it = processes_.find(to);
  if (it == processes_.end()) return;  // not hosted here: drop
  Process& proc = *it->second;
  if (proc.runner == nullptr) {
    // Serial reference path: prologue + consume back-to-back on the event
    // loop — the exact old single-phase semantics, including droppability.
    Actor* actor = proc.actor;
    enqueue(
        to,
        [actor, from, payload = std::move(payload)]() mutable {
          actor->consume(actor->prologue(from, std::move(payload)));
        },
        /*droppable=*/true);
    return;
  }
  // Staged path. Message deliveries stay best-effort: the runner queue is
  // admission-bounded like the inbox, so a flood sheds here instead of
  // growing the prologue backlog without bound.
  if (proc.crashed.load(std::memory_order_relaxed)) return;
  if (options_.inbox_capacity != 0 &&
      proc.staged.load(std::memory_order_relaxed) >= options_.inbox_capacity) {
    inbox_dropped_.fetch_add(1, std::memory_order_relaxed);
    if (inbox_dropped_counter_ != nullptr) inbox_dropped_counter_->add();
    return;
  }
  proc.staged.fetch_add(1, std::memory_order_relaxed);
  Process* p = &proc;
  Actor* actor = proc.actor;
  proc.runner->submit(
      [p, actor, from, payload = std::move(payload)]() mutable -> Epilogue {
        // Decrement before the prologue so a throwing prologue (contained by
        // the runner) cannot leak admission slots.
        p->staged.fetch_sub(1, std::memory_order_relaxed);
        Verified v = actor->prologue(from, std::move(payload));
        return [actor, v = std::move(v)]() mutable {
          actor->consume(std::move(v));
        };
      });
}

void RealCluster::post(ProcessId to, std::function<void()> fn) {
  enqueue(to, std::move(fn));
}

void RealCluster::crash(ProcessId id) {
  const auto it = processes_.find(id);
  if (it != processes_.end()) it->second->crashed.store(true);
}

TimePoint RealCluster::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint64_t RealCluster::inbox_dropped() const {
  return inbox_dropped_.load(std::memory_order_relaxed);
}

void RealCluster::enqueue(ProcessId to, std::function<void()> fn,
                          bool droppable) {
  const auto it = processes_.find(to);
  if (it == processes_.end()) return;  // unknown destination: drop
  Process& proc = *it->second;
  if (proc.crashed.load(std::memory_order_relaxed)) return;
  if (droppable) {
    // Message deliveries are best-effort by contract: when the bounded inbox
    // is full we shed instead of blocking one event loop on another.
    if (!proc.inbox.try_push(std::move(fn))) {
      inbox_dropped_.fetch_add(1, std::memory_order_relaxed);
      if (inbox_dropped_counter_ != nullptr) inbox_dropped_counter_->add();
      return;
    }
  } else {
    // Control work (timers, post, worker completions) must not be lost;
    // these producers are few and the capacity is sized for message floods.
    proc.inbox.push(std::move(fn));
  }
  if (inbox_depth_gauge_ != nullptr) {
    inbox_depth_gauge_->set(static_cast<std::int64_t>(proc.inbox.size()));
  }
}

void RealCluster::timer_loop() {
  std::unique_lock<std::mutex> lock(timer_mutex_);
  while (!stopping_.load()) {
    if (timer_heap_.empty()) {
      timer_cv_.wait_for(lock, std::chrono::milliseconds(50));
      continue;
    }
    const TimerEntry next = timer_heap_.front();
    if (std::chrono::steady_clock::now() < next.deadline) {
      timer_cv_.wait_until(lock, next.deadline);
      continue;
    }
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), std::greater<>());
    timer_heap_.pop_back();
    lock.unlock();
    const auto it = processes_.find(next.process);
    if (it != processes_.end()) {
      Process* p = it->second.get();
      bool cancelled;
      {
        std::lock_guard<std::mutex> cancel_lock(p->cancel_mutex);
        cancelled = p->cancelled_timers.erase(next.timer_id) > 0;
      }
      if (!cancelled) {
        const std::uint64_t tid = next.timer_id;
        enqueue(next.process, [p, tid] { p->actor->on_timer(tid); });
      }
    }
    lock.lock();
  }
}

}  // namespace bft::runtime

// Staged execution runner: the dsnet SpinOrderedRunner/CTPLOrderedRunner
// pattern. Crypto-heavy message handling is split into two phases:
//
//   * prologue — thread-safe, state-free classification + signature
//     verification. May run concurrently on any worker thread.
//   * epilogue — all state mutation. Must apply in submission order, on the
//     home (event-loop) thread, so protocol order is exactly what it would
//     be under single-threaded execution.
//
// A Prologue returns its Epilogue; the runner guarantees epilogues are handed
// to the sink in submission (sequence-number) order no matter how workers
// interleave. Two implementations:
//
//   * SerialRunner — runs the prologue inline and sinks the epilogue
//     immediately. The deterministic reference: `--workers 0` everywhere.
//   * WorkerPoolRunner — N pinned worker threads run prologues concurrently;
//     a sequence-numbered reorder buffer releases epilogues in order.
//
// See DESIGN.md §10 for the pipeline diagram and OBSERVABILITY.md for the
// runner.* metric catalogue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace bft::runtime {

/// Ordered state-mutation phase; runs on the home thread via the sink.
using Epilogue = std::function<void()>;
/// Thread-safe verification phase; returns the epilogue to apply (an empty
/// Epilogue means "nothing to do", but still consumes a sequence slot).
using Prologue = std::function<Epilogue()>;
/// Hands a released epilogue to the home thread. The runner calls the sink
/// from at most one thread at a time, in strict submission order, so a sink
/// that appends to a FIFO (an event-loop inbox) preserves protocol order.
using EpilogueSink = std::function<void(Epilogue)>;

class Runner {
 public:
  virtual ~Runner() = default;

  /// Stages one prologue. Thread-safe; the sequence slot is taken at call
  /// time, so per-caller submission order is per-caller epilogue order.
  virtual void submit(Prologue prologue) = 0;

  /// Blocks until every submitted prologue has run and its epilogue has been
  /// handed to the sink.
  virtual void drain() = 0;

  /// Number of concurrent prologue workers (0 for the serial runner).
  virtual std::size_t worker_count() const = 0;
};

/// Deterministic reference implementation: prologue inline on the submitting
/// thread, epilogue sunk before submit() returns.
class SerialRunner final : public Runner {
 public:
  explicit SerialRunner(EpilogueSink sink) : sink_(std::move(sink)) {}

  void submit(Prologue prologue) override;
  void drain() override {}
  std::size_t worker_count() const override { return 0; }

 private:
  EpilogueSink sink_;
};

/// Aggregate runner.* instrumentation, shareable across runner instances
/// (RealCluster registers one set for all hosted processes). All pointers
/// may be null (uninstrumented).
struct RunnerMetrics {
  obs::Gauge* queue_depth = nullptr;         // runner.queue_depth
  obs::Gauge* workers = nullptr;             // runner.workers
  obs::Counter* prologues = nullptr;         // runner.prologues
  obs::Counter* prologue_exceptions = nullptr;  // runner.prologue_exceptions
  obs::Counter* worker_busy_ns = nullptr;    // runner.worker_busy_ns
  obs::LatencyHistogram* prologue_ns = nullptr;      // runner.prologue_ns
  obs::LatencyHistogram* reorder_wait_ns = nullptr;  // runner.reorder_wait_ns

  /// Registers the full runner.* table in `registry` (names documented in
  /// OBSERVABILITY.md).
  static RunnerMetrics registered(obs::MetricsRegistry& registry);
};

struct WorkerPoolRunnerOptions {
  std::size_t workers = 2;
  /// When >= 0, worker i is pinned to CPU core (first_core + i) modulo the
  /// hardware concurrency (Linux only; a no-op elsewhere).
  int first_core = -1;
  RunnerMetrics metrics;
};

/// Pool of pinned workers running prologues concurrently. Epilogues enter a
/// sequence-numbered reorder buffer and are released to the sink in exactly
/// the order their prologues were submitted — an adversarial completion
/// order (slow seq 3, instant seq 4) never reorders state mutation.
///
/// A throwing prologue is contained: the exception is swallowed (counted in
/// runner.prologue_exceptions) and the slot's epilogue becomes a no-op, so
/// the sequence keeps advancing and later epilogues still release.
class WorkerPoolRunner final : public Runner {
 public:
  WorkerPoolRunner(WorkerPoolRunnerOptions options, EpilogueSink sink);
  ~WorkerPoolRunner() override;

  WorkerPoolRunner(const WorkerPoolRunner&) = delete;
  WorkerPoolRunner& operator=(const WorkerPoolRunner&) = delete;

  void submit(Prologue prologue) override;
  void drain() override;
  std::size_t worker_count() const override { return options_.workers; }

 private:
  struct Staged {
    std::uint64_t seq = 0;
    Prologue prologue;
  };
  struct Ready {
    Epilogue epilogue;
    std::int64_t completed_ns = 0;  // reorder-wait measurement
  };

  void worker_loop(std::size_t index);
  /// Releases every in-order epilogue; at most one thread sinks at a time so
  /// sink order == sequence order.
  void release_ready(std::unique_lock<std::mutex>& lock);
  static std::int64_t steady_ns();

  WorkerPoolRunnerOptions options_;
  EpilogueSink sink_;

  std::mutex mutex_;
  std::condition_variable work_cv_;    // workers wait for pending prologues
  std::condition_variable drain_cv_;   // drain() waits for the queue to empty
  std::deque<Staged> pending_;
  std::map<std::uint64_t, Ready> reorder_;
  std::uint64_t next_submit_seq_ = 0;
  std::uint64_t next_release_seq_ = 0;
  bool releasing_ = false;  // a thread is currently sinking epilogues
  bool stopping_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace bft::runtime

#include "runtime/runner.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace bft::runtime {

void SerialRunner::submit(Prologue prologue) {
  Epilogue epilogue;
  try {
    epilogue = prologue();
  } catch (...) {
    // Same containment contract as the pool: a throwing prologue consumes
    // its slot and contributes no epilogue.
  }
  if (epilogue) sink_(std::move(epilogue));
}

RunnerMetrics RunnerMetrics::registered(obs::MetricsRegistry& registry) {
  RunnerMetrics m;
  m.queue_depth =
      &registry.gauge("runner.queue_depth", "staged prologues not yet picked up by a worker");
  m.workers = &registry.gauge("runner.workers", "prologue worker threads per runner");
  m.prologues = &registry.counter("runner.prologues", "prologues executed");
  m.prologue_exceptions = &registry.counter(
      "runner.prologue_exceptions", "prologues that threw (contained; slot advanced)");
  m.worker_busy_ns = &registry.counter(
      "runner.worker_busy_ns", "total worker time spent inside prologues "
      "(utilization = busy_ns / (workers * wall))");
  m.prologue_ns =
      &registry.histogram("runner.prologue_ns", "ns", "prologue execution latency");
  m.reorder_wait_ns = &registry.histogram(
      "runner.reorder_wait_ns", "ns",
      "time a completed epilogue waited for earlier sequence numbers");
  return m;
}

WorkerPoolRunner::WorkerPoolRunner(WorkerPoolRunnerOptions options,
                                   EpilogueSink sink)
    : options_(options), sink_(std::move(sink)) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.metrics.workers != nullptr) {
    options_.metrics.workers->set(
        static_cast<std::int64_t>(options_.workers));
  }
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
#if defined(__linux__)
    if (options_.first_core >= 0) {
      const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET((static_cast<unsigned>(options_.first_core) + i) % cores, &set);
      // Best-effort: a restricted affinity mask (cgroups) may reject the
      // core; the worker then keeps the inherited mask.
      (void)pthread_setaffinity_np(workers_.back().native_handle(),
                                   sizeof(set), &set);
    }
#endif
  }
}

WorkerPoolRunner::~WorkerPoolRunner() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void WorkerPoolRunner::submit(Prologue prologue) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.push_back(Staged{next_submit_seq_++, std::move(prologue)});
    if (options_.metrics.queue_depth != nullptr) {
      options_.metrics.queue_depth->set(
          static_cast<std::int64_t>(pending_.size()));
    }
  }
  work_cv_.notify_one();
}

void WorkerPoolRunner::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock, [this] {
    return next_release_seq_ == next_submit_seq_ && !releasing_;
  });
}

void WorkerPoolRunner::worker_loop(std::size_t) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
    if (stopping_) return;  // unrun prologues are abandoned; see stop contract
    Staged staged = std::move(pending_.front());
    pending_.pop_front();
    if (options_.metrics.queue_depth != nullptr) {
      options_.metrics.queue_depth->set(
          static_cast<std::int64_t>(pending_.size()));
    }
    lock.unlock();

    const std::int64_t start = steady_ns();
    Epilogue epilogue;
    try {
      epilogue = staged.prologue();
    } catch (...) {
      if (options_.metrics.prologue_exceptions != nullptr) {
        options_.metrics.prologue_exceptions->add();
      }
    }
    const std::int64_t done = steady_ns();
    if (options_.metrics.prologues != nullptr) options_.metrics.prologues->add();
    if (options_.metrics.worker_busy_ns != nullptr) {
      options_.metrics.worker_busy_ns->add(
          static_cast<std::uint64_t>(done - start));
    }
    if (options_.metrics.prologue_ns != nullptr) {
      options_.metrics.prologue_ns->record(
          static_cast<std::uint64_t>(done - start));
    }

    lock.lock();
    reorder_.emplace(staged.seq, Ready{std::move(epilogue), done});
    release_ready(lock);
  }
}

void WorkerPoolRunner::release_ready(std::unique_lock<std::mutex>& lock) {
  if (releasing_) return;  // the active releaser will pick up our entry
  releasing_ = true;
  auto it = reorder_.find(next_release_seq_);
  while (it != reorder_.end()) {
    Ready ready = std::move(it->second);
    reorder_.erase(it);
    ++next_release_seq_;
    lock.unlock();
    if (options_.metrics.reorder_wait_ns != nullptr) {
      const std::int64_t waited = steady_ns() - ready.completed_ns;
      options_.metrics.reorder_wait_ns->record(
          static_cast<std::uint64_t>(waited > 0 ? waited : 0));
    }
    // Sink outside the lock so a momentarily blocked sink (a full inbox the
    // home loop is still draining) does not stall the workers; `releasing_`
    // keeps sink order == sequence order.
    if (ready.epilogue) sink_(std::move(ready.epilogue));
    lock.lock();
    it = reorder_.find(next_release_seq_);
  }
  releasing_ = false;
  drain_cv_.notify_all();
}

std::int64_t WorkerPoolRunner::steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace bft::runtime

#include "runtime/topology.hpp"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace bft::runtime {

namespace {

/// Splits "host:port"; throws on a missing/invalid port.
std::pair<std::string, std::uint16_t> split_address(const std::string& addr,
                                                    std::size_t line_no) {
  const auto colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == addr.size()) {
    throw std::invalid_argument("topology line " + std::to_string(line_no) +
                                ": expected host:port, got '" + addr + "'");
  }
  const std::string host = addr.substr(0, colon);
  const std::string port_text = addr.substr(colon + 1);
  unsigned long port = 0;
  try {
    std::size_t used = 0;
    port = std::stoul(port_text, &used);
    if (used != port_text.size()) throw std::invalid_argument("trailing");
  } catch (const std::exception&) {
    throw std::invalid_argument("topology line " + std::to_string(line_no) +
                                ": bad port '" + port_text + "'");
  }
  if (port > 65535) {
    throw std::invalid_argument("topology line " + std::to_string(line_no) +
                                ": port out of range");
  }
  return {host, static_cast<std::uint16_t>(port)};
}

}  // namespace

Topology::Topology(std::vector<TopologyEntry> entries)
    : entries_(std::move(entries)) {
  std::set<ProcessId> seen;
  for (const TopologyEntry& e : entries_) {
    if (!seen.insert(e.id).second) {
      throw std::invalid_argument("topology: duplicate process id " +
                                  std::to_string(e.id));
    }
  }
}

Topology Topology::parse(std::string_view text) {
  std::vector<TopologyEntry> entries;
  std::istringstream stream{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string role;
    if (!(fields >> role)) continue;  // blank / comment-only line
    long long id = -1;
    std::string addr;
    if (!(fields >> id >> addr) || id < 0 ||
        id > static_cast<long long>(UINT32_MAX)) {
      throw std::invalid_argument("topology line " + std::to_string(line_no) +
                                  ": expected '<role> <id> <host:port>'");
    }
    std::string extra;
    if (fields >> extra) {
      throw std::invalid_argument("topology line " + std::to_string(line_no) +
                                  ": trailing field '" + extra + "'");
    }
    TopologyEntry entry;
    entry.role = std::move(role);
    entry.id = static_cast<ProcessId>(id);
    std::tie(entry.host, entry.port) = split_address(addr, line_no);
    entries.push_back(std::move(entry));
  }
  return Topology(std::move(entries));
}

Topology Topology::load(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("topology: cannot read '" + path + "'");
  }
  std::ostringstream content;
  content << file.rdbuf();
  return parse(content.str());
}

const TopologyEntry* Topology::find(ProcessId id) const {
  for (const TopologyEntry& e : entries_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

const TopologyEntry& Topology::at(ProcessId id) const {
  const TopologyEntry* entry = find(id);
  if (entry == nullptr) {
    throw std::invalid_argument("topology: unknown process id " +
                                std::to_string(id));
  }
  return *entry;
}

std::vector<ProcessId> Topology::ids_with_role(std::string_view role) const {
  std::vector<ProcessId> ids;
  for (const TopologyEntry& e : entries_) {
    if (e.role == role) ids.push_back(e.id);
  }
  return ids;
}

std::vector<ProcessId> Topology::ids_at(const std::string& address) const {
  std::vector<ProcessId> ids;
  for (const TopologyEntry& e : entries_) {
    if (e.address() == address) ids.push_back(e.id);
  }
  return ids;
}

}  // namespace bft::runtime

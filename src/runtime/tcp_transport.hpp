// TCP transport: carries frames between OS processes over real sockets.
//
// Topology-driven: every process id maps to a host:port (topology.hpp); one
// TcpTransport instance serves all ids co-hosted at its listen address.
//
// Connection model — two simplex pipes per peer pair. A transport dials a
// peer's listen address only to SEND, and uses accepted connections only to
// RECEIVE. Both directions dial independently, which removes all connection
// tie-breaking/dedup logic and makes reconnection symmetric: the sending
// side just redials with capped exponential backoff when the pipe breaks.
//
// Wire format. A dialed connection opens with one handshake:
//
//   magic "BFT1" (4 bytes) | version u16 | sender id u32
//
// where sender id is the dialer's lowest hosted id; the acceptor resolves it
// through the topology and pins the connection to that peer address. Every
// subsequent frame is length-prefixed:
//
//   length u32 (= 8 + payload size) | from u32 | to u32 | payload
//
// A frame whose `from` id is not hosted at the pinned peer address is
// rejected (spoofed sender), as is any malformed length/handshake — the
// connection is closed and transport.frame_errors counts it. Short reads and
// partial frames are reassembled; the protocol layer above treats whatever
// decodes badly as Byzantine input, so the transport only enforces framing.
//
// Backpressure: each peer has a bounded send queue drained by a writer
// thread. When the queue is full, send() drops the frame and counts it —
// Env::send is best-effort by contract, and shedding beats blocking an event
// loop on a dead peer. Drops count both globally (transport.send_dropped)
// and per peer (transport.send_dropped_to_<host>_<port>), and emit one warn
// log per connection epoch — the first drop after each (re)dial — rather
// than one per frame, so a dead peer cannot flood the log. Queue depth,
// bytes/frames in/out, reconnects, drops and frame errors register in the
// obs registry (see OBSERVABILITY.md).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/topology.hpp"
#include "runtime/transport.hpp"
#include "util/queue.hpp"

namespace bft::runtime {

struct TcpTransportOptions {
  /// Bounded per-peer send queue (frames). 0 = unbounded (tests only).
  std::size_t send_queue_capacity = 1024;
  /// Frames larger than this are rejected on both sides.
  std::uint32_t max_frame_bytes = 64u << 20;
  /// Reconnect backoff: doubles from min to max per failed dial.
  Duration reconnect_backoff_min = msec(50);
  Duration reconnect_backoff_max = sec(2);
  /// Optional observability registry (borrowed; must outlive the transport).
  obs::MetricsRegistry* metrics = nullptr;
};

class TcpTransport final : public Transport {
 public:
  /// `local_ids` must all resolve to the same host:port in `topology`; that
  /// address becomes the listen endpoint.
  TcpTransport(Topology topology, std::vector<ProcessId> local_ids,
               TcpTransportOptions options = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  void start(DeliverFn deliver) override;
  void stop() override;
  bool send(ProcessId from, ProcessId to, Payload frame) override;

  /// Actual listening port (resolves a 0 port in the topology after start).
  std::uint16_t listen_port() const { return listen_port_; }

  // --- introspection (tests) ---
  std::uint64_t reconnects() const { return reconnects_.load(); }
  std::uint64_t frame_errors() const { return frame_errors_.load(); }
  std::uint64_t frames_dropped() const { return frames_dropped_.load(); }
  std::uint64_t frames_in() const { return frames_in_.load(); }
  std::uint64_t frames_out() const { return frames_out_.load(); }

 private:
  struct OutFrame {
    ProcessId from = 0;
    ProcessId to = 0;
    Payload payload;
  };

  /// Writer-side state for one remote listen address.
  struct PeerLink {
    std::string host;
    std::uint16_t port = 0;
    BlockingQueue<OutFrame> queue;
    std::thread writer;
    std::atomic<int> fd{-1};
    std::atomic<bool> ever_connected{false};  // redials after this count as reconnects
    /// Connection epoch: bumps on every successful dial. Queue-full drops
    /// warn once per epoch (drop_logged_epoch latches the epoch that logged),
    /// so a dead peer produces one line per reconnect attempt cycle, not one
    /// per shed frame.
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<std::uint64_t> drop_logged_epoch{~0ull};
    /// Per-peer drop counter ("transport.send_dropped_to_<host>_<port>");
    /// null when no registry is wired.
    obs::Counter* dropped = nullptr;

    explicit PeerLink(std::size_t capacity) : queue(capacity) {}
  };

  /// Reader-side state for one accepted connection.
  struct InboundConn {
    int fd = -1;
    std::thread reader;
  };

  void accept_loop();
  void writer_loop(PeerLink& link);
  void reader_loop(int fd);
  /// Dials `link` (with backoff) until connected or stopped; sends the
  /// handshake on success. Returns the connected fd or -1 when stopping.
  int dial(PeerLink& link);
  /// Interruptible sleep; returns false when the transport is stopping.
  bool backoff_wait(Duration d);
  void note_frame_error();

  Topology topology_;
  std::vector<ProcessId> local_ids_;
  TcpTransportOptions options_;
  std::string listen_host_;
  std::uint16_t listen_port_ = 0;
  ProcessId handshake_id_ = 0;  // lowest hosted id, announced when dialing

  DeliverFn deliver_;
  std::atomic<bool> running_{false};
  std::atomic<bool> started_{false};

  int listen_fd_ = -1;
  std::thread accept_thread_;

  // Remote address ("host:port") -> writer link. Created eagerly at start
  // for every distinct non-local address in the topology.
  std::map<std::string, std::unique_ptr<PeerLink>> links_;
  std::map<ProcessId, PeerLink*> link_of_id_;

  std::mutex inbound_mutex_;
  std::vector<std::unique_ptr<InboundConn>> inbound_;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;

  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> frame_errors_{0};
  std::atomic<std::uint64_t> frames_dropped_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};

  struct MetricHandles {
    obs::Counter* bytes_in = nullptr;
    obs::Counter* bytes_out = nullptr;
    obs::Counter* frames_in = nullptr;
    obs::Counter* frames_out = nullptr;
    obs::Counter* reconnects = nullptr;
    obs::Counter* frame_errors = nullptr;
    obs::Counter* send_dropped = nullptr;
    obs::Gauge* send_queue_depth = nullptr;
  };
  MetricHandles m_;
};

}  // namespace bft::runtime

#include "runtime/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/log.hpp"

namespace bft::runtime {

namespace {

/// "host:port" -> metric-name-safe suffix (lowercase [a-z0-9_] only), e.g.
/// "127.0.0.1:9001" -> "127_0_0_1_9001".
std::string metric_suffix(const std::string& host, std::uint16_t port) {
  std::string out;
  out.reserve(host.size() + 6);
  for (char c : host) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      out.push_back(c);
    } else if (c >= 'A' && c <= 'Z') {
      out.push_back(static_cast<char>(c - 'A' + 'a'));
    } else {
      out.push_back('_');
    }
  }
  out.push_back('_');
  out += std::to_string(port);
  return out;
}

constexpr std::uint8_t kMagic[4] = {'B', 'F', 'T', '1'};
constexpr std::uint16_t kVersion = 1;
constexpr std::size_t kHandshakeSize = 10;  // magic + version + sender id
constexpr std::size_t kFrameHeaderSize = 12;  // length + from + to

void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Reads exactly `n` bytes, riding out short reads and EINTR. Returns the
/// byte count read before EOF/error (== n on success).
std::size_t read_exact(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::recv(fd, buf + got, n - got, 0);
    if (rc > 0) {
      got += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    break;  // EOF or hard error
  }
  return got;
}

/// Writes all of `n` bytes, riding out short writes and EINTR.
bool write_all(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool resolve_ipv4(const std::string& host, std::uint16_t port,
                  sockaddr_in& out) {
  std::memset(&out, 0, sizeof(out));
  out.sin_family = AF_INET;
  out.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &out.sin_addr) == 1) return true;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  if (::getaddrinfo(host.c_str(), nullptr, &hints, &results) != 0) return false;
  bool found = false;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    if (ai->ai_family == AF_INET) {
      out.sin_addr = reinterpret_cast<sockaddr_in*>(ai->ai_addr)->sin_addr;
      found = true;
      break;
    }
  }
  ::freeaddrinfo(results);
  return found;
}

void enable_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpTransport::TcpTransport(Topology topology, std::vector<ProcessId> local_ids,
                           TcpTransportOptions options)
    : topology_(std::move(topology)),
      local_ids_(std::move(local_ids)),
      options_(options) {
  if (local_ids_.empty()) {
    throw std::invalid_argument("TcpTransport: no local ids");
  }
  const TopologyEntry& self = topology_.at(local_ids_.front());
  listen_host_ = self.host;
  listen_port_ = self.port;
  handshake_id_ = *std::min_element(local_ids_.begin(), local_ids_.end());
  const std::string local_address = self.address();
  for (ProcessId id : local_ids_) {
    if (topology_.at(id).address() != local_address) {
      throw std::invalid_argument(
          "TcpTransport: local ids span multiple listen addresses");
    }
  }
  // One writer link per distinct remote listen address; ids sharing an
  // address share the connection.
  for (const TopologyEntry& entry : topology_.entries()) {
    const std::string address = entry.address();
    if (address == local_address) continue;
    auto it = links_.find(address);
    if (it == links_.end()) {
      auto link = std::make_unique<PeerLink>(options_.send_queue_capacity);
      link->host = entry.host;
      link->port = entry.port;
      it = links_.emplace(address, std::move(link)).first;
    }
    link_of_id_[entry.id] = it->second.get();
  }
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    m_.bytes_in = &reg.counter("transport.bytes_in", "frame bytes received");
    m_.bytes_out = &reg.counter("transport.bytes_out", "frame bytes written");
    m_.frames_in = &reg.counter("transport.frames_in", "frames received");
    m_.frames_out = &reg.counter("transport.frames_out", "frames written");
    m_.reconnects = &reg.counter(
        "transport.reconnects", "successful redials after a lost connection");
    m_.frame_errors = &reg.counter(
        "transport.frame_errors", "malformed handshakes/frames/spoofed senders");
    m_.send_dropped = &reg.counter(
        "transport.send_dropped", "frames shed by full per-peer send queues");
    m_.send_queue_depth = &reg.gauge(
        "transport.send_queue_depth", "depth of the most recently used send queue");
    // Per-peer drop counters: the registry has no label support, so the peer
    // address is composed into the name (prefix "transport.send_dropped_to_",
    // documented in OBSERVABILITY.md).
    for (auto& [address, link] : links_) {
      link->dropped =
          &reg.counter("transport.send_dropped_to_" +
                           metric_suffix(link->host, link->port),
                       "frames shed by the send queue to " + address);
    }
  }
}

TcpTransport::~TcpTransport() { stop(); }

void TcpTransport::start(DeliverFn deliver) {
  if (started_.exchange(true)) return;
  deliver_ = std::move(deliver);
  running_.store(true);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("TcpTransport: socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  if (!resolve_ipv4(listen_host_, listen_port_, addr)) {
    throw std::runtime_error("TcpTransport: cannot resolve " + listen_host_);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw std::runtime_error("TcpTransport: bind to " + listen_host_ + ":" +
                             std::to_string(listen_port_) + " failed: " +
                             std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    throw std::runtime_error("TcpTransport: listen failed");
  }
  if (listen_port_ == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      listen_port_ = ntohs(bound.sin_port);
    }
  }

  accept_thread_ = std::thread([this] { accept_loop(); });
  for (auto& [address, link] : links_) {
    (void)address;
    PeerLink* l = link.get();
    l->writer = std::thread([this, l] { writer_loop(*l); });
  }
}

void TcpTransport::stop() {
  if (!started_.load()) return;
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (!running_.exchange(false)) return;  // second stop: already done
  }
  stop_cv_.notify_all();

  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  for (auto& [address, link] : links_) {
    (void)address;
    link->queue.close();
    const int fd = link->fd.load();
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);  // unblock a stuck write
  }
  for (auto& [address, link] : links_) {
    (void)address;
    if (link->writer.joinable()) link->writer.join();
  }

  std::vector<std::unique_ptr<InboundConn>> inbound;
  {
    std::lock_guard<std::mutex> lock(inbound_mutex_);
    inbound.swap(inbound_);
  }
  for (auto& conn : inbound) {
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);  // unblock the read
  }
  for (auto& conn : inbound) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
}

bool TcpTransport::send(ProcessId from, ProcessId to, Payload frame) {
  if (!running_.load(std::memory_order_relaxed)) return false;
  if (frame.size() > options_.max_frame_bytes) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    if (m_.send_dropped != nullptr) m_.send_dropped->add();
    return false;
  }
  const auto it = link_of_id_.find(to);
  if (it == link_of_id_.end()) return false;  // not in the topology: drop
  PeerLink& link = *it->second;
  if (!link.queue.try_push(OutFrame{from, to, std::move(frame)})) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    if (m_.send_dropped != nullptr) m_.send_dropped->add();
    if (link.dropped != nullptr) link.dropped->add();
    const std::uint64_t epoch = link.epoch.load(std::memory_order_relaxed);
    if (link.drop_logged_epoch.exchange(epoch, std::memory_order_relaxed) !=
        epoch) {
      BFT_LOG(warn) << "tcp transport " << listen_host_ << ":" << listen_port_
                    << ": send queue to " << link.host << ":" << link.port
                    << " full, shedding frames (one log per connection epoch; "
                       "see transport.send_dropped_to_* counters)";
    }
    return false;
  }
  if (m_.send_queue_depth != nullptr) {
    m_.send_queue_depth->set(static_cast<std::int64_t>(link.queue.size()));
  }
  return true;
}

bool TcpTransport::backoff_wait(Duration d) {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  stop_cv_.wait_for(lock, std::chrono::nanoseconds(d),
                    [this] { return !running_.load(); });
  return running_.load();
}

int TcpTransport::dial(PeerLink& link) {
  Duration backoff = options_.reconnect_backoff_min;
  bool first_attempt = true;
  while (running_.load()) {
    if (!first_attempt && !backoff_wait(backoff)) return -1;
    backoff = std::min(backoff * 2, options_.reconnect_backoff_max);
    first_attempt = false;

    sockaddr_in addr{};
    if (!resolve_ipv4(link.host, link.port, addr)) continue;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) continue;
    // Non-blocking connect polled in slices so stop() stays prompt even
    // while a dead peer leaves SYNs unanswered.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      ::close(fd);
      continue;
    }
    bool connected = (rc == 0);
    for (int slice = 0; !connected && slice < 10 && running_.load(); ++slice) {
      pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 100) > 0 && (pfd.revents & POLLOUT) != 0) {
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        connected = (err == 0);
        break;
      }
    }
    if (!connected) {
      ::close(fd);
      continue;
    }
    ::fcntl(fd, F_SETFL, flags);  // back to blocking for the write path
    enable_nodelay(fd);
    timeval snd_timeout{5, 0};  // bound stuck writes to a wedged peer
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &snd_timeout, sizeof(snd_timeout));

    std::uint8_t handshake[kHandshakeSize];
    std::memcpy(handshake, kMagic, sizeof(kMagic));
    put_u16(handshake + 4, kVersion);
    put_u32(handshake + 6, handshake_id_);
    if (!write_all(fd, handshake, sizeof(handshake))) {
      ::close(fd);
      continue;
    }
    if (link.ever_connected.exchange(true)) {
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      if (m_.reconnects != nullptr) m_.reconnects->add();
    }
    link.epoch.fetch_add(1, std::memory_order_relaxed);
    link.fd.store(fd);
    return fd;
  }
  return -1;
}

void TcpTransport::writer_loop(PeerLink& link) {
  while (auto item = link.queue.pop()) {
    OutFrame frame = std::move(*item);
    if (m_.send_queue_depth != nullptr) {
      m_.send_queue_depth->set(static_cast<std::int64_t>(link.queue.size()));
    }
    while (running_.load()) {
      int fd = link.fd.load();
      if (fd < 0) {
        fd = dial(link);
        if (fd < 0) break;  // stopping
      }
      std::uint8_t header[kFrameHeaderSize];
      put_u32(header, static_cast<std::uint32_t>(8 + frame.payload.size()));
      put_u32(header + 4, frame.from);
      put_u32(header + 8, frame.to);
      if (write_all(fd, header, sizeof(header)) &&
          write_all(fd, frame.payload.view().data(), frame.payload.size())) {
        frames_out_.fetch_add(1, std::memory_order_relaxed);
        if (m_.frames_out != nullptr) m_.frames_out->add();
        if (m_.bytes_out != nullptr) {
          m_.bytes_out->add(sizeof(header) + frame.payload.size());
        }
        break;  // frame delivered to the kernel; next frame
      }
      // Broken pipe: drop the connection and retry this frame on a fresh one.
      link.fd.store(-1);
      ::close(fd);
    }
  }
  const int fd = link.fd.exchange(-1);
  if (fd >= 0) ::close(fd);
}

void TcpTransport::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down
    }
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    enable_nodelay(fd);
    auto conn = std::make_unique<InboundConn>();
    conn->fd = fd;
    conn->reader = std::thread([this, fd] { reader_loop(fd); });
    std::lock_guard<std::mutex> lock(inbound_mutex_);
    inbound_.push_back(std::move(conn));
  }
}

void TcpTransport::note_frame_error() {
  frame_errors_.fetch_add(1, std::memory_order_relaxed);
  if (m_.frame_errors != nullptr) m_.frame_errors->add();
}

void TcpTransport::reader_loop(int fd) {
  // Handshake pins this connection to one peer listen address; every frame's
  // claimed sender must be hosted there (anti-spoofing at endpoint
  // granularity — per-message signatures handle the rest above us).
  std::uint8_t handshake[kHandshakeSize];
  if (read_exact(fd, handshake, sizeof(handshake)) != sizeof(handshake) ||
      std::memcmp(handshake, kMagic, sizeof(kMagic)) != 0 ||
      get_u16(handshake + 4) != kVersion) {
    note_frame_error();
    return;  // fd closed by stop() via the inbound list
  }
  const TopologyEntry* peer = topology_.find(get_u32(handshake + 6));
  if (peer == nullptr) {
    note_frame_error();
    return;
  }
  const std::string peer_address = peer->address();

  while (running_.load()) {
    std::uint8_t header[kFrameHeaderSize];
    const std::size_t got = read_exact(fd, header, sizeof(header));
    if (got == 0) return;  // clean EOF between frames
    if (got != sizeof(header)) {
      note_frame_error();  // truncated mid-header
      return;
    }
    const std::uint32_t length = get_u32(header);
    if (length < 8 || length - 8 > options_.max_frame_bytes) {
      note_frame_error();
      return;  // framing is gone; drop the connection
    }
    const ProcessId from = get_u32(header + 4);
    const ProcessId to = get_u32(header + 8);
    Bytes payload(length - 8);
    if (!payload.empty() &&
        read_exact(fd, payload.data(), payload.size()) != payload.size()) {
      note_frame_error();  // truncated mid-payload
      return;
    }
    const TopologyEntry* sender = topology_.find(from);
    if (sender == nullptr || sender->address() != peer_address) {
      note_frame_error();  // spoofed sender id
      return;
    }
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    if (m_.frames_in != nullptr) m_.frames_in->add();
    if (m_.bytes_in != nullptr) {
      m_.bytes_in->add(sizeof(header) + payload.size());
    }
    deliver_(from, to, Payload(std::move(payload)));
  }
}

}  // namespace bft::runtime

// Cluster topology for multi-process deployments: maps every process id to a
// role and a TCP listen address. All binaries of one deployment load the same
// config file, pick out their own id(s), and derive the peer address book
// from the rest.
//
// File format — one entry per line, '#' starts a comment:
//
//   # role  id  host:port
//   node     0  127.0.0.1:5000
//   node     1  127.0.0.1:5001
//   node     2  127.0.0.1:5002
//   node     3  127.0.0.1:5003
//   frontend 100 127.0.0.1:5100
//
// Roles are free-form strings; the deployment binaries use "node",
// "frontend" and "client". Several ids may share one host:port — they are
// then hosted by the same OS process (one TcpTransport instance).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/actor.hpp"

namespace bft::runtime {

struct TopologyEntry {
  std::string role;
  ProcessId id = 0;
  std::string host;
  std::uint16_t port = 0;

  std::string address() const { return host + ":" + std::to_string(port); }
};

class Topology {
 public:
  Topology() = default;
  explicit Topology(std::vector<TopologyEntry> entries);

  /// Parses config text; throws std::invalid_argument on malformed lines or
  /// duplicate ids.
  static Topology parse(std::string_view text);
  /// Loads and parses a config file; throws std::runtime_error when the file
  /// cannot be read.
  static Topology load(const std::string& path);

  const std::vector<TopologyEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

  /// nullptr when `id` is not in the topology.
  const TopologyEntry* find(ProcessId id) const;
  /// Throws std::invalid_argument when `id` is not in the topology.
  const TopologyEntry& at(ProcessId id) const;

  /// All ids carrying `role`, in file order.
  std::vector<ProcessId> ids_with_role(std::string_view role) const;
  /// All ids hosted at `address` ("host:port"), in file order.
  std::vector<ProcessId> ids_at(const std::string& address) const;

 private:
  std::vector<TopologyEntry> entries_;
};

}  // namespace bft::runtime

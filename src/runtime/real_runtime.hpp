// Real (threaded) runtime: each actor gets an event-loop thread fed by an
// in-memory queue, a shared timer service and a private worker pool. Used by
// integration tests and the runnable examples; semantics match the simulated
// runtime so protocol code runs unchanged.
//
// The cluster optionally plugs into a Transport (transport.hpp): sends to
// process ids it does not host are forwarded there, and frames the transport
// delivers are enqueued like local traffic. One RealCluster per OS process
// bridged by a TcpTransport is exactly the multi-process deployment shape —
// see tcp_runtime.hpp.
#pragma once

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/actor.hpp"
#include "runtime/runner.hpp"
#include "runtime/transport.hpp"
#include "util/queue.hpp"

namespace bft::runtime {

struct RealClusterOptions {
  /// Per-process inbox bound. Message deliveries beyond it are dropped (and
  /// counted) — Env::send is best-effort, so overload sheds load instead of
  /// deadlocking event loops that flood each other. Control work (timers,
  /// post(), worker completions) is never dropped. 0 = unbounded.
  std::size_t inbox_capacity = 65536;
  /// Outbound sink for destinations this cluster does not host (borrowed;
  /// must outlive the cluster). The caller starts/stops the transport and
  /// routes its inbound frames to deliver_local().
  Transport* transport = nullptr;
  /// Optional observability registry (borrowed). Registers
  /// runtime.inbox_depth / runtime.inbox_dropped plus the runner.* staged
  /// pipeline table; see OBSERVABILITY.md.
  obs::MetricsRegistry* metrics = nullptr;
  /// When >= 0, each process's prologue workers are pinned starting at this
  /// CPU core (worker i of every runner -> core first_core + i, mod the
  /// hardware concurrency). -1 leaves placement to the OS.
  int runner_first_core = -1;
};

class RealCluster {
 public:
  RealCluster();
  explicit RealCluster(RealClusterOptions options);
  ~RealCluster();

  RealCluster(const RealCluster&) = delete;
  RealCluster& operator=(const RealCluster&) = delete;

  /// Registers an actor (not owned) with a `worker_threads`-wide staged
  /// runner (runner.hpp): message prologues (Actor::prologue — signature
  /// verification) and submit_work jobs (block signing) run concurrently on
  /// the workers while epilogues/completions apply on the event loop in
  /// submission order. `worker_threads == 0` selects the serial reference
  /// path: prologue + consume inline on the event loop, submit_work inline
  /// at the call site. Must be called before start().
  void add_process(ProcessId id, Actor* actor, std::size_t worker_threads = 2);

  /// Spawns all event loops; each actor's on_start runs on its own loop.
  void start();
  /// Stops loops and joins threads; idempotent.
  void stop();

  /// Injects a message from outside any actor (test driver convenience).
  /// Routes like an actor send: local processes get it in-memory, anything
  /// else goes to the attached transport.
  void send_external(ProcessId from, ProcessId to, Payload payload);

  /// Delivers an inbound frame to a locally hosted process; unknown
  /// destinations are dropped. Thread-safe — this is the Transport's
  /// DeliverFn target.
  void deliver_local(ProcessId from, ProcessId to, Payload payload);

  /// True when `id` is hosted by this cluster instance.
  bool hosts(ProcessId id) const { return processes_.count(id) > 0; }

  /// Runs `fn` on the actor's own event-loop thread (e.g. to call methods on
  /// the actor without racing its handlers).
  void post(ProcessId to, std::function<void()> fn);

  /// Stops delivering anything to `id` (crash fault).
  void crash(ProcessId id);

  TimePoint now() const;

  /// Messages dropped because a bounded inbox was full (0 until start).
  std::uint64_t inbox_dropped() const;

 private:
  struct Process;
  class ProcessEnv;

  /// Resolves a send: local inbox, else transport, else drop.
  void route(ProcessId from, ProcessId to, Payload payload);
  /// Queues `fn` on `to`'s event loop. `droppable` marks best-effort message
  /// deliveries, shed when the bounded inbox is full; control work blocks.
  void enqueue(ProcessId to, std::function<void()> fn, bool droppable = false);
  void timer_loop();

  struct TimerEntry {
    std::chrono::steady_clock::time_point deadline;
    ProcessId process;
    std::uint64_t timer_id;
    std::uint64_t seq;
    bool operator>(const TimerEntry& other) const {
      if (deadline != other.deadline) return deadline > other.deadline;
      return seq > other.seq;
    }
  };

  RealClusterOptions options_;
  std::chrono::steady_clock::time_point epoch_;
  std::map<ProcessId, std::unique_ptr<Process>> processes_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> inbox_dropped_{0};
  obs::Gauge* inbox_depth_gauge_ = nullptr;    // deepest local inbox
  obs::Counter* inbox_dropped_counter_ = nullptr;
  RunnerMetrics runner_metrics_;  // shared across all hosted runners

  std::mutex timer_mutex_;
  std::condition_variable timer_cv_;
  std::vector<TimerEntry> timer_heap_;
  std::uint64_t timer_seq_ = 0;
  std::thread timer_thread_;
};

}  // namespace bft::runtime

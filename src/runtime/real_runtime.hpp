// Real (threaded) runtime: each actor gets an event-loop thread fed by an
// in-memory queue, a shared timer service and a private worker pool. Used by
// integration tests and the runnable examples; semantics match the simulated
// runtime so protocol code runs unchanged.
#pragma once

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "runtime/actor.hpp"
#include "util/queue.hpp"
#include "util/threadpool.hpp"

namespace bft::runtime {

class RealCluster {
 public:
  RealCluster();
  ~RealCluster();

  RealCluster(const RealCluster&) = delete;
  RealCluster& operator=(const RealCluster&) = delete;

  /// Registers an actor (not owned) with `worker_threads` signing workers.
  /// Must be called before start().
  void add_process(ProcessId id, Actor* actor, std::size_t worker_threads = 2);

  /// Spawns all event loops; each actor's on_start runs on its own loop.
  void start();
  /// Stops loops and joins threads; idempotent.
  void stop();

  /// Injects a message from outside any actor (test driver convenience).
  void send_external(ProcessId from, ProcessId to, Bytes payload);

  /// Runs `fn` on the actor's own event-loop thread (e.g. to call methods on
  /// the actor without racing its handlers).
  void post(ProcessId to, std::function<void()> fn);

  /// Stops delivering anything to `id` (crash fault).
  void crash(ProcessId id);

  TimePoint now() const;

 private:
  struct Process;
  class ProcessEnv;

  void enqueue(ProcessId to, std::function<void()> fn);
  void timer_loop();

  struct TimerEntry {
    std::chrono::steady_clock::time_point deadline;
    ProcessId process;
    std::uint64_t timer_id;
    std::uint64_t seq;
    bool operator>(const TimerEntry& other) const {
      if (deadline != other.deadline) return deadline > other.deadline;
      return seq > other.seq;
    }
  };

  std::chrono::steady_clock::time_point epoch_;
  std::map<ProcessId, std::unique_ptr<Process>> processes_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  std::mutex timer_mutex_;
  std::condition_variable timer_cv_;
  std::vector<TimerEntry> timer_heap_;
  std::uint64_t timer_seq_ = 0;
  std::thread timer_thread_;
};

}  // namespace bft::runtime

// Simulated runtime: actors execute inside a discrete-event simulation with
// explicit network and CPU models. Fully deterministic for a given seed.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/actor.hpp"
#include "sim/cpu.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace bft::runtime {

/// Verdict of a message filter (fault injection for tests).
enum class FilterAction : std::uint8_t {
  deliver,
  drop,
  /// Deliver after an extra latency (FilterVerdict::delay).
  delay,
  /// Deliver normally plus a second copy after FilterVerdict::delay.
  duplicate,
  /// Flip one seeded-random byte of the payload, then deliver. Receivers must
  /// treat the result as Byzantine input (DecodeError, bad signature, ...).
  corrupt,
};

/// A filter's full answer; implicitly constructible from a bare FilterAction
/// so existing deliver/drop filters keep working unchanged.
struct FilterVerdict {
  FilterVerdict(FilterAction a = FilterAction::deliver, Duration d = 0)
      : action(a), delay(d) {}
  FilterAction action;
  Duration delay;  // used by delay / duplicate

  friend bool operator==(const FilterVerdict& v, FilterAction a) {
    return v.action == a;
  }
};

class SimCluster {
 public:
  /// `network` decides message delivery times; `seed` feeds per-process RNGs.
  SimCluster(sim::Network network, std::uint64_t seed);
  ~SimCluster();  // out of line: ProcessEnv is incomplete here

  /// Registers an actor (not owned). `cpu` is optional: processes without a
  /// CPU model execute handlers in zero simulated time (clients, frontends).
  void add_process(ProcessId id, Actor* actor,
                   std::optional<sim::CpuConfig> cpu = std::nullopt);

  /// Calls on_start on every actor not yet started. Implicit in run_until.
  void start();

  /// Advances simulated time.
  void run_until(sim::SimTime deadline);
  sim::SimTime now() const { return scheduler_.now(); }
  std::uint64_t executed_events() const { return scheduler_.executed_events(); }

  /// Stops delivering events to `id` (crash fault). Pending timers and worker
  /// completions of the process are invalidated, so a later recover() starts
  /// from a clean event slate.
  void crash(ProcessId id);
  bool crashed(ProcessId id) const { return crashed_.count(id) > 0; }

  /// Resurrects a crashed process with its memory intact (a fast restart from
  /// a warm image). The actor's on_recover() runs so it can re-arm timers;
  /// messages that arrived during the outage are lost.
  void recover(ProcessId id);

  /// Resurrects a crashed process as `fresh`, a brand-new actor with empty
  /// state (a cold restart losing all volatile memory). `fresh` gets
  /// on_start() and must rebuild its state through the protocol (e.g. the
  /// replica state-transfer path).
  void restart(ProcessId id, Actor* fresh);

  /// Installs a message filter consulted on every send; nullptr clears it.
  /// A non-deliver verdict from the filter wins over the fault plan.
  using Filter = std::function<FilterVerdict(ProcessId from, ProcessId to,
                                             ByteView payload)>;
  void set_filter(Filter filter) { filter_ = std::move(filter); }

  /// Schedules the plan's crashes/recoveries and applies its partitions and
  /// link faults to every subsequent send. Call before run_until; replaces
  /// any previously installed plan.
  void install_fault_plan(const sim::FaultPlan& plan);

  /// Schedules an arbitrary callback (workload injection from benches).
  void schedule_at(sim::SimTime at, std::function<void()> fn);

  /// Protocol-thread utilization of a process (0 if it has no CPU model).
  double protocol_utilization(ProcessId id) const;

  /// Wires live runtime counters (sim.messages_delivered, sim.timers_fired,
  /// sim.worker_jobs) into `registry`; null detaches. Recording never touches
  /// per-process RNGs or the event order, so instrumented runs stay
  /// bit-identical to uninstrumented ones.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Writes end-of-run gauges (sim.executed_events, sim.now_ns, and the
  /// protocol utilization of `utilization_of` in parts-per-million). Call at
  /// export time; values are snapshots, not live.
  void export_metrics(obs::MetricsRegistry& registry,
                      ProcessId utilization_of) const;

 private:
  class ProcessEnv;

  struct Process {
    Actor* actor = nullptr;
    std::unique_ptr<ProcessEnv> env;
    std::unique_ptr<sim::CpuModel> cpu;
    Rng rng{0};
    std::uint64_t next_timer_id = 1;
    std::set<std::uint64_t> cancelled_timers;
    bool started = false;
    /// Bumped on every crash; events scheduled for an older incarnation are
    /// discarded when they fire (timers, worker completions).
    std::uint64_t incarnation = 0;
    /// Ordered-epilogue cursor for the staged prologue pipeline (CpuConfig
    /// prologue_workers > 0): consume() of message n is released no earlier
    /// than consume() of message n-1, mirroring WorkerPoolRunner's
    /// sequence-numbered reorder buffer.
    sim::SimTime epilogue_release = 0;
  };

  void deliver_message(ProcessId from, ProcessId to, Payload payload,
                       sim::SimTime arrival);
  Process& process(ProcessId id);

  sim::Scheduler scheduler_;
  sim::Network network_;
  std::uint64_t seed_;
  Rng seed_rng_;
  Rng fault_rng_;  // corrupt-action byte flips
  std::map<ProcessId, Process> processes_;
  std::set<ProcessId> crashed_;
  Filter filter_;
  std::optional<sim::LinkFaultModel> fault_model_;

  // Live runtime counters (null = uninstrumented; see set_metrics).
  obs::Counter* messages_delivered_ = nullptr;
  obs::Counter* timers_fired_ = nullptr;
  obs::Counter* worker_jobs_ = nullptr;
};

}  // namespace bft::runtime

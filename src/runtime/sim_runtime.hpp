// Simulated runtime: actors execute inside a discrete-event simulation with
// explicit network and CPU models. Fully deterministic for a given seed.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "runtime/actor.hpp"
#include "sim/cpu.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace bft::runtime {

/// Verdict of a message filter (fault injection for tests).
enum class FilterAction { deliver, drop };

class SimCluster {
 public:
  /// `network` decides message delivery times; `seed` feeds per-process RNGs.
  SimCluster(sim::Network network, std::uint64_t seed);
  ~SimCluster();  // out of line: ProcessEnv is incomplete here

  /// Registers an actor (not owned). `cpu` is optional: processes without a
  /// CPU model execute handlers in zero simulated time (clients, frontends).
  void add_process(ProcessId id, Actor* actor,
                   std::optional<sim::CpuConfig> cpu = std::nullopt);

  /// Calls on_start on every actor not yet started. Implicit in run_until.
  void start();

  /// Advances simulated time.
  void run_until(sim::SimTime deadline);
  sim::SimTime now() const { return scheduler_.now(); }
  std::uint64_t executed_events() const { return scheduler_.executed_events(); }

  /// Permanently stops delivering events to `id` (crash fault).
  void crash(ProcessId id);
  bool crashed(ProcessId id) const { return crashed_.count(id) > 0; }

  /// Installs a message filter consulted on every send; nullptr clears it.
  using Filter = std::function<FilterAction(ProcessId from, ProcessId to,
                                            ByteView payload)>;
  void set_filter(Filter filter) { filter_ = std::move(filter); }

  /// Schedules an arbitrary callback (workload injection from benches).
  void schedule_at(sim::SimTime at, std::function<void()> fn);

  /// Protocol-thread utilization of a process (0 if it has no CPU model).
  double protocol_utilization(ProcessId id) const;

 private:
  class ProcessEnv;

  struct Process {
    Actor* actor = nullptr;
    std::unique_ptr<ProcessEnv> env;
    std::unique_ptr<sim::CpuModel> cpu;
    Rng rng{0};
    std::uint64_t next_timer_id = 1;
    std::set<std::uint64_t> cancelled_timers;
    bool started = false;
  };

  void deliver_message(ProcessId from, ProcessId to, Bytes payload,
                       sim::SimTime arrival);
  Process& process(ProcessId id);

  sim::Scheduler scheduler_;
  sim::Network network_;
  Rng seed_rng_;
  std::map<ProcessId, Process> processes_;
  std::set<ProcessId> crashed_;
  Filter filter_;
};

}  // namespace bft::runtime

#include "runtime/tcp_runtime.hpp"

#include <algorithm>
#include <stdexcept>

namespace bft::runtime {

namespace {

TcpTransportOptions with_metrics(TcpTransportOptions options,
                                 obs::MetricsRegistry* metrics) {
  options.metrics = metrics;
  return options;
}

RealClusterOptions cluster_options(std::size_t inbox_capacity,
                                   Transport* transport,
                                   obs::MetricsRegistry* metrics) {
  RealClusterOptions options;
  options.inbox_capacity = inbox_capacity;
  options.transport = transport;
  options.metrics = metrics;
  return options;
}

}  // namespace

TcpCluster::TcpCluster(Topology topology, std::vector<ProcessId> local_ids,
                       TcpClusterOptions options)
    : local_ids_(local_ids),
      transport_(std::move(topology), std::move(local_ids),
                 with_metrics(options.transport, options.metrics)),
      local_(cluster_options(options.inbox_capacity, &transport_,
                             options.metrics)) {}

TcpCluster::~TcpCluster() { stop(); }

void TcpCluster::add_process(ProcessId id, Actor* actor,
                             std::size_t worker_threads) {
  if (std::find(local_ids_.begin(), local_ids_.end(), id) == local_ids_.end()) {
    throw std::invalid_argument("TcpCluster: process id " + std::to_string(id) +
                                " is not hosted at this address");
  }
  local_.add_process(id, actor, worker_threads);
}

void TcpCluster::start() {
  if (started_) return;
  started_ = true;
  // Transport first: on_start handlers may send to remote peers immediately.
  transport_.start([this](ProcessId from, ProcessId to, Payload frame) {
    local_.deliver_local(from, to, std::move(frame));
  });
  local_.start();
}

void TcpCluster::stop() {
  if (!started_) return;
  started_ = false;
  // Reverse order: quiesce the network before tearing down the event loops.
  transport_.stop();
  local_.stop();
}

void TcpCluster::send_external(ProcessId from, ProcessId to, Payload payload) {
  local_.send_external(from, to, std::move(payload));
}

void TcpCluster::post(ProcessId to, std::function<void()> fn) {
  local_.post(to, std::move(fn));
}

}  // namespace bft::runtime

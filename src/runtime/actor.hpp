// Runtime abstraction: protocol code is written as single-threaded reactive
// actors against this interface, and runs unchanged on either
//
//   * the simulated runtime (sim_runtime.hpp) — deterministic discrete-event
//     execution with network/CPU models, used by the benchmark harness; or
//   * the real runtime (real_runtime.hpp) — one event-loop thread per actor
//     with in-memory channels, used by tests and examples.
//
// Rules for actor code: never block, never touch wall-clock time or global
// randomness directly, interact with the world only through Env.
#pragma once

#include <cstdint>
#include <functional>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace bft::runtime {

/// Dense process identifier. Convention used across this codebase: ordering
/// nodes occupy [0, n), frontends/clients follow.
using ProcessId = std::uint32_t;

/// Nanoseconds since the run started (simulated or steady-clock).
using TimePoint = std::int64_t;
using Duration = std::int64_t;

constexpr Duration usec(std::int64_t v) { return v * 1000; }
constexpr Duration msec(std::int64_t v) { return v * 1000 * 1000; }
constexpr Duration sec(std::int64_t v) { return v * 1000 * 1000 * 1000; }

/// Per-process handle to the runtime; valid for the actor's lifetime.
class Env {
 public:
  virtual ~Env() = default;

  virtual ProcessId self() const = 0;
  virtual TimePoint now() const = 0;

  /// Asynchronous, unordered-across-peers, FIFO-per-pair message send.
  /// Delivery is best-effort: the runtime (or a fault plan) may drop it.
  ///
  /// The payload is a shared immutable handle: fanning the same Payload out
  /// to n-1 peers costs one allocation total, not one per destination.
  /// `Bytes` converts implicitly, so `send(to, encode_x(...))` keeps working
  /// by value as a convenience.
  virtual void send(ProcessId to, Payload payload) = 0;

  /// One-shot timer; the returned id (never 0) is passed to on_timer.
  virtual std::uint64_t set_timer(Duration delay) = 0;
  virtual void cancel_timer(std::uint64_t id) = 0;

  /// Offloads CPU-heavy work (block signing) to the node's worker pool.
  /// `work` runs off the event loop; `done` is invoked back on the event loop
  /// with its result. `cost_hint` drives the simulated duration (the real
  /// runtime ignores it and takes however long `work` takes).
  virtual void submit_work(Duration cost_hint, std::function<Bytes()> work,
                           std::function<void(Bytes)> done) = 0;

  /// Accounts CPU consumed by the current handler (simulated runtime only;
  /// no-op on the real runtime where the work itself takes the time).
  virtual void charge_cpu(Duration cost) = 0;

  /// Deterministic per-process random stream.
  virtual Rng& rng() = 0;
};

/// Output of the prologue phase: the message plus everything the thread-safe
/// classification/verification pass established about it. Runtimes carry it
/// from Actor::prologue to Actor::consume; the ordered-epilogue machinery
/// (runner.hpp) guarantees consume order == arrival order even when
/// prologues run concurrently.
struct Verified {
  ProcessId from = 0;
  Payload payload;

  /// Verdict of any signature checks the prologue performed.
  enum class Auth : std::uint8_t {
    /// The prologue did not check a signature (none present, or the actor
    /// uses the default pass-through prologue): consume() must run its own
    /// inline verification exactly as the single-phase path did.
    unchecked = 0,
    accepted,  // verified; consume() may skip the inline re-check
    rejected,  // verification failed; consume() drops with a diagnostic
  };
  Auth auth = Auth::unchecked;

  /// Simulated CPU cost of the prologue work (decode + verify). The
  /// simulated runtime charges it to the prologue worker servers when the
  /// process models `prologue_workers > 0`; the real runtime ignores it.
  Duration prologue_cost = 0;
  /// Set by the runtime: how much of the handler's cost it already charged
  /// on the actor's behalf (the offloaded prologue share). consume() must
  /// subtract this from its own charge so totals match the serial path.
  Duration prologue_charged = 0;
};

/// A reactive protocol participant.
///
/// Message handling is a two-phase API driven identically by the simulated,
/// threaded and TCP runtimes:
///
///   1. prologue(from, payload) — const and thread-safe; classify the
///      message and perform any signature verification that needs no actor
///      state. May run concurrently with consume() and with other prologues.
///   2. consume(Verified&&) — single-threaded, in protocol order; all state
///      mutation happens here.
///
/// Actors that never verify anything in parallel just implement on_message:
/// the default prologue passes the payload through unchecked and the default
/// consume delegates to on_message, which is exactly the old single-phase
/// behavior.
class Actor {
 public:
  virtual ~Actor() = default;

  /// Called once before any message/timer, with the permanently valid env.
  virtual void on_start(Env& env) { env_ = &env; }

  /// Phase 1 of message handling. Must not touch mutable actor state, the
  /// Env, or anything else that races with consume()/on_timer().
  virtual Verified prologue(ProcessId from, Payload payload) const {
    Verified v;
    v.from = from;
    v.payload = std::move(payload);
    return v;
  }

  /// Phase 2 of message handling; runs on the home thread in arrival order.
  virtual void consume(Verified&& verified) {
    on_message(verified.from, verified.payload.view());
  }

  /// Legacy single-phase handler; still the easiest way to write an actor
  /// with no parallel-verification needs (the default consume() lands here).
  virtual void on_message(ProcessId from, ByteView payload) {
    (void)from;
    (void)payload;
  }

  virtual void on_timer(std::uint64_t timer_id) = 0;
  /// Called when the runtime resurrects this process after a crash fault.
  /// Every timer and in-flight worker completion set before the crash is
  /// gone; implementations must re-arm whatever their liveness depends on.
  virtual void on_recover() {}

 protected:
  Env& env() const { return *env_; }

 private:
  Env* env_ = nullptr;
};

}  // namespace bft::runtime

// Application interface replicated by the SMR layer.
//
// The BFT-SMaRt ordering service (src/ordering) implements this; tests use
// small counter/KV machines. Contract:
//   * execute is deterministic — identical request sequences from identical
//     snapshots must yield identical replies and state;
//   * snapshot/restore round-trip the full application state (the paper's
//     ordering service keeps only the next block sequence number and the
//     previous header hash, which is what makes checkpoints cheap, §5.2);
//   * execute may be called again after restore for the same requests
//     (tentative-execution rollback, state transfer) — it must not have
//     external side effects it cannot repeat.
#pragma once

#include "crypto/sha256.hpp"
#include "smr/wire.hpp"

namespace bft::smr {

/// Execution metadata handed to the application with each request.
struct ExecutionContext {
  ConsensusId cid = 0;
  std::size_t index_in_batch = 0;
  std::size_t batch_size = 0;
  /// True when delivered speculatively after the WRITE quorum (WHEAT); such
  /// an execution may later be rolled back via restore().
  bool tentative = false;
};

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Executes one ordered request and returns the reply payload.
  virtual Bytes execute(const Request& request, const ExecutionContext& ctx) = 0;

  /// Serializes the full application state.
  virtual Bytes snapshot() const = 0;

  /// Replaces the application state with a previously captured snapshot.
  virtual void restore(ByteView snapshot) = 0;

  /// Digest of the application's externally visible position (for the
  /// ordering service: every channel's chain head). Durable recovery stores
  /// this beside each checkpoint and recomputes it after restoring — a
  /// mismatch means the checkpoint decodes into a different history than it
  /// was taken from, and recovery refuses it (fail closed) rather than rejoin
  /// with a forked chain. Default: hash of the full snapshot.
  virtual crypto::Hash256 integrity_digest() const {
    return crypto::sha256(snapshot());
  }

  /// Fired for timers the application armed via Replica::set_app_timer.
  /// Local (non-replicated) machinery only — batch timeouts and the like.
  virtual void on_app_timer(std::uint64_t token) { (void)token; }

  /// Called when the hosting replica recovers from a crash fault. Every app
  /// timer armed before the crash is gone; re-arm local machinery here.
  virtual void on_recover() {}

  /// Called after a state transfer installed a snapshot (and replayed the
  /// agreed log on top of it). Restores and replayed executions must stay
  /// side-effect free, so an app with external observers re-announces here —
  /// e.g. the ordering node re-pushes its recent blocks to frontends.
  virtual void on_state_installed() {}
};

/// Reply routing. The default implementation (used when none is supplied)
/// sends each reply to the requesting client; the ordering service installs a
/// custom replier that pushes signed blocks to its registered receivers
/// instead (§5.1).
class Replica;
class Replier {
 public:
  virtual ~Replier() = default;
  /// Called after each request executes. `reply` may be empty.
  virtual void on_executed(Replica& replica, const Request& request,
                           const Bytes& reply, const ExecutionContext& ctx) = 0;
};

}  // namespace bft::smr

#include "smr/wire.hpp"

namespace bft::smr {

namespace {

void expect_kind(Reader& r, MsgKind kind) {
  const auto got = static_cast<MsgKind>(r.u8());
  if (got != kind) throw DecodeError("unexpected message kind");
}

void put_hash(Writer& w, const ValueHash& h) {
  w.raw(ByteView(h.data(), h.size()));
}

ValueHash get_hash(Reader& r) {
  return crypto::hash_from_bytes(r.raw(32));
}

void put_cert(Writer& w, const WriteCertificate& cert) {
  w.u64(cert.cid);
  w.u32(cert.epoch);
  put_hash(w, cert.hash);
  w.u32(static_cast<std::uint32_t>(cert.votes.size()));
  for (const auto& vote : cert.votes) {
    w.u32(vote.from);
    w.bytes(vote.signature);
  }
}

WriteCertificate get_cert(Reader& r) {
  WriteCertificate cert;
  cert.cid = r.u64();
  cert.epoch = r.u32();
  cert.hash = get_hash(r);
  const std::uint32_t votes = r.u32();
  cert.votes.reserve(r.safe_reserve(votes));
  for (std::uint32_t i = 0; i < votes; ++i) {
    consensus::WriteVote vote;
    vote.from = r.u32();
    vote.signature = r.bytes();
    cert.votes.push_back(std::move(vote));
  }
  return cert;
}

}  // namespace

MsgKind peek_kind(ByteView data) {
  if (data.empty()) throw DecodeError("empty message");
  return static_cast<MsgKind>(data[0]);
}

bool Request::operator==(const Request& other) const {
  return client == other.client && seq == other.seq && kind == other.kind &&
         payload == other.payload;
}

Bytes Batch::encode() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(requests.size()));
  for (const Request& r : requests) {
    w.u32(r.client);
    w.u64(r.seq);
    w.u8(static_cast<std::uint8_t>(r.kind));
    w.bytes(r.payload);
  }
  return std::move(w).take();
}

Batch Batch::decode(ByteView data) {
  Reader r(data);
  Batch batch;
  const std::uint32_t count = r.u32();
  batch.requests.reserve(r.safe_reserve(count));
  for (std::uint32_t i = 0; i < count; ++i) {
    Request req;
    req.client = r.u32();
    req.seq = r.u64();
    const std::uint8_t kind = r.u8();
    if (kind > 1) throw DecodeError("bad request kind");
    req.kind = static_cast<RequestKind>(kind);
    req.payload = r.bytes();
    batch.requests.push_back(std::move(req));
  }
  r.expect_done();
  return batch;
}

namespace {

Bytes encode_request_like(MsgKind kind, const Request& req) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(req.client);
  w.u64(req.seq);
  w.u8(static_cast<std::uint8_t>(req.kind));
  w.bytes(req.payload);
  return std::move(w).take();
}

Request decode_request_like(MsgKind kind, ByteView data) {
  Reader r(data);
  expect_kind(r, kind);
  Request req;
  req.client = r.u32();
  req.seq = r.u64();
  const std::uint8_t k = r.u8();
  if (k > 1) throw DecodeError("bad request kind");
  req.kind = static_cast<RequestKind>(k);
  req.payload = r.bytes();
  r.expect_done();
  return req;
}

}  // namespace

Bytes encode_request(const Request& req) {
  return encode_request_like(MsgKind::request, req);
}
Request decode_request(ByteView data) {
  return decode_request_like(MsgKind::request, data);
}

Bytes encode_forward(const Forward& f) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgKind::forward));
  w.u32(f.request.client);
  w.u64(f.request.seq);
  w.u8(static_cast<std::uint8_t>(f.request.kind));
  w.bytes(f.request.payload);
  w.bytes(f.signature);
  return std::move(w).take();
}

Forward decode_forward(ByteView data) {
  Reader r(data);
  expect_kind(r, MsgKind::forward);
  Forward f;
  f.request.client = r.u32();
  f.request.seq = r.u64();
  const std::uint8_t k = r.u8();
  if (k > 1) throw DecodeError("bad request kind");
  f.request.kind = static_cast<RequestKind>(k);
  f.request.payload = r.bytes();
  f.signature = r.bytes();
  r.expect_done();
  return f;
}

crypto::Hash256 forward_digest(const Request& r) {
  Writer w;
  w.str("bft.forward");
  w.u32(r.client);
  w.u64(r.seq);
  w.u8(static_cast<std::uint8_t>(r.kind));
  w.bytes(r.payload);
  return crypto::sha256(w.data());
}

Bytes encode_reply(const Reply& reply) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgKind::reply));
  w.u64(reply.client_seq);
  w.u64(reply.cid);
  w.bytes(reply.payload);
  return std::move(w).take();
}

Reply decode_reply(ByteView data) {
  Reader r(data);
  expect_kind(r, MsgKind::reply);
  Reply reply;
  reply.client_seq = r.u64();
  reply.cid = r.u64();
  reply.payload = r.bytes();
  r.expect_done();
  return reply;
}

Bytes encode_propose(const Propose& p) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgKind::propose));
  w.u64(p.cid);
  w.u32(p.epoch);
  w.bytes(p.value);
  return std::move(w).take();
}

Propose decode_propose(ByteView data) {
  Reader r(data);
  expect_kind(r, MsgKind::propose);
  Propose p;
  p.cid = r.u64();
  p.epoch = r.u32();
  p.value = r.bytes();
  r.expect_done();
  return p;
}

Bytes encode_write(const WriteMsg& msg) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgKind::write));
  w.u64(msg.cid);
  w.u32(msg.epoch);
  put_hash(w, msg.hash);
  w.bytes(msg.signature);
  return std::move(w).take();
}

WriteMsg decode_write(ByteView data) {
  Reader r(data);
  expect_kind(r, MsgKind::write);
  WriteMsg msg;
  msg.cid = r.u64();
  msg.epoch = r.u32();
  msg.hash = get_hash(r);
  msg.signature = r.bytes();
  r.expect_done();
  return msg;
}

Bytes encode_accept(const AcceptMsg& msg) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgKind::accept));
  w.u64(msg.cid);
  w.u32(msg.epoch);
  put_hash(w, msg.hash);
  return std::move(w).take();
}

AcceptMsg decode_accept(ByteView data) {
  Reader r(data);
  expect_kind(r, MsgKind::accept);
  AcceptMsg msg;
  msg.cid = r.u64();
  msg.epoch = r.u32();
  msg.hash = get_hash(r);
  r.expect_done();
  return msg;
}

Bytes encode_stop(const Stop& s) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgKind::stop));
  w.u32(s.next_epoch);
  w.u64(s.last_decided);
  return std::move(w).take();
}

Stop decode_stop(ByteView data) {
  Reader r(data);
  expect_kind(r, MsgKind::stop);
  Stop s;
  s.next_epoch = r.u32();
  s.last_decided = r.u64();
  r.expect_done();
  return s;
}

namespace {

void write_stopdata_body(Writer& w, const StopData& s) {
  w.u32(s.next_epoch);
  w.u32(s.from);
  w.u64(s.last_decided);
  w.u64(s.cid);
  w.boolean(s.cert.has_value());
  if (s.cert) put_cert(w, *s.cert);
  w.bytes(s.value);
}

}  // namespace

Bytes encode_stopdata(const StopData& s) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgKind::stopdata));
  write_stopdata_body(w, s);
  w.bytes(s.signature);
  return std::move(w).take();
}

StopData decode_stopdata(ByteView data) {
  Reader r(data);
  expect_kind(r, MsgKind::stopdata);
  StopData s;
  s.next_epoch = r.u32();
  s.from = r.u32();
  s.last_decided = r.u64();
  s.cid = r.u64();
  if (r.boolean()) s.cert = get_cert(r);
  s.value = r.bytes();
  s.signature = r.bytes();
  r.expect_done();
  return s;
}

crypto::Hash256 stopdata_digest(const StopData& s) {
  Writer w;
  w.str("bft.stopdata");
  write_stopdata_body(w, s);
  return crypto::sha256(w.data());
}

Bytes encode_sync(const Sync& s) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgKind::sync));
  w.u32(s.new_epoch);
  w.u64(s.cid);
  w.u32(static_cast<std::uint32_t>(s.stopdata_blobs.size()));
  for (const Bytes& blob : s.stopdata_blobs) w.bytes(blob);
  w.bytes(s.proposed_value);
  return std::move(w).take();
}

Sync decode_sync(ByteView data) {
  Reader r(data);
  expect_kind(r, MsgKind::sync);
  Sync s;
  s.new_epoch = r.u32();
  s.cid = r.u64();
  const std::uint32_t blobs = r.u32();
  s.stopdata_blobs.reserve(r.safe_reserve(blobs));
  for (std::uint32_t i = 0; i < blobs; ++i) s.stopdata_blobs.push_back(r.bytes());
  s.proposed_value = r.bytes();
  r.expect_done();
  return s;
}

Bytes encode_state_request(const StateRequest& s) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgKind::state_request));
  w.u64(s.last_decided);
  return std::move(w).take();
}

StateRequest decode_state_request(ByteView data) {
  Reader r(data);
  expect_kind(r, MsgKind::state_request);
  StateRequest s;
  s.last_decided = r.u64();
  r.expect_done();
  return s;
}

namespace {

void write_state_reply_body(Writer& w, const StateReply& s) {
  w.u64(s.snapshot_cid);
  w.bytes(s.snapshot);
  w.u32(static_cast<std::uint32_t>(s.log.size()));
  for (const LogEntry& e : s.log) {
    w.u64(e.cid);
    w.bytes(e.value);
  }
}

}  // namespace

Bytes encode_state_reply(const StateReply& s) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgKind::state_reply));
  write_state_reply_body(w, s);
  w.u32(s.epoch);
  return std::move(w).take();
}

StateReply decode_state_reply(ByteView data) {
  Reader r(data);
  expect_kind(r, MsgKind::state_reply);
  StateReply s;
  s.snapshot_cid = r.u64();
  s.snapshot = r.bytes();
  const std::uint32_t entries = r.u32();
  s.log.reserve(r.safe_reserve(entries));
  for (std::uint32_t i = 0; i < entries; ++i) {
    LogEntry e;
    e.cid = r.u64();
    e.value = r.bytes();
    s.log.push_back(std::move(e));
  }
  s.epoch = r.u32();
  r.expect_done();
  return s;
}

crypto::Hash256 state_reply_digest(const StateReply& s) {
  // The epoch is deliberately excluded: replicas at different regencies still
  // agree on the decided prefix.
  Writer w;
  w.str("bft.state");
  write_state_reply_body(w, s);
  return crypto::sha256(w.data());
}

Bytes encode_value_request(const ValueRequest& v) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgKind::value_request));
  w.u64(v.cid);
  put_hash(w, v.hash);
  return std::move(w).take();
}

ValueRequest decode_value_request(ByteView data) {
  Reader r(data);
  expect_kind(r, MsgKind::value_request);
  ValueRequest v;
  v.cid = r.u64();
  v.hash = get_hash(r);
  r.expect_done();
  return v;
}

Bytes encode_value_reply(const ValueReply& v) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgKind::value_reply));
  w.u64(v.cid);
  w.bytes(v.value);
  return std::move(w).take();
}

ValueReply decode_value_reply(ByteView data) {
  Reader r(data);
  expect_kind(r, MsgKind::value_reply);
  ValueReply v;
  v.cid = r.u64();
  v.value = r.bytes();
  r.expect_done();
  return v;
}

Bytes encode_register_receiver() {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgKind::register_receiver));
  return std::move(w).take();
}

Bytes encode_push(ByteView payload) {
  Writer w(payload.size() + 8);
  w.u8(static_cast<std::uint8_t>(MsgKind::push));
  w.bytes(payload);
  return std::move(w).take();
}

Bytes decode_push(ByteView data) {
  Reader r(data);
  expect_kind(r, MsgKind::push);
  Bytes payload = r.bytes();
  r.expect_done();
  return payload;
}

}  // namespace bft::smr

#include "smr/wire.hpp"

namespace bft::smr {

namespace {

void put_hash(Writer& w, const ValueHash& h) {
  w.raw(ByteView(h.data(), h.size()));
}

ValueHash get_hash(Reader& r) {
  return crypto::hash_from_bytes(r.raw(32));
}

void put_cert(Writer& w, const WriteCertificate& cert) {
  w.u64(cert.cid);
  w.u32(cert.epoch);
  put_hash(w, cert.hash);
  w.u32(static_cast<std::uint32_t>(cert.votes.size()));
  for (const auto& vote : cert.votes) {
    w.u32(vote.from);
    w.bytes(vote.signature);
  }
}

WriteCertificate get_cert(Reader& r) {
  WriteCertificate cert;
  cert.cid = r.u64();
  cert.epoch = r.u32();
  cert.hash = get_hash(r);
  const std::uint32_t votes = r.u32();
  cert.votes.reserve(r.safe_reserve(votes));
  for (std::uint32_t i = 0; i < votes; ++i) {
    consensus::WriteVote vote;
    vote.from = r.u32();
    vote.signature = r.bytes();
    cert.votes.push_back(std::move(vote));
  }
  return cert;
}

void put_request_body(Writer& w, const Request& req) {
  w.u32(req.client);
  w.u64(req.seq);
  w.u8(static_cast<std::uint8_t>(req.kind));
  w.bytes(req.payload);
}

Request get_request_body(Reader& r) {
  Request req;
  req.client = r.u32();
  req.seq = r.u64();
  const std::uint8_t kind = r.u8();
  if (kind > 1) throw DecodeError("bad request kind");
  req.kind = static_cast<RequestKind>(kind);
  req.payload = r.bytes();
  return req;
}

/// StopData fields covered by the STOPDATA signature (everything but the
/// signature itself); shared by the codec body and stopdata_digest.
void put_stopdata_core(Writer& w, const StopData& s) {
  w.u32(s.next_epoch);
  w.u32(s.from);
  w.u64(s.last_decided);
  w.u64(s.cid);
  w.boolean(s.cert.has_value());
  if (s.cert) put_cert(w, *s.cert);
  w.bytes(s.value);
}

/// StateReply fields covered by the f+1-matching digest. The epoch is
/// deliberately excluded: replicas at different regencies still agree on the
/// decided prefix.
void put_state_reply_core(Writer& w, const StateReply& s) {
  w.u64(s.snapshot_cid);
  w.bytes(s.snapshot);
  w.u32(static_cast<std::uint32_t>(s.log.size()));
  for (const LogEntry& e : s.log) {
    w.u64(e.cid);
    w.bytes(e.value);
  }
}

}  // namespace

MsgKind peek_kind(ByteView data) {
  if (data.empty()) throw DecodeError("empty message");
  return static_cast<MsgKind>(data[0]);
}

const char* kind_name(MsgKind kind) {
  switch (kind) {
    case MsgKind::request: return "request";
    case MsgKind::forward: return "forward";
    case MsgKind::propose: return "propose";
    case MsgKind::write: return "write";
    case MsgKind::accept: return "accept";
    case MsgKind::stop: return "stop";
    case MsgKind::stopdata: return "stopdata";
    case MsgKind::sync: return "sync";
    case MsgKind::reply: return "reply";
    case MsgKind::state_request: return "state_request";
    case MsgKind::state_reply: return "state_reply";
    case MsgKind::value_request: return "value_request";
    case MsgKind::value_reply: return "value_reply";
    case MsgKind::register_receiver: return "register_receiver";
    case MsgKind::push: return "push";
    case MsgKind::state_chunk: return "state_chunk";
    case MsgKind::state_chunk_ack: return "state_chunk_ack";
  }
  return "unknown";
}

bool kind_known(MsgKind kind) {
  return kind >= MsgKind::request && kind <= MsgKind::state_chunk_ack;
}

bool Request::operator==(const Request& other) const {
  return client == other.client && seq == other.seq && kind == other.kind &&
         payload == other.payload;
}

Bytes Batch::encode() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(requests.size()));
  for (const Request& r : requests) {
    w.u32(r.client);
    w.u64(r.seq);
    w.u8(static_cast<std::uint8_t>(r.kind));
    w.bytes(r.payload);
  }
  return std::move(w).take();
}

Batch Batch::decode(ByteView data) {
  Reader r(data);
  Batch batch;
  const std::uint32_t count = r.u32();
  batch.requests.reserve(r.safe_reserve(count));
  for (std::uint32_t i = 0; i < count; ++i) {
    Request req;
    req.client = r.u32();
    req.seq = r.u64();
    const std::uint8_t kind = r.u8();
    if (kind > 1) throw DecodeError("bad request kind");
    req.kind = static_cast<RequestKind>(kind);
    req.payload = r.bytes();
    batch.requests.push_back(std::move(req));
  }
  r.expect_done();
  return batch;
}

// --- codec bodies ---

void Codec<Request>::write_body(Writer& w, const Request& v) {
  put_request_body(w, v);
}
Request Codec<Request>::read_body(Reader& r) { return get_request_body(r); }

void Codec<Forward>::write_body(Writer& w, const Forward& v) {
  put_request_body(w, v.request);
  w.bytes(v.signature);
}
Forward Codec<Forward>::read_body(Reader& r) {
  Forward f;
  f.request = get_request_body(r);
  f.signature = r.bytes();
  return f;
}

void Codec<Reply>::write_body(Writer& w, const Reply& v) {
  w.u64(v.client_seq);
  w.u64(v.cid);
  w.bytes(v.payload);
}
Reply Codec<Reply>::read_body(Reader& r) {
  Reply reply;
  reply.client_seq = r.u64();
  reply.cid = r.u64();
  reply.payload = r.bytes();
  return reply;
}

void Codec<Propose>::write_body(Writer& w, const Propose& v) {
  w.u64(v.cid);
  w.u32(v.epoch);
  w.bytes(v.value);
}
Propose Codec<Propose>::read_body(Reader& r) {
  Propose p;
  p.cid = r.u64();
  p.epoch = r.u32();
  p.value = r.bytes();
  return p;
}

void Codec<WriteMsg>::write_body(Writer& w, const WriteMsg& v) {
  w.u64(v.cid);
  w.u32(v.epoch);
  put_hash(w, v.hash);
  w.bytes(v.signature);
}
WriteMsg Codec<WriteMsg>::read_body(Reader& r) {
  WriteMsg msg;
  msg.cid = r.u64();
  msg.epoch = r.u32();
  msg.hash = get_hash(r);
  msg.signature = r.bytes();
  return msg;
}

void Codec<AcceptMsg>::write_body(Writer& w, const AcceptMsg& v) {
  w.u64(v.cid);
  w.u32(v.epoch);
  put_hash(w, v.hash);
}
AcceptMsg Codec<AcceptMsg>::read_body(Reader& r) {
  AcceptMsg msg;
  msg.cid = r.u64();
  msg.epoch = r.u32();
  msg.hash = get_hash(r);
  return msg;
}

void Codec<Stop>::write_body(Writer& w, const Stop& v) {
  w.u32(v.next_epoch);
  w.u64(v.last_decided);
}
Stop Codec<Stop>::read_body(Reader& r) {
  Stop s;
  s.next_epoch = r.u32();
  s.last_decided = r.u64();
  return s;
}

void Codec<StopData>::write_body(Writer& w, const StopData& v) {
  put_stopdata_core(w, v);
  w.bytes(v.signature);
}
StopData Codec<StopData>::read_body(Reader& r) {
  StopData s;
  s.next_epoch = r.u32();
  s.from = r.u32();
  s.last_decided = r.u64();
  s.cid = r.u64();
  if (r.boolean()) s.cert = get_cert(r);
  s.value = r.bytes();
  s.signature = r.bytes();
  return s;
}

void Codec<Sync>::write_body(Writer& w, const Sync& v) {
  w.u32(v.new_epoch);
  w.u64(v.cid);
  w.u32(static_cast<std::uint32_t>(v.stopdata_blobs.size()));
  for (const Bytes& blob : v.stopdata_blobs) w.bytes(blob);
  w.bytes(v.proposed_value);
}
Sync Codec<Sync>::read_body(Reader& r) {
  Sync s;
  s.new_epoch = r.u32();
  s.cid = r.u64();
  const std::uint32_t blobs = r.u32();
  s.stopdata_blobs.reserve(r.safe_reserve(blobs));
  for (std::uint32_t i = 0; i < blobs; ++i) s.stopdata_blobs.push_back(r.bytes());
  s.proposed_value = r.bytes();
  return s;
}

void Codec<StateRequest>::write_body(Writer& w, const StateRequest& v) {
  w.u64(v.last_decided);
}
StateRequest Codec<StateRequest>::read_body(Reader& r) {
  StateRequest s;
  s.last_decided = r.u64();
  return s;
}

void Codec<StateReply>::write_body(Writer& w, const StateReply& v) {
  put_state_reply_core(w, v);
  w.u32(v.epoch);
}
StateReply Codec<StateReply>::read_body(Reader& r) {
  StateReply s;
  s.snapshot_cid = r.u64();
  s.snapshot = r.bytes();
  const std::uint32_t entries = r.u32();
  s.log.reserve(r.safe_reserve(entries));
  for (std::uint32_t i = 0; i < entries; ++i) {
    LogEntry e;
    e.cid = r.u64();
    e.value = r.bytes();
    s.log.push_back(std::move(e));
  }
  s.epoch = r.u32();
  return s;
}

void Codec<ValueRequest>::write_body(Writer& w, const ValueRequest& v) {
  w.u64(v.cid);
  put_hash(w, v.hash);
}
ValueRequest Codec<ValueRequest>::read_body(Reader& r) {
  ValueRequest v;
  v.cid = r.u64();
  v.hash = get_hash(r);
  return v;
}

void Codec<ValueReply>::write_body(Writer& w, const ValueReply& v) {
  w.u64(v.cid);
  w.bytes(v.value);
}
ValueReply Codec<ValueReply>::read_body(Reader& r) {
  ValueReply v;
  v.cid = r.u64();
  v.value = r.bytes();
  return v;
}

void Codec<RegisterReceiver>::write_body(Writer&, const RegisterReceiver&) {}
RegisterReceiver Codec<RegisterReceiver>::read_body(Reader&) { return {}; }

void Codec<Push>::write_body(Writer& w, const Push& v) { w.bytes(v.payload); }
Push Codec<Push>::read_body(Reader& r) {
  Push p;
  p.payload = r.bytes();
  return p;
}

void Codec<StateChunk>::write_body(Writer& w, const StateChunk& v) {
  w.u64(v.transfer_id);
  w.u32(v.index);
  w.u32(v.total);
  w.bytes(v.data);
}
StateChunk Codec<StateChunk>::read_body(Reader& r) {
  StateChunk c;
  c.transfer_id = r.u64();
  c.index = r.u32();
  c.total = r.u32();
  c.data = r.bytes();
  return c;
}

void Codec<StateChunkAck>::write_body(Writer& w, const StateChunkAck& v) {
  w.u64(v.transfer_id);
  w.u32(v.index);
}
StateChunkAck Codec<StateChunkAck>::read_body(Reader& r) {
  StateChunkAck a;
  a.transfer_id = r.u64();
  a.index = r.u32();
  return a;
}

// --- signature digests ---

crypto::Hash256 forward_digest(const Request& r) {
  Writer w;
  w.str("bft.forward");
  w.u32(r.client);
  w.u64(r.seq);
  w.u8(static_cast<std::uint8_t>(r.kind));
  w.bytes(r.payload);
  return crypto::sha256(w.data());
}

crypto::Hash256 stopdata_digest(const StopData& s) {
  Writer w;
  w.str("bft.stopdata");
  put_stopdata_core(w, s);
  return crypto::sha256(w.data());
}

crypto::Hash256 state_reply_digest(const StateReply& s) {
  Writer w;
  w.str("bft.state");
  put_state_reply_core(w, s);
  return crypto::sha256(w.data());
}

}  // namespace bft::smr

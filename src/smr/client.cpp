#include "smr/client.hpp"

#include "crypto/sha256.hpp"

namespace bft::smr {

Client::Client(ClusterConfig config) : Client(std::move(config), Params{}) {}

Client::Client(ClusterConfig config, Params params)
    : config_(std::move(config)), params_(params) {}

void Client::on_start(runtime::Env& env) { Actor::on_start(env); }

consensus::Weight Client::reply_threshold() const {
  const auto& q = config_.quorums();
  return params_.tentative ? q.quorum_weight() : q.evidence_weight();
}

void Client::send_to_all(const Bytes& encoded) {
  const Payload shared = Payload(encoded);  // one allocation for the fan-out
  for (runtime::ProcessId member : config_.members()) {
    env().send(member, shared);
  }
}

std::uint64_t Client::invoke(Bytes payload, ReplyCallback callback,
                             RequestKind kind) {
  Request request;
  request.client = env().self();
  request.seq = next_seq_++;
  request.kind = kind;
  request.payload = std::move(payload);

  Outstanding entry;
  entry.encoded_request = encode_request(request);
  entry.callback = std::move(callback);
  send_to_all(entry.encoded_request);
  outstanding_.emplace(request.seq, std::move(entry));

  if (resend_timer_ == 0) {
    resend_timer_ = env().set_timer(params_.resend_timeout);
  }
  return request.seq;
}

std::uint64_t Client::invoke_async(Bytes payload, RequestKind kind) {
  Request request;
  request.client = env().self();
  request.seq = next_seq_++;
  request.kind = kind;
  request.payload = std::move(payload);
  send_to_all(encode_request(request));
  return request.seq;
}

void Client::on_message(runtime::ProcessId from, ByteView payload) {
  try {
    if (peek_kind(payload) != MsgKind::reply) return;
    const Reply reply = decode_reply(payload);
    const auto it = outstanding_.find(reply.client_seq);
    if (it == outstanding_.end()) return;
    if (!config_.contains(from)) return;

    const std::string digest =
        crypto::hash_hex(crypto::sha256(reply.payload));
    auto& [senders, stored] = it->second.replies[digest];
    if (stored.empty() && !reply.payload.empty()) stored = reply.payload;
    senders.insert(from);

    std::set<consensus::ReplicaId> indices;
    for (runtime::ProcessId p : senders) indices.insert(config_.index_of(p));
    if (config_.quorums().weight_of_set(indices) >= reply_threshold()) {
      ReplyCallback callback = std::move(it->second.callback);
      Bytes result = stored;
      outstanding_.erase(it);
      ++completed_;
      if (callback) callback(reply.client_seq, std::move(result));
    }
  } catch (const DecodeError&) {
    // Malformed reply: ignore the sender's vote.
  }
}

void Client::on_timer(std::uint64_t timer_id) {
  if (timer_id != resend_timer_) return;
  resend_timer_ = 0;
  if (outstanding_.empty()) return;
  for (const auto& [seq, entry] : outstanding_) {
    (void)seq;
    send_to_all(entry.encoded_request);
  }
  resend_timer_ = env().set_timer(params_.resend_timeout);
}

}  // namespace bft::smr

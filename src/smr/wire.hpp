// Wire messages exchanged by replicas, clients and receivers.
//
// Encodings are deterministic (common/serial.hpp), length-checked on decode,
// and versioned by a leading kind byte. Decode functions throw DecodeError on
// malformed input; replicas treat that as a Byzantine sender and drop.
#pragma once

#include <optional>
#include <vector>

#include "common/serial.hpp"
#include "consensus/instance.hpp"

namespace bft::smr {

using consensus::ConsensusId;
using consensus::Epoch;
using consensus::ReplicaId;
using consensus::ValueHash;
using consensus::WriteCertificate;

enum class MsgKind : std::uint8_t {
  request = 1,        // client -> replicas
  forward = 2,        // replica -> leader (timed-out request relay)
  propose = 3,        // leader -> replicas
  write = 4,          // replica -> replicas
  accept = 5,         // replica -> replicas
  stop = 6,           // synchronization phase trigger
  stopdata = 7,       // replica -> new leader
  sync = 8,           // new leader -> replicas
  reply = 9,          // replica -> client
  state_request = 10, // lagging replica -> replicas
  state_reply = 11,   // replica -> lagging replica
  value_request = 12, // decided-without-value recovery
  value_reply = 13,
  register_receiver = 14,  // receiver -> replicas (custom-replier audience)
  push = 15,               // replica -> receivers (application payload)
};

/// Reads the kind byte without consuming the message.
MsgKind peek_kind(ByteView data);

/// Request kinds: ordinary application payloads vs. membership changes
/// executed by the SMR core itself (§5.2 reconfiguration).
enum class RequestKind : std::uint8_t { application = 0, reconfig = 1 };

struct Request {
  std::uint32_t client = 0;
  std::uint64_t seq = 0;
  RequestKind kind = RequestKind::application;
  Bytes payload;

  bool operator==(const Request& other) const;
};

/// A batch of requests: the value decided by one consensus instance.
struct Batch {
  std::vector<Request> requests;

  Bytes encode() const;
  static Batch decode(ByteView data);
};

// --- client traffic ---

Bytes encode_request(const Request& r);
Request decode_request(ByteView data);

/// A timed-out request relayed to the suspected-slow leader. Unlike client
/// requests (whose effects are vouched by the 2f+1/f+1 reply quorum), a
/// forward is trusted enough to enter the leader's batch pool directly, so it
/// carries the relaying replica's signature: otherwise one corrupted link
/// could forge a (client, seq) pair and poison duplicate-detection state.
struct Forward {
  Request request;
  Bytes signature;  // over forward_digest(request); empty when unsigned
};
Bytes encode_forward(const Forward& f);
Forward decode_forward(ByteView data);
/// Digest covered by a forward signature.
crypto::Hash256 forward_digest(const Request& r);

struct Reply {
  std::uint64_t client_seq = 0;
  ConsensusId cid = 0;
  Bytes payload;
};
Bytes encode_reply(const Reply& r);
Reply decode_reply(ByteView data);

// --- consensus traffic ---

struct Propose {
  ConsensusId cid = 0;
  Epoch epoch = 0;
  Bytes value;  // encoded Batch
};
Bytes encode_propose(const Propose& p);
Propose decode_propose(ByteView data);

struct WriteMsg {
  ConsensusId cid = 0;
  Epoch epoch = 0;
  ValueHash hash{};
  Bytes signature;  // empty when unsigned writes are configured
};
Bytes encode_write(const WriteMsg& w);
WriteMsg decode_write(ByteView data);

struct AcceptMsg {
  ConsensusId cid = 0;
  Epoch epoch = 0;
  ValueHash hash{};
};
Bytes encode_accept(const AcceptMsg& a);
AcceptMsg decode_accept(ByteView data);

// --- synchronization phase ---

struct Stop {
  Epoch next_epoch = 0;
  /// Sender's confirmed decision cursor: a catch-up hint that lets stragglers
  /// notice they missed decisions even when consensus traffic has dried up.
  ConsensusId last_decided = 0;
};
Bytes encode_stop(const Stop& s);
Stop decode_stop(ByteView data);

struct StopData {
  Epoch next_epoch = 0;
  ReplicaId from = 0;
  ConsensusId last_decided = 0;
  ConsensusId cid = 0;  // instance being synchronized
  std::optional<WriteCertificate> cert;
  Bytes value;      // value backing the certificate (may be empty if unknown)
  Bytes signature;  // over stopdata_digest(*this)
};
Bytes encode_stopdata(const StopData& s);
StopData decode_stopdata(ByteView data);
/// Digest covered by a STOPDATA signature (everything but the signature).
crypto::Hash256 stopdata_digest(const StopData& s);

struct Sync {
  Epoch new_epoch = 0;
  ConsensusId cid = 0;
  std::vector<Bytes> stopdata_blobs;  // encoded StopData, signature-preserving
  Bytes proposed_value;               // encoded Batch
};
Bytes encode_sync(const Sync& s);
Sync decode_sync(ByteView data);

// --- state transfer ---

struct StateRequest {
  ConsensusId last_decided = 0;
};
Bytes encode_state_request(const StateRequest& s);
StateRequest decode_state_request(ByteView data);

struct LogEntry {
  ConsensusId cid = 0;
  Bytes value;  // encoded Batch
};

struct StateReply {
  ConsensusId snapshot_cid = 0;  // decisions up to and including this one
  Bytes snapshot;                // application + core state at snapshot_cid
  std::vector<LogEntry> log;     // decisions after the snapshot
  Epoch epoch = 0;               // sender's current regency
};
Bytes encode_state_reply(const StateReply& s);
StateReply decode_state_reply(ByteView data);
/// Digest used to find f+1 matching state replies.
crypto::Hash256 state_reply_digest(const StateReply& s);

// --- decided-value recovery ---

struct ValueRequest {
  ConsensusId cid = 0;
  ValueHash hash{};
};
Bytes encode_value_request(const ValueRequest& v);
ValueRequest decode_value_request(ByteView data);

struct ValueReply {
  ConsensusId cid = 0;
  Bytes value;
};
Bytes encode_value_reply(const ValueReply& v);
ValueReply decode_value_reply(ByteView data);

// --- receiver registration and pushes (custom replier, §5.1) ---

Bytes encode_register_receiver();

Bytes encode_push(ByteView payload);
Bytes decode_push(ByteView data);

}  // namespace bft::smr

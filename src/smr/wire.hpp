// Wire messages exchanged by replicas, clients and receivers.
//
// Encodings are deterministic (common/serial.hpp), length-checked on decode,
// and versioned by a leading kind byte. Decode functions throw DecodeError on
// malformed input; replicas treat that as a Byzantine sender and drop.
#pragma once

#include <optional>
#include <vector>

#include "common/serial.hpp"
#include "consensus/instance.hpp"

namespace bft::smr {

using consensus::ConsensusId;
using consensus::Epoch;
using consensus::ReplicaId;
using consensus::ValueHash;
using consensus::WriteCertificate;

enum class MsgKind : std::uint8_t {
  request = 1,        // client -> replicas
  forward = 2,        // replica -> leader (timed-out request relay)
  propose = 3,        // leader -> replicas
  write = 4,          // replica -> replicas
  accept = 5,         // replica -> replicas
  stop = 6,           // synchronization phase trigger
  stopdata = 7,       // replica -> new leader
  sync = 8,           // new leader -> replicas
  reply = 9,          // replica -> client
  state_request = 10, // lagging replica -> replicas
  state_reply = 11,   // replica -> lagging replica
  value_request = 12, // decided-without-value recovery
  value_reply = 13,
  register_receiver = 14,  // receiver -> replicas (custom-replier audience)
  push = 15,               // replica -> receivers (application payload)
  state_chunk = 16,        // replica -> lagging replica (streamed reply)
  state_chunk_ack = 17,    // lagging replica -> replica (flow control)
};

/// Reads the kind byte without consuming the message.
MsgKind peek_kind(ByteView data);

/// Human-readable name of a message kind ("propose", "write", ...); returns
/// "unknown" for unregistered tags. Used by tracing, transport logging and
/// drop diagnostics.
const char* kind_name(MsgKind kind);

/// True when `kind` is a registered wire tag.
bool kind_known(MsgKind kind);

// --- tagged message codec ---
//
// Every wire message type T declares exactly one thing: its kind tag and how
// its body (de)serializes, via the Codec<T> specialization. The generic
// encode<T>/decode<T> below own the framing conventions — leading kind byte,
// full-consumption check, DecodeError on mismatch — so adding a message type
// is one specialization, not another hand-rolled encode_*/decode_* pair with
// its own copy of the kind handling. The named free functions further down
// are thin convenience wrappers over this machinery.

template <typename T>
struct Codec;  // specialized for every wire message type

/// Encodes `msg` with its leading kind byte.
template <typename T>
Bytes encode(const T& msg) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(Codec<T>::kKind));
  Codec<T>::write_body(w, msg);
  return std::move(w).take();
}

/// Decodes a full message of type T; throws DecodeError on a wrong kind tag,
/// malformed body or trailing garbage.
template <typename T>
T decode(ByteView data) {
  Reader r(data);
  if (static_cast<MsgKind>(r.u8()) != Codec<T>::kKind) {
    throw DecodeError("unexpected message kind");
  }
  T msg = Codec<T>::read_body(r);
  r.expect_done();
  return msg;
}

/// Request kinds: ordinary application payloads vs. membership changes
/// executed by the SMR core itself (§5.2 reconfiguration).
enum class RequestKind : std::uint8_t { application = 0, reconfig = 1 };

struct Request {
  std::uint32_t client = 0;
  std::uint64_t seq = 0;
  RequestKind kind = RequestKind::application;
  Bytes payload;

  bool operator==(const Request& other) const;
};

/// A batch of requests: the value decided by one consensus instance.
struct Batch {
  std::vector<Request> requests;

  Bytes encode() const;
  static Batch decode(ByteView data);
};

// --- client traffic ---

/// A timed-out request relayed to the suspected-slow leader. Unlike client
/// requests (whose effects are vouched by the 2f+1/f+1 reply quorum), a
/// forward is trusted enough to enter the leader's batch pool directly, so it
/// carries the relaying replica's signature: otherwise one corrupted link
/// could forge a (client, seq) pair and poison duplicate-detection state.
struct Forward {
  Request request;
  Bytes signature;  // over forward_digest(request); empty when unsigned
};
/// Digest covered by a forward signature.
crypto::Hash256 forward_digest(const Request& r);

struct Reply {
  std::uint64_t client_seq = 0;
  ConsensusId cid = 0;
  Bytes payload;
};

// --- consensus traffic ---

struct Propose {
  ConsensusId cid = 0;
  Epoch epoch = 0;
  Bytes value;  // encoded Batch
};

struct WriteMsg {
  ConsensusId cid = 0;
  Epoch epoch = 0;
  ValueHash hash{};
  Bytes signature;  // empty when unsigned writes are configured
};

struct AcceptMsg {
  ConsensusId cid = 0;
  Epoch epoch = 0;
  ValueHash hash{};
};

// --- synchronization phase ---

struct Stop {
  Epoch next_epoch = 0;
  /// Sender's confirmed decision cursor: a catch-up hint that lets stragglers
  /// notice they missed decisions even when consensus traffic has dried up.
  ConsensusId last_decided = 0;
};

struct StopData {
  Epoch next_epoch = 0;
  ReplicaId from = 0;
  ConsensusId last_decided = 0;
  ConsensusId cid = 0;  // instance being synchronized
  std::optional<WriteCertificate> cert;
  Bytes value;      // value backing the certificate (may be empty if unknown)
  Bytes signature;  // over stopdata_digest(*this)
};
/// Digest covered by a STOPDATA signature (everything but the signature).
crypto::Hash256 stopdata_digest(const StopData& s);

struct Sync {
  Epoch new_epoch = 0;
  ConsensusId cid = 0;
  std::vector<Bytes> stopdata_blobs;  // encoded StopData, signature-preserving
  Bytes proposed_value;               // encoded Batch
};

// --- state transfer ---

struct StateRequest {
  ConsensusId last_decided = 0;
};

struct LogEntry {
  ConsensusId cid = 0;
  Bytes value;  // encoded Batch
};

struct StateReply {
  ConsensusId snapshot_cid = 0;  // decisions up to and including this one
  Bytes snapshot;                // application + core state at snapshot_cid
  std::vector<LogEntry> log;     // decisions after the snapshot
  Epoch epoch = 0;               // sender's current regency
};
/// Digest used to find f+1 matching state replies.
crypto::Hash256 state_reply_digest(const StateReply& s);

/// One fragment of an encoded StateReply. Replies larger than the sender's
/// ReplicaParams::state_chunk_bytes stream as a sequence of chunks so a bulk
/// checkpoint cannot monopolize a transport link; the receiver acks each
/// fragment and the sender keeps at most state_chunk_window unacked chunks
/// in flight per peer. Reassembled bytes decode as a regular StateReply, so
/// chunking changes delivery, never the f+1 vouching logic.
struct StateChunk {
  std::uint64_t transfer_id = 0;  // sender-local, fresh per reply stream
  std::uint32_t index = 0;        // 0-based fragment position
  std::uint32_t total = 0;        // fragment count of the whole reply
  Bytes data;
};

struct StateChunkAck {
  std::uint64_t transfer_id = 0;
  std::uint32_t index = 0;
};

// --- decided-value recovery ---

struct ValueRequest {
  ConsensusId cid = 0;
  ValueHash hash{};
};

struct ValueReply {
  ConsensusId cid = 0;
  Bytes value;
};

// --- receiver registration and pushes (custom replier, §5.1) ---

struct RegisterReceiver {};  // body-less: the sender id is the registration

struct Push {
  Bytes payload;  // opaque application payload (e.g. an encoded SignedBlock)
};

// --- codec registry ---
//
// One specialization per wire message. `kKind` is the tag; write_body /
// read_body handle everything after the kind byte.

#define BFT_SMR_DECLARE_CODEC(Type, Kind)          \
  template <>                                      \
  struct Codec<Type> {                             \
    static constexpr MsgKind kKind = Kind;         \
    static void write_body(Writer& w, const Type& v); \
    static Type read_body(Reader& r);              \
  }

BFT_SMR_DECLARE_CODEC(Request, MsgKind::request);
BFT_SMR_DECLARE_CODEC(Forward, MsgKind::forward);
BFT_SMR_DECLARE_CODEC(Propose, MsgKind::propose);
BFT_SMR_DECLARE_CODEC(WriteMsg, MsgKind::write);
BFT_SMR_DECLARE_CODEC(AcceptMsg, MsgKind::accept);
BFT_SMR_DECLARE_CODEC(Stop, MsgKind::stop);
BFT_SMR_DECLARE_CODEC(StopData, MsgKind::stopdata);
BFT_SMR_DECLARE_CODEC(Sync, MsgKind::sync);
BFT_SMR_DECLARE_CODEC(Reply, MsgKind::reply);
BFT_SMR_DECLARE_CODEC(StateRequest, MsgKind::state_request);
BFT_SMR_DECLARE_CODEC(StateReply, MsgKind::state_reply);
BFT_SMR_DECLARE_CODEC(ValueRequest, MsgKind::value_request);
BFT_SMR_DECLARE_CODEC(ValueReply, MsgKind::value_reply);
BFT_SMR_DECLARE_CODEC(RegisterReceiver, MsgKind::register_receiver);
BFT_SMR_DECLARE_CODEC(Push, MsgKind::push);
BFT_SMR_DECLARE_CODEC(StateChunk, MsgKind::state_chunk);
BFT_SMR_DECLARE_CODEC(StateChunkAck, MsgKind::state_chunk_ack);

#undef BFT_SMR_DECLARE_CODEC

// --- named convenience wrappers (all framing goes through the codec) ---

inline Bytes encode_request(const Request& r) { return encode(r); }
inline Request decode_request(ByteView data) { return decode<Request>(data); }
inline Bytes encode_forward(const Forward& f) { return encode(f); }
inline Forward decode_forward(ByteView data) { return decode<Forward>(data); }
inline Bytes encode_reply(const Reply& r) { return encode(r); }
inline Reply decode_reply(ByteView data) { return decode<Reply>(data); }
inline Bytes encode_propose(const Propose& p) { return encode(p); }
inline Propose decode_propose(ByteView data) { return decode<Propose>(data); }
inline Bytes encode_write(const WriteMsg& w) { return encode(w); }
inline WriteMsg decode_write(ByteView data) { return decode<WriteMsg>(data); }
inline Bytes encode_accept(const AcceptMsg& a) { return encode(a); }
inline AcceptMsg decode_accept(ByteView data) { return decode<AcceptMsg>(data); }
inline Bytes encode_stop(const Stop& s) { return encode(s); }
inline Stop decode_stop(ByteView data) { return decode<Stop>(data); }
inline Bytes encode_stopdata(const StopData& s) { return encode(s); }
inline StopData decode_stopdata(ByteView data) { return decode<StopData>(data); }
inline Bytes encode_sync(const Sync& s) { return encode(s); }
inline Sync decode_sync(ByteView data) { return decode<Sync>(data); }
inline Bytes encode_state_request(const StateRequest& s) { return encode(s); }
inline StateRequest decode_state_request(ByteView data) {
  return decode<StateRequest>(data);
}
inline Bytes encode_state_reply(const StateReply& s) { return encode(s); }
inline StateReply decode_state_reply(ByteView data) {
  return decode<StateReply>(data);
}
inline Bytes encode_value_request(const ValueRequest& v) { return encode(v); }
inline ValueRequest decode_value_request(ByteView data) {
  return decode<ValueRequest>(data);
}
inline Bytes encode_value_reply(const ValueReply& v) { return encode(v); }
inline ValueReply decode_value_reply(ByteView data) {
  return decode<ValueReply>(data);
}
inline Bytes encode_register_receiver() { return encode(RegisterReceiver{}); }
inline Bytes encode_state_chunk(const StateChunk& c) { return encode(c); }
inline StateChunk decode_state_chunk(ByteView data) {
  return decode<StateChunk>(data);
}
inline Bytes encode_state_chunk_ack(const StateChunkAck& a) { return encode(a); }
inline StateChunkAck decode_state_chunk_ack(ByteView data) {
  return decode<StateChunkAck>(data);
}

/// Keeps the historical single-copy path: the payload view goes straight
/// into the frame without an intermediate Push value.
inline Bytes encode_push(ByteView payload) {
  Writer w(payload.size() + 8);
  w.u8(static_cast<std::uint8_t>(Codec<Push>::kKind));
  w.bytes(payload);
  return std::move(w).take();
}
inline Bytes decode_push(ByteView data) {
  return decode<Push>(data).payload;
}

}  // namespace bft::smr

// SMR client proxy: assigns request sequence numbers, broadcasts to the
// replica group, resends on timeout and gathers reply quorums.
//
// Two usage modes mirror BFT-SMaRt:
//   * invoke(payload, callback) — tracked invocation; the callback fires once
//     enough matching replies arrive (f+1-equivalent weight normally; a full
//     write-quorum weight when the cluster runs WHEAT tentative execution,
//     per §4);
//   * invoke_async(payload) — fire-and-forget, used by ordering frontends
//     whose results come back through the custom replier's block pushes.
#pragma once

#include <functional>
#include <map>

#include "runtime/actor.hpp"
#include "smr/config.hpp"
#include "smr/wire.hpp"

namespace bft::smr {

class Client : public runtime::Actor {
 public:
  struct Params {
    runtime::Duration resend_timeout = runtime::msec(2000);
    /// Cluster executes tentatively (WHEAT): wait for quorum-weight replies.
    bool tentative = false;
  };

  using ReplyCallback = std::function<void(std::uint64_t seq, Bytes reply)>;

  explicit Client(ClusterConfig config);
  Client(ClusterConfig config, Params params);

  void on_start(runtime::Env& env) override;
  void on_message(runtime::ProcessId from, ByteView payload) override;
  void on_timer(std::uint64_t timer_id) override;

  /// Tracked invocation. Call from the actor's execution context only.
  std::uint64_t invoke(Bytes payload, ReplyCallback callback,
                       RequestKind kind = RequestKind::application);

  /// Fire-and-forget invocation (no reply tracking, no resend).
  std::uint64_t invoke_async(Bytes payload,
                             RequestKind kind = RequestKind::application);

  /// Replaces the target group (after a reconfiguration).
  void set_config(ClusterConfig config) { config_ = std::move(config); }
  const ClusterConfig& config() const { return config_; }

  std::uint64_t completed_count() const { return completed_; }
  std::size_t outstanding_count() const { return outstanding_.size(); }

 private:
  struct Outstanding {
    Bytes encoded_request;
    ReplyCallback callback;
    // reply-digest hex -> replica processes that sent it (+ one payload copy)
    std::map<std::string, std::pair<std::set<runtime::ProcessId>, Bytes>> replies;
  };

  consensus::Weight reply_threshold() const;
  void send_to_all(const Bytes& encoded);

  ClusterConfig config_;
  Params params_;
  std::uint64_t next_seq_ = 1;
  std::map<std::uint64_t, Outstanding> outstanding_;
  std::uint64_t resend_timer_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace bft::smr

#include "smr/replica.hpp"

#include "storage/store.hpp"

#include <algorithm>
#include <mutex>

#include "common/log.hpp"

namespace bft::smr {

using consensus::Epoch;
using consensus::ReplicaId;
using runtime::ProcessId;

crypto::PrivateKey process_signing_key(ProcessId id) {
  return crypto::process_private_key(id);
}

const crypto::PublicKey& process_public_key(ProcessId id) {
  return crypto::process_public_key(id);
}

Bytes encode_reconfig(ReconfigOp op, ProcessId node) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(op));
  w.u32(node);
  return std::move(w).take();
}

std::pair<ReconfigOp, ProcessId> decode_reconfig(ByteView payload) {
  Reader r(payload);
  const std::uint8_t op = r.u8();
  if (op != 1 && op != 2) throw DecodeError("bad reconfig op");
  const ProcessId node = r.u32();
  r.expect_done();
  return {static_cast<ReconfigOp>(op), node};
}

Replica::Replica(ProcessId self, ClusterConfig config, ReplicaParams params,
                 StateMachine* app, Replier* replier)
    : self_(self),
      config_(std::move(config)),
      params_(params),
      app_(app),
      replier_(replier),
      authenticator_(crypto::make_process_authenticator(self)),
      trace_(params.trace) {
  if (app_ == nullptr) throw std::invalid_argument("Replica: null state machine");
  if (params_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *params_.metrics;
    m_.requests_received =
        &reg.counter("smr.requests_received", "requests admitted to the pool");
    m_.batches_proposed =
        &reg.counter("smr.batches_proposed", "PROPOSE batches sent as leader");
    m_.batches_decided =
        &reg.counter("smr.batches_decided", "consensus decisions observed");
    m_.requests_executed = &reg.counter(
        "smr.requests_executed", "requests run through the state machine");
    m_.pushes_sent = &reg.counter(
        "smr.pushes_sent", "custom-replier pushes (one per block per receiver)");
    m_.regency_changes =
        &reg.counter("smr.regency_changes", "synchronization-phase completions");
    m_.state_transfers =
        &reg.counter("smr.state_transfers", "state transfers started");
    m_.state_chunks_sent = &reg.counter(
        "smr.state_chunks_sent", "StateReply fragments streamed to peers");
    m_.state_chunks_received = &reg.counter(
        "smr.state_chunks_received", "StateReply fragments reassembled");
    m_.pending_requests =
        &reg.gauge("smr.pending_requests", "request-pool depth");
    m_.batch_size =
        &reg.histogram("smr.batch_size", "requests", "requests per proposal");
    m_.propose_to_write = &reg.histogram("smr.propose_to_write_quorum_ns", "ns",
                                         "PROPOSE seen to WRITE quorum");
    m_.write_to_decide = &reg.histogram("smr.write_quorum_to_decide_ns", "ns",
                                        "WRITE quorum to decision");
    m_.propose_to_decide = &reg.histogram("smr.propose_to_decide_ns", "ns",
                                          "PROPOSE seen to decision");
    instance_metrics_.write_votes =
        &reg.counter("consensus.write_votes", "WRITE votes registered");
    instance_metrics_.accept_votes =
        &reg.counter("consensus.accept_votes", "ACCEPT votes registered");
    instance_metrics_.duplicate_votes = &reg.counter(
        "consensus.duplicate_votes", "re-votes dropped (first-vote-only rule)");
  }
}

bool Replica::is_leader() const {
  return is_active_member() && config_.leader(regency_) == self_;
}

void Replica::on_start(runtime::Env& env) {
  Actor::on_start(env);
  checkpoint_snapshot_ = make_core_snapshot();
  if (params_.storage != nullptr) recover_from_storage();
  if (!is_active_member()) {
    // Joining node: poll the cluster for state until a reconfiguration
    // admits us (§5.2).
    begin_state_transfer();
  }
}

void Replica::on_recover() {
  // The crash wiped every pending timer and worker completion. Reset the
  // bookkeeping that assumed they were armed, then restart the liveness
  // machinery. Decisions, instances and the regency survive in memory — a
  // warm restart behaves like the tail end of a long partition, and catch-up
  // uses the normal stall-detector / state-transfer path. Proposals we made
  // before the crash keep their `proposed_by_me` marks: re-proposing a slot
  // already sent to peers would be equivocation, so lost proposals are left
  // for the regency-change machinery to resolve.
  request_timer_ = 0;
  forwarded_phase_ = false;
  stall_timer_ = 0;
  stall_anchor_cid_ = 0;
  transfer_timer_ = 0;
  sync_timer_ = 0;
  app_timers_.clear();
  for (auto& [key, entry] : pending_) {
    (void)key;
    entry.inflight = false;  // batches in flight at the crash may be lost
  }
  if (transferring_) {
    transferring_ = false;
    begin_state_transfer();  // the reply collection died with the crash
  } else if (!is_active_member()) {
    begin_state_transfer();  // learner resumes polling for admission
  }
  if (sync_in_progress_) {
    sync_timer_ = env().set_timer(params_.sync_deadline);
  }
  arm_request_timer();
  maybe_propose();
  app_->on_recover();
}

runtime::Verified Replica::prologue(ProcessId from, Payload payload) const {
  runtime::Verified v;
  v.from = from;
  v.payload = std::move(payload);
  const CostModel& costs = params_.costs;
  const ByteView view = v.payload.view();
  try {
    switch (peek_kind(view)) {
      case MsgKind::request:
        v.prologue_cost =
            std::min(costs.request_prologue, costs.per_request) +
            static_cast<runtime::Duration>(view.size()) * costs.per_value_byte;
        break;
      case MsgKind::forward:
        v.prologue_cost = std::min(costs.request_prologue, costs.per_request);
        if (params_.sign_writes) {
          const Forward fwd = decode_forward(view);
          v.auth = authenticator_->verify_from(from,
                                               forward_digest(fwd.request),
                                               fwd.signature)
                       ? runtime::Verified::Auth::accepted
                       : runtime::Verified::Auth::rejected;
        }
        break;
      case MsgKind::propose:
        v.prologue_cost =
            std::min(costs.consensus_prologue, costs.per_consensus_msg) +
            static_cast<runtime::Duration>(view.size()) * costs.per_value_byte;
        break;
      case MsgKind::write: {
        v.prologue_cost =
            std::min(costs.consensus_prologue, costs.per_consensus_msg);
        if (params_.sign_writes) {
          const WriteMsg msg = decode_write(view);
          v.auth = authenticator_->verify_from(
                       from,
                       consensus::write_attestation_digest(msg.cid, msg.epoch,
                                                           msg.hash),
                       msg.signature)
                       ? runtime::Verified::Auth::accepted
                       : runtime::Verified::Auth::rejected;
        }
        break;
      }
      case MsgKind::accept:
        v.prologue_cost =
            std::min(costs.consensus_prologue, costs.per_consensus_msg);
        break;
      default:
        break;  // uncharged kinds have no offloadable share
    }
  } catch (const DecodeError&) {
    // Malformed message: let consume() take the full (serial) path so the
    // diagnostic and the cost accounting match the single-phase behavior.
    v.auth = runtime::Verified::Auth::unchecked;
    v.prologue_cost = 0;
  }
  return v;
}

void Replica::consume(runtime::Verified&& verified) {
  dispatch(verified.from, verified.payload.view(), verified.auth,
           verified.prologue_charged);
}

void Replica::on_message(ProcessId from, ByteView payload) {
  dispatch(from, payload, runtime::Verified::Auth::unchecked, 0);
}

void Replica::dispatch(ProcessId from, ByteView payload,
                       runtime::Verified::Auth auth,
                       runtime::Duration prologue_charged) {
  // The runtime may have charged the prologue share of this handler to the
  // staged workers already; charge the remainder here so serial (charged ==
  // 0, one full-cost job) and staged totals agree.
  const auto charge_rest = [&](runtime::Duration total) {
    charge(total > prologue_charged ? total - prologue_charged
                                    : runtime::Duration{0});
  };
  try {
    switch (peek_kind(payload)) {
      case MsgKind::request:
        charge_rest(params_.costs.per_request +
                    static_cast<runtime::Duration>(payload.size()) *
                        params_.costs.per_value_byte);
        handle_request(from, decode_request(payload), false);
        break;
      case MsgKind::forward:
        charge_rest(params_.costs.per_request);
        handle_forward(from, decode_forward(payload), auth);
        break;
      case MsgKind::propose:
        charge_rest(params_.costs.per_consensus_msg +
                    static_cast<runtime::Duration>(payload.size()) *
                        params_.costs.per_value_byte);
        handle_propose(from, decode_propose(payload));
        break;
      case MsgKind::write:
        charge_rest(params_.costs.per_consensus_msg);
        handle_write(from, decode_write(payload), auth);
        break;
      case MsgKind::accept:
        charge_rest(params_.costs.per_consensus_msg);
        handle_accept(from, decode_accept(payload));
        break;
      case MsgKind::stop:
        handle_stop(from, decode_stop(payload));
        break;
      case MsgKind::stopdata:
        handle_stopdata(from, decode_stopdata(payload));
        break;
      case MsgKind::sync:
        handle_sync(from, decode_sync(payload));
        break;
      case MsgKind::state_request:
        handle_state_request(from, decode_state_request(payload));
        break;
      case MsgKind::state_reply:
        handle_state_reply(from, decode_state_reply(payload), payload);
        break;
      case MsgKind::state_chunk:
        charge(static_cast<runtime::Duration>(payload.size()) *
               params_.costs.per_value_byte);
        handle_state_chunk(from, decode_state_chunk(payload));
        break;
      case MsgKind::state_chunk_ack:
        handle_state_chunk_ack(from, decode_state_chunk_ack(payload));
        break;
      case MsgKind::value_request:
        handle_value_request(from, decode_value_request(payload));
        break;
      case MsgKind::value_reply:
        handle_value_reply(from, decode_value_reply(payload));
        break;
      case MsgKind::register_receiver:
        receivers_.insert(from);
        break;
      default:
        break;  // not addressed to the replica role
    }
  } catch (const DecodeError&) {
    BFT_LOG(warn) << "replica " << self_ << ": malformed message from " << from;
  }
}

std::uint64_t Replica::set_app_timer(runtime::Duration delay) {
  const std::uint64_t id = env().set_timer(delay);
  app_timers_.insert(id);
  return id;
}

void Replica::on_timer(std::uint64_t timer_id) {
  if (app_timers_.erase(timer_id) > 0) {
    app_->on_app_timer(timer_id);
    return;
  }
  if (timer_id == request_timer_) {
    request_timer_ = 0;
    if (pending_.empty() || !is_active_member()) return;
    if (!forwarded_phase_) {
      // First expiry: relay pending requests to the suspected-slow leader.
      const ProcessId leader = config_.leader(regency_);
      if (leader != self_) {
        std::uint32_t sent = 0;
        for (const auto& [key, entry] : pending_) {
          (void)key;
          Forward fwd{entry.request, {}};
          if (params_.sign_writes) {
            fwd.signature =
                authenticator_->sign_for(leader, forward_digest(fwd.request));
          }
          env().send(leader, encode_forward(fwd));
          if (++sent >= params_.batch_max) break;
        }
      }
      forwarded_phase_ = true;
      request_timer_ = env().set_timer(params_.stop_timeout
                                       << std::min<std::uint32_t>(timeout_backoff_, 6));
    } else {
      // Second expiry: the leader is faulty; demand a regency change.
      forwarded_phase_ = false;
      const Epoch next = std::max(
          regency_, sent_stop_.empty() ? regency_ : *sent_stop_.rbegin()) + 1;
      start_regency_change(next);
    }
    return;
  }
  if (timer_id == sync_timer_) {
    sync_timer_ = 0;
    if (confirm_cursor_ < sync_cid_ && is_active_member()) {
      ++timeout_backoff_;
      const Epoch next = std::max(
          regency_, sent_stop_.empty() ? regency_ : *sent_stop_.rbegin()) + 1;
      start_regency_change(next);
    }
    return;
  }
  if (timer_id == stall_timer_) {
    stall_timer_ = 0;
    if (!transferring_ && is_active_member()) {
      if (confirm_cursor_ == stall_anchor_cid_) {
        // Others moved on while our next slot stayed undecided: fetch state.
        begin_state_transfer();
      } else if (!instances_.empty() &&
                 instances_.rbegin()->first > confirm_cursor_) {
        // We progressed but still trail slots with known traffic; keep
        // watching (the traffic may already have dried up).
        stall_anchor_cid_ = confirm_cursor_;
        stall_timer_ = env().set_timer(params_.stall_timeout);
      }
    }
    return;
  }
  if (timer_id == transfer_timer_) {
    transfer_timer_ = 0;
    if (transferring_) {
      transferring_ = false;
      begin_state_transfer();  // resend requests
    } else if (!is_active_member()) {
      begin_state_transfer();  // learner keeps polling
    }
    return;
  }
}

// --------------------------------------------------------------------------
// Requests and batching
// --------------------------------------------------------------------------

void Replica::handle_forward(ProcessId from, const Forward& fwd,
                             runtime::Verified::Auth auth) {
  // Forwards inject (client, seq) pairs straight into the batch pool, so
  // only accept them from cluster members, authenticated like WRITEs. A
  // forged seq would poison last_executed_seq_ and dedup-drop every later
  // genuine request from that client.
  if (!config_.contains(from)) return;
  if (params_.sign_writes && auth != runtime::Verified::Auth::accepted) {
    if (auth == runtime::Verified::Auth::rejected ||
        !authenticator_->verify_from(from, forward_digest(fwd.request),
                                     fwd.signature)) {
      BFT_LOG(warn) << "replica " << self_ << ": bad FORWARD signature from "
                    << from;
      return;
    }
  }
  handle_request(from, fwd.request, true);
}

void Replica::handle_request(ProcessId from, const Request& request,
                             bool forwarded) {
  (void)from;
  if (!is_active_member()) return;
  const auto it = executed_seqs_.find(request.client);
  if (it != executed_seqs_.end() && it->second.contains(request.seq)) {
    // Already executed: resend the cached reply so a retrying client settles.
    if (!forwarded && replier_ == nullptr) {
      const auto cache_it = reply_cache_.find(request.client);
      if (cache_it != reply_cache_.end()) {
        const auto reply_it = cache_it->second.find(request.seq);
        if (reply_it != cache_it->second.end()) {
          env().send(request.client, encode_reply(reply_it->second));
        }
      }
    }
    return;
  }
  const RequestKey key{request.client, request.seq};
  if (pending_.count(key) > 0) return;
  pending_.emplace(key, PendingRequest{request, false});
  pending_order_.push_back(key);
  if (m_.requests_received != nullptr) m_.requests_received->add();
  update_pending_gauge();
  arm_request_timer();
  maybe_propose();
}

void Replica::maybe_propose() {
  if (transferring_ || sync_in_progress_ || !is_leader()) return;
  // Drop already-consumed keys from the arrival queue's front.
  while (!pending_order_.empty() && pending_.count(pending_order_.front()) == 0) {
    pending_order_.pop_front();
  }
  if (order_frontier_ < confirm_cursor_) order_frontier_ = confirm_cursor_;
  const ConsensusId next = order_frontier_ + 1;
  InstanceDriver& d = driver(next);
  if (d.proposed_by_me || d.instance.decided()) return;

  Batch batch;
  for (const RequestKey& key : pending_order_) {
    const auto it = pending_.find(key);
    if (it == pending_.end() || it->second.inflight) continue;
    batch.requests.push_back(it->second.request);
    if (batch.requests.size() >= params_.batch_max) break;
  }
  if (batch.requests.empty()) return;
  for (const Request& r : batch.requests) {
    pending_.at({r.client, r.seq}).inflight = true;
  }
  d.proposed_by_me = true;
  if (m_.batches_proposed != nullptr) m_.batches_proposed->add();
  if (m_.batch_size != nullptr) {
    m_.batch_size->record(static_cast<std::int64_t>(batch.requests.size()));
  }

  Bytes value = batch.encode();
  charge(params_.costs.per_consensus_msg +
         static_cast<runtime::Duration>(value.size()) *
             params_.costs.per_value_byte);
  broadcast(encode_propose(Propose{next, regency_, value}));
  accept_proposal(next, regency_, self_, std::move(value));
}

// --------------------------------------------------------------------------
// Consensus: PROPOSE / WRITE / ACCEPT
// --------------------------------------------------------------------------

Replica::InstanceDriver& Replica::driver(ConsensusId cid) {
  auto it = instances_.find(cid);
  if (it == instances_.end()) {
    it = instances_
             .emplace(std::piecewise_construct, std::forward_as_tuple(cid),
                      std::forward_as_tuple(cid, &config_.quorums()))
             .first;
    if (params_.metrics != nullptr) {
      it->second.instance.set_metrics(&instance_metrics_);
    }
  }
  return it->second;
}

bool Replica::admit_consensus_cid(ConsensusId cid) {
  if (cid <= confirm_cursor_) return false;  // stale slot
  if (cid > confirm_cursor_ + params_.state_transfer_gap) {
    begin_state_transfer();
    // Keep recording votes within a bounded window so decisions reached
    // while the transfer is in flight are not lost; beyond it, drop
    // (Byzantine memory-exhaustion guard).
    if (cid > confirm_cursor_ + params_.state_transfer_gap * 8) return false;
  }
  note_future_traffic(cid);
  return true;
}

void Replica::handle_propose(ProcessId from, const Propose& msg) {
  if (!is_active_member() || !config_.contains(from)) return;
  if (!admit_consensus_cid(msg.cid)) return;
  if (msg.epoch != regency_) return;  // old or future regency
  accept_proposal(msg.cid, msg.epoch, from, msg.value);
}

void Replica::accept_proposal(ConsensusId cid, Epoch epoch, ProcessId from,
                              Bytes value) {
  if (config_.leader(epoch) != from) return;
  try {
    (void)Batch::decode(value);  // structural validation of the proposal
  } catch (const DecodeError&) {
    BFT_LOG(warn) << "replica " << self_ << ": malformed proposal from " << from;
    return;
  }
  InstanceDriver& d = driver(cid);
  if (d.proposed_at < 0) {
    d.proposed_at = env().now();
    trace_batch(obs::TraceStage::kPropose, cid, value);
  }
  const ValueHash hash = d.instance.add_value(std::move(value));
  const ReplicaId from_idx = config_.index_of(from);
  const ReplicaId leader_idx = config_.index_of(config_.leader(epoch));
  if (d.instance.on_propose(epoch, from_idx, leader_idx, hash) &&
      epoch == regency_ && d.sent_write.count(epoch) == 0) {
    send_write_for(cid, epoch, hash);
  }
}

void Replica::send_write_for(ConsensusId cid, Epoch epoch, const ValueHash& hash) {
  InstanceDriver& d = driver(cid);
  d.sent_write.insert(epoch);
  Bytes signature;
  if (params_.sign_writes) {
    signature = authenticator_->sign_for(
        self_, consensus::write_attestation_digest(cid, epoch, hash));
  }
  broadcast(encode_write(WriteMsg{cid, epoch, hash, signature}));
  if (d.instance.on_write(epoch, config_.index_of(self_), hash,
                          std::move(signature))) {
    on_write_quorum(cid, epoch);
  }
}

void Replica::handle_write(ProcessId from, const WriteMsg& msg,
                           runtime::Verified::Auth auth) {
  if (!is_active_member() || !config_.contains(from)) return;
  if (!admit_consensus_cid(msg.cid)) return;
  if (params_.sign_writes && auth != runtime::Verified::Auth::accepted) {
    if (auth == runtime::Verified::Auth::rejected ||
        !authenticator_->verify_from(
            from,
            consensus::write_attestation_digest(msg.cid, msg.epoch, msg.hash),
            msg.signature)) {
      BFT_LOG(warn) << "replica " << self_ << ": bad WRITE signature from " << from;
      return;
    }
  }
  InstanceDriver& d = driver(msg.cid);
  if (d.instance.on_write(msg.epoch, config_.index_of(from), msg.hash,
                          msg.signature)) {
    on_write_quorum(msg.cid, msg.epoch);
  }
}

void Replica::on_write_quorum(ConsensusId cid, Epoch epoch) {
  InstanceDriver& d = driver(cid);
  if (epoch != regency_) return;  // certificate recorded; no action in old epochs

  if (params_.tentative_execution && order_frontier_ < cid) {
    order_frontier_ = cid;  // WHEAT: pipeline the next proposal immediately
  }
  if (sync_in_progress_ && cid == sync_cid_) sync_in_progress_ = false;

  const auto hash = d.instance.write_quorum_hash(epoch);
  if (d.write_quorum_at < 0) {
    d.write_quorum_at = env().now();
    if (m_.propose_to_write != nullptr && d.proposed_at >= 0) {
      m_.propose_to_write->record(d.write_quorum_at - d.proposed_at);
    }
    if (trace_ != nullptr) {
      const Bytes* value = d.instance.value_for(*hash);
      if (value != nullptr) {
        trace_batch(obs::TraceStage::kWriteQuorum, cid, *value);
      }
    }
  }
  if (d.sent_accept.count(epoch) == 0) {
    d.sent_accept.insert(epoch);
    broadcast(encode_accept(AcceptMsg{cid, epoch, *hash}));
    if (d.instance.on_accept(epoch, config_.index_of(self_), *hash)) {
      on_decided(cid);
    }
  }
  if (params_.tentative_execution && !d.instance.decided()) {
    const Bytes* value = d.instance.value_for(*hash);
    if (value != nullptr) {
      pending_tentative_[cid] = {*hash, *value};
      try_apply();
    } else {
      request_value(cid, *hash);
    }
  }
  maybe_propose();
}

void Replica::handle_accept(ProcessId from, const AcceptMsg& msg) {
  if (!is_active_member() || !config_.contains(from)) return;
  if (!admit_consensus_cid(msg.cid)) return;
  InstanceDriver& d = driver(msg.cid);
  if (d.instance.on_accept(msg.epoch, config_.index_of(from), msg.hash)) {
    on_decided(msg.cid);
  }
}

void Replica::on_decided(ConsensusId cid) {
  InstanceDriver& d = driver(cid);
  ++decided_count_;
  timeout_backoff_ = 0;
  if (m_.batches_decided != nullptr) m_.batches_decided->add();
  const runtime::TimePoint decided_at = env().now();
  if (m_.propose_to_decide != nullptr && d.proposed_at >= 0) {
    m_.propose_to_decide->record(decided_at - d.proposed_at);
  }
  if (m_.write_to_decide != nullptr && d.write_quorum_at >= 0) {
    m_.write_to_decide->record(decided_at - d.write_quorum_at);
  }
  const ValueHash& hash = d.instance.decided_hash();
  const Bytes* value = d.instance.value_for(hash);
  if (value != nullptr) {
    trace_batch(obs::TraceStage::kAccept, cid, *value);
    decided_values_[cid] = *value;
  } else {
    decided_awaiting_value_[cid] = hash;
    request_value(cid, hash);
  }
  if (cid == sync_cid_ && sync_timer_ != 0) {
    env().cancel_timer(sync_timer_);
    sync_timer_ = 0;
  }
  if (!params_.tentative_execution && order_frontier_ < cid) {
    order_frontier_ = cid;
  }
  // Propose the next batch before applying this decision: the decided
  // requests are still flagged inflight (so they cannot be re-proposed) and
  // execution is a local upcall, so the next consensus round's network
  // round-trip overlaps with execute_batch instead of waiting behind it —
  // BFT-SMaRt's split between the message-processing and delivery threads.
  maybe_propose();
  try_apply();
}

void Replica::broadcast(Payload payload) {
  // One encode, one allocation: every peer receives a refcounted handle to
  // the same buffer (the Bytes argument converted to Payload exactly once).
  for (ProcessId member : config_.members()) {
    if (member != self_) env().send(member, payload);
  }
}

// --------------------------------------------------------------------------
// Missing-value recovery
// --------------------------------------------------------------------------

void Replica::request_value(ConsensusId cid, const ValueHash& hash) {
  InstanceDriver& d = driver(cid);
  if (d.value_requested) return;
  d.value_requested = true;
  broadcast(encode_value_request(ValueRequest{cid, hash}));
}

void Replica::handle_value_request(ProcessId from, const ValueRequest& msg) {
  const auto inst_it = instances_.find(msg.cid);
  if (inst_it != instances_.end()) {
    const Bytes* value = inst_it->second.instance.value_for(msg.hash);
    if (value != nullptr) {
      env().send(from, encode_value_reply(ValueReply{msg.cid, *value}));
      return;
    }
  }
  const auto dec_it = decided_values_.find(msg.cid);
  if (dec_it != decided_values_.end() &&
      consensus::value_hash(dec_it->second) == msg.hash) {
    env().send(from, encode_value_reply(ValueReply{msg.cid, dec_it->second}));
  }
}

void Replica::handle_value_reply(ProcessId from, const ValueReply& msg) {
  if (!config_.contains(from)) return;
  InstanceDriver& d = driver(msg.cid);
  const ValueHash hash = d.instance.add_value(msg.value);

  const auto awaiting = decided_awaiting_value_.find(msg.cid);
  if (awaiting != decided_awaiting_value_.end() && awaiting->second == hash) {
    decided_values_[msg.cid] = msg.value;
    decided_awaiting_value_.erase(awaiting);
  }
  if (params_.tentative_execution) {
    const auto wq = d.instance.write_quorum_hash(regency_);
    if (wq.has_value() && *wq == hash && !d.instance.decided()) {
      pending_tentative_[msg.cid] = {hash, msg.value};
    }
  }
  try_apply();
  maybe_send_sync();  // a sync proposal may have been waiting on this value
}

// --------------------------------------------------------------------------
// Execution pipeline
// --------------------------------------------------------------------------

void Replica::try_apply() {
  bool progressed = false;

  // Confirmed decisions, in consensus order.
  for (;;) {
    const ConsensusId cid = confirm_cursor_ + 1;
    const auto it = decided_values_.find(cid);
    if (it == decided_values_.end()) break;
    const ValueHash decided_hash = consensus::value_hash(it->second);
    // Write-ahead: the decision is confirmed at this point; it must be on
    // disk before any of its effects (execution, replies, block pushes).
    persist_decision(cid, it->second);

    if (tentative_cursor_ >= cid) {
      const auto applied = tentative_hashes_.find(cid);
      if (applied != tentative_hashes_.end() && applied->second == decided_hash) {
        // Tentative execution confirmed in place.
        tentative_hashes_.erase(applied);
        confirm_cursor_ = cid;
        try {
          const Batch batch = Batch::decode(it->second);
          for (const Request& r : batch.requests) pending_.erase({r.client, r.seq});
        } catch (const DecodeError&) {
        }
        if (tentative_hashes_.empty()) rollback_snapshot_.reset();
        pending_tentative_.erase(cid);
        progressed = true;
        maybe_checkpoint();
        continue;
      }
      // The decision contradicts what we executed tentatively: roll back to
      // the confirmed prefix and fall through to a clean re-execution.
      rollback_and_replay();
    }

    execute_batch(cid, it->second, false);
    confirm_cursor_ = cid;
    tentative_cursor_ = std::max(tentative_cursor_, cid);
    pending_tentative_.erase(cid);
    progressed = true;
    maybe_checkpoint();
  }

  // Tentative (WHEAT) executions beyond the confirmed prefix.
  if (params_.tentative_execution) {
    for (;;) {
      const ConsensusId cid = tentative_cursor_ + 1;
      const auto it = pending_tentative_.find(cid);
      if (it == pending_tentative_.end()) break;
      if (!rollback_snapshot_.has_value()) {
        rollback_snapshot_ = make_core_snapshot();
      }
      execute_batch(cid, it->second.second, true);
      tentative_hashes_[cid] = it->second.first;
      tentative_cursor_ = cid;
      progressed = true;
    }
  }

  if (progressed) {
    update_pending_gauge();
    disarm_request_timer();
    arm_request_timer();
    if (sync_in_progress_ && confirm_cursor_ + 1 > sync_cid_) {
      // Decisions caught up past the slot being synchronized: refresh our
      // STOPDATA so the new leader synchronizes the right slot.
      sync_cid_ = confirm_cursor_ + 1;
      send_stopdata();
    }
  }
}

void Replica::execute_batch(ConsensusId cid, ByteView value, bool tentative) {
  Batch batch;
  try {
    batch = Batch::decode(value);
  } catch (const DecodeError&) {
    BFT_LOG(error) << "replica " << self_ << ": decided value is malformed";
    return;
  }
  ExecutionContext ctx;
  ctx.cid = cid;
  ctx.batch_size = batch.requests.size();
  ctx.tentative = tentative;
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    const Request& request = batch.requests[i];
    ctx.index_in_batch = i;
    auto& executed = executed_seqs_[request.client];
    if (executed.contains(request.seq)) {
      // Duplicate (ordered twice or replayed). Still consume the pending
      // entry: leaving it would re-propose the request forever, and the
      // stale wall starves younger requests out of every batch.
      if (!tentative) pending_.erase({request.client, request.seq});
      continue;
    }
    executed.insert(request.seq);

    Bytes reply;
    if (request.kind == RequestKind::reconfig) {
      apply_reconfig(request);
      reply = to_bytes("reconfigured");
    } else {
      reply = app_->execute(request, ctx);
    }
    ++executed_count_;
    if (m_.requests_executed != nullptr) m_.requests_executed->add();
    auto& cache = reply_cache_[request.client];
    cache[request.seq] = Reply{request.seq, cid, reply};
    while (cache.size() > kReplyCacheWindow) cache.erase(cache.begin());
    if (!replaying_) {
      if (replier_ != nullptr) {
        replier_->on_executed(*this, request, reply, ctx);
      } else {
        env().send(request.client, encode_reply(cache[request.seq]));
      }
    }
    if (!tentative) pending_.erase({request.client, request.seq});
  }
}

void Replica::apply_reconfig(const Request& request) {
  try {
    const auto [op, node] = decode_reconfig(request.payload);
    if (op == ReconfigOp::add && !config_.contains(node)) {
      config_ = config_.with_member_added(node);
    } else if (op == ReconfigOp::remove && config_.contains(node) &&
               config_.n() > 1) {
      config_ = config_.with_member_removed(node);
    }
    BFT_LOG(info) << "replica " << self_ << ": membership now n=" << config_.n();
  } catch (const DecodeError&) {
    BFT_LOG(warn) << "replica " << self_ << ": malformed reconfig request";
  } catch (const std::invalid_argument&) {
    BFT_LOG(warn) << "replica " << self_ << ": inapplicable reconfig request";
  }
}

void Replica::rollback_and_replay() {
  if (!rollback_snapshot_.has_value()) return;
  restore_core_snapshot(*rollback_snapshot_);
  rollback_snapshot_.reset();
  tentative_hashes_.clear();
  // Re-apply confirmed decisions past the snapshot point (the snapshot was
  // taken at some earlier confirm cursor).
  const ConsensusId target = confirm_cursor_;
  // restore_core_snapshot reset confirm_cursor_ to the snapshot's cursor.
  ConsensusId cursor = confirm_cursor_;
  replaying_ = true;
  while (cursor < target) {
    const auto it = decided_values_.find(cursor + 1);
    if (it == decided_values_.end()) break;
    execute_batch(cursor + 1, it->second, false);
    ++cursor;
  }
  replaying_ = false;
  confirm_cursor_ = cursor;
  tentative_cursor_ = cursor;
}

void Replica::maybe_checkpoint() {
  if (confirm_cursor_ == 0 || confirm_cursor_ % params_.checkpoint_period != 0) {
    return;
  }
  if (!tentative_hashes_.empty()) return;  // only checkpoint confirmed state
  snapshot_cid_ = confirm_cursor_;
  checkpoint_snapshot_ = make_core_snapshot();
  persist_checkpoint();
  decided_values_.erase(decided_values_.begin(),
                        decided_values_.upper_bound(snapshot_cid_));
  instances_.erase(instances_.begin(), instances_.upper_bound(snapshot_cid_));
}

void Replica::persist_decision(ConsensusId cid, const Bytes& value) {
  if (params_.storage == nullptr) return;
  const Status appended = params_.storage->append_decision(
      cid, ByteView(value.data(), value.size()));
  if (!appended.is_ok()) {
    // Durability is best-effort below the consensus safety argument (which
    // rests on f+1 correct replicas, not on any disk): log loudly and keep
    // serving; the next restart simply recovers less from disk.
    BFT_LOG(error) << "replica " << self_ << ": wal append failed at cid "
                   << cid << ": " << appended.error();
  }
}

void Replica::persist_checkpoint() {
  if (params_.storage == nullptr || snapshot_cid_ == 0) return;
  storage::Checkpoint cp;
  cp.cid = snapshot_cid_;
  cp.integrity = app_->integrity_digest();
  cp.snapshot = checkpoint_snapshot_;
  const Status written = params_.storage->write_checkpoint(cp);
  if (!written.is_ok()) {
    BFT_LOG(error) << "replica " << self_ << ": checkpoint persist failed at cid "
                   << snapshot_cid_ << ": " << written.error();
  }
}

void Replica::recover_from_storage() {
  storage::NodeStore& store = *params_.storage;
  // checkpoint_snapshot_ still holds the pristine pre-recovery snapshot; it
  // is the fail-closed fallback when every persisted checkpoint is refused.
  const Bytes pristine = checkpoint_snapshot_;
  bool restored = false;
  for (const storage::Checkpoint& cp : store.load_checkpoints()) {
    try {
      restore_core_snapshot(cp.snapshot);
    } catch (const std::exception& e) {
      BFT_LOG(error) << "replica " << self_ << ": persisted checkpoint at cid "
                     << cp.cid << " does not decode (" << e.what()
                     << "); trying older";
      restore_core_snapshot(pristine);
      continue;
    }
    if (app_->integrity_digest() != cp.integrity) {
      // CRC-valid bytes that decode into a different chain position than
      // they were taken from: adopting them would rejoin with a forked
      // history. Refuse and fall back (older slot, then state transfer).
      BFT_LOG(error) << "replica " << self_ << ": checkpoint at cid " << cp.cid
                     << " fails integrity verification — refusing it";
      restore_core_snapshot(pristine);
      continue;
    }
    snapshot_cid_ = cp.cid;
    checkpoint_snapshot_ = cp.snapshot;
    restored = true;
    break;
  }

  // Replay the WAL suffix contiguous with the adopted position. A gap ends
  // the usable prefix; anything beyond it is recovered via state transfer.
  // Replayed values stay in decided_values_ so this node can serve state
  // transfer to peers immediately after restarting.
  replaying_ = true;
  const std::uint64_t replayed =
      store.replay(confirm_cursor_, [&](std::uint64_t cid, ByteView value) {
        Bytes& slot = decided_values_[cid];
        slot.assign(value.begin(), value.end());
        execute_batch(cid, slot, false);
        confirm_cursor_ = cid;
        tentative_cursor_ = cid;
      });
  replaying_ = false;
  if (restored || replayed > 0) {
    order_frontier_ = std::max(order_frontier_, confirm_cursor_);
    BFT_LOG(info) << "replica " << self_ << ": restarted from disk at cid "
                  << confirm_cursor_ << " (checkpoint cid "
                  << (restored ? snapshot_cid_ : 0) << ", " << replayed
                  << " wal decisions replayed)";
    app_->on_state_installed();
  }
  // Recovery runs on the replica's event loop; the hosting process may be
  // waiting on this flag to read the final replay counters.
  store.mark_recovery_complete();
}

Bytes Replica::make_core_snapshot() const {
  Writer w;
  w.bytes(app_->snapshot());
  w.bytes(config_.encode());
  w.u64(confirm_cursor_);
  w.u32(static_cast<std::uint32_t>(executed_seqs_.size()));
  for (const auto& [client, window] : executed_seqs_) {
    w.u32(client);
    w.u64(window.low);
    w.u32(static_cast<std::uint32_t>(window.above.size()));
    for (const std::uint64_t seq : window.above) w.u64(seq);
  }
  std::size_t reply_entries = 0;
  for (const auto& [client, cache] : reply_cache_) {
    (void)client;
    reply_entries += cache.size();
  }
  w.u32(static_cast<std::uint32_t>(reply_entries));
  for (const auto& [client, cache] : reply_cache_) {
    for (const auto& [seq, reply] : cache) {
      (void)seq;
      w.u32(client);
      w.u64(reply.client_seq);
      w.u64(reply.cid);
      w.bytes(reply.payload);
    }
  }
  return std::move(w).take();
}

void Replica::restore_core_snapshot(ByteView snapshot) {
  Reader r(snapshot);
  const Bytes app_state = r.bytes();
  config_ = ClusterConfig::decode(r.bytes());
  confirm_cursor_ = r.u64();
  tentative_cursor_ = confirm_cursor_;
  executed_seqs_.clear();
  const std::uint32_t seqs = r.u32();
  for (std::uint32_t i = 0; i < seqs; ++i) {
    const std::uint32_t client = r.u32();
    ExecutedWindow& window = executed_seqs_[client];
    window.low = r.u64();
    const std::uint32_t above = r.u32();
    for (std::uint32_t j = 0; j < above; ++j) window.above.insert(r.u64());
  }
  reply_cache_.clear();
  const std::uint32_t replies = r.u32();
  for (std::uint32_t i = 0; i < replies; ++i) {
    const std::uint32_t client = r.u32();
    Reply reply;
    reply.client_seq = r.u64();
    reply.cid = r.u64();
    reply.payload = r.bytes();
    reply_cache_[client][reply.client_seq] = std::move(reply);
  }
  r.expect_done();
  app_->restore(app_state);
}

// --------------------------------------------------------------------------
// Synchronization phase (STOP / STOPDATA / SYNC)
// --------------------------------------------------------------------------

void Replica::start_regency_change(Epoch next) {
  if (next <= regency_ || sent_stop_.count(next) > 0) return;
  sent_stop_.insert(next);
  stop_votes_[next].insert(self_);
  broadcast(encode_stop(Stop{next, confirm_cursor_}));
  BFT_LOG(info) << "replica " << self_ << ": STOP for regency " << next;
  // Check whether our own vote completes the quorum (tiny clusters).
  handle_stop(self_, Stop{next, confirm_cursor_});
}

void Replica::handle_stop(ProcessId from, const Stop& msg) {
  if (!is_active_member()) return;
  if (from != self_ && !config_.contains(from)) return;
  // Catch-up hint: a peer that decided more than we did means we missed
  // decisions; arm the stall detector even if this STOP itself is stale.
  if (from != self_ && msg.last_decided > confirm_cursor_) {
    note_future_traffic(msg.last_decided);
  }
  if (msg.next_epoch <= regency_) return;
  auto& votes = stop_votes_[msg.next_epoch];
  votes.insert(from);

  std::set<ReplicaId> indices;
  for (ProcessId p : votes) {
    if (config_.contains(p)) indices.insert(config_.index_of(p));
  }
  const auto& q = config_.quorums();
  if (q.is_evidence(indices) && sent_stop_.count(msg.next_epoch) == 0) {
    // f+1-equivalent evidence: join the regency change.
    sent_stop_.insert(msg.next_epoch);
    votes.insert(self_);
    indices.insert(config_.index_of(self_));
    broadcast(encode_stop(Stop{msg.next_epoch, confirm_cursor_}));
  }
  if (q.is_quorum(indices)) {
    install_regency(msg.next_epoch);
  }
}

void Replica::install_regency(Epoch next) {
  if (m_.regency_changes != nullptr) m_.regency_changes->add();
  regency_ = next;
  sync_in_progress_ = true;
  sync_cid_ = confirm_cursor_ + 1;
  sync_stopdata_blobs_.clear();
  stop_votes_.erase(stop_votes_.begin(), stop_votes_.upper_bound(next));
  for (auto& [cid, d] : instances_) {
    if (!d.instance.decided() && cid > confirm_cursor_) d.proposed_by_me = false;
  }
  for (auto& [key, entry] : pending_) {
    (void)key;
    entry.inflight = false;
  }
  disarm_request_timer();
  forwarded_phase_ = false;
  if (sync_timer_ != 0) env().cancel_timer(sync_timer_);
  sync_timer_ = env().set_timer(params_.sync_deadline
                                << std::min<std::uint32_t>(timeout_backoff_, 6));
  BFT_LOG(info) << "replica " << self_ << ": installed regency " << next
                << " (leader " << config_.leader(next) << ")";
  send_stopdata();
}

void Replica::send_stopdata() {
  StopData sd;
  sd.next_epoch = regency_;
  sd.from = self_;
  sd.last_decided = confirm_cursor_;
  sd.cid = sync_cid_;
  const auto inst_it = instances_.find(sync_cid_);
  if (inst_it != instances_.end()) {
    // Highest-epoch write certificate we gathered for the slot in question.
    for (Epoch e = inst_it->second.instance.highest_epoch();; --e) {
      auto cert = inst_it->second.instance.write_certificate(e);
      if (cert.has_value()) {
        const Bytes* value = inst_it->second.instance.value_for(cert->hash);
        if (value != nullptr) sd.value = *value;
        sd.cert = std::move(cert);
        break;
      }
      if (e == 0) break;
    }
  }
  sd.signature =
      authenticator_->sign_for(config_.leader(regency_), stopdata_digest(sd));

  const ProcessId leader = config_.leader(regency_);
  const Bytes encoded = encode_stopdata(sd);
  if (leader == self_) {
    handle_stopdata(self_, sd);
  } else {
    env().send(leader, encoded);
  }
}

bool Replica::validate_stopdata(const StopData& sd, Epoch expected_epoch,
                                ConsensusId expected_cid) const {
  if (sd.next_epoch != expected_epoch || sd.cid != expected_cid) return false;
  if (!config_.contains(sd.from)) return false;
  StopData unsigned_copy = sd;
  unsigned_copy.signature.clear();
  if (!authenticator_->verify_from(sd.from, stopdata_digest(unsigned_copy),
                                   sd.signature)) {
    return false;
  }
  if (sd.cert.has_value()) {
    const auto& cert = *sd.cert;
    if (cert.cid != sd.cid) return false;
    std::set<ReplicaId> voters;
    for (const auto& vote : cert.votes) {
      if (vote.from >= config_.n() || voters.count(vote.from) > 0) return false;
      if (params_.sign_writes) {
        if (!authenticator_->verify_from(
                config_.member_at(vote.from),
                consensus::write_attestation_digest(cert.cid, cert.epoch,
                                                    cert.hash),
                vote.signature)) {
          return false;
        }
      }
      voters.insert(vote.from);
    }
    if (!config_.quorums().is_quorum(voters)) return false;
    if (!sd.value.empty() && consensus::value_hash(sd.value) != cert.hash) {
      return false;
    }
  }
  return true;
}

void Replica::handle_stopdata(ProcessId from, const StopData& msg) {
  if (!is_active_member() || config_.leader(regency_) != self_) return;
  if (!sync_in_progress_) return;
  // A sender behind or ahead of us reports a different slot; keep the blob
  // anyway (the SYNC assembly filters by slot) as long as it is authentic
  // for the current regency.
  if (!validate_stopdata(msg, regency_, msg.cid)) {
    if (msg.next_epoch == regency_) {
      BFT_LOG(warn) << "replica " << self_ << ": invalid STOPDATA from " << from;
    }
    return;
  }
  sync_stopdata_blobs_[msg.from] = encode_stopdata(msg);
  if (msg.last_decided > confirm_cursor_) {
    // We are the sync leader but lag behind this sender: catch up first so a
    // quorum of STOPDATAs can reference the same slot.
    note_future_traffic(msg.last_decided);
  }
  maybe_send_sync();
}

void Replica::maybe_send_sync() {
  if (!sync_in_progress_ || config_.leader(regency_) != self_) return;
  // Only blobs that talk about the slot we are synchronizing count.
  std::vector<std::pair<Bytes, StopData>> matching;
  std::set<ReplicaId> senders;
  for (const auto& [p, blob] : sync_stopdata_blobs_) {
    const StopData sd = decode_stopdata(blob);
    if (sd.cid != sync_cid_) continue;
    if (config_.contains(p)) {
      senders.insert(config_.index_of(p));
      matching.emplace_back(blob, sd);
    }
  }
  if (!config_.quorums().is_quorum(senders)) return;

  // Select the highest-epoch certified value among the STOPDATAs.
  std::optional<WriteCertificate> chosen;
  for (const auto& [blob, sd] : matching) {
    (void)blob;
    if (sd.cert.has_value() &&
        (!chosen.has_value() || sd.cert->epoch > chosen->epoch)) {
      chosen = sd.cert;
    }
  }

  Bytes proposed;
  if (chosen.has_value()) {
    // Find the certified value: in a STOPDATA, our own instance, or fetch it.
    for (const auto& [blob, sd] : matching) {
      (void)blob;
      if (!sd.value.empty() && consensus::value_hash(sd.value) == chosen->hash) {
        proposed = sd.value;
        break;
      }
    }
    if (proposed.empty()) {
      const auto inst_it = instances_.find(sync_cid_);
      if (inst_it != instances_.end()) {
        const Bytes* v = inst_it->second.instance.value_for(chosen->hash);
        if (v != nullptr) proposed = *v;
      }
    }
    if (proposed.empty()) {
      request_value(sync_cid_, chosen->hash);
      return;  // retried from handle_value_reply
    }
  } else {
    // Nothing certified: propose a fresh batch from our pending pool (may be
    // empty — the slot must still complete to unblock the pipeline).
    Batch batch;
    for (const RequestKey& key : pending_order_) {
      const auto it = pending_.find(key);
      if (it == pending_.end()) continue;
      batch.requests.push_back(it->second.request);
      if (batch.requests.size() >= params_.batch_max) break;
    }
    proposed = batch.encode();
  }

  Sync sync;
  sync.new_epoch = regency_;
  sync.cid = sync_cid_;
  for (const auto& [blob, sd] : matching) {
    (void)sd;
    sync.stopdata_blobs.push_back(blob);
  }
  sync.proposed_value = proposed;
  broadcast(encode_sync(sync));
  handle_sync(self_, sync);
}

void Replica::handle_sync(ProcessId from, const Sync& msg) {
  if (!is_active_member()) return;
  if (msg.new_epoch < regency_) return;
  if (config_.leader(msg.new_epoch) != from) return;
  if (msg.cid <= confirm_cursor_) return;  // already settled

  // Validate the STOPDATA set: distinct members, valid signatures and
  // certificates, quorum weight.
  std::set<ReplicaId> senders;
  std::optional<WriteCertificate> chosen;
  for (const Bytes& blob : msg.stopdata_blobs) {
    StopData sd;
    try {
      sd = decode_stopdata(blob);
    } catch (const DecodeError&) {
      return;
    }
    if (!validate_stopdata(sd, msg.new_epoch, msg.cid)) return;
    const ReplicaId idx = config_.index_of(sd.from);
    if (senders.count(idx) > 0) return;
    senders.insert(idx);
    if (sd.cert.has_value() &&
        (!chosen.has_value() || sd.cert->epoch > chosen->epoch)) {
      chosen = sd.cert;
    }
  }
  if (!config_.quorums().is_quorum(senders)) return;
  if (chosen.has_value() &&
      consensus::value_hash(msg.proposed_value) != chosen->hash) {
    return;  // leader ignored a certified value: reject
  }

  if (msg.new_epoch > regency_) regency_ = msg.new_epoch;
  sync_cid_ = msg.cid;
  sync_in_progress_ = true;  // cleared at the slot's WRITE quorum
  accept_proposal(msg.cid, msg.new_epoch, from, msg.proposed_value);
}

// --------------------------------------------------------------------------
// State transfer (§5.2)
// --------------------------------------------------------------------------

void Replica::note_future_traffic(ConsensusId cid) {
  // Any traffic for an undecided slot arms the stall detector (once): if the
  // confirm cursor has not moved by expiry, this replica missed decisions it
  // can only recover via state transfer.
  if (cid <= confirm_cursor_ || transferring_ || stall_timer_ != 0) return;
  stall_anchor_cid_ = confirm_cursor_;
  stall_timer_ = env().set_timer(params_.stall_timeout);
}

void Replica::begin_state_transfer() {
  if (transferring_) return;
  transferring_ = true;
  if (m_.state_transfers != nullptr) m_.state_transfers->add();
  transfer_replies_.clear();
  chunk_in_.clear();  // partially reassembled streams belong to an old round
  for (ProcessId member : config_.members()) {
    if (member != self_) {
      env().send(member, encode_state_request(StateRequest{confirm_cursor_}));
    }
  }
  if (transfer_timer_ != 0) env().cancel_timer(transfer_timer_);
  transfer_timer_ = env().set_timer(params_.state_transfer_retry);
}

void Replica::handle_state_request(ProcessId from, const StateRequest& msg) {
  (void)msg;
  if (!is_active_member()) return;
  StateReply reply;
  reply.snapshot_cid = snapshot_cid_;
  reply.snapshot = checkpoint_snapshot_;
  for (const auto& [cid, value] : decided_values_) {
    if (cid > snapshot_cid_ && cid <= confirm_cursor_) {
      reply.log.push_back(LogEntry{cid, value});
    }
  }
  reply.epoch = regency_;
  send_state_reply(from, reply);
}

void Replica::send_state_reply(ProcessId to, const StateReply& reply) {
  Bytes encoded = encode_state_reply(reply);
  const std::size_t chunk_bytes =
      std::max<std::size_t>(1, params_.state_chunk_bytes);
  if (encoded.size() <= chunk_bytes) {
    env().send(to, std::move(encoded));
    return;
  }

  // Large reply: split the encoded bytes and stream them with a bounded
  // window so a bulk checkpoint cannot monopolize the link to `to`. A new
  // request from the same peer abandons any stream still in flight.
  ChunkSendState& out = chunk_out_[to];
  out.id = next_transfer_id_++;
  out.chunks.clear();
  out.next_to_send = 0;
  out.acked = 0;
  for (std::size_t off = 0; off < encoded.size(); off += chunk_bytes) {
    const std::size_t len = std::min(chunk_bytes, encoded.size() - off);
    out.chunks.emplace_back(encoded.begin() + off, encoded.begin() + off + len);
  }

  const std::uint32_t total = static_cast<std::uint32_t>(out.chunks.size());
  const std::uint32_t window =
      std::max<std::uint32_t>(1, params_.state_chunk_window);
  while (out.next_to_send < total && out.next_to_send < window) {
    StateChunk chunk{out.id, out.next_to_send, total,
                     out.chunks[out.next_to_send]};
    env().send(to, encode_state_chunk(chunk));
    if (m_.state_chunks_sent != nullptr) m_.state_chunks_sent->add();
    ++out.next_to_send;
  }
}

void Replica::handle_state_chunk_ack(ProcessId from, const StateChunkAck& msg) {
  const auto it = chunk_out_.find(from);
  if (it == chunk_out_.end() || it->second.id != msg.transfer_id) return;
  ChunkSendState& out = it->second;
  if (msg.index >= out.chunks.size() || out.acked >= out.chunks.size()) return;
  ++out.acked;
  if (out.acked >= out.chunks.size()) {
    chunk_out_.erase(it);  // stream fully delivered
    return;
  }
  if (out.next_to_send < out.chunks.size()) {
    StateChunk chunk{out.id, out.next_to_send,
                     static_cast<std::uint32_t>(out.chunks.size()),
                     out.chunks[out.next_to_send]};
    env().send(from, encode_state_chunk(chunk));
    if (m_.state_chunks_sent != nullptr) m_.state_chunks_sent->add();
    ++out.next_to_send;
  }
}

void Replica::handle_state_chunk(ProcessId from, const StateChunk& msg) {
  if (!transferring_ || from == self_) return;
  // A Byzantine sender controls `total`; bound what one peer can make us
  // buffer before the reassembled reply would be decoded (and dropped) anyway.
  constexpr std::uint32_t kMaxChunksPerTransfer = 1u << 16;
  if (msg.total == 0 || msg.total > kMaxChunksPerTransfer ||
      msg.index >= msg.total) {
    return;
  }
  ChunkRecvState& in = chunk_in_[from];
  if (in.id != msg.transfer_id || in.total != msg.total) {
    in = ChunkRecvState{};
    in.id = msg.transfer_id;
    in.total = msg.total;
    in.parts.resize(msg.total);
  }
  if (in.parts[msg.index].empty()) {
    in.parts[msg.index] = msg.data;
    ++in.received;
    if (m_.state_chunks_received != nullptr) m_.state_chunks_received->add();
  }
  env().send(from, encode_state_chunk_ack(StateChunkAck{msg.transfer_id,
                                                        msg.index}));
  if (in.received < in.total) return;

  Bytes full;
  std::size_t size = 0;
  for (const Bytes& part : in.parts) size += part.size();
  full.reserve(size);
  for (const Bytes& part : in.parts) {
    full.insert(full.end(), part.begin(), part.end());
  }
  chunk_in_.erase(from);
  try {
    const StateReply reply = decode_state_reply(full);
    handle_state_reply(from, reply, full);
  } catch (const DecodeError&) {
    BFT_LOG(warn) << "replica " << self_
                  << ": reassembled state reply from " << from
                  << " does not decode; dropping";
  }
}

void Replica::handle_state_reply(ProcessId from, const StateReply& msg,
                                 ByteView raw) {
  (void)raw;
  if (!transferring_ || from == self_) return;
  transfer_replies_[from] = msg;
  try_assemble_state();
}

void Replica::try_assemble_state() {
  const std::uint32_t needed = config_.quorums().count_f_plus_1();
  if (transfer_replies_.size() < needed) return;

  // Group replies by snapshot identity. A snapshot (and every log entry we
  // adopt on top of it) must be vouched by f+1 distinct replicas, so at least
  // one correct one.
  std::map<std::string, std::vector<const StateReply*>> groups;
  for (const auto& [sender, reply] : transfer_replies_) {
    (void)sender;
    Writer w;
    w.u64(reply.snapshot_cid);
    w.bytes(reply.snapshot);
    groups[crypto::hash_hex(crypto::sha256(w.data()))].push_back(&reply);
  }

  // Best candidate: the (snapshot, agreed log prefix) with furthest coverage.
  const StateReply* best_base = nullptr;
  std::vector<LogEntry> best_log;
  ConsensusId best_covered = confirm_cursor_;
  Epoch best_epoch = 0;

  for (const auto& [digest, replies] : groups) {
    (void)digest;
    if (replies.size() < needed) continue;
    const StateReply* base = replies.front();
    std::vector<LogEntry> agreed;
    ConsensusId cid = base->snapshot_cid;
    for (;;) {
      const ConsensusId next = cid + 1;
      // Tally values proposed for `next` across the group.
      std::map<std::string, std::pair<std::uint32_t, const Bytes*>> votes;
      for (const StateReply* r : replies) {
        for (const LogEntry& e : r->log) {
          if (e.cid == next) {
            auto& slot = votes[crypto::hash_hex(crypto::sha256(e.value))];
            ++slot.first;
            slot.second = &e.value;
            break;
          }
        }
      }
      const Bytes* winner = nullptr;
      for (const auto& [vh, slot] : votes) {
        (void)vh;
        if (slot.first >= needed) {
          winner = slot.second;
          break;
        }
      }
      if (winner == nullptr) break;
      agreed.push_back(LogEntry{next, *winner});
      cid = next;
    }
    if (cid > best_covered) {
      best_base = base;
      best_log = std::move(agreed);
      best_covered = cid;
      for (const StateReply* r : replies) best_epoch = std::max(best_epoch, r->epoch);
    }
  }

  if (best_base != nullptr) {
    adopt_state(best_base->snapshot_cid, best_base->snapshot, best_log, best_epoch);
    return;
  }

  // Nothing advances us. If every member answered, the transfer was
  // spurious; cancel it so proposing is not blocked forever.
  if (transfer_replies_.size() + 1 >= config_.n() && is_active_member()) {
    transferring_ = false;
    transfer_replies_.clear();
    chunk_in_.clear();
    if (transfer_timer_ != 0) {
      env().cancel_timer(transfer_timer_);
      transfer_timer_ = 0;
    }
    maybe_propose();
  }
}

void Replica::adopt_state(ConsensusId snapshot_cid, const Bytes& snapshot,
                          const std::vector<LogEntry>& log, Epoch epoch_hint) {
  BFT_LOG(info) << "replica " << self_ << ": adopting state up to cid "
                << (log.empty() ? snapshot_cid : log.back().cid);
  restore_core_snapshot(snapshot);
  snapshot_cid_ = snapshot_cid;
  checkpoint_snapshot_ = snapshot;
  rollback_snapshot_.reset();
  tentative_hashes_.clear();
  pending_tentative_.clear();
  decided_awaiting_value_.clear();
  const ConsensusId covered = log.empty() ? snapshot_cid : log.back().cid;
  // Keep decisions newer than the transferred state that we learned live
  // while the transfer was in flight; replace everything the reply covers.
  decided_values_.erase(decided_values_.begin(),
                        decided_values_.upper_bound(covered));
  instances_.erase(instances_.begin(), instances_.upper_bound(snapshot_cid));

  // Persist the adopted position: the snapshot as a durable checkpoint (its
  // digest is computed on the freshly restored state), then each replayed
  // log entry write-ahead. The WAL accepts the upward cid jump; recovery
  // resumes from this checkpoint, so the jumped-over range never matters.
  if (params_.storage != nullptr && snapshot_cid > 0) {
    storage::Checkpoint cp;
    cp.cid = snapshot_cid;
    cp.integrity = app_->integrity_digest();
    cp.snapshot = snapshot;
    const Status written = params_.storage->write_checkpoint(cp);
    if (!written.is_ok()) {
      BFT_LOG(error) << "replica " << self_
                     << ": transferred-state checkpoint persist failed: "
                     << written.error();
    }
  }

  replaying_ = true;
  for (const LogEntry& entry : log) {
    if (entry.cid != confirm_cursor_ + 1) break;  // non-contiguous: stop
    persist_decision(entry.cid, entry.value);
    decided_values_[entry.cid] = entry.value;
    execute_batch(entry.cid, entry.value, false);
    confirm_cursor_ = entry.cid;
    tentative_cursor_ = entry.cid;
  }
  replaying_ = false;

  // The transferred state may have executed requests we still hold as
  // pending (their execution happened inside the snapshot we jumped over);
  // drop them or we would keep proposing already-ordered requests.
  for (auto it = pending_.begin(); it != pending_.end();) {
    const auto& [client, seq] = it->first;
    const auto seq_it = executed_seqs_.find(client);
    if (seq_it != executed_seqs_.end() && seq_it->second.contains(seq)) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }

  order_frontier_ = std::max(order_frontier_, confirm_cursor_);
  try_apply();  // consume any surviving post-transfer decisions
  regency_ = std::max(regency_, epoch_hint);
  transferring_ = false;
  transfer_replies_.clear();
  chunk_in_.clear();
  if (transfer_timer_ != 0) {
    env().cancel_timer(transfer_timer_);
    transfer_timer_ = 0;
  }
  app_->on_state_installed();
  if (!is_active_member()) {
    // Still a learner: keep polling until a reconfiguration admits us.
    transfer_timer_ = env().set_timer(params_.state_transfer_retry);
  } else if (sync_in_progress_) {
    // Our view of the slot under synchronization moved: refresh the leader.
    sync_cid_ = confirm_cursor_ + 1;
    send_stopdata();
  } else {
    maybe_propose();
  }
}

// --------------------------------------------------------------------------
// Receivers and timers
// --------------------------------------------------------------------------

void Replica::push_to_receivers(ByteView payload) {
  const Payload encoded = Payload(encode_push(payload));
  if (m_.pushes_sent != nullptr) {
    m_.pushes_sent->add(receivers_.size());
  }
  for (ProcessId receiver : receivers_) {
    env().send(receiver, encoded);
  }
}

void Replica::send_push(ProcessId to, ByteView payload) {
  env().send(to, encode_push(payload));
}

void Replica::arm_request_timer() {
  if (request_timer_ != 0 || pending_.empty() || !is_active_member()) return;
  forwarded_phase_ = false;
  request_timer_ = env().set_timer(params_.forward_timeout);
}

void Replica::disarm_request_timer() {
  if (request_timer_ != 0) {
    env().cancel_timer(request_timer_);
    request_timer_ = 0;
  }
  forwarded_phase_ = false;
}

// --------------------------------------------------------------------------
// Observability
// --------------------------------------------------------------------------

void Replica::trace_batch(obs::TraceStage stage, ConsensusId cid,
                          ByteView value) {
  if (trace_ == nullptr || replaying_) return;
  try {
    const Batch batch = Batch::decode(value);
    const runtime::TimePoint now = env().now();
    for (const Request& r : batch.requests) {
      trace_->record(stage, now, self_, r.client, r.seq, cid);
    }
  } catch (const DecodeError&) {
    // Already validated on every path that traces; never fatal regardless.
  }
}

void Replica::update_pending_gauge() {
  if (m_.pending_requests != nullptr) {
    m_.pending_requests->set(static_cast<std::int64_t>(pending_.size()));
  }
}

}  // namespace bft::smr

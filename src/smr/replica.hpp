// BFT-SMaRt service replica (Mod-SMaRt SMR on top of VP-Consensus instances).
//
// Implements, per the paper's §4-5:
//   * request pooling with per-client dedup and leader batching (limit 400);
//   * the PROPOSE/WRITE/ACCEPT normal case driven by consensus::Instance;
//   * WHEAT's tentative execution (deliver on WRITE quorum, ACCEPT async,
//     rollback via snapshot + replay on conflicting late decisions);
//   * the synchronization phase (STOP / STOPDATA / SYNC) with signed,
//     transferable write certificates for regency changes;
//   * checkpointing every `checkpoint_period` decisions and state transfer
//     for laggards and joining nodes (§5.2);
//   * reconfiguration through core-executed membership-change requests;
//   * the custom-replier hook the ordering service uses to push blocks to
//     registered receivers instead of answering invoking clients.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "consensus/instance.hpp"
#include "crypto/authenticator.hpp"
#include "crypto/ecdsa.hpp"
#include "runtime/actor.hpp"
#include "smr/config.hpp"
#include "smr/state_machine.hpp"
#include "smr/wire.hpp"

namespace bft::smr {

/// Derives the (simulated PKI) signing key of a process from its id. Every
/// node derives every other node's public key the same way; this stands in
/// for certificate distribution, which the paper delegates to the HLF
/// membership service. Thin aliases over crypto::process_private_key /
/// crypto::process_public_key (authenticator.hpp), kept for existing callers.
crypto::PrivateKey process_signing_key(runtime::ProcessId id);
const crypto::PublicKey& process_public_key(runtime::ProcessId id);

/// Membership-change payloads (RequestKind::reconfig).
enum class ReconfigOp : std::uint8_t { add = 1, remove = 2 };
Bytes encode_reconfig(ReconfigOp op, runtime::ProcessId node);
std::pair<ReconfigOp, runtime::ProcessId> decode_reconfig(ByteView payload);

class Replica : public runtime::Actor {
 public:
  /// `app` and `replier` are borrowed and must outlive the replica; a null
  /// replier routes replies back to the requesting client.
  Replica(runtime::ProcessId self, ClusterConfig config, ReplicaParams params,
          StateMachine* app, Replier* replier = nullptr);

  void on_start(runtime::Env& env) override;
  /// Staged-pipeline phase 1 (thread-safe, const): classifies the message,
  /// reports the offloadable decode/verify cost share, and pre-verifies
  /// FORWARD / WRITE signatures through the Authenticator so the expensive
  /// point multiplication runs on a runner worker. Touches only immutable
  /// state (params_, the authenticator, the global key cache) — never
  /// config_, which reconfiguration mutates on the consume thread.
  runtime::Verified prologue(runtime::ProcessId from,
                             Payload payload) const override;
  /// Staged-pipeline phase 2: full dispatch in protocol order, honoring the
  /// prologue's verdict (accepted skips the inline re-check, rejected drops).
  void consume(runtime::Verified&& verified) override;
  /// Legacy single-phase entry: dispatch with no pre-verification.
  void on_message(runtime::ProcessId from, ByteView payload) override;
  void on_timer(std::uint64_t timer_id) override;
  /// Warm restart after a crash fault: every timer armed before the crash is
  /// gone, so the liveness machinery (request forwarding, stall detection,
  /// state transfer, sync deadline, app timers) is re-armed here. Protocol
  /// state survives; catch-up runs through the normal state-transfer path.
  void on_recover() override;

  // --- introspection (tests, benches, application modules) ---
  runtime::ProcessId self_id() const { return self_; }
  const ClusterConfig& config() const { return config_; }
  const ReplicaParams& params() const { return params_; }
  consensus::Epoch regency() const { return regency_; }
  bool is_leader() const;
  /// True once this process is part of the active membership.
  bool is_active_member() const { return config_.contains(self_); }
  ConsensusId last_confirmed() const { return confirm_cursor_; }
  ConsensusId last_applied() const { return tentative_cursor_; }
  std::uint64_t executed_request_count() const { return executed_count_; }
  std::uint64_t decided_batch_count() const { return decided_count_; }
  bool state_transfer_in_progress() const { return transferring_; }
  std::size_t pending_request_count() const { return pending_.size(); }
  /// Contiguously-executed sequence watermark for `client`: every seq up to
  /// and including the returned value has executed (0 if none).
  std::uint64_t last_executed_seq(std::uint32_t client) const {
    const auto it = executed_seqs_.find(client);
    return it == executed_seqs_.end() ? 0 : it->second.low;
  }
  const std::set<runtime::ProcessId>& receivers() const { return receivers_; }

  // --- services for the application / custom replier ---
  /// Sends an application payload to every registered receiver (§5.1's
  /// "custom replier" dissemination path).
  void push_to_receivers(ByteView payload);
  /// Sends an application payload to one process.
  void send_push(runtime::ProcessId to, ByteView payload);
  runtime::Env& runtime_env() { return env(); }
  const CostModel& costs() const { return params_.costs; }
  /// True while re-executing history (state transfer): the application
  /// should suppress external effects such as block pushes.
  bool replaying_history() const { return replaying_; }
  /// Arms a timer delivered to the application's on_app_timer (local,
  /// non-replicated machinery such as batch timeouts).
  std::uint64_t set_app_timer(runtime::Duration delay);

 private:
  struct PendingRequest {
    Request request;
    bool inflight = false;  // included in an undecided proposal of ours
  };
  using RequestKey = std::pair<std::uint32_t, std::uint64_t>;  // client, seq

  struct InstanceDriver {
    explicit InstanceDriver(consensus::ConsensusId cid,
                            const consensus::QuorumSystem* q)
        : instance(cid, q) {}
    consensus::Instance instance;
    std::set<consensus::Epoch> sent_write;
    std::set<consensus::Epoch> sent_accept;
    bool proposed_by_me = false;
    bool value_requested = false;
    // Observability timestamps (local view, -1 = not yet observed).
    runtime::TimePoint proposed_at = -1;
    runtime::TimePoint write_quorum_at = -1;
  };

  // -- message handlers --
  /// Shared dispatch behind on_message/consume. `auth` is the prologue's
  /// verification verdict; `prologue_charged` is CPU cost the runtime
  /// already charged to the prologue workers (subtracted from the inline
  /// charge so serial and staged totals match).
  void dispatch(runtime::ProcessId from, ByteView payload,
                runtime::Verified::Auth auth,
                runtime::Duration prologue_charged);
  void handle_request(runtime::ProcessId from, const Request& request,
                      bool forwarded);
  void handle_forward(runtime::ProcessId from, const Forward& fwd,
                      runtime::Verified::Auth auth);
  void handle_propose(runtime::ProcessId from, const Propose& msg);
  void handle_write(runtime::ProcessId from, const WriteMsg& msg,
                    runtime::Verified::Auth auth);
  void handle_accept(runtime::ProcessId from, const AcceptMsg& msg);
  void handle_stop(runtime::ProcessId from, const Stop& msg);
  void handle_stopdata(runtime::ProcessId from, const StopData& msg);
  void handle_sync(runtime::ProcessId from, const Sync& msg);
  void handle_state_request(runtime::ProcessId from, const StateRequest& msg);
  void handle_state_reply(runtime::ProcessId from, const StateReply& msg,
                          ByteView raw);
  void handle_state_chunk(runtime::ProcessId from, const StateChunk& msg);
  void handle_state_chunk_ack(runtime::ProcessId from,
                              const StateChunkAck& msg);
  void handle_value_request(runtime::ProcessId from, const ValueRequest& msg);
  void handle_value_reply(runtime::ProcessId from, const ValueReply& msg);

  // -- consensus driving --
  InstanceDriver& driver(ConsensusId cid);
  void accept_proposal(ConsensusId cid, consensus::Epoch epoch,
                       runtime::ProcessId from, Bytes value);
  void send_write_for(ConsensusId cid, consensus::Epoch epoch,
                      const ValueHash& hash);
  void on_write_quorum(ConsensusId cid, consensus::Epoch epoch);
  void on_decided(ConsensusId cid);
  void maybe_propose();
  /// Fans `payload` out to every other member, sharing one underlying buffer
  /// across all sends (no per-destination deep copy).
  void broadcast(Payload payload);
  void request_value(ConsensusId cid, const ValueHash& hash);

  // -- execution pipeline --
  void try_apply();
  void execute_batch(ConsensusId cid, ByteView value, bool tentative);
  void apply_reconfig(const Request& request);
  void rollback_and_replay();
  void maybe_checkpoint();
  Bytes make_core_snapshot() const;
  void restore_core_snapshot(ByteView snapshot);

  // -- durability (no-ops when params_.storage is null) --
  /// Write-ahead append of a confirmed decision (before it executes).
  void persist_decision(ConsensusId cid, const Bytes& value);
  /// Persists the current checkpoint (snapshot_cid_/checkpoint_snapshot_)
  /// with the app's integrity digest; prunes the WAL behind it.
  void persist_checkpoint();
  /// Restart-from-disk: newest verifiable checkpoint + contiguous WAL suffix.
  void recover_from_storage();

  // -- synchronization phase --
  void start_regency_change(consensus::Epoch next);
  void install_regency(consensus::Epoch next);
  void send_stopdata();
  bool validate_stopdata(const StopData& sd, consensus::Epoch expected_epoch,
                         ConsensusId expected_cid) const;
  void maybe_send_sync();

  // -- state transfer --
  bool admit_consensus_cid(ConsensusId cid);
  void note_future_traffic(ConsensusId cid);
  void begin_state_transfer();
  /// Sends `reply` to `to` — whole when it fits in one state_chunk_bytes
  /// frame, otherwise as an acked stream of StateChunk fragments with at
  /// most state_chunk_window outstanding.
  void send_state_reply(runtime::ProcessId to, const StateReply& reply);
  /// Assembles the longest decided prefix vouched by f+1 replies; adopts it
  /// if it advances us. Cancels a spurious transfer when f+1 peers report
  /// nothing newer.
  void try_assemble_state();
  void adopt_state(ConsensusId snapshot_cid, const Bytes& snapshot,
                   const std::vector<LogEntry>& log,
                   consensus::Epoch epoch_hint);

  // -- timers / misc --
  void arm_request_timer();
  void disarm_request_timer();
  void charge(runtime::Duration cost) { env().charge_cpu(cost); }

  // -- observability --
  /// Decodes `value` and emits one trace event per contained request.
  /// No-op when tracing is off or during history replay.
  void trace_batch(obs::TraceStage stage, ConsensusId cid, ByteView value);
  void update_pending_gauge();

  runtime::ProcessId self_;
  ClusterConfig config_;
  ReplicaParams params_;
  StateMachine* app_;
  Replier* replier_;
  /// Single seam for every signature this replica produces or checks
  /// (FORWARD, WRITE, STOPDATA + certificates). Shared with the prologue
  /// workers, so the implementation must be thread-safe.
  std::shared_ptr<const crypto::Authenticator> authenticator_;

  consensus::Epoch regency_ = 0;

  // Request pool: map for dedup plus FIFO arrival order.
  std::map<RequestKey, PendingRequest> pending_;
  std::deque<RequestKey> pending_order_;

  std::map<ConsensusId, InstanceDriver> instances_;
  ConsensusId order_frontier_ = 0;  // highest cid allowed to seed the next proposal

  // Decided values (encoded batches) from snapshot_cid_+1 upward.
  std::map<ConsensusId, Bytes> decided_values_;
  std::map<ConsensusId, std::pair<ValueHash, Bytes>> pending_tentative_;
  std::map<ConsensusId, ValueHash> decided_awaiting_value_;

  ConsensusId confirm_cursor_ = 0;    // decisions <= are confirmed & applied
  ConsensusId tentative_cursor_ = 0;  // decisions <= are applied (maybe tentatively)
  std::map<ConsensusId, ValueHash> tentative_hashes_;
  std::optional<Bytes> rollback_snapshot_;

  // Exact record of which sequence numbers executed for one client.
  // Consensus totally orders batches but does not guarantee client-FIFO: a
  // slot proposed with older requests can be abandoned by a regency change
  // and re-decided after younger requests already executed. A max-watermark
  // would mark those older seqs "done" and drop them forever, so we keep the
  // contiguous low watermark plus the exact set executed above it. `above`
  // drains into `low` as gaps fill; its size is bounded in practice by how
  // many requests consensus can reorder (inflight slots x batch_max).
  struct ExecutedWindow {
    std::uint64_t low = 0;         // all seqs <= low have executed
    std::set<std::uint64_t> above; // executed seqs > low (non-contiguous)

    bool contains(std::uint64_t seq) const {
      return seq <= low || above.count(seq) > 0;
    }
    void insert(std::uint64_t seq) {
      if (contains(seq)) return;
      above.insert(seq);
      while (!above.empty() && *above.begin() == low + 1) {
        ++low;
        above.erase(above.begin());
      }
    }
  };
  std::map<std::uint32_t, ExecutedWindow> executed_seqs_;  // per client
  // Recent replies per client (bounded window) so retrying clients with
  // several requests in flight can all be settled from cache.
  static constexpr std::size_t kReplyCacheWindow = 64;
  std::map<std::uint32_t, std::map<std::uint64_t, Reply>> reply_cache_;
  std::uint64_t executed_count_ = 0;
  std::uint64_t decided_count_ = 0;
  bool replaying_ = false;

  // Checkpoint.
  ConsensusId snapshot_cid_ = 0;
  Bytes checkpoint_snapshot_;

  // Synchronization phase.
  std::map<consensus::Epoch, std::set<runtime::ProcessId>> stop_votes_;
  std::set<consensus::Epoch> sent_stop_;
  bool sync_in_progress_ = false;
  ConsensusId sync_cid_ = 0;
  std::map<runtime::ProcessId, Bytes> sync_stopdata_blobs_;  // leader side
  std::uint64_t sync_timer_ = 0;
  std::uint32_t timeout_backoff_ = 0;

  // Request-liveness timer.
  std::uint64_t request_timer_ = 0;
  bool forwarded_phase_ = false;

  // Stall detector: traffic for future slots while the next slot stays
  // undecided (lost ACCEPTs) eventually forces a state transfer.
  std::uint64_t stall_timer_ = 0;
  ConsensusId stall_anchor_cid_ = 0;

  // State transfer.
  bool transferring_ = false;
  std::uint64_t transfer_timer_ = 0;
  std::map<runtime::ProcessId, StateReply> transfer_replies_;

  // Chunked reply streams (one per peer in each direction). Senders keep the
  // pre-split fragments and a send/ack cursor; receivers reassemble into
  // `parts` and feed the completed bytes through handle_state_reply.
  struct ChunkSendState {
    std::uint64_t id = 0;
    std::vector<Bytes> chunks;
    std::uint32_t next_to_send = 0;
    std::uint32_t acked = 0;
  };
  struct ChunkRecvState {
    std::uint64_t id = 0;
    std::uint32_t total = 0;
    std::uint32_t received = 0;
    std::vector<Bytes> parts;
  };
  std::map<runtime::ProcessId, ChunkSendState> chunk_out_;
  std::map<runtime::ProcessId, ChunkRecvState> chunk_in_;
  std::uint64_t next_transfer_id_ = 1;

  // Custom-replier audience.
  std::set<runtime::ProcessId> receivers_;

  // Timers owned by the application (see set_app_timer).
  std::set<std::uint64_t> app_timers_;

  // Observability handles, resolved once at construction from
  // params_.metrics (all null when no registry is wired — the hot path then
  // pays a single pointer test per site). Catalogue: OBSERVABILITY.md.
  struct MetricHandles {
    obs::Counter* requests_received = nullptr;
    obs::Counter* batches_proposed = nullptr;
    obs::Counter* batches_decided = nullptr;
    obs::Counter* requests_executed = nullptr;
    obs::Counter* pushes_sent = nullptr;
    obs::Counter* regency_changes = nullptr;
    obs::Counter* state_transfers = nullptr;
    obs::Counter* state_chunks_sent = nullptr;
    obs::Counter* state_chunks_received = nullptr;
    obs::Gauge* pending_requests = nullptr;
    obs::LatencyHistogram* batch_size = nullptr;
    obs::LatencyHistogram* propose_to_write = nullptr;
    obs::LatencyHistogram* write_to_decide = nullptr;
    obs::LatencyHistogram* propose_to_decide = nullptr;
  };
  MetricHandles m_;
  consensus::InstanceMetrics instance_metrics_;  // shared by all drivers
  obs::TraceRing* trace_ = nullptr;
};

}  // namespace bft::smr

#include "smr/config.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/serial.hpp"

namespace bft::smr {

namespace {

consensus::QuorumSystem build_quorums(
    const std::vector<runtime::ProcessId>& members, bool wheat,
    const std::set<runtime::ProcessId>& vmax_members) {
  const auto n = static_cast<std::uint32_t>(members.size());
  if (!wheat) return consensus::QuorumSystem::classic(n);
  const std::uint32_t f = (vmax_members.size()) / 2;
  std::set<consensus::ReplicaId> vmax_indices;
  for (runtime::ProcessId p : vmax_members) {
    const auto it = std::lower_bound(members.begin(), members.end(), p);
    if (it == members.end() || *it != p) {
      throw std::invalid_argument("ClusterConfig: Vmax process not a member");
    }
    vmax_indices.insert(
        static_cast<consensus::ReplicaId>(it - members.begin()));
  }
  return consensus::QuorumSystem::wheat(n, f, vmax_indices);
}

}  // namespace

ClusterConfig::ClusterConfig(std::vector<runtime::ProcessId> members, bool wheat,
                             std::set<runtime::ProcessId> vmax_members)
    : members_(std::move(members)),
      wheat_(wheat),
      vmax_members_(std::move(vmax_members)),
      quorums_(build_quorums(members_, wheat_, vmax_members_)) {}

ClusterConfig ClusterConfig::classic(std::vector<runtime::ProcessId> members) {
  std::sort(members.begin(), members.end());
  if (std::adjacent_find(members.begin(), members.end()) != members.end()) {
    throw std::invalid_argument("ClusterConfig: duplicate member");
  }
  return ClusterConfig(std::move(members), false, {});
}

ClusterConfig ClusterConfig::wheat(std::vector<runtime::ProcessId> members,
                                   std::set<runtime::ProcessId> vmax_members) {
  std::sort(members.begin(), members.end());
  if (std::adjacent_find(members.begin(), members.end()) != members.end()) {
    throw std::invalid_argument("ClusterConfig: duplicate member");
  }
  if (vmax_members.size() % 2 != 0 || vmax_members.empty()) {
    throw std::invalid_argument("ClusterConfig: wheat needs exactly 2f Vmax members");
  }
  return ClusterConfig(std::move(members), true, std::move(vmax_members));
}

bool ClusterConfig::contains(runtime::ProcessId p) const {
  return std::binary_search(members_.begin(), members_.end(), p);
}

consensus::ReplicaId ClusterConfig::index_of(runtime::ProcessId p) const {
  const auto it = std::lower_bound(members_.begin(), members_.end(), p);
  if (it == members_.end() || *it != p) {
    throw std::out_of_range("ClusterConfig: process is not a member");
  }
  return static_cast<consensus::ReplicaId>(it - members_.begin());
}

runtime::ProcessId ClusterConfig::member_at(consensus::ReplicaId index) const {
  return members_.at(index);
}

runtime::ProcessId ClusterConfig::leader(consensus::Epoch regency) const {
  return members_[regency % members_.size()];
}

ClusterConfig ClusterConfig::with_member_added(runtime::ProcessId p) const {
  if (contains(p)) throw std::invalid_argument("with_member_added: already a member");
  std::vector<runtime::ProcessId> members = members_;
  members.push_back(p);
  std::sort(members.begin(), members.end());
  return ClusterConfig(std::move(members), wheat_, vmax_members_);
}

ClusterConfig ClusterConfig::with_member_removed(runtime::ProcessId p) const {
  if (!contains(p)) throw std::invalid_argument("with_member_removed: not a member");
  std::vector<runtime::ProcessId> members;
  members.reserve(members_.size() - 1);
  for (runtime::ProcessId m : members_) {
    if (m != p) members.push_back(m);
  }
  std::set<runtime::ProcessId> vmax = vmax_members_;
  vmax.erase(p);
  // Removing a Vmax member from a WHEAT config breaks the 2f-Vmax invariant;
  // fall back to classic weights in that case.
  const bool still_wheat = wheat_ && vmax.size() == vmax_members_.size();
  return ClusterConfig(std::move(members), still_wheat,
                       still_wheat ? vmax : std::set<runtime::ProcessId>{});
}

Bytes ClusterConfig::encode() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(members_.size()));
  for (runtime::ProcessId p : members_) w.u32(p);
  w.boolean(wheat_);
  w.u32(static_cast<std::uint32_t>(vmax_members_.size()));
  for (runtime::ProcessId p : vmax_members_) w.u32(p);
  return std::move(w).take();
}

ClusterConfig ClusterConfig::decode(ByteView data) {
  Reader r(data);
  std::vector<runtime::ProcessId> members(r.u32());
  for (auto& p : members) p = r.u32();
  const bool wheat = r.boolean();
  std::set<runtime::ProcessId> vmax;
  const std::uint32_t vmax_count = r.u32();
  for (std::uint32_t i = 0; i < vmax_count; ++i) vmax.insert(r.u32());
  r.expect_done();
  return wheat ? ClusterConfig::wheat(std::move(members), std::move(vmax))
               : ClusterConfig::classic(std::move(members));
}

}  // namespace bft::smr

// Cluster membership and per-replica parameters.
#pragma once

#include <set>
#include <vector>

#include "consensus/quorum.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/actor.hpp"

namespace bft::storage {
class NodeStore;
}

namespace bft::smr {

/// Group membership. Replica indices (the QuorumSystem's ReplicaId space) are
/// positions in the sorted member vector, so every replica derives identical
/// indices from the same membership.
class ClusterConfig {
 public:
  /// Classic BFT-SMaRt configuration (uniform weights).
  static ClusterConfig classic(std::vector<runtime::ProcessId> members);

  /// WHEAT configuration: `vmax_members` are the 2f processes carrying Vmax.
  static ClusterConfig wheat(std::vector<runtime::ProcessId> members,
                             std::set<runtime::ProcessId> vmax_members);

  const std::vector<runtime::ProcessId>& members() const { return members_; }
  std::uint32_t n() const { return static_cast<std::uint32_t>(members_.size()); }
  bool is_wheat() const { return wheat_; }
  const std::set<runtime::ProcessId>& vmax_members() const { return vmax_members_; }

  bool contains(runtime::ProcessId p) const;
  /// Replica index of `p`; throws std::out_of_range if not a member.
  consensus::ReplicaId index_of(runtime::ProcessId p) const;
  runtime::ProcessId member_at(consensus::ReplicaId index) const;
  /// The leader process of a regency (round-robin over members).
  runtime::ProcessId leader(consensus::Epoch regency) const;

  const consensus::QuorumSystem& quorums() const { return quorums_; }

  /// Returns a new config with `p` added / removed (classic weights are
  /// recomputed; WHEAT Vmax membership is preserved where still valid).
  ClusterConfig with_member_added(runtime::ProcessId p) const;
  ClusterConfig with_member_removed(runtime::ProcessId p) const;

  Bytes encode() const;
  static ClusterConfig decode(ByteView data);

  bool operator==(const ClusterConfig& other) const {
    return members_ == other.members_ && wheat_ == other.wheat_ &&
           vmax_members_ == other.vmax_members_;
  }

 private:
  ClusterConfig(std::vector<runtime::ProcessId> members, bool wheat,
                std::set<runtime::ProcessId> vmax_members);

  std::vector<runtime::ProcessId> members_;  // sorted
  bool wheat_;
  std::set<runtime::ProcessId> vmax_members_;
  consensus::QuorumSystem quorums_;
};

/// CPU cost model charged on the simulated runtime (no-ops on real threads).
/// Calibrated in DESIGN.md §6 against the paper's Dell R410 numbers.
struct CostModel {
  runtime::Duration per_request = runtime::usec(6);
  runtime::Duration per_consensus_msg = runtime::usec(15);
  /// Per-byte handling cost of proposal payloads (ns/byte).
  runtime::Duration per_value_byte = 1;
  /// ECDSA block signature (paper: 8.4 ksig/s across 16 workers).
  runtime::Duration signature = runtime::usec(1905);
  /// Staged-pipeline split: the share of per_request / per_consensus_msg
  /// spent in the thread-safe prologue (wire decode, structural checks,
  /// signature verification) rather than in state mutation. With the
  /// runner's prologue workers enabled (--workers N) the simulated runtime
  /// serves this share on N parallel servers instead of the protocol FIFO
  /// thread; serial runs charge prologue + epilogue as one protocol-thread
  /// job, so the totals are identical. Per-value-byte decode cost rides with
  /// the prologue. The splits (5/6 for requests, 2/3 for consensus messages)
  /// mirror where the real replica's cycles go: deserialization, digesting
  /// and MAC/signature checks dominate request admission (cf. the Fabric
  /// bottleneck analyses in PAPERS.md) leaving only the ~1 µs pool insert as
  /// ordered mutation, while consensus handlers keep a fatter ordered tail
  /// (quorum bookkeeping, instance state machines).
  runtime::Duration request_prologue = runtime::usec(5);
  runtime::Duration consensus_prologue = runtime::usec(10);
};

struct ReplicaParams {
  std::uint32_t batch_max = 400;  // §6.2: BFT-SMaRt batch limit
  /// WHEAT tentative execution: deliver after WRITE, run ACCEPT async.
  bool tentative_execution = false;
  /// Sign WRITE messages so synchronization-phase certificates are
  /// transferable (disable on throughput benches, where no leader changes
  /// happen, to match BFT-SMaRt's MAC-authenticated normal case).
  bool sign_writes = true;
  runtime::Duration forward_timeout = runtime::msec(500);
  runtime::Duration stop_timeout = runtime::msec(1000);
  runtime::Duration sync_deadline = runtime::msec(2000);
  std::uint64_t checkpoint_period = 1024;
  std::uint64_t state_transfer_gap = 32;
  runtime::Duration state_transfer_retry = runtime::msec(500);
  /// Stall detector: seeing traffic for future slots while the next slot
  /// stays undecided for this long forces a state transfer (recovers
  /// decisions whose ACCEPT quorum this replica missed).
  runtime::Duration stall_timeout = runtime::msec(1000);
  CostModel costs;
  /// Optional observability sinks (non-owning; must outlive the replica).
  /// Null disables instrumentation entirely — the hot path only pays a
  /// pointer test. Metric names are fixed (no per-node prefix), so wire these
  /// into a single probe replica unless cross-node aggregation is wanted.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRing* trace = nullptr;
  /// Optional durable store (non-owning; must outlive the replica). When set,
  /// every confirmed decision is appended to the write-ahead log before it
  /// executes, checkpoints are persisted, and on_start resumes from disk:
  /// restore newest valid checkpoint -> verify the app's integrity digest ->
  /// replay the WAL suffix. Strictly one replica per store.
  storage::NodeStore* storage = nullptr;
  /// State-transfer chunking: replies larger than `state_chunk_bytes` stream
  /// in chunks with at most `state_chunk_window` unacknowledged per peer
  /// (0 bytes = never chunk, always send whole replies).
  std::uint32_t state_chunk_bytes = 64 * 1024;
  std::uint32_t state_chunk_window = 4;
};

}  // namespace bft::smr

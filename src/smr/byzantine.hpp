// Byzantine replica wrappers for fault-injection tests.
//
// A ByzantineReplica hosts a real Replica but interposes a tampering Env
// between it and the runtime, so the inner replica runs the genuine protocol
// while its *outgoing* traffic is adversarially rewritten. This models the
// paper's strongest fault assumption — a node that follows the code except
// where lying benefits it — without forking the replica implementation:
//
//   * equivocate_proposals — as the epoch-0 leader, every PROPOSE is rewritten
//     into a different batch per destination. No write quorum can form on any
//     single value, honest replicas time out, and the synchronization phase
//     must elect an honest leader (safety: quorum intersection keeps the
//     decided prefix fork-free).
//   * mute_leader — as the epoch-0 leader, every PROPOSE is swallowed. The
//     cluster sees a live node (WRITEs/ACCEPTs still flow) that simply never
//     orders anything, which only the request-timeout path can detect.
//
// Both behaviors act only on epoch-0 proposals: once an honest regency is
// installed the wrapper is a bystander, which keeps chaos scenarios live
// (the node leads again every n regencies and must not stall each turn).
#pragma once

#include <memory>

#include "smr/replica.hpp"

namespace bft::smr {

enum class ByzantineBehavior : std::uint8_t {
  equivocate_proposals,
  mute_leader,
};

class ByzantineReplica final : public runtime::Actor {
 public:
  /// `inner` is borrowed and must outlive the wrapper. Register the wrapper
  /// (not the inner replica) with the runtime.
  ByzantineReplica(Replica& inner, ByzantineBehavior behavior);
  ~ByzantineReplica() override;

  void on_start(runtime::Env& env) override;
  void on_message(runtime::ProcessId from, ByteView payload) override;
  void on_timer(std::uint64_t timer_id) override;
  void on_recover() override;

  /// Number of proposals equivocated or suppressed so far.
  std::uint64_t tampered_sends() const { return tampered_; }
  Replica& inner() { return inner_; }

 private:
  class TamperEnv;

  Replica& inner_;
  ByzantineBehavior behavior_;
  std::unique_ptr<TamperEnv> tamper_;
  std::uint64_t tampered_ = 0;
};

}  // namespace bft::smr

#include "smr/byzantine.hpp"

namespace bft::smr {

// Env proxy: forwards everything to the real runtime env except send(),
// which rewrites epoch-0 proposals according to the configured behavior.
class ByzantineReplica::TamperEnv final : public runtime::Env {
 public:
  explicit TamperEnv(ByzantineReplica& owner) : owner_(owner) {}

  void attach(runtime::Env& outer) { outer_ = &outer; }

  runtime::ProcessId self() const override { return outer_->self(); }
  runtime::TimePoint now() const override { return outer_->now(); }

  void send(runtime::ProcessId to, Payload payload) override {
    try {
      if (peek_kind(payload.view()) == MsgKind::propose) {
        Propose proposal = decode_propose(payload.view());
        if (proposal.epoch == 0) {
          if (owner_.behavior_ == ByzantineBehavior::mute_leader) {
            ++owner_.tampered_;
            return;  // the proposal silently disappears
          }
          // Equivocate: append the destination id to every request payload,
          // so each follower sees a structurally valid but distinct batch
          // (and therefore a distinct value hash) for the same slot.
          Batch batch = Batch::decode(proposal.value);
          for (Request& request : batch.requests) {
            Writer w;
            w.raw(request.payload);
            w.u32(to);
            request.payload = std::move(w).take();
          }
          proposal.value = batch.encode();
          ++owner_.tampered_;
          outer_->send(to, encode_propose(proposal));
          return;
        }
      }
    } catch (const DecodeError&) {
      // Unparseable traffic (application pushes etc.): pass through.
    }
    outer_->send(to, std::move(payload));
  }

  std::uint64_t set_timer(runtime::Duration delay) override {
    return outer_->set_timer(delay);
  }
  void cancel_timer(std::uint64_t id) override { outer_->cancel_timer(id); }
  void submit_work(runtime::Duration cost_hint, std::function<Bytes()> work,
                   std::function<void(Bytes)> done) override {
    outer_->submit_work(cost_hint, std::move(work), std::move(done));
  }
  void charge_cpu(runtime::Duration cost) override { outer_->charge_cpu(cost); }
  Rng& rng() override { return outer_->rng(); }

 private:
  ByzantineReplica& owner_;
  runtime::Env* outer_ = nullptr;
};

ByzantineReplica::ByzantineReplica(Replica& inner, ByzantineBehavior behavior)
    : inner_(inner),
      behavior_(behavior),
      tamper_(std::make_unique<TamperEnv>(*this)) {}

ByzantineReplica::~ByzantineReplica() = default;

void ByzantineReplica::on_start(runtime::Env& env) {
  Actor::on_start(env);
  tamper_->attach(env);
  inner_.on_start(*tamper_);
}

void ByzantineReplica::on_message(runtime::ProcessId from, ByteView payload) {
  inner_.on_message(from, payload);
}

void ByzantineReplica::on_timer(std::uint64_t timer_id) {
  inner_.on_timer(timer_id);
}

void ByzantineReplica::on_recover() { inner_.on_recover(); }

}  // namespace bft::smr

#include "obs/trace.hpp"

#include <algorithm>
#include <array>
#include <bit>

#include "obs/metrics.hpp"

namespace bft::obs {

const char* trace_stage_name(TraceStage stage) {
  switch (stage) {
    case TraceStage::kSubmit:
      return "submit";
    case TraceStage::kPropose:
      return "propose";
    case TraceStage::kWriteQuorum:
      return "write_quorum";
    case TraceStage::kAccept:
      return "accept";
    case TraceStage::kBlockcut:
      return "blockcut";
    case TraceStage::kSign:
      return "sign";
    case TraceStage::kPush:
      return "push";
    case TraceStage::kFrontendAccept:
      return "frontend_accept";
  }
  return "unknown";
}

TraceRing::TraceRing(std::size_t capacity) {
  if (capacity < 2) capacity = 2;
  slots_.resize(std::bit_ceil(capacity));
}

void TraceRing::record(const TraceEvent& event) {
  const std::uint64_t slot = head_.fetch_add(1, std::memory_order_relaxed);
  slots_[slot & (slots_.size() - 1)] = event;
}

void TraceRing::record(TraceStage stage, std::int64_t at, std::uint32_t node,
                       std::uint32_t client, std::uint64_t seq,
                       std::uint64_t detail) {
  record(TraceEvent{at, node, client, seq, detail, stage});
}

std::uint64_t TraceRing::dropped() const {
  const std::uint64_t total = recorded();
  return total > slots_.size() ? total - slots_.size() : 0;
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  const std::uint64_t total = recorded();
  const std::size_t cap = slots_.size();
  const std::size_t live = total < cap ? static_cast<std::size_t>(total) : cap;
  std::vector<TraceEvent> out;
  out.reserve(live);
  const std::uint64_t first = total - live;
  for (std::uint64_t i = first; i < total; ++i) {
    out.push_back(slots_[i & (cap - 1)]);
  }
  return out;
}

namespace {

StageSummary summarize(const LatencyHistogram& h) {
  StageSummary s;
  s.count = h.count();
  s.p50 = h.quantile(0.50);
  s.p95 = h.quantile(0.95);
  s.p99 = h.quantile(0.99);
  s.max = h.max();
  s.mean = h.mean();
  return s;
}

}  // namespace

std::map<std::string, StageSummary> stage_breakdown(
    const std::vector<TraceEvent>& events) {
  // Canonical per-envelope pipeline order; adjacent present stages pair up.
  static constexpr std::array<TraceStage, 7> kChain = {
      TraceStage::kSubmit,   TraceStage::kPropose, TraceStage::kWriteQuorum,
      TraceStage::kAccept,   TraceStage::kBlockcut, TraceStage::kSign,
      TraceStage::kPush,
  };
  constexpr std::int64_t kUnset = -1;

  // First occurrence of each stage per envelope key.
  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::array<std::int64_t, kTraceStageCount>>
      per_envelope;
  // First push / first frontend_accept per block number.
  std::map<std::uint64_t, std::pair<std::int64_t, std::int64_t>> per_block;

  for (const TraceEvent& e : events) {
    if (e.detail != 0 && (e.stage == TraceStage::kPush ||
                          e.stage == TraceStage::kFrontendAccept)) {
      auto [it, inserted] =
          per_block.try_emplace(e.detail, std::pair{kUnset, kUnset});
      std::int64_t& slot = e.stage == TraceStage::kPush ? it->second.first
                                                        : it->second.second;
      if (slot == kUnset || e.at < slot) slot = e.at;
    }
    if (e.client == kBlockTraceClient) continue;  // block-level only
    const auto key = std::pair{static_cast<std::uint64_t>(e.client), e.seq};
    auto [it, inserted] = per_envelope.try_emplace(key);
    if (inserted) it->second.fill(kUnset);
    std::int64_t& slot = it->second[static_cast<std::size_t>(e.stage)];
    if (slot == kUnset || e.at < slot) slot = e.at;
  }

  // Accumulate transition samples into histograms, then summarize. Histograms
  // are heap-allocated: LatencyHistogram is large (720 atomic buckets) and the
  // set of observed transitions is small.
  std::map<std::string, std::unique_ptr<LatencyHistogram>> transitions;
  const auto record = [&transitions](const std::string& name, std::int64_t from,
                                     std::int64_t to) {
    if (from == kUnset || to == kUnset || to < from) return;
    auto [it, inserted] = transitions.try_emplace(name);
    if (inserted) it->second = std::make_unique<LatencyHistogram>();
    it->second->record(to - from);
  };

  for (const auto& [key, stages] : per_envelope) {
    std::size_t prev = kChain.size();  // sentinel: no earlier stage seen yet
    for (std::size_t i = 0; i < kChain.size(); ++i) {
      if (stages[static_cast<std::size_t>(kChain[i])] == kUnset) continue;
      if (prev != kChain.size()) {
        const std::string name =
            std::string(trace_stage_name(kChain[prev])) + "_to_" +
            trace_stage_name(kChain[i]);
        record(name, stages[static_cast<std::size_t>(kChain[prev])],
               stages[static_cast<std::size_t>(kChain[i])]);
      }
      prev = i;
    }
    record("submit_to_frontend_accept",
           stages[static_cast<std::size_t>(TraceStage::kSubmit)],
           stages[static_cast<std::size_t>(TraceStage::kFrontendAccept)]);
  }
  for (const auto& [block, times] : per_block) {
    record("push_to_frontend_accept", times.first, times.second);
  }

  std::map<std::string, StageSummary> out;
  for (const auto& [name, histogram] : transitions) {
    out.emplace(name, summarize(*histogram));
  }
  return out;
}

}  // namespace bft::obs

#include "obs/export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace bft::obs {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
      std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<std::int64_t>(value));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

namespace {

void append_kv(std::string& out, const std::string& key, const std::string& raw,
               bool& first) {
  if (!first) out += ",";
  first = false;
  out += "\"" + json_escape(key) + "\":" + raw;
}

std::string ns_to_ms(std::int64_t ns) {
  return json_number(static_cast<double>(ns) / 1e6);
}

}  // namespace

std::string to_json(const MetricsRegistry& registry, const TraceRing* trace,
                    const std::map<std::string, std::string>& labels,
                    const std::map<std::string, double>& run) {
  std::string out = "{";
  bool top_first = true;

  {
    std::string section;
    bool first = true;
    for (const auto& [k, v] : labels) {
      append_kv(section, k, "\"" + json_escape(v) + "\"", first);
    }
    append_kv(out, "labels", "{" + section + "}", top_first);
  }
  {
    std::string section;
    bool first = true;
    for (const auto& [k, v] : run) {
      append_kv(section, k, json_number(v), first);
    }
    append_kv(out, "run", "{" + section + "}", top_first);
  }

  std::string counters, gauges, histograms;
  bool counters_first = true, gauges_first = true, histograms_first = true;
  for (const auto& entry : registry.entries()) {
    switch (entry.kind) {
      case MetricsRegistry::Kind::kCounter:
        append_kv(counters, entry.name,
                  json_number(static_cast<double>(entry.counter->value())),
                  counters_first);
        break;
      case MetricsRegistry::Kind::kGauge:
        append_kv(gauges, entry.name,
                  json_number(static_cast<double>(entry.gauge->value())),
                  gauges_first);
        break;
      case MetricsRegistry::Kind::kHistogram: {
        const LatencyHistogram& h = *entry.histogram;
        std::string body;
        bool first = true;
        append_kv(body, "unit", "\"" + json_escape(entry.unit) + "\"", first);
        append_kv(body, "count",
                  json_number(static_cast<double>(h.count())), first);
        append_kv(body, "p50",
                  json_number(static_cast<double>(h.quantile(0.50))), first);
        append_kv(body, "p95",
                  json_number(static_cast<double>(h.quantile(0.95))), first);
        append_kv(body, "p99",
                  json_number(static_cast<double>(h.quantile(0.99))), first);
        append_kv(body, "max", json_number(static_cast<double>(h.max())),
                  first);
        append_kv(body, "mean", json_number(h.mean()), first);
        append_kv(histograms, entry.name, "{" + body + "}", histograms_first);
        break;
      }
    }
  }
  append_kv(out, "counters", "{" + counters + "}", top_first);
  append_kv(out, "gauges", "{" + gauges + "}", top_first);
  append_kv(out, "histograms", "{" + histograms + "}", top_first);

  if (trace != nullptr) {
    std::string section;
    bool first = true;
    append_kv(section, "recorded",
              json_number(static_cast<double>(trace->recorded())), first);
    append_kv(section, "dropped",
              json_number(static_cast<double>(trace->dropped())), first);
    std::string stages;
    bool stages_first = true;
    for (const auto& [name, s] : stage_breakdown(trace->snapshot())) {
      std::string body;
      bool body_first = true;
      append_kv(body, "count", json_number(static_cast<double>(s.count)),
                body_first);
      append_kv(body, "p50_ms", ns_to_ms(s.p50), body_first);
      append_kv(body, "p95_ms", ns_to_ms(s.p95), body_first);
      append_kv(body, "p99_ms", ns_to_ms(s.p99), body_first);
      append_kv(body, "max_ms", ns_to_ms(s.max), body_first);
      append_kv(body, "mean_ms",
                json_number(s.mean / 1e6), body_first);
      append_kv(stages, name, "{" + body + "}", stages_first);
    }
    append_kv(section, "stages", "{" + stages + "}", first);
    append_kv(out, "trace", "{" + section + "}", top_first);
  }

  out += "}";
  return out;
}

}  // namespace bft::obs

// JSON export of a metrics registry plus an optional trace breakdown.
//
// The exporter is deliberately dependency-free (hand-rolled serialization, no
// third-party JSON library) and deterministic: maps are emitted in sorted key
// order and doubles with a fixed format, so the same sim seed produces
// byte-identical output. The schema is documented in OBSERVABILITY.md:
//
//   {
//     "labels":     { "<k>": "<v>", ... },              // run metadata
//     "run":        { "<k>": <number>, ... },           // headline results
//     "counters":   { "<name>": <u64>, ... },
//     "gauges":     { "<name>": <i64>, ... },
//     "histograms": { "<name>": {"unit","count","p50","p95","p99","max","mean"} },
//     "trace":      { "recorded", "dropped",
//                     "stages": { "<from>_to_<to>": {"count","p50_ms",...} } }
//   }
#pragma once

#include <map>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bft::obs {

/// Serializes one run. `labels` and `run` attach caller-supplied metadata
/// (bench name, config knobs) and headline numbers (throughput); either may be
/// empty. `trace` may be null when only the registry is wanted. The trace is
/// snapshotted inside — call at a quiescent point.
std::string to_json(const MetricsRegistry& registry, const TraceRing* trace,
                    const std::map<std::string, std::string>& labels = {},
                    const std::map<std::string, double>& run = {});

/// Escapes a string for embedding in a JSON document (quotes not included).
std::string json_escape(const std::string& text);

/// Formats a double the way the exporter does ("%.6g", with bare integers
/// kept integral). Exposed so golden tests and callers stay in sync.
std::string json_number(double value);

}  // namespace bft::obs

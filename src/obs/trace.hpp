// Per-envelope lifecycle tracing for the ordering pipeline.
//
// Every envelope is keyed by (client, seq) — the frontend's process id and the
// per-frontend request sequence number, the same identity `smr::Request`
// carries through consensus — and passes through up to eight traced stages:
//
//   submit          frontend hands the envelope to the cluster
//   propose         envelope appears in a PROPOSE batch accepted by a replica
//   write_quorum    the replica observes a WRITE quorum for that batch
//   accept          the batch decides (ACCEPT quorum / Mod-SMaRt decision)
//   blockcut        the blockcutter seals the envelope into a block
//   sign            the block's signing job is submitted to the signer pool
//   push            the signed block is handed to the network fan-out
//   frontend_accept the receiving frontend assembles its delivery quorum
//
// Events land in a fixed-capacity overwriting ring (TraceRing): recording is
// wait-free and allocation-free, old events are overwritten once the ring
// wraps, and `snapshot()` reconstructs the surviving events oldest-first at a
// quiescent point (after a sim run, between panels). `stage_breakdown()` then
// folds a snapshot into per-stage latency summaries — the machine-readable
// "where does time go" table the benches export as JSON.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bft::obs {

enum class TraceStage : std::uint8_t {
  kSubmit = 0,
  kPropose,
  kWriteQuorum,
  kAccept,
  kBlockcut,
  kSign,
  kPush,
  kFrontendAccept,
};

inline constexpr std::size_t kTraceStageCount = 8;

/// Stable lower_snake_case name used in JSON exports and docs.
const char* trace_stage_name(TraceStage stage);

/// Sentinel `client` for block-granularity events: frontends cannot recover
/// the (client, seq) of envelopes they did not submit themselves, so delivery
/// is additionally traced once per block under this client with seq = block
/// number. `detail` carries the block number on blockcut/sign/push/
/// frontend_accept events, which lets stage_breakdown() pair the node's push
/// with the probe frontend's delivery even when the envelope key is unknown.
inline constexpr std::uint32_t kBlockTraceClient = 0xffffffffu;

struct TraceEvent {
  std::int64_t at = 0;       // Env::now() — sim ns or wall-clock ns
  std::uint32_t node = 0;    // process id of the emitting actor
  std::uint32_t client = 0;  // submitting frontend (or kBlockTraceClient)
  std::uint64_t seq = 0;     // per-client request sequence (or block number)
  std::uint64_t detail = 0;  // stage-specific: consensus id or block number
  TraceStage stage = TraceStage::kSubmit;
};

/// Fixed-capacity overwriting event ring. record() claims a slot with one
/// relaxed fetch_add and writes it in place — wait-free, no allocation. Slots
/// are plain structs, so a writer lapping the ring while another thread still
/// writes the same slot (or while snapshot() runs) is a data race by the
/// letter; in this codebase recording happens from actor callbacks and
/// snapshots are taken at quiescent points, so the ring is only ever read
/// after writers stop. Capacity is rounded up to a power of two.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 1 << 16);

  void record(const TraceEvent& event);
  void record(TraceStage stage, std::int64_t at, std::uint32_t node,
              std::uint32_t client, std::uint64_t seq, std::uint64_t detail = 0);

  std::size_t capacity() const { return slots_.size(); }
  /// Total events ever recorded (including overwritten ones).
  std::uint64_t recorded() const { return head_.load(std::memory_order_relaxed); }
  /// Events lost to wraparound: recorded() - capacity(), floored at zero.
  std::uint64_t dropped() const;

  /// Surviving events, oldest-first. Call only while no recording is active.
  std::vector<TraceEvent> snapshot() const;

 private:
  std::vector<TraceEvent> slots_;
  std::atomic<std::uint64_t> head_{0};
};

/// Latency summary for one stage transition, in nanoseconds.
struct StageSummary {
  std::uint64_t count = 0;
  std::int64_t p50 = 0;
  std::int64_t p95 = 0;
  std::int64_t p99 = 0;
  std::int64_t max = 0;
  double mean = 0.0;
};

/// Folds a trace snapshot into per-transition latency summaries keyed
/// "<from>_to_<to>" (e.g. "propose_to_write_quorum").
///
/// Two pairing passes run:
///  - per-envelope: events grouped by (client, seq); for each adjacent pair of
///    *present* stages in the canonical submit→push order, the delta between
///    the first occurrence of each stage is one sample. When both submit and
///    frontend_accept exist for a key (the frontend both submitted and
///    received the envelope, as in the geo benches), "submit_to_frontend_accept"
///    records the end-to-end latency.
///  - per-block: push and frontend_accept events with a nonzero block number
///    in `detail` are grouped by block; the delta between the node's first
///    push and the probe frontend's first delivery of that block becomes a
///    "push_to_frontend_accept" sample. This closes the chain in the LAN bench
///    where receivers never see the envelope keys they deliver.
///
/// Missing stages (ring wraparound, partial runs) simply contribute no sample;
/// negative deltas (clock skew across real processes) are discarded.
std::map<std::string, StageSummary> stage_breakdown(
    const std::vector<TraceEvent>& events);

}  // namespace bft::obs

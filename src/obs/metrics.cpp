#include "obs/metrics.hpp"

#include <stdexcept>

namespace bft::obs {

void LatencyHistogram::record(std::int64_t value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::int64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::size_t LatencyHistogram::bucket_index(std::int64_t value) {
  if (value < 0) return 0;
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  const int octave = std::bit_width(static_cast<std::uint64_t>(value)) - 1;
  if (octave > kMaxOctave) return kBucketCount - 1;
  const std::size_t sub =
      static_cast<std::size_t>(value >> (octave - kSubBits)) & (kSubBuckets - 1);
  return kSubBuckets + static_cast<std::size_t>(octave - kSubBits) * kSubBuckets +
         sub;
}

std::int64_t LatencyHistogram::bucket_lower(std::size_t index) {
  if (index < kSubBuckets) return static_cast<std::int64_t>(index);
  const std::size_t rel = index - kSubBuckets;
  const int octave = kSubBits + static_cast<int>(rel / kSubBuckets);
  const std::int64_t sub = static_cast<std::int64_t>(rel % kSubBuckets);
  return (std::int64_t{1} << octave) + (sub << (octave - kSubBits));
}

std::int64_t LatencyHistogram::bucket_width(std::size_t index) {
  if (index < kSubBuckets) return 1;
  const int octave = kSubBits + static_cast<int>((index - kSubBuckets) / kSubBuckets);
  return std::int64_t{1} << (octave - kSubBits);
}

std::int64_t LatencyHistogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank: the smallest rank r (1-based) with r >= q * total.
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (static_cast<double>(rank) < q * static_cast<double>(total)) ++rank;
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      return bucket_lower(i) + bucket_width(i) / 2;
    }
  }
  // Counts moved concurrently with the walk; fall back to the max estimate.
  return max();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  std::lock_guard lock(mu_);
  auto [it, inserted] = slots_.try_emplace(name);
  if (inserted) {
    it->second.kind = Kind::kCounter;
    it->second.help = help;
    it->second.counter = std::make_unique<Counter>();
  } else if (it->second.kind != Kind::kCounter) {
    throw std::invalid_argument("metric '" + name +
                                "' already registered with a different kind");
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard lock(mu_);
  auto [it, inserted] = slots_.try_emplace(name);
  if (inserted) {
    it->second.kind = Kind::kGauge;
    it->second.help = help;
    it->second.gauge = std::make_unique<Gauge>();
  } else if (it->second.kind != Kind::kGauge) {
    throw std::invalid_argument("metric '" + name +
                                "' already registered with a different kind");
  }
  return *it->second.gauge;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name,
                                             const std::string& unit,
                                             const std::string& help) {
  std::lock_guard lock(mu_);
  auto [it, inserted] = slots_.try_emplace(name);
  if (inserted) {
    it->second.kind = Kind::kHistogram;
    it->second.unit = unit;
    it->second.help = help;
    it->second.histogram = std::make_unique<LatencyHistogram>();
  } else if (it->second.kind != Kind::kHistogram) {
    throw std::invalid_argument("metric '" + name +
                                "' already registered with a different kind");
  }
  return *it->second.histogram;
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::entries() const {
  std::lock_guard lock(mu_);
  std::vector<Entry> out;
  out.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) {
    Entry e;
    e.name = name;
    e.unit = slot.unit;
    e.help = slot.help;
    e.kind = slot.kind;
    e.counter = slot.counter.get();
    e.gauge = slot.gauge.get();
    e.histogram = slot.histogram.get();
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace bft::obs

// Lock-light metrics primitives for the ordering pipeline.
//
// The registry hands out stable references to three instrument kinds:
//
//   Counter           monotonic u64, relaxed atomic increments
//   Gauge             signed i64 level, set/add with relaxed atomics
//   LatencyHistogram  fixed-bucket log-linear histogram (HdrHistogram-lite)
//                     with p50/p95/p99 quantile queries
//
// All hot-path operations (add/set/record) are wait-free and allocation-free;
// only instrument registration and export-time snapshots take the registry
// mutex. Instruments are registered by name exactly once — repeated lookups
// with the same name and kind return the same object, so several actors can
// share one registry and their increments aggregate. Every metric name that
// appears in code must be documented in OBSERVABILITY.md (enforced by
// scripts/check_docs.sh, wired into ctest as `docs_lint`).
//
// Timestamps and recorded latencies are plain int64 values; the pipeline
// records nanoseconds as stamped by the runtime `Env` (simulated time under
// SimCluster, wall time under RealCluster).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bft::obs {

/// Monotonic counter. add() is wait-free; value() is a relaxed read intended
/// for quiescent export points (between sim events or after a run).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, pending requests, ...). Unlike Counter it
/// may move in both directions and may be overwritten with set().
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log-linear latency histogram with fixed storage.
///
/// Layout: values below 2^kSubBits land in unit-width linear buckets; above
/// that, each power-of-two octave is split into 2^kSubBits equal sub-buckets
/// (relative quantile error <= 1/16 ~ 6%). With kMaxOctave = 47 the histogram
/// spans [0, 2^48) — about 3.3 days in nanoseconds — in 720 buckets; larger
/// values clamp into the last bucket. record() is wait-free and touches one
/// bucket plus the count/sum/max scalars; no allocation ever happens after
/// construction.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBits;  // 16
  static constexpr int kMaxOctave = 47;
  // Octaves kSubBits..kMaxOctave inclusive each contribute kSubBuckets buckets
  // on top of the linear region: 16 + 44 * 16 = 720.
  static constexpr std::size_t kBucketCount =
      kSubBuckets +
      static_cast<std::size_t>(kMaxOctave - kSubBits + 1) * kSubBuckets;
  static_assert(kBucketCount == 720);

  void record(std::int64_t value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;

  /// Nearest-rank quantile (q in [0,1]) over the bucketed samples; returns the
  /// midpoint of the bucket holding the ranked sample (exact for values below
  /// 2^kSubBits, <= 1/16 relative error above). Returns 0 when empty.
  std::int64_t quantile(double q) const;

  /// Maps a value to its bucket index (negative values clamp to bucket 0,
  /// values >= 2^48 clamp to the last bucket). Exposed for tests.
  static std::size_t bucket_index(std::int64_t value);
  /// Inclusive lower bound of a bucket. Exposed for tests.
  static std::int64_t bucket_lower(std::size_t index);
  /// Width of a bucket (1 in the linear region, 2^(octave-4) above).
  static std::int64_t bucket_width(std::size_t index);

 private:
  std::atomic<std::uint64_t> buckets_[kBucketCount]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Named instrument directory. Thread-safe; returned references stay valid for
/// the registry's lifetime (instruments are heap-allocated and never erased).
class MetricsRegistry {
 public:
  /// Returns the counter registered under `name`, creating it on first use.
  /// Throws std::invalid_argument if `name` is already bound to another kind.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  /// `unit` is free-form metadata carried into the export ("ns", "envelopes").
  LatencyHistogram& histogram(const std::string& name,
                              const std::string& unit = "ns",
                              const std::string& help = "");

  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    std::string unit;
    std::string help;
    Kind kind;
    const Counter* counter = nullptr;        // set when kind == kCounter
    const Gauge* gauge = nullptr;            // set when kind == kGauge
    const LatencyHistogram* histogram = nullptr;  // set when kind == kHistogram
  };

  /// Snapshot of all registered instruments, sorted by name. The pointed-to
  /// instruments remain live (and may keep moving) after the call.
  std::vector<Entry> entries() const;

 private:
  struct Slot {
    std::string unit;
    std::string help;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Slot> slots_;
};

}  // namespace bft::obs

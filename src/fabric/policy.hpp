// Endorsement policies: which endorsing peers must sign a transaction for it
// to be valid (evaluated by clients before submission and re-checked by
// committing peers, §3 steps 3 and 5).
#pragma once

#include <set>

#include "runtime/actor.hpp"

namespace bft::fabric {

/// K-of-N policy over an explicit peer set (covers AND = N-of-N,
/// OR = 1-of-N, and majority policies).
class EndorsementPolicy {
 public:
  EndorsementPolicy(std::set<runtime::ProcessId> peers, std::size_t required);

  static EndorsementPolicy any_of(std::set<runtime::ProcessId> peers) {
    return EndorsementPolicy(std::move(peers), 1);
  }
  static EndorsementPolicy all_of(std::set<runtime::ProcessId> peers);
  static EndorsementPolicy majority_of(std::set<runtime::ProcessId> peers);

  const std::set<runtime::ProcessId>& peers() const { return peers_; }
  std::size_t required() const { return required_; }
  bool is_member(runtime::ProcessId peer) const { return peers_.count(peer) > 0; }

  /// True iff the set of peers with verified endorsements satisfies K-of-N.
  bool satisfied_by(const std::set<runtime::ProcessId>& endorsers) const;

 private:
  std::set<runtime::ProcessId> peers_;
  std::size_t required_;
};

}  // namespace bft::fabric

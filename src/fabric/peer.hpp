// Fabric peer: endorses proposals (simulate + sign, step 2) and commits
// ordered blocks (validate endorsements + MVCC, apply write sets, append to
// its ledger copy, steps 5-6). Endorsement and validation may run on
// different peers — any peer can validate any block deterministically.
#pragma once

#include <memory>

#include "fabric/chaincode.hpp"
#include "fabric/policy.hpp"
#include "ledger/chain.hpp"

namespace bft::fabric {

struct ProposalResponse {
  RwSet rwset;
  Endorsement endorsement;
};

/// Per-block validation record a committing peer produces.
struct BlockValidation {
  std::uint64_t block_number = 0;
  std::vector<TxValidation> results;  // one per envelope

  std::size_t valid_count() const;
};

class Peer {
 public:
  Peer(runtime::ProcessId id, std::string channel, EndorsementPolicy policy);

  runtime::ProcessId id() const { return id_; }

  /// Registers a chaincode (shared across peers is fine — stateless).
  void install_chaincode(std::shared_ptr<Chaincode> chaincode);

  // --- endorsement (step 2) ---
  /// Simulates the proposal against current state and signs the result.
  /// Fails when the chaincode is unknown or its invocation errors.
  Result<ProposalResponse> endorse(const Proposal& proposal) const;

  // --- validation + commit (steps 5-6) ---
  /// Validates every envelope, appends the block to the peer's ledger and
  /// applies the write sets of valid transactions. Blocks must arrive in
  /// order (the ordering-service frontend guarantees that).
  Result<BlockValidation> commit_block(const ledger::Block& block);

  /// Validation of a single envelope against current state (exposed for
  /// tests; commit_block applies it to each envelope in sequence).
  TxValidation validate(const Envelope& envelope) const;

  const VersionedKvStore& state() const { return state_; }
  const ledger::BlockStore& ledger() const { return ledger_; }
  const std::vector<BlockValidation>& history() const { return history_; }
  std::uint64_t committed_valid_txs() const { return committed_valid_; }
  std::uint64_t committed_invalid_txs() const { return committed_invalid_; }

 private:
  runtime::ProcessId id_;
  std::string channel_;
  EndorsementPolicy policy_;
  crypto::PrivateKey signing_key_;
  std::map<std::string, std::shared_ptr<Chaincode>> chaincodes_;

  VersionedKvStore state_;
  ledger::BlockStore ledger_;
  std::vector<BlockValidation> history_;
  std::uint64_t committed_valid_ = 0;
  std::uint64_t committed_invalid_ = 0;
};

}  // namespace bft::fabric

// Fabric client: creates proposals, gathers endorsements from peers, checks
// that responses carry matching read/write sets and satisfy the endorsement
// policy, and assembles the signed envelope submitted to the ordering
// service (steps 1 and 3 of the HLF protocol).
#pragma once

#include "fabric/peer.hpp"

namespace bft::fabric {

class FabricClient {
 public:
  FabricClient(runtime::ProcessId id, std::string channel,
               EndorsementPolicy policy);

  runtime::ProcessId id() const { return id_; }

  /// Builds a proposal for a chaincode invocation (fresh nonce each call).
  Proposal make_proposal(const std::string& chaincode,
                         std::vector<std::string> args,
                         std::int64_t timestamp = 0);

  /// Runs the endorsement round against the given peers and assembles the
  /// envelope. Fails when responses disagree (read/write sets must match
  /// across endorsers) or too few endorsements satisfy the policy.
  Result<Envelope> collect_and_assemble(
      const Proposal& proposal, const std::vector<const Peer*>& endorsers);

  /// Assembles an envelope from pre-collected responses (for tests injecting
  /// faulty endorsements).
  Result<Envelope> assemble(const Proposal& proposal,
                            const std::vector<ProposalResponse>& responses);

 private:
  runtime::ProcessId id_;
  std::string channel_;
  EndorsementPolicy policy_;
  crypto::PrivateKey signing_key_;
  std::uint64_t next_nonce_ = 1;
};

}  // namespace bft::fabric

// Hyperledger Fabric v1 data model (the slice the ordering service and its
// surrounding execute-order-validate flow need): proposals, read/write sets
// over versioned keys, endorsements and envelopes.
//
// Envelopes are what the ordering service totally orders; it never inspects
// their contents (step 4 of the HLF protocol, §3).
#pragma once

#include <string>
#include <vector>

#include "common/serial.hpp"
#include "crypto/ecdsa.hpp"
#include "runtime/actor.hpp"

namespace bft::fabric {

/// A chaincode invocation requested by a client (step 1 of the protocol).
struct Proposal {
  std::string channel;
  std::string chaincode;
  std::vector<std::string> args;
  std::uint32_t client = 0;
  std::uint64_t nonce = 0;  // client-chosen uniqueness
  std::int64_t timestamp = 0;

  Bytes encode() const;
  static Proposal decode(ByteView data);
  /// Digest clients sign and peers bind their endorsement to.
  crypto::Hash256 digest() const;
};

/// One versioned read recorded during simulation (step 2).
struct ReadEntry {
  std::string key;
  std::uint64_t version = 0;  // 0 = key did not exist

  bool operator==(const ReadEntry& other) const = default;
};

/// One write produced during simulation; applied only if the transaction
/// validates (step 6).
struct WriteEntry {
  std::string key;
  Bytes value;
  bool is_delete = false;

  bool operator==(const WriteEntry& other) const = default;
};

/// Result of simulating a transaction against a peer's current state.
struct RwSet {
  std::vector<ReadEntry> reads;
  std::vector<WriteEntry> writes;
  Bytes response;  // chaincode return value shown to the client

  Bytes encode() const;
  static RwSet decode(ByteView data);
  bool operator==(const RwSet& other) const = default;
};

/// An endorsing peer's signature over (proposal digest, rwset) (step 2).
struct Endorsement {
  runtime::ProcessId peer = 0;
  Bytes signature;
};

/// Digest an endorsement signs: binds proposal and simulation result.
crypto::Hash256 endorsement_digest(const Proposal& proposal, const RwSet& rwset);

/// The client-assembled transaction submitted to the ordering service
/// (steps 3-4): proposal + rwset + endorsements, signed by the client.
struct Envelope {
  Proposal proposal;
  RwSet rwset;
  std::vector<Endorsement> endorsements;
  Bytes client_signature;

  Bytes encode() const;
  static Envelope decode(ByteView data);
  /// Transaction id (digest over the signed content).
  crypto::Hash256 tx_id() const;
  /// Digest covered by the client signature.
  crypto::Hash256 signing_digest() const;
};

/// Validation outcome recorded on the ledger for every transaction (invalid
/// transactions are appended too — they are just not executed, §3 step 6).
enum class TxValidation : std::uint8_t {
  valid = 0,
  bad_envelope = 1,        // undecodable payload
  bad_client_signature = 2,
  endorsement_policy_failure = 3,
  mvcc_conflict = 4,       // read-set version mismatch
};

const char* to_string(TxValidation v);

}  // namespace bft::fabric

#include "fabric/types.hpp"

namespace bft::fabric {

Bytes Proposal::encode() const {
  Writer w;
  w.str(channel);
  w.str(chaincode);
  w.u32(static_cast<std::uint32_t>(args.size()));
  for (const auto& a : args) w.str(a);
  w.u32(client);
  w.u64(nonce);
  w.i64(timestamp);
  return std::move(w).take();
}

Proposal Proposal::decode(ByteView data) {
  Reader r(data);
  Proposal p;
  p.channel = r.str();
  p.chaincode = r.str();
  const std::uint32_t argc = r.u32();
  p.args.reserve(r.safe_reserve(argc));
  for (std::uint32_t i = 0; i < argc; ++i) p.args.push_back(r.str());
  p.client = r.u32();
  p.nonce = r.u64();
  p.timestamp = r.i64();
  r.expect_done();
  return p;
}

crypto::Hash256 Proposal::digest() const {
  Bytes domain = to_bytes("fabric.proposal:");
  append(domain, encode());
  return crypto::sha256(domain);
}

Bytes RwSet::encode() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(reads.size()));
  for (const auto& read : reads) {
    w.str(read.key);
    w.u64(read.version);
  }
  w.u32(static_cast<std::uint32_t>(writes.size()));
  for (const auto& write : writes) {
    w.str(write.key);
    w.bytes(write.value);
    w.boolean(write.is_delete);
  }
  w.bytes(response);
  return std::move(w).take();
}

RwSet RwSet::decode(ByteView data) {
  Reader r(data);
  RwSet set;
  const std::uint32_t reads = r.u32();
  set.reads.reserve(r.safe_reserve(reads));
  for (std::uint32_t i = 0; i < reads; ++i) {
    ReadEntry e;
    e.key = r.str();
    e.version = r.u64();
    set.reads.push_back(std::move(e));
  }
  const std::uint32_t writes = r.u32();
  set.writes.reserve(r.safe_reserve(writes));
  for (std::uint32_t i = 0; i < writes; ++i) {
    WriteEntry e;
    e.key = r.str();
    e.value = r.bytes();
    e.is_delete = r.boolean();
    set.writes.push_back(std::move(e));
  }
  set.response = r.bytes();
  r.expect_done();
  return set;
}

crypto::Hash256 endorsement_digest(const Proposal& proposal, const RwSet& rwset) {
  Writer w;
  w.str("fabric.endorsement");
  w.bytes(proposal.encode());
  w.bytes(rwset.encode());
  return crypto::sha256(w.data());
}

Bytes Envelope::encode() const {
  Writer w;
  w.bytes(proposal.encode());
  w.bytes(rwset.encode());
  w.u32(static_cast<std::uint32_t>(endorsements.size()));
  for (const auto& e : endorsements) {
    w.u32(e.peer);
    w.bytes(e.signature);
  }
  w.bytes(client_signature);
  return std::move(w).take();
}

Envelope Envelope::decode(ByteView data) {
  Reader r(data);
  Envelope env;
  env.proposal = Proposal::decode(r.bytes());
  env.rwset = RwSet::decode(r.bytes());
  const std::uint32_t endorsements = r.u32();
  env.endorsements.reserve(r.safe_reserve(endorsements));
  for (std::uint32_t i = 0; i < endorsements; ++i) {
    Endorsement e;
    e.peer = r.u32();
    e.signature = r.bytes();
    env.endorsements.push_back(std::move(e));
  }
  env.client_signature = r.bytes();
  r.expect_done();
  return env;
}

crypto::Hash256 Envelope::signing_digest() const {
  Writer w;
  w.str("fabric.envelope");
  w.bytes(proposal.encode());
  w.bytes(rwset.encode());
  w.u32(static_cast<std::uint32_t>(endorsements.size()));
  for (const auto& e : endorsements) {
    w.u32(e.peer);
    w.bytes(e.signature);
  }
  return crypto::sha256(w.data());
}

crypto::Hash256 Envelope::tx_id() const { return crypto::sha256(encode()); }

const char* to_string(TxValidation v) {
  switch (v) {
    case TxValidation::valid: return "valid";
    case TxValidation::bad_envelope: return "bad_envelope";
    case TxValidation::bad_client_signature: return "bad_client_signature";
    case TxValidation::endorsement_policy_failure:
      return "endorsement_policy_failure";
    case TxValidation::mvcc_conflict: return "mvcc_conflict";
  }
  return "?";
}

}  // namespace bft::fabric

// Chaincode (HLF's smart contracts, §3) and the stub recording read/write
// sets during simulation. Chaincode runs only at endorsement time, against a
// peer's current state; no ledger updates happen there.
#pragma once

#include <memory>

#include "common/result.hpp"
#include "fabric/kvstore.hpp"
#include "fabric/types.hpp"

namespace bft::fabric {

/// Read/write recorder handed to chaincode during simulation.
class ChaincodeStub {
 public:
  explicit ChaincodeStub(const VersionedKvStore& state) : state_(state) {}

  /// Reads a key, recording (key, committed version) in the read set.
  std::optional<Bytes> get(const std::string& key);
  /// Buffers a write (read-your-own-writes within the transaction).
  void put(const std::string& key, Bytes value);
  void erase(const std::string& key);

  /// Finalizes the simulation into an RwSet carrying `response`.
  RwSet take_rwset(Bytes response);

 private:
  const VersionedKvStore& state_;
  std::vector<ReadEntry> reads_;
  std::map<std::string, std::size_t> read_index_;
  std::vector<WriteEntry> writes_;
  std::map<std::string, std::size_t> write_index_;
};

class Chaincode {
 public:
  virtual ~Chaincode() = default;
  virtual const std::string& name() const = 0;
  /// Executes an invocation; returns the response payload or an error
  /// (errors abort endorsement).
  virtual Result<Bytes> invoke(ChaincodeStub& stub,
                               const std::vector<std::string>& args) = 0;
};

// --- sample chaincodes ---

/// Generic put/get/del store: ["put", key, value] / ["get", key] /
/// ["del", key].
class KvChaincode final : public Chaincode {
 public:
  const std::string& name() const override;
  Result<Bytes> invoke(ChaincodeStub& stub,
                       const std::vector<std::string>& args) override;
};

/// Token accounts with balance checks — the classic asset-transfer workload:
/// ["open", account, amount] / ["transfer", from, to, amount] /
/// ["balance", account]. Transfers conflict on hot accounts, exercising MVCC.
class TokenChaincode final : public Chaincode {
 public:
  const std::string& name() const override;
  Result<Bytes> invoke(ChaincodeStub& stub,
                       const std::vector<std::string>& args) override;
};

/// Asset registry with ownership transfer: ["create", id, owner, meta] /
/// ["transfer", id, new_owner] / ["query", id].
class AssetChaincode final : public Chaincode {
 public:
  const std::string& name() const override;
  Result<Bytes> invoke(ChaincodeStub& stub,
                       const std::vector<std::string>& args) override;
};

}  // namespace bft::fabric

#include "fabric/client.hpp"

#include "smr/replica.hpp"

namespace bft::fabric {

FabricClient::FabricClient(runtime::ProcessId id, std::string channel,
                           EndorsementPolicy policy)
    : id_(id),
      channel_(std::move(channel)),
      policy_(std::move(policy)),
      signing_key_(smr::process_signing_key(id)) {}

Proposal FabricClient::make_proposal(const std::string& chaincode,
                                     std::vector<std::string> args,
                                     std::int64_t timestamp) {
  Proposal p;
  p.channel = channel_;
  p.chaincode = chaincode;
  p.args = std::move(args);
  p.client = id_;
  p.nonce = next_nonce_++;
  p.timestamp = timestamp;
  return p;
}

Result<Envelope> FabricClient::collect_and_assemble(
    const Proposal& proposal, const std::vector<const Peer*>& endorsers) {
  std::vector<ProposalResponse> responses;
  std::string first_error;
  for (const Peer* peer : endorsers) {
    auto response = peer->endorse(proposal);
    if (response.ok()) {
      responses.push_back(std::move(response).take());
    } else if (first_error.empty()) {
      first_error = response.error();
    }
  }
  auto envelope = assemble(proposal, responses);
  if (!envelope.ok() && !first_error.empty()) {
    return Result<Envelope>::failure(envelope.error() +
                                     " (first endorsement error: " +
                                     first_error + ")");
  }
  return envelope;
}

Result<Envelope> FabricClient::assemble(
    const Proposal& proposal, const std::vector<ProposalResponse>& responses) {
  if (responses.empty()) {
    return Result<Envelope>::failure("assemble: no endorsements");
  }

  // All endorsers must have produced the identical read/write set (step 3);
  // peers with divergent state are dropped, not merged.
  const RwSet& reference = responses.front().rwset;
  std::set<runtime::ProcessId> endorsers;
  std::vector<Endorsement> endorsements;
  const crypto::Hash256 digest = endorsement_digest(proposal, reference);
  for (const ProposalResponse& r : responses) {
    if (!(r.rwset == reference)) continue;
    const auto sig = crypto::Signature::from_bytes(r.endorsement.signature);
    if (!sig.ok() || !smr::process_public_key(r.endorsement.peer)
                          .verify(digest, sig.value())) {
      continue;  // forged or corrupted endorsement
    }
    if (endorsers.insert(r.endorsement.peer).second) {
      endorsements.push_back(r.endorsement);
    }
  }
  if (!policy_.satisfied_by(endorsers)) {
    return Result<Envelope>::failure(
        "assemble: endorsement policy unsatisfied (" +
        std::to_string(endorsers.size()) + " matching endorsements)");
  }

  Envelope envelope;
  envelope.proposal = proposal;
  envelope.rwset = reference;
  envelope.endorsements = std::move(endorsements);
  envelope.client_signature =
      signing_key_.sign(envelope.signing_digest()).to_bytes();
  return envelope;
}

}  // namespace bft::fabric

#include "fabric/policy.hpp"

#include <stdexcept>

namespace bft::fabric {

EndorsementPolicy::EndorsementPolicy(std::set<runtime::ProcessId> peers,
                                     std::size_t required)
    : peers_(std::move(peers)), required_(required) {
  if (peers_.empty()) {
    throw std::invalid_argument("EndorsementPolicy: empty peer set");
  }
  if (required_ == 0 || required_ > peers_.size()) {
    throw std::invalid_argument("EndorsementPolicy: required outside [1, N]");
  }
}

EndorsementPolicy EndorsementPolicy::all_of(std::set<runtime::ProcessId> peers) {
  const std::size_t n = peers.size();
  return EndorsementPolicy(std::move(peers), n);
}

EndorsementPolicy EndorsementPolicy::majority_of(
    std::set<runtime::ProcessId> peers) {
  const std::size_t n = peers.size();
  return EndorsementPolicy(std::move(peers), n / 2 + 1);
}

bool EndorsementPolicy::satisfied_by(
    const std::set<runtime::ProcessId>& endorsers) const {
  std::size_t hits = 0;
  for (runtime::ProcessId p : endorsers) {
    if (peers_.count(p) > 0) ++hits;
  }
  return hits >= required_;
}

}  // namespace bft::fabric

#include "fabric/kvstore.hpp"

namespace bft::fabric {

std::optional<Bytes> VersionedKvStore::get(const std::string& key) const {
  const auto it = slots_.find(key);
  if (it == slots_.end()) return std::nullopt;
  return it->second.value;
}

std::uint64_t VersionedKvStore::version_of(const std::string& key) const {
  const auto it = slots_.find(key);
  return it == slots_.end() ? 0 : it->second.version;
}

void VersionedKvStore::put(const std::string& key, Bytes value) {
  Slot& slot = slots_[key];
  if (!slot.value.has_value()) ++live_count_;
  slot.value = std::move(value);
  ++slot.version;
}

void VersionedKvStore::erase(const std::string& key) {
  const auto it = slots_.find(key);
  if (it == slots_.end() || !it->second.value.has_value()) return;
  it->second.value.reset();
  ++it->second.version;
  --live_count_;
}

}  // namespace bft::fabric

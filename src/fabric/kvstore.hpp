// The peers' world state: a versioned key/value store (HLF models state as
// versioned keys; read sets recorded at simulation time are validated against
// committed versions — MVCC, §3 step 5).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace bft::fabric {

class VersionedKvStore {
 public:
  struct Entry {
    Bytes value;
    std::uint64_t version = 0;
  };

  /// Value if present.
  std::optional<Bytes> get(const std::string& key) const;
  /// Committed version of a key; 0 when absent.
  std::uint64_t version_of(const std::string& key) const;

  /// Writes a value, bumping the key's version.
  void put(const std::string& key, Bytes value);
  /// Deletes a key; future version_of returns a bumped tombstone version so
  /// stale reads of the deleted key are detected.
  void erase(const std::string& key);

  std::size_t size() const { return live_count_; }

 private:
  struct Slot {
    std::optional<Bytes> value;  // nullopt = deleted tombstone
    std::uint64_t version = 0;
  };
  std::map<std::string, Slot> slots_;
  std::size_t live_count_ = 0;
};

}  // namespace bft::fabric

#include "fabric/peer.hpp"

#include "smr/replica.hpp"  // process signing keys (simulated PKI)

namespace bft::fabric {

std::size_t BlockValidation::valid_count() const {
  std::size_t n = 0;
  for (TxValidation v : results) {
    if (v == TxValidation::valid) ++n;
  }
  return n;
}

Peer::Peer(runtime::ProcessId id, std::string channel, EndorsementPolicy policy)
    : id_(id),
      channel_(std::move(channel)),
      policy_(std::move(policy)),
      signing_key_(smr::process_signing_key(id)),
      ledger_(channel_) {}

void Peer::install_chaincode(std::shared_ptr<Chaincode> chaincode) {
  if (chaincode == nullptr) {
    throw std::invalid_argument("install_chaincode: null chaincode");
  }
  chaincodes_[chaincode->name()] = std::move(chaincode);
}

Result<ProposalResponse> Peer::endorse(const Proposal& proposal) const {
  if (proposal.channel != channel_) {
    return Result<ProposalResponse>::failure("endorse: wrong channel");
  }
  const auto it = chaincodes_.find(proposal.chaincode);
  if (it == chaincodes_.end()) {
    return Result<ProposalResponse>::failure("endorse: unknown chaincode " +
                                             proposal.chaincode);
  }
  ChaincodeStub stub(state_);
  auto result = it->second->invoke(stub, proposal.args);
  if (!result.ok()) {
    return Result<ProposalResponse>::failure("endorse: " + result.error());
  }
  ProposalResponse response;
  response.rwset = stub.take_rwset(std::move(result).take());
  response.endorsement.peer = id_;
  response.endorsement.signature =
      signing_key_.sign(endorsement_digest(proposal, response.rwset)).to_bytes();
  return response;
}

TxValidation Peer::validate(const Envelope& envelope) const {
  // 1. Client signature over the assembled envelope.
  const auto client_sig = crypto::Signature::from_bytes(envelope.client_signature);
  if (!client_sig.ok() ||
      !smr::process_public_key(envelope.proposal.client)
           .verify(envelope.signing_digest(), client_sig.value())) {
    return TxValidation::bad_client_signature;
  }

  // 2. Endorsement policy over verified endorsement signatures.
  const crypto::Hash256 digest =
      endorsement_digest(envelope.proposal, envelope.rwset);
  std::set<runtime::ProcessId> valid_endorsers;
  for (const Endorsement& e : envelope.endorsements) {
    if (!policy_.is_member(e.peer)) continue;
    const auto sig = crypto::Signature::from_bytes(e.signature);
    if (sig.ok() &&
        smr::process_public_key(e.peer).verify(digest, sig.value())) {
      valid_endorsers.insert(e.peer);
    }
  }
  if (!policy_.satisfied_by(valid_endorsers)) {
    return TxValidation::endorsement_policy_failure;
  }

  // 3. MVCC: every read must still see the version it saw at simulation.
  for (const ReadEntry& read : envelope.rwset.reads) {
    if (state_.version_of(read.key) != read.version) {
      return TxValidation::mvcc_conflict;
    }
  }
  return TxValidation::valid;
}

Result<BlockValidation> Peer::commit_block(const ledger::Block& block) {
  // Chain the block first; a block that does not extend the ledger must not
  // touch the state.
  const Status appended = ledger_.append(block);
  if (!appended.is_ok()) {
    return Result<BlockValidation>::failure("commit_block: " + appended.error());
  }

  BlockValidation record;
  record.block_number = block.header.number;
  record.results.reserve(block.envelopes.size());

  // Validation is sequential within the block: a transaction sees the writes
  // of valid transactions that precede it (HLF's committer semantics).
  for (const Bytes& raw : block.envelopes) {
    Envelope envelope;
    try {
      envelope = Envelope::decode(raw);
    } catch (const DecodeError&) {
      record.results.push_back(TxValidation::bad_envelope);
      continue;
    }
    const TxValidation verdict = validate(envelope);
    record.results.push_back(verdict);
    if (verdict != TxValidation::valid) continue;
    for (const WriteEntry& write : envelope.rwset.writes) {
      if (write.is_delete) {
        state_.erase(write.key);
      } else {
        state_.put(write.key, write.value);
      }
    }
  }

  // Invalid transactions stay on the ledger too (step 6) — they were
  // appended above, merely not executed.
  for (TxValidation v : record.results) {
    if (v == TxValidation::valid) {
      ++committed_valid_;
    } else {
      ++committed_invalid_;
    }
  }
  history_.push_back(record);
  return record;
}

}  // namespace bft::fabric

#include "fabric/chaincode.hpp"

#include <charconv>

namespace bft::fabric {

std::optional<Bytes> ChaincodeStub::get(const std::string& key) {
  // Read-your-own-writes within the running transaction.
  const auto w = write_index_.find(key);
  if (w != write_index_.end()) {
    const WriteEntry& entry = writes_[w->second];
    if (entry.is_delete) return std::nullopt;
    return entry.value;
  }
  if (read_index_.count(key) == 0) {
    read_index_[key] = reads_.size();
    reads_.push_back(ReadEntry{key, state_.version_of(key)});
  }
  return state_.get(key);
}

void ChaincodeStub::put(const std::string& key, Bytes value) {
  const auto it = write_index_.find(key);
  if (it != write_index_.end()) {
    writes_[it->second] = WriteEntry{key, std::move(value), false};
    return;
  }
  write_index_[key] = writes_.size();
  writes_.push_back(WriteEntry{key, std::move(value), false});
}

void ChaincodeStub::erase(const std::string& key) {
  const auto it = write_index_.find(key);
  if (it != write_index_.end()) {
    writes_[it->second] = WriteEntry{key, {}, true};
    return;
  }
  write_index_[key] = writes_.size();
  writes_.push_back(WriteEntry{key, {}, true});
}

RwSet ChaincodeStub::take_rwset(Bytes response) {
  RwSet set;
  set.reads = std::move(reads_);
  set.writes = std::move(writes_);
  set.response = std::move(response);
  reads_.clear();
  writes_.clear();
  read_index_.clear();
  write_index_.clear();
  return set;
}

namespace {

Result<std::int64_t> parse_amount(const std::string& text) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return Result<std::int64_t>::failure("invalid amount: " + text);
  }
  return value;
}

Result<std::int64_t> read_balance(ChaincodeStub& stub, const std::string& account) {
  const auto raw = stub.get("acct:" + account);
  if (!raw.has_value()) {
    return Result<std::int64_t>::failure("no such account: " + account);
  }
  return parse_amount(bft::to_string(*raw));
}

void write_balance(ChaincodeStub& stub, const std::string& account,
                   std::int64_t balance) {
  stub.put("acct:" + account, to_bytes(std::to_string(balance)));
}

}  // namespace

const std::string& KvChaincode::name() const {
  static const std::string n = "kv";
  return n;
}

Result<Bytes> KvChaincode::invoke(ChaincodeStub& stub,
                                  const std::vector<std::string>& args) {
  if (args.empty()) return Result<Bytes>::failure("kv: missing operation");
  const std::string& op = args[0];
  if (op == "put" && args.size() == 3) {
    stub.put(args[1], to_bytes(args[2]));
    return to_bytes("ok");
  }
  if (op == "get" && args.size() == 2) {
    const auto value = stub.get(args[1]);
    if (!value.has_value()) return Result<Bytes>::failure("kv: no such key");
    return *value;
  }
  if (op == "del" && args.size() == 2) {
    stub.erase(args[1]);
    return to_bytes("ok");
  }
  return Result<Bytes>::failure("kv: bad invocation");
}

const std::string& TokenChaincode::name() const {
  static const std::string n = "token";
  return n;
}

Result<Bytes> TokenChaincode::invoke(ChaincodeStub& stub,
                                     const std::vector<std::string>& args) {
  if (args.empty()) return Result<Bytes>::failure("token: missing operation");
  const std::string& op = args[0];
  if (op == "open" && args.size() == 3) {
    if (stub.get("acct:" + args[1]).has_value()) {
      return Result<Bytes>::failure("token: account exists");
    }
    auto amount = parse_amount(args[2]);
    if (!amount.ok()) return Result<Bytes>::failure(amount.error());
    if (amount.value() < 0) return Result<Bytes>::failure("token: negative opening");
    write_balance(stub, args[1], amount.value());
    return to_bytes("ok");
  }
  if (op == "transfer" && args.size() == 4) {
    auto amount = parse_amount(args[3]);
    if (!amount.ok()) return Result<Bytes>::failure(amount.error());
    if (amount.value() <= 0) return Result<Bytes>::failure("token: non-positive amount");
    auto from = read_balance(stub, args[1]);
    if (!from.ok()) return Result<Bytes>::failure(from.error());
    auto to = read_balance(stub, args[2]);
    if (!to.ok()) return Result<Bytes>::failure(to.error());
    if (from.value() < amount.value()) {
      return Result<Bytes>::failure("token: insufficient funds");
    }
    write_balance(stub, args[1], from.value() - amount.value());
    write_balance(stub, args[2], to.value() + amount.value());
    return to_bytes("ok");
  }
  if (op == "balance" && args.size() == 2) {
    auto balance = read_balance(stub, args[1]);
    if (!balance.ok()) return Result<Bytes>::failure(balance.error());
    return to_bytes(std::to_string(balance.value()));
  }
  return Result<Bytes>::failure("token: bad invocation");
}

const std::string& AssetChaincode::name() const {
  static const std::string n = "asset";
  return n;
}

Result<Bytes> AssetChaincode::invoke(ChaincodeStub& stub,
                                     const std::vector<std::string>& args) {
  if (args.empty()) return Result<Bytes>::failure("asset: missing operation");
  const std::string& op = args[0];
  if (op == "create" && args.size() == 4) {
    const std::string key = "asset:" + args[1];
    if (stub.get(key).has_value()) {
      return Result<Bytes>::failure("asset: already exists");
    }
    stub.put(key, to_bytes(args[2] + "|" + args[3]));
    return to_bytes("ok");
  }
  if (op == "transfer" && args.size() == 3) {
    const std::string key = "asset:" + args[1];
    const auto current = stub.get(key);
    if (!current.has_value()) return Result<Bytes>::failure("asset: no such asset");
    const std::string text = bft::to_string(*current);
    const auto sep = text.find('|');
    stub.put(key, to_bytes(args[2] + "|" +
                           (sep == std::string::npos ? "" : text.substr(sep + 1))));
    return to_bytes("ok");
  }
  if (op == "query" && args.size() == 2) {
    const auto current = stub.get("asset:" + args[1]);
    if (!current.has_value()) return Result<Bytes>::failure("asset: no such asset");
    return *current;
  }
  return Result<Bytes>::failure("asset: bad invocation");
}

}  // namespace bft::fabric

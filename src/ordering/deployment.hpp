// Convenience builder assembling a complete ordering service (nodes + their
// replicas) ready for registration with either runtime. Used by tests,
// examples and the benchmark harness.
#pragma once

#include <memory>
#include <vector>

#include "ordering/frontend.hpp"
#include "ordering/node.hpp"

namespace bft::ordering {

struct ServiceOptions {
  /// Ordering-node process ids (e.g. 0..n-1). WHEAT deployments list the
  /// Vmax carriers in `vmax_nodes`.
  std::vector<runtime::ProcessId> nodes;
  std::set<runtime::ProcessId> vmax_nodes;  // empty -> classic BFT-SMaRt
  std::string channel = "channel-0";
  std::size_t block_size = 10;
  /// Cut partial blocks after this long (0 = never), via ordered markers.
  runtime::Duration batch_timeout = 0;
  smr::ReplicaParams replica_params;
  /// Use keyed-hash stub signatures with calibrated cost instead of real
  /// ECDSA (for discrete-event benchmarks).
  bool stub_signatures = false;
  /// Simulated cost of one block signature.
  runtime::Duration signature_cost = runtime::usec(1905);
  /// HLF double-signing mode (footnote 10).
  bool double_sign = false;
  /// Byzantine fault injection: these nodes emit invalid block signatures
  /// (their blocks are correct, their signatures never verify).
  std::set<runtime::ProcessId> corrupt_signers;
  /// Optional observability sinks (non-owning; must outlive the service).
  /// Wired into the replica + ordering node of `metrics_node` only: metric
  /// names carry no per-node prefix, so instrumenting one probe node keeps
  /// the export unambiguous (frontends are wired separately by the caller).
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRing* trace = nullptr;
  runtime::ProcessId metrics_node = 0;

  // --- chainable setters (preferred construction style) ---
  // Assemble options fluently and pass the result straight to make_service:
  //   make_service(ServiceOptions{}
  //                    .with_nodes({0, 1, 2, 3})
  //                    .with_block_size(100)
  //                    .with_stub_signatures(true));
  // Assigning fields one statement at a time still compiles (the struct stays
  // an aggregate) but is deprecated for new call sites — the chain keeps the
  // whole configuration in one expression and reads like the deployment it
  // describes.
  ServiceOptions& with_nodes(std::vector<runtime::ProcessId> v) {
    nodes = std::move(v);
    return *this;
  }
  ServiceOptions& with_vmax_nodes(std::set<runtime::ProcessId> v) {
    vmax_nodes = std::move(v);
    return *this;
  }
  ServiceOptions& with_channel(std::string v) {
    channel = std::move(v);
    return *this;
  }
  ServiceOptions& with_block_size(std::size_t v) {
    block_size = v;
    return *this;
  }
  ServiceOptions& with_batch_timeout(runtime::Duration v) {
    batch_timeout = v;
    return *this;
  }
  ServiceOptions& with_replica_params(smr::ReplicaParams v) {
    replica_params = std::move(v);
    return *this;
  }
  ServiceOptions& with_stub_signatures(bool v) {
    stub_signatures = v;
    return *this;
  }
  ServiceOptions& with_signature_cost(runtime::Duration v) {
    signature_cost = v;
    return *this;
  }
  ServiceOptions& with_double_sign(bool v) {
    double_sign = v;
    return *this;
  }
  ServiceOptions& with_corrupt_signers(std::set<runtime::ProcessId> v) {
    corrupt_signers = std::move(v);
    return *this;
  }
  ServiceOptions& with_metrics(obs::MetricsRegistry* reg,
                               runtime::ProcessId node = 0) {
    metrics = reg;
    metrics_node = node;
    return *this;
  }
  ServiceOptions& with_trace(obs::TraceRing* ring) {
    trace = ring;
    return *this;
  }
};

/// One ordering node and its replica, wired together.
struct NodeBundle {
  std::shared_ptr<BlockSigner> signer;
  std::unique_ptr<OrderingNode> app;
  std::unique_ptr<smr::Replica> replica;
};

struct Service {
  smr::ClusterConfig cluster;
  std::vector<NodeBundle> nodes;

  /// A signer/verifier equivalent to the nodes' backend, for frontends that
  /// verify signatures.
  std::shared_ptr<BlockSigner> make_verifier(runtime::ProcessId node) const;
};

/// Builds the node side of an ordering service. Caller registers each
/// `nodes[i].replica.get()` with a runtime under process id
/// `cluster.members()[i]`.
Service make_service(const ServiceOptions& options);

/// One node of a multi-process deployment: only `self`'s bundle exists in
/// this OS process, the other members are remote peers.
struct SingleNode {
  smr::ClusterConfig cluster;
  NodeBundle node;
};

/// Builds `self`'s slice of the service described by `options` (self must be
/// listed in options.nodes). Register `node.replica.get()` under `self`.
SingleNode make_node(const ServiceOptions& options, runtime::ProcessId self);

/// Standalone signature verifier equivalent to the nodes' signing backend —
/// for frontends running in a different OS process than any node.
std::shared_ptr<BlockSigner> make_verifier(const ServiceOptions& options);

/// Frontend options consistent with a service (weighted quorum under WHEAT).
FrontendOptions make_frontend_options(const Service& service,
                                      const ServiceOptions& options);

/// Frontend options for a frontend with no in-process Service (multi-process
/// deployments); builds its own verifier.
FrontendOptions make_frontend_options(const ServiceOptions& options);

}  // namespace bft::ordering

#include "ordering/frontend.hpp"

#include "common/log.hpp"

namespace bft::ordering {

Frontend::Frontend(smr::ClusterConfig cluster, FrontendOptions options,
                   BlockCallback on_block)
    : cluster_(std::move(cluster)),
      options_(std::move(options)),
      on_block_(std::move(on_block)) {
  if (options_.verify_signatures && options_.verifier == nullptr) {
    throw std::invalid_argument("Frontend: verification requires a verifier");
  }
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    m_.submitted =
        &reg.counter("frontend.submitted", "envelopes relayed to the cluster");
    m_.pushes_received = &reg.counter("frontend.pushes_received",
                                      "block pushes received on our channel");
    m_.delivered_blocks =
        &reg.counter("frontend.delivered_blocks", "blocks with delivery quorum");
    m_.delivered_envelopes =
        &reg.counter("frontend.delivered_envelopes", "envelopes delivered");
    m_.submit_to_deliver = &reg.histogram(
        "frontend.submit_to_deliver_ns", "ns",
        "submit to delivery quorum, own tracked envelopes only");
  }
}

void Frontend::on_start(runtime::Env& env) {
  Actor::on_start(env);
  if (!options_.receive_blocks) return;
  const Payload registration = Payload(smr::encode_register_receiver());
  for (runtime::ProcessId node : cluster_.members()) {
    env.send(node, registration);
  }
}

void Frontend::submit(Bytes envelope) {
  smr::Request request;
  request.client = env().self();
  request.seq = next_seq_++;
  if (options_.track_latency) {
    inflight_[crypto::hash_hex(crypto::sha256(envelope))] =
        Inflight{env().now(), request.seq};
  }
  if (options_.trace != nullptr) {
    options_.trace->record(obs::TraceStage::kSubmit, env().now(), env().self(),
                           request.client, request.seq);
  }
  OrderedPayload payload;
  payload.channel = options_.channel;
  payload.envelope = std::move(envelope);
  request.payload = payload.encode();
  const Payload encoded = Payload(smr::encode_request(request));
  for (runtime::ProcessId node : cluster_.members()) {
    env().send(node, encoded);
  }
  ++submitted_;
  if (m_.submitted != nullptr) m_.submitted->add();
  if (first_submit_ < 0) first_submit_ = env().now();
}

bool Frontend::quorum_reached(const Tally& tally) const {
  if (options_.required_copies > 0) {
    return tally.senders.size() >= options_.required_copies;
  }
  const auto& q = cluster_.quorums();
  if (options_.weighted_quorum) {
    std::set<consensus::ReplicaId> indices;
    for (runtime::ProcessId p : tally.senders) {
      if (cluster_.contains(p)) indices.insert(cluster_.index_of(p));
    }
    return q.weight_of_set(indices) >= q.quorum_weight();
  }
  const std::size_t needed =
      options_.verify_signatures ? q.count_f_plus_1() : q.count_2f_plus_1();
  return tally.senders.size() >= needed;
}

runtime::Verified Frontend::prologue(runtime::ProcessId from,
                                     Payload payload) const {
  runtime::Verified v;
  v.from = from;
  v.payload = std::move(payload);
  if (!options_.verify_signatures || options_.verifier == nullptr ||
      !cluster_.contains(from)) {
    return v;  // nothing offloadable; consume() handles everything
  }
  try {
    const ByteView view = v.payload.view();
    if (smr::peek_kind(view) != smr::MsgKind::push) return v;
    const SignedBlock sb = SignedBlock::decode(smr::decode_push(view));
    if (sb.channel != options_.channel) return v;
    v.auth = options_.verifier->verify(from, sb.block.header.digest(),
                                       sb.signature)
                 ? runtime::Verified::Auth::accepted
                 : runtime::Verified::Auth::rejected;
  } catch (const DecodeError&) {
    // Malformed: consume() re-decodes and emits the diagnostic.
  }
  return v;
}

void Frontend::consume(runtime::Verified&& verified) {
  dispatch(verified.from, verified.payload.view(), verified.auth);
}

void Frontend::on_message(runtime::ProcessId from, ByteView payload) {
  dispatch(from, payload, runtime::Verified::Auth::unchecked);
}

void Frontend::dispatch(runtime::ProcessId from, ByteView payload,
                        runtime::Verified::Auth auth) {
  if (!cluster_.contains(from)) return;
  SignedBlock sb;
  try {
    if (smr::peek_kind(payload) != smr::MsgKind::push) return;
    sb = SignedBlock::decode(smr::decode_push(payload));
  } catch (const DecodeError&) {
    BFT_LOG(warn) << "frontend " << env().self() << ": malformed push from " << from;
    return;
  }

  if (sb.channel != options_.channel) return;  // another channel's chain
  if (m_.pushes_received != nullptr) m_.pushes_received->add();
  const std::uint64_t number = sb.block.header.number;
  if (options_.deliver_in_order ? number < next_delivery_number_
                                : delivered_numbers_.count(number) > 0) {
    return;  // already delivered
  }

  if (options_.verify_signatures &&
      auth != runtime::Verified::Auth::accepted &&
      (auth == runtime::Verified::Auth::rejected ||
       !options_.verifier->verify(from, sb.block.header.digest(),
                                  sb.signature))) {
    BFT_LOG(warn) << "frontend " << env().self() << ": bad block signature from "
                  << from;
    return;
  }

  const std::string digest = crypto::hash_hex(crypto::sha256(sb.block.encode()));
  Tally& tally = tallies_[number][digest];
  tally.senders.insert(from);
  if (!tally.has_block) {
    tally.block = std::move(sb.block);
    tally.has_block = true;
  }
  if (!quorum_reached(tally)) return;

  ledger::Block block = std::move(tally.block);
  tallies_.erase(number);

  if (!options_.deliver_in_order) {
    delivered_numbers_.insert(number);
    deliver(block);
    return;
  }
  ready_.emplace(number, std::move(block));
  while (!ready_.empty() && ready_.begin()->first == next_delivery_number_) {
    deliver(ready_.begin()->second);
    ready_.erase(ready_.begin());
    ++next_delivery_number_;
  }
}

void Frontend::deliver(const ledger::Block& block) {
  ++delivered_blocks_;
  delivered_envelopes_ += block.envelopes.size();
  last_delivery_ = env().now();
  if (m_.delivered_blocks != nullptr) m_.delivered_blocks->add();
  if (m_.delivered_envelopes != nullptr) {
    m_.delivered_envelopes->add(block.envelopes.size());
  }
  if (options_.trace != nullptr) {
    // Block-granularity delivery event; pairs with the ordering node's push
    // via the block number in `detail` (see kBlockTraceClient).
    options_.trace->record(obs::TraceStage::kFrontendAccept, env().now(),
                           env().self(), obs::kBlockTraceClient,
                           block.header.number, block.header.number);
  }
  if (options_.track_latency) {
    for (const Bytes& envelope : block.envelopes) {
      const auto it = inflight_.find(crypto::hash_hex(crypto::sha256(envelope)));
      if (it != inflight_.end()) {
        const std::int64_t delta = env().now() - it->second.at;
        latencies_.add(static_cast<double>(delta) / 1e6);
        if (m_.submit_to_deliver != nullptr) m_.submit_to_deliver->record(delta);
        if (options_.trace != nullptr) {
          // Per-envelope delivery for envelopes this frontend submitted
          // itself: closes the submit→frontend_accept chain.
          options_.trace->record(obs::TraceStage::kFrontendAccept, env().now(),
                                 env().self(), env().self(), it->second.seq,
                                 block.header.number);
        }
        inflight_.erase(it);
      }
    }
  }
  if (on_block_) on_block_(block);
}

}  // namespace bft::ordering

#include "ordering/blockcutter.hpp"

#include <stdexcept>

namespace bft::ordering {

BlockCutter::BlockCutter(std::size_t block_size) : block_size_(block_size) {
  if (block_size == 0) {
    throw std::invalid_argument("BlockCutter: block size must be positive");
  }
  pending_.reserve(block_size);
}

std::optional<std::vector<Bytes>> BlockCutter::add(Bytes envelope) {
  pending_.push_back(std::move(envelope));
  if (pending_.size() >= block_size_) return cut();
  return std::nullopt;
}

std::vector<Bytes> BlockCutter::cut() {
  std::vector<Bytes> out;
  out.swap(pending_);
  pending_.reserve(block_size_);
  return out;
}

Bytes BlockCutter::snapshot() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(pending_.size()));
  for (const Bytes& e : pending_) w.bytes(e);
  return std::move(w).take();
}

void BlockCutter::restore(ByteView snapshot) {
  Reader r(snapshot);
  pending_.clear();
  const std::uint32_t count = r.u32();
  pending_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) pending_.push_back(r.bytes());
  r.expect_done();
}

}  // namespace bft::ordering

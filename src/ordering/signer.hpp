// Block-signature backends for ordering nodes.
//
// The real backend produces ECDSA signatures with the node's key (what the
// paper's service does via the HLF SDK). The stub backend produces keyed
// hashes with a calibrated simulated cost — used by the discrete-event
// benchmarks so simulating five minutes of cluster time does not require
// computing millions of real signatures. Frontends by default do not verify
// signatures at all (they collect 2f+1 matching blocks, §5), so the stub
// preserves the protocol behaviour exactly.
#pragma once

#include <memory>

#include "crypto/authenticator.hpp"
#include "crypto/ecdsa.hpp"
#include "runtime/actor.hpp"

namespace bft::ordering {

class BlockSigner {
 public:
  virtual ~BlockSigner() = default;

  /// Signs a block-header digest. Must be thread-safe: the real runtime calls
  /// this from the signing worker pool.
  virtual Bytes sign(const crypto::Hash256& header_digest) const = 0;

  /// Verifies a signature allegedly produced by node `signer`.
  virtual bool verify(runtime::ProcessId signer,
                      const crypto::Hash256& header_digest,
                      ByteView signature) const = 0;

  /// Simulated CPU cost of one sign() call.
  virtual runtime::Duration cost_hint() const = 0;
};

/// Real ECDSA over secp256k1 with the node's deterministic process key.
/// A thin adapter over crypto::Authenticator: block signatures are broadcast
/// (no single counterparty), which the peer-agnostic ECDSA backend supports
/// directly. See crypto/authenticator.hpp.
class EcdsaBlockSigner final : public BlockSigner {
 public:
  /// `node` is the signing node's process id; `cost_hint` defaults to the
  /// paper-calibrated 1.905 ms (8.4 ksig/s across 16 workers, §6.1).
  explicit EcdsaBlockSigner(runtime::ProcessId node,
                            runtime::Duration cost_hint = runtime::usec(1905));

  Bytes sign(const crypto::Hash256& header_digest) const override;
  bool verify(runtime::ProcessId signer, const crypto::Hash256& header_digest,
              ByteView signature) const override;
  runtime::Duration cost_hint() const override { return cost_hint_; }

 private:
  runtime::ProcessId node_;
  std::shared_ptr<const crypto::Authenticator> auth_;
  runtime::Duration cost_hint_;
};

/// Byzantine faulty signer: produces bit-flipped (invalid) signatures while
/// verifying honestly. Wraps any backend; used by chaos tests to exercise the
/// frontends' f+1-with-verification acceptance rule (footnote 8) against a
/// node whose blocks are correct but whose signatures never check out.
class CorruptingBlockSigner final : public BlockSigner {
 public:
  explicit CorruptingBlockSigner(std::shared_ptr<BlockSigner> inner);

  Bytes sign(const crypto::Hash256& header_digest) const override;
  bool verify(runtime::ProcessId signer, const crypto::Hash256& header_digest,
              ByteView signature) const override;
  runtime::Duration cost_hint() const override { return inner_->cost_hint(); }

 private:
  std::shared_ptr<BlockSigner> inner_;
};

/// Keyed-hash stand-in with identical interface and calibrated cost.
class StubBlockSigner final : public BlockSigner {
 public:
  explicit StubBlockSigner(runtime::ProcessId node,
                           runtime::Duration cost_hint = runtime::usec(1905));

  Bytes sign(const crypto::Hash256& header_digest) const override;
  bool verify(runtime::ProcessId signer, const crypto::Hash256& header_digest,
              ByteView signature) const override;
  runtime::Duration cost_hint() const override { return cost_hint_; }

 private:
  static Bytes compute(runtime::ProcessId node,
                       const crypto::Hash256& header_digest);

  runtime::ProcessId node_;
  runtime::Duration cost_hint_;
};

}  // namespace bft::ordering

#include "ordering/signer.hpp"

#include <stdexcept>

#include "common/serial.hpp"

namespace bft::ordering {

EcdsaBlockSigner::EcdsaBlockSigner(runtime::ProcessId node,
                                   runtime::Duration cost_hint)
    : node_(node),
      auth_(crypto::make_process_authenticator(node)),
      cost_hint_(cost_hint) {}

Bytes EcdsaBlockSigner::sign(const crypto::Hash256& header_digest) const {
  // Broadcast signature: the ECDSA backend ignores the counterparty id.
  return auth_->sign_for(node_, header_digest);
}

bool EcdsaBlockSigner::verify(runtime::ProcessId signer,
                              const crypto::Hash256& header_digest,
                              ByteView signature) const {
  return auth_->verify_from(signer, header_digest, signature);
}

CorruptingBlockSigner::CorruptingBlockSigner(std::shared_ptr<BlockSigner> inner)
    : inner_(std::move(inner)) {
  if (inner_ == nullptr) {
    throw std::invalid_argument("CorruptingBlockSigner: null inner signer");
  }
}

Bytes CorruptingBlockSigner::sign(const crypto::Hash256& header_digest) const {
  Bytes signature = inner_->sign(header_digest);
  // Flip bits across the first word so the result is well-formed enough to
  // parse but can never verify against the node's public key.
  for (std::size_t i = 0; i < signature.size() && i < 8; ++i) {
    signature[i] ^= 0xa5;
  }
  return signature;
}

bool CorruptingBlockSigner::verify(runtime::ProcessId signer,
                                   const crypto::Hash256& header_digest,
                                   ByteView signature) const {
  return inner_->verify(signer, header_digest, signature);
}

StubBlockSigner::StubBlockSigner(runtime::ProcessId node,
                                 runtime::Duration cost_hint)
    : node_(node), cost_hint_(cost_hint) {}

Bytes StubBlockSigner::compute(runtime::ProcessId node,
                               const crypto::Hash256& header_digest) {
  Writer w(48);
  w.str("stub-block-signature");
  w.u32(node);
  w.raw(ByteView(header_digest.data(), header_digest.size()));
  return crypto::hash_bytes(crypto::sha256(w.data()));
}

Bytes StubBlockSigner::sign(const crypto::Hash256& header_digest) const {
  return compute(node_, header_digest);
}

bool StubBlockSigner::verify(runtime::ProcessId signer,
                             const crypto::Hash256& header_digest,
                             ByteView signature) const {
  const Bytes expected = compute(signer, header_digest);
  return constant_time_equal(expected, signature);
}

}  // namespace bft::ordering

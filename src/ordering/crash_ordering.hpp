// Crash-fault-tolerant ordering baseline — a primary/backup service in the
// spirit of HLF 1.0's Kafka-based ordering (§3 "pluggable consensus"): a
// fixed primary sequences envelopes, replicates them to backups and commits
// once a majority acknowledged; every node then cuts/signs/pushes blocks
// exactly like the BFT ordering nodes.
//
// This is the baseline the paper positions itself against: decentralized and
// robust to crashes, but a single Byzantine node (the primary) can
// equivocate or censor. No primary failover is implemented (Kafka delegates
// that to ZooKeeper); the baseline exists for healthy-case comparisons.
#pragma once

#include <map>
#include <memory>

#include "ordering/blockcutter.hpp"
#include "ordering/node.hpp"
#include "ordering/signer.hpp"
#include "runtime/actor.hpp"

namespace bft::ordering {

struct CrashOrderingOptions {
  std::vector<runtime::ProcessId> nodes;  // nodes[0] is the primary
  std::string channel = "channel-0";
  std::size_t block_size = 10;
  bool stub_signatures = false;
  runtime::Duration signature_cost = runtime::usec(1905);
  /// Simulated CPU charge per envelope handled.
  runtime::Duration per_envelope_cost = runtime::usec(2);
};

class CrashOrderingNode : public runtime::Actor {
 public:
  CrashOrderingNode(runtime::ProcessId self, CrashOrderingOptions options);

  void on_start(runtime::Env& env) override;
  void on_message(runtime::ProcessId from, ByteView payload) override;
  void on_timer(std::uint64_t) override {}

  bool is_primary() const;
  std::uint64_t committed() const { return committed_; }
  std::uint64_t blocks_created() const { return next_block_number_ - 1; }
  const std::shared_ptr<BlockSigner>& signer() const { return signer_; }

 private:
  void handle_request(ByteView payload);
  void handle_append(runtime::ProcessId from, ByteView payload);
  void handle_ack(runtime::ProcessId from, ByteView payload);
  void handle_commit(ByteView payload);
  void advance_commit(std::uint64_t upto);
  void apply(std::uint64_t seq, Bytes envelope);
  void emit_block(std::vector<Bytes> envelopes);
  std::size_t majority() const { return options_.nodes.size() / 2 + 1; }

  runtime::ProcessId self_;
  CrashOrderingOptions options_;
  std::shared_ptr<BlockSigner> signer_;

  // Primary state.
  std::uint64_t next_seq_ = 1;
  std::map<std::uint64_t, std::set<runtime::ProcessId>> acks_;
  std::uint64_t commit_watermark_ = 0;

  // Shared replication state.
  std::map<std::uint64_t, Bytes> log_;
  std::uint64_t committed_ = 0;  // applied through this sequence

  // Block production (same as the BFT node).
  BlockCutter cutter_;
  std::uint64_t next_block_number_ = 1;
  crypto::Hash256 previous_header_hash_;
  std::set<runtime::ProcessId> receivers_;
};

}  // namespace bft::ordering

#include "ordering/channels.hpp"

namespace bft::ordering {

Bytes ChannelEnvelope::encode() const {
  Writer w(envelope.size() + channel.size() + 12);
  w.str(channel);
  w.bytes(envelope);
  return std::move(w).take();
}

ChannelEnvelope ChannelEnvelope::decode(ByteView data) {
  Reader r(data);
  ChannelEnvelope ce;
  ce.channel = r.str();
  if (ce.channel.empty() || ce.channel.size() > 255) {
    throw DecodeError("invalid channel name");
  }
  ce.envelope = r.bytes();
  r.expect_done();
  return ce;
}

}  // namespace bft::ordering

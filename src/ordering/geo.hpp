// Geo-distributed deployment helper (§6.3): builds the simulated WAN for a
// set of ordering nodes and frontends placed in AWS regions, using the
// measured inter-region RTT matrix from sim/wan.hpp.
#pragma once

#include "sim/network.hpp"
#include "sim/wan.hpp"
#include "smr/config.hpp"

namespace bft::ordering {

struct GeoTopology {
  /// Region of ordering node i (process id i).
  std::vector<sim::Region> node_regions;
  /// Region of frontend j (process id frontend_base + j).
  std::vector<sim::Region> frontend_regions;
  runtime::ProcessId frontend_base = 100;
  sim::NetworkConfig net;  // bandwidth/jitter knobs
};

/// The paper's §6.3 BFT-SMaRt deployment: nodes in Oregon, Ireland, Sydney,
/// São Paulo; frontends in Canada, Oregon, Virginia, São Paulo.
GeoTopology paper_bftsmart_topology();

/// The paper's WHEAT deployment: the same plus a fifth node in Virginia.
/// Vmax (weight 2) goes to Oregon and Virginia.
GeoTopology paper_wheat_topology();

/// Nodes carrying Vmax in the WHEAT topology (Oregon and Virginia).
std::set<runtime::ProcessId> paper_wheat_vmax_nodes();

/// Builds the simulated network for a topology. Every node and frontend gets
/// its own machine in its region.
sim::Network make_geo_network(const GeoTopology& topology, std::uint64_t seed);

}  // namespace bft::ordering

#include "ordering/node.hpp"

#include "ledger/chain.hpp"

namespace bft::ordering {

Bytes SignedBlock::encode() const {
  Writer w;
  w.str(channel);
  w.bytes(block.encode());
  w.bytes(signature);
  return std::move(w).take();
}

SignedBlock SignedBlock::decode(ByteView data) {
  Reader r(data);
  SignedBlock sb;
  sb.channel = r.str();
  sb.block = ledger::Block::decode(r.bytes());
  sb.signature = r.bytes();
  r.expect_done();
  return sb;
}

Bytes OrderedPayload::encode() const {
  Writer w(envelope.size() + channel.size() + 24);
  w.u8(static_cast<std::uint8_t>(kind));
  w.str(channel);
  if (kind == Kind::envelope) {
    w.bytes(envelope);
  } else {
    w.u64(cut_block_number);
  }
  return std::move(w).take();
}

OrderedPayload OrderedPayload::decode(ByteView data) {
  Reader r(data);
  OrderedPayload p;
  const std::uint8_t kind = r.u8();
  if (kind > 1) throw DecodeError("bad ordered-payload kind");
  p.kind = static_cast<Kind>(kind);
  p.channel = r.str();
  if (p.channel.empty() || p.channel.size() > 255) {
    throw DecodeError("invalid channel name");
  }
  if (p.kind == Kind::envelope) {
    p.envelope = r.bytes();
  } else {
    p.cut_block_number = r.u64();
  }
  r.expect_done();
  return p;
}

OrderingNode::OrderingNode(OrderingNodeOptions options,
                           std::shared_ptr<BlockSigner> signer)
    : options_(std::move(options)), signer_(std::move(signer)) {
  if (signer_ == nullptr) {
    throw std::invalid_argument("OrderingNode: null signer");
  }
  if (options_.block_size == 0) {
    throw std::invalid_argument("OrderingNode: zero block size");
  }
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    m_.envelopes_ordered = &reg.counter("ordering.envelopes_ordered",
                                        "envelopes through execute()");
    m_.blocks_cut = &reg.counter("ordering.blocks_cut",
                                 "blocks emitted (including replayed cuts)");
    m_.blocks_signed =
        &reg.counter("ordering.blocks_signed", "signing jobs completed");
    m_.cut_markers =
        &reg.counter("ordering.cut_markers", "time-to-cut markers submitted");
    m_.pending_envelopes = &reg.gauge("ordering.pending_envelopes",
                                      "envelopes waiting in blockcutters");
    m_.block_fill =
        &reg.histogram("ordering.block_fill", "envelopes", "envelopes per block");
    m_.sign_latency = &reg.histogram(
        "ordering.sign_ns", "ns", "signer-pool queue + signing latency");
  }
}

OrderingNode::ChannelState& OrderingNode::channel_state(const std::string& name) {
  auto it = channels_.find(name);
  if (it == channels_.end()) {
    it = channels_
             .emplace(std::piecewise_construct, std::forward_as_tuple(name),
                      std::forward_as_tuple(name, options_.block_size))
             .first;
  }
  return it->second;
}

Bytes OrderingNode::execute(const smr::Request& request,
                            const smr::ExecutionContext& ctx) {
  (void)ctx;
  if (replica_ == nullptr) {
    throw std::logic_error("OrderingNode: attach() was not called");
  }
  replica_->runtime_env().charge_cpu(options_.per_envelope_cost);

  OrderedPayload payload;
  try {
    payload = OrderedPayload::decode(request.payload);
  } catch (const DecodeError&) {
    return {};  // a client ordered garbage: recorded by consensus, not cut
  }

  ChannelState& state = channel_state(payload.channel);
  if (payload.kind == OrderedPayload::Kind::envelope) {
    ++envelopes_ordered_;
    if (m_.envelopes_ordered != nullptr) m_.envelopes_ordered->add();
    if (options_.trace != nullptr) {
      state.trace_keys.emplace_back(request.client, request.seq);
    }
    auto full = state.cutter.add(std::move(payload.envelope));
    if (full.has_value()) {
      emit_block(payload.channel, state, std::move(*full));
    } else if (!replica_->replaying_history()) {
      arm_batch_timer();
    }
  } else {
    // Time-to-cut marker: only effective if the block it targeted has not
    // been cut yet (identical decision at every replica).
    if (payload.cut_block_number == state.next_block_number &&
        state.cutter.pending_count() > 0) {
      emit_block(payload.channel, state, state.cutter.cut());
    }
  }
  if (m_.pending_envelopes != nullptr) {
    m_.pending_envelopes->set(static_cast<std::int64_t>(pending_total()));
  }
  return {};
}

OrderingNode::TraceKeys OrderingNode::take_trace_keys(ChannelState& state) {
  TraceKeys keys(state.trace_keys.begin(), state.trace_keys.end());
  state.trace_keys.clear();
  return keys;
}

void OrderingNode::emit_block(const std::string& channel, ChannelState& state,
                              std::vector<Bytes> envelopes) {
  // The node thread builds the header sequentially (deterministic across
  // replicas); only signing and sending go to the worker pool (§5.1).
  const std::size_t fill = envelopes.size();
  ledger::Block block = ledger::make_block(
      state.next_block_number++, state.previous_header_hash,
      std::move(envelopes));
  state.previous_header_hash = block.header.digest();
  ++blocks_created_;
  if (m_.blocks_cut != nullptr) m_.blocks_cut->add();
  if (m_.block_fill != nullptr) {
    m_.block_fill->record(static_cast<std::int64_t>(fill));
  }

  if (options_.push_cache_blocks > 0) {
    state.recent_blocks.push_back(block);
    while (state.recent_blocks.size() > options_.push_cache_blocks) {
      state.recent_blocks.pop_front();
    }
  }

  TraceKeys keys;
  if (options_.trace != nullptr) keys = take_trace_keys(state);

  if (replica_->replaying_history()) return;  // state rebuilt, no side effects
  if (options_.trace != nullptr) {
    const auto now = replica_->runtime_env().now();
    const auto self = replica_->self_id();
    for (const auto& [client, seq] : keys) {
      options_.trace->record(obs::TraceStage::kBlockcut, now, self, client, seq,
                             block.header.number);
    }
  }
  sign_and_push(channel, std::move(block), std::move(keys));
}

void OrderingNode::sign_and_push(std::string channel, ledger::Block block,
                                 TraceKeys keys) {
  const crypto::Hash256 digest = block.header.digest();
  const std::uint64_t number = block.header.number;
  const BlockSigner* signer = signer_.get();
  const runtime::Duration cost =
      signer->cost_hint() * (options_.double_sign ? 2 : 1);
  smr::Replica* replica = replica_;
  const runtime::TimePoint sign_submit_at = replica_->runtime_env().now();
  if (options_.trace != nullptr) {
    // "sign" marks the job entering the signer pool; the matching "push"
    // fires when the signature lands, so sign→push measures queueing plus
    // signing — the §6.2 contention quantity.
    const auto self = replica_->self_id();
    for (const auto& [client, seq] : keys) {
      options_.trace->record(obs::TraceStage::kSign, sign_submit_at, self,
                             client, seq, number);
    }
  }
  replica_->runtime_env().submit_work(
      cost,
      [signer, digest, double_sign = options_.double_sign] {
        Bytes signature = signer->sign(digest);
        if (double_sign) {
          // The second signature binds the block to an execution context;
          // its bytes are irrelevant here, only its CPU cost matters.
          (void)signer->sign(crypto::sha256(signature));
        }
        return signature;
      },
      [this, replica, number, sign_submit_at, keys = std::move(keys),
       channel = std::move(channel),
       block = std::move(block)](Bytes signature) mutable {
        const runtime::TimePoint now = replica->runtime_env().now();
        if (m_.blocks_signed != nullptr) m_.blocks_signed->add();
        if (m_.sign_latency != nullptr) {
          m_.sign_latency->record(now - sign_submit_at);
        }
        if (options_.trace != nullptr) {
          const auto self = replica->self_id();
          for (const auto& [client, seq] : keys) {
            options_.trace->record(obs::TraceStage::kPush, now, self, client,
                                   seq, number);
          }
          // Block-granularity push event so delivery can be paired even for
          // envelopes whose keys this trace never saw (see kBlockTraceClient).
          options_.trace->record(obs::TraceStage::kPush, now, self,
                                 obs::kBlockTraceClient, number, number);
        }
        const SignedBlock sb{std::move(channel), std::move(block),
                             std::move(signature)};
        replica->push_to_receivers(sb.encode());
      });
}

void OrderingNode::on_state_installed() {
  // A state transfer may have skipped past blocks this node never pushed
  // (snapshot contents and replayed history produce no side effects), yet
  // frontends need matching copies from a quorum of nodes to deliver.
  // Re-announce the cached window with our own signature; frontends ignore
  // numbers they already delivered.
  for (const auto& [name, state] : channels_) {
    for (const ledger::Block& block : state.recent_blocks) {
      sign_and_push(name, block);
    }
  }
}

void OrderingNode::arm_batch_timer() {
  if (options_.batch_timeout <= 0 || batch_timer_armed_) return;
  batch_timer_armed_ = true;
  replica_->set_app_timer(options_.batch_timeout);
}

void OrderingNode::on_recover() {
  // The batch-timeout timer died with the crash; re-arm it if envelopes are
  // still waiting in any cutter, otherwise partial blocks would never cut.
  batch_timer_armed_ = false;
  if (pending_total() > 0) arm_batch_timer();
}

void OrderingNode::on_app_timer(std::uint64_t token) {
  (void)token;
  batch_timer_armed_ = false;
  send_cut_markers();
}

void OrderingNode::send_cut_markers() {
  // Ask the cluster to order a cut for every channel with pending envelopes.
  // The marker travels through consensus like any request, so all replicas
  // cut at the same stream position. Duplicate/stale markers are no-ops.
  bool any_pending = false;
  for (const auto& [name, state] : channels_) {
    if (state.cutter.pending_count() == 0) continue;
    any_pending = true;
    OrderedPayload marker;
    marker.kind = OrderedPayload::Kind::time_to_cut;
    marker.channel = name;
    marker.cut_block_number = state.next_block_number;

    smr::Request request;
    request.client = replica_->self_id();
    const auto now =
        static_cast<std::uint64_t>(replica_->runtime_env().now());
    marker_seq_ = std::max(marker_seq_ + 1, now);
    request.seq = marker_seq_;
    request.payload = marker.encode();
    const Payload encoded = Payload(smr::encode_request(request));
    if (m_.cut_markers != nullptr) m_.cut_markers->add();
    for (runtime::ProcessId member : replica_->config().members()) {
      replica_->runtime_env().send(member, encoded);
    }
  }
  if (any_pending) arm_batch_timer();  // keep nudging until the cut lands
}

std::size_t OrderingNode::pending_in(const std::string& channel) const {
  const auto it = channels_.find(channel);
  return it == channels_.end() ? 0 : it->second.cutter.pending_count();
}

std::size_t OrderingNode::pending_total() const {
  std::size_t total = 0;
  for (const auto& [name, state] : channels_) {
    (void)name;
    total += state.cutter.pending_count();
  }
  return total;
}

std::vector<std::string> OrderingNode::channels() const {
  std::vector<std::string> out;
  out.reserve(channels_.size());
  for (const auto& [name, state] : channels_) {
    (void)state;
    out.push_back(name);
  }
  return out;
}

Bytes OrderingNode::snapshot() const {
  Writer w;
  w.u64(envelopes_ordered_);
  w.u64(blocks_created_);
  w.u32(static_cast<std::uint32_t>(channels_.size()));
  for (const auto& [name, state] : channels_) {
    w.str(name);
    w.u64(state.next_block_number);
    w.raw(ByteView(state.previous_header_hash.data(), 32));
    w.bytes(state.cutter.snapshot());
    // Block content is deterministic across replicas at a given stream
    // position, so including the cache keeps checkpoint digests comparable.
    w.u32(static_cast<std::uint32_t>(state.recent_blocks.size()));
    for (const ledger::Block& block : state.recent_blocks) {
      w.bytes(block.encode());
    }
  }
  return std::move(w).take();
}

void OrderingNode::restore(ByteView snapshot) {
  Reader r(snapshot);
  envelopes_ordered_ = r.u64();
  blocks_created_ = r.u64();
  channels_.clear();
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name = r.str();
    ChannelState& state = channel_state(name);
    state.next_block_number = r.u64();
    state.previous_header_hash = crypto::hash_from_bytes(r.raw(32));
    state.cutter.restore(r.bytes());
    state.recent_blocks.clear();
    const std::uint32_t cached = r.u32();
    for (std::uint32_t b = 0; b < cached; ++b) {
      state.recent_blocks.push_back(ledger::Block::decode(r.bytes()));
    }
  }
  r.expect_done();
}

crypto::Hash256 OrderingNode::integrity_digest() const {
  // Digest exactly what a forked history would change: each channel's chain
  // head (next number + previous header hash). Cutter contents and the push
  // cache are reconstructed deterministically by replay, so pinning them
  // would only make the digest fragile, not safer.
  crypto::Sha256 h;
  for (const auto& [name, state] : channels_) {
    const crypto::Hash256 digest = ledger::chain_position_digest(
        name, state.next_block_number, state.previous_header_hash);
    h.update(ByteView(digest.data(), digest.size()));
  }
  return h.finish();
}

}  // namespace bft::ordering

#include "ordering/geo.hpp"

#include <stdexcept>

namespace bft::ordering {

using sim::Region;

GeoTopology paper_bftsmart_topology() {
  GeoTopology t;
  t.node_regions = {Region::oregon, Region::ireland, Region::sydney,
                    Region::sao_paulo};
  t.frontend_regions = {Region::canada, Region::oregon, Region::virginia,
                        Region::sao_paulo};
  t.net.jitter_sigma = 0.02;
  return t;
}

GeoTopology paper_wheat_topology() {
  GeoTopology t = paper_bftsmart_topology();
  t.node_regions.push_back(Region::virginia);
  return t;
}

std::set<runtime::ProcessId> paper_wheat_vmax_nodes() {
  // Node 0 sits in Oregon, node 4 in Virginia (see paper_wheat_topology).
  return {0, 4};
}

sim::Network make_geo_network(const GeoTopology& topology, std::uint64_t seed) {
  const std::size_t nodes = topology.node_regions.size();
  const std::size_t frontends = topology.frontend_regions.size();
  if (topology.frontend_base < nodes) {
    throw std::invalid_argument("make_geo_network: frontend ids collide with nodes");
  }

  // One machine per participant; region list in machine order.
  std::vector<Region> machine_regions = topology.node_regions;
  machine_regions.insert(machine_regions.end(), topology.frontend_regions.begin(),
                         topology.frontend_regions.end());

  std::vector<std::uint32_t> process_machine(topology.frontend_base + frontends, 0);
  for (std::size_t i = 0; i < nodes; ++i) {
    process_machine[i] = static_cast<std::uint32_t>(i);
  }
  for (std::size_t j = 0; j < frontends; ++j) {
    process_machine[topology.frontend_base + j] =
        static_cast<std::uint32_t>(nodes + j);
  }

  return sim::Network(topology.net, std::move(process_machine),
                      sim::wan_latency_matrix(machine_regions), Rng(seed));
}

}  // namespace bft::ordering

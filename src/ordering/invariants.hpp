// Safety/liveness invariant checking for chaos scenarios.
//
// An InvariantChecker observes the block streams delivered by any number of
// frontends and accumulates violations of the properties the paper's service
// guarantees under <= f Byzantine nodes:
//
//   * no fork — every pair of frontends agrees on the block at each sequence
//     number (prefix consistency of all delivered chains);
//   * chain integrity — each frontend's stream is contiguous from block 1,
//     links previous-header hashes correctly and carries valid data hashes
//     (an invalid block accepted by a quorum rule would surface here);
//   * optionally, envelope uniqueness — no envelope is ordered twice (chaos
//     workloads submit distinct envelopes, so a duplicate means the dedup or
//     rollback machinery re-ordered history).
//
// End-of-run checks cover liveness: all submitted envelopes delivered, and
// delivery completing within a bound after the last fault healed.
//
// The checker is the assertion side of the chaos harness (DESIGN.md §6c);
// the observability export (OBSERVABILITY.md) is the diagnosis side — when a
// sweep scenario trips an invariant, re-run it with BFT_CHAOS_SEED and
// BFT_CHAOS_METRICS_DIR to see which pipeline stage the fault perturbed.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ordering/frontend.hpp"

namespace bft::ordering {

class InvariantChecker {
 public:
  struct Options {
    std::string channel = "channel-0";
    /// Flag an envelope appearing twice within one frontend's chain.
    bool expect_unique_envelopes = true;
  };

  InvariantChecker();
  explicit InvariantChecker(Options options);

  /// Callback to install as frontend `index`'s BlockCallback (or to call from
  /// within one). Indices only label violations; any distinct values work.
  Frontend::BlockCallback observer(std::size_t index);

  /// Records one delivered block, running the online safety checks.
  void observe(std::size_t index, const ledger::Block& block);

  // --- end-of-run liveness checks ---

  /// Every submitted envelope was delivered.
  void check_all_delivered(const std::string& who, const Frontend& frontend,
                           std::uint64_t expected_envelopes);

  /// Delivery finished within `bound` after `quiet_from` (typically the later
  /// of: last fault healed, last envelope submitted).
  void check_recovered_by(const std::string& who, const Frontend& frontend,
                          runtime::TimePoint quiet_from,
                          runtime::Duration bound);

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }
  /// All violations joined, for one-shot test assertions.
  std::string report() const;

  std::uint64_t blocks_observed() const { return blocks_observed_; }

 private:
  struct FrontendState {
    std::uint64_t next_number = 1;
    crypto::Hash256 expected_previous{};
    bool genesis_set = false;
    std::set<std::string> envelope_digests;
  };

  void violation(std::string what);

  Options options_;
  std::map<std::size_t, FrontendState> frontends_;
  /// number -> header digest of the first delivery observed for that number.
  std::map<std::uint64_t, crypto::Hash256> canonical_;
  std::vector<std::string> violations_;
  std::uint64_t blocks_observed_ = 0;
};

}  // namespace bft::ordering

// Ordering-service frontend (§5): relays envelopes from the HLF side into
// the ordering cluster and collects the signed blocks the nodes push back.
//
// A block is delivered once 2f+1 nodes sent byte-identical copies (without
// signature verification), or f+1 with verification (footnote 8). Under
// WHEAT's tentative execution the count generalizes to a weighted quorum of
// matching copies, mirroring the client rule of §4. Delivery is in block
// order; the frontend also measures submit-to-delivery latency for the
// envelopes it injected (the metric of Figures 8 and 9).
#pragma once

#include <functional>
#include <map>

#include "ledger/block.hpp"
#include "ordering/node.hpp"
#include "runtime/actor.hpp"
#include "smr/config.hpp"
#include "util/stats.hpp"

namespace bft::ordering {

struct FrontendOptions {
  std::string channel = "channel-0";
  /// Verify block signatures: f+1 matching signed copies suffice.
  bool verify_signatures = false;
  /// WHEAT tentative execution: require a weighted quorum of matching copies.
  bool weighted_quorum = false;
  /// Signature backend for verification (must match the nodes' backend).
  std::shared_ptr<BlockSigner> verifier;
  /// Deliver blocks strictly in sequence order.
  bool deliver_in_order = true;
  /// Record submit->delivery latency samples for tracked envelopes.
  bool track_latency = true;
  /// Register with the ordering nodes to receive block pushes. Submit-only
  /// frontends (load generators) disable this so they do not add fan-out.
  bool receive_blocks = true;
  /// Non-zero: accept a block after exactly this many matching copies
  /// (overrides the 2f+1 / f+1 / weighted rules; crash-fault baselines use 1).
  std::size_t required_copies = 0;
  /// Optional observability sinks (non-owning; must outlive the frontend).
  /// Several frontends may share one registry — their frontend.* counters
  /// then aggregate. See OBSERVABILITY.md.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRing* trace = nullptr;

  // --- chainable setters (preferred construction style) ---
  // Usually seeded from make_frontend_options(...) and then refined:
  //   Frontend f(cluster, make_frontend_options(service, opts)
  //                           .with_track_latency(false)
  //                           .with_receive_blocks(false));
  // Direct field assignment still compiles but is deprecated for new call
  // sites; see the matching note on ordering::ServiceOptions.
  FrontendOptions& with_channel(std::string v) {
    channel = std::move(v);
    return *this;
  }
  FrontendOptions& with_verify_signatures(bool v) {
    verify_signatures = v;
    return *this;
  }
  FrontendOptions& with_weighted_quorum(bool v) {
    weighted_quorum = v;
    return *this;
  }
  FrontendOptions& with_verifier(std::shared_ptr<BlockSigner> v) {
    verifier = std::move(v);
    return *this;
  }
  FrontendOptions& with_deliver_in_order(bool v) {
    deliver_in_order = v;
    return *this;
  }
  FrontendOptions& with_track_latency(bool v) {
    track_latency = v;
    return *this;
  }
  FrontendOptions& with_receive_blocks(bool v) {
    receive_blocks = v;
    return *this;
  }
  FrontendOptions& with_required_copies(std::size_t v) {
    required_copies = v;
    return *this;
  }
  FrontendOptions& with_metrics(obs::MetricsRegistry* reg) {
    metrics = reg;
    return *this;
  }
  FrontendOptions& with_trace(obs::TraceRing* ring) {
    trace = ring;
    return *this;
  }
};

class Frontend : public runtime::Actor {
 public:
  using BlockCallback = std::function<void(const ledger::Block&)>;

  Frontend(smr::ClusterConfig cluster, FrontendOptions options,
           BlockCallback on_block = nullptr);

  void on_start(runtime::Env& env) override;
  /// Staged-pipeline phase 1 (thread-safe, const): pre-verifies the block
  /// signature of a push through the shared verifier when verify_signatures
  /// is on, so the ECDSA check runs on a runner worker. Reads only
  /// construction-time state (options_, cluster_).
  runtime::Verified prologue(runtime::ProcessId from,
                             Payload payload) const override;
  void consume(runtime::Verified&& verified) override;
  void on_message(runtime::ProcessId from, ByteView payload) override;
  void on_timer(std::uint64_t) override {}

  /// Relays one envelope to the ordering cluster (fire-and-forget broadcast,
  /// like the shim's asynchronous BFT-SMaRt invocations). Call from the
  /// actor's execution context.
  void submit(Bytes envelope);

  // --- statistics ---
  std::uint64_t submitted() const { return submitted_; }
  std::uint64_t delivered_blocks() const { return delivered_blocks_; }
  std::uint64_t delivered_envelopes() const { return delivered_envelopes_; }
  /// Latency samples in milliseconds (own envelopes only).
  const Histogram& latencies() const { return latencies_; }
  runtime::TimePoint first_submit_time() const { return first_submit_; }
  runtime::TimePoint last_delivery_time() const { return last_delivery_; }

 private:
  struct Tally {
    std::set<runtime::ProcessId> senders;
    ledger::Block block;
    bool has_block = false;
  };

  bool quorum_reached(const Tally& tally) const;
  void deliver(const ledger::Block& block);
  void dispatch(runtime::ProcessId from, ByteView payload,
                runtime::Verified::Auth auth);

  smr::ClusterConfig cluster_;
  FrontendOptions options_;
  BlockCallback on_block_;

  std::uint64_t next_seq_ = 1;
  std::uint64_t submitted_ = 0;

  // number -> block-digest hex -> tally
  std::map<std::uint64_t, std::map<std::string, Tally>> tallies_;
  std::uint64_t next_delivery_number_ = 1;
  std::map<std::uint64_t, ledger::Block> ready_;  // quorum reached, not in order yet
  std::set<std::uint64_t> delivered_numbers_;     // out-of-order mode dedup

  struct Inflight {
    runtime::TimePoint at = 0;  // submit time
    std::uint64_t seq = 0;      // request sequence (trace key)
  };
  std::map<std::string, Inflight> inflight_;  // envelope digest -> submit info
  Histogram latencies_;
  std::uint64_t delivered_blocks_ = 0;
  std::uint64_t delivered_envelopes_ = 0;
  runtime::TimePoint first_submit_ = -1;
  runtime::TimePoint last_delivery_ = -1;

  // Observability handles resolved once at construction (all null when no
  // registry is wired). Catalogue: OBSERVABILITY.md.
  struct MetricHandles {
    obs::Counter* submitted = nullptr;
    obs::Counter* pushes_received = nullptr;
    obs::Counter* delivered_blocks = nullptr;
    obs::Counter* delivered_envelopes = nullptr;
    obs::LatencyHistogram* submit_to_deliver = nullptr;
  };
  MetricHandles m_;
};

}  // namespace bft::ordering

// Implementation of the chaos-harness invariant checks (see invariants.hpp
// for the property definitions). Violations are accumulated as formatted
// strings rather than thrown, so a scenario can report every broken property
// of a run instead of just the first.
#include "ordering/invariants.hpp"

#include <sstream>

namespace bft::ordering {

InvariantChecker::InvariantChecker() : InvariantChecker(Options{}) {}

InvariantChecker::InvariantChecker(Options options)
    : options_(std::move(options)) {}

Frontend::BlockCallback InvariantChecker::observer(std::size_t index) {
  return [this, index](const ledger::Block& block) { observe(index, block); };
}

void InvariantChecker::observe(std::size_t index, const ledger::Block& block) {
  ++blocks_observed_;
  FrontendState& state = frontends_[index];
  if (!state.genesis_set) {
    state.expected_previous = ledger::genesis_hash(options_.channel);
    state.genesis_set = true;
  }

  const std::uint64_t number = block.header.number;
  std::ostringstream who;
  who << "frontend " << index << " block " << number;

  // Contiguity: frontends deliver strictly in order, so a gap or repeat means
  // the ordering layer skipped or re-delivered a sequence number.
  if (number != state.next_number) {
    std::ostringstream msg;
    msg << who.str() << ": expected number " << state.next_number;
    violation(msg.str());
    // Resynchronize so one gap does not cascade into a violation per block.
    state.next_number = number;
    state.expected_previous = block.header.previous_hash;
  }

  // Chain integrity: header links the previous header and commits to the data.
  if (block.header.previous_hash != state.expected_previous) {
    violation(who.str() + ": previous-hash link broken");
  }
  if (block.header.data_hash != ledger::compute_data_hash(block.envelopes)) {
    violation(who.str() + ": data hash does not match envelopes");
  }

  // No fork: every frontend must see the same header at each number.
  const crypto::Hash256 digest = block.header.digest();
  auto [it, inserted] = canonical_.emplace(number, digest);
  if (!inserted && it->second != digest) {
    violation(who.str() + ": FORK — header differs from first delivery");
  }

  if (options_.expect_unique_envelopes) {
    for (const Bytes& envelope : block.envelopes) {
      const std::string key = crypto::hash_hex(crypto::sha256(envelope));
      if (!state.envelope_digests.insert(key).second) {
        violation(who.str() + ": envelope ordered twice (" + key.substr(0, 16) +
                  ")");
      }
    }
  }

  state.next_number = number + 1;
  state.expected_previous = digest;
}

void InvariantChecker::check_all_delivered(const std::string& who,
                                           const Frontend& frontend,
                                           std::uint64_t expected_envelopes) {
  if (frontend.delivered_envelopes() != expected_envelopes) {
    std::ostringstream msg;
    msg << who << ": delivered " << frontend.delivered_envelopes() << " of "
        << expected_envelopes << " envelopes";
    violation(msg.str());
  }
}

void InvariantChecker::check_recovered_by(const std::string& who,
                                          const Frontend& frontend,
                                          runtime::TimePoint quiet_from,
                                          runtime::Duration bound) {
  const runtime::TimePoint last = frontend.last_delivery_time();
  if (last < 0) {
    violation(who + ": no blocks delivered at all");
  } else if (last > quiet_from + bound) {
    std::ostringstream msg;
    msg << who << ": delivery still trickling " << (last - quiet_from)
        << " ticks after quiescence (bound " << bound << ")";
    violation(msg.str());
  }
}

void InvariantChecker::violation(std::string what) {
  violations_.push_back(std::move(what));
}

std::string InvariantChecker::report() const {
  std::ostringstream out;
  for (const std::string& v : violations_) out << v << "\n";
  return out.str();
}

}  // namespace bft::ordering

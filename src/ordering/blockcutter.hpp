// The blockcutter (§5.1): buffers totally-ordered envelopes until a block's
// worth accumulates. Its pending contents are replicated application state
// (two nodes at the same consensus position must hold identical pending
// envelopes), so it participates in snapshot/restore.
#pragma once

#include <optional>
#include <vector>

#include "common/serial.hpp"

namespace bft::ordering {

class BlockCutter {
 public:
  /// `block_size` envelopes per block (the paper sweeps 10 and 100).
  explicit BlockCutter(std::size_t block_size);

  std::size_t block_size() const { return block_size_; }
  std::size_t pending_count() const { return pending_.size(); }

  /// Adds one envelope; returns the drained batch exactly when it fills a
  /// block.
  std::optional<std::vector<Bytes>> add(Bytes envelope);

  /// Drains whatever is pending (batch-timeout cut); may be empty.
  std::vector<Bytes> cut();

  /// Pending envelopes as serialized state.
  Bytes snapshot() const;
  void restore(ByteView snapshot);

 private:
  std::size_t block_size_;
  std::vector<Bytes> pending_;
};

}  // namespace bft::ordering

#include "ordering/crash_ordering.hpp"

#include "ordering/channels.hpp"
#include "smr/wire.hpp"

namespace bft::ordering {

namespace {

// Wire kinds beyond the BFT set (smr::MsgKind stops at 15).
constexpr std::uint8_t kAppend = 20;
constexpr std::uint8_t kAck = 21;
constexpr std::uint8_t kCommit = 22;

Bytes encode_append(std::uint64_t seq, ByteView envelope) {
  Writer w(envelope.size() + 16);
  w.u8(kAppend);
  w.u64(seq);
  w.bytes(envelope);
  return std::move(w).take();
}

Bytes encode_ack(std::uint64_t seq) {
  Writer w;
  w.u8(kAck);
  w.u64(seq);
  return std::move(w).take();
}

Bytes encode_commit(std::uint64_t upto) {
  Writer w;
  w.u8(kCommit);
  w.u64(upto);
  return std::move(w).take();
}

}  // namespace

CrashOrderingNode::CrashOrderingNode(runtime::ProcessId self,
                                     CrashOrderingOptions options)
    : self_(self),
      options_(std::move(options)),
      cutter_(options_.block_size),
      previous_header_hash_(ledger::genesis_hash(options_.channel)) {
  if (options_.nodes.empty()) {
    throw std::invalid_argument("CrashOrderingNode: empty node list");
  }
  if (options_.stub_signatures) {
    signer_ = std::make_shared<StubBlockSigner>(self, options_.signature_cost);
  } else {
    signer_ = std::make_shared<EcdsaBlockSigner>(self, options_.signature_cost);
  }
}

bool CrashOrderingNode::is_primary() const {
  return self_ == options_.nodes.front();
}

void CrashOrderingNode::on_start(runtime::Env& env) { Actor::on_start(env); }

void CrashOrderingNode::on_message(runtime::ProcessId from, ByteView payload) {
  if (payload.empty()) return;
  try {
    switch (payload[0]) {
      case static_cast<std::uint8_t>(smr::MsgKind::request):
        if (is_primary()) handle_request(payload);
        break;
      case static_cast<std::uint8_t>(smr::MsgKind::register_receiver):
        receivers_.insert(from);
        break;
      case kAppend:
        handle_append(from, payload);
        break;
      case kAck:
        if (is_primary()) handle_ack(from, payload);
        break;
      case kCommit:
        if (!is_primary() && from == options_.nodes.front()) {
          handle_commit(payload);
        }
        break;
      default:
        break;
    }
  } catch (const DecodeError&) {
    // Baseline trusts its peers not to be Byzantine; malformed -> drop.
  }
}

void CrashOrderingNode::handle_request(ByteView payload) {
  const smr::Request request = smr::decode_request(payload);
  // Frontends wrap envelopes in OrderedPayload; this single-channel
  // baseline ignores markers and stores the inner envelope.
  Bytes envelope;
  try {
    OrderedPayload op = OrderedPayload::decode(request.payload);
    if (op.kind != OrderedPayload::Kind::envelope) return;
    envelope = std::move(op.envelope);
  } catch (const DecodeError&) {
    envelope = request.payload;  // raw submission
  }
  env().charge_cpu(options_.per_envelope_cost);
  const std::uint64_t seq = next_seq_++;
  const Payload append = Payload(encode_append(seq, envelope));
  log_[seq] = std::move(envelope);
  acks_[seq].insert(self_);
  for (runtime::ProcessId node : options_.nodes) {
    if (node != self_) env().send(node, append);
  }
  if (acks_[seq].size() >= majority()) advance_commit(seq);  // n == 1
}

void CrashOrderingNode::handle_append(runtime::ProcessId from, ByteView payload) {
  if (from != options_.nodes.front() || is_primary()) return;
  Reader r(payload);
  r.u8();
  const std::uint64_t seq = r.u64();
  Bytes envelope = r.bytes();
  r.expect_done();
  env().charge_cpu(options_.per_envelope_cost);
  log_[seq] = std::move(envelope);
  env().send(from, encode_ack(seq));
}

void CrashOrderingNode::handle_ack(runtime::ProcessId from, ByteView payload) {
  Reader r(payload);
  r.u8();
  const std::uint64_t seq = r.u64();
  r.expect_done();
  auto& voters = acks_[seq];
  voters.insert(from);
  if (voters.size() >= majority() && seq > commit_watermark_) {
    // Commit the longest contiguous acknowledged prefix.
    std::uint64_t upto = commit_watermark_;
    while (true) {
      const auto it = acks_.find(upto + 1);
      if (it == acks_.end() || it->second.size() < majority()) break;
      ++upto;
    }
    if (upto > commit_watermark_) {
      advance_commit(upto);
      const Payload commit = Payload(encode_commit(upto));
      for (runtime::ProcessId node : options_.nodes) {
        if (node != self_) env().send(node, commit);
      }
    }
  }
}

void CrashOrderingNode::handle_commit(ByteView payload) {
  Reader r(payload);
  r.u8();
  const std::uint64_t upto = r.u64();
  r.expect_done();
  advance_commit(upto);
}

void CrashOrderingNode::advance_commit(std::uint64_t upto) {
  if (upto > commit_watermark_) commit_watermark_ = upto;
  while (committed_ < commit_watermark_) {
    const auto it = log_.find(committed_ + 1);
    if (it == log_.end()) break;  // backup missing an append; wait
    ++committed_;
    apply(committed_, std::move(it->second));
    log_.erase(it);
    acks_.erase(committed_);
  }
}

void CrashOrderingNode::apply(std::uint64_t seq, Bytes envelope) {
  (void)seq;
  auto full = cutter_.add(std::move(envelope));
  if (full.has_value()) emit_block(std::move(*full));
}

void CrashOrderingNode::emit_block(std::vector<Bytes> envelopes) {
  ledger::Block block = ledger::make_block(
      next_block_number_++, previous_header_hash_, std::move(envelopes));
  previous_header_hash_ = block.header.digest();
  const crypto::Hash256 digest = block.header.digest();
  const BlockSigner* signer = signer_.get();
  env().submit_work(
      signer->cost_hint(),
      [signer, digest] { return signer->sign(digest); },
      [this, block = std::move(block)](Bytes signature) mutable {
        const SignedBlock sb{options_.channel, std::move(block),
                             std::move(signature)};
        const Payload push = Payload(smr::encode_push(sb.encode()));
        for (runtime::ProcessId receiver : receivers_) {
          env().send(receiver, push);
        }
      });
}

}  // namespace bft::ordering

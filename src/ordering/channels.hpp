// Channel framing for the ordering service.
//
// HLF partitions its data into channels — private blockchains sharing one
// ordering service (§3 footnote 6; step 4: the service "gathers envelopes
// from all channels ... orders them ... and creates signed chain blocks").
// Frontends wrap each envelope with its channel; ordering nodes demultiplex
// the totally-ordered stream into per-channel blockcutters and hash chains.
#pragma once

#include <string>

#include "common/serial.hpp"

namespace bft::ordering {

struct ChannelEnvelope {
  std::string channel;
  Bytes envelope;

  Bytes encode() const;
  /// Throws DecodeError on malformed input.
  static ChannelEnvelope decode(ByteView data);
};

}  // namespace bft::ordering

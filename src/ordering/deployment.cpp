#include "ordering/deployment.hpp"

#include <algorithm>

namespace bft::ordering {

namespace {

std::shared_ptr<BlockSigner> make_signer(const ServiceOptions& options,
                                         runtime::ProcessId node) {
  std::shared_ptr<BlockSigner> signer;
  if (options.stub_signatures) {
    signer = std::make_shared<StubBlockSigner>(node, options.signature_cost);
  } else {
    signer = std::make_shared<EcdsaBlockSigner>(node, options.signature_cost);
  }
  if (options.corrupt_signers.count(node) > 0) {
    signer = std::make_shared<CorruptingBlockSigner>(std::move(signer));
  }
  return signer;
}

smr::ClusterConfig make_cluster(const ServiceOptions& options) {
  return options.vmax_nodes.empty()
             ? smr::ClusterConfig::classic(options.nodes)
             : smr::ClusterConfig::wheat(options.nodes, options.vmax_nodes);
}

NodeBundle make_bundle(const ServiceOptions& options,
                       const smr::ClusterConfig& cluster,
                       runtime::ProcessId node) {
  NodeBundle bundle;
  bundle.signer = make_signer(options, node);
  const bool instrumented =
      options.metrics != nullptr && node == options.metrics_node;
  OrderingNodeOptions node_options;
  node_options.default_channel = options.channel;
  node_options.block_size = options.block_size;
  node_options.batch_timeout = options.batch_timeout;
  node_options.double_sign = options.double_sign;
  if (instrumented) {
    node_options.metrics = options.metrics;
    node_options.trace = options.trace;
  }
  bundle.app = std::make_unique<OrderingNode>(node_options, bundle.signer);
  smr::ReplicaParams replica_params = options.replica_params;
  if (instrumented) {
    replica_params.metrics = options.metrics;
    replica_params.trace = options.trace;
  } else {
    replica_params.metrics = nullptr;
    replica_params.trace = nullptr;
  }
  bundle.replica = std::make_unique<smr::Replica>(
      node, cluster, replica_params, bundle.app.get(), bundle.app.get());
  bundle.app->attach(*bundle.replica);
  return bundle;
}

}  // namespace

std::shared_ptr<BlockSigner> Service::make_verifier(
    runtime::ProcessId node) const {
  (void)node;
  return nodes.empty() ? nullptr : nodes.front().signer;
}

Service make_service(const ServiceOptions& options) {
  if (options.nodes.empty()) {
    throw std::invalid_argument("make_service: need at least one node");
  }
  if (options.replica_params.storage != nullptr && options.nodes.size() > 1) {
    // A NodeStore stamps one node id and holds one WAL: sharing it across
    // replicas would interleave their histories. Build per-node services
    // with make_node when durability is wanted.
    throw std::invalid_argument(
        "make_service: replica_params.storage is per-node; use make_node");
  }
  Service service{make_cluster(options), {}};
  for (runtime::ProcessId node : service.cluster.members()) {
    service.nodes.push_back(make_bundle(options, service.cluster, node));
  }
  return service;
}

SingleNode make_node(const ServiceOptions& options, runtime::ProcessId self) {
  if (std::find(options.nodes.begin(), options.nodes.end(), self) ==
      options.nodes.end()) {
    throw std::invalid_argument("make_node: " + std::to_string(self) +
                                " is not in options.nodes");
  }
  SingleNode single{make_cluster(options), {}};
  single.node = make_bundle(options, single.cluster, self);
  return single;
}

std::shared_ptr<BlockSigner> make_verifier(const ServiceOptions& options) {
  if (options.nodes.empty()) {
    throw std::invalid_argument("make_verifier: need at least one node");
  }
  // Verification does not depend on which node's keypair the backend holds,
  // so any member works; skip the corruption wrapper — it only affects
  // signing.
  const runtime::ProcessId node = options.nodes.front();
  if (options.stub_signatures) {
    return std::make_shared<StubBlockSigner>(node, options.signature_cost);
  }
  return std::make_shared<EcdsaBlockSigner>(node, options.signature_cost);
}

FrontendOptions make_frontend_options(const Service& service,
                                      const ServiceOptions& options) {
  FrontendOptions fo;
  fo.channel = options.channel;
  fo.weighted_quorum = options.replica_params.tentative_execution;
  fo.verifier = service.nodes.empty() ? nullptr : service.nodes.front().signer;
  return fo;
}

FrontendOptions make_frontend_options(const ServiceOptions& options) {
  FrontendOptions fo;
  fo.channel = options.channel;
  fo.weighted_quorum = options.replica_params.tentative_execution;
  fo.verifier = make_verifier(options);
  return fo;
}

}  // namespace bft::ordering

#include "ordering/deployment.hpp"

namespace bft::ordering {

namespace {

std::shared_ptr<BlockSigner> make_signer(const ServiceOptions& options,
                                         runtime::ProcessId node) {
  std::shared_ptr<BlockSigner> signer;
  if (options.stub_signatures) {
    signer = std::make_shared<StubBlockSigner>(node, options.signature_cost);
  } else {
    signer = std::make_shared<EcdsaBlockSigner>(node, options.signature_cost);
  }
  if (options.corrupt_signers.count(node) > 0) {
    signer = std::make_shared<CorruptingBlockSigner>(std::move(signer));
  }
  return signer;
}

}  // namespace

std::shared_ptr<BlockSigner> Service::make_verifier(
    runtime::ProcessId node) const {
  (void)node;
  return nodes.empty() ? nullptr : nodes.front().signer;
}

Service make_service(const ServiceOptions& options) {
  if (options.nodes.empty()) {
    throw std::invalid_argument("make_service: need at least one node");
  }
  smr::ClusterConfig cluster =
      options.vmax_nodes.empty()
          ? smr::ClusterConfig::classic(options.nodes)
          : smr::ClusterConfig::wheat(options.nodes, options.vmax_nodes);

  Service service{std::move(cluster), {}};
  for (runtime::ProcessId node : service.cluster.members()) {
    NodeBundle bundle;
    bundle.signer = make_signer(options, node);
    const bool instrumented =
        options.metrics != nullptr && node == options.metrics_node;
    OrderingNodeOptions node_options;
    node_options.default_channel = options.channel;
    node_options.block_size = options.block_size;
    node_options.batch_timeout = options.batch_timeout;
    node_options.double_sign = options.double_sign;
    if (instrumented) {
      node_options.metrics = options.metrics;
      node_options.trace = options.trace;
    }
    bundle.app = std::make_unique<OrderingNode>(node_options, bundle.signer);
    smr::ReplicaParams replica_params = options.replica_params;
    if (instrumented) {
      replica_params.metrics = options.metrics;
      replica_params.trace = options.trace;
    } else {
      replica_params.metrics = nullptr;
      replica_params.trace = nullptr;
    }
    bundle.replica = std::make_unique<smr::Replica>(
        node, service.cluster, replica_params, bundle.app.get(),
        bundle.app.get());
    bundle.app->attach(*bundle.replica);
    service.nodes.push_back(std::move(bundle));
  }
  return service;
}

FrontendOptions make_frontend_options(const Service& service,
                                      const ServiceOptions& options) {
  FrontendOptions fo;
  fo.channel = options.channel;
  fo.weighted_quorum = options.replica_params.tentative_execution;
  fo.verifier = service.nodes.empty() ? nullptr : service.nodes.front().signer;
  return fo;
}

}  // namespace bft::ordering

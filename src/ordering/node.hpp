// The BFT-SMaRt ordering node application (§5.1): consumes the totally
// ordered envelope stream from the SMR layer, demultiplexes it into
// per-channel blockcutters, cuts blocks, signs their headers on the worker
// pool and disseminates them to registered frontends through the replica's
// custom-replier path.
//
// Replicated state is deliberately tiny (§5.2): per channel, the next block
// sequence number, the previous header hash and the blockcutter's pending
// envelopes — which is what makes checkpoints cheap.
//
// Batch timeout: when envelopes sit in a cutter longer than `batch_timeout`,
// the node submits a time-to-cut marker through the ordering itself (the
// technique HLF's Kafka orderer uses with TTC-X messages), so every replica
// cuts the partial block at the same position deterministically.
#pragma once

#include <deque>
#include <memory>

#include "ledger/block.hpp"
#include "ordering/blockcutter.hpp"
#include "ordering/channels.hpp"
#include "ordering/signer.hpp"
#include "smr/replica.hpp"

namespace bft::ordering {

/// A block paired with one node's signature over its header digest, tagged
/// with the channel whose chain it extends.
struct SignedBlock {
  std::string channel;
  ledger::Block block;
  Bytes signature;

  Bytes encode() const;
  static SignedBlock decode(ByteView data);
};

/// Payload ordered by the cluster: an envelope or a time-to-cut marker.
struct OrderedPayload {
  enum class Kind : std::uint8_t { envelope = 0, time_to_cut = 1 };
  Kind kind = Kind::envelope;
  std::string channel;
  Bytes envelope;                  // kind == envelope
  std::uint64_t cut_block_number = 0;  // kind == time_to_cut

  Bytes encode() const;
  static OrderedPayload decode(ByteView data);
};

struct OrderingNodeOptions {
  /// Channels may also be created on demand by the first envelope naming
  /// them (all replicas see the same ordered stream, so creation is
  /// deterministic).
  std::string default_channel = "channel-0";
  /// Envelopes per block (the paper evaluates 10 and 100).
  std::size_t block_size = 10;
  /// Cut a partial block when envelopes wait longer than this (0 = never).
  runtime::Duration batch_timeout = 0;
  /// Simulated CPU charge per envelope handled by the node thread.
  runtime::Duration per_envelope_cost = runtime::usec(2);
  /// HLF 1.0 sometimes requires a second signature per block (footnote 10);
  /// when set, each block costs two signature computations.
  bool double_sign = false;
  /// Recent blocks kept per channel for re-announcement after a state
  /// transfer (0 disables). A node that skipped blocks while catching up
  /// never pushed them, and frontends need matching copies from a quorum —
  /// so on install it re-signs and re-pushes this window. The cache rides in
  /// the snapshot (block content is deterministic, so checkpoint digests
  /// still agree across replicas); it is the one bounded exception to the
  /// keep-no-chain rule of footnote 9.
  std::size_t push_cache_blocks = 16;
  /// Optional observability sinks (non-owning; must outlive the node). Null
  /// disables instrumentation. See OBSERVABILITY.md for the ordering.* names
  /// this node emits.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRing* trace = nullptr;
};

class OrderingNode final : public smr::StateMachine, public smr::Replier {
 public:
  OrderingNode(OrderingNodeOptions options, std::shared_ptr<BlockSigner> signer);

  /// Must be called once, after the owning replica is constructed.
  void attach(smr::Replica& replica) { replica_ = &replica; }

  // StateMachine: every ordered request payload is one OrderedPayload.
  Bytes execute(const smr::Request& request,
                const smr::ExecutionContext& ctx) override;
  Bytes snapshot() const override;
  void restore(ByteView snapshot) override;
  crypto::Hash256 integrity_digest() const override;
  void on_app_timer(std::uint64_t token) override;
  void on_recover() override;
  void on_state_installed() override;

  // Replier: block dissemination replaces per-request replies entirely.
  void on_executed(smr::Replica&, const smr::Request&, const Bytes&,
                   const smr::ExecutionContext&) override {}

  std::uint64_t blocks_created() const { return blocks_created_; }
  std::uint64_t envelopes_ordered() const { return envelopes_ordered_; }
  /// Pending envelopes in one channel's cutter (0 for unknown channels).
  std::size_t pending_in(const std::string& channel) const;
  /// Pending envelopes across all channels.
  std::size_t pending_total() const;
  std::vector<std::string> channels() const;

 private:
  struct ChannelState {
    explicit ChannelState(const std::string& name, std::size_t block_size)
        : cutter(block_size),
          next_block_number(1),
          previous_header_hash(ledger::genesis_hash(name)) {}
    BlockCutter cutter;
    std::uint64_t next_block_number;
    crypto::Hash256 previous_header_hash;
    std::deque<ledger::Block> recent_blocks;  // re-announcement window
    // (client, seq) of the envelopes pending in `cutter`, kept only while
    // tracing. Local observability state, not replicated: a state transfer
    // rebuilds the cutter without keys, so pre-transfer envelopes simply go
    // untraced. Every cut drains the whole pending set, which keeps this
    // aligned with the cutter.
    std::deque<std::pair<std::uint32_t, std::uint64_t>> trace_keys;
  };
  using TraceKeys = std::vector<std::pair<std::uint32_t, std::uint64_t>>;

  ChannelState& channel_state(const std::string& name);
  void emit_block(const std::string& channel, ChannelState& state,
                  std::vector<Bytes> envelopes);
  void sign_and_push(std::string channel, ledger::Block block,
                     TraceKeys keys = {});
  TraceKeys take_trace_keys(ChannelState& state);
  void arm_batch_timer();
  void send_cut_markers();

  OrderingNodeOptions options_;
  std::shared_ptr<BlockSigner> signer_;
  smr::Replica* replica_ = nullptr;

  std::map<std::string, ChannelState> channels_;
  std::uint64_t envelopes_ordered_ = 0;
  std::uint64_t blocks_created_ = 0;

  // Batch-timeout machinery (local, not replicated).
  bool batch_timer_armed_ = false;
  std::uint64_t marker_seq_ = 0;

  // Observability handles resolved once at construction (all null when no
  // registry is wired). Catalogue: OBSERVABILITY.md.
  struct MetricHandles {
    obs::Counter* envelopes_ordered = nullptr;
    obs::Counter* blocks_cut = nullptr;
    obs::Counter* blocks_signed = nullptr;
    obs::Counter* cut_markers = nullptr;
    obs::Gauge* pending_envelopes = nullptr;
    obs::LatencyHistogram* block_fill = nullptr;
    obs::LatencyHistogram* sign_latency = nullptr;
  };
  MetricHandles m_;
};

}  // namespace bft::ordering

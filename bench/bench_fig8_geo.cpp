// Figures 8 and 9 — geo-distributed latency, BFT-SMaRt vs WHEAT.
//
// Reproduces §6.3: ordering nodes in Oregon/Ireland/Sydney/São Paulo
// (+ Virginia for WHEAT with Vmax on Oregon and Virginia), frontends in
// Canada, Oregon, Virginia and São Paulo; ~1200 tx/s of Poisson load;
// median and 90th-percentile submit-to-delivery latency per frontend and
// envelope size.
//
// This binary prints Figure 8 (blocks of 10 envelopes) by default; pass
// --block 100 for Figure 9 (bench_fig9_geo does exactly that).
#include <cstdio>

#include "common/cli.hpp"
#include "harness.hpp"

using namespace bft;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto block = static_cast<std::size_t>(flags.get_int("block", 10));
  const double duration = flags.get_double("duration-s", 8.0);
  const double rate = flags.get_double("rate", 300.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  // Per-cell JSON export (schema: OBSERVABILITY.md); opt in with
  // --metrics-out <file>.
  const std::string metrics_out = flags.get("metrics-out", "none");
  const bool want_metrics = !metrics_out.empty() && metrics_out != "none";
  std::vector<std::string> metrics;

  std::printf("=== Figure %s: EC2-like WAN latency, blocks of %zu envelopes "
              "(4 receivers, ~%.0f tx/s) ===\n",
              block >= 100 ? "9" : "8", block, rate * 4);
  std::printf("(simulated WAN from measured AWS inter-region RTTs; WHEAT: "
              "5th replica in Virginia, Vmax on Oregon+Virginia, tentative "
              "execution)\n\n");

  const std::vector<std::size_t> sizes = {40, 200, 1024, 4096};
  for (bool wheat : {false, true}) {
    std::printf("%s\n", wheat ? "WHEAT" : "BFT-SMaRt");
    std::printf("  %10s |", "env size");
    bench::GeoConfig probe;
    probe.wheat = wheat;
    const auto names =
        (wheat ? ordering::paper_wheat_topology() : ordering::paper_bftsmart_topology())
            .frontend_regions;
    for (const auto region : names) {
      std::printf(" %-17s", sim::region_name(region).c_str());
    }
    std::printf("   (median / p90 ms)\n");
    for (std::size_t size : sizes) {
      bench::GeoConfig config;
      config.wheat = wheat;
      config.block_size = block;
      config.envelope_size = size;
      config.rate_per_frontend = rate;
      config.duration_s = duration;
      config.seed = seed;
      config.collect_metrics = want_metrics;
      const bench::GeoResult result = bench::run_geo_latency(config);
      if (want_metrics) metrics.push_back(result.metrics_json);
      std::printf("  %9zuB |", size);
      for (std::size_t j = 0; j < result.median_ms.size(); ++j) {
        std::printf(" %7.0f / %-7.0f", result.median_ms[j], result.p90_ms[j]);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  if (want_metrics) {
    std::FILE* out = std::fopen(metrics_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::fputs("[\n", out);
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      std::fputs(metrics[i].c_str(), out);
      if (i + 1 < metrics.size()) std::fputs(",", out);
      std::fputs("\n", out);
    }
    std::fputs("]\n", out);
    std::fclose(out);
    std::printf("per-stage metrics: %zu cells -> %s (schema: "
                "OBSERVABILITY.md)\n",
                metrics.size(), metrics_out.c_str());
  }
  return 0;
}

// Figure 9 — the Figure 8 experiment with blocks of 100 envelopes. The
// paper observes the same ordering with latencies up to ~63 ms higher
// (larger blocks fill more slowly at fixed load).
//
// Thin wrapper: equivalent to `bench_fig8_geo --block 100`.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "harness.hpp"

using namespace bft;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const double duration = flags.get_double("duration-s", 8.0);
  const double rate = flags.get_double("rate", 300.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  std::printf("=== Figure 9: EC2-like WAN latency, blocks of 100 envelopes "
              "(4 receivers, ~%.0f tx/s) ===\n\n", rate * 4);

  const std::vector<std::size_t> sizes = {40, 200, 1024, 4096};
  for (bool wheat : {false, true}) {
    std::printf("%s\n", wheat ? "WHEAT" : "BFT-SMaRt");
    const auto regions =
        (wheat ? ordering::paper_wheat_topology() : ordering::paper_bftsmart_topology())
            .frontend_regions;
    std::printf("  %10s |", "env size");
    for (const auto region : regions) {
      std::printf(" %-17s", sim::region_name(region).c_str());
    }
    std::printf("   (median / p90 ms)\n");
    for (std::size_t size : sizes) {
      bench::GeoConfig config;
      config.wheat = wheat;
      config.block_size = 100;
      config.envelope_size = size;
      config.rate_per_frontend = rate;
      config.duration_s = duration;
      config.seed = seed;
      const bench::GeoResult result = bench::run_geo_latency(config);
      std::printf("  %9zuB |", size);
      for (std::size_t j = 0; j < result.median_ms.size(); ++j) {
        std::printf(" %7.0f / %-7.0f", result.median_ms[j], result.p90_ms[j]);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("paper's shape check: same ordering as Figure 8 with latencies "
              "up to ~63 ms higher\n(block formation slows at fixed load when "
              "blocks are 10x larger).\n");
  return 0;
}

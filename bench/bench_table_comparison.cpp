// The §8 comparison row: even the ordering service's WORST evaluated
// configuration (large blocks to 32 receivers on a 10-node cluster) beats
// Ethereum's theoretical 1,000 tx/s and Bitcoin's 7 tx/s — plus our
// crash-fault (Kafka-like) baseline for context on the cost of BFT.
#include <cstdio>

#include "common/cli.hpp"
#include "harness.hpp"
#include "ordering/crash_ordering.hpp"

using namespace bft;

namespace {

// Closed-loop throughput of the primary/backup CFT baseline on the same LAN.
double run_cft_throughput(std::uint32_t nodes, std::size_t envelope_size,
                          double measure_s) {
  const std::uint64_t seed = 1;
  runtime::SimCluster cluster(
      sim::make_lan(140, sim::kMillisecond / 20, sim::NetworkConfig{}, seed),
      seed);
  ordering::CrashOrderingOptions options;
  for (std::uint32_t i = 0; i < nodes; ++i) options.nodes.push_back(i);
  options.block_size = 10;
  options.stub_signatures = true;
  std::vector<std::unique_ptr<ordering::CrashOrderingNode>> cft;
  for (std::uint32_t i = 0; i < nodes; ++i) {
    cft.push_back(std::make_unique<ordering::CrashOrderingNode>(i, options));
    cluster.add_process(i, cft.back().get(), sim::CpuConfig{});
  }
  ordering::FrontendOptions fo;
  fo.required_copies = 1;
  fo.track_latency = false;
  ordering::Frontend receiver(smr::ClusterConfig::classic(options.nodes), fo);
  cluster.add_process(100, &receiver);
  ordering::FrontendOptions so = fo;
  so.receive_blocks = false;
  ordering::Frontend submitter(smr::ClusterConfig::classic(options.nodes), so);
  cluster.add_process(101, &submitter);

  const ordering::CrashOrderingNode* primary = cft.front().get();
  auto submitted = std::make_shared<std::uint64_t>(0);
  const auto total =
      static_cast<sim::SimTime>((0.4 + measure_s) * sim::kSecond);
  std::function<void()> top_up = [&cluster, &submitter, primary, submitted,
                                  envelope_size, total, &top_up] {
    while (*submitted < primary->committed() + 3000) {
      Bytes e(envelope_size, 0x5a);
      Writer w;
      w.u64((*submitted)++);
      std::copy(w.data().begin(), w.data().end(), e.begin());
      submitter.submit(std::move(e));
    }
    if (cluster.now() < total) {
      cluster.schedule_at(cluster.now() + sim::kMillisecond, [&top_up] { top_up(); });
    }
  };
  cluster.schedule_at(sim::kMillisecond / 10, [&top_up] { top_up(); });

  auto delivered_at_warmup = std::make_shared<std::uint64_t>(0);
  cluster.schedule_at(static_cast<sim::SimTime>(0.4 * sim::kSecond),
                      [&receiver, delivered_at_warmup] {
                        *delivered_at_warmup = receiver.delivered_envelopes();
                      });
  cluster.run_until(total);
  return static_cast<double>(receiver.delivered_envelopes() -
                             *delivered_at_warmup) /
         measure_s;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const double measure_s = flags.get_double("measure-s", 1.0);

  std::printf("=== §8 comparison: ordering-service throughput in context ===\n\n");

  bench::LanConfig best;
  best.orderers = 4;
  best.block_size = 100;
  best.envelope_size = 40;
  best.receivers = 2;
  best.measure_s = measure_s;
  const double best_tps = bench::run_lan_throughput(best).throughput_tps;

  bench::LanConfig worst;
  worst.orderers = 10;
  worst.block_size = 100;
  worst.envelope_size = 4096;
  worst.receivers = 32;
  worst.measure_s = measure_s;
  const double worst_tps = bench::run_lan_throughput(worst).throughput_tps;

  // The paper's 2.2k tx/s converged value implies ~10x more aggregate
  // bandwidth into the two client machines than plain 1 GbE (see
  // EXPERIMENTS.md); re-run with client NICs at 10 GbE to match the
  // implied testbed.
  bench::LanConfig worst10 = worst;
  worst10.client_bandwidth_bps = 1.25e9;
  const double worst10_tps = bench::run_lan_throughput(worst10).throughput_tps;

  const double cft_tps = run_cft_throughput(3, 1024, measure_s);

  std::printf("%-52s %14s\n", "system / configuration", "tx/s");
  std::printf("%-52s %14s\n",
              "BFT ordering, best evaluated (4 nodes, 40B, 100/blk)",
              bench::format_k(best_tps).c_str());
  std::printf("%-52s %14s\n",
              "BFT ordering, worst evaluated (10 nodes, 4KB, r=32)",
              bench::format_k(worst_tps).c_str());
  std::printf("%-52s %14s\n",
              "  ... same, client NICs at 10 GbE (paper-implied)",
              bench::format_k(worst10_tps).c_str());
  std::printf("%-52s %14s\n", "CFT (Kafka-like) baseline (3 nodes, 1KB)",
              bench::format_k(cft_tps).c_str());
  std::printf("%-52s %14s\n", "Ethereum (theoretical peak, [7])", "1.0k");
  std::printf("%-52s %14s\n", "Bitcoin (peak, [25])", "7");
  std::printf("\npaper's §8 claim: even the worst evaluated configuration "
              "(~2.2k tx/s on their\ntestbed) is >2x Ethereum's theoretical "
              "peak and vastly above Bitcoin.\n");
  return 0;
}

// Figure 7 (a-f) — BFT-SMaRt ordering-service throughput on a Gigabit LAN
// for different envelope sizes, block sizes, cluster sizes and receiver
// counts, plus the Eq. (1) signing bound.
//
// Defaults regenerate all six panels:
//   orderers in {4, 7, 10} x block size in {10, 100},
//   envelope sizes {40 B, 200 B, 1 KB, 4 KB}, receivers {1, 2, 4, 8, 16, 32}.
//
// Flags narrow the sweep: --orderers 4 --block 10 --receivers 1,2,4
// --sizes 40,1024 --measure-s 1.2 --seed 1
//
// --workers N,M adds the staged-pipeline dimension: each panel re-runs with
// that many prologue workers per ordering node (0 = serial reference path;
// see DESIGN.md §10). Workers only move cells where the protocol thread is
// the bound — the 100-envelope/small-payload panels — and leave sign-bound
// cells unchanged.
//
// Unless --metrics-out none, every cell also exports its per-stage latency
// breakdown (obs registry + trace, schema in OBSERVABILITY.md) and the sweep
// writes them as a JSON array, one object per cell, default
// fig7_lan_metrics.json. --json-out FILE additionally writes a coarse
// per-cell summary (throughput + signing bound) for regression snapshots.
#include <cstdio>
#include <sstream>

#include "common/cli.hpp"
#include "harness.hpp"

using namespace bft;
using bench::LanConfig;
using bench::LanResult;

namespace {

std::vector<std::uint64_t> parse_list(const std::string& text) {
  std::vector<std::uint64_t> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoull(item));
  return out;
}

/// One sweep cell for the --json-out summary snapshot (the coarse numbers a
/// regression diff cares about; --metrics-out keeps the per-stage detail).
struct SummaryCell {
  std::uint32_t orderers;
  std::size_t block_size;
  std::uint32_t workers;
  std::uint64_t envelope_size;
  std::uint64_t receivers;
  double throughput_tps;
  double sign_bound_tps;
};

void run_panel(std::uint32_t orderers, std::size_t block_size,
               std::uint32_t workers, const std::vector<std::uint64_t>& sizes,
               const std::vector<std::uint64_t>& receivers, double measure_s,
               std::uint64_t seed, std::vector<std::string>* metrics_json,
               std::vector<SummaryCell>* summary) {
  std::printf("--- %u orderers, %zu envelopes/block, %u prologue workers ---\n",
              orderers, block_size, workers);
  std::printf("%10s |", "env size");
  for (std::uint64_t r : receivers) std::printf("  r=%-8llu", (unsigned long long)r);
  std::printf("   sign-bound (Eq.1)\n");
  for (std::uint64_t size : sizes) {
    std::printf("%9lluB |", (unsigned long long)size);
    double bound = 0;
    for (std::uint64_t r : receivers) {
      LanConfig config;
      config.orderers = orderers;
      config.block_size = block_size;
      config.envelope_size = static_cast<std::size_t>(size);
      config.receivers = static_cast<std::uint32_t>(r);
      config.measure_s = measure_s;
      config.seed = seed;
      config.workers = workers;
      config.collect_metrics = metrics_json != nullptr;
      const LanResult result = bench::run_lan_throughput(config);
      if (metrics_json != nullptr) metrics_json->push_back(result.metrics_json);
      if (summary != nullptr) {
        summary->push_back({orderers, block_size, workers, size, r,
                            result.throughput_tps, result.sign_bound_tps});
      }
      bound = result.sign_bound_tps;
      std::printf("  %-9s", bench::format_k(result.throughput_tps).c_str());
      std::fflush(stdout);
    }
    std::printf("   %s tx/s\n", bench::format_k(bound).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto orderers_list =
      parse_list(flags.get("orderers", "4,7,10"));
  const auto block_list = parse_list(flags.get("block", "10,100"));
  const auto sizes = parse_list(flags.get("sizes", "40,200,1024,4096"));
  const auto receivers = parse_list(flags.get("receivers", "1,2,4,8,16,32"));
  const auto workers_list = parse_list(flags.get("workers", "0"));
  const double measure_s = flags.get_double("measure-s", 1.2);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string metrics_out =
      flags.get("metrics-out", "fig7_lan_metrics.json");
  const std::string json_out = flags.get("json-out", "");
  const std::string unused = flags.unused();
  if (!unused.empty()) {
    std::fprintf(stderr, "unknown flags: %s\n", unused.c_str());
    return 2;
  }

  std::printf("=== Figure 7: ordering-service throughput (tx/s) vs number of "
              "receivers ===\n");
  std::printf("(simulated Gigabit LAN; 16-thread nodes; paper-calibrated "
              "ECDSA cost 1.905 ms; 32 closed-loop submitters on 2 client "
              "machines; batch limit 400)\n\n");
  std::vector<std::string> metrics;
  std::vector<SummaryCell> summary;
  const bool want_metrics = !metrics_out.empty() && metrics_out != "none";
  for (std::uint64_t n : orderers_list) {
    for (std::uint64_t bs : block_list) {
      for (std::uint64_t w : workers_list) {
        run_panel(static_cast<std::uint32_t>(n), static_cast<std::size_t>(bs),
                  static_cast<std::uint32_t>(w), sizes, receivers, measure_s,
                  seed, want_metrics ? &metrics : nullptr,
                  json_out.empty() ? nullptr : &summary);
      }
    }
  }
  if (!json_out.empty()) {
    std::FILE* out = std::fopen(json_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fputs("[\n", out);
    for (std::size_t i = 0; i < summary.size(); ++i) {
      const SummaryCell& c = summary[i];
      std::fprintf(out,
                   "  {\"bench\": \"fig7_lan\", \"orderers\": %u, "
                   "\"block_size\": %zu, \"workers\": %u, "
                   "\"envelope_bytes\": %llu, "
                   "\"receivers\": %llu, \"throughput_tps\": %.0f, "
                   "\"sign_bound_tps\": %.0f}%s\n",
                   c.orderers, c.block_size, c.workers,
                   static_cast<unsigned long long>(c.envelope_size),
                   static_cast<unsigned long long>(c.receivers),
                   c.throughput_tps, c.sign_bound_tps,
                   i + 1 < summary.size() ? "," : "");
    }
    std::fputs("]\n", out);
    std::fclose(out);
    std::printf("\nsummary snapshot: %zu cells -> %s\n", summary.size(),
                json_out.c_str());
  }
  if (want_metrics) {
    std::FILE* out = std::fopen(metrics_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::fputs("[\n", out);
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      std::fputs(metrics[i].c_str(), out);
      if (i + 1 < metrics.size()) std::fputs(",", out);
      std::fputs("\n", out);
    }
    std::fputs("]\n", out);
    std::fclose(out);
    std::printf("\nper-stage metrics: %zu cells -> %s (schema: "
                "OBSERVABILITY.md)\n",
                metrics.size(), metrics_out.c_str());
  }
  std::printf(
      "paper's shape checks: (i) 10 env/block peaks ~50k tx/s, well below\n"
      "the Eq.(1) signing bound, because signing contends with the protocol\n"
      "stack; (ii) 100 env/block lifts small-envelope throughput (block rate\n"
      "~1.1k/s, no CPU exhaustion); (iii) 1-4 KB envelopes are bounded by the\n"
      "replication protocol and drop with cluster size; (iv) at 16-32\n"
      "receivers all curves converge (block fan-out dominates).\n");
  return 0;
}

// Transport micro-benchmark: TcpTransport frame throughput over loopback.
//
// Two transports (one "node", one "frontend") on 127.0.0.1; the sender pumps
// frames of each payload size for a fixed window and the receiver counts
// arrivals. Reported per size: send-side frame rate, delivered frame rate,
// goodput (payload MB/s) and frames shed by the bounded send queue — the
// backpressure behaviour an overloaded ordering node would see. Loopback has
// no propagation delay, so this measures the framing + queue + thread-handoff
// overhead that sits under every real deployment (DESIGN.md §2b).
//
// Every received frame is hash-verified (SHA-256 over the payload, a
// stand-in for signature verification). --workers 0 (default) verifies
// inline on the receiver's read thread — the serial reference. --workers N
// stages the verify through a WorkerPoolRunner: prologue on a worker,
// ordered epilogue counts the delivery — so the workers columns measure
// exactly what moving verification off the receive thread buys (and costs,
// via the reorder handoff) at each payload size.
//
//   bench_transport_loopback [--seconds 1.0] [--sizes 40,200,1024,4096]
//                            [--queue 1024] [--workers 0] [--json-out FILE]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/cli.hpp"
#include "crypto/sha256.hpp"
#include "runtime/runner.hpp"
#include "runtime/tcp_transport.hpp"

using namespace bft;

namespace {

// Grabs an ephemeral port by binding to 0; the tiny close-to-listen race is
// acceptable for a local bench.
std::uint16_t free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  ::close(fd);
  return ntohs(addr.sin_port);
}

std::vector<std::size_t> parse_sizes(const std::string& csv) {
  std::vector<std::size_t> sizes;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string item =
        csv.substr(pos, comma == std::string::npos ? csv.npos : comma - pos);
    if (!item.empty()) sizes.push_back(std::stoul(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const double seconds = flags.get_double("seconds", 1.0);
  const std::size_t queue =
      static_cast<std::size_t>(flags.get_int("queue", 1024));
  const std::vector<std::size_t> sizes =
      parse_sizes(flags.get("sizes", "40,200,1024,4096"));
  const auto workers = static_cast<std::uint32_t>(flags.get_int("workers", 0));
  const std::string json_out = flags.get("json-out", "");
  if (!flags.unused().empty()) {
    std::fprintf(stderr,
                 "usage: bench_transport_loopback [--seconds S] "
                 "[--sizes a,b,...] [--queue N] [--workers W] "
                 "[--json-out FILE]\n%s\n",
                 flags.unused().c_str());
    return 2;
  }

  struct Row {
    std::size_t payload_bytes;
    double sent_per_s;
    double delivered_per_s;
    double goodput_mb_s;
    std::uint64_t shed;
  };
  std::vector<Row> rows;

  std::printf(
      "TcpTransport loopback throughput (%.1f s/size, queue %zu, "
      "%u prologue workers)\n\n",
      seconds, queue, workers);
  std::printf("%10s %14s %14s %12s %10s\n", "payload", "sent/s", "delivered/s",
              "goodput", "shed");

  for (const std::size_t size : sizes) {
    const std::uint16_t node_port = free_port();
    const std::uint16_t frontend_port = free_port();
    const runtime::Topology topology = runtime::Topology::parse(
        "node 0 127.0.0.1:" + std::to_string(node_port) +
        "\nfrontend 1 127.0.0.1:" + std::to_string(frontend_port) + "\n");

    runtime::TcpTransportOptions options;
    options.send_queue_capacity = queue;
    runtime::TcpTransport sender(topology, {0}, options);
    runtime::TcpTransport receiver(topology, {1}, options);

    std::atomic<std::uint64_t> delivered{0};
    // workers > 0: stage the hash-verify through the runner — prologue on a
    // worker, ordered epilogue counts the delivery (the same shape
    // RealCluster uses for inbound envelopes).
    std::unique_ptr<runtime::WorkerPoolRunner> runner;
    if (workers > 0) {
      runtime::WorkerPoolRunnerOptions ro;
      ro.workers = workers;
      runner = std::make_unique<runtime::WorkerPoolRunner>(
          ro, [](runtime::Epilogue epilogue) { epilogue(); });
    }
    receiver.start([&delivered, &runner](runtime::ProcessId, runtime::ProcessId,
                                         Payload payload) {
      if (runner == nullptr) {
        // Serial reference: hash-verify inline on the read thread.
        volatile std::uint8_t sink = crypto::sha256(payload.view())[0];
        (void)sink;
        delivered.fetch_add(1);
        return;
      }
      runner->submit([&delivered, payload]() -> runtime::Epilogue {
        volatile std::uint8_t sink = crypto::sha256(payload.view())[0];
        (void)sink;
        return [&delivered] { delivered.fetch_add(1); };
      });
    });
    sender.start([](runtime::ProcessId, runtime::ProcessId, Payload) {});

    // One shared allocation for every send, as a broadcast would use.
    const Payload payload(Bytes(size, 0xa5));
    std::uint64_t accepted = 0;
    std::uint64_t attempted = 0;
    const auto start = std::chrono::steady_clock::now();
    const auto deadline = start + std::chrono::duration<double>(seconds);
    while (std::chrono::steady_clock::now() < deadline) {
      // Batch between clock reads; sends are non-blocking by contract.
      for (int i = 0; i < 256; ++i) {
        ++attempted;
        if (sender.send(0, 1, payload)) ++accepted;
      }
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    // Let the writer/reader drain what was queued before measuring delivery.
    const std::uint64_t target = accepted;
    const auto drain_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (delivered.load() < target &&
           std::chrono::steady_clock::now() < drain_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    sender.stop();
    receiver.stop();

    const double sent_rate = static_cast<double>(attempted) / elapsed;
    const double delivered_rate = static_cast<double>(delivered.load()) / elapsed;
    const double goodput_mbs =
        delivered_rate * static_cast<double>(size) / 1e6;
    std::printf("%9zuB %12.0f/s %12.0f/s %9.1fMB/s %10llu\n", size, sent_rate,
                delivered_rate, goodput_mbs,
                static_cast<unsigned long long>(sender.frames_dropped()));
    rows.push_back(
        {size, sent_rate, delivered_rate, goodput_mbs, sender.frames_dropped()});
  }

  std::printf(
      "\nshed = frames dropped by the bounded per-peer send queue "
      "(transport.send_dropped)\n");

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::perror("fopen --json-out");
      return 1;
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "  {\"bench\": \"transport_loopback\", "
                   "\"payload_bytes\": %zu, \"workers\": %u, "
                   "\"sent_per_s\": %.0f, "
                   "\"delivered_per_s\": %.0f, \"goodput_mb_s\": %.2f, "
                   "\"shed\": %llu}%s\n",
                   r.payload_bytes, workers, r.sent_per_s, r.delivered_per_s,
                   r.goodput_mb_s, static_cast<unsigned long long>(r.shed),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_out.c_str());
  }
  return 0;
}

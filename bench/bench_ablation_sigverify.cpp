// Ablation — §5 footnote 8: frontends that verify block signatures need only
// f+1 matching copies; non-verifying frontends need 2f+1. Verification
// reduces the number of block copies a frontend must wait for (better
// latency/availability) at the cost of CPU at the frontend.
#include <cstdio>

#include "common/cli.hpp"
#include "harness.hpp"

using namespace bft;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const double measure_s = flags.get_double("measure-s", 1.0);

  std::printf("=== Ablation: frontend signature verification (f+1 copies) vs "
              "matching-only (2f+1 copies) ===\n\n");
  std::printf("%10s %10s | %14s %14s\n", "orderers", "receivers",
              "verify f+1", "match 2f+1");
  for (std::uint32_t orderers : {4u, 7u, 10u}) {
    for (std::uint32_t receivers : {4u, 16u}) {
      double tps[2] = {0, 0};
      for (int mode = 0; mode < 2; ++mode) {
        bench::LanConfig config;
        config.orderers = orderers;
        config.block_size = 10;
        config.envelope_size = 1024;
        config.receivers = receivers;
        config.verify_signatures = mode == 0;
        config.measure_s = measure_s;
        tps[mode] = bench::run_lan_throughput(config).throughput_tps;
      }
      std::printf("%10u %10u | %14s %14s\n", orderers, receivers,
                  bench::format_k(tps[0]).c_str(),
                  bench::format_k(tps[1]).c_str());
      std::fflush(stdout);
    }
  }
  std::printf("\nthroughput is similar (every node still pushes to every "
              "receiver); the win of\nverification is needing only f+1 "
              "matching copies — delivery completes as soon as\nthe f+1 "
              "fastest nodes respond, which matters under stragglers and "
              "faults.\n");
  return 0;
}

// Ablation — BFT-SMaRt batch-limit sweep. The paper fixes the batch limit at
// 400 requests (§6.2, where it sizes the PROPOSE message at 0.39/1.6 MB for
// 1/4 KB envelopes). This sweep shows why: small batches waste consensus
// round-trips; very large ones only grow the PROPOSE without more throughput.
#include <cstdio>

#include "common/cli.hpp"
#include "harness.hpp"

using namespace bft;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto size = static_cast<std::size_t>(flags.get_int("size", 1024));
  const double measure_s = flags.get_double("measure-s", 1.0);

  std::printf("=== Ablation: batch-limit sweep (4 orderers, %zu B envelopes, "
              "blocks of 10, 1 receiver) ===\n\n", size);
  std::printf("%12s  %14s  %14s\n", "batch limit", "tx/s", "blocks/s");
  for (std::uint32_t batch : {1u, 10u, 50u, 100u, 200u, 400u, 800u}) {
    bench::LanConfig config;
    config.orderers = 4;
    config.block_size = 10;
    config.envelope_size = size;
    config.receivers = 1;
    config.batch_max = batch;
    config.measure_s = measure_s;
    const bench::LanResult result = bench::run_lan_throughput(config);
    std::printf("%12u  %14s  %14.0f\n", batch,
                bench::format_k(result.throughput_tps).c_str(),
                result.block_rate);
    std::fflush(stdout);
  }
  std::printf("\nthroughput climbs steeply up to a few hundred requests per "
              "batch, then\nflattens — the paper's 400 sits on the plateau.\n");
  return 0;
}

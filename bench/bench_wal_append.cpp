// WAL micro-benchmark: append throughput vs fsync policy.
//
// Drives storage::WriteAheadLog directly with fixed-size values and reports,
// per policy (always | group | off), the sustained append rate and payload
// bandwidth. `always` pays one fsync per append, `group` amortizes one fsync
// over every append in a flusher window (DESIGN.md §9), `off` never syncs —
// so the spread between the three rows is the price of each durability level
// on this machine's storage stack.
//
//   bench_wal_append [--records 5000] [--bytes 512] [--segment-mb 8]
//                    [--policies always,group,off] [--json-out FILE]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "storage/wal.hpp"

using namespace bft;

namespace {

struct Row {
  std::string policy;
  std::uint64_t records = 0;
  std::size_t payload_bytes = 0;
  double append_per_s = 0;
  double mb_per_s = 0;
  double wall_s = 0;
};

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string item =
        csv.substr(pos, comma == std::string::npos ? csv.npos : comma - pos);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const std::uint64_t records =
      static_cast<std::uint64_t>(flags.get_int("records", 5000));
  const std::size_t payload_bytes =
      static_cast<std::size_t>(flags.get_int("bytes", 512));
  const std::size_t segment_bytes =
      static_cast<std::size_t>(flags.get_int("segment-mb", 8)) << 20;
  const std::vector<std::string> policies =
      split_csv(flags.get("policies", "always,group,off"));
  const std::string json_out = flags.get("json-out", "");
  if (!flags.unused().empty()) {
    std::fprintf(stderr,
                 "usage: bench_wal_append [--records N] [--bytes B] "
                 "[--segment-mb M] [--policies a,b,...] [--json-out FILE]\n%s\n",
                 flags.unused().c_str());
    return 2;
  }

  char dir_template[] = "/tmp/bft-wal-bench-XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  const std::filesystem::path base(dir_template);

  std::printf("WAL append throughput (%llu records x %zu B, %zu MiB segments)\n\n",
              static_cast<unsigned long long>(records), payload_bytes,
              segment_bytes >> 20);
  std::printf("%8s %14s %12s %10s\n", "fsync", "appends/s", "bandwidth",
              "wall");

  const Bytes value(payload_bytes, 0xa5);
  std::vector<Row> rows;
  for (const std::string& name : policies) {
    const auto policy = storage::parse_fsync_policy(name);
    if (!policy.ok()) {
      std::fprintf(stderr, "unknown fsync policy: %s\n", name.c_str());
      return 2;
    }

    storage::WalOptions options;
    options.directory = (base / name).string();
    options.segment_bytes = segment_bytes;
    options.fsync = policy.value();
    auto opened = storage::WriteAheadLog::open(std::move(options));
    if (!opened.ok()) {
      std::fprintf(stderr, "open failed: %s\n", opened.error().c_str());
      return 1;
    }
    std::unique_ptr<storage::WriteAheadLog> wal = std::move(opened).take();

    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t cid = 1; cid <= records; ++cid) {
      const Status st = wal->append(cid, value);
      if (!st.is_ok()) {
        std::fprintf(stderr, "append failed: %s\n", st.error().c_str());
        return 1;
      }
    }
    // Count the outstanding group-commit window against the run, so `group`
    // reports durable throughput rather than page-cache throughput.
    wal->flush();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    Row row;
    row.policy = name;
    row.records = records;
    row.payload_bytes = payload_bytes;
    row.wall_s = elapsed;
    row.append_per_s = static_cast<double>(records) / elapsed;
    row.mb_per_s =
        row.append_per_s * static_cast<double>(payload_bytes) / 1e6;
    rows.push_back(row);
    std::printf("%8s %12.0f/s %9.1fMB/s %9.3fs\n", name.c_str(),
                row.append_per_s, row.mb_per_s, row.wall_s);

    wal.reset();  // close before deleting the directory
    std::error_code ec;
    std::filesystem::remove_all(base / name, ec);
  }
  std::error_code ec;
  std::filesystem::remove_all(base, ec);

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::perror("fopen --json-out");
      return 1;
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "  {\"bench\": \"wal_append\", \"fsync\": \"%s\", "
                   "\"records\": %llu, \"payload_bytes\": %zu, "
                   "\"appends_per_s\": %.0f, \"mb_per_s\": %.2f, "
                   "\"wall_s\": %.4f}%s\n",
                   r.policy.c_str(),
                   static_cast<unsigned long long>(r.records), r.payload_bytes,
                   r.append_per_s, r.mb_per_s, r.wall_s,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_out.c_str());
  }
  return 0;
}

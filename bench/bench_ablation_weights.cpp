// Ablation — which of WHEAT's two mechanisms buys what on the WAN?
//
// The paper evaluates WHEAT as a bundle (weighted voting + tentative
// execution, §4). This ablation toggles them independently on the Figure 8
// topology:
//   * baseline        — 4-replica BFT-SMaRt (no 5th replica);
//   * +replica        — 5 replicas, uniform weights, no tentative execution
//                       (adding a spare replica alone HURTS: quorums grow);
//   * +weights        — binary weights, deliver at ACCEPT;
//   * +tentative      — uniform weights, deliver at WRITE quorum;
//   * WHEAT           — both (the paper's configuration).
#include <cstdio>

#include "common/cli.hpp"
#include "harness.hpp"

using namespace bft;

namespace {

void run_row(const char* label, const bench::GeoConfig& config) {
  const bench::GeoResult result = bench::run_geo_latency(config);
  std::printf("%-12s |", label);
  for (std::size_t j = 0; j < result.median_ms.size(); ++j) {
    std::printf(" %6.0f / %-6.0f", result.median_ms[j], result.p90_ms[j]);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  bench::GeoConfig base;
  base.block_size = static_cast<std::size_t>(flags.get_int("block", 10));
  base.envelope_size = static_cast<std::size_t>(flags.get_int("size", 1024));
  base.duration_s = flags.get_double("duration-s", 8.0);
  base.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  std::printf("=== Ablation: WHEAT = weighted voting + tentative execution "
              "===\n(Fig. 8 topology, %zu B envelopes, blocks of %zu; median "
              "/ p90 ms per frontend)\n\n", base.envelope_size, base.block_size);
  std::printf("%-12s | %-15s %-15s %-15s %-15s\n", "variant", "Canada",
              "Oregon", "Virginia", "SaoPaulo");

  bench::GeoConfig c = base;
  c.wheat = false;
  run_row("baseline", c);

  c = base;
  c.wheat = true;
  c.use_weights = false;
  c.use_tentative = false;
  run_row("+replica", c);

  c = base;
  c.wheat = true;
  c.use_weights = true;
  c.use_tentative = false;
  run_row("+weights", c);

  c = base;
  c.wheat = true;
  c.use_weights = false;
  c.use_tentative = true;
  run_row("+tentative", c);

  c = base;
  c.wheat = true;
  run_row("WHEAT", c);

  std::printf("\nreading: the spare replica alone enlarges quorums (4-of-5) "
              "but adds a\nwell-placed machine; weights shrink the quorum to "
              "the fast replicas; tentative\nexecution removes the ACCEPT "
              "round from the critical path; WHEAT composes both\n(paper: "
              "~50%% below BFT-SMaRt).\n");
  return 0;
}

// Figure 6 — "Signature Generation for Fabric blocks".
//
// Reproduces the §6.1 micro-benchmark: rate of ECDSA block signatures as a
// function of worker threads, for blocks of 10 zero-byte envelopes. Signing
// covers only the (constant-size) block header, which is why the paper
// observes the same curve for every envelope/block size.
//
// This benchmark uses REAL ECDSA (our from-scratch secp256k1) on the host
// CPU. Absolute rates differ from the paper's 2009-era Xeon E5520 + Java
// stack (which peaks at 8.4 ksig/s on 16 hardware threads); the reproduced
// claim is the near-linear scaling up to the core count.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "ledger/block.hpp"
#include "ordering/signer.hpp"

using namespace bft;

namespace {

double measure_rate(std::size_t threads, double seconds) {
  const ordering::EcdsaBlockSigner signer(0);
  // Block of 10 empty envelopes; each iteration signs a fresh header (the
  // sequence number advances), as the ordering node does.
  std::atomic<std::uint64_t> total{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&signer, &total, &stop, t] {
      std::uint64_t n = t << 32;
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const ledger::Block block = ledger::make_block(
            n++, crypto::sha256(to_bytes("prev")), std::vector<Bytes>(10));
        (void)signer.sign(block.header.digest());
        ++local;
      }
      total.fetch_add(local);
    });
  }
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& w : workers) w.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(total.load()) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const double seconds = flags.get_double("seconds", 0.4);
  const auto max_threads =
      static_cast<std::size_t>(flags.get_int("max-threads", 16));

  std::printf("=== Figure 6: ECDSA block-signature generation vs worker "
              "threads ===\n");
  std::printf("(blocks of 10 empty envelopes; real secp256k1 ECDSA on this "
              "host, %zu hardware threads)\n\n",
              static_cast<std::size_t>(std::thread::hardware_concurrency()));
  std::printf("%8s  %22s  %10s  %26s\n", "threads", "host ksignatures/sec",
              "scaling", "paper-model ksig/s (R410)");

  const std::size_t hw = std::thread::hardware_concurrency();
  double base = 0;
  for (std::size_t threads : {1u, 2u, 4u, 6u, 8u, 10u, 12u, 14u, 16u}) {
    if (threads > max_threads) break;
    const double rate = measure_rate(threads, seconds);
    if (threads == 1) base = rate;
    // Calibrated model: each R410 hardware thread signs at 1/1.905ms; the
    // curve is linear up to the 16 hardware threads (Figure 6's shape).
    const double model =
        static_cast<double>(std::min<std::size_t>(threads, 16)) / 1.905e-3;
    std::printf("%8zu  %22.2f  %9.2fx  %26.2f\n", threads, rate / 1000.0,
                rate / base, model / 1000.0);
  }
  if (hw < 16) {
    std::printf("\nNOTE: this host exposes only %zu hardware thread(s); the "
                "measured curve saturates there.\nThe paper-model column shows "
                "the calibrated R410 behaviour the simulator uses.\n", hw);
  }
  std::printf("\npaper (Dell R410, 16 HW threads, Java): peaks at ~8.4 "
              "ksig/s; with blocks of 10 envelopes that bounds the service "
              "at 84k tx/s (Eq. 1).\n");
  return 0;
}

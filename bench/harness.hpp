// Shared experiment harness for the paper-reproduction benchmarks.
//
// Two experiment families:
//   * LAN throughput (Figure 7 / Eq. 1): ordering cluster on a simulated
//     Gigabit LAN, 32 submitters + r receivers packed onto two client
//     machines (as in §6.2), closed-loop injection, throughput measured at
//     ordering node 0;
//   * WAN latency (Figures 8 and 9): the paper's EC2 topology, Poisson load,
//     median/p90 submit-to-delivery latency per frontend.
#pragma once

#include <string>
#include <vector>

#include "obs/export.hpp"
#include "ordering/deployment.hpp"
#include "ordering/geo.hpp"
#include "runtime/sim_runtime.hpp"

namespace bft::bench {

// --------------------------------------------------------------------------
// LAN throughput (Figure 7)
// --------------------------------------------------------------------------

struct LanConfig {
  std::uint32_t orderers = 4;
  std::size_t block_size = 10;       // envelopes per block
  std::size_t envelope_size = 1024;  // bytes
  std::uint32_t receivers = 1;       // frontends receiving blocks
  std::uint32_t submitters = 32;     // client threads injecting load (§6.2)
  std::uint32_t outstanding_window = 3200;  // closed-loop credits
  double warmup_s = 0.4;
  double measure_s = 1.2;
  std::uint64_t seed = 1;
  bool double_sign = false;
  std::uint32_t batch_max = 400;
  /// Frontends verify signatures (f+1 blocks suffice) — §5 footnote 8.
  bool verify_signatures = false;
  /// NIC bandwidth of the two client machines hosting the receivers and
  /// submitters, bytes/s. Default: the same Gigabit as the nodes. The
  /// paper's converged throughput numbers imply substantially more aggregate
  /// client-side bandwidth (see EXPERIMENTS.md); the comparison bench uses
  /// this knob to show both readings.
  double client_bandwidth_bps = 125e6;
  /// Staged-pipeline prologue workers per ordering node (--workers). 0 runs
  /// the serial reference path: prologue + epilogue charged as one protocol
  /// job, byte-identical to the pre-pipeline behaviour. N > 0 serves the
  /// prologue share of every message (wire decode, structural checks,
  /// signature verification) on N parallel workers with ordered epilogues,
  /// which moves the Fig. 7 large-block cells off the protocol-thread bound.
  std::uint32_t workers = 0;
  /// Wire an obs::MetricsRegistry + TraceRing into ordering node 0, the
  /// probe receiver and every submitter, and export the per-stage JSON
  /// breakdown into LanResult::metrics_json. Purely host-side: recording
  /// never touches simulated time, RNGs or event order, so throughput
  /// numbers are identical with or without it.
  bool collect_metrics = false;
};

struct LanResult {
  double throughput_tps = 0;      // envelopes/s measured at node 0
  double block_rate = 0;          // blocks/s at node 0
  double sign_bound_tps = 0;      // Eq.(1): TPsign * block size (idle-CPU bound)
  double leader_utilization = 0;  // protocol-thread EWMA at node 0
  std::uint64_t delivered_at_receiver = 0;
  /// JSON export (see OBSERVABILITY.md); empty unless collect_metrics.
  std::string metrics_json;
};

LanResult run_lan_throughput(const LanConfig& config);

// --------------------------------------------------------------------------
// WAN latency (Figures 8 and 9)
// --------------------------------------------------------------------------

struct GeoConfig {
  bool wheat = false;                // 5th replica + weights + tentative exec
  std::size_t block_size = 10;       // 10 (Fig 8) or 100 (Fig 9)
  std::size_t envelope_size = 1024;  // 40 / 200 / 1024 / 4096
  double rate_per_frontend = 300.0;  // tx/s; 4 frontends ≈ 1200 tx/s total
  double duration_s = 8.0;
  std::uint64_t seed = 1;
  // Ablation knobs (bench_ablation_weights): run WHEAT's two mechanisms
  // independently. Only meaningful when `wheat` is true.
  bool use_weights = true;
  bool use_tentative = true;
  /// As in LanConfig: instrument node 0 and every frontend, export JSON into
  /// GeoResult::metrics_json. Geo frontends both submit and receive, so the
  /// trace closes the full submit→frontend_accept chain per envelope.
  bool collect_metrics = false;
};

struct GeoResult {
  std::vector<std::string> frontend_names;
  std::vector<double> median_ms;
  std::vector<double> p90_ms;
  std::vector<std::size_t> samples;
  /// JSON export (see OBSERVABILITY.md); empty unless collect_metrics.
  std::string metrics_json;
};

GeoResult run_geo_latency(const GeoConfig& config);

/// Formats "50.3k" style numbers like the paper's axes.
std::string format_k(double value);

}  // namespace bft::bench

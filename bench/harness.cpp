#include "harness.hpp"

#include <cstdio>
#include <memory>

namespace bft::bench {

using runtime::ProcessId;
using sim::kMillisecond;
using sim::kSecond;

namespace {

constexpr ProcessId kReceiverBase = 100;
constexpr ProcessId kSubmitterBase = 200;

Bytes make_envelope(std::uint64_t id, std::size_t size) {
  Writer w(size);
  w.u64(id);
  Bytes e = std::move(w).take();
  e.resize(std::max<std::size_t>(size, 8), 0x5a);
  return e;
}

}  // namespace

LanResult run_lan_throughput(const LanConfig& config) {
  // --- observability (optional; probe = ordering node 0) ---
  obs::MetricsRegistry registry;
  std::unique_ptr<obs::TraceRing> trace;
  if (config.collect_metrics) trace = std::make_unique<obs::TraceRing>(1u << 16);

  // --- service ---
  std::vector<ProcessId> node_ids;
  for (std::uint32_t i = 0; i < config.orderers; ++i) node_ids.push_back(i);
  smr::ReplicaParams params;
  params.batch_max = config.batch_max;
  params.sign_writes = false;  // MAC-authenticated normal case
  params.forward_timeout = runtime::sec(10);
  params.stop_timeout = runtime::sec(20);
  params.stall_timeout = runtime::sec(10);
  params.checkpoint_period = 1u << 20;  // no checkpoint cost
  ordering::ServiceOptions options =
      ordering::ServiceOptions{}
          .with_nodes(std::move(node_ids))
          .with_block_size(config.block_size)
          .with_stub_signatures(true)  // calibrated cost model (§6.1)
          .with_double_sign(config.double_sign)
          .with_replica_params(std::move(params));
  if (config.collect_metrics) {
    options.with_metrics(&registry).with_trace(trace.get());
  }
  ordering::Service service = ordering::make_service(options);

  // --- network: nodes on their own machines, all client processes packed
  // onto two machines (§6.2: "16 to 32 clients distributed across 2
  // additional machines") ---
  const std::uint32_t machines = config.orderers + 2;
  std::vector<std::uint32_t> process_machine(kSubmitterBase + config.submitters,
                                             machines - 1);
  for (std::uint32_t i = 0; i < config.orderers; ++i) process_machine[i] = i;
  for (std::uint32_t r = 0; r < config.receivers; ++r) {
    process_machine[kReceiverBase + r] = config.orderers + (r % 2);
  }
  for (std::uint32_t s = 0; s < config.submitters; ++s) {
    process_machine[kSubmitterBase + s] = config.orderers + (s % 2);
  }
  std::vector<std::vector<sim::SimTime>> latency(
      machines, std::vector<sim::SimTime>(machines, kMillisecond / 20));
  for (std::uint32_t m = 0; m < machines; ++m) latency[m][m] = 0;
  sim::NetworkConfig net;  // 1 Gbit/s full duplex
  sim::Network network(net, std::move(process_machine), std::move(latency),
                       Rng(config.seed));
  network.set_machine_bandwidth(config.orderers, config.client_bandwidth_bps);
  network.set_machine_bandwidth(config.orderers + 1, config.client_bandwidth_bps);
  runtime::SimCluster cluster(std::move(network), config.seed);
  if (config.collect_metrics) cluster.set_metrics(&registry);

  sim::CpuConfig node_cpu;
  node_cpu.prologue_workers = config.workers;
  for (std::size_t i = 0; i < service.nodes.size(); ++i) {
    cluster.add_process(service.cluster.members()[i],
                        service.nodes[i].replica.get(), node_cpu);
  }

  // --- receivers (the fan-out targets being measured) ---
  ordering::FrontendOptions receiver_options =
      ordering::make_frontend_options(service, options)
          .with_track_latency(false)
          .with_verify_signatures(config.verify_signatures);
  std::vector<std::unique_ptr<ordering::Frontend>> receivers;
  for (std::uint32_t r = 0; r < config.receivers; ++r) {
    ordering::FrontendOptions ro = receiver_options;
    if (r == 0 && config.collect_metrics) {
      // Receiver 0 is the measurement probe: its frontend.* counters and the
      // block-level push->frontend_accept trace events feed the export.
      ro.metrics = &registry;
      ro.trace = trace.get();
    }
    receivers.push_back(
        std::make_unique<ordering::Frontend>(service.cluster, ro));
    cluster.add_process(kReceiverBase + r, receivers.back().get());
  }

  // --- submitters (do not receive blocks) ---
  ordering::FrontendOptions submit_options =
      ordering::FrontendOptions(receiver_options)
          .with_receive_blocks(false)
          .with_verify_signatures(false);
  if (config.collect_metrics) {
    // Submitters emit the per-envelope kSubmit trace events that anchor the
    // submit->propose stage; their frontend.submitted counters aggregate.
    submit_options.with_metrics(&registry).with_trace(trace.get());
  }
  std::vector<std::unique_ptr<ordering::Frontend>> submitters;
  for (std::uint32_t s = 0; s < config.submitters; ++s) {
    submitters.push_back(std::make_unique<ordering::Frontend>(
        service.cluster, submit_options));
    cluster.add_process(kSubmitterBase + s, submitters.back().get());
  }

  // --- closed-loop injection: keep `outstanding_window` envelopes in flight,
  // clocked off node 0's ordered-envelope counter ---
  const ordering::OrderingNode* leader_app = service.nodes[0].app.get();
  auto submitted = std::make_shared<std::uint64_t>(0);
  auto envelope_id = std::make_shared<std::uint64_t>(0);
  const auto total_time =
      static_cast<sim::SimTime>((config.warmup_s + config.measure_s) * kSecond);

  std::function<void()> top_up = [&cluster, &submitters, leader_app, submitted,
                                  envelope_id, &config, total_time, &top_up] {
    const std::uint64_t consumed = leader_app->envelopes_ordered();
    while (*submitted < consumed + config.outstanding_window) {
      const std::size_t s =
          static_cast<std::size_t>(*envelope_id % config.submitters);
      submitters[s]->submit(
          make_envelope((*envelope_id)++, config.envelope_size));
      ++*submitted;
    }
    if (cluster.now() < total_time) {
      cluster.schedule_at(cluster.now() + kMillisecond, [&top_up] { top_up(); });
    }
  };
  cluster.schedule_at(kMillisecond / 10, [&top_up] { top_up(); });

  // --- measure DELIVERED envelopes at receiver 0 between warmup and end
  // (the rate the system sustains end to end: ordering, signing and block
  // fan-out all gate it) ---
  const ordering::Frontend* probe = receivers.front().get();
  auto delivered_at_warmup = std::make_shared<std::uint64_t>(0);
  auto blocks_at_warmup = std::make_shared<std::uint64_t>(0);
  cluster.schedule_at(static_cast<sim::SimTime>(config.warmup_s * kSecond),
                      [leader_app, probe, blocks_at_warmup, delivered_at_warmup] {
                        *blocks_at_warmup = leader_app->blocks_created();
                        *delivered_at_warmup = probe->delivered_envelopes();
                      });
  cluster.run_until(total_time);

  LanResult result;
  const double blocks =
      static_cast<double>(leader_app->blocks_created() - *blocks_at_warmup);
  result.block_rate = blocks / config.measure_s;
  result.throughput_tps =
      static_cast<double>(probe->delivered_envelopes() - *delivered_at_warmup) /
      config.measure_s;
  result.sign_bound_tps = (16.0 / 1.905e-3) *
                          static_cast<double>(config.block_size) /
                          (config.double_sign ? 2.0 : 1.0);
  result.leader_utilization = cluster.protocol_utilization(0);
  result.delivered_at_receiver =
      receivers.empty() ? 0 : receivers[0]->delivered_envelopes();
  if (config.collect_metrics) {
    cluster.export_metrics(registry, 0);
    const std::map<std::string, std::string> labels{
        {"bench", "fig7_lan"},
        {"orderers", std::to_string(config.orderers)},
        {"block_size", std::to_string(config.block_size)},
        {"envelope_size", std::to_string(config.envelope_size)},
        {"receivers", std::to_string(config.receivers)},
        {"submitters", std::to_string(config.submitters)},
        {"seed", std::to_string(config.seed)},
        {"double_sign", config.double_sign ? "true" : "false"},
        {"workers", std::to_string(config.workers)},
    };
    const std::map<std::string, double> run{
        {"throughput_tps", result.throughput_tps},
        {"block_rate", result.block_rate},
        {"sign_bound_tps", result.sign_bound_tps},
        {"leader_utilization", result.leader_utilization},
    };
    result.metrics_json = obs::to_json(registry, trace.get(), labels, run);
  }
  return result;
}

GeoResult run_geo_latency(const GeoConfig& config) {
  const ordering::GeoTopology topology =
      config.wheat ? ordering::paper_wheat_topology()
                   : ordering::paper_bftsmart_topology();

  obs::MetricsRegistry registry;
  std::unique_ptr<obs::TraceRing> trace;
  if (config.collect_metrics) trace = std::make_unique<obs::TraceRing>(1u << 16);

  std::vector<ProcessId> node_ids;
  for (std::size_t i = 0; i < topology.node_regions.size(); ++i) {
    node_ids.push_back(static_cast<ProcessId>(i));
  }
  smr::ReplicaParams params;
  params.sign_writes = false;
  params.forward_timeout = runtime::sec(10);
  params.stop_timeout = runtime::sec(20);
  params.stall_timeout = runtime::sec(10);
  params.checkpoint_period = 1u << 20;
  if (config.wheat) params.tentative_execution = config.use_tentative;
  ordering::ServiceOptions options = ordering::ServiceOptions{}
                                         .with_nodes(std::move(node_ids))
                                         .with_block_size(config.block_size)
                                         .with_stub_signatures(true)
                                         .with_replica_params(std::move(params));
  if (config.wheat && config.use_weights) {
    options.with_vmax_nodes(ordering::paper_wheat_vmax_nodes());
  }
  if (config.collect_metrics) {
    options.with_metrics(&registry).with_trace(trace.get());
  }

  ordering::Service service = ordering::make_service(options);
  runtime::SimCluster cluster(ordering::make_geo_network(topology, config.seed),
                              config.seed);
  if (config.collect_metrics) cluster.set_metrics(&registry);
  for (std::size_t i = 0; i < service.nodes.size(); ++i) {
    cluster.add_process(service.cluster.members()[i],
                        service.nodes[i].replica.get(), sim::CpuConfig{});
  }

  std::vector<std::unique_ptr<ordering::Frontend>> frontends;
  GeoResult result;
  for (std::size_t j = 0; j < topology.frontend_regions.size(); ++j) {
    result.frontend_names.push_back(
        sim::region_name(topology.frontend_regions[j]));
    ordering::FrontendOptions fo =
        ordering::make_frontend_options(service, options);
    if (config.collect_metrics) {
      // Every geo frontend submits and receives, so instrumenting all of them
      // closes the full submit->frontend_accept chain per envelope (the
      // frontend.* counters aggregate across regions).
      fo.with_metrics(&registry).with_trace(trace.get());
    }
    frontends.push_back(
        std::make_unique<ordering::Frontend>(service.cluster, fo));
    cluster.add_process(topology.frontend_base + static_cast<ProcessId>(j),
                        frontends.back().get());
  }

  // Poisson arrivals per frontend.
  Rng arrivals(config.seed ^ 0x9e3779b9);
  std::uint64_t envelope_id = 0;
  for (auto& frontend : frontends) {
    ordering::Frontend* fe = frontend.get();
    double t_ms = 10.0;
    while (t_ms < config.duration_s * 1000.0) {
      t_ms += arrivals.exponential(1000.0 / config.rate_per_frontend);
      Bytes envelope = make_envelope(envelope_id++, config.envelope_size);
      cluster.schedule_at(static_cast<sim::SimTime>(t_ms * kMillisecond),
                          [fe, envelope]() mutable { fe->submit(std::move(envelope)); });
    }
  }
  cluster.run_until(
      static_cast<sim::SimTime>((config.duration_s + 4.0) * kSecond));

  for (const auto& frontend : frontends) {
    const auto& h = frontend->latencies();
    result.samples.push_back(h.count());
    result.median_ms.push_back(h.empty() ? 0 : h.median());
    result.p90_ms.push_back(h.empty() ? 0 : h.percentile(0.9));
  }
  if (config.collect_metrics) {
    cluster.export_metrics(registry, 0);
    const std::map<std::string, std::string> labels{
        {"bench", "fig8_geo"},
        {"wheat", config.wheat ? "true" : "false"},
        {"block_size", std::to_string(config.block_size)},
        {"envelope_size", std::to_string(config.envelope_size)},
        {"seed", std::to_string(config.seed)},
    };
    std::map<std::string, double> run{
        {"rate_per_frontend", config.rate_per_frontend},
        {"duration_s", config.duration_s},
    };
    for (std::size_t j = 0; j < result.frontend_names.size(); ++j) {
      run.emplace("median_ms_frontend" + std::to_string(j),
                  result.median_ms[j]);
    }
    result.metrics_json = obs::to_json(registry, trace.get(), labels, run);
  }
  return result;
}

std::string format_k(double value) {
  char buf[32];
  if (value >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.1fk", value / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  }
  return buf;
}

}  // namespace bft::bench

// Ablation — block-size sweep (§6.2 / §8): where does the crossover between
// "signing-bound" and "ordering-bound" fall?
//
// The paper's conclusion: "for smaller envelope sizes, increasing the block
// size while decreasing the rate of signature generation can yield higher
// transactional throughput than to simply rely on the maximum possible rate
// of signature generation." This sweep makes the crossover visible.
#include <cstdio>

#include "common/cli.hpp"
#include "harness.hpp"

using namespace bft;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto orderers =
      static_cast<std::uint32_t>(flags.get_int("orderers", 4));
  const auto size = static_cast<std::size_t>(flags.get_int("size", 40));
  const double measure_s = flags.get_double("measure-s", 1.0);

  std::printf("=== Ablation: block-size sweep (%u orderers, %zu B envelopes, "
              "1 receiver) ===\n\n", orderers, size);
  std::printf("%12s  %14s  %14s  %16s  %10s\n", "block size", "tx/s",
              "cut blocks/s", "sign bound tx/s", "leader util");
  for (std::size_t block_size : {1u, 2u, 5u, 10u, 25u, 50u, 100u, 200u, 400u}) {
    bench::LanConfig config;
    config.orderers = orderers;
    config.block_size = block_size;
    config.envelope_size = size;
    config.receivers = 1;
    config.measure_s = measure_s;
    const bench::LanResult result = bench::run_lan_throughput(config);
    std::printf("%12zu  %14s  %14.0f  %16s  %9.0f%%\n", block_size,
                bench::format_k(result.throughput_tps).c_str(),
                result.block_rate,
                bench::format_k(result.sign_bound_tps).c_str(),
                result.leader_utilization * 100.0);
    std::fflush(stdout);
  }
  std::printf("\nsmall blocks: throughput pinned to the (contended) signing "
              "rate x block size;\nlarge blocks: signing is idle and the "
              "ordering protocol is the ceiling.\n");
  return 0;
}

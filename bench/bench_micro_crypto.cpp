// Micro-benchmarks (google-benchmark) for the crypto substrate: the costs
// behind Eq. (1) and the simulator's calibration constants.
#include <benchmark/benchmark.h>

#include "crypto/ecdsa.hpp"
#include "crypto/hmac.hpp"
#include "ledger/block.hpp"

using namespace bft;

namespace {

void BM_Sha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(4096)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = to_bytes("benchmark-key");
  const Bytes data(1024, 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_EcdsaSign(benchmark::State& state) {
  const crypto::PrivateKey key = crypto::PrivateKey::from_seed(to_bytes("bench"));
  const crypto::Hash256 digest = crypto::sha256(to_bytes("block header"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.sign(digest));
  }
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  const crypto::PrivateKey key = crypto::PrivateKey::from_seed(to_bytes("bench"));
  const crypto::PublicKey pub = key.public_key();
  const crypto::Hash256 digest = crypto::sha256(to_bytes("block header"));
  const crypto::Signature sig = key.sign(digest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pub.verify(digest, sig));
  }
}
BENCHMARK(BM_EcdsaVerify);

void BM_BlockHeaderBuild(benchmark::State& state) {
  // The node thread's per-block work (§5.1): data hash + header digest.
  std::vector<Bytes> envelopes(static_cast<std::size_t>(state.range(0)),
                               Bytes(1024, 0x5a));
  const crypto::Hash256 prev = crypto::sha256(to_bytes("prev"));
  std::uint64_t n = 1;
  for (auto _ : state) {
    ledger::Block block = ledger::make_block(n++, prev, envelopes);
    benchmark::DoNotOptimize(block.header.digest());
  }
}
BENCHMARK(BM_BlockHeaderBuild)->Arg(10)->Arg(100);

}  // namespace

BENCHMARK_MAIN();

// Unit tests for the declarative fault plan and its deterministic
// message-level evaluator (sim/faults.hpp). These run below the runtime:
// verdicts are checked directly, without a cluster.
#include <gtest/gtest.h>

#include "sim/faults.hpp"

namespace bft::sim {
namespace {

TEST(FaultPlanTest, BuildersPopulateSchedule) {
  FaultPlan plan;
  plan.crash_at(100, 2)
      .recover_at(200, 2)
      .crash_between(300, 400, 1)
      .partition_between(50, 150, {0, 3});
  ASSERT_EQ(plan.crashes.size(), 2u);
  ASSERT_EQ(plan.recoveries.size(), 2u);
  EXPECT_EQ(plan.crashes[1].at, 300u);
  EXPECT_EQ(plan.crashes[1].process, 1u);
  EXPECT_EQ(plan.recoveries[1].at, 400u);
  ASSERT_EQ(plan.partitions.size(), 1u);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(FaultPlan{}.empty());
}

TEST(FaultPlanTest, PartitionSeversOnlyAcrossTheBoundary) {
  Partition p;
  p.from = 10;
  p.until = 20;
  p.group = {0, 1};
  EXPECT_TRUE(p.severs(0, 2));   // inside <-> outside
  EXPECT_TRUE(p.severs(3, 1));   // either direction
  EXPECT_FALSE(p.severs(0, 1));  // both inside
  EXPECT_FALSE(p.severs(2, 3));  // both outside
  EXPECT_TRUE(p.active_at(10));
  EXPECT_TRUE(p.active_at(19));
  EXPECT_FALSE(p.active_at(9));
  EXPECT_FALSE(p.active_at(20));  // heals exactly at `until`
}

TEST(LinkFaultModelTest, PartitionDropsEverythingAcrossBoundary) {
  FaultPlan plan;
  plan.partition_between(0, 100, {1});
  LinkFaultModel model(plan, 7);
  for (SimTime t = 0; t < 100; t += 10) {
    EXPECT_EQ(model.decide(1, 0, t).action, LinkFaultKind::drop);
    EXPECT_EQ(model.decide(0, 1, t).action, LinkFaultKind::drop);
    EXPECT_FALSE(model.decide(0, 2, t).action.has_value());
  }
  // After healing the link is clean again.
  EXPECT_FALSE(model.decide(0, 1, 100).action.has_value());
}

TEST(LinkFaultModelTest, WindowAndEndpointsRestrictTheFault) {
  LinkFault f;
  f.kind = LinkFaultKind::drop;
  f.from = 50;
  f.until = 60;
  f.src = 0;
  f.dst = 1;
  f.probability = 1.0;
  FaultPlan plan;
  plan.link(f);
  LinkFaultModel model(plan, 3);
  EXPECT_EQ(model.decide(0, 1, 55).action, LinkFaultKind::drop);
  EXPECT_FALSE(model.decide(0, 1, 49).action.has_value());  // before window
  EXPECT_FALSE(model.decide(0, 1, 60).action.has_value());  // after window
  EXPECT_FALSE(model.decide(1, 0, 55).action.has_value());  // reverse link
  EXPECT_FALSE(model.decide(0, 2, 55).action.has_value());  // other dst
}

TEST(LinkFaultModelTest, DelayBoundsRespected) {
  LinkFault f;
  f.kind = LinkFaultKind::delay;
  f.probability = 1.0;
  f.delay_min = 10;
  f.delay_max = 20;
  FaultPlan plan;
  plan.link(f);
  LinkFaultModel model(plan, 11);
  for (int i = 0; i < 100; ++i) {
    const LinkVerdict v = model.decide(0, 1, 5);
    ASSERT_EQ(v.action, LinkFaultKind::delay);
    EXPECT_GE(v.delay, 10);
    EXPECT_LE(v.delay, 20);
  }
}

TEST(LinkFaultModelTest, ZeroProbabilityNeverFires) {
  LinkFault f;
  f.kind = LinkFaultKind::corrupt;
  f.probability = 0.0;
  FaultPlan plan;
  plan.link(f);
  LinkFaultModel model(plan, 13);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(model.decide(0, 1, 1).action.has_value());
  }
}

TEST(LinkFaultModelTest, SameSeedSameVerdictSequence) {
  const auto sample = [](std::uint64_t seed) {
    LinkFault f;
    f.kind = LinkFaultKind::drop;
    f.probability = 0.5;
    FaultPlan plan;
    plan.link(f);
    LinkFaultModel model(plan, seed);
    std::vector<bool> verdicts;
    for (int i = 0; i < 256; ++i) {
      verdicts.push_back(model.decide(0, 1, 1).action.has_value());
    }
    return verdicts;
  };
  EXPECT_EQ(sample(21), sample(21));  // reproducible
  EXPECT_NE(sample(21), sample(22));  // but seed-sensitive
}

TEST(LinkFaultModelTest, PlanSeedCombinesWithRuntimeSeed) {
  LinkFault f;
  f.kind = LinkFaultKind::drop;
  f.probability = 0.5;
  FaultPlan a;
  a.link(f);
  a.seed = 1;
  FaultPlan b = a;
  b.seed = 2;
  const auto sample = [](const FaultPlan& plan) {
    LinkFaultModel model(plan, 99);
    std::vector<bool> verdicts;
    for (int i = 0; i < 256; ++i) {
      verdicts.push_back(model.decide(0, 1, 1).action.has_value());
    }
    return verdicts;
  };
  EXPECT_NE(sample(a), sample(b));
}

}  // namespace
}  // namespace bft::sim

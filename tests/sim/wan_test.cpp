#include "sim/wan.hpp"

#include <gtest/gtest.h>

namespace bft::sim {
namespace {

TEST(WanTest, Symmetry) {
  for (std::size_t a = 0; a < kRegionCount; ++a) {
    for (std::size_t b = 0; b < kRegionCount; ++b) {
      EXPECT_EQ(one_way_latency(static_cast<Region>(a), static_cast<Region>(b)),
                one_way_latency(static_cast<Region>(b), static_cast<Region>(a)));
    }
  }
}

TEST(WanTest, IntraRegionIsFast) {
  EXPECT_LT(one_way_latency(Region::oregon, Region::oregon), kMillisecond);
}

TEST(WanTest, GeographyIsSane) {
  // Virginia-Canada is the closest pair; Sydney-Sao Paulo the farthest.
  const SimTime va_ca = one_way_latency(Region::virginia, Region::canada);
  const SimTime syd_sp = one_way_latency(Region::sydney, Region::sao_paulo);
  EXPECT_LT(va_ca, one_way_latency(Region::oregon, Region::ireland));
  EXPECT_GT(syd_sp, one_way_latency(Region::oregon, Region::sao_paulo));
  // Known ballparks.
  EXPECT_EQ(va_ca, 10 * kMillisecond);
  EXPECT_EQ(one_way_latency(Region::oregon, Region::virginia),
            35 * kMillisecond);
}

TEST(WanTest, MatrixMatchesPairwiseLatency) {
  const std::vector<Region> deployment = {Region::oregon, Region::ireland,
                                          Region::sydney, Region::sao_paulo};
  const auto matrix = wan_latency_matrix(deployment);
  ASSERT_EQ(matrix.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(matrix[i][i], 0);
    for (std::size_t j = 0; j < 4; ++j) {
      if (i != j) {
        EXPECT_EQ(matrix[i][j], one_way_latency(deployment[i], deployment[j]));
      }
    }
  }
}

TEST(WanTest, RegionNames) {
  EXPECT_EQ(region_name(Region::oregon), "Oregon");
  EXPECT_EQ(region_name(Region::sao_paulo), "SaoPaulo");
  EXPECT_EQ(region_name(Region::canada), "Canada");
}

}  // namespace
}  // namespace bft::sim

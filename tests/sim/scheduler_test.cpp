#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

namespace bft::sim {
namespace {

TEST(SchedulerTest, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(SchedulerTest, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(5, [&] { order.push_back(1); });
  s.schedule_at(5, [&] { order.push_back(2); });
  s.schedule_at(5, [&] { order.push_back(3); });
  s.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, EventsCanScheduleEvents) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(1, [&] {
    s.schedule_after(1, [&] { ++fired; });
  });
  s.run_to_completion();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 2);
}

TEST(SchedulerTest, RunUntilStopsAtDeadline) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(10, [&] { ++fired; });
  s.schedule_at(100, [&] { ++fired; });
  s.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 50);
  s.run_until(100);
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, DeadlineEventsIncluded) {
  Scheduler s;
  bool fired = false;
  s.schedule_at(50, [&] { fired = true; });
  s.run_until(50);
  EXPECT_TRUE(fired);
}

TEST(SchedulerTest, PastSchedulingThrows) {
  Scheduler s;
  s.schedule_at(10, [] {});
  s.run_to_completion();
  EXPECT_THROW(s.schedule_at(5, [] {}), std::invalid_argument);
}

TEST(SchedulerTest, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.schedule_at(1, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(SchedulerTest, TimeUnits) {
  EXPECT_EQ(kMicrosecond, 1000);
  EXPECT_EQ(kMillisecond, 1000 * 1000);
  EXPECT_EQ(kSecond, 1000 * 1000 * 1000);
}

}  // namespace
}  // namespace bft::sim

#include "sim/cpu.hpp"

#include <gtest/gtest.h>

namespace bft::sim {
namespace {

CpuConfig one_worker() {
  CpuConfig c;
  c.worker_threads = 1;
  c.contention_beta = 0.0;
  return c;
}

TEST(CpuModelTest, ProtocolJobsSerialize) {
  CpuModel cpu(one_worker());
  EXPECT_EQ(cpu.run_protocol_job(0, 100), 100);
  EXPECT_EQ(cpu.run_protocol_job(0, 100), 200);   // queues behind the first
  EXPECT_EQ(cpu.run_protocol_job(500, 100), 600);  // idle gap then run
}

TEST(CpuModelTest, WorkerPoolRunsInParallel) {
  CpuConfig c;
  c.worker_threads = 2;
  c.contention_beta = 0.0;
  CpuModel cpu(c);
  EXPECT_EQ(cpu.run_worker_job(0, 1000), 1000);
  EXPECT_EQ(cpu.run_worker_job(0, 1000), 1000);  // second worker
  EXPECT_EQ(cpu.run_worker_job(0, 1000), 2000);  // queues
}

TEST(CpuModelTest, ContentionInflatesWorkerJobs) {
  CpuConfig c;
  c.worker_threads = 1;
  c.contention_beta = 1.0;
  c.utilization_alpha = 1.0;  // utilization == last busy fraction
  CpuModel cpu(c);
  // Saturate the protocol thread: back-to-back jobs -> utilization 1.
  cpu.run_protocol_job(0, 1000);
  cpu.run_protocol_job(0, 1000);
  EXPECT_DOUBLE_EQ(cpu.protocol_utilization(), 1.0);
  // Worker job now takes twice as long.
  EXPECT_EQ(cpu.run_worker_job(2000, 1000), 4000);
}

TEST(CpuModelTest, IdleProtocolMeansNoInflation) {
  CpuConfig c;
  c.worker_threads = 1;
  c.contention_beta = 1.0;
  CpuModel cpu(c);
  EXPECT_EQ(cpu.run_worker_job(0, 1000), 1000);
}

TEST(CpuModelTest, UtilizationDecaysWhenIdle) {
  CpuConfig c;
  c.worker_threads = 1;
  c.utilization_alpha = 0.5;
  CpuModel cpu(c);
  cpu.run_protocol_job(0, 1000);
  cpu.run_protocol_job(1000, 1000);  // back to back: busy fraction 1
  const double busy_util = cpu.protocol_utilization();
  // Long idle gap then a tiny job: utilization must drop.
  cpu.run_protocol_job(1000000, 10);
  EXPECT_LT(cpu.protocol_utilization(), busy_util);
}

TEST(CpuModelTest, ZeroWorkersRejected) {
  CpuConfig c;
  c.worker_threads = 0;
  EXPECT_THROW(CpuModel cpu(c), std::invalid_argument);
}

TEST(CpuModelTest, PaperCalibrationSigningRate) {
  // With 16 workers and 1.905 ms per signature, an idle-protocol node signs
  // ~8400 blocks/s — the Figure 6 peak.
  CpuConfig c;
  c.worker_threads = 16;
  c.contention_beta = 0.8;
  CpuModel cpu(c);
  const SimTime sign_cost = static_cast<SimTime>(1.905 * kMillisecond);
  SimTime now = 0;
  SimTime last_done = 0;
  const int jobs = 8400;
  for (int i = 0; i < jobs; ++i) {
    last_done = std::max(last_done, cpu.run_worker_job(now, sign_cost));
  }
  const double seconds = static_cast<double>(last_done) / kSecond;
  const double rate = jobs / seconds;
  EXPECT_NEAR(rate, 8400.0, 200.0);
}

}  // namespace
}  // namespace bft::sim

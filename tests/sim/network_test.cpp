#include "sim/network.hpp"

#include <gtest/gtest.h>

namespace bft::sim {
namespace {

NetworkConfig no_overhead() {
  NetworkConfig c;
  c.overhead_bytes = 0;
  c.jitter_sigma = 0.0;
  return c;
}

TEST(NetworkTest, PropagationLatencyApplied) {
  Network net = make_lan(2, kMillisecond, no_overhead(), 1);
  // 125 bytes at 1 Gbit/s = 1 us wire time, paid at egress and ingress.
  const SimTime t = net.delivery_time(0, 1, 125, 0);
  EXPECT_EQ(t, kMillisecond + 2 * kMicrosecond);
}

TEST(NetworkTest, EgressSerializesBackToBackSends) {
  Network net = make_lan(3, 0, no_overhead(), 1);
  // Two 125 KB messages (1 ms wire each) from node 0 to different receivers:
  // the second waits for the first to leave the NIC.
  const SimTime t1 = net.delivery_time(0, 1, 125000, 0);
  const SimTime t2 = net.delivery_time(0, 2, 125000, 0);
  EXPECT_EQ(t1, 2 * kMillisecond);  // egress + ingress wire time
  EXPECT_EQ(t2, 3 * kMillisecond);  // queued behind the first at egress
}

TEST(NetworkTest, IngressSerializesFanIn) {
  Network net = make_lan(3, 0, no_overhead(), 1);
  // Two senders target node 2 simultaneously; the second transmission queues
  // at node 2's ingress NIC.
  const SimTime t1 = net.delivery_time(0, 2, 125000, 0);
  const SimTime t2 = net.delivery_time(1, 2, 125000, 0);
  EXPECT_EQ(t1, 2 * kMillisecond);
  EXPECT_EQ(t2, 3 * kMillisecond);
}

TEST(NetworkTest, OverheadBytesCounted) {
  NetworkConfig c = no_overhead();
  c.overhead_bytes = 125;  // 1 us at 1 Gbit/s
  Network net(c, {0, 1}, {{0, 0}, {0, 0}}, Rng(1));
  const SimTime t = net.delivery_time(0, 1, 0, 0);
  EXPECT_EQ(t, 2 * kMicrosecond);
}

TEST(NetworkTest, SameMachineUsesLoopback) {
  NetworkConfig c = no_overhead();
  c.loopback_latency = 5 * kMicrosecond;
  // Both processes on machine 0.
  Network net(c, {0, 0}, {{0}}, Rng(1));
  EXPECT_EQ(net.delivery_time(0, 1, 1 << 20, 100), 100 + 5 * kMicrosecond);
}

TEST(NetworkTest, SharedMachineSharesNic) {
  NetworkConfig c = no_overhead();
  // Processes 1 and 2 share machine 1; fan-in to both queues on one NIC.
  Network net(c, {0, 1, 1}, {{0, 0}, {0, 0}}, Rng(1));
  const SimTime t1 = net.delivery_time(0, 1, 125000, 0);
  const SimTime t2 = net.delivery_time(0, 2, 125000, 0);
  EXPECT_EQ(t1, 2 * kMillisecond);
  // Second transfer leaves the sender at 2 ms (egress queue) and the shared
  // ingress NIC is free exactly then, so it completes at 3 ms.
  EXPECT_EQ(t2, 3 * kMillisecond);
}

TEST(NetworkTest, JitterPerturbsLatency) {
  NetworkConfig c = no_overhead();
  c.jitter_sigma = 0.1;
  Network net(c, {0, 1}, {{0, 10 * kMillisecond}, {10 * kMillisecond, 0}}, Rng(7));
  bool varied = false;
  SimTime prev = -1;
  SimTime send_at = 0;
  for (int i = 0; i < 10; ++i) {
    // Small message; spread sends far apart so no queuing.
    const SimTime t = net.delivery_time(0, 1, 10, send_at) - send_at;
    if (prev >= 0 && t != prev) varied = true;
    prev = t;
    EXPECT_GT(t, 7 * kMillisecond);
    EXPECT_LT(t, 14 * kMillisecond);
    send_at += kSecond;
  }
  EXPECT_TRUE(varied);
}

TEST(NetworkTest, ValidationErrors) {
  EXPECT_THROW(
      {
        NetworkConfig c;
        c.bandwidth_bps = 0;
        Network net(c, {0}, {{0}}, Rng(1));
      },
      std::invalid_argument);
  EXPECT_THROW(Network(NetworkConfig{}, {0, 1}, {{0}}, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(Network(NetworkConfig{}, {0, 1}, {{0, 0}, {0}}, Rng(1)),
               std::invalid_argument);
}

TEST(NetworkTest, LanLatencyMatrixSymmetricZeroDiagonal) {
  Network net = make_lan(4, kMillisecond, no_overhead(), 3);
  // Send to self-machine is impossible in make_lan (distinct machines), but
  // the diagonal is zero latency: a tiny message arrives after wire time only.
  const SimTime t = net.delivery_time(1, 3, 125, 0);
  EXPECT_EQ(t, kMillisecond + 2 * kMicrosecond);
}

}  // namespace
}  // namespace bft::sim

// Staged runner (runner.hpp): ordered-epilogue guarantees under adversarial
// completion order, prologue-exception containment, and a multi-producer
// stress that TSan can chew on (ctest label `runner`; the sanitizer configs
// run it under BFT_SANITIZE=thread).
#include "runtime/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

namespace bft::runtime {
namespace {

/// Collects released epilogue payloads; the runner contract says the sink is
/// called by one thread at a time, but the mutex keeps TSan happy about the
/// vector either way.
struct OrderSink {
  std::mutex mutex;
  std::vector<int> order;

  EpilogueSink fn() {
    return [this](Epilogue e) {
      if (e) e();
    };
  }
  void record(int value) {
    std::lock_guard<std::mutex> lock(mutex);
    order.push_back(value);
  }
  std::vector<int> snapshot() {
    std::lock_guard<std::mutex> lock(mutex);
    return order;
  }
};

TEST(SerialRunnerTest, SinksInline) {
  OrderSink sink;
  SerialRunner runner(sink.fn());
  EXPECT_EQ(runner.worker_count(), 0u);
  for (int i = 0; i < 5; ++i) {
    runner.submit([&sink, i]() -> Epilogue {
      return [&sink, i] { sink.record(i); };
    });
    // Inline by contract: the epilogue has run before submit() returned.
    EXPECT_EQ(sink.snapshot().size(), static_cast<std::size_t>(i + 1));
  }
  runner.drain();
  EXPECT_EQ(sink.snapshot(), (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SerialRunnerTest, ContainsThrowingPrologue) {
  OrderSink sink;
  SerialRunner runner(sink.fn());
  runner.submit([]() -> Epilogue { throw std::runtime_error("boom"); });
  runner.submit([&sink]() -> Epilogue {
    return [&sink] { sink.record(1); };
  });
  EXPECT_EQ(sink.snapshot(), std::vector<int>{1});
}

// Adversarial completion order: four prologues park on a gate and are
// released 2, 0, 3, 1 — the reorder buffer must still hand epilogues to the
// sink as 0, 1, 2, 3.
TEST(WorkerPoolRunnerTest, EpiloguesReleaseInSubmissionOrder) {
  struct Gate {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<bool> open = std::vector<bool>(4, false);
    std::atomic<int> entered{0};

    void wait(int i) {
      entered.fetch_add(1);
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [this, i] { return open[static_cast<std::size_t>(i)]; });
    }
    void release(int i) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        open[static_cast<std::size_t>(i)] = true;
      }
      cv.notify_all();
    }
  } gate;

  OrderSink sink;
  WorkerPoolRunnerOptions options;
  options.workers = 4;  // every parked prologue needs its own worker
  WorkerPoolRunner runner(options, sink.fn());
  EXPECT_EQ(runner.worker_count(), 4u);

  for (int i = 0; i < 4; ++i) {
    runner.submit([&gate, &sink, i]() -> Epilogue {
      gate.wait(i);
      return [&sink, i] { sink.record(i); };
    });
  }
  while (gate.entered.load() < 4) std::this_thread::yield();
  for (int i : {2, 0, 3, 1}) gate.release(i);
  runner.drain();
  EXPECT_EQ(sink.snapshot(), (std::vector<int>{0, 1, 2, 3}));
}

// Random worker timing, many slots: submission order must survive any
// interleaving the scheduler produces.
TEST(WorkerPoolRunnerTest, OrderSurvivesRandomCompletionTiming) {
  OrderSink sink;
  WorkerPoolRunnerOptions options;
  options.workers = 4;
  WorkerPoolRunner runner(options, sink.fn());

  constexpr int kJobs = 300;
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> jitter_us(0, 120);
  for (int i = 0; i < kJobs; ++i) {
    const int delay = jitter_us(rng);
    runner.submit([&sink, i, delay]() -> Epilogue {
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(delay));
      }
      return [&sink, i] { sink.record(i); };
    });
  }
  runner.drain();
  const std::vector<int> got = sink.snapshot();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kJobs));
  for (int i = 0; i < kJobs; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

// A throwing prologue consumes its slot as a no-op; successors still release,
// in order, and the exception is counted when metrics are wired.
TEST(WorkerPoolRunnerTest, ThrowingPrologueDoesNotStallTheSequence) {
  obs::MetricsRegistry registry;
  OrderSink sink;
  WorkerPoolRunnerOptions options;
  options.workers = 2;
  options.metrics = RunnerMetrics::registered(registry);
  WorkerPoolRunner runner(options, sink.fn());

  runner.submit([&sink]() -> Epilogue {
    return [&sink] { sink.record(0); };
  });
  runner.submit([]() -> Epilogue { throw std::logic_error("contained"); });
  runner.submit([&sink]() -> Epilogue {
    return [&sink] { sink.record(2); };
  });
  runner.drain();
  EXPECT_EQ(sink.snapshot(), (std::vector<int>{0, 2}));
  EXPECT_EQ(registry.counter("runner.prologue_exceptions").value(), 1u);
  EXPECT_EQ(registry.counter("runner.prologues").value(), 3u);
}

TEST(WorkerPoolRunnerTest, DrainWithNothingSubmitted) {
  OrderSink sink;
  WorkerPoolRunnerOptions options;
  options.workers = 2;
  WorkerPoolRunner runner(options, sink.fn());
  runner.drain();  // must not hang
  EXPECT_TRUE(sink.snapshot().empty());
}

// Multi-producer stress (the TSan workout): several submitter threads race
// submissions while workers run and release. Global release order must be a
// valid interleaving — each producer's own values appear in its submission
// order — and nothing is lost or duplicated.
TEST(WorkerPoolRunnerTest, MultiProducerStressKeepsPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 400;

  OrderSink sink;
  WorkerPoolRunnerOptions options;
  options.workers = 3;
  WorkerPoolRunner runner(options, sink.fn());

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&runner, &sink, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        runner.submit([&sink, value]() -> Epilogue {
          return [&sink, value] { sink.record(value); };
        });
      }
    });
  }
  for (std::thread& t : producers) t.join();
  runner.drain();

  const std::vector<int> got = sink.snapshot();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  std::vector<int> next(kProducers, 0);
  for (int value : got) {
    const int p = value / kPerProducer;
    const int i = value % kPerProducer;
    EXPECT_EQ(i, next[static_cast<std::size_t>(p)])
        << "producer " << p << " released out of submission order";
    next[static_cast<std::size_t>(p)] = i + 1;
  }
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next[static_cast<std::size_t>(p)], kPerProducer);
}

// Destruction with work still queued must not deadlock or crash (epilogues
// for unfinished prologues are simply never released).
TEST(WorkerPoolRunnerTest, DestructionWhileBusyIsClean) {
  OrderSink sink;
  for (int round = 0; round < 10; ++round) {
    WorkerPoolRunnerOptions options;
    options.workers = 2;
    WorkerPoolRunner runner(options, sink.fn());
    for (int i = 0; i < 50; ++i) {
      runner.submit([&sink, i]() -> Epilogue {
        return [&sink, i] { sink.record(i); };
      });
    }
    // No drain: the destructor races the queue.
  }
  SUCCEED();
}

}  // namespace
}  // namespace bft::runtime

// Payload handle semantics and the single-allocation fan-out guarantee of
// Env::send: every recipient of a shared Payload observes the same
// underlying buffer — broadcast no longer deep-copies per destination.
#include <gtest/gtest.h>

#include <set>

#include "common/bytes.hpp"
#include "runtime/real_runtime.hpp"
#include "runtime/sim_runtime.hpp"

namespace bft::runtime {
namespace {

using sim::kMillisecond;

TEST(PayloadTest, CopySharesOneBuffer) {
  Payload a(to_bytes("hello"));
  Payload b = a;
  Payload c = b;
  EXPECT_EQ(a.buffer_id(), b.buffer_id());
  EXPECT_EQ(b.buffer_id(), c.buffer_id());
  EXPECT_EQ(a.use_count(), 3);
  EXPECT_EQ(to_string(c.view()), "hello");
}

TEST(PayloadTest, DefaultIsEmpty) {
  Payload p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
}

TEST(PayloadTest, ImplicitFromBytesPreservesContent) {
  const Bytes raw = to_bytes("payload-bytes");
  Payload p = raw;  // the one copy every recipient will share
  EXPECT_EQ(p.bytes(), raw);
  EXPECT_EQ(p.to_bytes(), raw);
}

/// Records the address of each received payload's first byte — recipients of
/// a shared buffer all see the same address.
class BufferProbe : public Actor {
 public:
  void on_message(ProcessId, ByteView payload) override {
    addresses_.push_back(payload.data());
    contents_.push_back(Bytes(payload.begin(), payload.end()));
  }
  void on_timer(std::uint64_t) override {}

  std::vector<const std::uint8_t*> addresses_;
  std::vector<Bytes> contents_;
};

/// Fans one Payload out to every probe on start.
class FanOutActor : public Actor {
 public:
  explicit FanOutActor(std::vector<ProcessId> peers) : peers_(std::move(peers)) {}

  void on_start(Env& env) override {
    Actor::on_start(env);
    const Payload shared = Payload(to_bytes("broadcast-once"));
    for (ProcessId peer : peers_) env.send(peer, shared);
    use_count_after_sends_ = shared.use_count();
  }
  void on_message(ProcessId, ByteView) override {}
  void on_timer(std::uint64_t) override {}

  std::vector<ProcessId> peers_;
  long use_count_after_sends_ = 0;
};

TEST(PayloadTest, SimFanOutDeliversOneSharedAllocation) {
  SimCluster cluster(sim::make_lan(4, kMillisecond, {}, 1), 3);
  FanOutActor sender({1, 2, 3});
  BufferProbe probes[3];
  cluster.add_process(0, &sender);
  for (ProcessId p = 1; p <= 3; ++p) cluster.add_process(p, &probes[p - 1]);
  cluster.run_until(sim::kSecond);

  // While the three copies sat in flight they all pinned the same buffer:
  // the sender's handle plus three queued references.
  EXPECT_EQ(sender.use_count_after_sends_, 4);

  std::set<const std::uint8_t*> distinct;
  for (const BufferProbe& probe : probes) {
    ASSERT_EQ(probe.addresses_.size(), 1u);
    ASSERT_EQ(to_string(ByteView(probe.contents_[0].data(),
                                 probe.contents_[0].size())),
              "broadcast-once");
    distinct.insert(probe.addresses_[0]);
  }
  EXPECT_EQ(distinct.size(), 1u) << "fan-out deep-copied per destination";
}

TEST(PayloadTest, RealClusterFanOutSharesBuffer) {
  RealCluster cluster;
  FanOutActor sender({1, 2});
  BufferProbe probes[2];
  cluster.add_process(0, &sender);
  cluster.add_process(1, &probes[0]);
  cluster.add_process(2, &probes[1]);
  cluster.start();
  for (int spins = 0;
       spins < 400 && (probes[0].addresses_.empty() || probes[1].addresses_.empty());
       ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  cluster.stop();
  ASSERT_EQ(probes[0].addresses_.size(), 1u);
  ASSERT_EQ(probes[1].addresses_.size(), 1u);
  EXPECT_EQ(probes[0].addresses_[0], probes[1].addresses_[0]);
}

TEST(RealRuntimeTest, BoundedInboxShedsOverflow) {
  RealClusterOptions options;
  options.inbox_capacity = 2;
  RealCluster cluster(options);
  BufferProbe probe;
  cluster.add_process(7, &probe, /*workers=*/0);  // serial path: exact bound
  // Before start nothing drains the inbox, so the bound is exact: two
  // deliveries fit, three are shed and counted.
  for (int i = 0; i < 5; ++i) {
    cluster.deliver_local(0, 7, Payload(to_bytes("m" + std::to_string(i))));
  }
  EXPECT_EQ(cluster.inbox_dropped(), 3u);
}

TEST(RealRuntimeTest, InboxMetricsRegister) {
  obs::MetricsRegistry registry;
  RealClusterOptions options;
  options.inbox_capacity = 1;
  options.metrics = &registry;
  RealCluster cluster(options);
  BufferProbe probe;
  cluster.add_process(1, &probe, /*workers=*/0);  // serial path: exact bound
  cluster.deliver_local(0, 1, Payload(to_bytes("a")));
  cluster.deliver_local(0, 1, Payload(to_bytes("b")));  // shed
  EXPECT_EQ(registry.counter("runtime.inbox_dropped").value(), 1u);
  EXPECT_EQ(registry.gauge("runtime.inbox_depth").value(), 1);
}

}  // namespace
}  // namespace bft::runtime

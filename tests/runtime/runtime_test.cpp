// Exercises both runtimes through the same actors, checking the semantics
// protocol code depends on: FIFO per pair, timers, work offload, crash.
#include <gtest/gtest.h>

#include <atomic>

#include "runtime/real_runtime.hpp"
#include "runtime/sim_runtime.hpp"

namespace bft::runtime {
namespace {

using sim::kMillisecond;

/// Replies "pong:<n>" to every "ping:<n>".
class Ponger : public Actor {
 public:
  void on_message(ProcessId from, ByteView payload) override {
    std::string text = to_string(payload);
    if (text.rfind("ping:", 0) == 0) {
      env().send(from, to_bytes("pong:" + text.substr(5)));
    }
  }
  void on_timer(std::uint64_t) override {}
};

/// Sends `count` pings on start and records replies.
class Pinger : public Actor {
 public:
  Pinger(ProcessId peer, int count) : peer_(peer), count_(count) {}

  void on_start(Env& env) override {
    Actor::on_start(env);
    for (int i = 0; i < count_; ++i) {
      env.send(peer_, to_bytes("ping:" + std::to_string(i)));
    }
  }
  void on_message(ProcessId, ByteView payload) override {
    replies_.push_back(to_string(payload));
  }
  void on_timer(std::uint64_t) override {}

  /// Test-driven injection after start (workload scheduling).
  void send_to_peer(const std::string& text) {
    env().send(peer_, to_bytes(text));
  }

  const std::vector<std::string>& replies() const { return replies_; }

 private:
  ProcessId peer_;
  int count_;
  std::vector<std::string> replies_;
};

TEST(SimRuntimeTest, PingPongFifoOrder) {
  SimCluster cluster(sim::make_lan(2, kMillisecond, {}, 1), 42);
  Pinger pinger(1, 5);
  Ponger ponger;
  cluster.add_process(0, &pinger);
  cluster.add_process(1, &ponger);
  cluster.run_until(sim::kSecond);
  ASSERT_EQ(pinger.replies().size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(pinger.replies()[static_cast<std::size_t>(i)],
              "pong:" + std::to_string(i));
  }
}

TEST(SimRuntimeTest, DeterministicAcrossRuns) {
  auto run = [] {
    SimCluster cluster(sim::make_lan(2, kMillisecond, {}, 9), 7);
    Pinger pinger(1, 20);
    Ponger ponger;
    cluster.add_process(0, &pinger);
    cluster.add_process(1, &ponger);
    cluster.run_until(sim::kSecond);
    return cluster.executed_events();
  };
  EXPECT_EQ(run(), run());
}

class TimerActor : public Actor {
 public:
  void on_start(Env& env) override {
    Actor::on_start(env);
    keep_ = env.set_timer(msec(10));
    cancelled_ = env.set_timer(msec(10));
    env.cancel_timer(cancelled_);
  }
  void on_message(ProcessId, ByteView) override {}
  void on_timer(std::uint64_t id) override { fired_.push_back(id); }

  std::uint64_t keep_ = 0;
  std::uint64_t cancelled_ = 0;
  std::vector<std::uint64_t> fired_;
};

TEST(SimRuntimeTest, TimersFireAndCancel) {
  SimCluster cluster(sim::make_lan(1, 0, {}, 1), 1);
  TimerActor actor;
  cluster.add_process(0, &actor);
  cluster.run_until(sim::kSecond);
  ASSERT_EQ(actor.fired_.size(), 1u);
  EXPECT_EQ(actor.fired_[0], actor.keep_);
}

class Worker : public Actor {
 public:
  void on_start(Env& env) override {
    Actor::on_start(env);
    start_time_ = env.now();
    env.submit_work(
        msec(5), [] { return to_bytes("result"); },
        [this](Bytes r) {
          result_ = to_string(r);
          done_time_ = this->env().now();
        });
  }
  void on_message(ProcessId, ByteView) override {}
  void on_timer(std::uint64_t) override {}

  std::string result_;
  TimePoint start_time_ = 0;
  TimePoint done_time_ = 0;
};

TEST(SimRuntimeTest, SubmitWorkTakesModelledTime) {
  SimCluster cluster(sim::make_lan(1, 0, {}, 1), 1);
  Worker actor;
  cluster.add_process(0, &actor, sim::CpuConfig{});
  cluster.run_until(sim::kSecond);
  EXPECT_EQ(actor.result_, "result");
  EXPECT_GE(actor.done_time_ - actor.start_time_, msec(5));
}

TEST(SimRuntimeTest, CrashStopsDelivery) {
  SimCluster cluster(sim::make_lan(2, kMillisecond, {}, 1), 1);
  Pinger pinger(1, 3);
  Ponger ponger;
  cluster.add_process(0, &pinger);
  cluster.add_process(1, &ponger);
  cluster.crash(1);
  cluster.run_until(sim::kSecond);
  EXPECT_TRUE(pinger.replies().empty());
}

/// Counts recoveries and re-arms a timer on each one.
class RecoveringActor : public Actor {
 public:
  void on_start(Env& env) override {
    Actor::on_start(env);
    env.set_timer(msec(10));
  }
  void on_message(ProcessId from, ByteView) override { senders_.push_back(from); }
  void on_timer(std::uint64_t) override { ++timer_fires_; }
  void on_recover() override {
    ++recoveries_;
    env().set_timer(msec(10));
  }

  int recoveries_ = 0;
  int timer_fires_ = 0;
  std::vector<ProcessId> senders_;
};

TEST(SimRuntimeTest, RecoverResumesDeliveryAndRunsOnRecover) {
  SimCluster cluster(sim::make_lan(2, kMillisecond, {}, 1), 1);
  Pinger pinger(1, 0);
  RecoveringActor actor;
  cluster.add_process(0, &pinger);
  cluster.add_process(1, &actor);
  cluster.start();
  cluster.schedule_at(5 * kMillisecond, [&] { cluster.crash(1); });
  // Lost while down: the wire is not a mailbox.
  cluster.schedule_at(10 * kMillisecond,
                      [&] { pinger.send_to_peer("during"); });
  cluster.schedule_at(50 * kMillisecond, [&] { cluster.recover(1); });
  cluster.schedule_at(60 * kMillisecond,
                      [&] { pinger.send_to_peer("after"); });
  cluster.run_until(sim::kSecond);
  EXPECT_FALSE(cluster.crashed(1));
  EXPECT_EQ(actor.recoveries_, 1);
  // The pre-crash timer died with the crash; only the re-armed one fires.
  EXPECT_EQ(actor.timer_fires_, 1);
  ASSERT_EQ(actor.senders_.size(), 1u);  // "during" was lost, "after" arrived
}

TEST(SimRuntimeTest, CrashInvalidatesPendingTimers) {
  SimCluster cluster(sim::make_lan(1, 0, {}, 1), 1);
  RecoveringActor actor;
  cluster.add_process(0, &actor);
  cluster.start();
  cluster.schedule_at(1 * kMillisecond, [&] { cluster.crash(0); });
  cluster.schedule_at(2 * kMillisecond, [&] { cluster.recover(0); });
  cluster.run_until(sim::kSecond);
  // Start-time timer (armed at 0, due at 10ms) must not fire after the
  // crash at 1ms; the recovery's re-armed timer is the only survivor.
  EXPECT_EQ(actor.timer_fires_, 1);
}

TEST(SimRuntimeTest, RestartReplacesActorWithFreshState) {
  SimCluster cluster(sim::make_lan(2, kMillisecond, {}, 1), 1);
  Pinger pinger(1, 0);
  RecoveringActor first;
  RecoveringActor second;
  cluster.add_process(0, &pinger);
  cluster.add_process(1, &first);
  cluster.start();
  cluster.schedule_at(20 * kMillisecond, [&] { cluster.crash(1); });
  cluster.schedule_at(30 * kMillisecond, [&] { cluster.restart(1, &second); });
  cluster.schedule_at(40 * kMillisecond,
                      [&] { pinger.send_to_peer("hello"); });
  cluster.run_until(sim::kSecond);
  // Cold restart: the replacement got on_start (not on_recover) and now
  // receives traffic addressed to the process id.
  EXPECT_EQ(second.recoveries_, 0);
  EXPECT_EQ(second.senders_.size(), 1u);
  EXPECT_GE(second.timer_fires_, 1);
  EXPECT_EQ(first.senders_.size(), 0u);
}

TEST(SimRuntimeTest, FilterDelayPostponesDelivery) {
  SimCluster cluster(sim::make_lan(2, kMillisecond, {}, 1), 1);
  Pinger pinger(1, 1);
  Ponger ponger;
  cluster.add_process(0, &pinger);
  cluster.add_process(1, &ponger);
  cluster.set_filter([](ProcessId from, ProcessId, ByteView) {
    return from == 0 ? FilterVerdict(FilterAction::delay, msec(200))
                     : FilterVerdict(FilterAction::deliver);
  });
  cluster.run_until(100 * kMillisecond);
  EXPECT_TRUE(pinger.replies().empty());  // ping still in flight
  cluster.run_until(sim::kSecond);
  EXPECT_EQ(pinger.replies().size(), 1u);
}

TEST(SimRuntimeTest, FilterDuplicateDeliversTwoCopies) {
  SimCluster cluster(sim::make_lan(2, kMillisecond, {}, 1), 1);
  Pinger pinger(1, 1);
  Ponger ponger;
  cluster.add_process(0, &pinger);
  cluster.add_process(1, &ponger);
  cluster.set_filter([](ProcessId from, ProcessId, ByteView) {
    return from == 0 ? FilterVerdict(FilterAction::duplicate, msec(5))
                     : FilterVerdict(FilterAction::deliver);
  });
  cluster.run_until(sim::kSecond);
  EXPECT_EQ(pinger.replies().size(), 2u);  // the ponger answered both copies
}

TEST(SimRuntimeTest, FilterCorruptFlipsExactlyOneByte) {
  class Recorder : public Actor {
   public:
    void on_message(ProcessId, ByteView payload) override {
      received_.emplace_back(payload.begin(), payload.end());
    }
    void on_timer(std::uint64_t) override {}
    std::vector<Bytes> received_;
  };
  SimCluster cluster(sim::make_lan(2, kMillisecond, {}, 1), 1);
  Pinger pinger(1, 1);
  Recorder recorder;
  cluster.add_process(0, &pinger);
  cluster.add_process(1, &recorder);
  cluster.set_filter([](ProcessId from, ProcessId, ByteView) {
    return from == 0 ? FilterVerdict(FilterAction::corrupt)
                     : FilterVerdict(FilterAction::deliver);
  });
  cluster.run_until(sim::kSecond);
  ASSERT_EQ(recorder.received_.size(), 1u);
  const Bytes original = to_bytes("ping:0");
  const Bytes& got = recorder.received_[0];
  ASSERT_EQ(got.size(), original.size());
  std::size_t differing = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] != original[i]) ++differing;
  }
  EXPECT_EQ(differing, 1u);
}

TEST(SimRuntimeTest, FilterDropsMatchingMessages) {
  SimCluster cluster(sim::make_lan(2, kMillisecond, {}, 1), 1);
  Pinger pinger(1, 4);
  Ponger ponger;
  cluster.add_process(0, &pinger);
  cluster.add_process(1, &ponger);
  // Drop everything node 1 sends: pings arrive, pongs do not.
  cluster.set_filter([](ProcessId from, ProcessId, ByteView) {
    return from == 1 ? FilterAction::drop : FilterAction::deliver;
  });
  cluster.run_until(sim::kSecond);
  EXPECT_TRUE(pinger.replies().empty());
}

TEST(SimRuntimeTest, ChargeCpuAdvancesLogicalTime) {
  class Charger : public Actor {
   public:
    void on_start(Env& env) override {
      Actor::on_start(env);
      before_ = env.now();
      env.charge_cpu(msec(3));
      after_ = env.now();
    }
    void on_message(ProcessId, ByteView) override {}
    void on_timer(std::uint64_t) override {}
    TimePoint before_ = 0, after_ = 0;
  };
  SimCluster cluster(sim::make_lan(1, 0, {}, 1), 1);
  Charger actor;
  cluster.add_process(0, &actor, sim::CpuConfig{});
  cluster.run_until(kMillisecond);
  EXPECT_EQ(actor.after_ - actor.before_, msec(3));
}

TEST(SimRuntimeTest, DuplicateProcessRejected) {
  SimCluster cluster(sim::make_lan(2, 0, {}, 1), 1);
  Ponger a;
  cluster.add_process(0, &a);
  EXPECT_THROW(cluster.add_process(0, &a), std::invalid_argument);
  EXPECT_THROW(cluster.add_process(1, nullptr), std::invalid_argument);
}

// ---- Real runtime: the same actors on actual threads. ----

TEST(RealRuntimeTest, PingPongFifoOrder) {
  RealCluster cluster;
  Pinger pinger(1, 5);
  Ponger ponger;
  cluster.add_process(0, &pinger);
  cluster.add_process(1, &ponger);
  cluster.start();
  for (int attempt = 0; attempt < 200 && pinger.replies().size() < 5; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  cluster.stop();
  ASSERT_EQ(pinger.replies().size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(pinger.replies()[static_cast<std::size_t>(i)],
              "pong:" + std::to_string(i));
  }
}

TEST(RealRuntimeTest, TimersFireAndCancel) {
  RealCluster cluster;
  TimerActor actor;
  cluster.add_process(0, &actor);
  cluster.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  cluster.stop();
  ASSERT_EQ(actor.fired_.size(), 1u);
  EXPECT_EQ(actor.fired_[0], actor.keep_);
}

TEST(RealRuntimeTest, SubmitWorkDeliversResultOnLoop) {
  RealCluster cluster;
  Worker actor;
  cluster.add_process(0, &actor);
  cluster.start();
  for (int attempt = 0; attempt < 200 && actor.result_.empty(); ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  cluster.stop();
  EXPECT_EQ(actor.result_, "result");
}

TEST(RealRuntimeTest, CrashStopsDelivery) {
  RealCluster cluster;
  Pinger pinger(1, 3);
  Ponger ponger;
  cluster.add_process(0, &pinger);
  cluster.add_process(1, &ponger);
  cluster.crash(1);
  cluster.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  cluster.stop();
  EXPECT_TRUE(pinger.replies().empty());
}

TEST(RealRuntimeTest, SendExternalInjectsMessages) {
  RealCluster cluster;
  Ponger ponger;
  Pinger sink(1, 0);
  cluster.add_process(1, &ponger);
  cluster.add_process(0, &sink);
  cluster.start();
  cluster.send_external(0, 1, to_bytes("ping:99"));
  for (int attempt = 0; attempt < 200 && sink.replies().empty(); ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  cluster.stop();
  ASSERT_EQ(sink.replies().size(), 1u);
  EXPECT_EQ(sink.replies()[0], "pong:99");
}

TEST(RealRuntimeTest, StopIsIdempotent) {
  RealCluster cluster;
  Ponger ponger;
  cluster.add_process(0, &ponger);
  cluster.start();
  cluster.stop();
  cluster.stop();
}

TEST(RealRuntimeTest, AddAfterStartThrows) {
  RealCluster cluster;
  Ponger ponger;
  cluster.add_process(0, &ponger);
  cluster.start();
  Ponger other;
  EXPECT_THROW(cluster.add_process(1, &other), std::logic_error);
  cluster.stop();
}

}  // namespace
}  // namespace bft::runtime

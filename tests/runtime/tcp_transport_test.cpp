// TCP transport over loopback: framing (including byte-dribbled short
// reads), handshake validation, sender pinning, backpressure shedding and
// reconnect after a peer restart.
#include "runtime/tcp_transport.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace bft::runtime {
namespace {

/// Grabs an ephemeral port from the kernel. Racy in principle (the port is
/// released before the transport rebinds it), harmless on a loopback test
/// host.
std::uint16_t free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

int dial_raw(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

/// Valid handshake announcing `sender`, followed by one frame.
std::vector<std::uint8_t> wire_bytes(ProcessId sender, ProcessId from,
                                     ProcessId to, const std::string& payload) {
  std::vector<std::uint8_t> out = {'B', 'F', 'T', '1', 1, 0};
  put_u32(out, sender);
  put_u32(out, static_cast<std::uint32_t>(8 + payload.size()));
  put_u32(out, from);
  put_u32(out, to);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

/// Collects delivered frames thread-safely.
struct Sink {
  struct Frame {
    ProcessId from, to;
    Bytes payload;
  };

  Transport::DeliverFn fn() {
    return [this](ProcessId from, ProcessId to, Payload frame) {
      std::lock_guard<std::mutex> lock(mu);
      frames.push_back({from, to, frame.to_bytes()});
    };
  }
  std::size_t count() {
    std::lock_guard<std::mutex> lock(mu);
    return frames.size();
  }
  Frame at(std::size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    return frames.at(i);
  }
  bool wait_for(std::size_t n, int timeout_ms = 5000) {
    for (int waited = 0; waited < timeout_ms; waited += 5) {
      if (count() >= n) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return count() >= n;
  }

  std::mutex mu;
  std::vector<Frame> frames;
};

Topology pair_topology(std::uint16_t port_a, std::uint16_t port_b) {
  return Topology::parse("node 0 127.0.0.1:" + std::to_string(port_a) +
                         "\nnode 1 127.0.0.1:" + std::to_string(port_b) + "\n");
}

TEST(TcpTransportTest, LoopbackPairDeliversBothDirections) {
  const Topology topo = pair_topology(free_port(), free_port());
  TcpTransport a(topo, {0});
  TcpTransport b(topo, {1});
  Sink sink_a, sink_b;
  a.start(sink_a.fn());
  b.start(sink_b.fn());

  EXPECT_TRUE(a.send(0, 1, Payload(to_bytes("a-to-b"))));
  EXPECT_TRUE(b.send(1, 0, Payload(to_bytes("b-to-a"))));

  ASSERT_TRUE(sink_b.wait_for(1));
  ASSERT_TRUE(sink_a.wait_for(1));
  EXPECT_EQ(sink_b.at(0).from, 0u);
  EXPECT_EQ(sink_b.at(0).to, 1u);
  EXPECT_EQ(to_string(ByteView(sink_b.at(0).payload.data(),
                               sink_b.at(0).payload.size())),
            "a-to-b");
  EXPECT_EQ(to_string(ByteView(sink_a.at(0).payload.data(),
                               sink_a.at(0).payload.size())),
            "b-to-a");
  EXPECT_GE(a.frames_out(), 1u);
  EXPECT_GE(a.frames_in(), 1u);
  a.stop();
  b.stop();
}

TEST(TcpTransportTest, ManyFramesArriveInOrder) {
  const Topology topo = pair_topology(free_port(), free_port());
  TcpTransport a(topo, {0});
  TcpTransport b(topo, {1});
  Sink sink_a, sink_b;
  a.start(sink_a.fn());
  b.start(sink_b.fn());
  constexpr int kFrames = 200;
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_TRUE(a.send(0, 1, Payload(to_bytes("seq:" + std::to_string(i)))));
  }
  ASSERT_TRUE(sink_b.wait_for(kFrames));
  for (int i = 0; i < kFrames; ++i) {
    const auto frame = sink_b.at(static_cast<std::size_t>(i));
    EXPECT_EQ(to_string(ByteView(frame.payload.data(), frame.payload.size())),
              "seq:" + std::to_string(i));
  }
  a.stop();
  b.stop();
}

TEST(TcpTransportTest, ShortReadsReassembleFrames) {
  const std::uint16_t port_b = free_port();
  const Topology topo = pair_topology(free_port(), port_b);
  TcpTransport b(topo, {1});
  Sink sink;
  b.start(sink.fn());

  // Dribble the handshake and frame one byte per write: the reader must
  // reassemble across arbitrarily unkind packetization.
  const std::vector<std::uint8_t> wire = wire_bytes(0, 0, 1, "dribbled-frame");
  const int fd = dial_raw(port_b);
  ASSERT_GE(fd, 0);
  for (std::uint8_t byte : wire) {
    ASSERT_EQ(::send(fd, &byte, 1, MSG_NOSIGNAL), 1);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  ASSERT_TRUE(sink.wait_for(1));
  EXPECT_EQ(sink.at(0).from, 0u);
  EXPECT_EQ(to_string(ByteView(sink.at(0).payload.data(),
                               sink.at(0).payload.size())),
            "dribbled-frame");
  EXPECT_EQ(b.frame_errors(), 0u);
  ::close(fd);
  b.stop();
}

TEST(TcpTransportTest, BadMagicCountsFrameError) {
  const std::uint16_t port_b = free_port();
  const Topology topo = pair_topology(free_port(), port_b);
  TcpTransport b(topo, {1});
  Sink sink;
  b.start(sink.fn());

  const int fd = dial_raw(port_b);
  ASSERT_GE(fd, 0);
  const char garbage[] = "HTTP/1.1 GET /";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL), 0);
  for (int waited = 0; waited < 5000 && b.frame_errors() == 0; waited += 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(b.frame_errors(), 1u);
  EXPECT_EQ(sink.count(), 0u);
  ::close(fd);
  b.stop();
}

TEST(TcpTransportTest, UnknownHandshakeSenderRejected) {
  const std::uint16_t port_b = free_port();
  const Topology topo = pair_topology(free_port(), port_b);
  TcpTransport b(topo, {1});
  Sink sink;
  b.start(sink.fn());
  const int fd = dial_raw(port_b);
  ASSERT_GE(fd, 0);
  const auto wire = wire_bytes(/*sender=*/77, 0, 1, "x");  // 77 not in topology
  ASSERT_GT(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL), 0);
  for (int waited = 0; waited < 5000 && b.frame_errors() == 0; waited += 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(b.frame_errors(), 1u);
  EXPECT_EQ(sink.count(), 0u);
  ::close(fd);
  b.stop();
}

TEST(TcpTransportTest, SpoofedFrameSenderRejected) {
  // Three endpoints; the raw peer handshakes as node 0 but claims frames are
  // from node 2 (hosted at a different address) — endpoint pinning rejects.
  const std::uint16_t port_b = free_port();
  const Topology topo = Topology::parse(
      "node 0 127.0.0.1:" + std::to_string(free_port()) +
      "\nnode 1 127.0.0.1:" + std::to_string(port_b) +
      "\nnode 2 127.0.0.1:" + std::to_string(free_port()) + "\n");
  TcpTransport b(topo, {1});
  Sink sink;
  b.start(sink.fn());
  const int fd = dial_raw(port_b);
  ASSERT_GE(fd, 0);
  const auto wire = wire_bytes(/*sender=*/0, /*from=*/2, 1, "spoof");
  ASSERT_GT(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL), 0);
  for (int waited = 0; waited < 5000 && b.frame_errors() == 0; waited += 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(b.frame_errors(), 1u);
  EXPECT_EQ(sink.count(), 0u);
  ::close(fd);
  b.stop();
}

TEST(TcpTransportTest, FullSendQueueShedsFrames) {
  // Peer address with nothing listening: the writer sits in dial backoff
  // while sends pile into a capacity-2 queue.
  const Topology topo = pair_topology(free_port(), free_port());
  TcpTransportOptions options;
  options.send_queue_capacity = 2;
  options.reconnect_backoff_min = msec(200);
  options.reconnect_backoff_max = sec(2);
  TcpTransport a(topo, {0}, options);
  Sink sink;
  a.start(sink.fn());
  std::size_t accepted = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.send(0, 1, Payload(to_bytes("flood")))) ++accepted;
  }
  EXPECT_LT(accepted, 20u);
  EXPECT_GT(a.frames_dropped(), 0u);
  EXPECT_EQ(accepted + a.frames_dropped(), 20u);
  a.stop();
}

TEST(TcpTransportTest, OversizedFrameRejectedAtSend) {
  const Topology topo = pair_topology(free_port(), free_port());
  TcpTransportOptions options;
  options.max_frame_bytes = 64;
  TcpTransport a(topo, {0}, options);
  Sink sink;
  a.start(sink.fn());
  EXPECT_FALSE(a.send(0, 1, Payload(Bytes(1024, 0x7f))));
  EXPECT_EQ(a.frames_dropped(), 1u);
  a.stop();
}

TEST(TcpTransportTest, ReconnectsAfterPeerRestart) {
  const std::uint16_t port_a = free_port();
  const std::uint16_t port_b = free_port();
  const Topology topo = pair_topology(port_a, port_b);
  TcpTransportOptions fast;
  fast.reconnect_backoff_min = msec(10);
  fast.reconnect_backoff_max = msec(100);
  TcpTransport a(topo, {0}, fast);
  Sink sink_a;
  a.start(sink_a.fn());

  {
    TcpTransport b(topo, {1});
    Sink sink_b;
    b.start(sink_b.fn());
    ASSERT_TRUE(a.send(0, 1, Payload(to_bytes("before-restart"))));
    ASSERT_TRUE(sink_b.wait_for(1));
    b.stop();
  }

  // Peer gone: this frame rides the dead connection or a redial loop until
  // the restarted peer accepts; a later frame must arrive at the new one.
  a.send(0, 1, Payload(to_bytes("during-outage")));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  TcpTransport b2(topo, {1});
  Sink sink_b2;
  b2.start(sink_b2.fn());
  // A frame written just before the RST arrives can vanish into the dead
  // socket's buffer, so keep sending until the restarted peer hears one.
  for (int i = 0; i < 200 && sink_b2.count() == 0; ++i) {
    a.send(0, 1, Payload(to_bytes("after-restart")));
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  ASSERT_TRUE(sink_b2.wait_for(1, 1000));
  EXPECT_GE(a.reconnects(), 1u);
  a.stop();
  b2.stop();
}

TEST(TcpTransportTest, SendToUnknownIdReturnsFalse) {
  const Topology topo = pair_topology(free_port(), free_port());
  TcpTransport a(topo, {0});
  Sink sink;
  a.start(sink.fn());
  EXPECT_FALSE(a.send(0, 999, Payload(to_bytes("void"))));
  a.stop();
}

TEST(TcpTransportTest, LocalIdsMustShareOneAddress) {
  const Topology topo = pair_topology(free_port(), free_port());
  EXPECT_THROW(TcpTransport(topo, {0, 1}), std::invalid_argument);
  EXPECT_THROW(TcpTransport(topo, {}), std::invalid_argument);
}

TEST(TcpTransportTest, MetricsRegisterInSharedRegistry) {
  obs::MetricsRegistry registry;
  const Topology topo = pair_topology(free_port(), free_port());
  TcpTransportOptions options;
  options.metrics = &registry;
  TcpTransport a(topo, {0}, options);
  TcpTransport b(topo, {1});  // unregistered peer keeps names unambiguous
  Sink sink_a, sink_b;
  a.start(sink_a.fn());
  b.start(sink_b.fn());
  ASSERT_TRUE(a.send(0, 1, Payload(to_bytes("counted"))));
  ASSERT_TRUE(sink_b.wait_for(1));
  EXPECT_GE(registry.counter("transport.frames_out").value(), 1u);
  EXPECT_GT(registry.counter("transport.bytes_out").value(), 0u);
  a.stop();
  b.stop();
}

}  // namespace
}  // namespace bft::runtime

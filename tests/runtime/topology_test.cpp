#include "runtime/topology.hpp"

#include <gtest/gtest.h>

namespace bft::runtime {
namespace {

constexpr std::string_view kSample = R"(# role  id  host:port
node     0  127.0.0.1:5000
node     1  127.0.0.1:5001
node     2  127.0.0.1:5002
node     3  127.0.0.1:5003   # trailing comment
frontend 100 127.0.0.1:5100

client   200 10.0.0.9:6000
)";

TEST(TopologyTest, ParsesRolesIdsAndAddresses) {
  const Topology topo = Topology::parse(kSample);
  ASSERT_EQ(topo.entries().size(), 6u);
  EXPECT_EQ(topo.at(0).role, "node");
  EXPECT_EQ(topo.at(0).host, "127.0.0.1");
  EXPECT_EQ(topo.at(0).port, 5000);
  EXPECT_EQ(topo.at(100).address(), "127.0.0.1:5100");
  EXPECT_EQ(topo.at(200).host, "10.0.0.9");
  EXPECT_EQ(topo.find(42), nullptr);
  EXPECT_THROW(topo.at(42), std::invalid_argument);
}

TEST(TopologyTest, RoleAndAddressQueries) {
  const Topology topo = Topology::parse(kSample);
  EXPECT_EQ(topo.ids_with_role("node"),
            (std::vector<ProcessId>{0, 1, 2, 3}));
  EXPECT_EQ(topo.ids_with_role("frontend"), (std::vector<ProcessId>{100}));
  EXPECT_EQ(topo.ids_at("127.0.0.1:5001"), (std::vector<ProcessId>{1}));
  EXPECT_TRUE(topo.ids_at("127.0.0.1:9999").empty());
}

TEST(TopologyTest, CoHostedIdsShareOneAddress) {
  const Topology topo = Topology::parse(
      "node 0 127.0.0.1:4000\n"
      "node 1 127.0.0.1:4000\n"
      "frontend 100 127.0.0.1:4100\n");
  EXPECT_EQ(topo.ids_at("127.0.0.1:4000"), (std::vector<ProcessId>{0, 1}));
}

TEST(TopologyTest, RejectsMalformedLines) {
  EXPECT_THROW(Topology::parse("node 0 127.0.0.1"), std::invalid_argument);
  EXPECT_THROW(Topology::parse("node 0 127.0.0.1:notaport"),
               std::invalid_argument);
  EXPECT_THROW(Topology::parse("node 0 127.0.0.1:70000"),
               std::invalid_argument);
  EXPECT_THROW(Topology::parse("node zero 127.0.0.1:5000"),
               std::invalid_argument);
  EXPECT_THROW(Topology::parse("node 0 127.0.0.1:5000 extra"),
               std::invalid_argument);
  EXPECT_THROW(Topology::parse("node 0 127.0.0.1:5000\nnode 0 127.0.0.1:5001"),
               std::invalid_argument);  // duplicate id
}

TEST(TopologyTest, CommentsAndBlanksIgnored) {
  const Topology topo = Topology::parse("\n# only comments\n\n");
  EXPECT_TRUE(topo.empty());
}

TEST(TopologyTest, LoadMissingFileThrows) {
  EXPECT_THROW(Topology::load("/nonexistent/cluster.cfg"), std::runtime_error);
}

}  // namespace
}  // namespace bft::runtime

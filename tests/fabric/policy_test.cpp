#include "fabric/policy.hpp"

#include <gtest/gtest.h>

namespace bft::fabric {
namespace {

TEST(PolicyTest, KOfN) {
  EndorsementPolicy policy({10, 11, 12}, 2);
  EXPECT_FALSE(policy.satisfied_by({}));
  EXPECT_FALSE(policy.satisfied_by({10}));
  EXPECT_TRUE(policy.satisfied_by({10, 11}));
  EXPECT_TRUE(policy.satisfied_by({10, 11, 12}));
}

TEST(PolicyTest, NonMembersDoNotCount) {
  EndorsementPolicy policy({10, 11, 12}, 2);
  EXPECT_FALSE(policy.satisfied_by({10, 99}));
  EXPECT_FALSE(policy.is_member(99));
  EXPECT_TRUE(policy.is_member(10));
}

TEST(PolicyTest, Factories) {
  const auto any = EndorsementPolicy::any_of({1, 2, 3});
  EXPECT_EQ(any.required(), 1u);
  EXPECT_TRUE(any.satisfied_by({3}));

  const auto all = EndorsementPolicy::all_of({1, 2, 3});
  EXPECT_EQ(all.required(), 3u);
  EXPECT_FALSE(all.satisfied_by({1, 2}));
  EXPECT_TRUE(all.satisfied_by({1, 2, 3}));

  const auto majority = EndorsementPolicy::majority_of({1, 2, 3, 4});
  EXPECT_EQ(majority.required(), 3u);
  EXPECT_FALSE(majority.satisfied_by({1, 2}));
  EXPECT_TRUE(majority.satisfied_by({1, 2, 4}));
}

TEST(PolicyTest, Validation) {
  EXPECT_THROW(EndorsementPolicy({}, 1), std::invalid_argument);
  EXPECT_THROW(EndorsementPolicy({1}, 0), std::invalid_argument);
  EXPECT_THROW(EndorsementPolicy({1, 2}, 3), std::invalid_argument);
}

}  // namespace
}  // namespace bft::fabric

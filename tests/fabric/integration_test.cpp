// The complete HLF transaction flow (Figure 2) over the BFT ordering
// service: clients endorse at peers, submit envelopes through a frontend,
// the BFT-SMaRt cluster orders and signs blocks, frontends deliver them and
// committing peers validate + apply.
#include <gtest/gtest.h>

#include "fabric/client.hpp"
#include "ordering/deployment.hpp"
#include "runtime/sim_runtime.hpp"

namespace bft::fabric {
namespace {

using sim::kMillisecond;
using sim::kSecond;

constexpr runtime::ProcessId kPeerA = 200;
constexpr runtime::ProcessId kPeerB = 201;
constexpr runtime::ProcessId kClient = 300;
constexpr runtime::ProcessId kFrontendId = 100;

struct FabricDeployment {
  FabricDeployment()
      : policy({kPeerA, kPeerB}, 2),
        peer_a(kPeerA, "channel-0", policy),
        peer_b(kPeerB, "channel-0", policy),
        client(kClient, "channel-0", policy),
        options(make_options()),
        service(ordering::make_service(options)),
        cluster(sim::make_lan(120, kMillisecond / 10, sim::NetworkConfig{}, 5), 5) {
    for (Peer* p : {&peer_a, &peer_b}) {
      p->install_chaincode(std::make_shared<TokenChaincode>());
    }
    for (std::size_t i = 0; i < service.nodes.size(); ++i) {
      cluster.add_process(service.cluster.members()[i],
                          service.nodes[i].replica.get(), sim::CpuConfig{});
    }
    // The frontend relays every delivered block to both committing peers.
    frontend = std::make_unique<ordering::Frontend>(
        service.cluster, make_frontend_options(service, options),
        [this](const ledger::Block& block) {
          ASSERT_TRUE(peer_a.commit_block(block).ok());
          ASSERT_TRUE(peer_b.commit_block(block).ok());
        });
    cluster.add_process(kFrontendId, frontend.get());
  }

  static ordering::ServiceOptions make_options() {
    ordering::ServiceOptions o;
    o.nodes = {0, 1, 2, 3};
    o.block_size = 2;
    return o;
  }

  /// Endorse + assemble + schedule submission through the frontend.
  void submit_tx_at(sim::SimTime at, std::vector<std::string> args) {
    const Proposal proposal = client.make_proposal("token", std::move(args));
    auto envelope = client.collect_and_assemble(proposal, {&peer_a, &peer_b});
    ASSERT_TRUE(envelope.ok()) << envelope.error();
    Bytes encoded = envelope.value().encode();
    ordering::Frontend* fe = frontend.get();
    cluster.schedule_at(at, [fe, encoded = std::move(encoded)]() mutable {
      fe->submit(std::move(encoded));
    });
  }

  EndorsementPolicy policy;
  Peer peer_a;
  Peer peer_b;
  FabricClient client;
  ordering::ServiceOptions options;
  ordering::Service service;
  runtime::SimCluster cluster;
  std::unique_ptr<ordering::Frontend> frontend;
};

TEST(FabricIntegrationTest, EndToEndTokenTransfers) {
  FabricDeployment d;
  // NOTE: endorsement happens against the peers' current state at submission
  // time. The opens touch distinct keys, so both validate; the transfer is
  // endorsed later, after commits, via a second round below.
  d.submit_tx_at(kMillisecond, {"open", "alice", "100"});
  d.submit_tx_at(kMillisecond, {"open", "bob", "50"});
  d.cluster.run_until(kSecond);

  ASSERT_EQ(d.peer_a.ledger().height(), 1u);
  EXPECT_EQ(d.peer_a.state().get("acct:alice"), to_bytes("100"));

  // Second round: a transfer endorsed against the committed state.
  d.submit_tx_at(d.cluster.now() + kMillisecond, {"transfer", "alice", "bob", "25"});
  d.submit_tx_at(d.cluster.now() + kMillisecond, {"open", "carol", "1"});
  d.cluster.run_until(2 * kSecond);

  ASSERT_EQ(d.peer_a.ledger().height(), 2u);
  EXPECT_EQ(d.peer_a.state().get("acct:alice"), to_bytes("75"));
  EXPECT_EQ(d.peer_a.state().get("acct:bob"), to_bytes("75"));
  EXPECT_EQ(d.peer_a.state().get("acct:carol"), to_bytes("1"));
  // Both peers agree exactly.
  EXPECT_EQ(d.peer_b.state().get("acct:alice"), to_bytes("75"));
  EXPECT_EQ(d.peer_a.ledger().tip().header.digest(),
            d.peer_b.ledger().tip().header.digest());
  EXPECT_TRUE(d.peer_a.ledger().verify().is_ok());
  EXPECT_EQ(d.peer_a.committed_invalid_txs(), 0u);
}

TEST(FabricIntegrationTest, ConflictingTransfersResolvedByOrdering) {
  FabricDeployment d;
  d.submit_tx_at(kMillisecond, {"open", "alice", "100"});
  d.submit_tx_at(kMillisecond, {"open", "bob", "0"});
  d.cluster.run_until(kSecond);
  ASSERT_EQ(d.peer_a.ledger().height(), 1u);

  // Both transfers endorsed against the same committed state -> same read
  // versions -> whichever is ordered second must fail MVCC.
  d.submit_tx_at(d.cluster.now() + kMillisecond, {"transfer", "alice", "bob", "60"});
  d.submit_tx_at(d.cluster.now() + kMillisecond, {"transfer", "alice", "bob", "70"});
  d.cluster.run_until(2 * kSecond);

  ASSERT_EQ(d.peer_a.ledger().height(), 2u);
  const auto& validation = d.peer_a.history().back();
  ASSERT_EQ(validation.results.size(), 2u);
  EXPECT_EQ(validation.valid_count(), 1u);
  EXPECT_EQ(d.peer_a.committed_invalid_txs(), 1u);
  // Exactly one transfer applied; no double spend.
  const Bytes alice = *d.peer_a.state().get("acct:alice");
  const Bytes bob = *d.peer_a.state().get("acct:bob");
  const bool first_won = alice == to_bytes("40") && bob == to_bytes("60");
  const bool second_won = alice == to_bytes("30") && bob == to_bytes("70");
  EXPECT_TRUE(first_won || second_won);
  // Determinism across peers.
  EXPECT_EQ(d.peer_b.state().get("acct:alice"), alice);
  EXPECT_EQ(d.peer_b.state().get("acct:bob"), bob);
}

TEST(FabricIntegrationTest, MaliciousClientActionsAreOnTheLedger) {
  FabricDeployment d;
  d.submit_tx_at(kMillisecond, {"open", "alice", "100"});
  // A malformed envelope goes straight to the frontend alongside it.
  ordering::Frontend* fe = d.frontend.get();
  d.cluster.schedule_at(kMillisecond, [fe] { fe->submit(to_bytes("garbage-envelope")); });
  d.cluster.run_until(kSecond);

  ASSERT_EQ(d.peer_a.ledger().height(), 1u);
  const auto& validation = d.peer_a.history().back();
  ASSERT_EQ(validation.results.size(), 2u);
  EXPECT_EQ(validation.valid_count(), 1u);
  // The garbage transaction is recorded (identifying misbehaviour, §3
  // step 6) but was not executed.
  int bad = 0;
  for (const auto v : validation.results) {
    if (v == TxValidation::bad_envelope) ++bad;
  }
  EXPECT_EQ(bad, 1);
  EXPECT_EQ(d.peer_a.ledger().tip().envelopes.size(), 2u);
}

}  // namespace
}  // namespace bft::fabric

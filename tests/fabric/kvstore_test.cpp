#include "fabric/kvstore.hpp"

#include <gtest/gtest.h>

namespace bft::fabric {
namespace {

TEST(KvStoreTest, GetMissingKey) {
  VersionedKvStore store;
  EXPECT_EQ(store.get("x"), std::nullopt);
  EXPECT_EQ(store.version_of("x"), 0u);
  EXPECT_EQ(store.size(), 0u);
}

TEST(KvStoreTest, PutBumpsVersion) {
  VersionedKvStore store;
  store.put("x", to_bytes("1"));
  EXPECT_EQ(store.get("x"), to_bytes("1"));
  EXPECT_EQ(store.version_of("x"), 1u);
  store.put("x", to_bytes("2"));
  EXPECT_EQ(store.get("x"), to_bytes("2"));
  EXPECT_EQ(store.version_of("x"), 2u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, EraseLeavesTombstoneVersion) {
  VersionedKvStore store;
  store.put("x", to_bytes("1"));
  store.erase("x");
  EXPECT_EQ(store.get("x"), std::nullopt);
  // A reader that saw version 1 must fail MVCC after the delete.
  EXPECT_EQ(store.version_of("x"), 2u);
  EXPECT_EQ(store.size(), 0u);
}

TEST(KvStoreTest, EraseMissingIsNoOp) {
  VersionedKvStore store;
  store.erase("ghost");
  EXPECT_EQ(store.version_of("ghost"), 0u);
  store.put("x", to_bytes("1"));
  store.erase("x");
  store.erase("x");  // double delete
  EXPECT_EQ(store.version_of("x"), 2u);
}

TEST(KvStoreTest, ReinsertAfterDeleteKeepsBumpingVersions) {
  VersionedKvStore store;
  store.put("x", to_bytes("1"));  // v1
  store.erase("x");               // v2
  store.put("x", to_bytes("3"));  // v3
  EXPECT_EQ(store.version_of("x"), 3u);
  EXPECT_EQ(store.get("x"), to_bytes("3"));
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, IndependentKeys) {
  VersionedKvStore store;
  store.put("a", to_bytes("1"));
  store.put("b", to_bytes("2"));
  store.put("a", to_bytes("3"));
  EXPECT_EQ(store.version_of("a"), 2u);
  EXPECT_EQ(store.version_of("b"), 1u);
  EXPECT_EQ(store.size(), 2u);
}

}  // namespace
}  // namespace bft::fabric

// Endorsement, client assembly and committing-peer validation (steps 1-6 of
// the HLF protocol) without the ordering service in between.
#include <gtest/gtest.h>

#include "fabric/client.hpp"

#include "smr/replica.hpp"

namespace bft::fabric {
namespace {

constexpr runtime::ProcessId kPeerA = 200;
constexpr runtime::ProcessId kPeerB = 201;
constexpr runtime::ProcessId kPeerC = 202;
constexpr runtime::ProcessId kClient = 300;

struct Network {
  Network()
      : policy({kPeerA, kPeerB, kPeerC}, 2),
        peer_a(kPeerA, "ch", policy),
        peer_b(kPeerB, "ch", policy),
        peer_c(kPeerC, "ch", policy),
        client(kClient, "ch", policy) {
    for (Peer* p : {&peer_a, &peer_b, &peer_c}) {
      p->install_chaincode(std::make_shared<TokenChaincode>());
      p->install_chaincode(std::make_shared<KvChaincode>());
    }
  }

  /// Endorse at a/b, assemble, and commit the envelope through all peers in
  /// a single-envelope block.
  Result<Envelope> make_tx(std::vector<std::string> args) {
    const Proposal proposal = client.make_proposal("token", std::move(args));
    return client.collect_and_assemble(proposal, {&peer_a, &peer_b});
  }

  BlockValidation commit(const std::vector<Envelope>& envelopes) {
    std::vector<Bytes> raw;
    raw.reserve(envelopes.size());
    for (const auto& e : envelopes) raw.push_back(e.encode());
    const ledger::Block block = ledger::make_block(
        peer_a.ledger().next_number(), peer_a.ledger().expected_previous_hash(),
        std::move(raw));
    auto va = peer_a.commit_block(block);
    auto vb = peer_b.commit_block(block);
    auto vc = peer_c.commit_block(block);
    EXPECT_TRUE(va.ok());
    EXPECT_TRUE(vb.ok());
    EXPECT_TRUE(vc.ok());
    EXPECT_EQ(va.value().results, vb.value().results);  // determinism
    EXPECT_EQ(va.value().results, vc.value().results);
    return va.value();
  }

  EndorsementPolicy policy;
  Peer peer_a, peer_b, peer_c;
  FabricClient client;
};

TEST(FabricPeerTest, EndorseProducesVerifiableSignature) {
  Network net;
  const Proposal p = net.client.make_proposal("token", {"open", "alice", "100"});
  auto response = net.peer_a.endorse(p);
  ASSERT_TRUE(response.ok());
  const auto& r = response.value();
  EXPECT_EQ(r.endorsement.peer, kPeerA);
  const auto sig = crypto::Signature::from_bytes(r.endorsement.signature);
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(smr::process_public_key(kPeerA).verify(
      endorsement_digest(p, r.rwset), sig.value()));
}

TEST(FabricPeerTest, EndorseRejectsUnknownChaincodeAndWrongChannel) {
  Network net;
  EXPECT_FALSE(net.peer_a.endorse(net.client.make_proposal("ghost", {"x"})).ok());
  FabricClient other(kClient + 1, "other-channel", net.policy);
  EXPECT_FALSE(net.peer_a.endorse(other.make_proposal("token", {"x"})).ok());
}

TEST(FabricPeerTest, EndorsementIsSimulationOnly) {
  Network net;
  ASSERT_TRUE(net.peer_a.endorse(
      net.client.make_proposal("token", {"open", "alice", "100"})).ok());
  // No state change before commit.
  EXPECT_EQ(net.peer_a.state().version_of("acct:alice"), 0u);
}

TEST(FabricPeerTest, FullLifecycleValidTransaction) {
  Network net;
  auto open_tx = net.make_tx({"open", "alice", "100"});
  ASSERT_TRUE(open_tx.ok());
  const auto validation = net.commit({open_tx.value()});
  ASSERT_EQ(validation.results.size(), 1u);
  EXPECT_EQ(validation.results[0], TxValidation::valid);
  EXPECT_EQ(net.peer_a.state().get("acct:alice"), to_bytes("100"));
  EXPECT_EQ(net.peer_c.state().get("acct:alice"), to_bytes("100"));
  EXPECT_EQ(net.peer_a.ledger().height(), 1u);
}

TEST(FabricPeerTest, MvccConflictDetectedOnStaleRead) {
  Network net;
  auto open_tx = net.make_tx({"open", "alice", "100"});
  ASSERT_TRUE(open_tx.ok());
  net.commit({open_tx.value()});

  auto open_bob = net.make_tx({"open", "bob", "0"});
  ASSERT_TRUE(open_bob.ok());
  net.commit({open_bob.value()});

  auto a = net.make_tx({"transfer", "alice", "bob", "10"});
  auto b = net.make_tx({"transfer", "alice", "bob", "20"});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const auto validation = net.commit({a.value(), b.value()});
  ASSERT_EQ(validation.results.size(), 2u);
  EXPECT_EQ(validation.results[0], TxValidation::valid);
  EXPECT_EQ(validation.results[1], TxValidation::mvcc_conflict);
  // Only the first transfer applied.
  EXPECT_EQ(net.peer_a.state().get("acct:alice"), to_bytes("90"));
  EXPECT_EQ(net.peer_a.state().get("acct:bob"), to_bytes("10"));
  // The invalid transaction is still on the ledger.
  EXPECT_EQ(net.peer_a.ledger().tip().envelopes.size(), 2u);
  EXPECT_EQ(net.peer_a.committed_invalid_txs(), 1u);
}

TEST(FabricPeerTest, EndorsementPolicyFailureDetected) {
  Network net;
  const Proposal p = net.client.make_proposal("token", {"open", "alice", "5"});
  auto only_a = net.peer_a.endorse(p);
  ASSERT_TRUE(only_a.ok());
  // Assembly refuses with a single endorsement (policy needs 2)...
  EXPECT_FALSE(net.client.assemble(p, {only_a.value()}).ok());

  // ...and a committing peer refuses an envelope that sneaks through with a
  // forged second endorsement.
  Envelope forged;
  forged.proposal = p;
  forged.rwset = only_a.value().rwset;
  forged.endorsements.push_back(only_a.value().endorsement);
  forged.endorsements.push_back(Endorsement{kPeerB, Bytes(64, 0x11)});
  forged.client_signature =
      smr::process_signing_key(kClient).sign(forged.signing_digest()).to_bytes();
  EXPECT_EQ(net.peer_a.validate(forged), TxValidation::endorsement_policy_failure);
}

TEST(FabricPeerTest, BadClientSignatureDetected) {
  Network net;
  auto tx = net.make_tx({"open", "alice", "100"});
  ASSERT_TRUE(tx.ok());
  Envelope tampered = tx.value();
  tampered.client_signature[5] ^= 0xff;
  EXPECT_EQ(net.peer_a.validate(tampered), TxValidation::bad_client_signature);
  // Tampering the rwset without resigning also trips the client signature.
  Envelope resigned = tx.value();
  resigned.rwset.writes[0].value = to_bytes("999999");
  EXPECT_EQ(net.peer_a.validate(resigned), TxValidation::bad_client_signature);
}

TEST(FabricPeerTest, TamperedRwsetWithResignedClientFailsPolicy) {
  // A malicious *client* re-signs a tampered rwset; endorsement signatures
  // no longer match, so the policy check catches it.
  Network net;
  auto tx = net.make_tx({"open", "alice", "100"});
  ASSERT_TRUE(tx.ok());
  Envelope evil = tx.value();
  evil.rwset.writes[0].value = to_bytes("999999");
  evil.client_signature =
      smr::process_signing_key(kClient).sign(evil.signing_digest()).to_bytes();
  EXPECT_EQ(net.peer_a.validate(evil), TxValidation::endorsement_policy_failure);
}

TEST(FabricPeerTest, UndecodableEnvelopeMarkedBad) {
  Network net;
  const ledger::Block block = ledger::make_block(
      1, net.peer_a.ledger().expected_previous_hash(), {to_bytes("garbage")});
  auto validation = net.peer_a.commit_block(block);
  ASSERT_TRUE(validation.ok());
  ASSERT_EQ(validation.value().results.size(), 1u);
  EXPECT_EQ(validation.value().results[0], TxValidation::bad_envelope);
}

TEST(FabricPeerTest, CommitRejectsOutOfOrderBlocks) {
  Network net;
  const ledger::Block bogus = ledger::make_block(
      5, crypto::sha256(to_bytes("nope")), {});
  EXPECT_FALSE(net.peer_a.commit_block(bogus).ok());
}

TEST(FabricPeerTest, DivergentEndorsementsAreDropped) {
  Network net;
  const Proposal p = net.client.make_proposal("token", {"open", "alice", "7"});
  auto ra = net.peer_a.endorse(p);
  auto rb = net.peer_b.endorse(p);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  // Corrupt peer B's response payload: its rwset no longer matches A's.
  ProposalResponse divergent = rb.value();
  divergent.rwset.writes[0].value = to_bytes("1000000");
  EXPECT_FALSE(net.client.assemble(p, {ra.value(), divergent}).ok());
  // With the honest pair it assembles fine.
  EXPECT_TRUE(net.client.assemble(p, {ra.value(), rb.value()}).ok());
}

TEST(FabricPeerTest, EnvelopeEncodeDecodeRoundTrip) {
  Network net;
  auto tx = net.make_tx({"open", "alice", "100"});
  ASSERT_TRUE(tx.ok());
  const Envelope& original = tx.value();
  const Envelope decoded = Envelope::decode(original.encode());
  EXPECT_EQ(decoded.tx_id(), original.tx_id());
  EXPECT_EQ(decoded.rwset, original.rwset);
  EXPECT_EQ(decoded.client_signature, original.client_signature);
  ASSERT_EQ(decoded.endorsements.size(), original.endorsements.size());
}

}  // namespace
}  // namespace bft::fabric

#include "fabric/chaincode.hpp"

#include <gtest/gtest.h>

namespace bft::fabric {
namespace {

TEST(ChaincodeStubTest, RecordsReadVersions) {
  VersionedKvStore state;
  state.put("x", to_bytes("1"));
  state.put("x", to_bytes("2"));  // version 2
  ChaincodeStub stub(state);
  EXPECT_EQ(stub.get("x"), to_bytes("2"));
  EXPECT_EQ(stub.get("missing"), std::nullopt);
  const RwSet set = stub.take_rwset(to_bytes("r"));
  ASSERT_EQ(set.reads.size(), 2u);
  EXPECT_EQ(set.reads[0], (ReadEntry{"x", 2}));
  EXPECT_EQ(set.reads[1], (ReadEntry{"missing", 0}));
}

TEST(ChaincodeStubTest, DuplicateReadsRecordedOnce) {
  VersionedKvStore state;
  state.put("x", to_bytes("1"));
  ChaincodeStub stub(state);
  stub.get("x");
  stub.get("x");
  EXPECT_EQ(stub.take_rwset({}).reads.size(), 1u);
}

TEST(ChaincodeStubTest, ReadYourOwnWrites) {
  VersionedKvStore state;
  ChaincodeStub stub(state);
  stub.put("x", to_bytes("new"));
  EXPECT_EQ(stub.get("x"), to_bytes("new"));
  stub.erase("x");
  EXPECT_EQ(stub.get("x"), std::nullopt);
  const RwSet set = stub.take_rwset({});
  // Reads satisfied from the write buffer do not enter the read set.
  EXPECT_TRUE(set.reads.empty());
  ASSERT_EQ(set.writes.size(), 1u);  // final write wins
  EXPECT_TRUE(set.writes[0].is_delete);
}

TEST(ChaincodeStubTest, LastWritePerKeyWins) {
  VersionedKvStore state;
  ChaincodeStub stub(state);
  stub.put("x", to_bytes("a"));
  stub.put("x", to_bytes("b"));
  const RwSet set = stub.take_rwset({});
  ASSERT_EQ(set.writes.size(), 1u);
  EXPECT_EQ(set.writes[0].value, to_bytes("b"));
}

TEST(KvChaincodeTest, PutGetDel) {
  VersionedKvStore state;
  KvChaincode cc;
  {
    ChaincodeStub stub(state);
    auto r = cc.invoke(stub, {"put", "k", "v"});
    ASSERT_TRUE(r.ok());
    const RwSet set = stub.take_rwset(std::move(r).take());
    ASSERT_EQ(set.writes.size(), 1u);
    EXPECT_EQ(set.writes[0].value, to_bytes("v"));
  }
  state.put("k", to_bytes("v"));
  {
    ChaincodeStub stub(state);
    auto r = cc.invoke(stub, {"get", "k"});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), to_bytes("v"));
  }
  {
    ChaincodeStub stub(state);
    EXPECT_FALSE(cc.invoke(stub, {"get", "missing"}).ok());
    EXPECT_FALSE(cc.invoke(stub, {"put", "k"}).ok());
    EXPECT_FALSE(cc.invoke(stub, {}).ok());
  }
}

TEST(TokenChaincodeTest, OpenAndTransfer) {
  VersionedKvStore state;
  TokenChaincode cc;
  auto run = [&](std::vector<std::string> args) {
    ChaincodeStub stub(state);
    auto r = cc.invoke(stub, args);
    if (r.ok()) {
      // Apply writes directly (single-peer shortcut for unit testing).
      for (const auto& w : stub.take_rwset({}).writes) {
        if (w.is_delete) {
          state.erase(w.key);
        } else {
          state.put(w.key, w.value);
        }
      }
    }
    return r;
  };

  EXPECT_TRUE(run({"open", "alice", "100"}).ok());
  EXPECT_TRUE(run({"open", "bob", "10"}).ok());
  EXPECT_FALSE(run({"open", "alice", "5"}).ok());  // exists
  EXPECT_TRUE(run({"transfer", "alice", "bob", "30"}).ok());
  EXPECT_FALSE(run({"transfer", "alice", "bob", "1000"}).ok());  // insufficient
  EXPECT_FALSE(run({"transfer", "alice", "bob", "-5"}).ok());
  EXPECT_FALSE(run({"transfer", "alice", "ghost", "1"}).ok());

  ChaincodeStub stub(state);
  auto balance = cc.invoke(stub, {"balance", "alice"});
  ASSERT_TRUE(balance.ok());
  EXPECT_EQ(balance.value(), to_bytes("70"));
  auto bob = cc.invoke(stub, {"balance", "bob"});
  EXPECT_EQ(bob.value(), to_bytes("40"));
}

TEST(TokenChaincodeTest, RejectsMalformedAmounts) {
  VersionedKvStore state;
  TokenChaincode cc;
  ChaincodeStub stub(state);
  EXPECT_FALSE(cc.invoke(stub, {"open", "a", "12x"}).ok());
  EXPECT_FALSE(cc.invoke(stub, {"open", "a", ""}).ok());
  EXPECT_FALSE(cc.invoke(stub, {"open", "a", "-1"}).ok());
}

TEST(AssetChaincodeTest, CreateTransferQuery) {
  VersionedKvStore state;
  AssetChaincode cc;
  {
    ChaincodeStub stub(state);
    ASSERT_TRUE(cc.invoke(stub, {"create", "car1", "alice", "tesla"}).ok());
    for (const auto& w : stub.take_rwset({}).writes) state.put(w.key, w.value);
  }
  {
    ChaincodeStub stub(state);
    ASSERT_TRUE(cc.invoke(stub, {"transfer", "car1", "bob"}).ok());
    for (const auto& w : stub.take_rwset({}).writes) state.put(w.key, w.value);
  }
  ChaincodeStub stub(state);
  auto q = cc.invoke(stub, {"query", "car1"});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value(), to_bytes("bob|tesla"));
  EXPECT_FALSE(cc.invoke(stub, {"query", "car2"}).ok());
  EXPECT_FALSE(cc.invoke(stub, {"create", "car1", "x", "y"}).ok());
}

}  // namespace
}  // namespace bft::fabric

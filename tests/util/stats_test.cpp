#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace bft {
namespace {

TEST(HistogramTest, BasicOrderStatistics) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1);
  EXPECT_DOUBLE_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.median(), 50);
  EXPECT_DOUBLE_EQ(h.percentile(0.9), 90);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 100);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1);
}

TEST(HistogramTest, UnsortedInsertion) {
  Histogram h;
  h.add(5);
  h.add(1);
  h.add(3);
  EXPECT_DOUBLE_EQ(h.median(), 3);
  h.add(0.5);  // re-dirty after a query
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
}

TEST(HistogramTest, SingleSample) {
  Histogram h;
  h.add(7);
  EXPECT_DOUBLE_EQ(h.median(), 7);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 7);
}

TEST(HistogramTest, EmptyThrows) {
  Histogram h;
  EXPECT_THROW(h.mean(), std::logic_error);
  EXPECT_THROW(h.median(), std::logic_error);
  EXPECT_THROW(h.min(), std::logic_error);
}

TEST(HistogramTest, InvalidQuantileThrows) {
  Histogram h;
  h.add(1);
  EXPECT_THROW(h.percentile(-0.1), std::invalid_argument);
  EXPECT_THROW(h.percentile(1.1), std::invalid_argument);
}

TEST(HistogramTest, Merge) {
  Histogram a;
  Histogram b;
  a.add(1);
  b.add(3);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2);
}

TEST(RateMeterTest, Rate) {
  RateMeter m;
  m.add(500);
  m.add();
  EXPECT_EQ(m.events(), 501u);
  EXPECT_DOUBLE_EQ(m.rate(2.0), 250.5);
  EXPECT_THROW(m.rate(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace bft

#include "util/queue.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace bft {
namespace {

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BlockingQueueTest, TryPopEmptyReturnsNullopt) {
  BlockingQueue<int> q;
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(BlockingQueueTest, BoundedTryPushFailsWhenFull) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  q.pop();
  EXPECT_TRUE(q.try_push(3));
}

TEST(BlockingQueueTest, CloseWakesBlockedPop) {
  BlockingQueue<int> q;
  std::thread consumer([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(BlockingQueueTest, CloseDrainsRemainingItems) {
  BlockingQueue<int> q;
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));
  EXPECT_EQ(q.pop(), 7);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BlockingQueueTest, TryPushAfterCloseFails) {
  BlockingQueue<int> q(4);
  q.push(1);
  q.close();
  EXPECT_FALSE(q.try_push(2));
  EXPECT_EQ(q.size(), 1u);
}

TEST(BlockingQueueTest, PopAfterCloseDrainsInFifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  q.close();
  // Close stops intake, not drain: everything already queued comes out in
  // order before the closed-and-empty nullopt.
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.try_pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(BlockingQueueTest, CloseWakesBlockedPushReturningFalse) {
  BlockingQueue<int> q(1);
  q.push(1);
  std::atomic<int> result{-1};
  std::thread producer([&] { result.store(q.push(2) ? 1 : 0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(result.load(), -1);  // still blocked on the full queue
  q.close();
  producer.join();
  EXPECT_EQ(result.load(), 0);
  EXPECT_EQ(q.pop(), 1);  // the rejected push left no trace
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BlockingQueueTest, PopUnblocksBlockedPush) {
  BlockingQueue<int> q(1);
  q.push(1);
  std::thread producer([&] { EXPECT_TRUE(q.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_EQ(q.pop(), 2);
}

TEST(BlockingQueueTest, ManyProducersManyConsumers) {
  BlockingQueue<int> q(64);
  constexpr int kProducers = 4;
  constexpr int kItemsEach = 2500;
  std::atomic<long> sum{0};
  std::atomic<int> received{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kItemsEach; ++i) q.push(i);
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (received.load() < kProducers * kItemsEach) {
        auto v = q.try_pop();
        if (v) {
          sum.fetch_add(*v);
          received.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const long expected =
      static_cast<long>(kProducers) * kItemsEach * (kItemsEach + 1) / 2;
  EXPECT_EQ(sum.load(), expected);
}

TEST(BlockingQueueTest, SizeTracksContents) {
  BlockingQueue<int> q;
  EXPECT_EQ(q.size(), 0u);
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace bft

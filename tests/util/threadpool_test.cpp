#include "util/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

namespace bft {
namespace {

TEST(ThreadPoolTest, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.drain();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, DrainWaitsForInFlightJobs) {
  ThreadPool pool(2);
  std::atomic<bool> finished{false};
  pool.submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    finished.store(true);
  });
  pool.drain();
  EXPECT_TRUE(finished.load());
}

TEST(ThreadPoolTest, ParallelismActuallyUsed) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&] {
      const int now = concurrent.fetch_add(1) + 1;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      concurrent.fetch_sub(1);
    });
  }
  pool.drain();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, WorkerCountReported) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(ThreadPoolTest, ZeroWorkersRejected) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPoolTest, DestructorCompletesQueuedJobs) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 100);
}

}  // namespace
}  // namespace bft

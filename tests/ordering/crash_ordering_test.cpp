#include "ordering/crash_ordering.hpp"

#include <gtest/gtest.h>

#include "ledger/chain.hpp"
#include "ordering/frontend.hpp"
#include "runtime/sim_runtime.hpp"

namespace bft::ordering {
namespace {

using sim::kMillisecond;
using sim::kSecond;

struct CftHarness {
  explicit CftHarness(std::uint32_t n, std::size_t block_size = 5,
                      std::uint64_t seed = 3)
      : cluster(sim::make_lan(110, kMillisecond / 10, sim::NetworkConfig{}, seed),
                seed),
        store("channel-0") {
    CrashOrderingOptions options;
    for (std::uint32_t i = 0; i < n; ++i) options.nodes.push_back(i);
    options.block_size = block_size;
    for (std::uint32_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<CrashOrderingNode>(i, options));
      cluster.add_process(i, nodes.back().get(), sim::CpuConfig{});
    }
    FrontendOptions fo;
    fo.required_copies = 1;  // crash-fault trust model
    fo.verify_signatures = false;
    frontend = std::make_unique<Frontend>(
        smr::ClusterConfig::classic(options.nodes), fo,
        [this](const ledger::Block& block) {
          ASSERT_TRUE(store.append(block).is_ok());
        });
    cluster.add_process(100, frontend.get());
  }

  void submit_at(sim::SimTime at, int i) {
    Frontend* fe = frontend.get();
    cluster.schedule_at(at, [fe, i] {
      fe->submit(to_bytes("cft-tx-" + std::to_string(i)));
    });
  }

  runtime::SimCluster cluster;
  std::vector<std::unique_ptr<CrashOrderingNode>> nodes;
  std::unique_ptr<Frontend> frontend;
  ledger::BlockStore store;
};

TEST(CrashOrderingTest, OrdersAndDeliversBlocks) {
  CftHarness h(3);
  for (int i = 0; i < 12; ++i) h.submit_at(kMillisecond * (i + 1), i);
  h.cluster.run_until(kSecond);
  EXPECT_EQ(h.store.height(), 2u);
  EXPECT_TRUE(h.store.verify().is_ok());
  EXPECT_EQ(h.frontend->delivered_envelopes(), 10u);
  // Every node converged on the committed prefix.
  for (const auto& node : h.nodes) EXPECT_EQ(node->committed(), 12u);
}

TEST(CrashOrderingTest, PreservesSubmissionOrderFromOneFrontend) {
  CftHarness h(3, 3);
  for (int i = 0; i < 3; ++i) h.submit_at(kMillisecond * (i + 1), i);
  h.cluster.run_until(kSecond);
  ASSERT_EQ(h.store.height(), 1u);
  const auto& envelopes = h.store.at(1).envelopes;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(envelopes[static_cast<std::size_t>(i)],
              to_bytes("cft-tx-" + std::to_string(i)));
  }
}

TEST(CrashOrderingTest, BackupCrashTolerated) {
  CftHarness h(3);
  h.cluster.schedule_at(kMillisecond / 2, [&h] { h.cluster.crash(2); });
  for (int i = 0; i < 10; ++i) h.submit_at(kMillisecond * (i + 1), i);
  h.cluster.run_until(kSecond);
  // Majority (primary + one backup) still commits.
  EXPECT_EQ(h.store.height(), 2u);
  EXPECT_EQ(h.nodes[0]->committed(), 10u);
}

TEST(CrashOrderingTest, PrimaryCrashHaltsService) {
  // The baseline has no failover — documenting the limitation the paper's
  // BFT service removes.
  CftHarness h(3);
  h.cluster.schedule_at(kMillisecond / 2, [&h] { h.cluster.crash(0); });
  for (int i = 0; i < 10; ++i) h.submit_at(kMillisecond * (i + 1), i);
  h.cluster.run_until(kSecond);
  EXPECT_EQ(h.store.height(), 0u);
}

TEST(CrashOrderingTest, NodesAgreeOnBlockChain) {
  // Two receivers comparing chains built from different nodes' pushes.
  CftHarness h(5, 4);
  ledger::BlockStore other("channel-0");
  FrontendOptions fo;
  fo.required_copies = 3;  // wait for copies from several nodes: must match
  Frontend second(smr::ClusterConfig::classic({0, 1, 2, 3, 4}), fo,
                  [&other](const ledger::Block& block) {
                    ASSERT_TRUE(other.append(block).is_ok());
                  });
  h.cluster.add_process(101, &second);
  for (int i = 0; i < 8; ++i) h.submit_at(kMillisecond * (i + 1), i);
  h.cluster.run_until(kSecond);
  ASSERT_EQ(h.store.height(), 2u);
  ASSERT_EQ(other.height(), 2u);
  EXPECT_EQ(h.store.tip().header.digest(), other.tip().header.digest());
}

}  // namespace
}  // namespace bft::ordering

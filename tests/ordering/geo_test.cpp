#include "ordering/geo.hpp"

#include <gtest/gtest.h>

namespace bft::ordering {
namespace {

TEST(GeoTest, PaperTopologies) {
  const GeoTopology bft = paper_bftsmart_topology();
  EXPECT_EQ(bft.node_regions.size(), 4u);
  EXPECT_EQ(bft.frontend_regions.size(), 4u);
  EXPECT_EQ(bft.node_regions[0], sim::Region::oregon);
  EXPECT_EQ(bft.frontend_regions[0], sim::Region::canada);

  const GeoTopology wheat = paper_wheat_topology();
  EXPECT_EQ(wheat.node_regions.size(), 5u);
  EXPECT_EQ(wheat.node_regions[4], sim::Region::virginia);
  // Vmax nodes are the Oregon and Virginia replicas.
  EXPECT_EQ(paper_wheat_vmax_nodes(), (std::set<runtime::ProcessId>{0, 4}));
}

TEST(GeoTest, NetworkUsesRegionalLatencies) {
  const GeoTopology topology = paper_bftsmart_topology();
  sim::Network net = make_geo_network(topology, 1);
  // Node 0 (Oregon) -> node 2 (Sydney): ~80 ms one way plus wire time.
  const auto t = net.delivery_time(0, 2, 100, 0);
  EXPECT_GT(t, 70 * sim::kMillisecond);
  EXPECT_LT(t, 95 * sim::kMillisecond);
  // Frontend 2 (Virginia, process 102) -> node 4 does not exist here, but
  // frontend 1 (Oregon, process 101) -> node 0 (Oregon) is intra-region.
  const auto close = net.delivery_time(101, 0, 100, 0);
  EXPECT_LT(close, 2 * sim::kMillisecond);
}

TEST(GeoTest, FrontendIdsMustNotCollideWithNodes) {
  GeoTopology topology = paper_bftsmart_topology();
  topology.frontend_base = 2;  // collides with node ids
  EXPECT_THROW(make_geo_network(topology, 1), std::invalid_argument);
}

TEST(GeoTest, DistinctMachinesPerParticipant) {
  const GeoTopology topology = paper_wheat_topology();
  sim::Network net = make_geo_network(topology, 1);
  for (std::uint32_t i = 0; i < 5; ++i) {
    for (std::uint32_t j = i + 1; j < 5; ++j) {
      EXPECT_NE(net.machine_of(i), net.machine_of(j));
    }
  }
  EXPECT_NE(net.machine_of(100), net.machine_of(101));
}

}  // namespace
}  // namespace bft::ordering

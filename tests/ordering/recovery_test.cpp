// Ordering-service recovery scenarios: node state (block sequence, previous
// header hash, pending blockcutter contents) surviving state transfer and
// rollback, and a WHEAT cluster staying chain-consistent through a leader
// crash mid-stream.
#include <gtest/gtest.h>

#include "ledger/chain.hpp"
#include "obs/metrics.hpp"
#include "ordering/deployment.hpp"
#include "runtime/sim_runtime.hpp"

namespace bft::ordering {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(OrderingRecoveryTest, IsolatedNodeRebuildsOrderingStateViaTransfer) {
  ServiceOptions options;
  options.nodes = {0, 1, 2, 3};
  options.block_size = 4;
  options.replica_params.forward_timeout = runtime::msec(300);
  options.replica_params.stop_timeout = runtime::msec(500);
  options.replica_params.checkpoint_period = 4;
  options.replica_params.state_transfer_gap = 4;
  options.replica_params.stall_timeout = runtime::msec(500);
  Service service = make_service(options);

  runtime::SimCluster cluster(
      sim::make_lan(110, kMillisecond / 10, sim::NetworkConfig{}, 21), 21);
  for (std::size_t i = 0; i < service.nodes.size(); ++i) {
    cluster.add_process(service.cluster.members()[i],
                        service.nodes[i].replica.get(), sim::CpuConfig{});
  }
  ledger::BlockStore store("channel-0");
  Frontend frontend(service.cluster, make_frontend_options(service, options),
                    [&store](const ledger::Block& block) {
                      ASSERT_TRUE(store.append(block).is_ok());
                    });
  cluster.add_process(100, &frontend);

  // Node 3 is fully isolated while the first 40 envelopes are ordered.
  cluster.set_filter([&cluster](runtime::ProcessId from, runtime::ProcessId to,
                                ByteView) {
    if (cluster.now() < 2 * kSecond && (from == 3 || to == 3)) {
      return runtime::FilterAction::drop;
    }
    return runtime::FilterAction::deliver;
  });
  for (int i = 0; i < 40; ++i) {
    cluster.schedule_at((10 + i * 20) * kMillisecond, [&frontend, i] {
      frontend.submit(to_bytes("tx-" + std::to_string(i)));
    });
  }
  // After the heal, more traffic lets node 3 notice its gap and catch up;
  // its ordering state (sequence + previous hash + cutter) comes from the
  // application snapshot embedded in the state transfer.
  for (int i = 40; i < 60; ++i) {
    cluster.schedule_at(3 * kSecond + (i - 40) * 20 * kMillisecond,
                        [&frontend, i] {
                          frontend.submit(to_bytes("tx-" + std::to_string(i)));
                        });
  }
  cluster.run_until(15 * kSecond);

  EXPECT_EQ(store.height(), 15u);  // 60 envelopes / 4 per block
  EXPECT_TRUE(store.verify().is_ok());
  EXPECT_EQ(service.nodes[3].app->envelopes_ordered(),
            service.nodes[0].app->envelopes_ordered());
  EXPECT_EQ(service.nodes[3].app->blocks_created(),
            service.nodes[0].app->blocks_created());
}

TEST(OrderingRecoveryTest, IsolatedNodeCatchesUpViaChunkedTransfer) {
  ServiceOptions options;
  options.nodes = {0, 1, 2, 3};
  options.block_size = 4;
  options.replica_params.forward_timeout = runtime::msec(300);
  options.replica_params.stop_timeout = runtime::msec(500);
  options.replica_params.checkpoint_period = 4;
  options.replica_params.state_transfer_gap = 4;
  options.replica_params.stall_timeout = runtime::msec(500);
  // Force streaming: any realistic snapshot blows past 256 bytes, so the
  // laggard's catch-up must arrive as acked StateChunk fragments (window 2
  // keeps several round trips in the exchange).
  options.replica_params.state_chunk_bytes = 256;
  options.replica_params.state_chunk_window = 2;
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  options.metrics_node = 3;  // instrument the laggard
  Service service = make_service(options);

  runtime::SimCluster cluster(
      sim::make_lan(110, kMillisecond / 10, sim::NetworkConfig{}, 23), 23);
  for (std::size_t i = 0; i < service.nodes.size(); ++i) {
    cluster.add_process(service.cluster.members()[i],
                        service.nodes[i].replica.get(), sim::CpuConfig{});
  }
  ledger::BlockStore store("channel-0");
  Frontend frontend(service.cluster, make_frontend_options(service, options),
                    [&store](const ledger::Block& block) {
                      ASSERT_TRUE(store.append(block).is_ok());
                    });
  cluster.add_process(100, &frontend);

  cluster.set_filter([&cluster](runtime::ProcessId from, runtime::ProcessId to,
                                ByteView) {
    if (cluster.now() < 2 * kSecond && (from == 3 || to == 3)) {
      return runtime::FilterAction::drop;
    }
    return runtime::FilterAction::deliver;
  });
  for (int i = 0; i < 40; ++i) {
    cluster.schedule_at((10 + i * 20) * kMillisecond, [&frontend, i] {
      frontend.submit(to_bytes("tx-" + std::to_string(i)));
    });
  }
  for (int i = 40; i < 60; ++i) {
    cluster.schedule_at(3 * kSecond + (i - 40) * 20 * kMillisecond,
                        [&frontend, i] {
                          frontend.submit(to_bytes("tx-" + std::to_string(i)));
                        });
  }
  cluster.run_until(15 * kSecond);

  EXPECT_EQ(store.height(), 15u);
  EXPECT_TRUE(store.verify().is_ok());
  EXPECT_EQ(service.nodes[3].app->envelopes_ordered(),
            service.nodes[0].app->envelopes_ordered());
  EXPECT_EQ(service.nodes[3].app->blocks_created(),
            service.nodes[0].app->blocks_created());
  // The catch-up genuinely streamed: the laggard reassembled several
  // fragments (2+ proves multi-chunk, i.e. the windowed path ran).
  EXPECT_GE(metrics.counter("smr.state_chunks_received").value(), 2u);
}

TEST(OrderingRecoveryTest, WheatLeaderCrashKeepsChainsConsistent) {
  ServiceOptions options;
  options.nodes = {0, 1, 2, 3, 4};
  options.vmax_nodes = {0, 1};
  options.block_size = 5;
  options.replica_params.tentative_execution = true;
  options.replica_params.forward_timeout = runtime::msec(300);
  options.replica_params.stop_timeout = runtime::msec(500);
  Service service = make_service(options);

  runtime::SimCluster cluster(
      sim::make_lan(110, kMillisecond / 10, sim::NetworkConfig{}, 5), 5);
  for (std::size_t i = 0; i < service.nodes.size(); ++i) {
    cluster.add_process(service.cluster.members()[i],
                        service.nodes[i].replica.get(), sim::CpuConfig{});
  }
  ledger::BlockStore store("channel-0");
  Frontend frontend(service.cluster, make_frontend_options(service, options),
                    [&store](const ledger::Block& block) {
                      ASSERT_TRUE(store.append(block).is_ok());
                    });
  cluster.add_process(100, &frontend);

  for (int i = 0; i < 50; ++i) {
    cluster.schedule_at((10 + i * 25) * kMillisecond, [&frontend, i] {
      frontend.submit(to_bytes("w-" + std::to_string(i)));
    });
  }
  // Crash the Vmax leader mid-stream: tentative executions at the survivors
  // may roll back, but the delivered chain must stay valid and complete.
  cluster.schedule_at(600 * kMillisecond, [&cluster] { cluster.crash(0); });
  cluster.run_until(20 * kSecond);

  EXPECT_EQ(frontend.delivered_envelopes(), 50u);
  EXPECT_EQ(store.height(), 10u);
  EXPECT_TRUE(store.verify().is_ok());
  // Survivors agree on the ordering state.
  for (std::size_t i = 2; i < 5; ++i) {
    EXPECT_EQ(service.nodes[i].app->blocks_created(),
              service.nodes[1].app->blocks_created());
  }
}

}  // namespace
}  // namespace bft::ordering

// Byzantine actors against the full ordering service, deterministic (no
// randomized chaos): the frontend acceptance rules from §5/footnote 8 under a
// corrupt-signing node, and an equivocating / mute epoch-0 leader.
#include <gtest/gtest.h>

#include <memory>

#include "ledger/chain.hpp"
#include "ordering/deployment.hpp"
#include "ordering/invariants.hpp"
#include "runtime/sim_runtime.hpp"
#include "smr/byzantine.hpp"

namespace bft::ordering {
namespace {

using sim::kMillisecond;
using sim::kSecond;

ServiceOptions byzantine_options() {
  ServiceOptions options;
  options.nodes = {0, 1, 2, 3};
  options.block_size = 4;
  options.stub_signatures = true;
  options.signature_cost = runtime::usec(50);
  options.replica_params.forward_timeout = runtime::msec(300);
  options.replica_params.stop_timeout = runtime::msec(500);
  options.replica_params.stall_timeout = runtime::msec(500);
  return options;
}

struct Deployment {
  explicit Deployment(std::uint64_t seed)
      : cluster(sim::make_lan(110, kMillisecond / 10, sim::NetworkConfig{},
                              seed),
                seed) {}
  runtime::SimCluster cluster;

  void add_nodes(Service& service, runtime::Actor* replace_node0 = nullptr) {
    for (std::size_t i = 0; i < service.nodes.size(); ++i) {
      runtime::Actor* actor = service.nodes[i].replica.get();
      if (i == 0 && replace_node0 != nullptr) actor = replace_node0;
      cluster.add_process(service.cluster.members()[i], actor,
                          sim::CpuConfig{});
    }
  }

  void submit_envelopes(Frontend& frontend, int count) {
    for (int i = 0; i < count; ++i) {
      cluster.schedule_at((10 + i * 50) * kMillisecond, [&frontend, i] {
        frontend.submit(to_bytes("env-" + std::to_string(i)));
      });
    }
  }
};

// One node emits invalid signatures over otherwise-correct blocks. A
// frontend verifying per-sender signatures accepts once f+1 verified copies
// match (footnote 8); the faulty node simply never contributes to any tally.
// Real ECDSA end to end: signing, pushing, per-sender verification.
TEST(ByzantineOrderingTest, VerifyingFrontendToleratesCorruptSignerWithEcdsa) {
  ServiceOptions options = byzantine_options();
  options.stub_signatures = false;  // real secp256k1 signatures
  options.corrupt_signers = {1};
  Service service = make_service(options);

  Deployment d(17);
  d.add_nodes(service);

  FrontendOptions fo = make_frontend_options(service, options);
  fo.verify_signatures = true;

  InvariantChecker checker;
  ledger::BlockStore store("channel-0");
  Frontend frontend(service.cluster, fo,
                    [&checker, &store](const ledger::Block& block) {
                      checker.observe(0, block);
                      ASSERT_TRUE(store.append(block).is_ok());
                    });
  d.cluster.add_process(100, &frontend);

  d.submit_envelopes(frontend, 20);
  d.cluster.run_until(15 * kSecond);

  EXPECT_EQ(frontend.delivered_envelopes(), 20u);
  EXPECT_EQ(store.height(), 5u);
  EXPECT_TRUE(store.verify().is_ok());
  EXPECT_TRUE(checker.ok()) << checker.report();
}

// The two acceptance rules diverge once fewer than f+1 nodes sign honestly:
// with three corrupt signers of four, the verifying frontend can never vouch
// a block (1 < f+1 valid copies) while the unverified 2f+1 content-matching
// rule still delivers, since the blocks themselves are correct.
TEST(ByzantineOrderingTest, VerifyingFrontendRefusesUnderVouchedBlocks) {
  ServiceOptions options = byzantine_options();
  options.corrupt_signers = {0, 1, 2};
  Service service = make_service(options);

  Deployment d(23);
  d.add_nodes(service);

  FrontendOptions verified_fo = make_frontend_options(service, options);
  verified_fo.verify_signatures = true;
  verified_fo.track_latency = false;
  FrontendOptions unverified_fo = make_frontend_options(service, options);

  Frontend verified(service.cluster, verified_fo, nullptr);
  ledger::BlockStore store("channel-0");
  Frontend unverified(service.cluster, unverified_fo,
                      [&store](const ledger::Block& block) {
                        ASSERT_TRUE(store.append(block).is_ok());
                      });
  d.cluster.add_process(100, &unverified);
  d.cluster.add_process(101, &verified);

  d.submit_envelopes(unverified, 20);
  d.cluster.run_until(15 * kSecond);

  EXPECT_EQ(unverified.delivered_envelopes(), 20u);
  EXPECT_TRUE(store.verify().is_ok());
  // Only node 3's signatures verify: one valid copy per block < f+1.
  EXPECT_EQ(verified.delivered_envelopes(), 0u);
}

// An epoch-0 leader proposing a different batch to every follower: no write
// quorum forms on any value, the synchronization phase installs an honest
// leader, and the chain stays fork-free end to end.
TEST(ByzantineOrderingTest, EquivocatingLeaderIsDemotedWithoutForking) {
  ServiceOptions options = byzantine_options();
  Service service = make_service(options);
  smr::ByzantineReplica byz(*service.nodes[0].replica,
                            smr::ByzantineBehavior::equivocate_proposals);

  Deployment d(29);
  d.add_nodes(service, &byz);

  FrontendOptions fo = make_frontend_options(service, options);
  InvariantChecker checker;
  ledger::BlockStore store("channel-0");
  Frontend submitter(service.cluster, fo,
                     [&checker, &store](const ledger::Block& block) {
                       checker.observe(0, block);
                       ASSERT_TRUE(store.append(block).is_ok());
                     });
  FrontendOptions observer_fo = fo;
  observer_fo.track_latency = false;
  Frontend observer(service.cluster, observer_fo, checker.observer(1));
  d.cluster.add_process(100, &submitter);
  d.cluster.add_process(101, &observer);

  d.submit_envelopes(submitter, 20);
  d.cluster.run_until(20 * kSecond);

  EXPECT_GT(byz.tampered_sends(), 0u);  // the attack actually ran
  EXPECT_EQ(submitter.delivered_envelopes(), 20u);
  EXPECT_EQ(observer.delivered_envelopes(), 20u);
  EXPECT_TRUE(store.verify().is_ok());
  EXPECT_TRUE(checker.ok()) << checker.report();
  for (std::size_t i = 1; i < service.nodes.size(); ++i) {
    EXPECT_GE(service.nodes[i].replica->regency(), 1u) << "node " << i;
  }
}

// A mute epoch-0 leader looks alive (WRITEs and ACCEPTs flow) but never
// proposes; only the request-timeout path can unmask it.
TEST(ByzantineOrderingTest, MuteLeaderIsReplacedAndServiceDelivers) {
  ServiceOptions options = byzantine_options();
  Service service = make_service(options);
  smr::ByzantineReplica byz(*service.nodes[0].replica,
                            smr::ByzantineBehavior::mute_leader);

  Deployment d(31);
  d.add_nodes(service, &byz);

  FrontendOptions fo = make_frontend_options(service, options);
  InvariantChecker checker;
  Frontend frontend(service.cluster, fo, checker.observer(0));
  d.cluster.add_process(100, &frontend);

  d.submit_envelopes(frontend, 20);
  d.cluster.run_until(20 * kSecond);

  EXPECT_GT(byz.tampered_sends(), 0u);
  EXPECT_EQ(frontend.delivered_envelopes(), 20u);
  EXPECT_TRUE(checker.ok()) << checker.report();
  for (std::size_t i = 1; i < service.nodes.size(); ++i) {
    EXPECT_GE(service.nodes[i].replica->regency(), 1u) << "node " << i;
  }
}

}  // namespace
}  // namespace bft::ordering

// Multi-process-shaped deployment over real loopback sockets: each ordering
// node and the frontend runs in its own TcpCluster (own event loops + own
// TcpTransport), wired only by the shared topology. Covers the shared
// runtime_matrix scenario, a node kill mid-stream and a restart with
// reconnection. Labeled `net` in ctest.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <thread>

#include "runtime/tcp_runtime.hpp"
#include "tests/ordering/runtime_matrix.hpp"

namespace bft::ordering {
namespace {

using runtime::ProcessId;
using runtime::TcpCluster;
using runtime::TcpClusterOptions;
using runtime::Topology;
using testing::check_matrix_store;
using testing::kMatrixBlocks;
using testing::kMatrixEnvelopes;
using testing::matrix_envelope;
using testing::matrix_options;

std::uint16_t free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

TcpClusterOptions fast_cluster_options() {
  TcpClusterOptions options;
  options.transport.reconnect_backoff_min = runtime::msec(10);
  options.transport.reconnect_backoff_max = runtime::msec(200);
  return options;
}

/// Five distinct listen addresses: nodes 0..3 plus frontend 100.
Topology loopback_topology() {
  std::string text;
  for (ProcessId node = 0; node < 4; ++node) {
    text += "node " + std::to_string(node) + " 127.0.0.1:" +
            std::to_string(free_port()) + "\n";
  }
  text += "frontend 100 127.0.0.1:" + std::to_string(free_port()) + "\n";
  return Topology::parse(text);
}

/// One ordering node hosted in its own TcpCluster — the in-test stand-in for
/// one OS process of the examples/ deployment.
struct NodeHost {
  NodeHost(const ServiceOptions& options, const Topology& topo, ProcessId id)
      : single(make_node(options, id)),
        cluster(std::make_unique<TcpCluster>(topo, std::vector<ProcessId>{id},
                                             fast_cluster_options())) {
    cluster->add_process(id, single.node.replica.get());
    cluster->start();
  }

  SingleNode single;
  std::unique_ptr<TcpCluster> cluster;
};

struct FrontendHost {
  FrontendHost(const ServiceOptions& options, const Topology& topo)
      : config(smr::ClusterConfig::classic(options.nodes)),
        store(options.channel),
        frontend(config, make_frontend_options(options),
                 [this](const ledger::Block& block) {
                   ASSERT_TRUE(store.append(block).is_ok());
                   blocks.fetch_add(1);
                 }),
        cluster(topo, {100}, fast_cluster_options()) {
    cluster.add_process(100, &frontend);
    cluster.start();
  }

  void submit(int first, int count) {
    cluster.post(100, [this, first, count] {
      for (int i = first; i < first + count; ++i) {
        frontend.submit(matrix_envelope(i));
      }
    });
  }

  bool wait_for_blocks(std::size_t n, int timeout_ms = 20000) {
    for (int waited = 0; waited < timeout_ms && blocks.load() < n; waited += 5) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return blocks.load() >= n;
  }

  smr::ClusterConfig config;
  ledger::BlockStore store;
  std::atomic<std::size_t> blocks{0};
  Frontend frontend;
  TcpCluster cluster;
};

TEST(TcpClusterTest, TcpRuntimePassesSharedScenario) {
  const ServiceOptions options = matrix_options();
  const Topology topo = loopback_topology();
  std::vector<std::unique_ptr<NodeHost>> nodes;
  for (ProcessId id = 0; id < 4; ++id) {
    nodes.push_back(std::make_unique<NodeHost>(options, topo, id));
  }
  FrontendHost fe(options, topo);
  fe.submit(0, kMatrixEnvelopes);
  ASSERT_TRUE(fe.wait_for_blocks(kMatrixBlocks));
  fe.cluster.stop();
  for (auto& node : nodes) node->cluster->stop();
  // Every accepted block required 2f+1 byte-identical copies pushed over
  // independent sockets; the shared scenario check is runtime-agnostic.
  check_matrix_store(fe.store);
}

TEST(TcpClusterTest, SurvivesNodeKillAndRestart) {
  const ServiceOptions options = matrix_options();
  const Topology topo = loopback_topology();
  std::vector<std::unique_ptr<NodeHost>> nodes;
  for (ProcessId id = 0; id < 4; ++id) {
    nodes.push_back(std::make_unique<NodeHost>(options, topo, id));
  }
  FrontendHost fe(options, topo);
  fe.submit(0, kMatrixEnvelopes);
  ASSERT_TRUE(fe.wait_for_blocks(kMatrixBlocks));

  // Kill node 3 (non-leader): 3 = 2f+1 nodes remain, service must continue.
  nodes[3].reset();
  fe.submit(kMatrixEnvelopes, kMatrixEnvelopes);
  ASSERT_TRUE(fe.wait_for_blocks(2 * kMatrixBlocks));

  // Cold restart on the same port: peers' writers redial and traffic flows
  // again; the service keeps delivering throughout.
  nodes[3] = std::make_unique<NodeHost>(options, topo, 3);
  fe.submit(2 * kMatrixEnvelopes, kMatrixEnvelopes);
  ASSERT_TRUE(fe.wait_for_blocks(3 * kMatrixBlocks));

  std::uint64_t reconnects = 0;
  for (const auto& node : nodes) {
    reconnects += node->cluster->transport().reconnects();
  }
  reconnects += fe.cluster.transport().reconnects();
  EXPECT_GE(reconnects, 1u);

  fe.cluster.stop();
  for (auto& node : nodes) {
    if (node) node->cluster->stop();
  }
  EXPECT_EQ(fe.store.height(), 3 * kMatrixBlocks);
  EXPECT_TRUE(fe.store.verify().is_ok());
}

}  // namespace
}  // namespace bft::ordering

// Seeded chaos sweep: randomized fault scenarios against a full ordering
// service, with an InvariantChecker asserting the paper's guarantees (no
// fork, no invalid block accepted, liveness recovery) on every run.
//
// Each seed deterministically selects a scenario kind and its parameters:
//
//   seed % 6 == 0  crash + recover a random node (warm restart)
//   seed % 6 == 1  healing partition isolating a random node
//   seed % 6 == 2  lossy replica links (drop / delay / duplicate / corrupt)
//   seed % 6 == 3  equivocating epoch-0 leader (different PROPOSE per replica)
//   seed % 6 == 4  mute epoch-0 leader (swallows every PROPOSE)
//   seed % 6 == 5  Byzantine signer + frontends on the f+1-verified rule
//
// Failures print the seed; rerun exactly one scenario with
//   BFT_CHAOS_SEED=<seed> ./build/tests/chaos_test
//
// Every scenario also runs fully instrumented (obs registry + trace ring on
// probe node 0 and the submitter); set BFT_CHAOS_METRICS_DIR=<dir> to dump the
// per-seed JSON exports (chaos_<seed>.json, schema in OBSERVABILITY.md).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "ledger/chain.hpp"
#include "obs/export.hpp"
#include "ordering/deployment.hpp"
#include "ordering/invariants.hpp"
#include "runtime/sim_runtime.hpp"
#include "smr/byzantine.hpp"

namespace bft::ordering {
namespace {

using sim::kMillisecond;
using sim::kSecond;

enum class ScenarioKind : int {
  crash_recover = 0,
  healing_partition = 1,
  lossy_links = 2,
  equivocating_leader = 3,
  mute_leader = 4,
  corrupt_signer = 5,
};
constexpr int kScenarioKinds = 6;

const char* kind_name(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::crash_recover:       return "crash-recover";
    case ScenarioKind::healing_partition:   return "healing-partition";
    case ScenarioKind::lossy_links:         return "lossy-links";
    case ScenarioKind::equivocating_leader: return "equivocating-leader";
    case ScenarioKind::mute_leader:         return "mute-leader";
    case ScenarioKind::corrupt_signer:      return "corrupt-signer";
  }
  return "?";
}

constexpr std::uint64_t kEnvelopes = 60;
constexpr runtime::ProcessId kNodes = 4;

struct ScenarioResult {
  std::vector<std::string> violations;
  std::uint64_t delivered = 0;
  std::uint64_t blocks = 0;
  std::size_t height = 0;
  std::string tip;  // header digest of the submitter's chain tip
  consensus::Epoch max_honest_regency = 0;
  std::uint64_t tampered_sends = 0;
  std::uint64_t metric_delivered = 0;  // frontend.delivered_envelopes counter
  std::string metrics_json;            // full obs export for this scenario
};

ScenarioKind kind_of(std::uint64_t seed) {
  return static_cast<ScenarioKind>(seed % kScenarioKinds);
}

// Lossy links only between replicas: corrupting or duplicating the
// frontend->replica request path would mutate the workload itself, turning a
// transport fault into a spurious invariant violation.
void add_replica_link_faults(sim::FaultPlan& plan, Rng& rng) {
  const sim::SimTime from = 500 * kMillisecond;
  const sim::SimTime until = 5 * kSecond;
  const double drop_p = 0.03 + 0.05 * rng.uniform01();
  const double delay_p = 0.10 + 0.10 * rng.uniform01();
  const double dup_p = 0.05 + 0.05 * rng.uniform01();
  const double corrupt_p = 0.01 + 0.02 * rng.uniform01();
  for (sim::ProcessId a = 0; a < kNodes; ++a) {
    for (sim::ProcessId b = 0; b < kNodes; ++b) {
      if (a == b) continue;
      const auto link = [&](sim::LinkFaultKind kind, double p,
                            sim::SimTime dmin, sim::SimTime dmax) {
        sim::LinkFault f;
        f.kind = kind;
        f.from = from;
        f.until = until;
        f.src = a;
        f.dst = b;
        f.probability = p;
        f.delay_min = dmin;
        f.delay_max = dmax;
        plan.link(f);
      };
      link(sim::LinkFaultKind::drop, drop_p, 0, 0);
      link(sim::LinkFaultKind::delay, delay_p, kMillisecond, 20 * kMillisecond);
      link(sim::LinkFaultKind::duplicate, dup_p, kMillisecond,
           5 * kMillisecond);
      link(sim::LinkFaultKind::corrupt, corrupt_p, 0, 0);
    }
  }
}

ScenarioResult run_scenario(std::uint64_t seed) {
  const ScenarioKind kind = kind_of(seed);
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5eedULL);  // scenario parameters

  obs::MetricsRegistry registry;
  obs::TraceRing trace(1 << 14);

  ServiceOptions options;
  options.nodes = {0, 1, 2, 3};
  options.block_size = 5;
  options.batch_timeout = runtime::msec(300);
  options.stub_signatures = true;
  options.signature_cost = runtime::usec(50);
  options.replica_params.forward_timeout = runtime::msec(300);
  options.replica_params.stop_timeout = runtime::msec(500);
  options.replica_params.checkpoint_period = 8;
  options.replica_params.state_transfer_gap = 4;
  options.replica_params.stall_timeout = runtime::msec(500);
  if (kind == ScenarioKind::corrupt_signer) {
    options.corrupt_signers = {static_cast<runtime::ProcessId>(
        rng.uniform(kNodes))};
  }
  options.metrics = &registry;
  options.trace = &trace;
  Service service = make_service(options);

  runtime::SimCluster cluster(
      sim::make_lan(110, kMillisecond / 10, sim::NetworkConfig{}, seed), seed);
  cluster.set_metrics(&registry);

  std::unique_ptr<smr::ByzantineReplica> byz;
  if (kind == ScenarioKind::equivocating_leader ||
      kind == ScenarioKind::mute_leader) {
    byz = std::make_unique<smr::ByzantineReplica>(
        *service.nodes[0].replica,
        kind == ScenarioKind::equivocating_leader
            ? smr::ByzantineBehavior::equivocate_proposals
            : smr::ByzantineBehavior::mute_leader);
  }
  for (std::size_t i = 0; i < service.nodes.size(); ++i) {
    runtime::Actor* actor = service.nodes[i].replica.get();
    if (i == 0 && byz != nullptr) actor = byz.get();
    cluster.add_process(service.cluster.members()[i], actor, sim::CpuConfig{});
  }

  FrontendOptions fo = make_frontend_options(service, options);
  if (kind == ScenarioKind::corrupt_signer) fo.verify_signatures = true;

  InvariantChecker checker;
  ledger::BlockStore store("channel-0");
  ScenarioResult result;
  FrontendOptions submitter_fo = fo;
  submitter_fo.metrics = &registry;  // frontend.* counters + submit spans
  submitter_fo.trace = &trace;
  Frontend submitter(service.cluster, submitter_fo,
                     [&checker, &store, &result](const ledger::Block& block) {
                       checker.observe(0, block);
                       const Status st = store.append(block);
                       if (!st.is_ok()) {
                         result.violations.push_back("store.append: " +
                                                     st.error());
                       }
                     });
  FrontendOptions observer_fo = fo;
  observer_fo.track_latency = false;
  Frontend observer(service.cluster, observer_fo, checker.observer(1));
  cluster.add_process(100, &submitter);
  cluster.add_process(101, &observer);

  sim::FaultPlan plan;
  plan.seed = seed;
  switch (kind) {
    case ScenarioKind::crash_recover: {
      const auto victim = static_cast<sim::ProcessId>(rng.uniform(kNodes));
      const sim::SimTime down_for =
          (1000 + static_cast<sim::SimTime>(rng.uniform(2500))) * kMillisecond;
      plan.crash_between(1 * kSecond, 1 * kSecond + down_for, victim);
      break;
    }
    case ScenarioKind::healing_partition: {
      const auto victim = static_cast<sim::ProcessId>(rng.uniform(kNodes));
      const sim::SimTime heal =
          (3000 + static_cast<sim::SimTime>(rng.uniform(1500))) * kMillisecond;
      plan.partition_between(1 * kSecond, heal, {victim});
      break;
    }
    case ScenarioKind::lossy_links:
      add_replica_link_faults(plan, rng);
      break;
    case ScenarioKind::equivocating_leader:
    case ScenarioKind::mute_leader:
    case ScenarioKind::corrupt_signer:
      break;  // the Byzantine actor itself is the fault
  }
  if (!plan.empty()) cluster.install_fault_plan(plan);

  for (std::uint64_t i = 0; i < kEnvelopes; ++i) {
    cluster.schedule_at((10 + i * 100) * kMillisecond, [&submitter, seed, i] {
      submitter.submit(to_bytes("chaos-" + std::to_string(seed) + "-" +
                                std::to_string(i)));
    });
  }
  cluster.run_until(35 * kSecond);

  checker.check_all_delivered("submitter", submitter, kEnvelopes);
  checker.check_all_delivered("observer", observer, kEnvelopes);
  // All faults heal and the workload ends well before 8s; recovery to a fully
  // delivered chain must not take the rest of the run.
  checker.check_recovered_by("submitter", submitter, 8 * kSecond,
                             20 * kSecond);
  const Status audit = store.verify();
  if (!audit.is_ok()) {
    result.violations.push_back("chain audit: " + audit.error());
  }

  for (const std::string& v : checker.violations()) {
    result.violations.push_back(v);
  }
  result.delivered = submitter.delivered_envelopes();
  result.blocks = checker.blocks_observed();
  result.height = store.height();
  if (!store.empty()) {
    result.tip = crypto::hash_hex(store.tip().header.digest());
  }
  for (std::size_t i = 0; i < service.nodes.size(); ++i) {
    if (i == 0 && byz != nullptr) continue;  // only honest replicas count
    result.max_honest_regency = std::max(result.max_honest_regency,
                                         service.nodes[i].replica->regency());
  }
  if (byz != nullptr) result.tampered_sends = byz->tampered_sends();
  cluster.export_metrics(registry, 0);
  result.metric_delivered =
      registry.counter("frontend.delivered_envelopes").value();
  result.metrics_json = obs::to_json(
      registry, &trace,
      {{"bench", "chaos"},
       {"scenario", kind_name(kind)},
       {"seed", std::to_string(seed)}},
      {{"delivered", static_cast<double>(result.delivered)},
       {"height", static_cast<double>(result.height)}});
  if (std::getenv("BFT_CHAOS_SEED") != nullptr) {
    std::fprintf(stderr, "[chaos %llu] delivered=%llu height=%zu\n",
                 static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(result.delivered),
                 result.height);
    for (std::size_t i = 0; i < service.nodes.size(); ++i) {
      std::fprintf(stderr,
                   "[chaos %llu] node %zu: ordered=%llu blocks=%llu "
                   "regency=%llu\n",
                   static_cast<unsigned long long>(seed), i,
                   static_cast<unsigned long long>(
                       service.nodes[i].app->envelopes_ordered()),
                   static_cast<unsigned long long>(
                       service.nodes[i].app->blocks_created()),
                   static_cast<unsigned long long>(
                       service.nodes[i].replica->regency()));
      std::fprintf(stderr,
                   "[chaos %llu] node %zu: confirmed=%llu transferring=%d "
                   "pending=%zu last_seq[100]=%llu\n",
                   static_cast<unsigned long long>(seed), i,
                   static_cast<unsigned long long>(
                       service.nodes[i].replica->last_confirmed()),
                   service.nodes[i].replica->state_transfer_in_progress()
                       ? 1
                       : 0,
                   service.nodes[i].replica->pending_request_count(),
                   static_cast<unsigned long long>(
                       service.nodes[i].replica->last_executed_seq(100)));
    }
  }
  return result;
}

std::string join(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

TEST(ChaosSweepTest, RandomizedFaultScenariosPreserveInvariants) {
  std::vector<std::uint64_t> seeds;
  if (const char* env = std::getenv("BFT_CHAOS_SEED")) {
    seeds.push_back(std::strtoull(env, nullptr, 10));
  } else {
    for (std::uint64_t seed = 1; seed <= 24; ++seed) seeds.push_back(seed);
  }

  for (const std::uint64_t seed : seeds) {
    const ScenarioKind kind = kind_of(seed);
    SCOPED_TRACE("chaos seed " + std::to_string(seed) + " (" +
                 kind_name(kind) + "); rerun just this scenario with " +
                 "BFT_CHAOS_SEED=" + std::to_string(seed));
    const ScenarioResult result = run_scenario(seed);
    EXPECT_TRUE(result.violations.empty()) << join(result.violations);
    EXPECT_EQ(result.delivered, kEnvelopes);
    EXPECT_GT(result.height, 0u);
    // The instrumented submitter's counter must agree exactly with the
    // frontend's own bookkeeping, and the export must be well-formed.
    EXPECT_EQ(result.metric_delivered, result.delivered);
    EXPECT_NE(result.metrics_json.find("\"counters\""), std::string::npos);
    EXPECT_NE(result.metrics_json.find("\"trace\""), std::string::npos);
    if (const char* dir = std::getenv("BFT_CHAOS_METRICS_DIR")) {
      const std::string path =
          std::string(dir) + "/chaos_" + std::to_string(seed) + ".json";
      if (std::FILE* f = std::fopen(path.c_str(), "w")) {
        std::fputs(result.metrics_json.c_str(), f);
        std::fputs("\n", f);
        std::fclose(f);
      } else {
        ADD_FAILURE() << "cannot write " << path;
      }
    }
    if (kind == ScenarioKind::equivocating_leader ||
        kind == ScenarioKind::mute_leader) {
      // The Byzantine leader actually tampered, and the honest majority had
      // to move past it via the synchronization phase.
      EXPECT_GT(result.tampered_sends, 0u);
      EXPECT_GE(result.max_honest_regency, 1u);
    }
  }
}

TEST(ChaosSweepTest, ScenariosAreDeterministic) {
  // Same seed, same world: the printed-seed repro promise depends on it.
  for (const std::uint64_t seed : {3ULL, 8ULL}) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    const ScenarioResult a = run_scenario(seed);
    const ScenarioResult b = run_scenario(seed);
    EXPECT_EQ(a.tip, b.tip);
    EXPECT_EQ(a.height, b.height);
    EXPECT_EQ(a.blocks, b.blocks);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.max_honest_regency, b.max_honest_regency);
    EXPECT_EQ(join(a.violations), join(b.violations));
    // Instrumentation is part of the determinism contract: counters,
    // histograms and the trace breakdown must be byte-identical per seed.
    EXPECT_EQ(a.metrics_json, b.metrics_json);
  }
}

}  // namespace
}  // namespace bft::ordering

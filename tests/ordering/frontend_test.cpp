// Frontend unit tests: quorum-collection rules, ordering, dedup and latency
// accounting, driven by raw pushes without a live cluster.
#include <gtest/gtest.h>

#include "ordering/deployment.hpp"
#include "runtime/sim_runtime.hpp"
#include "smr/wire.hpp"

namespace bft::ordering {
namespace {

using sim::kMillisecond;

/// Drives a single Frontend with hand-crafted block pushes from fake nodes.
struct FrontendHarness {
  explicit FrontendHarness(FrontendOptions options,
                           std::uint32_t nodes = 4)
      : cluster(sim::make_lan(110, kMillisecond / 10, sim::NetworkConfig{}, 1), 1) {
    std::vector<runtime::ProcessId> members;
    for (std::uint32_t i = 0; i < nodes; ++i) members.push_back(i);
    config = std::make_unique<smr::ClusterConfig>(
        smr::ClusterConfig::classic(members));
    frontend = std::make_unique<Frontend>(
        *config, std::move(options),
        [this](const ledger::Block& block) { delivered.push_back(block); });
    // Fake nodes are raw senders occupying the member process ids.
    for (std::uint32_t i = 0; i < nodes; ++i) {
      senders.push_back(std::make_unique<RawNode>());
      cluster.add_process(i, senders.back().get());
    }
    cluster.add_process(100, frontend.get());
  }

  struct RawNode : runtime::Actor {
    void on_message(runtime::ProcessId, ByteView) override {}
    void on_timer(std::uint64_t) override {}
    void push(runtime::ProcessId to, const SignedBlock& sb) {
      env().send(to, smr::encode_push(sb.encode()));
    }
    void send_raw(runtime::ProcessId to, Bytes payload) {
      env().send(to, std::move(payload));
    }
  };

  /// Schedules a push of `block` from node `node` at time `at`.
  void push_at(sim::SimTime at, std::uint32_t node, const ledger::Block& block,
               const std::string& sig = "sig") {
    RawNode* sender = senders[node].get();
    const SignedBlock sb{"channel-0", block, to_bytes(sig)};
    cluster.schedule_at(at, [sender, sb] { sender->push(100, sb); });
  }

  runtime::SimCluster cluster;
  std::unique_ptr<smr::ClusterConfig> config;
  std::unique_ptr<Frontend> frontend;
  std::vector<std::unique_ptr<RawNode>> senders;
  std::vector<ledger::Block> delivered;
};

ledger::Block block_n(std::uint64_t n, const crypto::Hash256& prev,
                      const std::string& tag = "tx") {
  return ledger::make_block(n, prev, {to_bytes(tag + std::to_string(n))});
}

TEST(FrontendTest, DeliversAt2FPlus1MatchingCopies) {
  FrontendOptions fo;
  fo.track_latency = false;
  FrontendHarness h(fo);
  const auto b1 = block_n(1, ledger::genesis_hash("channel-0"));
  h.push_at(kMillisecond, 0, b1);
  h.push_at(2 * kMillisecond, 1, b1);
  h.cluster.run_until(10 * kMillisecond);
  EXPECT_TRUE(h.delivered.empty());  // 2 < 2f+1 = 3
  h.push_at(11 * kMillisecond, 2, b1);
  h.cluster.run_until(20 * kMillisecond);
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_EQ(h.delivered[0], b1);
}

TEST(FrontendTest, MismatchedCopiesDoNotCount) {
  FrontendOptions fo;
  fo.track_latency = false;
  FrontendHarness h(fo);
  const auto good = block_n(1, ledger::genesis_hash("channel-0"), "good");
  const auto evil = block_n(1, ledger::genesis_hash("channel-0"), "evil");
  h.push_at(kMillisecond, 0, good);
  h.push_at(kMillisecond, 1, evil);  // equivocating node
  h.push_at(kMillisecond, 2, evil);
  h.cluster.run_until(10 * kMillisecond);
  EXPECT_TRUE(h.delivered.empty());
  // A third matching copy of either variant settles it.
  h.push_at(11 * kMillisecond, 3, evil);
  h.cluster.run_until(20 * kMillisecond);
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_EQ(h.delivered[0], evil);
}

TEST(FrontendTest, DuplicatePushesFromSameNodeCountOnce) {
  FrontendOptions fo;
  fo.track_latency = false;
  FrontendHarness h(fo);
  const auto b1 = block_n(1, ledger::genesis_hash("channel-0"));
  h.push_at(kMillisecond, 0, b1);
  h.push_at(2 * kMillisecond, 0, b1);
  h.push_at(3 * kMillisecond, 0, b1);
  h.push_at(4 * kMillisecond, 1, b1);
  h.cluster.run_until(10 * kMillisecond);
  EXPECT_TRUE(h.delivered.empty());
}

TEST(FrontendTest, InOrderDeliveryHoldsBackLaterBlocks) {
  FrontendOptions fo;
  fo.track_latency = false;
  FrontendHarness h(fo);
  const auto b1 = block_n(1, ledger::genesis_hash("channel-0"));
  const auto b2 = block_n(2, b1.header.digest());
  // Block 2 reaches quorum first.
  for (std::uint32_t n = 0; n < 3; ++n) h.push_at(kMillisecond, n, b2);
  h.cluster.run_until(10 * kMillisecond);
  EXPECT_TRUE(h.delivered.empty());
  for (std::uint32_t n = 0; n < 3; ++n) h.push_at(11 * kMillisecond, n, b1);
  h.cluster.run_until(20 * kMillisecond);
  ASSERT_EQ(h.delivered.size(), 2u);
  EXPECT_EQ(h.delivered[0].header.number, 1u);
  EXPECT_EQ(h.delivered[1].header.number, 2u);
}

TEST(FrontendTest, VerifyingFrontendRejectsBadSignatures) {
  auto signer = std::make_shared<StubBlockSigner>(0);
  FrontendOptions fo;
  fo.track_latency = false;
  fo.verify_signatures = true;
  fo.verifier = signer;
  FrontendHarness h(fo);
  const auto b1 = block_n(1, ledger::genesis_hash("channel-0"));
  // Two garbage-signed copies never count; two honest ones (f+1=2) do.
  h.push_at(kMillisecond, 0, b1, "garbage");
  h.push_at(kMillisecond, 1, b1, "garbage");
  h.cluster.run_until(10 * kMillisecond);
  EXPECT_TRUE(h.delivered.empty());

  const SignedBlock signed2{"channel-0", b1, StubBlockSigner(2).sign(b1.header.digest())};
  const SignedBlock signed3{"channel-0", b1, StubBlockSigner(3).sign(b1.header.digest())};
  FrontendHarness::RawNode* s2 = h.senders[2].get();
  FrontendHarness::RawNode* s3 = h.senders[3].get();
  h.cluster.schedule_at(11 * kMillisecond, [s2, signed2] { s2->push(100, signed2); });
  h.cluster.schedule_at(12 * kMillisecond, [s3, signed3] { s3->push(100, signed3); });
  h.cluster.run_until(20 * kMillisecond);
  ASSERT_EQ(h.delivered.size(), 1u);
}

TEST(FrontendTest, RequiredCopiesOverride) {
  FrontendOptions fo;
  fo.track_latency = false;
  fo.required_copies = 1;  // crash-fault trust model
  FrontendHarness h(fo);
  const auto b1 = block_n(1, ledger::genesis_hash("channel-0"));
  h.push_at(kMillisecond, 2, b1);
  h.cluster.run_until(10 * kMillisecond);
  ASSERT_EQ(h.delivered.size(), 1u);
}

TEST(FrontendTest, PushesFromNonMembersIgnored) {
  FrontendOptions fo;
  fo.track_latency = false;
  fo.required_copies = 1;
  FrontendHarness h(fo);
  // Sender 50 is not a cluster member.
  FrontendHarness::RawNode outsider;
  h.cluster.add_process(50, &outsider);
  const SignedBlock sb{"channel-0", block_n(1, ledger::genesis_hash("channel-0")), to_bytes("s")};
  h.cluster.schedule_at(kMillisecond, [&outsider, sb] { outsider.push(100, sb); });
  h.cluster.run_until(10 * kMillisecond);
  EXPECT_TRUE(h.delivered.empty());
}

TEST(FrontendTest, MalformedPushIgnored) {
  FrontendOptions fo;
  fo.track_latency = false;
  fo.required_copies = 1;
  FrontendHarness h(fo);
  FrontendHarness::RawNode* s0 = h.senders[0].get();
  h.cluster.schedule_at(kMillisecond, [s0] {
    // A push frame whose payload is not a SignedBlock.
    s0->send_raw(100, smr::encode_push(to_bytes("not-a-signed-block")));
  });
  h.cluster.run_until(10 * kMillisecond);
  EXPECT_TRUE(h.delivered.empty());
  EXPECT_EQ(h.frontend->delivered_blocks(), 0u);
}

}  // namespace
}  // namespace bft::ordering

// One protocol scenario, every runtime. The same ordering-service code (no
// changes in src/smr, src/consensus or src/ordering) must pass this check on
// the simulated, threaded and TCP runtimes: 4 nodes (f = 1), one frontend
// accepting blocks on 2f+1 matching copies, 10 envelopes at block size 5
// -> exactly 2 hash-chained blocks with payloads in submission order.
#pragma once

#include <gtest/gtest.h>

#include "ledger/chain.hpp"
#include "ordering/deployment.hpp"

namespace bft::ordering::testing {

constexpr int kMatrixEnvelopes = 10;
constexpr std::size_t kMatrixBlockSize = 5;
constexpr std::size_t kMatrixBlocks = 2;

inline ServiceOptions matrix_options() {
  ServiceOptions options;
  options.nodes = {0, 1, 2, 3};
  options.block_size = kMatrixBlockSize;
  options.replica_params.forward_timeout = runtime::msec(300);
  options.replica_params.stop_timeout = runtime::msec(500);
  return options;
}

inline Bytes matrix_envelope(int i) {
  return to_bytes("matrix-env-" + std::to_string(i));
}

/// The runtime-independent acceptance check: right number of blocks, chain
/// verifies, payloads intact and in submission order.
inline void check_matrix_store(const ledger::BlockStore& store) {
  ASSERT_EQ(store.height(), kMatrixBlocks);
  ASSERT_TRUE(store.verify().is_ok());
  int next = 0;
  for (std::size_t b = 1; b <= store.height(); ++b) {
    for (const Bytes& envelope : store.at(b).envelopes) {
      EXPECT_EQ(envelope, matrix_envelope(next++));
    }
  }
  EXPECT_EQ(next, kMatrixEnvelopes);
}

}  // namespace bft::ordering::testing

// Multi-channel ordering (§3 footnote 6 / step 4) and time-to-cut batch
// timeouts: one ordering service, several independent hash chains.
#include <gtest/gtest.h>

#include "ledger/chain.hpp"
#include "ordering/deployment.hpp"
#include "runtime/sim_runtime.hpp"

namespace bft::ordering {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(ChannelEnvelopeTest, RoundTrip) {
  const ChannelEnvelope ce{"orders", to_bytes("payload")};
  const ChannelEnvelope back = ChannelEnvelope::decode(ce.encode());
  EXPECT_EQ(back.channel, "orders");
  EXPECT_EQ(back.envelope, to_bytes("payload"));
}

TEST(OrderedPayloadTest, RoundTripBothKinds) {
  OrderedPayload env;
  env.channel = "ch";
  env.envelope = to_bytes("tx");
  const OrderedPayload env2 = OrderedPayload::decode(env.encode());
  EXPECT_EQ(env2.kind, OrderedPayload::Kind::envelope);
  EXPECT_EQ(env2.envelope, to_bytes("tx"));

  OrderedPayload cut;
  cut.kind = OrderedPayload::Kind::time_to_cut;
  cut.channel = "ch";
  cut.cut_block_number = 7;
  const OrderedPayload cut2 = OrderedPayload::decode(cut.encode());
  EXPECT_EQ(cut2.kind, OrderedPayload::Kind::time_to_cut);
  EXPECT_EQ(cut2.cut_block_number, 7u);

  EXPECT_THROW(OrderedPayload::decode(to_bytes("zz")), DecodeError);
  OrderedPayload empty_channel = env;
  empty_channel.channel.clear();
  EXPECT_THROW(OrderedPayload::decode(empty_channel.encode()), DecodeError);
}

struct MultiChannelHarness {
  MultiChannelHarness(std::size_t block_size, runtime::Duration batch_timeout,
                      std::uint64_t seed = 13)
      : cluster(sim::make_lan(110, kMillisecond / 10, sim::NetworkConfig{}, seed),
                seed) {
    ServiceOptions options;
    options.nodes = {0, 1, 2, 3};
    options.block_size = block_size;
    options.batch_timeout = batch_timeout;
    options.replica_params.forward_timeout = runtime::msec(400);
    options.replica_params.stop_timeout = runtime::msec(800);
    service_holder = std::make_unique<Service>(make_service(options));
    for (std::size_t i = 0; i < service_holder->nodes.size(); ++i) {
      cluster.add_process(service_holder->cluster.members()[i],
                          service_holder->nodes[i].replica.get(),
                          sim::CpuConfig{});
    }
    for (const char* name : {"orders", "payments"}) {
      stores.push_back(std::make_unique<ledger::BlockStore>(name));
      ledger::BlockStore* store = stores.back().get();
      FrontendOptions fo = make_frontend_options(*service_holder, options);
      fo.channel = name;
      frontends.push_back(std::make_unique<Frontend>(
          service_holder->cluster, fo, [store](const ledger::Block& block) {
            ASSERT_TRUE(store->append(block).is_ok());
          }));
      cluster.add_process(
          100 + static_cast<runtime::ProcessId>(frontends.size() - 1),
          frontends.back().get());
    }
  }

  void submit_at(sim::SimTime at, std::size_t channel_idx, Bytes envelope) {
    Frontend* fe = frontends.at(channel_idx).get();
    cluster.schedule_at(at, [fe, envelope = std::move(envelope)]() mutable {
      fe->submit(std::move(envelope));
    });
  }

  runtime::SimCluster cluster;
  std::unique_ptr<Service> service_holder;
  std::vector<std::unique_ptr<Frontend>> frontends;
  std::vector<std::unique_ptr<ledger::BlockStore>> stores;
};

TEST(MultiChannelTest, ChannelsGetIndependentChains) {
  MultiChannelHarness h(3, 0);
  // Interleave submissions to both channels.
  for (int i = 0; i < 9; ++i) {
    h.submit_at((10 + i * 10) * kMillisecond, 0, to_bytes("o" + std::to_string(i)));
    h.submit_at((15 + i * 10) * kMillisecond, 1, to_bytes("p" + std::to_string(i)));
  }
  h.cluster.run_until(2 * kSecond);

  ASSERT_EQ(h.stores[0]->height(), 3u);
  ASSERT_EQ(h.stores[1]->height(), 3u);
  EXPECT_TRUE(h.stores[0]->verify().is_ok());
  EXPECT_TRUE(h.stores[1]->verify().is_ok());
  // Chains are channel-pure.
  for (const auto& e : h.stores[0]->at(1).envelopes) {
    EXPECT_EQ(e[0], 'o');
  }
  for (const auto& e : h.stores[1]->at(1).envelopes) {
    EXPECT_EQ(e[0], 'p');
  }
  // Both channels live on the same ordering nodes.
  const auto channels = h.service_holder->nodes[0].app->channels();
  EXPECT_EQ(channels.size(), 2u);
}

TEST(MultiChannelTest, FrontendsIgnoreOtherChannelsBlocks) {
  MultiChannelHarness h(2, 0);
  for (int i = 0; i < 4; ++i) {
    h.submit_at((10 + i * 10) * kMillisecond, 0, to_bytes("o" + std::to_string(i)));
  }
  h.cluster.run_until(kSecond);
  EXPECT_EQ(h.stores[0]->height(), 2u);
  EXPECT_EQ(h.stores[1]->height(), 0u);  // nothing on "payments"
  EXPECT_EQ(h.frontends[1]->delivered_blocks(), 0u);
}

TEST(MultiChannelTest, BatchTimeoutCutsPartialBlocks) {
  // Block size 100 never fills; the time-to-cut marker flushes stragglers.
  MultiChannelHarness h(100, runtime::msec(200));
  for (int i = 0; i < 7; ++i) {
    h.submit_at((10 + i) * kMillisecond, 0, to_bytes("o" + std::to_string(i)));
  }
  h.cluster.run_until(3 * kSecond);
  ASSERT_EQ(h.stores[0]->height(), 1u);
  EXPECT_EQ(h.stores[0]->at(1).envelopes.size(), 7u);
  EXPECT_EQ(h.service_holder->nodes[0].app->pending_in("orders"), 0u);
  // All nodes cut at the same position (same block everywhere).
  EXPECT_EQ(h.service_holder->nodes[0].app->blocks_created(),
            h.service_holder->nodes[3].app->blocks_created());
}

TEST(MultiChannelTest, BatchTimeoutRepeatsForTrickle) {
  MultiChannelHarness h(100, runtime::msec(150));
  // Two bursts far apart: each gets flushed by its own marker.
  for (int i = 0; i < 3; ++i) {
    h.submit_at((10 + i) * kMillisecond, 0, to_bytes("a" + std::to_string(i)));
  }
  for (int i = 0; i < 4; ++i) {
    h.submit_at(kSecond + i * kMillisecond, 0, to_bytes("b" + std::to_string(i)));
  }
  h.cluster.run_until(4 * kSecond);
  ASSERT_EQ(h.stores[0]->height(), 2u);
  EXPECT_EQ(h.stores[0]->at(1).envelopes.size(), 3u);
  EXPECT_EQ(h.stores[0]->at(2).envelopes.size(), 4u);
  EXPECT_TRUE(h.stores[0]->verify().is_ok());
}

TEST(MultiChannelTest, BatchTimeoutDoesNotFireWithoutPending) {
  MultiChannelHarness h(3, runtime::msec(100));
  for (int i = 0; i < 6; ++i) {
    h.submit_at((10 + i) * kMillisecond, 0, to_bytes("o" + std::to_string(i)));
  }
  h.cluster.run_until(2 * kSecond);
  // Exactly two full blocks; no extra partial cuts appeared afterwards.
  EXPECT_EQ(h.stores[0]->height(), 2u);
  EXPECT_EQ(h.stores[0]->at(1).envelopes.size(), 3u);
  EXPECT_EQ(h.stores[0]->at(2).envelopes.size(), 3u);
}

}  // namespace
}  // namespace bft::ordering

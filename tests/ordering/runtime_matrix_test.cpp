// Runs the shared runtime_matrix.hpp scenario on the simulated and the
// threaded runtime; the TCP variant lives in tcp_cluster_test.cpp (label
// `net`). Protocol sources are byte-identical across all three.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "runtime/real_runtime.hpp"
#include "runtime/sim_runtime.hpp"
#include "tests/ordering/runtime_matrix.hpp"

namespace bft::ordering {
namespace {

using testing::check_matrix_store;
using testing::kMatrixBlocks;
using testing::kMatrixEnvelopes;
using testing::matrix_envelope;
using testing::matrix_options;

TEST(RuntimeMatrixTest, SimRuntimePassesSharedScenario) {
  const ServiceOptions options = matrix_options();
  Service service = make_service(options);
  runtime::SimCluster cluster(
      sim::make_lan(104, sim::kMillisecond / 10, sim::NetworkConfig{}, 7), 7);
  for (std::size_t i = 0; i < service.nodes.size(); ++i) {
    cluster.add_process(service.cluster.members()[i],
                        service.nodes[i].replica.get(), sim::CpuConfig{});
  }
  ledger::BlockStore store(options.channel);
  Frontend frontend(service.cluster, make_frontend_options(service, options),
                    [&](const ledger::Block& block) {
                      ASSERT_TRUE(store.append(block).is_ok());
                    });
  cluster.add_process(100, &frontend);
  for (int i = 0; i < kMatrixEnvelopes; ++i) {
    cluster.schedule_at(sim::kMillisecond * (i + 1),
                        [&frontend, i] { frontend.submit(matrix_envelope(i)); });
  }
  cluster.run_until(3 * sim::kSecond);
  check_matrix_store(store);
}

TEST(RuntimeMatrixTest, RealRuntimePassesSharedScenario) {
  const ServiceOptions options = matrix_options();
  Service service = make_service(options);
  runtime::RealCluster cluster;
  for (std::size_t i = 0; i < service.nodes.size(); ++i) {
    cluster.add_process(service.cluster.members()[i],
                        service.nodes[i].replica.get());
  }
  ledger::BlockStore store(options.channel);
  std::atomic<std::size_t> blocks{0};
  Frontend frontend(service.cluster, make_frontend_options(service, options),
                    [&](const ledger::Block& block) {
                      ASSERT_TRUE(store.append(block).is_ok());
                      blocks.fetch_add(1);
                    });
  cluster.add_process(100, &frontend);
  cluster.start();
  cluster.post(100, [&frontend] {
    for (int i = 0; i < kMatrixEnvelopes; ++i) {
      frontend.submit(matrix_envelope(i));
    }
  });
  for (int spins = 0; spins < 1000 && blocks.load() < kMatrixBlocks; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  cluster.stop();
  check_matrix_store(store);
}

}  // namespace
}  // namespace bft::ordering

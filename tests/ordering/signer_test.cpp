#include "ordering/signer.hpp"

#include <gtest/gtest.h>

namespace bft::ordering {
namespace {

const crypto::Hash256 kDigest = crypto::sha256(to_bytes("block-header"));

TEST(SignerTest, EcdsaSignVerifyRoundTrip) {
  EcdsaBlockSigner signer(3);
  const Bytes sig = signer.sign(kDigest);
  EXPECT_TRUE(signer.verify(3, kDigest, sig));
}

TEST(SignerTest, EcdsaRejectsWrongNode) {
  EcdsaBlockSigner signer(3);
  const Bytes sig = signer.sign(kDigest);
  EXPECT_FALSE(signer.verify(4, kDigest, sig));
}

TEST(SignerTest, EcdsaRejectsWrongDigest) {
  EcdsaBlockSigner signer(3);
  const Bytes sig = signer.sign(kDigest);
  EXPECT_FALSE(signer.verify(3, crypto::sha256(to_bytes("other")), sig));
}

TEST(SignerTest, EcdsaRejectsGarbageSignature) {
  EcdsaBlockSigner signer(3);
  EXPECT_FALSE(signer.verify(3, kDigest, Bytes(64, 0)));
  EXPECT_FALSE(signer.verify(3, kDigest, Bytes{1, 2, 3}));
}

TEST(SignerTest, StubSignVerifyRoundTrip) {
  StubBlockSigner signer(3);
  const Bytes sig = signer.sign(kDigest);
  EXPECT_TRUE(signer.verify(3, kDigest, sig));
  EXPECT_FALSE(signer.verify(4, kDigest, sig));
  EXPECT_FALSE(signer.verify(3, crypto::sha256(to_bytes("other")), sig));
}

TEST(SignerTest, StubVerifierChecksAnyNode) {
  // One verifier instance can check every node's signatures (frontends hold
  // a single verifier).
  StubBlockSigner node5(5);
  StubBlockSigner verifier(0);
  EXPECT_TRUE(verifier.verify(5, kDigest, node5.sign(kDigest)));
}

TEST(SignerTest, EcdsaVerifierChecksAnyNode) {
  EcdsaBlockSigner node5(5);
  EcdsaBlockSigner verifier(0);
  EXPECT_TRUE(verifier.verify(5, kDigest, node5.sign(kDigest)));
}

TEST(SignerTest, CostHintConfigurable) {
  StubBlockSigner cheap(1, runtime::usec(10));
  EXPECT_EQ(cheap.cost_hint(), runtime::usec(10));
  EcdsaBlockSigner calibrated(1);
  EXPECT_EQ(calibrated.cost_hint(), runtime::usec(1905));
}

TEST(SignerTest, SignaturesAreDeterministic) {
  EcdsaBlockSigner a(7);
  EcdsaBlockSigner b(7);
  EXPECT_EQ(a.sign(kDigest), b.sign(kDigest));
}

}  // namespace
}  // namespace bft::ordering

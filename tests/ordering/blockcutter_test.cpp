#include "ordering/blockcutter.hpp"

#include <gtest/gtest.h>

namespace bft::ordering {
namespace {

TEST(BlockCutterTest, CutsAtBlockSize) {
  BlockCutter cutter(3);
  EXPECT_FALSE(cutter.add(to_bytes("a")).has_value());
  EXPECT_FALSE(cutter.add(to_bytes("b")).has_value());
  const auto batch = cutter.add(to_bytes("c"));
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->size(), 3u);
  EXPECT_EQ((*batch)[0], to_bytes("a"));
  EXPECT_EQ((*batch)[2], to_bytes("c"));
  EXPECT_EQ(cutter.pending_count(), 0u);
}

TEST(BlockCutterTest, SizeOneCutsEveryEnvelope) {
  BlockCutter cutter(1);
  for (int i = 0; i < 5; ++i) {
    const auto batch = cutter.add(to_bytes(std::to_string(i)));
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->size(), 1u);
  }
}

TEST(BlockCutterTest, ManualCutDrainsPartial) {
  BlockCutter cutter(10);
  cutter.add(to_bytes("a"));
  cutter.add(to_bytes("b"));
  const auto batch = cutter.cut();
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(cutter.pending_count(), 0u);
  EXPECT_TRUE(cutter.cut().empty());
}

TEST(BlockCutterTest, ZeroBlockSizeRejected) {
  EXPECT_THROW(BlockCutter cutter(0), std::invalid_argument);
}

TEST(BlockCutterTest, SnapshotRestoreRoundTrip) {
  BlockCutter cutter(5);
  cutter.add(to_bytes("a"));
  cutter.add(to_bytes("b"));
  const Bytes snap = cutter.snapshot();

  BlockCutter other(5);
  other.restore(snap);
  EXPECT_EQ(other.pending_count(), 2u);
  // Both cutters continue identically — the determinism requirement.
  auto b1 = cutter.add(to_bytes("c"));
  auto b2 = other.add(to_bytes("c"));
  EXPECT_EQ(b1.has_value(), b2.has_value());
  cutter.add(to_bytes("d"));
  other.add(to_bytes("d"));
  const auto f1 = cutter.add(to_bytes("e"));
  const auto f2 = other.add(to_bytes("e"));
  ASSERT_TRUE(f1.has_value());
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(*f1, *f2);
}

TEST(BlockCutterTest, RestoreReplacesPending) {
  BlockCutter cutter(5);
  cutter.add(to_bytes("old"));
  BlockCutter fresh(5);
  cutter.restore(fresh.snapshot());
  EXPECT_EQ(cutter.pending_count(), 0u);
}

}  // namespace
}  // namespace bft::ordering

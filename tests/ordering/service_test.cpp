// End-to-end ordering-service tests: envelopes in, signed hash-chained
// blocks out, on both the simulated and the real runtime.
#include <gtest/gtest.h>

#include "ledger/chain.hpp"
#include "ordering/deployment.hpp"
#include "runtime/real_runtime.hpp"
#include "runtime/sim_runtime.hpp"

namespace bft::ordering {
namespace {

using sim::kMillisecond;
using sim::kSecond;

struct SimService {
  explicit SimService(ServiceOptions options, std::size_t n_frontends = 1,
                      std::uint64_t seed = 7,
                      std::optional<FrontendOptions> frontend_options = {})
      : service(make_service(options)),
        cluster(sim::make_lan(
                    static_cast<std::uint32_t>(options.nodes.size()) + 100 +
                        static_cast<std::uint32_t>(n_frontends),
                    kMillisecond / 10, sim::NetworkConfig{}, seed),
                seed) {
    for (std::size_t i = 0; i < service.nodes.size(); ++i) {
      cluster.add_process(service.cluster.members()[i],
                          service.nodes[i].replica.get(), sim::CpuConfig{});
    }
    FrontendOptions fo = frontend_options.has_value()
                             ? *frontend_options
                             : make_frontend_options(service, options);
    for (std::size_t f = 0; f < n_frontends; ++f) {
      ledgers.push_back(std::make_unique<ledger::BlockStore>(options.channel));
      ledger::BlockStore* store = ledgers.back().get();
      frontends.push_back(std::make_unique<Frontend>(
          service.cluster, fo, [store](const ledger::Block& block) {
            ASSERT_TRUE(store->append(block).is_ok());
          }));
      cluster.add_process(100 + static_cast<runtime::ProcessId>(f),
                          frontends.back().get());
    }
  }

  void submit_at(sim::SimTime at, std::size_t frontend, Bytes envelope) {
    Frontend* fe = frontends.at(frontend).get();
    cluster.schedule_at(at, [fe, envelope = std::move(envelope)]() mutable {
      fe->submit(std::move(envelope));
    });
  }

  Service service;
  runtime::SimCluster cluster;
  std::vector<std::unique_ptr<Frontend>> frontends;
  std::vector<std::unique_ptr<ledger::BlockStore>> ledgers;
};

ServiceOptions basic_options(std::uint32_t n, std::size_t block_size) {
  ServiceOptions o;
  for (std::uint32_t i = 0; i < n; ++i) o.nodes.push_back(i);
  o.block_size = block_size;
  o.replica_params.forward_timeout = runtime::msec(300);
  o.replica_params.stop_timeout = runtime::msec(500);
  return o;
}

Bytes envelope(int i, std::size_t size = 16) {
  Bytes e = to_bytes("envelope-" + std::to_string(i) + ":");
  e.resize(std::max(e.size(), size), 0x5a);
  return e;
}

TEST(OrderingServiceTest, BlocksDeliveredAndChained) {
  SimService s(basic_options(4, 10), 2);
  for (int i = 0; i < 35; ++i) {
    s.submit_at(kMillisecond + i * kMillisecond, 0, envelope(i));
  }
  s.cluster.run_until(3 * kSecond);

  // 35 envelopes at block size 10 -> 3 full blocks; 5 remain pending.
  for (auto& ledger : s.ledgers) {
    EXPECT_EQ(ledger->height(), 3u);
    EXPECT_TRUE(ledger->verify().is_ok());
  }
  EXPECT_EQ(s.frontends[0]->delivered_envelopes(), 30u);
  EXPECT_EQ(s.service.nodes[0].app->envelopes_ordered(), 35u);
  EXPECT_EQ(s.service.nodes[0].app->pending_in("channel-0"), 5u);
  // Both frontends saw identical chains.
  EXPECT_EQ(s.ledgers[0]->tip().header.digest(),
            s.ledgers[1]->tip().header.digest());
}

TEST(OrderingServiceTest, EnvelopePayloadsPreservedInOrder) {
  SimService s(basic_options(4, 5), 1);
  for (int i = 0; i < 5; ++i) {
    s.submit_at(kMillisecond * (i + 1), 0, envelope(i));
  }
  s.cluster.run_until(2 * kSecond);
  ASSERT_EQ(s.ledgers[0]->height(), 1u);
  const auto& envelopes = s.ledgers[0]->at(1).envelopes;
  ASSERT_EQ(envelopes.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(envelopes[static_cast<std::size_t>(i)], envelope(i));
  }
}

TEST(OrderingServiceTest, LatencyTrackingRecordsOwnEnvelopes) {
  SimService s(basic_options(4, 10), 2);
  for (int i = 0; i < 10; ++i) s.submit_at(kMillisecond, 0, envelope(i));
  s.cluster.run_until(2 * kSecond);
  EXPECT_EQ(s.frontends[0]->latencies().count(), 10u);
  EXPECT_EQ(s.frontends[1]->latencies().count(), 0u);  // not its envelopes
  EXPECT_GT(s.frontends[0]->latencies().median(), 0.0);
  EXPECT_LT(s.frontends[0]->latencies().max(), 1000.0);
}

TEST(OrderingServiceTest, NodeCrashToleratedByQuorumCollection) {
  SimService s(basic_options(4, 10), 1);
  // Crash a non-leader node: frontends still gather 2f+1 = 3 matching blocks.
  s.cluster.schedule_at(kMillisecond / 2,
                        [&s] { s.cluster.crash(3); });
  for (int i = 0; i < 20; ++i) s.submit_at(kMillisecond + i * kMillisecond, 0, envelope(i));
  s.cluster.run_until(3 * kSecond);
  EXPECT_EQ(s.ledgers[0]->height(), 2u);
  EXPECT_TRUE(s.ledgers[0]->verify().is_ok());
}

TEST(OrderingServiceTest, LeaderCrashRecoveredByRegencyChange) {
  SimService s(basic_options(4, 10), 1);
  s.cluster.schedule_at(kMillisecond / 2, [&s] { s.cluster.crash(0); });
  for (int i = 0; i < 10; ++i) {
    s.submit_at(kSecond + i * kMillisecond, 0, envelope(i));
  }
  s.cluster.run_until(15 * kSecond);
  EXPECT_EQ(s.ledgers[0]->height(), 1u);
  EXPECT_TRUE(s.ledgers[0]->verify().is_ok());
}

TEST(OrderingServiceTest, SignatureVerifyingFrontendNeedsOnlyFPlus1) {
  ServiceOptions options = basic_options(4, 10);
  Service probe = make_service(options);  // to borrow a verifier
  FrontendOptions fo;
  fo.verify_signatures = true;
  fo.verifier = probe.nodes.front().signer;
  SimService s(options, 1, 7, fo);
  // Only f+1 = 2 nodes reachable by the frontend: drop pushes from nodes 2,3.
  s.cluster.set_filter([](runtime::ProcessId from, runtime::ProcessId to,
                          ByteView) {
    if ((from == 2 || from == 3) && to >= 100) return runtime::FilterAction::drop;
    return runtime::FilterAction::deliver;
  });
  for (int i = 0; i < 10; ++i) s.submit_at(kMillisecond, 0, envelope(i));
  s.cluster.run_until(3 * kSecond);
  EXPECT_EQ(s.ledgers[0]->height(), 1u);
}

TEST(OrderingServiceTest, NonVerifyingFrontendNeeds2FPlus1) {
  SimService s(basic_options(4, 10), 1);
  // Only 2 nodes reach the frontend: 2 < 2f+1 = 3, nothing may deliver.
  s.cluster.set_filter([](runtime::ProcessId from, runtime::ProcessId to,
                          ByteView) {
    if ((from == 2 || from == 3) && to >= 100) return runtime::FilterAction::drop;
    return runtime::FilterAction::deliver;
  });
  for (int i = 0; i < 10; ++i) s.submit_at(kMillisecond, 0, envelope(i));
  s.cluster.run_until(3 * kSecond);
  EXPECT_EQ(s.ledgers[0]->height(), 0u);
}

TEST(OrderingServiceTest, WheatClusterDeliversWithWeightedQuorum) {
  ServiceOptions options = basic_options(5, 10);
  options.nodes = {0, 1, 2, 3, 4};
  options.vmax_nodes = {0, 1};
  options.replica_params.tentative_execution = true;
  SimService s(options, 2);
  for (int i = 0; i < 30; ++i) {
    s.submit_at(kMillisecond + i * kMillisecond, i % 2, envelope(i));
  }
  s.cluster.run_until(3 * kSecond);
  for (auto& ledger : s.ledgers) {
    EXPECT_EQ(ledger->height(), 3u);
    EXPECT_TRUE(ledger->verify().is_ok());
  }
}

TEST(OrderingServiceTest, StubAndEcdsaSignersProduceIdenticalChains) {
  auto run = [](bool stub) {
    ServiceOptions options = basic_options(4, 10);
    options.stub_signatures = stub;
    SimService s(options, 1);
    for (int i = 0; i < 20; ++i) s.submit_at(kMillisecond + i * kMillisecond, 0, envelope(i));
    s.cluster.run_until(3 * kSecond);
    return s.ledgers[0]->tip().header.digest();
  };
  // Signature backend must not influence block content (only who signs).
  EXPECT_EQ(run(false), run(true));
}

TEST(OrderingServiceTest, TenNodeClusterWithManyReceivers) {
  SimService s(basic_options(10, 10), 8);
  for (int i = 0; i < 20; ++i) s.submit_at(kMillisecond + i * kMillisecond, 0, envelope(i));
  s.cluster.run_until(3 * kSecond);
  for (auto& ledger : s.ledgers) {
    EXPECT_EQ(ledger->height(), 2u);
    EXPECT_TRUE(ledger->verify().is_ok());
  }
}

TEST(OrderingServiceTest, DoubleSignModeStillDelivers) {
  ServiceOptions options = basic_options(4, 10);
  options.double_sign = true;
  SimService s(options, 1);
  for (int i = 0; i < 10; ++i) s.submit_at(kMillisecond, 0, envelope(i));
  s.cluster.run_until(3 * kSecond);
  EXPECT_EQ(s.ledgers[0]->height(), 1u);
}

TEST(OrderingServiceTest, RealRuntimeEndToEnd) {
  ServiceOptions options = basic_options(4, 5);
  Service service = make_service(options);

  runtime::RealCluster cluster;
  for (std::size_t i = 0; i < service.nodes.size(); ++i) {
    cluster.add_process(service.cluster.members()[i],
                        service.nodes[i].replica.get(), /*workers=*/2);
  }
  ledger::BlockStore store("channel-0");
  std::atomic<int> delivered{0};
  Frontend frontend(service.cluster, make_frontend_options(service, options),
                    [&](const ledger::Block& block) {
                      ASSERT_TRUE(store.append(block).is_ok());
                      delivered.fetch_add(1);
                    });
  cluster.add_process(100, &frontend);
  cluster.start();
  cluster.post(100, [&frontend] {
    for (int i = 0; i < 10; ++i) {
      frontend.submit(to_bytes("real-tx-" + std::to_string(i)));
    }
  });
  for (int spins = 0; spins < 400 && delivered.load() < 2; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  cluster.stop();
  EXPECT_EQ(delivered.load(), 2);
  EXPECT_TRUE(store.verify().is_ok());
  EXPECT_EQ(store.at(1).envelopes.size(), 5u);
}

}  // namespace
}  // namespace bft::ordering

#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace bft {
namespace {

CliFlags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliFlags(static_cast<int>(argv.size()), argv.data());
}

TEST(CliTest, SpaceSeparatedValue) {
  const auto flags = parse({"--orderers", "7"});
  EXPECT_EQ(flags.get_int("orderers", 0), 7);
}

TEST(CliTest, EqualsSeparatedValue) {
  const auto flags = parse({"--block=100"});
  EXPECT_EQ(flags.get_int("block", 0), 100);
}

TEST(CliTest, BareBooleanFlag) {
  const auto flags = parse({"--verbose"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
}

TEST(CliTest, FallbacksWhenAbsent) {
  const auto flags = parse({});
  EXPECT_EQ(flags.get("name", "x"), "x");
  EXPECT_EQ(flags.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(flags.get_double("d", 1.5), 1.5);
  EXPECT_FALSE(flags.get_bool("b", false));
}

TEST(CliTest, BooleanParsing) {
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x=0"}).get_bool("x", true));
  EXPECT_THROW(parse({"--x=maybe"}).get_bool("x", false), std::invalid_argument);
}

TEST(CliTest, RejectsPositionalArguments) {
  EXPECT_THROW(parse({"positional"}), std::invalid_argument);
}

TEST(CliTest, UnusedFlagsReported) {
  const auto flags = parse({"--typo=1", "--used=2"});
  EXPECT_EQ(flags.get_int("used", 0), 2);
  EXPECT_EQ(flags.unused(), "--typo");
}

TEST(CliTest, HasMarksUsed) {
  const auto flags = parse({"--present"});
  EXPECT_TRUE(flags.has("present"));
  EXPECT_FALSE(flags.has("absent"));
  EXPECT_TRUE(flags.unused().empty());
}

}  // namespace
}  // namespace bft

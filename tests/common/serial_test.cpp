#include "common/serial.hpp"

#include <gtest/gtest.h>

namespace bft {
namespace {

TEST(SerialTest, IntegerRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.boolean(true);
  w.boolean(false);

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(SerialTest, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  EXPECT_EQ(w.data(), (Bytes{0x04, 0x03, 0x02, 0x01}));
}

TEST(SerialTest, BytesAndStringsRoundTrip) {
  Writer w;
  w.bytes(Bytes{1, 2, 3});
  w.str("channel-0");
  w.bytes({});

  Reader r(w.data());
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "channel-0");
  EXPECT_TRUE(r.bytes().empty());
  r.expect_done();
}

TEST(SerialTest, RawHasNoLengthPrefix) {
  Writer w;
  w.raw(Bytes{7, 8, 9});
  EXPECT_EQ(w.size(), 3u);

  Reader r(w.data());
  EXPECT_EQ(r.raw(3), (Bytes{7, 8, 9}));
}

TEST(SerialTest, TruncatedInputThrows) {
  Writer w;
  w.u32(5);
  Reader r(w.data());
  EXPECT_THROW(r.u64(), DecodeError);
}

TEST(SerialTest, TruncatedByteStringThrows) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow, none do
  Reader r(w.data());
  EXPECT_THROW(r.bytes(), DecodeError);
}

TEST(SerialTest, InvalidBooleanThrows) {
  const Bytes raw = {2};
  Reader r(raw);
  EXPECT_THROW(r.boolean(), DecodeError);
}

TEST(SerialTest, ExpectDoneThrowsOnTrailingBytes) {
  const Bytes raw = {1, 2};
  Reader r(raw);
  r.u8();
  EXPECT_THROW(r.expect_done(), DecodeError);
}

TEST(SerialTest, DeterministicEncoding) {
  auto encode = [] {
    Writer w;
    w.str("abc");
    w.u64(77);
    w.bytes(Bytes{9});
    return std::move(w).take();
  };
  EXPECT_EQ(encode(), encode());
}

}  // namespace
}  // namespace bft

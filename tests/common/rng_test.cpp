#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bft {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(13), 13u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, Uniform01InHalfOpenInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(5);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, LognormalFactorMeanNearOne) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal_factor(0.2);
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gaussian();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(RngTest, BytesLengthAndDeterminism) {
  Rng a(21);
  Rng b(21);
  EXPECT_EQ(a.bytes(33), b.bytes(33));
  EXPECT_EQ(a.bytes(0).size(), 0u);
  EXPECT_EQ(a.bytes(7).size(), 7u);
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Rng a(3);
  Rng b(3);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fa.next(), fb.next());
  // Fork and parent produce different streams.
  Rng c(3);
  Rng fc = c.fork();
  EXPECT_NE(fc.next(), c.next());
}

}  // namespace
}  // namespace bft

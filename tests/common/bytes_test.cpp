#include "common/bytes.hpp"

#include <gtest/gtest.h>

namespace bft {
namespace {

TEST(BytesTest, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), data);
}

TEST(BytesTest, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(BytesTest, HexUppercaseAccepted) {
  EXPECT_EQ(from_hex("ABCDEF"), (Bytes{0xab, 0xcd, 0xef}));
}

TEST(BytesTest, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(BytesTest, HexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(BytesTest, StringConversionRoundTrip) {
  EXPECT_EQ(to_string(to_bytes("hello")), "hello");
}

TEST(BytesTest, AppendConcat) {
  Bytes a = {1, 2};
  append(a, Bytes{3, 4});
  EXPECT_EQ(a, (Bytes{1, 2, 3, 4}));

  const Bytes x = {9};
  const Bytes y = {8, 7};
  EXPECT_EQ(concat({ByteView(x), ByteView(y)}), (Bytes{9, 8, 7}));
}

TEST(BytesTest, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));
}

}  // namespace
}  // namespace bft

#include "consensus/instance.hpp"

#include <gtest/gtest.h>

namespace bft::consensus {
namespace {

class InstanceTest : public ::testing::Test {
 protected:
  InstanceTest() : quorums_(QuorumSystem::classic(4)), inst_(1, &quorums_) {}

  ValueHash add(const std::string& value) {
    return inst_.add_value(to_bytes(value));
  }

  QuorumSystem quorums_;
  Instance inst_;
};

TEST_F(InstanceTest, ValueStorage) {
  const ValueHash h = add("batch-1");
  EXPECT_TRUE(inst_.has_value(h));
  ASSERT_NE(inst_.value_for(h), nullptr);
  EXPECT_EQ(*inst_.value_for(h), to_bytes("batch-1"));
  EXPECT_FALSE(inst_.has_value(value_hash(to_bytes("other"))));
  EXPECT_EQ(inst_.value_for(value_hash(to_bytes("other"))), nullptr);
}

TEST_F(InstanceTest, ProposeAcceptedOnlyFromLeader) {
  const ValueHash h = add("v");
  EXPECT_FALSE(inst_.on_propose(0, /*from=*/1, /*leader=*/0, h));
  EXPECT_TRUE(inst_.on_propose(0, 0, 0, h));
  EXPECT_EQ(inst_.proposed_hash(0), h);
}

TEST_F(InstanceTest, SecondProposeInSameEpochIgnored) {
  const ValueHash h1 = add("v1");
  const ValueHash h2 = add("v2");
  EXPECT_TRUE(inst_.on_propose(0, 0, 0, h1));
  EXPECT_FALSE(inst_.on_propose(0, 0, 0, h2));
  EXPECT_EQ(inst_.proposed_hash(0), h1);
}

TEST_F(InstanceTest, ProposePerEpochIndependent) {
  const ValueHash h1 = add("v1");
  const ValueHash h2 = add("v2");
  EXPECT_TRUE(inst_.on_propose(0, 0, 0, h1));
  EXPECT_TRUE(inst_.on_propose(1, 1, 1, h2));  // epoch 1, leader 1
  EXPECT_EQ(inst_.proposed_hash(1), h2);
}

TEST_F(InstanceTest, WriteQuorumEdgeTriggered) {
  const ValueHash h = add("v");
  EXPECT_FALSE(inst_.on_write(0, 0, h, {}));
  EXPECT_FALSE(inst_.on_write(0, 1, h, {}));
  EXPECT_TRUE(inst_.on_write(0, 2, h, {}));   // third vote: quorum of 3
  EXPECT_FALSE(inst_.on_write(0, 3, h, {}));  // already reached: no re-trigger
  EXPECT_EQ(inst_.write_quorum_hash(0), h);
}

TEST_F(InstanceTest, DuplicateWritesDoNotCount) {
  const ValueHash h = add("v");
  EXPECT_FALSE(inst_.on_write(0, 0, h, {}));
  EXPECT_FALSE(inst_.on_write(0, 0, h, {}));
  EXPECT_FALSE(inst_.on_write(0, 0, h, {}));
  EXPECT_FALSE(inst_.write_quorum_hash(0).has_value());
}

TEST_F(InstanceTest, EquivocatingWriterCountsOnlyFirstVote) {
  const ValueHash h1 = add("v1");
  const ValueHash h2 = add("v2");
  EXPECT_FALSE(inst_.on_write(0, 0, h1, {}));
  EXPECT_FALSE(inst_.on_write(0, 0, h2, {}));  // equivocation ignored
  EXPECT_FALSE(inst_.on_write(0, 1, h2, {}));
  EXPECT_FALSE(inst_.on_write(0, 2, h2, {}));
  // h2 has votes from 1 and 2 only; replica 0 is pinned to h1.
  EXPECT_FALSE(inst_.write_quorum_hash(0).has_value());
  EXPECT_TRUE(inst_.on_write(0, 3, h2, {}));
  EXPECT_EQ(inst_.write_quorum_hash(0), h2);
}

TEST_F(InstanceTest, SplitVotesNeverQuorum) {
  const ValueHash h1 = add("v1");
  const ValueHash h2 = add("v2");
  EXPECT_FALSE(inst_.on_write(0, 0, h1, {}));
  EXPECT_FALSE(inst_.on_write(0, 1, h1, {}));
  EXPECT_FALSE(inst_.on_write(0, 2, h2, {}));
  EXPECT_FALSE(inst_.on_write(0, 3, h2, {}));
  EXPECT_FALSE(inst_.write_quorum_hash(0).has_value());
}

TEST_F(InstanceTest, DecisionLatchesOnAcceptQuorum) {
  const ValueHash h = add("v");
  EXPECT_FALSE(inst_.on_accept(0, 0, h));
  EXPECT_FALSE(inst_.on_accept(0, 1, h));
  EXPECT_FALSE(inst_.decided());
  EXPECT_TRUE(inst_.on_accept(0, 2, h));
  EXPECT_TRUE(inst_.decided());
  EXPECT_EQ(inst_.decided_hash(), h);
  EXPECT_EQ(inst_.decided_epoch(), 0u);
  // Further accepts (even in later epochs) never re-decide.
  EXPECT_FALSE(inst_.on_accept(0, 3, h));
  EXPECT_FALSE(inst_.on_accept(1, 0, h));
}

TEST_F(InstanceTest, WriteCertificateCarriesQuorumVotes) {
  const ValueHash h = add("v");
  inst_.on_write(0, 0, h, to_bytes("sig0"));
  inst_.on_write(0, 1, h, to_bytes("sig1"));
  inst_.on_write(0, 2, h, to_bytes("sig2"));
  const auto cert = inst_.write_certificate(0);
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->cid, 1u);
  EXPECT_EQ(cert->epoch, 0u);
  EXPECT_EQ(cert->hash, h);
  ASSERT_EQ(cert->votes.size(), 3u);
  EXPECT_EQ(cert->votes[0].signature, to_bytes("sig0"));
}

TEST_F(InstanceTest, NoCertificateWithoutQuorum) {
  const ValueHash h = add("v");
  inst_.on_write(0, 0, h, {});
  EXPECT_FALSE(inst_.write_certificate(0).has_value());
  EXPECT_FALSE(inst_.write_certificate(7).has_value());
}

TEST_F(InstanceTest, HighestEpochTracksTraffic) {
  EXPECT_EQ(inst_.highest_epoch(), 0u);
  const ValueHash h = add("v");
  inst_.on_write(3, 0, h, {});
  inst_.on_write(1, 1, h, {});
  EXPECT_EQ(inst_.highest_epoch(), 3u);
}

TEST_F(InstanceTest, WeightedQuorumWithWheat) {
  const QuorumSystem wheat = QuorumSystem::wheat(5, 1, {0, 1});
  Instance inst(9, &wheat);
  const ValueHash h = inst.add_value(to_bytes("v"));
  // Vmax(2) + Vmax(2) = 4 < 5: no quorum yet.
  EXPECT_FALSE(inst.on_write(0, 0, h, {}));
  EXPECT_FALSE(inst.on_write(0, 1, h, {}));
  // One Vmin replica completes the 3-machine fast quorum.
  EXPECT_TRUE(inst.on_write(0, 2, h, {}));
}

TEST_F(InstanceTest, AttestationDigestBindsAllFields) {
  const ValueHash h = value_hash(to_bytes("v"));
  const auto base = write_attestation_digest(1, 0, h);
  EXPECT_NE(write_attestation_digest(2, 0, h), base);
  EXPECT_NE(write_attestation_digest(1, 1, h), base);
  EXPECT_NE(write_attestation_digest(1, 0, value_hash(to_bytes("w"))), base);
  EXPECT_EQ(write_attestation_digest(1, 0, h), base);
}

}  // namespace
}  // namespace bft::consensus

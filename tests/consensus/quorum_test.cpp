#include "consensus/quorum.hpp"

#include <gtest/gtest.h>

namespace bft::consensus {
namespace {

TEST(QuorumTest, ClassicThresholds) {
  // ceil((n+f+1)/2) for the paper's cluster sizes (§6.2).
  const QuorumSystem q4 = QuorumSystem::classic(4);
  EXPECT_EQ(q4.f(), 1u);
  EXPECT_EQ(q4.quorum_weight(), 3u);
  EXPECT_EQ(q4.evidence_weight(), 2u);

  const QuorumSystem q7 = QuorumSystem::classic(7);
  EXPECT_EQ(q7.f(), 2u);
  EXPECT_EQ(q7.quorum_weight(), 5u);
  EXPECT_EQ(q7.evidence_weight(), 3u);

  const QuorumSystem q10 = QuorumSystem::classic(10);
  EXPECT_EQ(q10.f(), 3u);
  EXPECT_EQ(q10.quorum_weight(), 7u);
  EXPECT_EQ(q10.evidence_weight(), 4u);
}

TEST(QuorumTest, ClassicCountHelpers) {
  const QuorumSystem q = QuorumSystem::classic(7);
  EXPECT_EQ(q.count_2f_plus_1(), 5u);
  EXPECT_EQ(q.count_f_plus_1(), 3u);
}

TEST(QuorumTest, SingleNodeDegenerate) {
  const QuorumSystem q = QuorumSystem::classic(1);
  EXPECT_EQ(q.f(), 0u);
  EXPECT_EQ(q.quorum_weight(), 1u);
  EXPECT_TRUE(q.is_quorum({0}));
}

TEST(QuorumTest, ClassicSmallClustersAreCrashFaultOnly) {
  EXPECT_THROW(QuorumSystem::classic(0), std::invalid_argument);
  // n in {2,3} tolerates no Byzantine fault; quorums degrade to majorities.
  const QuorumSystem q2 = QuorumSystem::classic(2);
  EXPECT_EQ(q2.f(), 0u);
  EXPECT_EQ(q2.quorum_weight(), 2u);
  const QuorumSystem q3 = QuorumSystem::classic(3);
  EXPECT_EQ(q3.f(), 0u);
  EXPECT_EQ(q3.quorum_weight(), 2u);
  EXPECT_EQ(q3.evidence_weight(), 1u);
}

TEST(QuorumTest, WheatPaperConfiguration) {
  // §6.3: five replicas, f=1, Δ=1; two carry Vmax=2, three carry Vmin=1.
  const QuorumSystem q = QuorumSystem::wheat(5, 1, {0, 4});
  EXPECT_EQ(q.weight_of(0), 2u);
  EXPECT_EQ(q.weight_of(4), 2u);
  EXPECT_EQ(q.weight_of(1), 1u);
  EXPECT_EQ(q.total_weight(), 7u);
  EXPECT_EQ(q.quorum_weight(), 5u);
  // The two Vmax replicas plus any one Vmin replica form the fast quorum.
  EXPECT_TRUE(q.is_quorum({0, 4, 1}));
  // Two Vmax alone do not suffice.
  EXPECT_FALSE(q.is_quorum({0, 4}));
  // All Vmin plus one Vmax: 1+1+1+2 = 5, a quorum.
  EXPECT_TRUE(q.is_quorum({1, 2, 3, 0}));
  // All three Vmin alone: 3 < 5.
  EXPECT_FALSE(q.is_quorum({1, 2, 3}));
}

TEST(QuorumTest, WheatDegeneratesToClassicWithZeroDelta) {
  const QuorumSystem wheat = QuorumSystem::wheat(4, 1, {0, 1});
  const QuorumSystem classic = QuorumSystem::classic(4);
  // Weights scaled by f=1 are all 1; same thresholds.
  EXPECT_EQ(wheat.quorum_weight(), classic.quorum_weight());
  EXPECT_EQ(wheat.total_weight(), classic.total_weight());
}

TEST(QuorumTest, WheatValidation) {
  EXPECT_THROW(QuorumSystem::wheat(5, 0, {}), std::invalid_argument);
  EXPECT_THROW(QuorumSystem::wheat(4, 1, {0}), std::invalid_argument);     // need 2f
  EXPECT_THROW(QuorumSystem::wheat(3, 1, {0, 1}), std::invalid_argument);  // n < 3f+1
  EXPECT_THROW(QuorumSystem::wheat(5, 1, {0, 9}), std::invalid_argument);  // bad id
}

TEST(QuorumTest, WeightOfSetIgnoresUnknownIds) {
  const QuorumSystem q = QuorumSystem::classic(4);
  EXPECT_EQ(q.weight_of_set({0, 1, 99}), 2u);
  EXPECT_EQ(q.weight_of(99), 0u);
}

struct QuorumCase {
  std::uint32_t f;
  std::uint32_t delta;
};

class QuorumIntersection : public ::testing::TestWithParam<QuorumCase> {};

// Property: any two weight-quorums intersect in more than f*Vmax weight,
// hence in at least one correct replica — the core safety argument of both
// BFT-SMaRt and WHEAT. Verified exhaustively over all subsets.
TEST_P(QuorumIntersection, AnyTwoQuorumsShareACorrectReplica) {
  const auto [f, delta] = GetParam();
  const std::uint32_t n = 3 * f + 1 + delta;
  std::set<ReplicaId> vmax;
  for (ReplicaId i = 0; i < 2 * f; ++i) vmax.insert(i);
  const QuorumSystem q = delta == 0 ? QuorumSystem::classic(n)
                                    : QuorumSystem::wheat(n, f, vmax);

  const Weight vmax_weight = *std::max_element(q.weights().begin(), q.weights().end());
  const Weight byz_weight = static_cast<Weight>(f) * vmax_weight;

  std::vector<std::set<ReplicaId>> quorums;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::set<ReplicaId> s;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) s.insert(i);
    }
    if (q.is_quorum(s)) quorums.push_back(std::move(s));
  }
  ASSERT_FALSE(quorums.empty());

  for (std::size_t a = 0; a < quorums.size(); ++a) {
    for (std::size_t b = a; b < quorums.size(); ++b) {
      std::set<ReplicaId> inter;
      for (ReplicaId id : quorums[a]) {
        if (quorums[b].count(id)) inter.insert(id);
      }
      ASSERT_GT(q.weight_of_set(inter), byz_weight)
          << "quorum pair intersects only in potentially Byzantine weight";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuorumIntersection,
    ::testing::Values(QuorumCase{1, 0}, QuorumCase{1, 1}, QuorumCase{1, 2},
                      QuorumCase{2, 0}, QuorumCase{2, 2}, QuorumCase{3, 0}),
    [](const ::testing::TestParamInfo<QuorumCase>& info) {
      return "f" + std::to_string(info.param.f) + "delta" +
             std::to_string(info.param.delta);
    });

// Property: a minimal quorum using the heaviest replicas is never larger than
// one using uniform weights — WHEAT's raison d'être (fewer machines needed).
TEST(QuorumTest, WheatFastQuorumIsSmallerThanClassic) {
  const QuorumSystem wheat = QuorumSystem::wheat(5, 1, {0, 1});
  // Classic 5-replica quorum needs ceil((5+1+1)/2) = 4 machines.
  const QuorumSystem classic = QuorumSystem::classic(5);
  std::set<ReplicaId> four = {0, 1, 2, 3};
  std::set<ReplicaId> three_fast = {0, 1, 2};
  EXPECT_TRUE(classic.is_quorum(four));
  EXPECT_FALSE(classic.is_quorum(three_fast));
  EXPECT_TRUE(wheat.is_quorum(three_fast));
}

}  // namespace
}  // namespace bft::consensus

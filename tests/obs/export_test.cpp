#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bft::obs {
namespace {

TEST(JsonNumberTest, IntegersStayIntegral) {
  EXPECT_EQ(json_number(0), "0");
  EXPECT_EQ(json_number(42), "42");
  EXPECT_EQ(json_number(-7), "-7");
  EXPECT_EQ(json_number(2.5), "2.5");
  EXPECT_EQ(json_number(1e15), "1e+15");  // past the integral passthrough
  EXPECT_EQ(json_number(std::nan("")), "0");
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab\rcr"), "line\\nbreak\\ttab\\rcr");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
}

// The golden export: one instrument of each kind plus a two-event trace.
// Byte-exact — the exporter promises deterministic output (sorted keys, fixed
// number formatting), which is what makes sim runs diffable across machines.
TEST(ExportTest, GoldenDocument) {
  MetricsRegistry registry;
  registry.counter("a.count", "events").add(3);
  registry.gauge("b.gauge").set(-7);
  LatencyHistogram& h = registry.histogram("c.ns", "ns", "latency");
  for (std::int64_t v = 1; v <= 4; ++v) h.record(v);

  TraceRing trace(16);
  trace.record(TraceStage::kSubmit, /*at=*/100, /*node=*/0, /*client=*/1,
               /*seq=*/1);
  trace.record(TraceStage::kPropose, /*at=*/150, /*node=*/0, /*client=*/1,
               /*seq=*/1);

  const std::string json = to_json(registry, &trace,
                                   {{"bench", "unit"}, {"quote", "a\"b"}},
                                   {{"tps", 12345.5}});

  // The 50 ns submit->propose delta lands in bucket [50, 52) whose midpoint
  // is 51 ns, hence p50_ms = 5.1e-05 while max_ms keeps the exact 5e-05.
  const std::string expected =
      "{\"labels\":{\"bench\":\"unit\",\"quote\":\"a\\\"b\"},"
      "\"run\":{\"tps\":12345.5},"
      "\"counters\":{\"a.count\":3},"
      "\"gauges\":{\"b.gauge\":-7},"
      "\"histograms\":{\"c.ns\":{\"unit\":\"ns\",\"count\":4,\"p50\":2,"
      "\"p95\":4,\"p99\":4,\"max\":4,\"mean\":2.5}},"
      "\"trace\":{\"recorded\":2,\"dropped\":0,"
      "\"stages\":{\"submit_to_propose\":{\"count\":1,\"p50_ms\":5.1e-05,"
      "\"p95_ms\":5.1e-05,\"p99_ms\":5.1e-05,\"max_ms\":5e-05,"
      "\"mean_ms\":5e-05}}}}";
  EXPECT_EQ(json, expected);
}

TEST(ExportTest, NullTraceOmitsTraceSection) {
  MetricsRegistry registry;
  registry.counter("a.count");
  const std::string json = to_json(registry, nullptr);
  EXPECT_EQ(json.find("\"trace\""), std::string::npos);
  EXPECT_EQ(json,
            "{\"labels\":{},\"run\":{},\"counters\":{\"a.count\":0},"
            "\"gauges\":{},\"histograms\":{}}");
}

TEST(ExportTest, SameInputsSameBytes) {
  const auto build = [] {
    MetricsRegistry registry;
    registry.counter("z.last").add(1);
    registry.counter("a.first").add(2);
    registry.gauge("m.mid").set(5);
    return to_json(registry, nullptr, {{"seed", "7"}}, {{"x", 0.25}});
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace bft::obs

#include "obs/trace.hpp"

#include <gtest/gtest.h>

namespace bft::obs {
namespace {

TraceEvent ev(TraceStage stage, std::int64_t at, std::uint32_t client,
              std::uint64_t seq, std::uint64_t detail = 0) {
  return TraceEvent{at, /*node=*/0, client, seq, detail, stage};
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(100).capacity(), 128u);
  EXPECT_EQ(TraceRing(128).capacity(), 128u);
  EXPECT_EQ(TraceRing(1).capacity(), 2u);
}

TEST(TraceRingTest, SnapshotBeforeWrapIsOldestFirst) {
  TraceRing ring(8);
  for (std::int64_t i = 0; i < 5; ++i) {
    ring.record(TraceStage::kSubmit, /*at=*/i, /*node=*/0, /*client=*/1,
                /*seq=*/static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].at, static_cast<std::int64_t>(i));
  }
}

TEST(TraceRingTest, WraparoundKeepsNewestAndCountsDropped) {
  TraceRing ring(8);
  for (std::int64_t i = 0; i < 20; ++i) {
    ring.record(TraceStage::kSubmit, i, 0, 1, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The surviving window is the newest 8 events, oldest first: at = 12..19.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].at, static_cast<std::int64_t>(12 + i));
  }
}

TEST(StageBreakdownTest, FullChainPairsAdjacentStages) {
  std::vector<TraceEvent> events;
  events.push_back(ev(TraceStage::kSubmit, 100, 7, 1));
  events.push_back(ev(TraceStage::kPropose, 150, 7, 1));
  events.push_back(ev(TraceStage::kWriteQuorum, 180, 7, 1));
  events.push_back(ev(TraceStage::kAccept, 200, 7, 1));
  events.push_back(ev(TraceStage::kBlockcut, 210, 7, 1, /*block=*/5));
  events.push_back(ev(TraceStage::kSign, 215, 7, 1, 5));
  events.push_back(ev(TraceStage::kPush, 300, 7, 1, 5));
  events.push_back(ev(TraceStage::kFrontendAccept, 360, 7, 1, 5));

  const auto breakdown = stage_breakdown(events);
  const auto expect = [&breakdown](const std::string& name, std::int64_t delta) {
    const auto it = breakdown.find(name);
    ASSERT_NE(it, breakdown.end()) << name;
    EXPECT_EQ(it->second.count, 1u) << name;
    EXPECT_EQ(it->second.max, delta) << name;
  };
  expect("submit_to_propose", 50);
  expect("propose_to_write_quorum", 30);
  expect("write_quorum_to_accept", 20);
  expect("accept_to_blockcut", 10);
  expect("blockcut_to_sign", 5);
  expect("sign_to_push", 85);
  expect("submit_to_frontend_accept", 260);
}

TEST(StageBreakdownTest, MissingStagesBridgeToNextPresent) {
  // Ring wraparound can eat intermediate stages; the pairing bridges to the
  // next present one instead of dropping the envelope.
  std::vector<TraceEvent> events;
  events.push_back(ev(TraceStage::kSubmit, 100, 7, 1));
  events.push_back(ev(TraceStage::kAccept, 220, 7, 1));
  const auto breakdown = stage_breakdown(events);
  ASSERT_EQ(breakdown.count("submit_to_accept"), 1u);
  EXPECT_EQ(breakdown.at("submit_to_accept").max, 120);
  EXPECT_EQ(breakdown.count("submit_to_propose"), 0u);
}

TEST(StageBreakdownTest, FirstOccurrenceWinsPerStage) {
  // A replica may trace the same batch stage more than once (e.g. retried
  // pairing); only the earliest timestamp per (envelope, stage) counts.
  std::vector<TraceEvent> events;
  events.push_back(ev(TraceStage::kSubmit, 100, 7, 1));
  events.push_back(ev(TraceStage::kPropose, 180, 7, 1));
  events.push_back(ev(TraceStage::kPropose, 140, 7, 1));
  const auto breakdown = stage_breakdown(events);
  EXPECT_EQ(breakdown.at("submit_to_propose").max, 40);
}

TEST(StageBreakdownTest, BlockLevelEventsPairByBlockNumber) {
  // LAN receivers never learn the (client, seq) keys of envelopes they did
  // not submit, so push->frontend_accept pairs at block granularity via the
  // kBlockTraceClient sentinel + detail = block number.
  std::vector<TraceEvent> events;
  events.push_back(ev(TraceStage::kPush, 500, kBlockTraceClient, 9, 9));
  events.push_back(ev(TraceStage::kFrontendAccept, 650, kBlockTraceClient, 9, 9));
  events.push_back(ev(TraceStage::kPush, 700, kBlockTraceClient, 10, 10));
  events.push_back(
      ev(TraceStage::kFrontendAccept, 820, kBlockTraceClient, 10, 10));
  const auto breakdown = stage_breakdown(events);
  ASSERT_EQ(breakdown.count("push_to_frontend_accept"), 1u);
  const StageSummary& s = breakdown.at("push_to_frontend_accept");
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.max, 150);
  // Block-level events must not fabricate per-envelope chains.
  EXPECT_EQ(breakdown.count("sign_to_push"), 0u);
}

TEST(StageBreakdownTest, NegativeDeltasDiscarded) {
  // Wall-clock skew across real processes can order frontend_accept before
  // push; such pairs contribute no sample rather than a bogus one.
  std::vector<TraceEvent> events;
  events.push_back(ev(TraceStage::kPush, 900, kBlockTraceClient, 3, 3));
  events.push_back(ev(TraceStage::kFrontendAccept, 850, kBlockTraceClient, 3, 3));
  const auto breakdown = stage_breakdown(events);
  EXPECT_EQ(breakdown.count("push_to_frontend_accept"), 0u);
}

TEST(StageBreakdownTest, StageNamesAreStable) {
  // These names are the JSON export surface documented in OBSERVABILITY.md.
  EXPECT_STREQ(trace_stage_name(TraceStage::kSubmit), "submit");
  EXPECT_STREQ(trace_stage_name(TraceStage::kPropose), "propose");
  EXPECT_STREQ(trace_stage_name(TraceStage::kWriteQuorum), "write_quorum");
  EXPECT_STREQ(trace_stage_name(TraceStage::kAccept), "accept");
  EXPECT_STREQ(trace_stage_name(TraceStage::kBlockcut), "blockcut");
  EXPECT_STREQ(trace_stage_name(TraceStage::kSign), "sign");
  EXPECT_STREQ(trace_stage_name(TraceStage::kPush), "push");
  EXPECT_STREQ(trace_stage_name(TraceStage::kFrontendAccept),
               "frontend_accept");
}

}  // namespace
}  // namespace bft::obs

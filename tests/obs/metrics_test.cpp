#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

namespace bft::obs {
namespace {

TEST(CounterTest, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAddMoveBothWays) {
  Gauge g;
  g.set(10);
  g.add(-25);
  EXPECT_EQ(g.value(), -15);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
}

// --- histogram bucket geometry ---

TEST(LatencyHistogramTest, LinearRegionIsUnitBuckets) {
  for (std::int64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_index(v), static_cast<std::size_t>(v));
    EXPECT_EQ(LatencyHistogram::bucket_lower(static_cast<std::size_t>(v)), v);
    EXPECT_EQ(LatencyHistogram::bucket_width(static_cast<std::size_t>(v)), 1);
  }
}

TEST(LatencyHistogramTest, OctaveBoundaries) {
  // First log-linear octave [16, 32) still has width-1 sub-buckets.
  EXPECT_EQ(LatencyHistogram::bucket_index(16), 16u);
  EXPECT_EQ(LatencyHistogram::bucket_index(31), 31u);
  // Octave [32, 64): width 2, starting at index 32.
  EXPECT_EQ(LatencyHistogram::bucket_index(32), 32u);
  EXPECT_EQ(LatencyHistogram::bucket_index(33), 32u);
  EXPECT_EQ(LatencyHistogram::bucket_index(34), 33u);
  EXPECT_EQ(LatencyHistogram::bucket_index(63), 47u);
  EXPECT_EQ(LatencyHistogram::bucket_index(64), 48u);
  EXPECT_EQ(LatencyHistogram::bucket_width(32), 2);
}

TEST(LatencyHistogramTest, BucketGeometryIsConsistent) {
  // Every bucket: its lower bound maps back to it, its last value maps to it,
  // and the next bucket starts exactly one width later.
  for (std::size_t i = 0; i + 1 < LatencyHistogram::kBucketCount; ++i) {
    const std::int64_t lower = LatencyHistogram::bucket_lower(i);
    const std::int64_t width = LatencyHistogram::bucket_width(i);
    EXPECT_EQ(LatencyHistogram::bucket_index(lower), i) << "lower of " << i;
    EXPECT_EQ(LatencyHistogram::bucket_index(lower + width - 1), i)
        << "upper of " << i;
    EXPECT_EQ(LatencyHistogram::bucket_lower(i + 1), lower + width)
        << "gap after " << i;
  }
}

TEST(LatencyHistogramTest, TopOctaveStaysInBounds) {
  // The top octave [2^47, 2^48) must map inside the bucket array; a previous
  // off-by-one-octave in kBucketCount sent these indices past the end.
  const std::int64_t lo = std::int64_t{1} << LatencyHistogram::kMaxOctave;
  EXPECT_LT(LatencyHistogram::bucket_index(lo - 1),
            LatencyHistogram::kBucketCount);
  EXPECT_EQ(LatencyHistogram::bucket_index(lo),
            LatencyHistogram::kBucketCount - LatencyHistogram::kSubBuckets);
  EXPECT_EQ(LatencyHistogram::bucket_index(2 * lo - 1),
            LatencyHistogram::kBucketCount - 1);
  // record() on a top-octave value must hit a real bucket, not adjacent
  // scalars (ASan/TSan builds catch the out-of-bounds write).
  LatencyHistogram h;
  h.record(lo);
  h.record(2 * lo - 1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), 2 * lo - 1);
  EXPECT_EQ(h.quantile(0.0),
            LatencyHistogram::bucket_lower(LatencyHistogram::bucket_index(lo)) +
                LatencyHistogram::bucket_width(LatencyHistogram::bucket_index(lo)) / 2);
}

TEST(LatencyHistogramTest, OutOfRangeValuesClamp) {
  EXPECT_EQ(LatencyHistogram::bucket_index(-5), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index((std::int64_t{1} << 48) - 1),
            LatencyHistogram::kBucketCount - 1);
  EXPECT_EQ(LatencyHistogram::bucket_index(std::int64_t{1} << 48),
            LatencyHistogram::kBucketCount - 1);
  EXPECT_EQ(LatencyHistogram::bucket_index(std::int64_t{1} << 50),
            LatencyHistogram::kBucketCount - 1);
  EXPECT_EQ(LatencyHistogram::bucket_index(
                std::numeric_limits<std::int64_t>::max()),
            LatencyHistogram::kBucketCount - 1);
}

// --- quantiles ---

TEST(LatencyHistogramTest, QuantilesExactInLinearRegion) {
  LatencyHistogram h;
  for (std::int64_t v = 1; v <= 10; ++v) h.record(v);
  // Nearest-rank over 10 samples: p50 -> rank 5 -> value 5 (unit buckets are
  // exact: midpoint of a width-1 bucket is its value).
  EXPECT_EQ(h.quantile(0.50), 5);
  EXPECT_EQ(h.quantile(0.0), 1);
  EXPECT_EQ(h.quantile(1.0), 10);
  EXPECT_EQ(h.quantile(0.95), 10);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.sum(), 55);
  EXPECT_EQ(h.max(), 10);
  EXPECT_DOUBLE_EQ(h.mean(), 5.5);
}

TEST(LatencyHistogramTest, QuantileOfEmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogramTest, QuantileRelativeErrorBounded) {
  // In the log-linear region the reported midpoint must stay within one
  // sub-bucket (1/16 relative) of the recorded value.
  for (const std::int64_t v : {std::int64_t{1905000}, std::int64_t{123456789},
                               (std::int64_t{1} << 40) + 12345}) {
    LatencyHistogram h;
    h.record(v);
    const std::int64_t est = h.quantile(0.5);
    EXPECT_LE(std::abs(est - v), v / LatencyHistogram::kSubBuckets)
        << "value " << v;
  }
}

// --- registry ---

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x.count", "help");
  Counter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(MetricsRegistryTest, KindConflictThrows) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("x"), std::invalid_argument);
  registry.histogram("h", "ns");
  EXPECT_THROW(registry.counter("h"), std::invalid_argument);
}

TEST(MetricsRegistryTest, EntriesSortedWithMetadata) {
  MetricsRegistry registry;
  registry.histogram("b.hist", "envelopes", "fill");
  registry.counter("a.count", "events");
  registry.gauge("c.gauge");
  const auto entries = registry.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "a.count");
  EXPECT_EQ(entries[0].kind, MetricsRegistry::Kind::kCounter);
  EXPECT_EQ(entries[0].help, "events");
  EXPECT_EQ(entries[1].name, "b.hist");
  EXPECT_EQ(entries[1].unit, "envelopes");
  EXPECT_EQ(entries[2].name, "c.gauge");
}

TEST(MetricsRegistryTest, ConcurrentRecordingIsLossless) {
  // Hot-path operations are wait-free; registration takes the registry mutex.
  // Hammer both from several threads (run under BFT_SANITIZE=thread to let
  // TSan audit the claim) and check nothing is lost.
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr std::int64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      Counter& c = registry.counter("shared.count");
      Gauge& g = registry.gauge("shared.gauge");
      LatencyHistogram& h = registry.histogram("shared.hist");
      for (std::int64_t i = 1; i <= kPerThread; ++i) {
        c.add();
        g.add(t % 2 == 0 ? 1 : -1);
        h.record(i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.counter("shared.count").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.gauge("shared.gauge").value(), 0);
  LatencyHistogram& h = registry.histogram("shared.hist");
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.sum(), kThreads * (kPerThread * (kPerThread + 1) / 2));
  EXPECT_EQ(h.max(), kPerThread);
}

}  // namespace
}  // namespace bft::obs

#include "storage/checkpoint.hpp"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "crypto/sha256.hpp"

namespace bft::storage {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           (std::string("bft_ckpt_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static Checkpoint make(std::uint64_t cid) {
    Checkpoint cp;
    cp.cid = cid;
    cp.snapshot = to_bytes("snapshot-" + std::to_string(cid));
    cp.integrity = crypto::sha256(cp.snapshot);
    return cp;
  }

  fs::path dir_;
};

TEST_F(CheckpointTest, EmptyDirectoryLoadsNothing) {
  auto store = CheckpointStore::open(dir_.string()).take();
  EXPECT_TRUE(store->load().empty());
  EXPECT_EQ(store->retain_floor(), 0u);
}

TEST_F(CheckpointTest, WriteLoadRoundTrip) {
  auto store = CheckpointStore::open(dir_.string()).take();
  ASSERT_TRUE(store->write(make(42)).is_ok());
  EXPECT_GT(store->last_written_bytes(), 0u);

  const auto loaded = store->load();
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].cid, 42u);
  EXPECT_EQ(loaded[0].snapshot, to_bytes("snapshot-42"));
  EXPECT_EQ(loaded[0].integrity, crypto::sha256(loaded[0].snapshot));
}

TEST_F(CheckpointTest, SlotsAlternateAndNewestLoadsFirst) {
  auto store = CheckpointStore::open(dir_.string()).take();
  ASSERT_TRUE(store->write(make(10)).is_ok());
  ASSERT_TRUE(store->write(make(20)).is_ok());
  ASSERT_TRUE(store->write(make(30)).is_ok());

  // The third write evicted cid 10 (the oldest), never cid 20.
  const auto loaded = store->load();
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].cid, 30u);
  EXPECT_EQ(loaded[1].cid, 20u);
  EXPECT_EQ(store->retain_floor(), 20u);
}

TEST_F(CheckpointTest, SurvivesProcessRestart) {
  {
    auto store = CheckpointStore::open(dir_.string()).take();
    ASSERT_TRUE(store->write(make(7)).is_ok());
  }
  auto store = CheckpointStore::open(dir_.string()).take();
  const auto loaded = store->load();
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].cid, 7u);
}

TEST_F(CheckpointTest, CorruptSlotIsRejectedOtherSurvives) {
  auto store = CheckpointStore::open(dir_.string()).take();
  ASSERT_TRUE(store->write(make(10)).is_ok());
  ASSERT_TRUE(store->write(make(20)).is_ok());

  // Flip a payload byte in one slot; CRC must reject it and recovery falls
  // back to the surviving checkpoint instead of trusting damaged state.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    std::FILE* f = std::fopen(entry.path().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 24, SEEK_SET), 0);
    const int byte = std::fgetc(f);
    ASSERT_NE(byte, EOF);
    ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
    std::fputc(byte ^ 0xFF, f);
    std::fclose(f);
    break;  // corrupt exactly one slot
  }

  const auto loaded = store->load();
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded[0].cid == 10u || loaded[0].cid == 20u);
}

TEST_F(CheckpointTest, TruncatedSlotIsRejected) {
  auto store = CheckpointStore::open(dir_.string()).take();
  ASSERT_TRUE(store->write(make(5)).is_ok());
  fs::path slot;
  for (const auto& entry : fs::directory_iterator(dir_)) slot = entry.path();
  ASSERT_FALSE(slot.empty());
  // A torn write leaves a short file: reject, don't misparse.
  fs::resize_file(slot, fs::file_size(slot) / 2);
  EXPECT_TRUE(store->load().empty());
}

TEST_F(CheckpointTest, EmptyAndGarbageSlotsAreRejected) {
  auto store = CheckpointStore::open(dir_.string()).take();
  {
    std::FILE* f = std::fopen((dir_ / "checkpoint-a.ckpt").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);  // zero-byte file (crashed before any write)
  }
  {
    std::FILE* f = std::fopen((dir_ / "checkpoint-b.ckpt").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "not a checkpoint at all, definitely long enough";
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }
  EXPECT_TRUE(store->load().empty());
  // The store still accepts new checkpoints over the wreckage.
  ASSERT_TRUE(store->write(make(3)).is_ok());
  ASSERT_EQ(store->load().size(), 1u);
}

TEST_F(CheckpointTest, RewriteAfterCorruptionReplacesBadSlot) {
  auto store = CheckpointStore::open(dir_.string()).take();
  ASSERT_TRUE(store->write(make(10)).is_ok());
  ASSERT_TRUE(store->write(make(20)).is_ok());
  // Corrupt one slot; the next write must target it (invalid counts as
  // oldest), leaving the surviving checkpoint untouched.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    std::FILE* f = std::fopen(entry.path().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fputc(0x00, f);  // clobber the magic
    std::fclose(f);
    break;
  }
  ASSERT_TRUE(store->write(make(30)).is_ok());
  const auto loaded = store->load();
  ASSERT_GE(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].cid, 30u);
}

}  // namespace
}  // namespace bft::storage

#include "storage/wal.hpp"

#include <cstdio>
#include <filesystem>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "storage/crc32.hpp"

namespace bft::storage {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           (std::string("bft_wal_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  WalOptions options(FsyncPolicy fsync = FsyncPolicy::off) {
    WalOptions o;
    o.directory = dir_.string();
    o.fsync = fsync;
    return o;
  }

  static Bytes value_for(std::uint64_t cid, std::size_t size = 16) {
    Bytes v(size);
    for (std::size_t i = 0; i < size; ++i) {
      v[i] = static_cast<std::uint8_t>(cid * 31 + i);
    }
    return v;
  }

  /// All segment files, lexicographically sorted (== cid order).
  std::vector<fs::path> segment_files() const {
    std::vector<fs::path> out;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (entry.path().extension() == ".seg") out.push_back(entry.path());
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  fs::path dir_;
};

TEST_F(WalTest, Crc32MatchesKnownVector) {
  const Bytes check = to_bytes("123456789");
  EXPECT_EQ(crc32_ieee(check), 0xCBF43926u);
  // Streaming updates compose to the one-shot value.
  const std::uint32_t partial = crc32_ieee_update(0, ByteView(check.data(), 4));
  EXPECT_EQ(crc32_ieee_update(partial, ByteView(check.data() + 4, 5)),
            0xCBF43926u);
  EXPECT_EQ(crc32_ieee(ByteView{}), 0u);
}

TEST_F(WalTest, ParseFsyncPolicy) {
  EXPECT_EQ(parse_fsync_policy("always").value(), FsyncPolicy::always);
  EXPECT_EQ(parse_fsync_policy("group").value(), FsyncPolicy::group);
  EXPECT_EQ(parse_fsync_policy("off").value(), FsyncPolicy::off);
  EXPECT_FALSE(parse_fsync_policy("sometimes").ok());
  EXPECT_STREQ(fsync_policy_name(FsyncPolicy::group), "group");
}

TEST_F(WalTest, AppendReplayRoundTrip) {
  auto wal = WriteAheadLog::open(options()).take();
  for (std::uint64_t cid = 1; cid <= 100; ++cid) {
    ASSERT_TRUE(wal->append(cid, value_for(cid)).is_ok());
  }
  EXPECT_EQ(wal->tail_cid(), 100u);
  EXPECT_EQ(wal->appended_records(), 100u);

  std::uint64_t next = 1;
  const std::uint64_t n =
      wal->replay(0, [&](std::uint64_t cid, ByteView value) {
        EXPECT_EQ(cid, next++);
        const Bytes expect = value_for(cid);
        ASSERT_EQ(value.size(), expect.size());
        EXPECT_TRUE(std::equal(value.begin(), value.end(), expect.begin()));
      });
  EXPECT_EQ(n, 100u);

  // Replay from a mid-point only emits the suffix.
  std::uint64_t count = 0;
  EXPECT_EQ(wal->replay(90, [&](std::uint64_t, ByteView) { ++count; }), 10u);
  EXPECT_EQ(count, 10u);
}

TEST_F(WalTest, ReopenPreservesLog) {
  {
    auto wal = WriteAheadLog::open(options()).take();
    for (std::uint64_t cid = 1; cid <= 40; ++cid) {
      ASSERT_TRUE(wal->append(cid, value_for(cid)).is_ok());
    }
  }
  auto wal = WriteAheadLog::open(options()).take();
  EXPECT_EQ(wal->tail_cid(), 40u);
  EXPECT_EQ(wal->truncated_tail_bytes(), 0u);
  EXPECT_EQ(wal->replay(0, [](std::uint64_t, ByteView) {}), 40u);
  // Appends continue where the log left off; duplicates are skipped.
  EXPECT_TRUE(wal->append(40, value_for(40)).is_ok());
  EXPECT_TRUE(wal->append(41, value_for(41)).is_ok());
  EXPECT_EQ(wal->appended_records(), 1u);
  EXPECT_EQ(wal->tail_cid(), 41u);
}

TEST_F(WalTest, RotatesSegmentsAndReplaysAcrossThem) {
  WalOptions o = options();
  o.segment_bytes = 256;  // a handful of 32-byte frames per segment
  auto wal = WriteAheadLog::open(std::move(o)).take();
  for (std::uint64_t cid = 1; cid <= 64; ++cid) {
    ASSERT_TRUE(wal->append(cid, value_for(cid)).is_ok());
  }
  EXPECT_GT(wal->segment_count(), 3u);
  EXPECT_EQ(wal->replay(0, [](std::uint64_t, ByteView) {}), 64u);
}

TEST_F(WalTest, TornTailIsTruncatedOnOpen) {
  {
    auto wal = WriteAheadLog::open(options()).take();
    for (std::uint64_t cid = 1; cid <= 10; ++cid) {
      ASSERT_TRUE(wal->append(cid, value_for(cid)).is_ok());
    }
  }
  // Simulate a power failure mid-write: a partial frame header at the tail.
  const auto files = segment_files();
  ASSERT_EQ(files.size(), 1u);
  const auto full_size = fs::file_size(files[0]);
  {
    std::FILE* f = std::fopen(files[0].c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const std::uint8_t torn[5] = {0x20, 0x00, 0x00, 0x00, 0x99};
    std::fwrite(torn, 1, sizeof(torn), f);
    std::fclose(f);
  }

  auto wal = WriteAheadLog::open(options()).take();
  EXPECT_EQ(wal->truncated_tail_bytes(), 5u);
  EXPECT_EQ(wal->tail_cid(), 10u);
  EXPECT_EQ(fs::file_size(files[0]), full_size);  // trimmed back to clean end
  EXPECT_EQ(wal->replay(0, [](std::uint64_t, ByteView) {}), 10u);
  EXPECT_TRUE(wal->append(11, value_for(11)).is_ok());
  EXPECT_EQ(wal->tail_cid(), 11u);
}

TEST_F(WalTest, FlippedCrcByteCutsLogAtCorruptRecord) {
  {
    auto wal = WriteAheadLog::open(options()).take();
    for (std::uint64_t cid = 1; cid <= 10; ++cid) {
      ASSERT_TRUE(wal->append(cid, value_for(cid)).is_ok());
    }
  }
  // Flip one payload byte inside the 3rd frame (frames are 8 magic +
  // n * (8 header + 8 cid + 16 value) bytes in).
  const auto files = segment_files();
  ASSERT_EQ(files.size(), 1u);
  {
    std::FILE* f = std::fopen(files[0].c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 8 + 2 * 32 + 20, SEEK_SET), 0);
    const int byte = std::fgetc(f);
    ASSERT_NE(byte, EOF);
    ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
    std::fputc(byte ^ 0xFF, f);
    std::fclose(f);
  }

  auto wal = WriteAheadLog::open(options()).take();
  EXPECT_GT(wal->truncated_tail_bytes(), 0u);
  EXPECT_EQ(wal->tail_cid(), 2u);  // clean prefix survives, rest discarded
  std::uint64_t next = 1;
  EXPECT_EQ(wal->replay(0,
                        [&](std::uint64_t cid, ByteView) {
                          EXPECT_EQ(cid, next++);
                        }),
            2u);
}

TEST_F(WalTest, CorruptionInEarlierSegmentDropsLaterSegments) {
  WalOptions o = options();
  o.segment_bytes = 128;
  {
    auto wal = WriteAheadLog::open(std::move(o)).take();
    for (std::uint64_t cid = 1; cid <= 30; ++cid) {
      ASSERT_TRUE(wal->append(cid, value_for(cid)).is_ok());
    }
  }
  auto files = segment_files();
  ASSERT_GT(files.size(), 2u);
  {
    // Corrupt the first record of the second segment.
    std::FILE* f = std::fopen(files[1].c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 8 + 10, SEEK_SET), 0);
    std::fputc(0xAA, f);
    std::fputc(0x55, f);
    std::fclose(f);
  }

  WalOptions o2 = options();
  o2.segment_bytes = 128;
  auto wal = WriteAheadLog::open(std::move(o2)).take();
  // Segments after the corrupt one are deleted: refusing to expose records
  // beyond a hole keeps replay equal to a clean history prefix.
  EXPECT_LE(wal->segment_count(), 2u);
  const std::uint64_t replayed =
      wal->replay(0, [](std::uint64_t, ByteView) {});
  EXPECT_GT(replayed, 0u);
  EXPECT_LT(replayed, 30u);
  EXPECT_EQ(wal->tail_cid(), replayed);
  EXPECT_EQ(segment_files().size(), wal->segment_count());
}

TEST_F(WalTest, ReplayStopsAtCidGap) {
  auto wal = WriteAheadLog::open(options()).take();
  for (std::uint64_t cid = 1; cid <= 3; ++cid) {
    ASSERT_TRUE(wal->append(cid, value_for(cid)).is_ok());
  }
  // A state-transfer jump leaves a gap; the log accepts it but replay
  // treats the gap as the end of the contiguous prefix.
  ASSERT_TRUE(wal->append(10, value_for(10)).is_ok());
  EXPECT_EQ(wal->tail_cid(), 10u);
  EXPECT_EQ(wal->replay(0, [](std::uint64_t, ByteView) {}), 3u);
  // From just before the gap the suffix is contiguous again.
  EXPECT_EQ(wal->replay(9, [](std::uint64_t, ByteView) {}), 1u);
}

TEST_F(WalTest, PruneBelowDropsWholeColdSegments) {
  WalOptions o = options();
  o.segment_bytes = 128;
  auto wal = WriteAheadLog::open(std::move(o)).take();
  for (std::uint64_t cid = 1; cid <= 40; ++cid) {
    ASSERT_TRUE(wal->append(cid, value_for(cid)).is_ok());
  }
  const std::size_t before = wal->segment_count();
  ASSERT_GT(before, 2u);
  wal->prune_below(20);
  EXPECT_LT(wal->segment_count(), before);
  EXPECT_EQ(segment_files().size(), wal->segment_count());
  // The suffix from the prune point is still fully replayable.
  EXPECT_EQ(wal->replay(19, [](std::uint64_t, ByteView) {}), 21u);
  EXPECT_EQ(wal->tail_cid(), 40u);
}

TEST_F(WalTest, GroupCommitFlushAndReopen) {
  {
    auto wal = WriteAheadLog::open(options(FsyncPolicy::group)).take();
    for (std::uint64_t cid = 1; cid <= 20; ++cid) {
      ASSERT_TRUE(wal->append(cid, value_for(cid)).is_ok());
    }
    wal->flush();
  }
  auto wal = WriteAheadLog::open(options(FsyncPolicy::group)).take();
  EXPECT_EQ(wal->tail_cid(), 20u);
  EXPECT_EQ(wal->replay(0, [](std::uint64_t, ByteView) {}), 20u);
}

TEST_F(WalTest, AlwaysPolicyRecordsFsyncLatency) {
  obs::MetricsRegistry metrics;
  WalOptions o = options(FsyncPolicy::always);
  o.instruments.appends = &metrics.counter("storage.wal_appends");
  o.instruments.fsync_ns = &metrics.histogram("storage.fsync_ns");
  auto wal = WriteAheadLog::open(std::move(o)).take();
  for (std::uint64_t cid = 1; cid <= 5; ++cid) {
    ASSERT_TRUE(wal->append(cid, value_for(cid)).is_ok());
  }
  EXPECT_EQ(metrics.counter("storage.wal_appends").value(), 5u);
  EXPECT_EQ(metrics.histogram("storage.fsync_ns").count(), 5u);
}

TEST_F(WalTest, EmptyDirectoryOpensEmpty) {
  auto wal = WriteAheadLog::open(options()).take();
  EXPECT_EQ(wal->tail_cid(), 0u);
  EXPECT_EQ(wal->segment_count(), 0u);
  EXPECT_EQ(wal->replay(0, [](std::uint64_t, ByteView) {}), 0u);
}

}  // namespace
}  // namespace bft::storage

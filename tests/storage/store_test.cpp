#include "storage/store.hpp"

#include <filesystem>

#include <gtest/gtest.h>

#include "crypto/sha256.hpp"

namespace bft::storage {
namespace {

namespace fs = std::filesystem;

class NodeStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           (std::string("bft_store_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  StoreOptions options(std::uint32_t node_id = 3) {
    StoreOptions o;
    o.directory = dir_.string();
    o.node_id = node_id;
    o.fsync = FsyncPolicy::off;
    return o;
  }

  fs::path dir_;
};

TEST_F(NodeStoreTest, StampsDirectoryAndReopens) {
  { auto store = NodeStore::open(options(3)).take(); }
  EXPECT_TRUE(fs::exists(dir_ / "NODE"));
  // Same node id reopens fine.
  auto store = NodeStore::open(options(3));
  EXPECT_TRUE(store.ok());
}

TEST_F(NodeStoreTest, RefusesAnotherNodesDataDir) {
  { auto store = NodeStore::open(options(3)).take(); }
  const auto wrong = NodeStore::open(options(4));
  ASSERT_FALSE(wrong.ok());
  EXPECT_NE(wrong.error().find("node 4"), std::string::npos);
  EXPECT_NE(wrong.error().find("refusing"), std::string::npos);
}

TEST_F(NodeStoreTest, AppendReplayAndMetrics) {
  obs::MetricsRegistry metrics;
  StoreOptions o = options();
  o.metrics = &metrics;
  {
    auto store = NodeStore::open(std::move(o)).take();
    for (std::uint64_t cid = 1; cid <= 12; ++cid) {
      ASSERT_TRUE(
          store->append_decision(cid, to_bytes("v" + std::to_string(cid)))
              .is_ok());
    }
    EXPECT_EQ(store->wal_tail_cid(), 12u);
  }
  StoreOptions o2 = options();
  o2.metrics = &metrics;
  auto store = NodeStore::open(std::move(o2)).take();
  std::uint64_t last = 0;
  const std::uint64_t n =
      store->replay(0, [&](std::uint64_t cid, ByteView) { last = cid; });
  EXPECT_EQ(n, 12u);
  EXPECT_EQ(last, 12u);
  EXPECT_EQ(store->replayed_records(), 12u);
  EXPECT_EQ(metrics.counter("storage.replayed_blocks").value(), 12u);
  EXPECT_EQ(metrics.counter("storage.wal_appends").value(), 12u);
}

TEST_F(NodeStoreTest, CheckpointWritePrunesWalAndCountsBytes) {
  obs::MetricsRegistry metrics;
  StoreOptions o = options();
  o.metrics = &metrics;
  o.wal_segment_bytes = 128;
  auto store = NodeStore::open(std::move(o)).take();
  for (std::uint64_t cid = 1; cid <= 60; ++cid) {
    ASSERT_TRUE(store->append_decision(cid, Bytes(16, 0xAB)).is_ok());
  }
  const std::size_t before = store->wal().segment_count();
  ASSERT_GT(before, 3u);

  Checkpoint cp;
  cp.cid = 40;
  cp.snapshot = to_bytes("app-state");
  cp.integrity = crypto::sha256(cp.snapshot);
  ASSERT_TRUE(store->write_checkpoint(cp).is_ok());
  Checkpoint cp2 = cp;
  cp2.cid = 50;
  ASSERT_TRUE(store->write_checkpoint(cp2).is_ok());

  // Retention keeps the WAL suffix needed by the OLDER slot (cid 40).
  EXPECT_LT(store->wal().segment_count(), before);
  EXPECT_EQ(store->wal().replay(40, [](std::uint64_t, ByteView) {}), 20u);
  EXPECT_GT(metrics.counter("storage.checkpoint_bytes").value(), 0u);
  ASSERT_EQ(store->load_checkpoints().size(), 2u);
  EXPECT_EQ(store->load_checkpoints()[0].cid, 50u);
}

}  // namespace
}  // namespace bft::storage

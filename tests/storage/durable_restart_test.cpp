// End-to-end durability: an ordering cluster whose nodes persist decisions
// and checkpoints restarts from disk — fresh processes (new Replica objects
// over reopened NodeStores) resume the chain exactly where it stopped, and a
// checkpoint failing integrity verification is refused rather than adopted.
#include <filesystem>
#include <map>

#include <gtest/gtest.h>

#include "ledger/chain.hpp"
#include "ordering/deployment.hpp"
#include "runtime/sim_runtime.hpp"
#include "storage/store.hpp"

namespace bft::ordering {
namespace {

namespace fs = std::filesystem;
using sim::kMillisecond;
using sim::kSecond;

ServiceOptions base_options() {
  ServiceOptions options;
  options.nodes = {0, 1, 2, 3};
  options.block_size = 5;
  options.replica_params.forward_timeout = runtime::msec(300);
  options.replica_params.stop_timeout = runtime::msec(500);
  options.replica_params.checkpoint_period = 8;
  options.replica_params.state_transfer_gap = 4;
  options.replica_params.stall_timeout = runtime::msec(500);
  return options;
}

std::unique_ptr<storage::NodeStore> open_store(const fs::path& root,
                                               runtime::ProcessId id,
                                               std::size_t segment_bytes =
                                                   8u << 20) {
  storage::StoreOptions so;
  so.directory = (root / ("node-" + std::to_string(id))).string();
  so.node_id = id;
  so.fsync = storage::FsyncPolicy::off;  // sim: no real power failures
  so.wal_segment_bytes = segment_bytes;
  return storage::NodeStore::open(std::move(so)).take();
}

/// All four nodes with their stores opened against `root`.
struct DurableNodes {
  std::vector<std::unique_ptr<storage::NodeStore>> stores;
  std::vector<SingleNode> nodes;
};

DurableNodes build_nodes(const fs::path& root) {
  DurableNodes out;
  const ServiceOptions base = base_options();
  for (const runtime::ProcessId id : base.nodes) {
    out.stores.push_back(open_store(root, id));
    ServiceOptions options = base;
    options.replica_params.storage = out.stores.back().get();
    out.nodes.push_back(make_node(options, id));
  }
  return out;
}

class DurableRestartTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            (std::string("bft_durable_test_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
};

TEST_F(DurableRestartTest, ClusterRestartsFromDiskAndExtendsTheSameChain) {
  std::uint64_t pre_blocks = 0;
  std::uint64_t pre_cid = 0;
  std::uint64_t pre_envelopes = 0;
  crypto::Hash256 pre_tip_digest{};

  {  // ---- first life: order 30 envelopes, then the whole cluster dies ----
    DurableNodes life1 = build_nodes(root_);
    runtime::SimCluster cluster(
        sim::make_lan(110, kMillisecond / 10, sim::NetworkConfig{}, 17), 17);
    for (std::size_t i = 0; i < life1.nodes.size(); ++i) {
      cluster.add_process(life1.nodes[i].cluster.members()[i],
                          life1.nodes[i].node.replica.get(), sim::CpuConfig{});
    }
    ledger::BlockStore chain("channel-0");
    Frontend frontend(life1.nodes[0].cluster,
                      make_frontend_options(base_options()),
                      [&chain](const ledger::Block& block) {
                        ASSERT_TRUE(chain.append(block).is_ok());
                      });
    cluster.add_process(100, &frontend);
    for (int i = 0; i < 30; ++i) {
      cluster.schedule_at((10 + i * 20) * kMillisecond, [&frontend, i] {
        frontend.submit(to_bytes("tx-" + std::to_string(i)));
      });
    }
    cluster.run_until(10 * kSecond);

    ASSERT_EQ(chain.height(), 6u);  // 30 envelopes / 5 per block
    ASSERT_TRUE(chain.verify().is_ok());
    pre_blocks = life1.nodes[0].node.app->blocks_created();
    pre_envelopes = life1.nodes[0].node.app->envelopes_ordered();
    pre_cid = life1.nodes[0].node.replica->last_confirmed();
    pre_tip_digest = chain.tip().header.digest();
    ASSERT_GT(pre_cid, 0u);
    ASSERT_GT(life1.stores[0]->wal_tail_cid(), 0u);
  }  // processes die; only the data directories survive

  // ---- second life: fresh replicas over reopened stores ----
  DurableNodes life2 = build_nodes(root_);
  runtime::SimCluster cluster(
      sim::make_lan(110, kMillisecond / 10, sim::NetworkConfig{}, 18), 18);
  for (std::size_t i = 0; i < life2.nodes.size(); ++i) {
    cluster.add_process(life2.nodes[i].cluster.members()[i],
                        life2.nodes[i].node.replica.get(), sim::CpuConfig{});
  }
  // A fresh frontend identity: the restored dedup window remembers client
  // 100's pre-crash sequence numbers, so reusing that id would (correctly)
  // drop the new submissions as duplicates.
  std::map<std::uint64_t, ledger::Block> new_blocks;
  Frontend frontend(life2.nodes[0].cluster,
                    make_frontend_options(base_options()),
                    [&new_blocks](const ledger::Block& block) {
                      new_blocks[block.header.number] = block;
                    });
  cluster.add_process(101, &frontend);

  // Nothing submitted yet: just starting must recover the pre-crash state.
  cluster.run_until(500 * kMillisecond);
  for (std::size_t i = 0; i < life2.nodes.size(); ++i) {
    EXPECT_EQ(life2.nodes[i].node.app->blocks_created(), pre_blocks)
        << "node " << i;
    EXPECT_EQ(life2.nodes[i].node.app->envelopes_ordered(), pre_envelopes)
        << "node " << i;
    EXPECT_EQ(life2.nodes[i].node.replica->last_confirmed(), pre_cid)
        << "node " << i;
    EXPECT_GT(life2.stores[i]->replayed_records(), 0u) << "node " << i;
  }

  // New traffic must extend the restored chain, not restart it at block 1.
  for (int i = 0; i < 10; ++i) {
    cluster.schedule_at(600 * kMillisecond + i * 20 * kMillisecond,
                        [&frontend, i] {
                          frontend.submit(to_bytes("tx2-" + std::to_string(i)));
                        });
  }
  cluster.run_until(10 * kSecond);

  // The restart re-announces the cached pre-crash window (blocks 1..6, so a
  // late-joining frontend can deliver them) and the new traffic extends the
  // chain with blocks 7 and 8 — not a second block 1.
  ASSERT_EQ(new_blocks.size(), 8u);
  EXPECT_EQ(new_blocks.begin()->first, 1u);
  EXPECT_EQ(new_blocks.rbegin()->first, 8u);
  ASSERT_EQ(new_blocks.count(7u), 1u);
  EXPECT_EQ(new_blocks[7u].header.previous_hash, pre_tip_digest);
}

TEST_F(DurableRestartTest, TamperedCheckpointIsRefusedFailClosed) {
  // Four-node cluster; only node 0 is durable, with tiny WAL segments so
  // checkpointing actually prunes the genesis-side history (otherwise the
  // WAL alone could rebuild state and mask the refused checkpoint).
  ServiceOptions options = base_options();
  std::uint64_t pre_blocks = 0;
  {
    auto store = open_store(root_, 0, 256);
    std::vector<SingleNode> nodes;
    for (const runtime::ProcessId id : options.nodes) {
      ServiceOptions per_node = options;
      if (id == 0) per_node.replica_params.storage = store.get();
      nodes.push_back(make_node(per_node, id));
    }
    runtime::SimCluster cluster(
        sim::make_lan(110, kMillisecond / 10, sim::NetworkConfig{}, 19), 19);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      cluster.add_process(options.nodes[i], nodes[i].node.replica.get(),
                          sim::CpuConfig{});
    }
    ledger::BlockStore chain("channel-0");
    Frontend frontend(nodes[0].cluster, make_frontend_options(options),
                      [&chain](const ledger::Block& block) {
                        ASSERT_TRUE(chain.append(block).is_ok());
                      });
    cluster.add_process(100, &frontend);
    for (int i = 0; i < 100; ++i) {
      cluster.schedule_at((10 + i * 10) * kMillisecond, [&frontend, i] {
        frontend.submit(to_bytes("tx-" + std::to_string(i)));
      });
    }
    cluster.run_until(10 * kSecond);
    pre_blocks = nodes[0].node.app->blocks_created();
    ASSERT_GT(pre_blocks, 0u);
    // The WAL must no longer reach back to cid 1, or the test proves nothing.
    ASSERT_EQ(store->replay(0, [](std::uint64_t, ByteView) {}), 0u);
  }

  // Tamper: rewrite both checkpoint slots with a wrong integrity digest but
  // valid CRC (a fork/mis-restore, not random corruption).
  {
    auto checkpoints =
        storage::CheckpointStore::open((root_ / "node-0").string()).take();
    auto slots = checkpoints->load();
    ASSERT_FALSE(slots.empty());
    for (int i = 0; i < 2; ++i) {
      storage::Checkpoint bad = slots.front();
      // Strictly newer than every genuine slot so both get evicted (write
      // always replaces the oldest slot).
      bad.cid += static_cast<std::uint64_t>(i) + 1;
      bad.integrity[0] ^= 0xFF;
      ASSERT_TRUE(checkpoints->write(bad).is_ok());
    }
  }

  // Restart: both checkpoints must be refused, and with the WAL pruned below
  // them nothing replays — the node comes up empty (and would state-transfer
  // in a real cluster) instead of adopting an unverifiable history.
  auto store = open_store(root_, 0, 256);
  options.replica_params.storage = store.get();
  SingleNode node = make_node(options, 0);
  runtime::SimCluster cluster(
      sim::make_lan(110, kMillisecond / 10, sim::NetworkConfig{}, 20), 20);
  cluster.add_process(0, node.node.replica.get(), sim::CpuConfig{});
  cluster.run_until(500 * kMillisecond);

  EXPECT_EQ(node.node.app->blocks_created(), 0u);
  EXPECT_EQ(node.node.replica->last_confirmed(), 0u);
  EXPECT_EQ(store->replayed_records(), 0u);
}

}  // namespace
}  // namespace bft::ordering

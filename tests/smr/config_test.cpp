#include "smr/config.hpp"

#include <gtest/gtest.h>

namespace bft::smr {
namespace {

TEST(ClusterConfigTest, ClassicBasics) {
  const auto cfg = ClusterConfig::classic({3, 1, 7, 5});
  EXPECT_EQ(cfg.n(), 4u);
  EXPECT_EQ(cfg.members(), (std::vector<runtime::ProcessId>{1, 3, 5, 7}));
  EXPECT_TRUE(cfg.contains(5));
  EXPECT_FALSE(cfg.contains(4));
  EXPECT_EQ(cfg.index_of(1), 0u);
  EXPECT_EQ(cfg.index_of(7), 3u);
  EXPECT_EQ(cfg.member_at(2), 5u);
  EXPECT_THROW(cfg.index_of(42), std::out_of_range);
}

TEST(ClusterConfigTest, LeaderRotation) {
  const auto cfg = ClusterConfig::classic({0, 1, 2, 3});
  EXPECT_EQ(cfg.leader(0), 0u);
  EXPECT_EQ(cfg.leader(1), 1u);
  EXPECT_EQ(cfg.leader(4), 0u);
  EXPECT_EQ(cfg.leader(7), 3u);
}

TEST(ClusterConfigTest, DuplicateMembersRejected) {
  EXPECT_THROW(ClusterConfig::classic({0, 1, 1, 2}), std::invalid_argument);
}

TEST(ClusterConfigTest, WheatWeights) {
  const auto cfg = ClusterConfig::wheat({10, 20, 30, 40, 50}, {10, 50});
  EXPECT_TRUE(cfg.is_wheat());
  const auto& q = cfg.quorums();
  EXPECT_EQ(q.weight_of(cfg.index_of(10)), 2u);
  EXPECT_EQ(q.weight_of(cfg.index_of(50)), 2u);
  EXPECT_EQ(q.weight_of(cfg.index_of(30)), 1u);
  EXPECT_EQ(q.quorum_weight(), 5u);
}

TEST(ClusterConfigTest, WheatRequiresMemberVmax) {
  EXPECT_THROW(ClusterConfig::wheat({0, 1, 2, 3, 4}, {0, 9}),
               std::invalid_argument);
  EXPECT_THROW(ClusterConfig::wheat({0, 1, 2, 3, 4}, {0}),
               std::invalid_argument);
}

TEST(ClusterConfigTest, AddRemoveMembers) {
  const auto cfg = ClusterConfig::classic({0, 1, 2, 3});
  const auto grown = cfg.with_member_added(4);
  EXPECT_EQ(grown.n(), 5u);
  EXPECT_TRUE(grown.contains(4));
  EXPECT_THROW(cfg.with_member_added(2), std::invalid_argument);

  const auto shrunk = grown.with_member_removed(0);
  EXPECT_EQ(shrunk.n(), 4u);
  EXPECT_FALSE(shrunk.contains(0));
  EXPECT_THROW(cfg.with_member_removed(9), std::invalid_argument);
}

TEST(ClusterConfigTest, RemovingVmaxMemberFallsBackToClassic) {
  const auto cfg = ClusterConfig::wheat({0, 1, 2, 3, 4}, {0, 4});
  const auto shrunk = cfg.with_member_removed(4);
  EXPECT_FALSE(shrunk.is_wheat());
  EXPECT_EQ(shrunk.n(), 4u);
  // Removing a Vmin member keeps WHEAT weights.
  const auto still_wheat = cfg.with_member_removed(2);
  EXPECT_TRUE(still_wheat.is_wheat());
}

TEST(ClusterConfigTest, EncodeDecodeRoundTrip) {
  const auto classic = ClusterConfig::classic({0, 1, 2, 3});
  EXPECT_EQ(ClusterConfig::decode(classic.encode()), classic);

  const auto wheat = ClusterConfig::wheat({0, 1, 2, 3, 4}, {1, 3});
  const auto decoded = ClusterConfig::decode(wheat.encode());
  EXPECT_EQ(decoded, wheat);
  EXPECT_TRUE(decoded.is_wheat());
  EXPECT_EQ(decoded.quorums().quorum_weight(), wheat.quorums().quorum_weight());
}

TEST(ClusterConfigTest, IndexStabilityAcrossReplicas) {
  // Two replicas constructing from the same member set derive the same
  // indices regardless of insertion order.
  const auto a = ClusterConfig::classic({9, 4, 6, 2});
  const auto b = ClusterConfig::classic({2, 6, 4, 9});
  EXPECT_EQ(a.members(), b.members());
  for (runtime::ProcessId p : a.members()) {
    EXPECT_EQ(a.index_of(p), b.index_of(p));
  }
}

}  // namespace
}  // namespace bft::smr

// Client-proxy unit tests: reply-quorum collection, resends, tentative-mode
// thresholds — driven by hand-crafted replies from fake replicas.
#include <gtest/gtest.h>

#include "tests/smr/test_support.hpp"

namespace bft::smr::testing {
namespace {

using sim::kMillisecond;
using sim::kSecond;

/// Fake replica that records requests and lets the test answer them.
class ScriptedReplica : public runtime::Actor {
 public:
  void on_message(runtime::ProcessId from, ByteView payload) override {
    if (peek_kind(payload) == MsgKind::request) {
      requests.emplace_back(from, decode_request(payload));
    }
  }
  void on_timer(std::uint64_t) override {}
  void reply_to(runtime::ProcessId client, std::uint64_t seq, Bytes payload) {
    env().send(client, encode_reply(Reply{seq, 1, std::move(payload)}));
  }
  std::vector<std::pair<runtime::ProcessId, Request>> requests;
};

struct ClientHarness {
  explicit ClientHarness(Client::Params params, std::uint32_t n = 4)
      : cluster(sim::make_lan(110, kMillisecond / 10, sim::NetworkConfig{}, 1), 1) {
    std::vector<runtime::ProcessId> members;
    for (std::uint32_t i = 0; i < n; ++i) members.push_back(i);
    client = std::make_unique<Client>(ClusterConfig::classic(members), params);
    for (std::uint32_t i = 0; i < n; ++i) {
      replicas.push_back(std::make_unique<ScriptedReplica>());
      cluster.add_process(i, replicas.back().get());
    }
    cluster.add_process(100, client.get());
  }

  void invoke_at(sim::SimTime at, Bytes payload, Client::ReplyCallback cb) {
    Client* c = client.get();
    cluster.schedule_at(at, [c, payload = std::move(payload),
                             cb = std::move(cb)]() mutable {
      c->invoke(std::move(payload), std::move(cb));
    });
  }

  void reply_at(sim::SimTime at, std::size_t replica, std::uint64_t seq,
                Bytes payload) {
    ScriptedReplica* r = replicas.at(replica).get();
    cluster.schedule_at(at, [r, seq, payload = std::move(payload)]() mutable {
      r->reply_to(100, seq, std::move(payload));
    });
  }

  runtime::SimCluster cluster;
  std::unique_ptr<Client> client;
  std::vector<std::unique_ptr<ScriptedReplica>> replicas;
};

Client::Params slow_resend() {
  Client::Params p;
  p.resend_timeout = runtime::sec(10);
  return p;
}

TEST(ClientTest, RequestBroadcastToAllReplicas) {
  ClientHarness h(slow_resend());
  h.invoke_at(kMillisecond, to_bytes("op"), nullptr);
  h.cluster.run_until(100 * kMillisecond);
  for (auto& r : h.replicas) {
    ASSERT_EQ(r->requests.size(), 1u);
    EXPECT_EQ(r->requests[0].second.payload, to_bytes("op"));
    EXPECT_EQ(r->requests[0].second.seq, 1u);
  }
}

TEST(ClientTest, CompletesAtFPlus1MatchingReplies) {
  ClientHarness h(slow_resend());
  int done = 0;
  Bytes result;
  h.invoke_at(kMillisecond, to_bytes("op"), [&](std::uint64_t, Bytes r) {
    ++done;
    result = std::move(r);
  });
  h.reply_at(10 * kMillisecond, 0, 1, to_bytes("answer"));
  h.cluster.run_until(50 * kMillisecond);
  EXPECT_EQ(done, 0) << "one reply must not suffice (f=1)";
  h.reply_at(60 * kMillisecond, 1, 1, to_bytes("answer"));
  h.cluster.run_until(100 * kMillisecond);
  EXPECT_EQ(done, 1);
  EXPECT_EQ(result, to_bytes("answer"));
  EXPECT_EQ(h.client->completed_count(), 1u);
  EXPECT_EQ(h.client->outstanding_count(), 0u);
}

TEST(ClientTest, MismatchedRepliesDoNotCount) {
  ClientHarness h(slow_resend());
  int done = 0;
  h.invoke_at(kMillisecond, to_bytes("op"),
              [&](std::uint64_t, Bytes) { ++done; });
  h.reply_at(10 * kMillisecond, 0, 1, to_bytes("lie"));
  h.reply_at(11 * kMillisecond, 1, 1, to_bytes("truth"));
  h.cluster.run_until(50 * kMillisecond);
  EXPECT_EQ(done, 0);
  h.reply_at(60 * kMillisecond, 2, 1, to_bytes("truth"));
  h.cluster.run_until(100 * kMillisecond);
  EXPECT_EQ(done, 1);
}

TEST(ClientTest, DuplicateRepliesFromSameReplicaCountOnce) {
  ClientHarness h(slow_resend());
  int done = 0;
  h.invoke_at(kMillisecond, to_bytes("op"),
              [&](std::uint64_t, Bytes) { ++done; });
  for (int i = 0; i < 3; ++i) {
    h.reply_at((10 + i) * kMillisecond, 0, 1, to_bytes("answer"));
  }
  h.cluster.run_until(100 * kMillisecond);
  EXPECT_EQ(done, 0);
}

TEST(ClientTest, TentativeModeNeedsQuorumWeight) {
  Client::Params p = slow_resend();
  p.tentative = true;
  ClientHarness h(p);
  int done = 0;
  h.invoke_at(kMillisecond, to_bytes("op"),
              [&](std::uint64_t, Bytes) { ++done; });
  // f+1 = 2 matching replies are NOT enough in tentative mode.
  h.reply_at(10 * kMillisecond, 0, 1, to_bytes("a"));
  h.reply_at(11 * kMillisecond, 1, 1, to_bytes("a"));
  h.cluster.run_until(50 * kMillisecond);
  EXPECT_EQ(done, 0);
  // Quorum weight (3 of 4) is.
  h.reply_at(60 * kMillisecond, 2, 1, to_bytes("a"));
  h.cluster.run_until(100 * kMillisecond);
  EXPECT_EQ(done, 1);
}

TEST(ClientTest, ResendsOutstandingRequests) {
  Client::Params p;
  p.resend_timeout = runtime::msec(50);
  ClientHarness h(p);
  h.invoke_at(kMillisecond, to_bytes("op"), nullptr);
  h.cluster.run_until(260 * kMillisecond);
  // Original + ~5 resends over 260 ms.
  EXPECT_GE(h.replicas[0]->requests.size(), 4u);
  // After completion, resends stop.
  h.reply_at(261 * kMillisecond, 0, 1, to_bytes("ok"));
  h.reply_at(262 * kMillisecond, 1, 1, to_bytes("ok"));
  h.cluster.run_until(300 * kMillisecond);
  const std::size_t count = h.replicas[0]->requests.size();
  h.cluster.run_until(600 * kMillisecond);
  EXPECT_EQ(h.replicas[0]->requests.size(), count);
}

TEST(ClientTest, AsyncInvocationsAssignSequences) {
  ClientHarness h(slow_resend());
  Client* c = h.client.get();
  h.cluster.schedule_at(kMillisecond, [c] {
    EXPECT_EQ(c->invoke_async(to_bytes("a")), 1u);
    EXPECT_EQ(c->invoke_async(to_bytes("b")), 2u);
  });
  h.cluster.run_until(50 * kMillisecond);
  ASSERT_EQ(h.replicas[2]->requests.size(), 2u);
  EXPECT_EQ(h.client->outstanding_count(), 0u);  // fire-and-forget untracked
}

TEST(ClientTest, RepliesFromNonMembersIgnored) {
  ClientHarness h(slow_resend());
  ScriptedReplica outsider;
  h.cluster.add_process(50, &outsider);
  int done = 0;
  h.invoke_at(kMillisecond, to_bytes("op"),
              [&](std::uint64_t, Bytes) { ++done; });
  h.reply_at(10 * kMillisecond, 0, 1, to_bytes("x"));
  h.cluster.schedule_at(11 * kMillisecond,
                        [&outsider] { outsider.reply_to(100, 1, to_bytes("x")); });
  h.cluster.run_until(100 * kMillisecond);
  EXPECT_EQ(done, 0);
}

}  // namespace
}  // namespace bft::smr::testing

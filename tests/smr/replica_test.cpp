// End-to-end SMR tests on the simulated runtime: agreement, total order,
// batching, WHEAT tentative execution, checkpoints and duplicate handling.
// Fault-injection scenarios live in replica_fault_test.cpp.
#include <gtest/gtest.h>

#include "tests/smr/test_support.hpp"

namespace bft::smr::testing {
namespace {

using sim::kMillisecond;
using sim::kSecond;

ReplicaParams fast_params() {
  ReplicaParams p;
  p.forward_timeout = runtime::msec(300);
  p.stop_timeout = runtime::msec(500);
  p.sync_deadline = runtime::msec(1500);
  return p;
}

TEST(ReplicaTest, SingleRequestReachesAllReplicas) {
  SimHarness h(4, 1, fast_params());
  bool replied = false;
  h.invoke_at(kMillisecond, 0, delta_payload(5),
              [&](std::uint64_t, Bytes reply) {
                Reader r(reply);
                EXPECT_EQ(r.u64(), 5u);
                replied = true;
              });
  h.cluster.run_until(kSecond);
  EXPECT_TRUE(replied);
  for (const auto& m : h.machines) EXPECT_EQ(m->value(), 5u);
  EXPECT_TRUE(h.replicas_agree({0, 1, 2, 3}));
}

TEST(ReplicaTest, ManyRequestsTotalOrderAgreement) {
  SimHarness h(4, 3, fast_params());
  int completions = 0;
  for (int i = 0; i < 60; ++i) {
    h.invoke_at(kMillisecond + i * (kMillisecond / 4), i % 3,
                delta_payload(static_cast<std::uint64_t>(i + 1)),
                [&](std::uint64_t, Bytes) { ++completions; });
  }
  h.cluster.run_until(5 * kSecond);
  EXPECT_EQ(completions, 60);
  // Sum of 1..60 = 1830.
  for (const auto& m : h.machines) EXPECT_EQ(m->value(), 1830u);
  EXPECT_TRUE(h.replicas_agree({0, 1, 2, 3}));
  EXPECT_EQ(h.replicas[0]->executed_request_count(), 60u);
}

TEST(ReplicaTest, BatchingPacksConcurrentRequests) {
  SimHarness h(4, 4, fast_params());
  // 200 requests land together: far fewer consensus instances than requests.
  for (int i = 0; i < 200; ++i) {
    h.invoke_at(kMillisecond, i % 4, delta_payload(1));
  }
  h.cluster.run_until(5 * kSecond);
  EXPECT_EQ(h.machines[1]->value(), 200u);
  EXPECT_LT(h.replicas[1]->decided_batch_count(), 50u);
  EXPECT_GE(h.replicas[1]->decided_batch_count(), 1u);
}

TEST(ReplicaTest, BatchLimitRespected) {
  ReplicaParams p = fast_params();
  p.batch_max = 10;
  SimHarness h(4, 1, p);
  for (int i = 0; i < 35; ++i) h.invoke_at(kMillisecond, 0, delta_payload(1));
  h.cluster.run_until(5 * kSecond);
  EXPECT_EQ(h.machines[0]->value(), 35u);
  // 35 requests / 10 per batch => at least 4 instances.
  EXPECT_GE(h.replicas[0]->decided_batch_count(), 4u);
}

TEST(ReplicaTest, SevenAndTenReplicaClusters) {
  for (std::uint32_t n : {7u, 10u}) {
    SimHarness h(n, 2, fast_params());
    for (int i = 0; i < 30; ++i) {
      h.invoke_at(kMillisecond + i * (kMillisecond / 2), i % 2, delta_payload(2));
    }
    h.cluster.run_until(5 * kSecond);
    std::vector<std::size_t> all;
    for (std::size_t i = 0; i < n; ++i) all.push_back(i);
    EXPECT_EQ(h.machines[0]->value(), 60u) << "n=" << n;
    EXPECT_TRUE(h.replicas_agree(all)) << "n=" << n;
  }
}

TEST(ReplicaTest, DuplicateClientRequestExecutedOnce) {
  SimHarness h(4, 1, fast_params());
  h.invoke_at(kMillisecond, 0, delta_payload(10));
  // Replay the exact same (client, seq) to every replica after it executed.
  Request dup;
  dup.client = SimHarness::kClientBase;
  dup.seq = 1;  // same as the first invocation
  dup.payload = delta_payload(10);
  for (std::uint32_t r = 0; r < 4; ++r) {
    h.send_raw_at(500 * kMillisecond, r, encode_request(dup));
  }
  h.cluster.run_until(2 * kSecond);
  EXPECT_EQ(h.machines[0]->value(), 10u);
  EXPECT_EQ(h.replicas[0]->executed_request_count(), 1u);
}

TEST(ReplicaTest, ClientResendDoesNotDoubleExecute) {
  // Drop all REPLY traffic for a second so the client's resend timer fires
  // repeatedly; replicas must dedup the re-sent (client, seq) pairs.
  ReplicaParams p = fast_params();
  Client::Params cp;
  cp.resend_timeout = runtime::msec(100);
  SimHarness h(4, 1, p, SimHarness::make_classic_config(4), 7, cp);
  h.cluster.set_filter([&h](runtime::ProcessId, runtime::ProcessId,
                            ByteView payload) {
    if (h.cluster.now() < kSecond && !payload.empty() &&
        peek_kind(payload) == MsgKind::reply) {
      return runtime::FilterAction::drop;
    }
    return runtime::FilterAction::deliver;
  });
  int completions = 0;
  for (int i = 0; i < 10; ++i) {
    h.invoke_at(kMillisecond, 0, delta_payload(1),
                [&](std::uint64_t, Bytes) { ++completions; });
  }
  h.cluster.run_until(3 * kSecond);
  EXPECT_EQ(completions, 10);
  EXPECT_EQ(h.machines[0]->value(), 10u);
  EXPECT_EQ(h.replicas[0]->executed_request_count(), 10u);
}

TEST(ReplicaTest, WheatTentativeExecutionAgreement) {
  ReplicaParams p = fast_params();
  p.tentative_execution = true;
  auto cfg = ClusterConfig::wheat({0, 1, 2, 3, 4}, {0, 1});
  SimHarness h(5, 2, p, cfg);
  int completions = 0;
  for (int i = 0; i < 40; ++i) {
    h.invoke_at(kMillisecond + i * (kMillisecond / 2), i % 2, delta_payload(3),
                [&](std::uint64_t, Bytes) { ++completions; });
  }
  h.cluster.run_until(5 * kSecond);
  EXPECT_EQ(completions, 40);
  EXPECT_EQ(h.machines[0]->value(), 120u);
  EXPECT_TRUE(h.replicas_agree({0, 1, 2, 3, 4}));
  // Tentative executions must all have been confirmed by the async ACCEPTs.
  for (const auto& r : h.replicas) {
    EXPECT_EQ(r->last_confirmed(), r->last_applied());
  }
}

TEST(ReplicaTest, CheckpointsTruncateAndKeepWorking) {
  ReplicaParams p = fast_params();
  p.checkpoint_period = 4;
  SimHarness h(4, 1, p);
  for (int i = 0; i < 40; ++i) {
    h.invoke_at(kMillisecond + i * 10 * kMillisecond, 0, delta_payload(1));
  }
  h.cluster.run_until(5 * kSecond);
  EXPECT_EQ(h.machines[0]->value(), 40u);
  EXPECT_TRUE(h.replicas_agree({0, 1, 2, 3}));
}

TEST(ReplicaTest, RepliesCarryConsensusIds) {
  SimHarness h(4, 1, fast_params());
  std::vector<std::uint64_t> seqs;
  for (int i = 0; i < 3; ++i) {
    h.invoke_at(kMillisecond * (i + 1) * 100, 0, delta_payload(1),
                [&](std::uint64_t seq, Bytes) { seqs.push_back(seq); });
  }
  h.cluster.run_until(2 * kSecond);
  ASSERT_EQ(seqs.size(), 3u);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(ReplicaTest, NonLeaderReplicasStayInSync) {
  SimHarness h(4, 1, fast_params());
  for (int i = 0; i < 20; ++i) {
    h.invoke_at(kMillisecond + i * 20 * kMillisecond, 0, delta_payload(1));
  }
  h.cluster.run_until(3 * kSecond);
  for (const auto& r : h.replicas) {
    EXPECT_EQ(r->last_confirmed(), h.replicas[0]->last_confirmed());
    EXPECT_EQ(r->regency(), 0u) << "no leader change expected in healthy run";
  }
}

TEST(ReplicaTest, DeterministicSimulation) {
  auto run = [] {
    SimHarness h(4, 2, fast_params(), 123);
    for (int i = 0; i < 25; ++i) {
      h.invoke_at(kMillisecond + i * 3 * kMillisecond, i % 2, delta_payload(1));
    }
    h.cluster.run_until(3 * kSecond);
    return std::make_pair(h.cluster.executed_events(),
                          h.machines[0]->history());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace bft::smr::testing

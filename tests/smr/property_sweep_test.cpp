// Property sweep: agreement and liveness across cluster sizes, execution
// modes and fault loads. Every configuration runs the same workload and must
// satisfy the same invariants:
//   * all surviving replicas end with identical history digests (safety);
//   * every tracked invocation completes (liveness);
//   * confirmed == applied on every survivor (no dangling speculation).
#include <gtest/gtest.h>

#include "tests/smr/test_support.hpp"

namespace bft::smr::testing {
namespace {

using sim::kMillisecond;
using sim::kSecond;

struct SweepCase {
  std::uint32_t n = 4;
  bool wheat = false;           // weighted quorums + tentative execution
  std::uint32_t crash = 0;      // non-leader crashes at t = 50 ms
  std::uint32_t drop_pct = 0;   // WRITE/ACCEPT loss rate, first 1.5 s
  std::uint64_t seed = 7;

  std::string name() const {
    std::string s = "n" + std::to_string(n);
    s += wheat ? "wheat" : "classic";
    if (crash > 0) s += "crash" + std::to_string(crash);
    if (drop_pct > 0) s += "drop" + std::to_string(drop_pct);
    s += "seed" + std::to_string(seed);
    return s;
  }
};

class SmrPropertySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SmrPropertySweep, AgreementAndCompletion) {
  const SweepCase c = GetParam();
  ReplicaParams params;
  params.forward_timeout = runtime::msec(250);
  params.stop_timeout = runtime::msec(400);
  params.sync_deadline = runtime::msec(1200);
  params.state_transfer_gap = 8;
  params.state_transfer_retry = runtime::msec(300);
  params.stall_timeout = runtime::msec(600);
  params.checkpoint_period = 16;
  params.tentative_execution = c.wheat;

  ClusterConfig config = c.wheat
                             ? ClusterConfig::wheat(
                                   [&] {
                                     std::vector<runtime::ProcessId> m;
                                     for (std::uint32_t i = 0; i < c.n; ++i) m.push_back(i);
                                     return m;
                                   }(),
                                   {0, 1})
                             : SimHarness::make_classic_config(c.n);
  SimHarness h(c.n, 2, params, config, c.seed);

  // Crash the last `crash` replicas (never the initial leader) at 50 ms.
  for (std::uint32_t k = 0; k < c.crash; ++k) {
    const runtime::ProcessId victim = c.n - 1 - k;
    h.cluster.schedule_at(50 * kMillisecond,
                          [&h, victim] { h.cluster.crash(victim); });
  }
  if (c.drop_pct > 0) {
    auto rng = std::make_shared<Rng>(c.seed ^ 0xdead);
    const std::uint32_t pct = c.drop_pct;
    h.cluster.set_filter([&h, rng, pct](runtime::ProcessId, runtime::ProcessId,
                                        ByteView payload) {
      if (h.cluster.now() < 1500 * kMillisecond && !payload.empty()) {
        const auto kind = peek_kind(payload);
        if ((kind == MsgKind::write || kind == MsgKind::accept) &&
            rng->uniform(100) < pct) {
          return runtime::FilterAction::drop;
        }
      }
      return runtime::FilterAction::deliver;
    });
  }

  int completions = 0;
  for (int i = 0; i < 30; ++i) {
    h.invoke_at(100 * kMillisecond + i * 15 * kMillisecond, i % 2,
                delta_payload(1), [&](std::uint64_t, Bytes) { ++completions; });
  }
  h.cluster.run_until(30 * kSecond);

  EXPECT_EQ(completions, 30);
  std::vector<std::size_t> survivors;
  for (std::uint32_t i = 0; i < c.n - c.crash; ++i) survivors.push_back(i);
  EXPECT_TRUE(h.replicas_agree(survivors));
  for (std::size_t i : survivors) {
    EXPECT_EQ(h.machines[i]->value(), 30u) << "replica " << i;
    EXPECT_EQ(h.replicas[i]->last_confirmed(), h.replicas[i]->last_applied());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SmrPropertySweep,
    ::testing::Values(
        // Healthy clusters across sizes and modes.
        SweepCase{4, false, 0, 0, 7}, SweepCase{7, false, 0, 0, 7},
        SweepCase{10, false, 0, 0, 7}, SweepCase{5, true, 0, 0, 7},
        SweepCase{7, true, 0, 0, 7},
        // Crash faults up to f.
        SweepCase{4, false, 1, 0, 7}, SweepCase{7, false, 2, 0, 7},
        SweepCase{10, false, 3, 0, 7}, SweepCase{5, true, 1, 0, 7},
        // Transient message loss.
        SweepCase{4, false, 0, 10, 11}, SweepCase{4, false, 0, 25, 12},
        SweepCase{7, false, 0, 10, 13}, SweepCase{5, true, 0, 10, 14},
        // Loss and crash together.
        SweepCase{7, false, 1, 10, 15}, SweepCase{4, false, 1, 10, 16},
        // Different seeds exercise different interleavings.
        SweepCase{4, false, 0, 25, 21}, SweepCase{4, false, 0, 25, 22},
        SweepCase{5, true, 0, 10, 23}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.name();
    });

}  // namespace
}  // namespace bft::smr::testing

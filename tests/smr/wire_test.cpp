#include "smr/wire.hpp"

#include <gtest/gtest.h>

#include "smr/replica.hpp"  // ReconfigOp helpers

namespace bft::smr {
namespace {

Request sample_request() {
  Request r;
  r.client = 101;
  r.seq = 7;
  r.kind = RequestKind::application;
  r.payload = to_bytes("envelope-bytes");
  return r;
}

TEST(WireTest, RequestRoundTrip) {
  const Request r = sample_request();
  const Bytes encoded = encode_request(r);
  EXPECT_EQ(peek_kind(encoded), MsgKind::request);
  EXPECT_EQ(decode_request(encoded), r);
}

TEST(WireTest, ForwardRoundTrip) {
  const Forward f{sample_request(), to_bytes("relayer-signature")};
  const Bytes encoded = encode_forward(f);
  const Forward decoded = decode_forward(encoded);
  EXPECT_EQ(decoded.request, f.request);
  EXPECT_EQ(decoded.signature, f.signature);
  EXPECT_THROW(decode_request(encoded), DecodeError);
}

TEST(WireTest, ForwardDigestCoversAllRequestFields) {
  const Request base = sample_request();
  Request seq = base;
  seq.seq += 1;
  Request payload = base;
  payload.payload.push_back(0x00);
  EXPECT_NE(forward_digest(base), forward_digest(seq));
  EXPECT_NE(forward_digest(base), forward_digest(payload));
  EXPECT_EQ(forward_digest(base), forward_digest(sample_request()));
}

TEST(WireTest, BatchRoundTrip) {
  Batch batch;
  batch.requests.push_back(sample_request());
  Request reconfig;
  reconfig.client = 55;
  reconfig.seq = 1;
  reconfig.kind = RequestKind::reconfig;
  reconfig.payload = to_bytes("x");
  batch.requests.push_back(reconfig);

  const Batch decoded = Batch::decode(batch.encode());
  ASSERT_EQ(decoded.requests.size(), 2u);
  EXPECT_EQ(decoded.requests[0], batch.requests[0]);
  EXPECT_EQ(decoded.requests[1], batch.requests[1]);
}

TEST(WireTest, EmptyBatch) {
  Batch batch;
  EXPECT_TRUE(Batch::decode(batch.encode()).requests.empty());
}

TEST(WireTest, BatchRejectsBadKind) {
  Bytes raw = Batch{{sample_request()}}.encode();
  raw[4 + 4 + 8] = 9;  // corrupt the kind byte of the first request
  EXPECT_THROW(Batch::decode(raw), DecodeError);
}

TEST(WireTest, ReplyRoundTrip) {
  Reply reply;
  reply.client_seq = 9;
  reply.cid = 4;
  reply.payload = to_bytes("result");
  const Reply decoded = decode_reply(encode_reply(reply));
  EXPECT_EQ(decoded.client_seq, 9u);
  EXPECT_EQ(decoded.cid, 4u);
  EXPECT_EQ(decoded.payload, to_bytes("result"));
}

TEST(WireTest, ProposeWriteAcceptRoundTrip) {
  const ValueHash h = consensus::value_hash(to_bytes("batch"));

  Propose p{3, 1, to_bytes("batch")};
  const Propose p2 = decode_propose(encode_propose(p));
  EXPECT_EQ(p2.cid, 3u);
  EXPECT_EQ(p2.epoch, 1u);
  EXPECT_EQ(p2.value, to_bytes("batch"));

  WriteMsg w{3, 1, h, to_bytes("sig")};
  const WriteMsg w2 = decode_write(encode_write(w));
  EXPECT_EQ(w2.cid, 3u);
  EXPECT_EQ(w2.hash, h);
  EXPECT_EQ(w2.signature, to_bytes("sig"));

  AcceptMsg a{3, 1, h};
  const AcceptMsg a2 = decode_accept(encode_accept(a));
  EXPECT_EQ(a2.cid, 3u);
  EXPECT_EQ(a2.epoch, 1u);
  EXPECT_EQ(a2.hash, h);
}

TEST(WireTest, StopRoundTrip) {
  EXPECT_EQ(decode_stop(encode_stop(Stop{5})).next_epoch, 5u);
}

TEST(WireTest, StopDataRoundTripWithCertificate) {
  StopData sd;
  sd.next_epoch = 2;
  sd.from = 1;
  sd.last_decided = 10;
  sd.cid = 11;
  WriteCertificate cert;
  cert.cid = 11;
  cert.epoch = 1;
  cert.hash = consensus::value_hash(to_bytes("v"));
  cert.votes.push_back({0, to_bytes("s0")});
  cert.votes.push_back({2, to_bytes("s2")});
  cert.votes.push_back({3, to_bytes("s3")});
  sd.cert = cert;
  sd.value = to_bytes("v");
  sd.signature = to_bytes("stopdata-sig");

  const StopData decoded = decode_stopdata(encode_stopdata(sd));
  EXPECT_EQ(decoded.next_epoch, 2u);
  EXPECT_EQ(decoded.from, 1u);
  EXPECT_EQ(decoded.last_decided, 10u);
  EXPECT_EQ(decoded.cid, 11u);
  ASSERT_TRUE(decoded.cert.has_value());
  EXPECT_EQ(decoded.cert->hash, cert.hash);
  ASSERT_EQ(decoded.cert->votes.size(), 3u);
  EXPECT_EQ(decoded.cert->votes[1].from, 2u);
  EXPECT_EQ(decoded.value, to_bytes("v"));
  EXPECT_EQ(decoded.signature, to_bytes("stopdata-sig"));
}

TEST(WireTest, StopDataWithoutCertificate) {
  StopData sd;
  sd.next_epoch = 1;
  sd.from = 0;
  sd.cid = 1;
  const StopData decoded = decode_stopdata(encode_stopdata(sd));
  EXPECT_FALSE(decoded.cert.has_value());
}

TEST(WireTest, StopDataDigestExcludesSignature) {
  StopData sd;
  sd.next_epoch = 1;
  sd.from = 0;
  sd.cid = 1;
  const auto digest_unsigned = stopdata_digest(sd);
  sd.signature = to_bytes("sig");
  EXPECT_EQ(stopdata_digest(sd), digest_unsigned);
  sd.cid = 2;
  EXPECT_NE(stopdata_digest(sd), digest_unsigned);
}

TEST(WireTest, SyncRoundTrip) {
  Sync sync;
  sync.new_epoch = 3;
  sync.cid = 12;
  sync.stopdata_blobs.push_back(to_bytes("blob-a"));
  sync.stopdata_blobs.push_back(to_bytes("blob-b"));
  sync.proposed_value = to_bytes("value");
  const Sync decoded = decode_sync(encode_sync(sync));
  EXPECT_EQ(decoded.new_epoch, 3u);
  EXPECT_EQ(decoded.cid, 12u);
  ASSERT_EQ(decoded.stopdata_blobs.size(), 2u);
  EXPECT_EQ(decoded.stopdata_blobs[1], to_bytes("blob-b"));
  EXPECT_EQ(decoded.proposed_value, to_bytes("value"));
}

TEST(WireTest, StateTransferRoundTrip) {
  EXPECT_EQ(decode_state_request(encode_state_request(StateRequest{42})).last_decided,
            42u);

  StateReply reply;
  reply.snapshot_cid = 8;
  reply.snapshot = to_bytes("snap");
  reply.log.push_back({9, to_bytes("b9")});
  reply.log.push_back({10, to_bytes("b10")});
  reply.epoch = 2;
  const StateReply decoded = decode_state_reply(encode_state_reply(reply));
  EXPECT_EQ(decoded.snapshot_cid, 8u);
  EXPECT_EQ(decoded.snapshot, to_bytes("snap"));
  ASSERT_EQ(decoded.log.size(), 2u);
  EXPECT_EQ(decoded.log[1].cid, 10u);
  EXPECT_EQ(decoded.epoch, 2u);
}

TEST(WireTest, StateChunkRoundTrip) {
  StateChunk chunk;
  chunk.transfer_id = 77;
  chunk.index = 3;
  chunk.total = 9;
  chunk.data = to_bytes("fragment-bytes");
  const Bytes encoded = encode_state_chunk(chunk);
  EXPECT_EQ(peek_kind(encoded), MsgKind::state_chunk);
  const StateChunk decoded = decode_state_chunk(encoded);
  EXPECT_EQ(decoded.transfer_id, 77u);
  EXPECT_EQ(decoded.index, 3u);
  EXPECT_EQ(decoded.total, 9u);
  EXPECT_EQ(decoded.data, chunk.data);

  const Bytes ack = encode_state_chunk_ack(StateChunkAck{77, 3});
  EXPECT_EQ(peek_kind(ack), MsgKind::state_chunk_ack);
  EXPECT_EQ(decode_state_chunk_ack(ack).transfer_id, 77u);
  EXPECT_EQ(decode_state_chunk_ack(ack).index, 3u);
  EXPECT_TRUE(kind_known(MsgKind::state_chunk));
  EXPECT_TRUE(kind_known(MsgKind::state_chunk_ack));
}

TEST(WireTest, StateReplyDigestIgnoresEpoch) {
  StateReply reply;
  reply.snapshot_cid = 8;
  reply.snapshot = to_bytes("snap");
  reply.epoch = 2;
  const auto base = state_reply_digest(reply);
  reply.epoch = 9;
  EXPECT_EQ(state_reply_digest(reply), base);
  reply.snapshot = to_bytes("tampered");
  EXPECT_NE(state_reply_digest(reply), base);
}

TEST(WireTest, ValueExchangeRoundTrip) {
  const ValueHash h = consensus::value_hash(to_bytes("v"));
  const ValueRequest vr = decode_value_request(encode_value_request({6, h}));
  EXPECT_EQ(vr.cid, 6u);
  EXPECT_EQ(vr.hash, h);
  const ValueReply vy = decode_value_reply(encode_value_reply({6, to_bytes("v")}));
  EXPECT_EQ(vy.cid, 6u);
  EXPECT_EQ(vy.value, to_bytes("v"));
}

TEST(WireTest, PushRoundTrip) {
  const Bytes payload = to_bytes("block-bytes");
  EXPECT_EQ(decode_push(encode_push(payload)), payload);
  EXPECT_EQ(peek_kind(encode_register_receiver()), MsgKind::register_receiver);
}

TEST(WireTest, PeekKindRejectsEmpty) {
  EXPECT_THROW(peek_kind(Bytes{}), DecodeError);
}

TEST(WireTest, TruncatedMessagesThrow) {
  const Bytes propose = encode_propose(Propose{1, 0, to_bytes("v")});
  for (std::size_t cut : {1u, 5u, 12u}) {
    EXPECT_THROW(decode_propose(ByteView(propose.data(), cut)), DecodeError);
  }
}

TEST(WireTest, GenericCodecRoundTrip) {
  // The tagged codec is the single framing implementation; the named
  // encode_*/decode_* helpers are thin aliases over it.
  const Request r = sample_request();
  const Bytes via_generic = encode(r);
  EXPECT_EQ(via_generic, encode_request(r));
  EXPECT_EQ(decode<Request>(via_generic), r);
}

TEST(WireTest, GenericDecodeRejectsWrongKind) {
  const Bytes stop = encode(Stop{3, 17});
  EXPECT_THROW(decode<Propose>(stop), DecodeError);
  EXPECT_EQ(decode<Stop>(stop).next_epoch, 3u);
}

TEST(WireTest, KindNamesAndRangeChecks) {
  EXPECT_STREQ(kind_name(MsgKind::propose), "propose");
  EXPECT_STREQ(kind_name(MsgKind::push), "push");
  EXPECT_STREQ(kind_name(static_cast<MsgKind>(200)), "unknown");
  EXPECT_TRUE(kind_known(MsgKind::request));
  EXPECT_TRUE(kind_known(MsgKind::push));
  EXPECT_FALSE(kind_known(static_cast<MsgKind>(0)));
  EXPECT_FALSE(kind_known(static_cast<MsgKind>(200)));
}

TEST(WireTest, GenericDecodeRejectsTrailingBytes) {
  Bytes padded = encode(Stop{1, 2});
  padded.push_back(0x00);
  EXPECT_THROW(decode<Stop>(padded), DecodeError);
}

TEST(WireTest, ReconfigPayloadRoundTrip) {
  const Bytes add = encode_reconfig(ReconfigOp::add, 9);
  const auto [op, node] = decode_reconfig(add);
  EXPECT_EQ(op, ReconfigOp::add);
  EXPECT_EQ(node, 9u);
  EXPECT_THROW(decode_reconfig(to_bytes("zz")), DecodeError);
}

}  // namespace
}  // namespace bft::smr

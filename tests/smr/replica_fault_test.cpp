// Fault-injection scenarios: leader crash (synchronization phase), Byzantine
// leader equivocation, lossy networks, lagging replicas (state transfer) and
// membership changes (reconfiguration).
#include <gtest/gtest.h>

#include "tests/smr/test_support.hpp"

namespace bft::smr::testing {
namespace {

using sim::kMillisecond;
using sim::kSecond;

ReplicaParams fault_params() {
  ReplicaParams p;
  p.forward_timeout = runtime::msec(200);
  p.stop_timeout = runtime::msec(300);
  p.sync_deadline = runtime::msec(1500);
  p.state_transfer_gap = 8;
  p.state_transfer_retry = runtime::msec(300);
  return p;
}

TEST(ReplicaFaultTest, LeaderCrashTriggersRegencyChange) {
  SimHarness h(4, 1, fault_params());
  // Warm up with one request under leader 0.
  h.invoke_at(kMillisecond, 0, delta_payload(1));
  // Crash the initial leader, then submit more work.
  h.cluster.schedule_at(500 * kMillisecond, [&h] { h.cluster.crash(0); });
  int completions = 0;
  for (int i = 0; i < 10; ++i) {
    h.invoke_at(kSecond + i * 10 * kMillisecond, 0, delta_payload(1),
                [&](std::uint64_t, Bytes) { ++completions; });
  }
  h.cluster.run_until(15 * kSecond);
  EXPECT_EQ(completions, 10);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(h.machines[i]->value(), 11u) << "replica " << i;
    EXPECT_GE(h.replicas[i]->regency(), 1u) << "replica " << i;
  }
  EXPECT_TRUE(h.replicas_agree({1, 2, 3}));
}

TEST(ReplicaFaultTest, NonLeaderCrashIsTransparent) {
  SimHarness h(4, 1, fault_params());
  h.cluster.schedule_at(kMillisecond, [&h] { h.cluster.crash(2); });
  int completions = 0;
  for (int i = 0; i < 20; ++i) {
    h.invoke_at(10 * kMillisecond + i * 5 * kMillisecond, 0, delta_payload(1),
                [&](std::uint64_t, Bytes) { ++completions; });
  }
  h.cluster.run_until(5 * kSecond);
  EXPECT_EQ(completions, 20);
  EXPECT_EQ(h.machines[0]->value(), 20u);
  EXPECT_EQ(h.replicas[0]->regency(), 0u);  // no leader change needed
  EXPECT_TRUE(h.replicas_agree({0, 1, 3}));
}

TEST(ReplicaFaultTest, TwoCrashesWithTenReplicas) {
  SimHarness h(10, 1, fault_params());
  h.cluster.schedule_at(kMillisecond, [&h] {
    h.cluster.crash(4);
    h.cluster.crash(7);
  });
  int completions = 0;
  for (int i = 0; i < 15; ++i) {
    h.invoke_at(10 * kMillisecond + i * 10 * kMillisecond, 0, delta_payload(1),
                [&](std::uint64_t, Bytes) { ++completions; });
  }
  h.cluster.run_until(5 * kSecond);
  EXPECT_EQ(completions, 15);
  EXPECT_TRUE(h.replicas_agree({0, 1, 2, 3, 5, 6, 8, 9}));
}

// A Byzantine leader that equivocates: different proposals to different
// replicas for the same consensus slot. Safety demands no two correct
// replicas decide different values; liveness demands a regency change
// eventually orders the client's request through an honest leader.
class EquivocatingLeader : public runtime::Actor {
 public:
  explicit EquivocatingLeader(ClusterConfig config) : config_(std::move(config)) {}

  void on_message(runtime::ProcessId, ByteView payload) override {
    try {
      if (peek_kind(payload) != MsgKind::request) return;
      const Request req = decode_request(payload);
      if (equivocated_) return;
      equivocated_ = true;
      // Send a different single-request batch to each follower.
      std::uint32_t variant = 0;
      for (runtime::ProcessId member : config_.members()) {
        if (member == env().self()) continue;
        Request forged = req;
        Writer w;
        w.u64(1000 + variant);  // different payload per follower
        forged.payload = std::move(w).take();
        Batch batch;
        batch.requests.push_back(forged);
        env().send(member, encode_propose(Propose{1, 0, batch.encode()}));
        ++variant;
      }
    } catch (const DecodeError&) {
    }
  }
  void on_timer(std::uint64_t) override {}

 private:
  ClusterConfig config_;
  bool equivocated_ = false;
};

TEST(ReplicaFaultTest, ByzantineLeaderEquivocationIsContained) {
  // Processes 0..3; process 0 is the Byzantine initial leader.
  const auto cfg = ClusterConfig::classic({0, 1, 2, 3});
  ReplicaParams p = fault_params();
  runtime::SimCluster cluster(
      sim::make_lan(104, sim::kMillisecond / 10, sim::NetworkConfig{}, 3), 3);

  EquivocatingLeader evil(cfg);
  cluster.add_process(0, &evil);
  std::vector<std::unique_ptr<CounterMachine>> machines;
  std::vector<std::unique_ptr<Replica>> replicas;
  for (std::uint32_t i = 1; i < 4; ++i) {
    machines.push_back(std::make_unique<CounterMachine>());
    replicas.push_back(std::make_unique<Replica>(i, cfg, p, machines.back().get()));
    cluster.add_process(i, replicas.back().get(), sim::CpuConfig{});
  }
  Client client(cfg);
  cluster.add_process(100, &client);

  int completions = 0;
  cluster.schedule_at(kMillisecond, [&client, &completions] {
    client.invoke(delta_payload(7),
                  [&completions](std::uint64_t, Bytes) { ++completions; });
  });
  cluster.run_until(20 * kSecond);

  // Liveness: the request was eventually ordered under an honest regency.
  EXPECT_EQ(completions, 1);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(machines[i]->value(), 7u) << "replica " << (i + 1);
    EXPECT_GE(replicas[i]->regency(), 1u);
  }
  // Safety: identical histories everywhere.
  EXPECT_EQ(machines[0]->history(), machines[1]->history());
  EXPECT_EQ(machines[1]->history(), machines[2]->history());
}

TEST(ReplicaFaultTest, LossyNetworkStillMakesProgress) {
  SimHarness h(4, 1, fault_params(), SimHarness::make_classic_config(4), 11);
  // Drop 10% of consensus traffic at random (deterministically seeded).
  auto drop_rng = std::make_shared<Rng>(99);
  h.cluster.set_filter([drop_rng](runtime::ProcessId, runtime::ProcessId,
                                  ByteView payload) {
    if (payload.empty()) return runtime::FilterAction::deliver;
    const auto kind = peek_kind(payload);
    if ((kind == MsgKind::write || kind == MsgKind::accept) &&
        drop_rng->uniform(10) == 0) {
      return runtime::FilterAction::drop;
    }
    return runtime::FilterAction::deliver;
  });
  int completions = 0;
  for (int i = 0; i < 30; ++i) {
    h.invoke_at(kMillisecond + i * 20 * kMillisecond, 0, delta_payload(1),
                [&](std::uint64_t, Bytes) { ++completions; });
  }
  h.cluster.run_until(30 * kSecond);
  EXPECT_EQ(completions, 30);
  EXPECT_TRUE(h.replicas_agree({0, 1, 2, 3}));
}

TEST(ReplicaFaultTest, IsolatedReplicaCatchesUpViaStateTransfer) {
  ReplicaParams p = fault_params();
  p.checkpoint_period = 8;
  p.state_transfer_gap = 4;
  SimHarness h(4, 1, p);
  // Isolate replica 3 for the first 3 seconds (drop everything to/from it,
  // except nothing — full isolation).
  h.cluster.set_filter([&h](runtime::ProcessId from, runtime::ProcessId to,
                            ByteView) {
    if (h.cluster.now() < 3 * kSecond && (from == 3 || to == 3)) {
      return runtime::FilterAction::drop;
    }
    return runtime::FilterAction::deliver;
  });
  for (int i = 0; i < 40; ++i) {
    h.invoke_at(kMillisecond + i * 20 * kMillisecond, 0, delta_payload(1));
  }
  // More work after the partition heals, so replica 3 sees fresh traffic and
  // detects its gap.
  for (int i = 0; i < 10; ++i) {
    h.invoke_at(4 * kSecond + i * 20 * kMillisecond, 0, delta_payload(1));
  }
  h.cluster.run_until(20 * kSecond);
  EXPECT_EQ(h.machines[0]->value(), 50u);
  EXPECT_EQ(h.machines[3]->value(), 50u) << "isolated replica failed to catch up";
  EXPECT_TRUE(h.replicas_agree({0, 1, 2, 3}));
}

TEST(ReplicaFaultTest, CrashedThenRecoveredReplicaCatchesUpViaStateTransfer) {
  ReplicaParams p = fault_params();
  p.checkpoint_period = 8;
  p.state_transfer_gap = 4;
  p.stall_timeout = runtime::msec(400);
  SimHarness h(4, 1, p);
  // Replica 3 crashes at 500ms and comes back warm at 3s, having missed a
  // window of decisions that spans several checkpoints.
  h.cluster.schedule_at(500 * kMillisecond, [&h] { h.cluster.crash(3); });
  h.cluster.schedule_at(3 * kSecond, [&h] { h.cluster.recover(3); });
  for (int i = 0; i < 40; ++i) {
    h.invoke_at(kMillisecond + i * 20 * kMillisecond, 0, delta_payload(1));
  }
  // Traffic after the recovery lets the stall detector notice the gap.
  for (int i = 0; i < 10; ++i) {
    h.invoke_at(4 * kSecond + i * 20 * kMillisecond, 0, delta_payload(1));
  }
  h.cluster.run_until(20 * kSecond);
  EXPECT_EQ(h.machines[0]->value(), 50u);
  EXPECT_EQ(h.machines[3]->value(), 50u) << "recovered replica failed to catch up";
  EXPECT_TRUE(h.replicas_agree({0, 1, 2, 3}));
}

TEST(ReplicaFaultTest, ColdRestartedReplicaRebuildsFromProtocol) {
  ReplicaParams p = fault_params();
  p.checkpoint_period = 8;
  p.state_transfer_gap = 4;
  p.stall_timeout = runtime::msec(400);
  SimHarness h(4, 1, p);
  // The replacement loses all volatile state: a brand-new Replica object
  // takes over process 3 and must rebuild through state transfer alone.
  CounterMachine fresh_machine;
  Replica fresh(3, h.config, p, &fresh_machine);
  h.cluster.schedule_at(500 * kMillisecond, [&h] { h.cluster.crash(3); });
  h.cluster.schedule_at(3 * kSecond, [&h, &fresh] { h.cluster.restart(3, &fresh); });
  for (int i = 0; i < 40; ++i) {
    h.invoke_at(kMillisecond + i * 20 * kMillisecond, 0, delta_payload(1));
  }
  for (int i = 0; i < 10; ++i) {
    h.invoke_at(4 * kSecond + i * 20 * kMillisecond, 0, delta_payload(1));
  }
  h.cluster.run_until(20 * kSecond);
  EXPECT_EQ(h.machines[0]->value(), 50u);
  EXPECT_EQ(fresh_machine.value(), 50u) << "cold restart failed to catch up";
  EXPECT_EQ(fresh_machine.history(), h.machines[0]->history());
}

TEST(ReplicaFaultTest, ForgedForwardCannotPoisonDeduplication) {
  // A FORWARD injects a (client, seq) pair straight into the batch pool. If
  // replicas accepted them from anyone, one forged message claiming a huge
  // seq for a real client would execute, advance that client's dedup record,
  // and silently drop every later genuine request. Forwards are therefore
  // only accepted from cluster members, signed.
  SimHarness h(4, 1, fault_params());
  Request forged;
  forged.client = SimHarness::kClientBase;
  forged.seq = 50;  // far ahead of anything the real client sent
  forged.payload = delta_payload(999);
  for (runtime::ProcessId r = 0; r < 4; ++r) {
    // Unsigned, from a non-member (process 99): must be rejected outright.
    h.send_raw_at(5 * kMillisecond, r, encode_forward(Forward{forged, {}}));
  }
  int completions = 0;
  for (int i = 0; i < 10; ++i) {
    h.invoke_at(50 * kMillisecond + i * 10 * kMillisecond, 0, delta_payload(1),
                [&](std::uint64_t, Bytes) { ++completions; });
  }
  h.cluster.run_until(10 * kSecond);
  EXPECT_EQ(completions, 10);  // no request was dedup-dropped
  EXPECT_EQ(h.machines[0]->value(), 10u);  // and the forgery never executed
  EXPECT_TRUE(h.replicas_agree({0, 1, 2, 3}));
}

TEST(ReplicaFaultTest, WheatLeaderCrashRollsBackCleanly) {
  ReplicaParams p = fault_params();
  p.tentative_execution = true;
  auto cfg = ClusterConfig::wheat({0, 1, 2, 3, 4}, {0, 1});
  SimHarness h(5, 1, p, cfg);
  h.invoke_at(kMillisecond, 0, delta_payload(1));
  h.cluster.schedule_at(500 * kMillisecond, [&h] { h.cluster.crash(0); });
  int completions = 0;
  for (int i = 0; i < 10; ++i) {
    h.invoke_at(kSecond + i * 10 * kMillisecond, 0, delta_payload(1),
                [&](std::uint64_t, Bytes) { ++completions; });
  }
  h.cluster.run_until(20 * kSecond);
  EXPECT_EQ(completions, 10);
  EXPECT_TRUE(h.replicas_agree({1, 2, 3, 4}));
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_EQ(h.machines[i]->value(), 11u);
    EXPECT_EQ(h.replicas[i]->last_confirmed(), h.replicas[i]->last_applied());
  }
}

TEST(ReplicaFaultTest, ReconfigurationAddsLearnerNode) {
  ReplicaParams p = fault_params();
  p.checkpoint_period = 8;

  const auto cfg4 = ClusterConfig::classic({0, 1, 2, 3});
  runtime::SimCluster cluster(
      sim::make_lan(104, sim::kMillisecond / 10, sim::NetworkConfig{}, 5), 5);

  std::vector<std::unique_ptr<CounterMachine>> machines;
  std::vector<std::unique_ptr<Replica>> replicas;
  for (std::uint32_t i = 0; i < 4; ++i) {
    machines.push_back(std::make_unique<CounterMachine>());
    replicas.push_back(std::make_unique<Replica>(i, cfg4, p, machines.back().get()));
    cluster.add_process(i, replicas.back().get(), sim::CpuConfig{});
  }
  // Process 4 starts as a learner: it knows the seed config but is not in it.
  machines.push_back(std::make_unique<CounterMachine>());
  replicas.push_back(std::make_unique<Replica>(4, cfg4, p, machines.back().get()));
  cluster.add_process(4, replicas.back().get(), sim::CpuConfig{});

  Client client(cfg4);
  cluster.add_process(100, &client);

  // Phase 1: some work in the 4-node group.
  for (int i = 0; i < 10; ++i) {
    cluster.schedule_at(kMillisecond + i * 10 * kMillisecond,
                        [&client] { client.invoke_async(delta_payload(1)); });
  }
  // Phase 2: admit node 4.
  cluster.schedule_at(kSecond, [&client] {
    client.invoke(encode_reconfig(ReconfigOp::add, 4), nullptr,
                  RequestKind::reconfig);
  });
  // Phase 3: more work; node 4 must execute it too.
  for (int i = 0; i < 10; ++i) {
    cluster.schedule_at(4 * kSecond + i * 10 * kMillisecond,
                        [&client] { client.invoke_async(delta_payload(1)); });
  }
  cluster.run_until(20 * kSecond);

  EXPECT_EQ(replicas[0]->config().n(), 5u);
  EXPECT_TRUE(replicas[4]->is_active_member());
  EXPECT_EQ(machines[4]->value(), machines[0]->value());
  EXPECT_EQ(machines[0]->value(), 20u);
  EXPECT_EQ(machines[4]->history(), machines[0]->history());
}

TEST(ReplicaFaultTest, ReconfigurationRemovesNode) {
  ReplicaParams p = fault_params();
  const auto cfg5 = ClusterConfig::classic({0, 1, 2, 3, 4});
  runtime::SimCluster cluster(
      sim::make_lan(104, sim::kMillisecond / 10, sim::NetworkConfig{}, 6), 6);

  std::vector<std::unique_ptr<CounterMachine>> machines;
  std::vector<std::unique_ptr<Replica>> replicas;
  for (std::uint32_t i = 0; i < 5; ++i) {
    machines.push_back(std::make_unique<CounterMachine>());
    replicas.push_back(std::make_unique<Replica>(i, cfg5, p, machines.back().get()));
    cluster.add_process(i, replicas.back().get(), sim::CpuConfig{});
  }
  Client client(cfg5);
  cluster.add_process(100, &client);

  cluster.schedule_at(kMillisecond,
                      [&client] { client.invoke_async(delta_payload(1)); });
  cluster.schedule_at(500 * kMillisecond, [&client] {
    client.invoke(encode_reconfig(ReconfigOp::remove, 4), nullptr,
                  RequestKind::reconfig);
  });
  for (int i = 0; i < 10; ++i) {
    cluster.schedule_at(2 * kSecond + i * 10 * kMillisecond,
                        [&client] { client.invoke_async(delta_payload(1)); });
  }
  cluster.run_until(10 * kSecond);

  EXPECT_EQ(replicas[0]->config().n(), 4u);
  EXPECT_FALSE(replicas[4]->is_active_member());
  EXPECT_EQ(machines[0]->value(), 11u);
  EXPECT_EQ(machines[0]->history(), machines[1]->history());
}

}  // namespace
}  // namespace bft::smr::testing

// Shared fixtures for SMR-layer tests: a deterministic counter state machine
// (with an order-sensitive history digest) and a simulated-cluster harness.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "crypto/sha256.hpp"
#include "runtime/sim_runtime.hpp"
#include "smr/client.hpp"
#include "smr/replica.hpp"

namespace bft::smr::testing {

/// Adds the u64 in each request payload to a counter and chains a digest of
/// every executed payload, so two replicas with equal history digests are
/// guaranteed to have executed the same requests in the same order.
class CounterMachine : public StateMachine {
 public:
  Bytes execute(const Request& request, const ExecutionContext& ctx) override {
    (void)ctx;
    std::uint64_t delta = 1;
    if (request.payload.size() == 8) {
      Reader r(request.payload);
      delta = r.u64();
    }
    value_ += delta;
    Bytes chained = crypto::hash_bytes(history_);
    append(chained, request.payload);
    history_ = crypto::sha256(chained);

    Writer w;
    w.u64(value_);
    return std::move(w).take();
  }

  Bytes snapshot() const override {
    Writer w;
    w.u64(value_);
    w.raw(ByteView(history_.data(), history_.size()));
    return std::move(w).take();
  }

  void restore(ByteView snapshot) override {
    Reader r(snapshot);
    value_ = r.u64();
    history_ = crypto::hash_from_bytes(r.raw(32));
    r.expect_done();
  }

  std::uint64_t value() const { return value_; }
  const crypto::Hash256& history() const { return history_; }

 private:
  std::uint64_t value_ = 0;
  crypto::Hash256 history_{};
};

inline Bytes delta_payload(std::uint64_t delta) {
  Writer w;
  w.u64(delta);
  return std::move(w).take();
}

/// Injects raw wire messages from a dedicated process (Byzantine tests,
/// duplicate injection).
class RawSender : public runtime::Actor {
 public:
  void on_message(runtime::ProcessId, ByteView) override {}
  void on_timer(std::uint64_t) override {}
  void send_raw(runtime::ProcessId to, Bytes payload) {
    env().send(to, std::move(payload));
  }
};

/// A simulated LAN deployment: replicas at processes [0, n), clients from
/// 100, a RawSender at 99.
struct SimHarness {
  static constexpr runtime::ProcessId kClientBase = 100;
  static constexpr runtime::ProcessId kRawSenderId = 99;

  SimHarness(std::uint32_t n_replicas, std::uint32_t n_clients,
             ReplicaParams params, ClusterConfig cluster_config,
             std::uint64_t seed = 7,
             std::optional<Client::Params> client_params_opt = std::nullopt)
      : config(std::move(cluster_config)),
        cluster(sim::make_lan(kClientBase + n_clients, sim::kMillisecond / 10,
                              sim::NetworkConfig{}, seed),
                seed) {
    Client::Params client_params;
    client_params.tentative = params.tentative_execution;
    if (client_params_opt) client_params = *client_params_opt;
    cluster.add_process(kRawSenderId, &raw_sender);
    for (std::uint32_t i = 0; i < n_replicas; ++i) {
      machines.push_back(std::make_unique<CounterMachine>());
      replicas.push_back(std::make_unique<Replica>(i, config, params,
                                                   machines.back().get()));
      cluster.add_process(i, replicas.back().get(), sim::CpuConfig{});
    }
    for (std::uint32_t c = 0; c < n_clients; ++c) {
      clients.push_back(std::make_unique<Client>(config, client_params));
      cluster.add_process(kClientBase + c, clients.back().get());
    }
  }

  SimHarness(std::uint32_t n_replicas, std::uint32_t n_clients,
             ReplicaParams params, std::uint64_t seed = 7)
      : SimHarness(n_replicas, n_clients, params,
                   make_classic_config(n_replicas), seed) {}

  static ClusterConfig make_classic_config(std::uint32_t n) {
    std::vector<runtime::ProcessId> members(n);
    for (std::uint32_t i = 0; i < n; ++i) members[i] = i;
    return ClusterConfig::classic(std::move(members));
  }

  /// Schedules a raw wire message (from process 99) at simulated time `at`.
  void send_raw_at(sim::SimTime at, runtime::ProcessId to, Bytes payload) {
    cluster.schedule_at(at, [this, to, payload = std::move(payload)]() mutable {
      raw_sender.send_raw(to, std::move(payload));
    });
  }

  /// Schedules a tracked invocation from client `c` at simulated time `at`.
  void invoke_at(sim::SimTime at, std::size_t c, Bytes payload,
                 Client::ReplyCallback cb = nullptr) {
    Client* client = clients.at(c).get();
    cluster.schedule_at(at, [client, payload = std::move(payload),
                             cb = std::move(cb)]() mutable {
      client->invoke(std::move(payload), std::move(cb));
    });
  }

  /// All replicas in `which` report equal counter values and history digests.
  bool replicas_agree(const std::vector<std::size_t>& which) const {
    for (std::size_t i = 1; i < which.size(); ++i) {
      if (machines[which[i]]->value() != machines[which[0]]->value()) return false;
      if (!(machines[which[i]]->history() == machines[which[0]]->history())) {
        return false;
      }
    }
    return true;
  }

  ClusterConfig config;
  RawSender raw_sender;
  runtime::SimCluster cluster;
  std::vector<std::unique_ptr<CounterMachine>> machines;
  std::vector<std::unique_ptr<Replica>> replicas;
  std::vector<std::unique_ptr<Client>> clients;
};

}  // namespace bft::smr::testing

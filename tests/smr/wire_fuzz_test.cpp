// Decoder robustness: Byzantine peers control every byte on the wire, so
// decoders must never crash, hang or accept garbage silently — the only
// permitted failure is DecodeError. Deterministic pseudo-fuzz over random
// buffers, random truncations of valid messages, and single-byte
// corruptions.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ledger/block.hpp"
#include "ordering/node.hpp"
#include "smr/wire.hpp"

namespace bft::smr {
namespace {

template <typename DecodeFn>
void expect_no_crash(DecodeFn&& decode, ByteView data) {
  try {
    decode(data);
  } catch (const DecodeError&) {
    // The one acceptable outcome for malformed input.
  }
}

template <typename DecodeFn>
void fuzz_decoder(DecodeFn&& decode, std::uint64_t seed,
                  const Bytes& valid_sample) {
  Rng rng(seed);
  // Pure random buffers.
  for (int i = 0; i < 400; ++i) {
    expect_no_crash(decode, rng.bytes(rng.uniform(200)));
  }
  // Truncations of a valid message.
  for (std::size_t cut = 0; cut < valid_sample.size(); ++cut) {
    expect_no_crash(decode, ByteView(valid_sample.data(), cut));
  }
  // Single-byte corruptions of a valid message.
  for (int i = 0; i < 200; ++i) {
    Bytes corrupted = valid_sample;
    const std::size_t pos = rng.uniform(corrupted.size());
    corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    expect_no_crash(decode, corrupted);
  }
  // Random suffix growth (trailing garbage must be rejected, not read OOB).
  for (int i = 0; i < 50; ++i) {
    Bytes extended = valid_sample;
    append(extended, rng.bytes(1 + rng.uniform(16)));
    expect_no_crash(decode, extended);
  }
}

TEST(WireFuzzTest, Request) {
  Request r;
  r.client = 7;
  r.seq = 9;
  r.payload = to_bytes("payload");
  fuzz_decoder([](ByteView d) { return decode_request(d); }, 1,
               encode_request(r));
}

TEST(WireFuzzTest, Batch) {
  Batch b;
  for (int i = 0; i < 3; ++i) {
    Request r;
    r.client = static_cast<std::uint32_t>(i);
    r.seq = static_cast<std::uint64_t>(i);
    r.payload = to_bytes("x" + std::to_string(i));
    b.requests.push_back(std::move(r));
  }
  fuzz_decoder([](ByteView d) { return Batch::decode(d); }, 2, b.encode());
}

TEST(WireFuzzTest, Propose) {
  fuzz_decoder([](ByteView d) { return decode_propose(d); }, 3,
               encode_propose(Propose{5, 1, to_bytes("value-bytes")}));
}

TEST(WireFuzzTest, WriteAndAccept) {
  const ValueHash h = consensus::value_hash(to_bytes("v"));
  fuzz_decoder([](ByteView d) { return decode_write(d); }, 4,
               encode_write(WriteMsg{5, 1, h, to_bytes("sig")}));
  fuzz_decoder([](ByteView d) { return decode_accept(d); }, 5,
               encode_accept(AcceptMsg{5, 1, h}));
}

TEST(WireFuzzTest, StopDataWithCertificate) {
  StopData sd;
  sd.next_epoch = 3;
  sd.from = 1;
  sd.cid = 9;
  consensus::WriteCertificate cert;
  cert.cid = 9;
  cert.epoch = 2;
  cert.hash = consensus::value_hash(to_bytes("v"));
  cert.votes.push_back({0, to_bytes("s0")});
  cert.votes.push_back({2, to_bytes("s2")});
  sd.cert = cert;
  sd.value = to_bytes("v");
  sd.signature = to_bytes("sig");
  fuzz_decoder([](ByteView d) { return decode_stopdata(d); }, 6,
               encode_stopdata(sd));
}

TEST(WireFuzzTest, Sync) {
  Sync sync;
  sync.new_epoch = 3;
  sync.cid = 9;
  sync.stopdata_blobs = {to_bytes("blob-a"), to_bytes("blob-b")};
  sync.proposed_value = to_bytes("value");
  fuzz_decoder([](ByteView d) { return decode_sync(d); }, 7, encode_sync(sync));
}

TEST(WireFuzzTest, StateReply) {
  StateReply reply;
  reply.snapshot_cid = 4;
  reply.snapshot = to_bytes("snapshot-bytes");
  reply.log.push_back({5, to_bytes("b5")});
  reply.epoch = 2;
  fuzz_decoder([](ByteView d) { return decode_state_reply(d); }, 8,
               encode_state_reply(reply));
}

TEST(WireFuzzTest, LedgerBlock) {
  const ledger::Block block = ledger::make_block(
      3, crypto::sha256(to_bytes("prev")),
      {to_bytes("tx-1"), to_bytes("tx-2")});
  fuzz_decoder([](ByteView d) { return ledger::Block::decode(d); }, 9,
               block.encode());
}

TEST(WireFuzzTest, SignedBlockAndOrderedPayload) {
  const ordering::SignedBlock sb{
      "channel-0",
      ledger::make_block(1, ledger::genesis_hash("channel-0"),
                         {to_bytes("tx")}),
      to_bytes("sig")};
  fuzz_decoder([](ByteView d) { return ordering::SignedBlock::decode(d); }, 10,
               sb.encode());

  ordering::OrderedPayload payload;
  payload.channel = "channel-0";
  payload.envelope = to_bytes("tx");
  fuzz_decoder([](ByteView d) { return ordering::OrderedPayload::decode(d); },
               11, payload.encode());
}

}  // namespace
}  // namespace bft::smr

// Staged-pipeline guarantees at the Fig. 7 harness level (ctest label
// `runner`):
//   * --workers 0 is the serial reference: deterministic per seed, including
//     a byte-identical instrumented JSON export;
//   * --workers N keeps the simulation deterministic too (the prologue
//     servers are part of the model, not host threading);
//   * workers move the protocol-thread-bound cell (block 100, 40 B) and do
//     not break the sign-bound cell's Eq. (1) ceiling.
#include <gtest/gtest.h>

#include "harness.hpp"

namespace bft::bench {
namespace {

LanConfig pipeline_cell(std::uint32_t workers) {
  LanConfig config;
  config.orderers = 4;
  config.block_size = 100;  // protocol-thread-bound cell of Fig. 7
  config.envelope_size = 40;
  config.receivers = 1;
  config.warmup_s = 0.2;
  config.measure_s = 0.4;
  config.seed = 11;
  config.workers = workers;
  return config;
}

TEST(RunnerPipelineTest, SerialWorkersZeroIsByteIdenticalPerSeed) {
  LanConfig config = pipeline_cell(0);
  config.collect_metrics = true;
  const LanResult a = run_lan_throughput(config);
  const LanResult b = run_lan_throughput(config);
  EXPECT_EQ(a.throughput_tps, b.throughput_tps);
  EXPECT_EQ(a.block_rate, b.block_rate);
  EXPECT_EQ(a.delivered_at_receiver, b.delivered_at_receiver);
  EXPECT_EQ(a.leader_utilization, b.leader_utilization);
  EXPECT_EQ(a.metrics_json, b.metrics_json);  // byte-identical export
}

TEST(RunnerPipelineTest, StagedWorkersAreDeterministicPerSeed) {
  LanConfig config = pipeline_cell(4);
  config.collect_metrics = true;
  const LanResult a = run_lan_throughput(config);
  const LanResult b = run_lan_throughput(config);
  EXPECT_EQ(a.throughput_tps, b.throughput_tps);
  EXPECT_EQ(a.delivered_at_receiver, b.delivered_at_receiver);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

TEST(RunnerPipelineTest, WorkersLiftTheProtocolBoundCell) {
  // The acceptance bar for the staged pipeline: 4 prologue workers at least
  // double the serial throughput of the protocol-thread-bound cell.
  const LanResult serial = run_lan_throughput(pipeline_cell(0));
  const LanResult staged = run_lan_throughput(pipeline_cell(4));
  EXPECT_GT(serial.throughput_tps, 1000.0);
  EXPECT_GE(staged.throughput_tps, serial.throughput_tps * 2.0)
      << "serial=" << serial.throughput_tps
      << " staged=" << staged.throughput_tps;
}

TEST(RunnerPipelineTest, SignBoundCellStaysSignBound) {
  // Block size 10 with 40 B envelopes is signing-bound (Eq. 1); prologue
  // workers must not push it past the signing ceiling.
  LanConfig config = pipeline_cell(4);
  config.block_size = 10;
  const LanResult r = run_lan_throughput(config);
  EXPECT_LT(r.throughput_tps, r.sign_bound_tps);
  EXPECT_GT(r.throughput_tps, r.sign_bound_tps * 0.4);
}

}  // namespace
}  // namespace bft::bench

// Guards the benchmark harness itself: determinism (same seed -> identical
// report) and the headline orderings the paper's figures rely on.
#include <gtest/gtest.h>

#include "harness.hpp"

namespace bft::bench {
namespace {

TEST(HarnessTest, LanThroughputDeterministicPerSeed) {
  LanConfig config;
  config.orderers = 4;
  config.block_size = 10;
  config.envelope_size = 1024;
  config.receivers = 2;
  config.warmup_s = 0.2;
  config.measure_s = 0.3;
  config.seed = 42;
  const LanResult a = run_lan_throughput(config);
  const LanResult b = run_lan_throughput(config);
  EXPECT_EQ(a.throughput_tps, b.throughput_tps);
  EXPECT_EQ(a.block_rate, b.block_rate);
  EXPECT_GT(a.throughput_tps, 1000.0);
}

TEST(HarnessTest, LanThroughputDecreasesWithClusterSizeForLargeEnvelopes) {
  // §6.2: 1-4 KB envelopes are replication-protocol-bound, so more replicas
  // mean a bigger PROPOSE fan-out and lower throughput.
  double prev = 1e18;
  for (std::uint32_t orderers : {4u, 7u, 10u}) {
    LanConfig config;
    config.orderers = orderers;
    config.block_size = 10;
    config.envelope_size = 4096;
    config.receivers = 1;
    config.warmup_s = 0.2;
    config.measure_s = 0.4;
    const double tps = run_lan_throughput(config).throughput_tps;
    EXPECT_LT(tps, prev) << "n=" << orderers;
    prev = tps;
  }
}

TEST(HarnessTest, SigningBoundsSmallEnvelopeThroughput) {
  // 10-envelope blocks with 40 B envelopes are signing-bound: measured
  // throughput sits below the Eq. (1) bound but above half of the
  // contention-free bound (the paper's 84k -> ~50k effect).
  LanConfig config;
  config.orderers = 4;
  config.block_size = 10;
  config.envelope_size = 40;
  config.receivers = 1;
  config.warmup_s = 0.2;
  config.measure_s = 0.4;
  const LanResult r = run_lan_throughput(config);
  EXPECT_LT(r.throughput_tps, r.sign_bound_tps);
  EXPECT_GT(r.throughput_tps, r.sign_bound_tps * 0.4);
}

TEST(HarnessTest, GeoWheatBeatsBftSmartEverywhere) {
  GeoConfig base;
  base.block_size = 10;
  base.envelope_size = 1024;
  base.duration_s = 3.0;
  base.rate_per_frontend = 200.0;

  GeoConfig wheat = base;
  wheat.wheat = true;
  const GeoResult classic = run_geo_latency(base);
  const GeoResult fast = run_geo_latency(wheat);
  ASSERT_EQ(classic.median_ms.size(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_GT(classic.samples[j], 100u);
    EXPECT_LT(fast.median_ms[j], classic.median_ms[j])
        << classic.frontend_names[j];
  }
  // §6.3: the Vmin frontend (São Paulo, index 3) is slower than the Vmax
  // frontend (Virginia, index 2) under WHEAT.
  EXPECT_GT(fast.median_ms[3], fast.median_ms[2] + 40.0);
}

TEST(HarnessTest, LanMetricsExportDoesNotPerturbResults) {
  // Instrumentation must be a pure observer: the same seed with and without
  // collect_metrics produces identical throughput, and two instrumented runs
  // produce byte-identical JSON.
  LanConfig config;
  config.orderers = 4;
  config.block_size = 10;
  config.envelope_size = 1024;
  config.receivers = 1;
  config.warmup_s = 0.2;
  config.measure_s = 0.3;
  config.seed = 7;
  const LanResult plain = run_lan_throughput(config);
  config.collect_metrics = true;
  const LanResult a = run_lan_throughput(config);
  const LanResult b = run_lan_throughput(config);
  EXPECT_TRUE(plain.metrics_json.empty());
  EXPECT_EQ(plain.throughput_tps, a.throughput_tps);
  EXPECT_EQ(plain.block_rate, a.block_rate);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  // The export carries the documented sections and the pipeline's key stages.
  for (const char* needle :
       {"\"labels\"", "\"counters\"", "\"histograms\"", "\"trace\"",
        "\"ordering.envelopes_ordered\"", "\"smr.batches_decided\"",
        "\"sign_to_push\"", "\"push_to_frontend_accept\"",
        "\"submit_to_propose\""}) {
    EXPECT_NE(a.metrics_json.find(needle), std::string::npos) << needle;
  }
}

TEST(HarnessTest, GeoMetricsExportClosesEndToEndChain) {
  // Geo frontends submit and receive, so per-envelope chains close with
  // submit_to_frontend_accept (the latency the paper's Figs. 8/9 report).
  GeoConfig config;
  config.duration_s = 2.0;
  config.rate_per_frontend = 150.0;
  config.collect_metrics = true;
  const GeoResult r = run_geo_latency(config);
  EXPECT_NE(r.metrics_json.find("\"submit_to_frontend_accept\""),
            std::string::npos);
  EXPECT_NE(r.metrics_json.find("\"frontend.submit_to_deliver_ns\""),
            std::string::npos);
}

TEST(HarnessTest, GeoDeterministicPerSeed) {
  GeoConfig config;
  config.wheat = true;
  config.duration_s = 2.0;
  config.rate_per_frontend = 150.0;
  config.seed = 9;
  const GeoResult a = run_geo_latency(config);
  const GeoResult b = run_geo_latency(config);
  EXPECT_EQ(a.median_ms, b.median_ms);
  EXPECT_EQ(a.p90_ms, b.p90_ms);
  EXPECT_EQ(a.samples, b.samples);
}

}  // namespace
}  // namespace bft::bench

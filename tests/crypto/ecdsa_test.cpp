#include "crypto/ecdsa.hpp"

#include <gtest/gtest.h>

namespace bft::crypto {
namespace {

Hash256 msg_digest(std::string_view msg) { return sha256(to_bytes(msg)); }

TEST(EcdsaTest, SignVerifyRoundTrip) {
  Rng rng(1);
  const PrivateKey key = PrivateKey::generate(rng);
  const PublicKey pub = key.public_key();
  const Hash256 digest = msg_digest("hello ordering service");
  const Signature sig = key.sign(digest);
  EXPECT_TRUE(pub.verify(digest, sig));
}

TEST(EcdsaTest, VerifyRejectsWrongMessage) {
  Rng rng(2);
  const PrivateKey key = PrivateKey::generate(rng);
  const Signature sig = key.sign(msg_digest("block 1"));
  EXPECT_FALSE(key.public_key().verify(msg_digest("block 2"), sig));
}

TEST(EcdsaTest, VerifyRejectsWrongKey) {
  Rng rng(3);
  const PrivateKey key1 = PrivateKey::generate(rng);
  const PrivateKey key2 = PrivateKey::generate(rng);
  const Hash256 digest = msg_digest("payload");
  EXPECT_FALSE(key2.public_key().verify(digest, key1.sign(digest)));
}

TEST(EcdsaTest, VerifyRejectsTamperedSignature) {
  Rng rng(4);
  const PrivateKey key = PrivateKey::generate(rng);
  const Hash256 digest = msg_digest("tamper");
  Signature sig = key.sign(digest);
  sig.r = secp256k1::order().add(sig.r, U256::one());
  EXPECT_FALSE(key.public_key().verify(digest, sig));
}

TEST(EcdsaTest, VerifyRejectsZeroScalars) {
  Rng rng(5);
  const PrivateKey key = PrivateKey::generate(rng);
  const Hash256 digest = msg_digest("zeros");
  const Signature sig = key.sign(digest);
  EXPECT_FALSE(key.public_key().verify(digest, Signature{U256::zero(), sig.s}));
  EXPECT_FALSE(key.public_key().verify(digest, Signature{sig.r, U256::zero()}));
  EXPECT_FALSE(key.public_key().verify(
      digest, Signature{secp256k1::order_n(), sig.s}));
}

TEST(EcdsaTest, DeterministicSignatures) {
  Rng rng(6);
  const PrivateKey key = PrivateKey::generate(rng);
  const Hash256 digest = msg_digest("same message");
  EXPECT_EQ(key.sign(digest), key.sign(digest));
}

TEST(EcdsaTest, LowSNormalization) {
  Rng rng(7);
  const PrivateKey key = PrivateKey::generate(rng);
  for (int i = 0; i < 20; ++i) {
    const Signature sig = key.sign(msg_digest("msg " + std::to_string(i)));
    EXPECT_FALSE(secp256k1::half_order() < sig.s) << "high-s signature produced";
  }
}

// Community-standard RFC 6979 vectors for secp256k1 (message hashed with
// SHA-256); used by bitcoin-core, trezor and python-ecdsa test suites.
TEST(EcdsaTest, Rfc6979NonceVector1) {
  const auto key = PrivateKey::from_bytes(from_hex(
      "0000000000000000000000000000000000000000000000000000000000000001"));
  ASSERT_TRUE(key.ok());
  const U256 k = rfc6979_nonce(
      U256::from_hex("1"), msg_digest("Satoshi Nakamoto"));
  EXPECT_EQ(to_hex(k.to_be_bytes()),
            "8f8a276c19f4149656b280621e358cce24f5f52542772691ee69063b74f15d15");
}

TEST(EcdsaTest, Rfc6979SignatureVector1) {
  const auto key = PrivateKey::from_bytes(from_hex(
      "0000000000000000000000000000000000000000000000000000000000000001"));
  ASSERT_TRUE(key.ok());
  const Signature sig = key.value().sign(msg_digest("Satoshi Nakamoto"));
  EXPECT_EQ(to_hex(sig.to_bytes()),
            "934b1ea10a4b3c1757e2b0c017d0b6143ce3c9a7e6a4a49860d7a6ab210ee3d8"
            "2442ce9d2b916064108014783e923ec36b49743e2ffa1c4496f01a512aafd9e5");
}

TEST(EcdsaTest, Rfc6979SignatureVector2) {
  const auto key = PrivateKey::from_bytes(from_hex(
      "0000000000000000000000000000000000000000000000000000000000000001"));
  ASSERT_TRUE(key.ok());
  const Signature sig = key.value().sign(msg_digest(
      "All those moments will be lost in time, like tears in rain. Time to "
      "die..."));
  EXPECT_EQ(to_hex(sig.to_bytes()),
            "8600dbd41e348fe5c9465ab92d23e3db8b98b873beecd930736488696438cb6b"
            "547fe64427496db33bf66019dacbf0039c04199abb0122918601db38a72cfc21");
}

TEST(EcdsaTest, Rfc6979SignatureVector3) {
  // Private key n-1 with the same message exercises the big-scalar path.
  const auto key = PrivateKey::from_bytes(from_hex(
      "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364140"));
  ASSERT_TRUE(key.ok());
  const Hash256 digest = msg_digest("Satoshi Nakamoto");
  const Signature sig = key.value().sign(digest);
  EXPECT_TRUE(key.value().public_key().verify(digest, sig));
  EXPECT_FALSE(secp256k1::half_order() < sig.s);
}

TEST(EcdsaTest, PublicKeySerializationRoundTrip) {
  Rng rng(8);
  for (int i = 0; i < 10; ++i) {
    const PrivateKey key = PrivateKey::generate(rng);
    const PublicKey pub = key.public_key();
    const Bytes encoded = pub.to_bytes();
    ASSERT_EQ(encoded.size(), 33u);
    const auto decoded = PublicKey::from_bytes(encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), pub);
  }
}

TEST(EcdsaTest, PublicKeyRejectsGarbage) {
  EXPECT_FALSE(PublicKey::from_bytes(Bytes{1, 2, 3}).ok());
  Bytes wrong_prefix(33, 0);
  wrong_prefix[0] = 0x05;
  EXPECT_FALSE(PublicKey::from_bytes(wrong_prefix).ok());
  // x == p is out of range.
  Bytes x_too_big = from_hex(
      "02fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
  EXPECT_FALSE(PublicKey::from_bytes(x_too_big).ok());
}

TEST(EcdsaTest, SignatureSerializationRoundTrip) {
  Rng rng(9);
  const PrivateKey key = PrivateKey::generate(rng);
  const Signature sig = key.sign(msg_digest("serialize me"));
  const Bytes encoded = sig.to_bytes();
  ASSERT_EQ(encoded.size(), 64u);
  const auto decoded = Signature::from_bytes(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), sig);
}

TEST(EcdsaTest, SignatureFromBytesValidates) {
  EXPECT_FALSE(Signature::from_bytes(Bytes(63, 1)).ok());
  Bytes zero_r(64, 0);
  zero_r[63] = 1;  // r = 0, s = 1
  EXPECT_FALSE(Signature::from_bytes(zero_r).ok());
}

TEST(EcdsaTest, PrivateKeyValidation) {
  EXPECT_FALSE(PrivateKey::from_bytes(Bytes(32, 0)).ok());  // d = 0
  EXPECT_FALSE(PrivateKey::from_bytes(secp256k1::order_n().to_be_bytes()).ok());
  EXPECT_FALSE(PrivateKey::from_bytes(Bytes(31, 1)).ok());
  EXPECT_TRUE(PrivateKey::from_bytes(Bytes(32, 1)).ok());
}

TEST(EcdsaTest, FromSeedDeterministic) {
  const PrivateKey a = PrivateKey::from_seed(to_bytes("orderer-0"));
  const PrivateKey b = PrivateKey::from_seed(to_bytes("orderer-0"));
  const PrivateKey c = PrivateKey::from_seed(to_bytes("orderer-1"));
  EXPECT_EQ(a.to_bytes(), b.to_bytes());
  EXPECT_NE(a.to_bytes(), c.to_bytes());
}

TEST(EcdsaTest, ManyKeysSignVerify) {
  Rng rng(10);
  for (int i = 0; i < 8; ++i) {
    const PrivateKey key = PrivateKey::generate(rng);
    const Hash256 digest = msg_digest("bulk " + std::to_string(i));
    EXPECT_TRUE(key.public_key().verify(digest, key.sign(digest)));
  }
}

}  // namespace
}  // namespace bft::crypto

#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

namespace bft::crypto {
namespace {

std::string digest_hex(ByteView data) { return hash_hex(sha256(data)); }

// FIPS 180-4 / NIST CAVP reference vectors.
TEST(Sha256Test, EmptyInput) {
  EXPECT_EQ(digest_hex({}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(digest_hex(to_bytes("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      digest_hex(to_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  const Bytes data(1000000, static_cast<std::uint8_t>('a'));
  EXPECT_EQ(digest_hex(data),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64-byte input exercises the padding-overflow path.
  const Bytes data(64, static_cast<std::uint8_t>('x'));
  const Hash256 whole = sha256(data);
  Sha256 h;
  h.update(ByteView(data.data(), 64));
  EXPECT_EQ(h.finish(), whole);
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<std::uint8_t>(i));
  const Hash256 whole = sha256(data);

  for (std::size_t chunk : {1u, 3u, 63u, 64u, 65u, 977u}) {
    Sha256 h;
    std::size_t off = 0;
    while (off < data.size()) {
      const std::size_t take = std::min(chunk, data.size() - off);
      h.update(ByteView(data.data() + off, take));
      off += take;
    }
    EXPECT_EQ(h.finish(), whole) << "chunk size " << chunk;
  }
}

TEST(Sha256Test, ReusableAfterFinish) {
  Sha256 h;
  h.update(to_bytes("abc"));
  (void)h.finish();
  h.update(to_bytes("abc"));
  EXPECT_EQ(hash_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, DoubleSha) {
  // sha256d("") == sha256(sha256(""))
  const Hash256 once = sha256({});
  const Hash256 twice = sha256(ByteView(once.data(), once.size()));
  EXPECT_EQ(sha256d({}), twice);
}

TEST(Sha256Test, HashBytesRoundTrip) {
  const Hash256 h = sha256(to_bytes("roundtrip"));
  EXPECT_EQ(hash_from_bytes(hash_bytes(h)), h);
  EXPECT_THROW(hash_from_bytes(Bytes{1, 2, 3}), std::invalid_argument);
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(sha256(to_bytes("a")), sha256(to_bytes("b")));
}

}  // namespace
}  // namespace bft::crypto

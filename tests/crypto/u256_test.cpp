#include "crypto/u256.hpp"

#include <gtest/gtest.h>

namespace bft::crypto {
namespace {

TEST(U256Test, HexRoundTrip) {
  const U256 v = U256::from_hex("0123456789abcdef");
  EXPECT_EQ(v.limbs[0], 0x0123456789abcdefULL);
  EXPECT_EQ(v.limbs[1], 0u);
  EXPECT_EQ(to_hex(v.to_be_bytes()),
            "000000000000000000000000000000000000000000000000"
            "0123456789abcdef");
}

TEST(U256Test, BeBytesRoundTrip) {
  const U256 v = U256::from_hex(
      "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
  EXPECT_EQ(U256::from_be_bytes(v.to_be_bytes()), v);
}

TEST(U256Test, FromHexValidation) {
  EXPECT_THROW(U256::from_hex(""), std::invalid_argument);
  EXPECT_THROW(U256::from_hex(std::string(65, 'f')), std::invalid_argument);
  EXPECT_THROW(U256::from_hex("0g"), std::invalid_argument);
}

TEST(U256Test, Comparison) {
  const U256 a = U256::from_u64(5);
  const U256 b = U256::from_hex("100000000000000000");  // 2^64
  EXPECT_LT(cmp(a, b), 0);
  EXPECT_GT(cmp(b, a), 0);
  EXPECT_EQ(cmp(a, a), 0);
  EXPECT_TRUE(a < b);
}

TEST(U256Test, AddCarryPropagation) {
  U256 max;
  max.limbs = {~0ULL, ~0ULL, ~0ULL, ~0ULL};
  U256 out;
  EXPECT_EQ(add_with_carry(max, U256::one(), out), 1u);
  EXPECT_TRUE(out.is_zero());
}

TEST(U256Test, SubBorrowPropagation) {
  U256 out;
  EXPECT_EQ(sub_with_borrow(U256::zero(), U256::one(), out), 1u);
  U256 max;
  max.limbs = {~0ULL, ~0ULL, ~0ULL, ~0ULL};
  EXPECT_EQ(out, max);
}

TEST(U256Test, AddSubInverse) {
  const U256 a = U256::from_hex("deadbeefdeadbeefdeadbeefdeadbeef");
  const U256 b = U256::from_hex("123456789abcdef0");
  U256 sum, back;
  add_with_carry(a, b, sum);
  sub_with_borrow(sum, b, back);
  EXPECT_EQ(back, a);
}

TEST(U256Test, MulWideSmall) {
  const auto prod = mul_wide(U256::from_u64(7), U256::from_u64(6));
  EXPECT_EQ(prod[0], 42u);
  for (std::size_t i = 1; i < 8; ++i) EXPECT_EQ(prod[i], 0u);
}

TEST(U256Test, MulWideCrossLimb) {
  // (2^64) * (2^64) = 2^128
  const U256 x = U256::from_hex("10000000000000000");
  const auto prod = mul_wide(x, x);
  EXPECT_EQ(prod[2], 1u);
  for (std::size_t i : {0u, 1u, 3u, 4u, 5u, 6u, 7u}) EXPECT_EQ(prod[i], 0u);
}

TEST(U256Test, MulWideMaxValues) {
  // (2^256-1)^2 = 2^512 - 2^257 + 1
  U256 max;
  max.limbs = {~0ULL, ~0ULL, ~0ULL, ~0ULL};
  const auto prod = mul_wide(max, max);
  EXPECT_EQ(prod[0], 1u);
  EXPECT_EQ(prod[1], 0u);
  EXPECT_EQ(prod[2], 0u);
  EXPECT_EQ(prod[3], 0u);
  EXPECT_EQ(prod[4], ~0ULL - 1);
  EXPECT_EQ(prod[5], ~0ULL);
  EXPECT_EQ(prod[6], ~0ULL);
  EXPECT_EQ(prod[7], ~0ULL);
}

TEST(U256Test, BitAccess) {
  const U256 v = U256::from_hex("8000000000000001");
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(1));
  EXPECT_FALSE(v.bit(64));
  EXPECT_EQ(v.highest_bit(), 63);
  EXPECT_EQ(U256::zero().highest_bit(), -1);
  EXPECT_EQ(U256::one().highest_bit(), 0);
}

TEST(U256Test, Shr1) {
  const U256 v = U256::from_hex("10000000000000000");  // 2^64
  const U256 half = shr1(v);
  EXPECT_EQ(half.limbs[0], 0x8000000000000000ULL);
  EXPECT_EQ(half.limbs[1], 0u);
  EXPECT_EQ(shr1(U256::one()), U256::zero());
}

TEST(U256Test, OddEven) {
  EXPECT_TRUE(U256::one().is_odd());
  EXPECT_FALSE(U256::from_u64(4).is_odd());
}

}  // namespace
}  // namespace bft::crypto

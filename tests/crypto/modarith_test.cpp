#include "crypto/modarith.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/secp256k1.hpp"

namespace bft::crypto {
namespace {

const ModArith& fp() { return secp256k1::field(); }

U256 random_elem(Rng& rng) {
  return fp().reduce(U256::from_be_bytes(rng.bytes(32)));
}

TEST(ModArithTest, RejectsEvenModulus) {
  U256 even = U256::from_hex(
      "8000000000000000000000000000000000000000000000000000000000000000");
  EXPECT_THROW(ModArith m(even), std::invalid_argument);
}

TEST(ModArithTest, RejectsSmallModulus) {
  EXPECT_THROW(ModArith m(U256::from_u64(17)), std::invalid_argument);
}

TEST(ModArithTest, MontRoundTrip) {
  Rng rng(101);
  for (int i = 0; i < 50; ++i) {
    const U256 a = random_elem(rng);
    EXPECT_EQ(fp().from_mont(fp().to_mont(a)), a);
  }
}

TEST(ModArithTest, MulMatchesSmallIntegers) {
  const U256 a = fp().to_mont(U256::from_u64(123456789));
  const U256 b = fp().to_mont(U256::from_u64(987654321));
  const U256 prod = fp().from_mont(fp().mul(a, b));
  EXPECT_EQ(prod, U256::from_u64(123456789ULL * 987654321ULL));
}

TEST(ModArithTest, MulCommutativeAssociative) {
  Rng rng(7);
  for (int i = 0; i < 25; ++i) {
    const U256 a = fp().to_mont(random_elem(rng));
    const U256 b = fp().to_mont(random_elem(rng));
    const U256 c = fp().to_mont(random_elem(rng));
    EXPECT_EQ(fp().mul(a, b), fp().mul(b, a));
    EXPECT_EQ(fp().mul(fp().mul(a, b), c), fp().mul(a, fp().mul(b, c)));
  }
}

TEST(ModArithTest, DistributiveLaw) {
  Rng rng(8);
  for (int i = 0; i < 25; ++i) {
    const U256 a = fp().to_mont(random_elem(rng));
    const U256 b = fp().to_mont(random_elem(rng));
    const U256 c = fp().to_mont(random_elem(rng));
    EXPECT_EQ(fp().mul(a, fp().add(b, c)),
              fp().add(fp().mul(a, b), fp().mul(a, c)));
  }
}

TEST(ModArithTest, AddSubNegIdentities) {
  Rng rng(9);
  for (int i = 0; i < 25; ++i) {
    const U256 a = random_elem(rng);
    const U256 b = random_elem(rng);
    EXPECT_EQ(fp().sub(fp().add(a, b), b), a);
    EXPECT_EQ(fp().add(a, fp().neg(a)), U256::zero());
  }
  EXPECT_EQ(fp().neg(U256::zero()), U256::zero());
}

TEST(ModArithTest, AddWrapsModulus) {
  U256 m_minus_1;
  sub_with_borrow(fp().modulus(), U256::one(), m_minus_1);
  EXPECT_EQ(fp().add(m_minus_1, U256::one()), U256::zero());
  EXPECT_EQ(fp().add(m_minus_1, U256::from_u64(5)), U256::from_u64(4));
}

TEST(ModArithTest, InverseTimesSelfIsOne) {
  Rng rng(10);
  for (int i = 0; i < 20; ++i) {
    U256 a = random_elem(rng);
    if (a.is_zero()) a = U256::one();
    const U256 am = fp().to_mont(a);
    const U256 inv = fp().inv(am);
    EXPECT_EQ(fp().from_mont(fp().mul(am, inv)), U256::one());
  }
}

TEST(ModArithTest, InverseOfZeroThrows) {
  EXPECT_THROW(fp().inv(U256::zero()), std::domain_error);
}

TEST(ModArithTest, PowMatchesRepeatedMul) {
  const U256 base = fp().to_mont(U256::from_u64(3));
  U256 acc = fp().mont_one();
  for (int e = 0; e <= 20; ++e) {
    EXPECT_EQ(fp().pow(base, U256::from_u64(static_cast<std::uint64_t>(e))), acc);
    acc = fp().mul(acc, base);
  }
}

TEST(ModArithTest, FermatLittleTheorem) {
  // a^(p-1) == 1 mod p for prime p.
  Rng rng(11);
  U256 p_minus_1;
  sub_with_borrow(fp().modulus(), U256::one(), p_minus_1);
  for (int i = 0; i < 5; ++i) {
    U256 a = random_elem(rng);
    if (a.is_zero()) a = U256::from_u64(2);
    EXPECT_EQ(fp().pow(fp().to_mont(a), p_minus_1), fp().mont_one());
  }
}

TEST(ModArithTest, ReduceHandlesAboveModulus) {
  U256 above;
  add_with_carry(fp().modulus(), U256::from_u64(42), above);
  EXPECT_EQ(fp().reduce(above), U256::from_u64(42));
  EXPECT_EQ(fp().reduce(U256::from_u64(42)), U256::from_u64(42));
}

TEST(ModArithTest, ScalarFieldAlsoWorks) {
  const ModArith& fn = secp256k1::order();
  const U256 a = fn.to_mont(U256::from_u64(1234567));
  EXPECT_EQ(fn.from_mont(fn.mul(a, fn.inv(a))), U256::one());
}

}  // namespace
}  // namespace bft::crypto

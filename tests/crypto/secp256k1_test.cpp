#include "crypto/secp256k1.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace bft::crypto::secp256k1 {
namespace {

Affine mul_affine(const Affine& p, const U256& k) {
  return to_affine(scalar_mul(p, k));
}

TEST(Secp256k1Test, GeneratorOnCurve) {
  EXPECT_TRUE(on_curve(generator()));
}

TEST(Secp256k1Test, KnownMultiplesOfG) {
  // 2G and 3G from the standard secp256k1 reference tables.
  const Affine g2 = mul_affine(generator(), U256::from_u64(2));
  EXPECT_EQ(to_hex(g2.x.to_be_bytes()),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_EQ(to_hex(g2.y.to_be_bytes()),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");

  const Affine g3 = mul_affine(generator(), U256::from_u64(3));
  EXPECT_EQ(to_hex(g3.x.to_be_bytes()),
            "f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce036f9");
  EXPECT_EQ(to_hex(g3.y.to_be_bytes()),
            "388f7b0f632de8140fe337e62a37f3566500a99934c2231b6cb9fd7584b8e672");
}

TEST(Secp256k1Test, DoubleMatchesAdd) {
  const Jacobian g = to_jacobian(generator());
  const Affine via_dbl = to_affine(dbl(g));
  const Affine via_add = to_affine(add(g, g));
  EXPECT_EQ(via_dbl, via_add);
}

TEST(Secp256k1Test, MixedAddMatchesGeneralAdd) {
  const Jacobian g2 = dbl(to_jacobian(generator()));
  const Affine sum_mixed = to_affine(add_mixed(g2, generator()));
  const Affine sum_general = to_affine(add(g2, to_jacobian(generator())));
  EXPECT_EQ(sum_mixed, sum_general);
}

TEST(Secp256k1Test, AdditionCommutes) {
  const Jacobian g = to_jacobian(generator());
  const Jacobian g2 = dbl(g);
  EXPECT_EQ(to_affine(add(g, g2)), to_affine(add(g2, g)));
}

TEST(Secp256k1Test, InfinityIsIdentity) {
  const Jacobian g = to_jacobian(generator());
  const Jacobian inf = Jacobian::infinity();
  EXPECT_EQ(to_affine(add(g, inf)), generator());
  EXPECT_EQ(to_affine(add(inf, g)), generator());
  EXPECT_TRUE(dbl(inf).is_infinity());
  EXPECT_TRUE(add(inf, inf).is_infinity());
}

TEST(Secp256k1Test, InverseSumsToInfinity) {
  // G + (-G) = O, with -G = (x, p - y).
  const Affine& g = generator();
  const Affine neg_g{g.x, field().neg(g.y), false};
  EXPECT_TRUE(on_curve(neg_g));
  EXPECT_TRUE(add(to_jacobian(g), to_jacobian(neg_g)).is_infinity());
}

TEST(Secp256k1Test, OrderTimesGeneratorIsInfinity) {
  EXPECT_TRUE(scalar_mul(generator(), order_n()).is_infinity());
  EXPECT_TRUE(generator_mul(order_n()).is_infinity());
}

TEST(Secp256k1Test, NMinusOneGeneratorIsNegG) {
  U256 n_minus_1;
  sub_with_borrow(order_n(), U256::one(), n_minus_1);
  const Affine p = to_affine(generator_mul(n_minus_1));
  EXPECT_EQ(p.x, generator().x);
  EXPECT_EQ(p.y, field().neg(generator().y));
}

TEST(Secp256k1Test, GeneratorMulMatchesScalarMul) {
  Rng rng(55);
  for (int i = 0; i < 10; ++i) {
    const U256 k = order().reduce(U256::from_be_bytes(rng.bytes(32)));
    EXPECT_EQ(to_affine(generator_mul(k)), mul_affine(generator(), k));
  }
}

TEST(Secp256k1Test, ScalarMulDistributesOverAddition) {
  // (a+b)G == aG + bG for random scalars.
  Rng rng(66);
  for (int i = 0; i < 8; ++i) {
    const ModArith& fn = order();
    const U256 a = fn.reduce(U256::from_be_bytes(rng.bytes(32)));
    const U256 b = fn.reduce(U256::from_be_bytes(rng.bytes(32)));
    const U256 ab = fn.add(a, b);
    const Affine lhs = to_affine(generator_mul(ab));
    const Affine rhs = to_affine(add(generator_mul(a), generator_mul(b)));
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(Secp256k1Test, DoubleScalarMulMatchesSeparate) {
  Rng rng(77);
  for (int i = 0; i < 6; ++i) {
    const ModArith& fn = order();
    const U256 u1 = fn.reduce(U256::from_be_bytes(rng.bytes(32)));
    const U256 u2 = fn.reduce(U256::from_be_bytes(rng.bytes(32)));
    const Affine q = to_affine(generator_mul(
        fn.reduce(U256::from_be_bytes(rng.bytes(32)))));
    const Affine combined = to_affine(double_scalar_mul(u1, u2, q));
    const Affine separate =
        to_affine(add(generator_mul(u1), scalar_mul(q, u2)));
    EXPECT_EQ(combined, separate);
  }
}

TEST(Secp256k1Test, ResultsStayOnCurve) {
  Rng rng(88);
  for (int i = 0; i < 10; ++i) {
    const U256 k = order().reduce(U256::from_be_bytes(rng.bytes(32)));
    if (k.is_zero()) continue;
    EXPECT_TRUE(on_curve(to_affine(generator_mul(k))));
  }
}

TEST(Secp256k1Test, LiftXRecoversPoints) {
  Rng rng(99);
  for (int i = 0; i < 10; ++i) {
    const U256 k = order().reduce(U256::from_be_bytes(rng.bytes(32)));
    if (k.is_zero()) continue;
    const Affine p = to_affine(generator_mul(k));
    const auto lifted = lift_x(p.x, p.y.is_odd());
    ASSERT_TRUE(lifted.has_value());
    EXPECT_EQ(*lifted, p);
    const auto flipped = lift_x(p.x, !p.y.is_odd());
    ASSERT_TRUE(flipped.has_value());
    EXPECT_EQ(flipped->y, field().neg(p.y));
  }
}

TEST(Secp256k1Test, LiftXRejectsNonResidue) {
  // Scan a few x values; roughly half are non-residues.
  int rejected = 0;
  for (std::uint64_t x = 2; x < 30; ++x) {
    if (!lift_x(U256::from_u64(x), false).has_value()) ++rejected;
  }
  EXPECT_GT(rejected, 0);
}

TEST(Secp256k1Test, OnCurveRejectsOffCurvePoints) {
  Affine bogus{U256::from_u64(1), U256::from_u64(1), false};
  EXPECT_FALSE(on_curve(bogus));
  EXPECT_FALSE(on_curve(Affine{U256::zero(), U256::zero(), true}));
}

TEST(Secp256k1Test, ZeroScalarGivesInfinity) {
  EXPECT_TRUE(scalar_mul(generator(), U256::zero()).is_infinity());
  EXPECT_TRUE(generator_mul(U256::zero()).is_infinity());
}

}  // namespace
}  // namespace bft::crypto::secp256k1

#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

namespace bft::crypto {
namespace {

std::string mac_hex(ByteView key, ByteView data) {
  return hash_hex(hmac_sha256(key, data));
}

// RFC 4231 test vectors.
TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(mac_hex(key, to_bytes("Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(mac_hex(to_bytes("Jefe"), to_bytes("what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(mac_hex(key, data),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, Rfc4231Case4) {
  Bytes key;
  for (std::uint8_t i = 1; i <= 25; ++i) key.push_back(i);
  const Bytes data(50, 0xcd);
  EXPECT_EQ(mac_hex(key, data),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(mac_hex(key, to_bytes("Test Using Larger Than Block-Size Key - "
                                  "Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, Rfc4231Case7LongKeyAndData) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(mac_hex(key,
                    to_bytes("This is a test using a larger than block-size "
                             "key and a larger than block-size data. The key "
                             "needs to be hashed before being used by the "
                             "HMAC algorithm.")),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(HmacTest, StreamingMatchesOneShot) {
  const Bytes key = to_bytes("stream-key");
  const Bytes data = to_bytes("the quick brown fox jumps over the lazy dog");
  HmacSha256 mac(key);
  mac.update(ByteView(data.data(), 10));
  mac.update(ByteView(data.data() + 10, data.size() - 10));
  EXPECT_EQ(mac.finish(), hmac_sha256(key, data));
}

TEST(HmacTest, KeySensitivity) {
  const Bytes data = to_bytes("msg");
  EXPECT_NE(hmac_sha256(to_bytes("k1"), data), hmac_sha256(to_bytes("k2"), data));
}

}  // namespace
}  // namespace bft::crypto

#include "ledger/block.hpp"

#include <gtest/gtest.h>

namespace bft::ledger {
namespace {

std::vector<Bytes> sample_envelopes() {
  return {to_bytes("tx-a"), to_bytes("tx-b"), to_bytes("tx-c")};
}

TEST(BlockTest, HeaderEncodeDecodeRoundTrip) {
  BlockHeader h;
  h.number = 42;
  h.previous_hash = crypto::sha256(to_bytes("prev"));
  h.data_hash = crypto::sha256(to_bytes("data"));
  EXPECT_EQ(BlockHeader::decode(h.encode()), h);
}

TEST(BlockTest, BlockEncodeDecodeRoundTrip) {
  const Block b = make_block(7, genesis_hash("ch"), sample_envelopes());
  EXPECT_EQ(Block::decode(b.encode()), b);
}

TEST(BlockTest, EmptyBlockRoundTrip) {
  const Block b = make_block(1, genesis_hash("ch"), {});
  const Block decoded = Block::decode(b.encode());
  EXPECT_TRUE(decoded.envelopes.empty());
  EXPECT_EQ(decoded.header.data_hash, compute_data_hash({}));
}

TEST(BlockTest, MakeBlockBindsDataHash) {
  const Block b = make_block(1, genesis_hash("ch"), sample_envelopes());
  EXPECT_EQ(b.header.data_hash, compute_data_hash(sample_envelopes()));
}

TEST(BlockTest, DataHashSensitiveToContentAndOrder) {
  const auto base = compute_data_hash({to_bytes("a"), to_bytes("b")});
  EXPECT_NE(compute_data_hash({to_bytes("b"), to_bytes("a")}), base);
  EXPECT_NE(compute_data_hash({to_bytes("a")}), base);
  EXPECT_NE(compute_data_hash({to_bytes("a"), to_bytes("b"), to_bytes("")}), base);
  EXPECT_EQ(compute_data_hash({to_bytes("a"), to_bytes("b")}), base);
}

TEST(BlockTest, DataHashResistsBoundaryShifting) {
  // ["ab", "c"] must differ from ["a", "bc"] (length framing).
  EXPECT_NE(compute_data_hash({to_bytes("ab"), to_bytes("c")}),
            compute_data_hash({to_bytes("a"), to_bytes("bc")}));
}

TEST(BlockTest, HeaderDigestDependsOnEveryField) {
  BlockHeader h;
  h.number = 1;
  const auto base = h.digest();
  BlockHeader h2 = h;
  h2.number = 2;
  EXPECT_NE(h2.digest(), base);
  BlockHeader h3 = h;
  h3.previous_hash = crypto::sha256(to_bytes("x"));
  EXPECT_NE(h3.digest(), base);
  BlockHeader h4 = h;
  h4.data_hash = crypto::sha256(to_bytes("y"));
  EXPECT_NE(h4.digest(), base);
}

TEST(BlockTest, GenesisHashPerChannel) {
  EXPECT_NE(genesis_hash("a"), genesis_hash("b"));
  EXPECT_EQ(genesis_hash("a"), genesis_hash("a"));
}

}  // namespace
}  // namespace bft::ledger

#include "ledger/chain.hpp"

#include <gtest/gtest.h>

namespace bft::ledger {
namespace {

Block next_block(const BlockStore& store, std::vector<Bytes> envelopes) {
  return make_block(store.next_number(), store.expected_previous_hash(),
                    std::move(envelopes));
}

TEST(ChainTest, AppendAndQuery) {
  BlockStore store("ch");
  EXPECT_TRUE(store.empty());
  ASSERT_TRUE(store.append(next_block(store, {to_bytes("a")})).is_ok());
  ASSERT_TRUE(store.append(next_block(store, {to_bytes("b")})).is_ok());
  EXPECT_EQ(store.height(), 2u);
  EXPECT_EQ(store.at(1).envelopes[0], to_bytes("a"));
  EXPECT_EQ(store.tip().envelopes[0], to_bytes("b"));
  EXPECT_TRUE(store.verify().is_ok());
}

TEST(ChainTest, FirstBlockChainsToGenesis) {
  BlockStore store("ch");
  Block b = make_block(1, genesis_hash("other-channel"), {to_bytes("a")});
  EXPECT_FALSE(store.append(b).is_ok());
  Block good = make_block(1, genesis_hash("ch"), {to_bytes("a")});
  EXPECT_TRUE(store.append(good).is_ok());
}

TEST(ChainTest, RejectsNumberGap) {
  BlockStore store("ch");
  ASSERT_TRUE(store.append(next_block(store, {to_bytes("a")})).is_ok());
  Block skip = make_block(3, store.expected_previous_hash(), {to_bytes("c")});
  const Status s = store.append(skip);
  EXPECT_FALSE(s.is_ok());
  EXPECT_NE(s.error().find("block number"), std::string::npos);
}

TEST(ChainTest, RejectsBrokenLinkage) {
  BlockStore store("ch");
  ASSERT_TRUE(store.append(next_block(store, {to_bytes("a")})).is_ok());
  Block bad = make_block(2, crypto::sha256(to_bytes("wrong")), {to_bytes("b")});
  EXPECT_FALSE(store.append(bad).is_ok());
}

TEST(ChainTest, RejectsTamperedEnvelopes) {
  BlockStore store("ch");
  Block b = next_block(store, {to_bytes("a")});
  b.envelopes[0] = to_bytes("tampered");  // data hash now stale
  EXPECT_FALSE(store.append(b).is_ok());
}

TEST(ChainTest, DuplicateTipAppendIsIdempotent) {
  BlockStore store("ch");
  const Block b = next_block(store, {to_bytes("a")});
  ASSERT_TRUE(store.append(b).is_ok());
  EXPECT_TRUE(store.append(b).is_ok());
  EXPECT_EQ(store.height(), 1u);
}

TEST(ChainTest, OutOfRangeAccessThrows) {
  BlockStore store("ch");
  EXPECT_THROW(store.at(0), std::out_of_range);
  EXPECT_THROW(store.at(1), std::out_of_range);
  EXPECT_THROW(store.tip(), std::out_of_range);
}

TEST(ChainTest, LongChainVerifies) {
  BlockStore store("ch");
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        store.append(next_block(store, {to_bytes("tx-" + std::to_string(i))}))
            .is_ok());
  }
  EXPECT_TRUE(store.verify().is_ok());
  EXPECT_EQ(store.height(), 100u);
}

TEST(ChainTest, ForgingOneBlockBreaksAllSubsequentLinks) {
  // The property of Figure 1: block j cannot be forged without forging
  // j+1..i. We simulate by rebuilding a parallel store and checking the
  // digest chain diverges permanently after the forged block.
  BlockStore honest("ch");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        honest.append(next_block(honest, {to_bytes("tx-" + std::to_string(i))}))
            .is_ok());
  }
  BlockStore forged("ch");
  for (int i = 0; i < 5; ++i) {
    Bytes payload = i == 2 ? to_bytes("evil") : to_bytes("tx-" + std::to_string(i));
    ASSERT_TRUE(forged.append(next_block(forged, {payload})).is_ok());
  }
  // The forgery sits in block 3; every later block links differently.
  EXPECT_NE(honest.at(3).header.data_hash, forged.at(3).header.data_hash);
  for (std::uint64_t n = 4; n <= 5; ++n) {
    EXPECT_NE(honest.at(n).header.previous_hash, forged.at(n).header.previous_hash)
        << "hash chain failed to propagate the forgery at block " << n;
  }
}

}  // namespace
}  // namespace bft::ledger

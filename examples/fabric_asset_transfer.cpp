// Full Hyperledger-Fabric transaction lifecycle (Figure 2 of the paper) over
// the BFT ordering service, on the deterministic simulated runtime:
//
//   client -> endorsing peers (simulate + sign)
//          -> frontend -> BFT-SMaRt ordering cluster -> signed blocks
//          -> committing peers (validate endorsements + MVCC, apply writes)
//
// Includes a double-spend attempt that the MVCC validation rejects.
//
//   $ ./build/examples/fabric_asset_transfer
#include <cstdio>

#include "fabric/client.hpp"
#include "ordering/deployment.hpp"
#include "runtime/sim_runtime.hpp"

using namespace bft;
using fabric::TxValidation;

namespace {

constexpr runtime::ProcessId kPeerA = 200;
constexpr runtime::ProcessId kPeerB = 201;

void print_state(const fabric::Peer& peer) {
  auto show = [&](const char* key) {
    const auto v = peer.state().get(key);
    std::printf("    %-12s = %s\n", key,
                v.has_value() ? bft::to_string(*v).c_str() : "(absent)");
  };
  show("acct:alice");
  show("acct:bob");
  show("asset:car-1");
}

}  // namespace

int main() {
  // --- substrate: endorsing/committing peers and the ordering service ---
  fabric::EndorsementPolicy policy({kPeerA, kPeerB}, 2);  // AND(peerA, peerB)
  fabric::Peer peer_a(kPeerA, "channel-0", policy);
  fabric::Peer peer_b(kPeerB, "channel-0", policy);
  for (fabric::Peer* p : {&peer_a, &peer_b}) {
    p->install_chaincode(std::make_shared<fabric::TokenChaincode>());
    p->install_chaincode(std::make_shared<fabric::AssetChaincode>());
  }
  fabric::FabricClient client(300, "channel-0", policy);

  ordering::ServiceOptions options =
      ordering::ServiceOptions{}.with_nodes({0, 1, 2, 3}).with_block_size(2);
  ordering::Service service = ordering::make_service(options);

  runtime::SimCluster cluster(
      sim::make_lan(120, sim::kMillisecond / 10, sim::NetworkConfig{}, 42), 42);
  for (std::size_t i = 0; i < service.nodes.size(); ++i) {
    cluster.add_process(service.cluster.members()[i],
                        service.nodes[i].replica.get(), sim::CpuConfig{});
  }

  ordering::Frontend frontend(
      service.cluster, ordering::make_frontend_options(service, options),
      [&](const ledger::Block& block) {
        auto va = peer_a.commit_block(block);
        auto vb = peer_b.commit_block(block);
        if (!va.ok() || !vb.ok()) {
          std::fprintf(stderr, "!! commit failed\n");
          return;
        }
        std::printf("  block #%llu committed:",
                    static_cast<unsigned long long>(block.header.number));
        for (TxValidation v : va.value().results) {
          std::printf(" [%s]", fabric::to_string(v));
        }
        std::printf("\n");
      });
  cluster.add_process(100, &frontend);

  auto submit = [&](std::vector<std::string> args) {
    const auto proposal = client.make_proposal(
        args[0] == "create" || args[0] == "transfer-asset" ? "asset" : "token",
        args[0] == "transfer-asset"
            ? std::vector<std::string>{"transfer", args[1], args[2]}
            : args);
    auto envelope = client.collect_and_assemble(proposal, {&peer_a, &peer_b});
    if (!envelope.ok()) {
      std::printf("  endorsement refused: %s\n", envelope.error().c_str());
      return;
    }
    Bytes encoded = envelope.value().encode();
    cluster.schedule_at(cluster.now() + sim::kMillisecond,
                        [&frontend, encoded]() mutable {
                          frontend.submit(std::move(encoded));
                        });
  };

  std::printf("== round 1: open accounts ==\n");
  submit({"open", "alice", "100"});
  submit({"open", "bob", "10"});
  cluster.run_until(cluster.now() + sim::kSecond);
  print_state(peer_a);

  std::printf("== round 2: asset + payment ==\n");
  submit({"create", "car-1", "alice", "a red tesla"});
  submit({"transfer", "alice", "bob", "30"});
  cluster.run_until(cluster.now() + sim::kSecond);
  print_state(peer_a);

  std::printf("== round 3: double-spend attempt ==\n");
  // Both transfers endorsed against the SAME state; ordering serializes
  // them and MVCC invalidates the loser.
  submit({"transfer", "alice", "bob", "60"});
  submit({"transfer", "alice", "bob", "65"});
  cluster.run_until(cluster.now() + sim::kSecond);
  print_state(peer_a);

  const bool ledgers_match =
      peer_a.ledger().tip().header.digest() == peer_b.ledger().tip().header.digest();
  std::printf("---\nledger height %zu | peers agree: %s | chain: %s | "
              "invalid txs recorded: %llu\n",
              peer_a.ledger().height(), ledgers_match ? "yes" : "NO",
              peer_a.ledger().verify().is_ok() ? "OK" : "BROKEN",
              static_cast<unsigned long long>(peer_a.committed_invalid_txs()));
  return ledgers_match && peer_a.ledger().verify().is_ok() ? 0 : 1;
}

// One ordering node as its own OS process. Loads the shared topology config,
// builds its slice of the service (replica + ordering app + signer) and
// serves it over TCP until SIGTERM/SIGINT.
//
//   bft_node --config cluster4.cfg --id 2 [--block-size 10] [--workers 2]
//            [--metrics]
//
// --workers N sizes the node's staged-pipeline runner: N pinned workers run
// message prologues (decode + signature verification) and block signing in
// parallel, with epilogues applied in submission order on the replica's event
// loop. 0 selects the serial reference path (everything inline, the
// pre-pipeline behaviour). See DESIGN.md §10.
//
// Launch one per `node` line in the config (see scripts/run_local_cluster.sh
// for a complete localhost deployment).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

#include "common/cli.hpp"
#include "obs/export.hpp"
#include "ordering/deployment.hpp"
#include "runtime/tcp_runtime.hpp"
#include "storage/store.hpp"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  using namespace bft;

  CliFlags flags(argc, argv);
  const std::string config_path = flags.get("config", "");
  const auto id = static_cast<runtime::ProcessId>(flags.get_int("id", -1));
  ordering::ServiceOptions options;
  options.block_size = static_cast<std::size_t>(flags.get_int("block-size", 10));
  options.batch_timeout = runtime::msec(flags.get_int("batch-timeout-ms", 250));
  options.replica_params.forward_timeout = runtime::msec(300);
  options.replica_params.stop_timeout = runtime::msec(500);
  const bool want_metrics = flags.get_bool("metrics", false);
  const auto workers =
      static_cast<std::size_t>(flags.get_int("workers", 2));
  // Durable storage: on by default so a restarted process resumes its chain
  // from disk. `--data-dir none` runs memory-only (the pre-durability mode).
  const std::string data_dir =
      flags.get("data-dir", "data/node-" + std::to_string(id));
  const std::string fsync_name = flags.get("fsync", "group");
  options.replica_params.checkpoint_period =
      static_cast<std::uint64_t>(flags.get_int("checkpoint", 64));
  if (!flags.unused().empty() || config_path.empty()) {
    std::fprintf(stderr,
                 "usage: bft_node --config <topology.cfg> --id <node-id>\n"
                 "               [--block-size N] [--batch-timeout-ms N] "
                 "[--workers N] [--metrics]\n"
                 "               [--data-dir <path>|none] "
                 "[--fsync always|group|off] [--checkpoint N]\n%s\n",
                 flags.unused().c_str());
    return 2;
  }

  const runtime::Topology topology = runtime::Topology::load(config_path);
  options.nodes = topology.ids_with_role("node");
  obs::MetricsRegistry metrics;
  options.metrics = want_metrics ? &metrics : nullptr;
  options.metrics_node = id;

  std::unique_ptr<storage::NodeStore> store;
  if (data_dir != "none") {
    const auto fsync = storage::parse_fsync_policy(fsync_name);
    if (!fsync.ok()) {
      std::fprintf(stderr, "bft_node: %s\n", fsync.error().c_str());
      return 2;
    }
    storage::StoreOptions store_options;
    store_options.directory = data_dir;
    store_options.node_id = id;
    store_options.fsync = fsync.value();
    store_options.metrics = want_metrics ? &metrics : nullptr;
    auto opened = storage::NodeStore::open(std::move(store_options));
    if (!opened.ok()) {
      // Most commonly a mismatched node-id stamp: refuse to run rather than
      // replay another node's history.
      std::fprintf(stderr, "bft_node: %s\n", opened.error().c_str());
      return 3;
    }
    store = std::move(opened).take();
    options.replica_params.storage = store.get();
  }

  ordering::SingleNode single = ordering::make_node(options, id);
  runtime::TcpClusterOptions cluster_options;
  cluster_options.metrics = want_metrics ? &metrics : nullptr;
  runtime::TcpCluster cluster(topology, {id}, cluster_options);
  cluster.add_process(id, single.node.replica.get(), workers);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  cluster.start();
  std::printf("bft_node %u listening on %s (cluster of %zu, f=%u)\n", id,
              topology.at(id).address().c_str(), options.nodes.size(),
              single.cluster.quorums().f());
  if (store != nullptr) {
    // Recovery runs inside the replica's on_start, on its own event loop;
    // wait for it so the banner shows final counts (scripts assert on
    // `replayed=`).
    while (!store->recovery_complete() && !g_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::printf("bft_node %u storage: dir=%s fsync=%s replayed=%llu "
                "wal_tail=%llu torn_bytes=%llu\n",
                id, store->directory().c_str(), fsync_name.c_str(),
                static_cast<unsigned long long>(store->replayed_records()),
                static_cast<unsigned long long>(store->wal_tail_cid()),
                static_cast<unsigned long long>(store->truncated_tail_bytes()));
  }
  std::fflush(stdout);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  cluster.stop();
  if (want_metrics) {
    std::printf("%s\n", obs::to_json(metrics, nullptr).c_str());
  }
  std::printf("bft_node %u stopped (ordered %llu envelopes)\n", id,
              static_cast<unsigned long long>(single.node.app->envelopes_ordered()));
  return 0;
}

// Multi-channel ordering (§3 footnote 6): one BFT ordering service carrying
// two independent channels ("trades" and "audit"), each with its own hash
// chain and its own frontends, plus a batch timeout that flushes partial
// blocks on the quiet channel.
//
//   $ ./build/examples/multichannel
#include <cstdio>

#include "ledger/chain.hpp"
#include "ordering/deployment.hpp"
#include "runtime/sim_runtime.hpp"

using namespace bft;

int main() {
  ordering::ServiceOptions options =
      ordering::ServiceOptions{}
          .with_nodes({0, 1, 2, 3})
          .with_block_size(5)
          .with_batch_timeout(runtime::msec(250));  // flush stragglers via TTC

  ordering::Service service = ordering::make_service(options);
  runtime::SimCluster cluster(
      sim::make_lan(120, sim::kMillisecond / 10, sim::NetworkConfig{}, 77), 77);
  for (std::size_t i = 0; i < service.nodes.size(); ++i) {
    cluster.add_process(service.cluster.members()[i],
                        service.nodes[i].replica.get(), sim::CpuConfig{});
  }

  struct Channel {
    std::string name;
    ledger::BlockStore store;
    std::unique_ptr<ordering::Frontend> frontend;
  };
  std::vector<Channel> channels;
  channels.push_back({"trades", ledger::BlockStore("trades"), nullptr});
  channels.push_back({"audit", ledger::BlockStore("audit"), nullptr});
  for (std::size_t c = 0; c < channels.size(); ++c) {
    Channel& ch = channels[c];
    ordering::FrontendOptions fo =
        ordering::make_frontend_options(service, options);
    fo.channel = ch.name;
    ch.frontend = std::make_unique<ordering::Frontend>(
        service.cluster, fo, [&ch, &cluster](const ledger::Block& block) {
          if (!ch.store.append(block).is_ok()) return;
          std::printf("  [%5.0f ms] %-6s block #%llu (%zu envelopes)\n",
                      static_cast<double>(cluster.now()) / sim::kMillisecond,
                      ch.name.c_str(),
                      static_cast<unsigned long long>(block.header.number),
                      block.envelopes.size());
        });
    cluster.add_process(100 + static_cast<runtime::ProcessId>(c),
                        ch.frontend.get());
  }

  // A busy trading channel and a trickling audit channel.
  for (int i = 0; i < 23; ++i) {
    cluster.schedule_at((10 + i * 15) * sim::kMillisecond, [&channels, i] {
      channels[0].frontend->submit(to_bytes("trade-" + std::to_string(i)));
    });
  }
  for (int i = 0; i < 3; ++i) {
    cluster.schedule_at((50 + i * 200) * sim::kMillisecond, [&channels, i] {
      channels[1].frontend->submit(to_bytes("audit-" + std::to_string(i)));
    });
  }
  std::printf("two channels, one ordering service (batch timeout 250 ms):\n");
  cluster.run_until(3 * sim::kSecond);

  std::printf("---\n");
  bool ok = true;
  for (Channel& ch : channels) {
    const bool verified = ch.store.verify().is_ok();
    ok = ok && verified;
    std::printf("%-6s : height %zu, %llu envelopes delivered, chain %s\n",
                ch.name.c_str(), ch.store.height(),
                static_cast<unsigned long long>(ch.frontend->delivered_envelopes()),
                verified ? "OK" : "BROKEN");
  }
  // The trading channel fills 4 blocks of 5 and flushes 3 stragglers on
  // timeout; the audit channel never fills a block and relies on timeouts.
  ok = ok && channels[0].frontend->delivered_envelopes() == 23 &&
       channels[1].frontend->delivered_envelopes() == 3;
  return ok ? 0 : 1;
}

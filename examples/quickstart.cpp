// Quickstart: a 4-node BFT ordering service on real threads.
//
// Builds the cluster, registers a frontend, submits 25 transactions and
// prints every block the frontend assembles from 2f+1 matching node copies.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "ledger/chain.hpp"
#include "ordering/deployment.hpp"
#include "runtime/real_runtime.hpp"

using namespace bft;

int main() {
  // 1. Describe the service: four ordering nodes (f = 1), ten envelopes per
  //    block, real ECDSA block signatures.
  const ordering::ServiceOptions options =
      ordering::ServiceOptions{}.with_nodes({0, 1, 2, 3}).with_block_size(10);

  ordering::Service service = ordering::make_service(options);

  // 2. Register every node's replica with the threaded runtime. Each node
  //    gets a 4-worker staged-pipeline runner (prologue verification + block
  //    signing off the event loop, epilogues in order).
  runtime::RealCluster cluster;
  for (std::size_t i = 0; i < service.nodes.size(); ++i) {
    cluster.add_process(service.cluster.members()[i],
                        service.nodes[i].replica.get(), /*workers=*/4);
  }

  // 3. A frontend (process 100) that commits delivered blocks to a local
  //    ledger copy and prints them.
  ledger::BlockStore store("channel-0");
  std::atomic<int> delivered{0};
  ordering::Frontend frontend(
      service.cluster, ordering::make_frontend_options(service, options),
      [&](const ledger::Block& block) {
        if (!store.append(block).is_ok()) {
          std::fprintf(stderr, "!! block %llu failed chain verification\n",
                       static_cast<unsigned long long>(block.header.number));
          return;
        }
        std::printf("block #%llu  %zu envelopes  header=%s\n",
                    static_cast<unsigned long long>(block.header.number),
                    block.envelopes.size(),
                    crypto::hash_hex(block.header.digest()).substr(0, 16).c_str());
        delivered.fetch_add(1);
      });
  cluster.add_process(100, &frontend);
  cluster.start();

  // 4. Submit 25 transactions (two full blocks; five stay pending in the
  //    blockcutter until more arrive).
  cluster.post(100, [&frontend] {
    for (int i = 0; i < 25; ++i) {
      frontend.submit(to_bytes("transaction payload #" + std::to_string(i)));
    }
  });

  for (int spins = 0; spins < 600 && delivered.load() < 2; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  cluster.stop();

  std::printf("---\nledger height: %zu, chain verification: %s\n",
              store.height(), store.verify().is_ok() ? "OK" : "BROKEN");
  std::printf("frontend delivered %llu envelopes, median latency %.2f ms\n",
              static_cast<unsigned long long>(frontend.delivered_envelopes()),
              frontend.latencies().empty() ? 0.0 : frontend.latencies().median());
  return store.verify().is_ok() && delivered.load() == 2 ? 0 : 1;
}

// Geo-distributed ordering (§6.3): BFT-SMaRt (4 nodes: Oregon, Ireland,
// Sydney, São Paulo) vs WHEAT (+ Virginia, binary weights on Oregon and
// Virginia) on a simulated WAN built from measured AWS inter-region RTTs.
// Four frontends (Canada, Oregon, Virginia, São Paulo) inject ~300 tx/s each
// and report their submit-to-delivery latency.
//
//   $ ./build/examples/geo_wheat
#include <cstdio>

#include "ordering/deployment.hpp"
#include "ordering/geo.hpp"
#include "runtime/sim_runtime.hpp"

using namespace bft;

namespace {

struct GeoResult {
  std::vector<double> median_ms;
  std::vector<double> p90_ms;
};

GeoResult run(bool wheat, std::uint64_t seed) {
  const ordering::GeoTopology topology = wheat
                                             ? ordering::paper_wheat_topology()
                                             : ordering::paper_bftsmart_topology();

  ordering::ServiceOptions options;
  for (std::size_t i = 0; i < topology.node_regions.size(); ++i) {
    options.nodes.push_back(static_cast<runtime::ProcessId>(i));
  }
  if (wheat) {
    options.vmax_nodes = ordering::paper_wheat_vmax_nodes();
    options.replica_params.tentative_execution = true;
  }
  options.block_size = 10;
  options.stub_signatures = true;  // calibrated cost, no real ECDSA in the sim
  options.replica_params.sign_writes = false;
  options.replica_params.forward_timeout = runtime::sec(5);
  options.replica_params.stop_timeout = runtime::sec(10);

  ordering::Service service = ordering::make_service(options);
  runtime::SimCluster cluster(ordering::make_geo_network(topology, seed), seed);
  for (std::size_t i = 0; i < service.nodes.size(); ++i) {
    cluster.add_process(service.cluster.members()[i],
                        service.nodes[i].replica.get(), sim::CpuConfig{});
  }

  std::vector<std::unique_ptr<ordering::Frontend>> frontends;
  for (std::size_t j = 0; j < topology.frontend_regions.size(); ++j) {
    frontends.push_back(std::make_unique<ordering::Frontend>(
        service.cluster, ordering::make_frontend_options(service, options)));
    cluster.add_process(topology.frontend_base + static_cast<runtime::ProcessId>(j),
                        frontends.back().get());
  }

  // Poisson arrivals, ~300 tx/s per frontend, 1 KB envelopes, 8 s of load.
  Rng arrivals(seed ^ 0xabcd);
  for (std::size_t j = 0; j < frontends.size(); ++j) {
    ordering::Frontend* fe = frontends[j].get();
    double t_ms = 10.0;
    int counter = 0;
    while (t_ms < 8000.0) {
      t_ms += arrivals.exponential(1000.0 / 300.0);
      Bytes envelope = to_bytes("fe" + std::to_string(j) + "-tx" +
                                std::to_string(counter++) + ":");
      envelope.resize(1024, 0x5a);
      cluster.schedule_at(static_cast<sim::SimTime>(t_ms * sim::kMillisecond),
                          [fe, envelope]() mutable { fe->submit(std::move(envelope)); });
    }
  }
  cluster.run_until(12 * sim::kSecond);

  GeoResult result;
  for (const auto& fe : frontends) {
    result.median_ms.push_back(fe->latencies().median());
    result.p90_ms.push_back(fe->latencies().percentile(0.9));
  }
  return result;
}

}  // namespace

int main() {
  const char* frontend_names[] = {"Canada", "Oregon", "Virginia", "SaoPaulo"};
  std::printf("Geo-distributed ordering latency (blocks of 10 envelopes, 1 KB "
              "each, ~1200 tx/s total)\n\n");
  const GeoResult bftsmart = run(/*wheat=*/false, 1);
  const GeoResult wheat = run(/*wheat=*/true, 1);

  std::printf("%-10s | %-25s | %-25s | speedup\n", "frontend",
              "BFT-SMaRt med / p90 (ms)", "WHEAT med / p90 (ms)");
  std::printf("-----------+---------------------------+----------------------"
              "-----+--------\n");
  for (std::size_t j = 0; j < 4; ++j) {
    std::printf("%-10s | %10.0f / %10.0f | %10.0f / %10.0f | %5.2fx\n",
                frontend_names[j], bftsmart.median_ms[j], bftsmart.p90_ms[j],
                wheat.median_ms[j], wheat.p90_ms[j],
                bftsmart.median_ms[j] / wheat.median_ms[j]);
  }
  std::printf("\nWHEAT's weighted quorums + tentative execution cut the\n"
              "write path to the two Vmax replicas plus one more, roughly\n"
              "halving WAN latency (paper: 'consistently lower ... by almost "
              "50%%').\n");
  return 0;
}

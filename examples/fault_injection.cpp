// Fault injection demo: the ordering service keeps producing blocks while
// the BFT-SMaRt leader crashes mid-stream — the synchronization phase elects
// a new leader and re-proposes whatever was in flight.
//
//   $ ./build/examples/fault_injection
#include <cstdio>

#include "ledger/chain.hpp"
#include "ordering/deployment.hpp"
#include "runtime/sim_runtime.hpp"

using namespace bft;

int main() {
  smr::ReplicaParams params;
  params.forward_timeout = runtime::msec(300);
  params.stop_timeout = runtime::msec(500);
  ordering::ServiceOptions options = ordering::ServiceOptions{}
                                         .with_nodes({0, 1, 2, 3})
                                         .with_block_size(5)
                                         .with_replica_params(std::move(params));

  ordering::Service service = ordering::make_service(options);
  runtime::SimCluster cluster(
      sim::make_lan(110, sim::kMillisecond / 10, sim::NetworkConfig{}, 9), 9);
  for (std::size_t i = 0; i < service.nodes.size(); ++i) {
    cluster.add_process(service.cluster.members()[i],
                        service.nodes[i].replica.get(), sim::CpuConfig{});
  }

  ledger::BlockStore store("channel-0");
  ordering::Frontend frontend(
      service.cluster, ordering::make_frontend_options(service, options),
      [&](const ledger::Block& block) {
        if (store.append(block).is_ok()) {
          std::printf("  [%6.0f ms] block #%llu delivered (%zu envelopes)\n",
                      static_cast<double>(cluster.now()) / sim::kMillisecond,
                      static_cast<unsigned long long>(block.header.number),
                      block.envelopes.size());
        }
      });
  cluster.add_process(100, &frontend);

  // Steady stream of envelopes, one every 20 ms.
  for (int i = 0; i < 150; ++i) {
    cluster.schedule_at((10 + i * 20) * sim::kMillisecond, [&frontend, i] {
      frontend.submit(to_bytes("tx-" + std::to_string(i)));
    });
  }

  std::printf("phase 1: healthy cluster, leader is node 0\n");
  cluster.run_until(sim::kSecond);

  std::printf("phase 2: crashing the leader (node 0)...\n");
  cluster.crash(0);
  cluster.run_until(12 * sim::kSecond);

  const auto& survivor = *service.nodes[1].replica;
  std::printf("---\nregency after recovery: %u (leader is now node %u)\n",
              survivor.regency(),
              survivor.config().leader(survivor.regency()));
  std::printf("ledger height %zu, chain verification: %s\n", store.height(),
              store.verify().is_ok() ? "OK" : "BROKEN");
  std::printf("delivered %llu of 150 envelopes (the rest sit in the "
              "blockcutter waiting for a full block)\n",
              static_cast<unsigned long long>(frontend.delivered_envelopes()));
  const bool ok = store.verify().is_ok() && survivor.regency() >= 1 &&
                  frontend.delivered_envelopes() >= 145;
  return ok ? 0 : 1;
}

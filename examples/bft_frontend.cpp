// The frontend (Fabric-facing receiver/submitter) as its own OS process.
// Connects to the ordering nodes from the shared topology config, submits
// envelopes and prints every accepted block — a block is accepted only after
// 2f+1 byte-identical signed copies arrive (f+1 with --verify).
//
//   bft_frontend --config cluster4.cfg --id 100 \
//                --submit 20 --expect-blocks 2 [--verify] [--timeout-sec 30]
//
// Exits 0 once --expect-blocks blocks are delivered and chain-verified;
// non-zero on timeout. With --submit 0 it runs as a passive receiver until
// SIGTERM.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <mutex>
#include <thread>

#include "common/cli.hpp"
#include "ledger/chain.hpp"
#include "ordering/deployment.hpp"
#include "runtime/tcp_runtime.hpp"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  using namespace bft;

  CliFlags flags(argc, argv);
  const std::string config_path = flags.get("config", "");
  const auto id = static_cast<runtime::ProcessId>(flags.get_int("id", 100));
  const int submit = static_cast<int>(flags.get_int("submit", 0));
  const auto expect_blocks =
      static_cast<std::size_t>(flags.get_int("expect-blocks", 0));
  const bool verify = flags.get_bool("verify", false);
  const bool no_receive = flags.get_bool("no-receive", false);
  const auto linger =
      std::chrono::milliseconds(flags.get_int("linger-ms", 1000));
  const auto timeout = std::chrono::seconds(flags.get_int("timeout-sec", 30));
  const std::size_t block_size =
      static_cast<std::size_t>(flags.get_int("block-size", 10));
  if (!flags.unused().empty() || config_path.empty()) {
    std::fprintf(stderr,
                 "usage: bft_frontend --config <topology.cfg> [--id N]\n"
                 "                    [--submit N] [--expect-blocks N] "
                 "[--verify]\n"
                 "                    [--no-receive] [--linger-ms N]\n"
                 "                    [--block-size N] [--timeout-sec N]\n%s\n",
                 flags.unused().c_str());
    return 2;
  }

  const runtime::Topology topology = runtime::Topology::load(config_path);
  ordering::ServiceOptions options;
  options.nodes = topology.ids_with_role("node");
  options.block_size = block_size;
  ordering::FrontendOptions frontend_options =
      ordering::make_frontend_options(options);
  frontend_options.verify_signatures = verify;
  // Submit-only mode (load generator / script driver): don't register for
  // block pushes; a long-lived receiver frontend confirms delivery instead.
  frontend_options.receive_blocks = !no_receive;
  frontend_options.track_latency = !no_receive;

  const smr::ClusterConfig cluster_config =
      smr::ClusterConfig::classic(options.nodes);
  ledger::BlockStore store(frontend_options.channel);
  std::mutex store_mutex;
  std::atomic<std::size_t> blocks{0};
  ordering::Frontend frontend(
      cluster_config, frontend_options, [&](const ledger::Block& block) {
        std::lock_guard<std::mutex> lock(store_mutex);
        if (!store.append(block).is_ok()) {
          std::fprintf(stderr, "block #%llu broke the hash chain\n",
                       static_cast<unsigned long long>(block.header.number));
          std::exit(1);
        }
        std::printf("block #%llu  envelopes=%zu  copies>=quorum  chain=ok\n",
                    static_cast<unsigned long long>(block.header.number),
                    block.envelopes.size());
        std::fflush(stdout);
        blocks.fetch_add(1);
      });

  runtime::TcpCluster cluster(topology, {id});
  cluster.add_process(id, &frontend);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  cluster.start();
  std::printf("bft_frontend %u up (%zu nodes, verify=%s, quorum=%s)\n", id,
              options.nodes.size(), verify ? "yes" : "no",
              verify ? "f+1" : "2f+1");
  std::fflush(stdout);
  if (submit > 0) {
    cluster.post(id, [&frontend, submit] {
      for (int i = 0; i < submit; ++i) {
        frontend.submit(to_bytes("envelope-" + std::to_string(i)));
      }
    });
  }

  if (no_receive) {
    // Give the transport writers time to drain the submissions, then leave;
    // the receiver process is the one that asserts delivery.
    std::this_thread::sleep_for(linger);
    cluster.stop();
    std::printf("bft_frontend %u submitted %d envelopes (submit-only)\n", id,
                submit);
    return 0;
  }

  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!g_stop.load()) {
    if (expect_blocks > 0 && blocks.load() >= expect_blocks) break;
    if (expect_blocks > 0 && std::chrono::steady_clock::now() > deadline) {
      std::fprintf(stderr, "timeout: %zu/%zu blocks delivered\n", blocks.load(),
                   expect_blocks);
      cluster.stop();
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  cluster.stop();

  std::lock_guard<std::mutex> lock(store_mutex);
  if (!store.verify().is_ok()) {
    std::fprintf(stderr, "final chain verification failed\n");
    return 1;
  }
  std::printf("bft_frontend %u done: %zu blocks, %llu envelopes, chain ok\n",
              id, store.height(),
              static_cast<unsigned long long>(frontend.delivered_envelopes()));
  return 0;
}

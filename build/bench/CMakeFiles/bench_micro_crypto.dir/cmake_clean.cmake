file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_crypto.dir/bench_micro_crypto.cpp.o"
  "CMakeFiles/bench_micro_crypto.dir/bench_micro_crypto.cpp.o.d"
  "bench_micro_crypto"
  "bench_micro_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

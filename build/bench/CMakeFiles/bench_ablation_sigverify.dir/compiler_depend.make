# Empty compiler generated dependencies file for bench_ablation_sigverify.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sigverify.dir/bench_ablation_sigverify.cpp.o"
  "CMakeFiles/bench_ablation_sigverify.dir/bench_ablation_sigverify.cpp.o.d"
  "bench_ablation_sigverify"
  "bench_ablation_sigverify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sigverify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

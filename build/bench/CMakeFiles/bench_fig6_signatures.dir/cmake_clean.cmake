file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_signatures.dir/bench_fig6_signatures.cpp.o"
  "CMakeFiles/bench_fig6_signatures.dir/bench_fig6_signatures.cpp.o.d"
  "bench_fig6_signatures"
  "bench_fig6_signatures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

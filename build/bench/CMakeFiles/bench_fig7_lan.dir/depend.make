# Empty dependencies file for bench_fig7_lan.
# This may be replaced when dependencies are built.

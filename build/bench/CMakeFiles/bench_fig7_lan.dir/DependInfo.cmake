
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_lan.cpp" "bench/CMakeFiles/bench_fig7_lan.dir/bench_fig7_lan.cpp.o" "gcc" "bench/CMakeFiles/bench_fig7_lan.dir/bench_fig7_lan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/ordering/CMakeFiles/bft_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/bft_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/smr/CMakeFiles/bft_smr.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/bft_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bft_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bft_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/bft_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bft_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

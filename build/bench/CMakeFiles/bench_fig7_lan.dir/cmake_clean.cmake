file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_lan.dir/bench_fig7_lan.cpp.o"
  "CMakeFiles/bench_fig7_lan.dir/bench_fig7_lan.cpp.o.d"
  "bench_fig7_lan"
  "bench_fig7_lan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_lan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_geo.dir/bench_fig8_geo.cpp.o"
  "CMakeFiles/bench_fig8_geo.dir/bench_fig8_geo.cpp.o.d"
  "bench_fig8_geo"
  "bench_fig8_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig8_geo.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig9_geo.
# This may be replaced when dependencies are built.

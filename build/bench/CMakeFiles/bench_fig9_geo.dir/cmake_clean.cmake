file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_geo.dir/bench_fig9_geo.cpp.o"
  "CMakeFiles/bench_fig9_geo.dir/bench_fig9_geo.cpp.o.d"
  "bench_fig9_geo"
  "bench_fig9_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

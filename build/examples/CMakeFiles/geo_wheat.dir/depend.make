# Empty dependencies file for geo_wheat.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/geo_wheat.dir/geo_wheat.cpp.o"
  "CMakeFiles/geo_wheat.dir/geo_wheat.cpp.o.d"
  "geo_wheat"
  "geo_wheat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_wheat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

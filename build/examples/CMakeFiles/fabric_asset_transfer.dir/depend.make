# Empty dependencies file for fabric_asset_transfer.
# This may be replaced when dependencies are built.

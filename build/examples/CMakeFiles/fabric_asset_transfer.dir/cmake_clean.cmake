file(REMOVE_RECURSE
  "CMakeFiles/fabric_asset_transfer.dir/fabric_asset_transfer.cpp.o"
  "CMakeFiles/fabric_asset_transfer.dir/fabric_asset_transfer.cpp.o.d"
  "fabric_asset_transfer"
  "fabric_asset_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_asset_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

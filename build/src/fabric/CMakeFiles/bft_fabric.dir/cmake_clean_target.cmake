file(REMOVE_RECURSE
  "libbft_fabric.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bft_fabric.dir/chaincode.cpp.o"
  "CMakeFiles/bft_fabric.dir/chaincode.cpp.o.d"
  "CMakeFiles/bft_fabric.dir/client.cpp.o"
  "CMakeFiles/bft_fabric.dir/client.cpp.o.d"
  "CMakeFiles/bft_fabric.dir/kvstore.cpp.o"
  "CMakeFiles/bft_fabric.dir/kvstore.cpp.o.d"
  "CMakeFiles/bft_fabric.dir/peer.cpp.o"
  "CMakeFiles/bft_fabric.dir/peer.cpp.o.d"
  "CMakeFiles/bft_fabric.dir/policy.cpp.o"
  "CMakeFiles/bft_fabric.dir/policy.cpp.o.d"
  "CMakeFiles/bft_fabric.dir/types.cpp.o"
  "CMakeFiles/bft_fabric.dir/types.cpp.o.d"
  "libbft_fabric.a"
  "libbft_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bft_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bft_fabric.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/chaincode.cpp" "src/fabric/CMakeFiles/bft_fabric.dir/chaincode.cpp.o" "gcc" "src/fabric/CMakeFiles/bft_fabric.dir/chaincode.cpp.o.d"
  "/root/repo/src/fabric/client.cpp" "src/fabric/CMakeFiles/bft_fabric.dir/client.cpp.o" "gcc" "src/fabric/CMakeFiles/bft_fabric.dir/client.cpp.o.d"
  "/root/repo/src/fabric/kvstore.cpp" "src/fabric/CMakeFiles/bft_fabric.dir/kvstore.cpp.o" "gcc" "src/fabric/CMakeFiles/bft_fabric.dir/kvstore.cpp.o.d"
  "/root/repo/src/fabric/peer.cpp" "src/fabric/CMakeFiles/bft_fabric.dir/peer.cpp.o" "gcc" "src/fabric/CMakeFiles/bft_fabric.dir/peer.cpp.o.d"
  "/root/repo/src/fabric/policy.cpp" "src/fabric/CMakeFiles/bft_fabric.dir/policy.cpp.o" "gcc" "src/fabric/CMakeFiles/bft_fabric.dir/policy.cpp.o.d"
  "/root/repo/src/fabric/types.cpp" "src/fabric/CMakeFiles/bft_fabric.dir/types.cpp.o" "gcc" "src/fabric/CMakeFiles/bft_fabric.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bft_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bft_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/bft_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/smr/CMakeFiles/bft_smr.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/bft_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bft_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libbft_util.a"
)

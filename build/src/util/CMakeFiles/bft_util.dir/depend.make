# Empty dependencies file for bft_util.
# This may be replaced when dependencies are built.

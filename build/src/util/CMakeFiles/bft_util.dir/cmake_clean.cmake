file(REMOVE_RECURSE
  "CMakeFiles/bft_util.dir/stats.cpp.o"
  "CMakeFiles/bft_util.dir/stats.cpp.o.d"
  "CMakeFiles/bft_util.dir/threadpool.cpp.o"
  "CMakeFiles/bft_util.dir/threadpool.cpp.o.d"
  "libbft_util.a"
  "libbft_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bft_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bft_crypto.dir/ecdsa.cpp.o"
  "CMakeFiles/bft_crypto.dir/ecdsa.cpp.o.d"
  "CMakeFiles/bft_crypto.dir/hmac.cpp.o"
  "CMakeFiles/bft_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/bft_crypto.dir/modarith.cpp.o"
  "CMakeFiles/bft_crypto.dir/modarith.cpp.o.d"
  "CMakeFiles/bft_crypto.dir/secp256k1.cpp.o"
  "CMakeFiles/bft_crypto.dir/secp256k1.cpp.o.d"
  "CMakeFiles/bft_crypto.dir/sha256.cpp.o"
  "CMakeFiles/bft_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/bft_crypto.dir/u256.cpp.o"
  "CMakeFiles/bft_crypto.dir/u256.cpp.o.d"
  "libbft_crypto.a"
  "libbft_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bft_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bft_common.dir/bytes.cpp.o"
  "CMakeFiles/bft_common.dir/bytes.cpp.o.d"
  "CMakeFiles/bft_common.dir/cli.cpp.o"
  "CMakeFiles/bft_common.dir/cli.cpp.o.d"
  "CMakeFiles/bft_common.dir/log.cpp.o"
  "CMakeFiles/bft_common.dir/log.cpp.o.d"
  "CMakeFiles/bft_common.dir/rng.cpp.o"
  "CMakeFiles/bft_common.dir/rng.cpp.o.d"
  "CMakeFiles/bft_common.dir/serial.cpp.o"
  "CMakeFiles/bft_common.dir/serial.cpp.o.d"
  "libbft_common.a"
  "libbft_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bft_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

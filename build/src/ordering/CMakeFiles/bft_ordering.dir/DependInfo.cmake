
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ordering/blockcutter.cpp" "src/ordering/CMakeFiles/bft_ordering.dir/blockcutter.cpp.o" "gcc" "src/ordering/CMakeFiles/bft_ordering.dir/blockcutter.cpp.o.d"
  "/root/repo/src/ordering/channels.cpp" "src/ordering/CMakeFiles/bft_ordering.dir/channels.cpp.o" "gcc" "src/ordering/CMakeFiles/bft_ordering.dir/channels.cpp.o.d"
  "/root/repo/src/ordering/crash_ordering.cpp" "src/ordering/CMakeFiles/bft_ordering.dir/crash_ordering.cpp.o" "gcc" "src/ordering/CMakeFiles/bft_ordering.dir/crash_ordering.cpp.o.d"
  "/root/repo/src/ordering/deployment.cpp" "src/ordering/CMakeFiles/bft_ordering.dir/deployment.cpp.o" "gcc" "src/ordering/CMakeFiles/bft_ordering.dir/deployment.cpp.o.d"
  "/root/repo/src/ordering/frontend.cpp" "src/ordering/CMakeFiles/bft_ordering.dir/frontend.cpp.o" "gcc" "src/ordering/CMakeFiles/bft_ordering.dir/frontend.cpp.o.d"
  "/root/repo/src/ordering/geo.cpp" "src/ordering/CMakeFiles/bft_ordering.dir/geo.cpp.o" "gcc" "src/ordering/CMakeFiles/bft_ordering.dir/geo.cpp.o.d"
  "/root/repo/src/ordering/node.cpp" "src/ordering/CMakeFiles/bft_ordering.dir/node.cpp.o" "gcc" "src/ordering/CMakeFiles/bft_ordering.dir/node.cpp.o.d"
  "/root/repo/src/ordering/signer.cpp" "src/ordering/CMakeFiles/bft_ordering.dir/signer.cpp.o" "gcc" "src/ordering/CMakeFiles/bft_ordering.dir/signer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smr/CMakeFiles/bft_smr.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/bft_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bft_util.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/bft_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bft_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bft_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

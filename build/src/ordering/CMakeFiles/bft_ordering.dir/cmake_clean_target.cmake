file(REMOVE_RECURSE
  "libbft_ordering.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bft_ordering.dir/blockcutter.cpp.o"
  "CMakeFiles/bft_ordering.dir/blockcutter.cpp.o.d"
  "CMakeFiles/bft_ordering.dir/channels.cpp.o"
  "CMakeFiles/bft_ordering.dir/channels.cpp.o.d"
  "CMakeFiles/bft_ordering.dir/crash_ordering.cpp.o"
  "CMakeFiles/bft_ordering.dir/crash_ordering.cpp.o.d"
  "CMakeFiles/bft_ordering.dir/deployment.cpp.o"
  "CMakeFiles/bft_ordering.dir/deployment.cpp.o.d"
  "CMakeFiles/bft_ordering.dir/frontend.cpp.o"
  "CMakeFiles/bft_ordering.dir/frontend.cpp.o.d"
  "CMakeFiles/bft_ordering.dir/geo.cpp.o"
  "CMakeFiles/bft_ordering.dir/geo.cpp.o.d"
  "CMakeFiles/bft_ordering.dir/node.cpp.o"
  "CMakeFiles/bft_ordering.dir/node.cpp.o.d"
  "CMakeFiles/bft_ordering.dir/signer.cpp.o"
  "CMakeFiles/bft_ordering.dir/signer.cpp.o.d"
  "libbft_ordering.a"
  "libbft_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bft_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bft_ordering.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bft_consensus.dir/instance.cpp.o"
  "CMakeFiles/bft_consensus.dir/instance.cpp.o.d"
  "CMakeFiles/bft_consensus.dir/quorum.cpp.o"
  "CMakeFiles/bft_consensus.dir/quorum.cpp.o.d"
  "libbft_consensus.a"
  "libbft_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bft_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

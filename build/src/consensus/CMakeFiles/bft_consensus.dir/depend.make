# Empty dependencies file for bft_consensus.
# This may be replaced when dependencies are built.

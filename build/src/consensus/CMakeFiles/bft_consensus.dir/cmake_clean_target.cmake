file(REMOVE_RECURSE
  "libbft_consensus.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bft_runtime.dir/real_runtime.cpp.o"
  "CMakeFiles/bft_runtime.dir/real_runtime.cpp.o.d"
  "CMakeFiles/bft_runtime.dir/sim_runtime.cpp.o"
  "CMakeFiles/bft_runtime.dir/sim_runtime.cpp.o.d"
  "libbft_runtime.a"
  "libbft_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bft_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

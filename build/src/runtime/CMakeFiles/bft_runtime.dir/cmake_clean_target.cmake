file(REMOVE_RECURSE
  "libbft_runtime.a"
)

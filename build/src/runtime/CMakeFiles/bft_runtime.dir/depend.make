# Empty dependencies file for bft_runtime.
# This may be replaced when dependencies are built.

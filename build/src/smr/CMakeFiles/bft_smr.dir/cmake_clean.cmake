file(REMOVE_RECURSE
  "CMakeFiles/bft_smr.dir/client.cpp.o"
  "CMakeFiles/bft_smr.dir/client.cpp.o.d"
  "CMakeFiles/bft_smr.dir/config.cpp.o"
  "CMakeFiles/bft_smr.dir/config.cpp.o.d"
  "CMakeFiles/bft_smr.dir/replica.cpp.o"
  "CMakeFiles/bft_smr.dir/replica.cpp.o.d"
  "CMakeFiles/bft_smr.dir/wire.cpp.o"
  "CMakeFiles/bft_smr.dir/wire.cpp.o.d"
  "libbft_smr.a"
  "libbft_smr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bft_smr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

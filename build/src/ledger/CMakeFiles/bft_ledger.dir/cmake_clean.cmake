file(REMOVE_RECURSE
  "CMakeFiles/bft_ledger.dir/block.cpp.o"
  "CMakeFiles/bft_ledger.dir/block.cpp.o.d"
  "CMakeFiles/bft_ledger.dir/chain.cpp.o"
  "CMakeFiles/bft_ledger.dir/chain.cpp.o.d"
  "libbft_ledger.a"
  "libbft_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bft_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ledger/block.cpp" "src/ledger/CMakeFiles/bft_ledger.dir/block.cpp.o" "gcc" "src/ledger/CMakeFiles/bft_ledger.dir/block.cpp.o.d"
  "/root/repo/src/ledger/chain.cpp" "src/ledger/CMakeFiles/bft_ledger.dir/chain.cpp.o" "gcc" "src/ledger/CMakeFiles/bft_ledger.dir/chain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bft_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bft_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libbft_ledger.a"
)

# Empty compiler generated dependencies file for bft_ledger.
# This may be replaced when dependencies are built.

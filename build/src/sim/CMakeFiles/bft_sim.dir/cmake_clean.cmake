file(REMOVE_RECURSE
  "CMakeFiles/bft_sim.dir/cpu.cpp.o"
  "CMakeFiles/bft_sim.dir/cpu.cpp.o.d"
  "CMakeFiles/bft_sim.dir/network.cpp.o"
  "CMakeFiles/bft_sim.dir/network.cpp.o.d"
  "CMakeFiles/bft_sim.dir/scheduler.cpp.o"
  "CMakeFiles/bft_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/bft_sim.dir/wan.cpp.o"
  "CMakeFiles/bft_sim.dir/wan.cpp.o.d"
  "libbft_sim.a"
  "libbft_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bft_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

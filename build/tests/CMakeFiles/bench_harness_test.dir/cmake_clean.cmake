file(REMOVE_RECURSE
  "CMakeFiles/bench_harness_test.dir/bench/harness_test.cpp.o"
  "CMakeFiles/bench_harness_test.dir/bench/harness_test.cpp.o.d"
  "bench_harness_test"
  "bench_harness_test.pdb"
  "bench_harness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_harness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ordering_test.dir/ordering/blockcutter_test.cpp.o"
  "CMakeFiles/ordering_test.dir/ordering/blockcutter_test.cpp.o.d"
  "CMakeFiles/ordering_test.dir/ordering/channels_test.cpp.o"
  "CMakeFiles/ordering_test.dir/ordering/channels_test.cpp.o.d"
  "CMakeFiles/ordering_test.dir/ordering/crash_ordering_test.cpp.o"
  "CMakeFiles/ordering_test.dir/ordering/crash_ordering_test.cpp.o.d"
  "CMakeFiles/ordering_test.dir/ordering/frontend_test.cpp.o"
  "CMakeFiles/ordering_test.dir/ordering/frontend_test.cpp.o.d"
  "CMakeFiles/ordering_test.dir/ordering/geo_test.cpp.o"
  "CMakeFiles/ordering_test.dir/ordering/geo_test.cpp.o.d"
  "CMakeFiles/ordering_test.dir/ordering/recovery_test.cpp.o"
  "CMakeFiles/ordering_test.dir/ordering/recovery_test.cpp.o.d"
  "CMakeFiles/ordering_test.dir/ordering/service_test.cpp.o"
  "CMakeFiles/ordering_test.dir/ordering/service_test.cpp.o.d"
  "CMakeFiles/ordering_test.dir/ordering/signer_test.cpp.o"
  "CMakeFiles/ordering_test.dir/ordering/signer_test.cpp.o.d"
  "ordering_test"
  "ordering_test.pdb"
  "ordering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/smr/client_test.cpp" "tests/CMakeFiles/smr_test.dir/smr/client_test.cpp.o" "gcc" "tests/CMakeFiles/smr_test.dir/smr/client_test.cpp.o.d"
  "/root/repo/tests/smr/config_test.cpp" "tests/CMakeFiles/smr_test.dir/smr/config_test.cpp.o" "gcc" "tests/CMakeFiles/smr_test.dir/smr/config_test.cpp.o.d"
  "/root/repo/tests/smr/property_sweep_test.cpp" "tests/CMakeFiles/smr_test.dir/smr/property_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/smr_test.dir/smr/property_sweep_test.cpp.o.d"
  "/root/repo/tests/smr/replica_fault_test.cpp" "tests/CMakeFiles/smr_test.dir/smr/replica_fault_test.cpp.o" "gcc" "tests/CMakeFiles/smr_test.dir/smr/replica_fault_test.cpp.o.d"
  "/root/repo/tests/smr/replica_test.cpp" "tests/CMakeFiles/smr_test.dir/smr/replica_test.cpp.o" "gcc" "tests/CMakeFiles/smr_test.dir/smr/replica_test.cpp.o.d"
  "/root/repo/tests/smr/wire_fuzz_test.cpp" "tests/CMakeFiles/smr_test.dir/smr/wire_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/smr_test.dir/smr/wire_fuzz_test.cpp.o.d"
  "/root/repo/tests/smr/wire_test.cpp" "tests/CMakeFiles/smr_test.dir/smr/wire_test.cpp.o" "gcc" "tests/CMakeFiles/smr_test.dir/smr/wire_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smr/CMakeFiles/bft_smr.dir/DependInfo.cmake"
  "/root/repo/build/src/ordering/CMakeFiles/bft_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/bft_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bft_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/bft_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bft_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bft_util.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

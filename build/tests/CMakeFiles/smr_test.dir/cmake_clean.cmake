file(REMOVE_RECURSE
  "CMakeFiles/smr_test.dir/smr/client_test.cpp.o"
  "CMakeFiles/smr_test.dir/smr/client_test.cpp.o.d"
  "CMakeFiles/smr_test.dir/smr/config_test.cpp.o"
  "CMakeFiles/smr_test.dir/smr/config_test.cpp.o.d"
  "CMakeFiles/smr_test.dir/smr/property_sweep_test.cpp.o"
  "CMakeFiles/smr_test.dir/smr/property_sweep_test.cpp.o.d"
  "CMakeFiles/smr_test.dir/smr/replica_fault_test.cpp.o"
  "CMakeFiles/smr_test.dir/smr/replica_fault_test.cpp.o.d"
  "CMakeFiles/smr_test.dir/smr/replica_test.cpp.o"
  "CMakeFiles/smr_test.dir/smr/replica_test.cpp.o.d"
  "CMakeFiles/smr_test.dir/smr/wire_fuzz_test.cpp.o"
  "CMakeFiles/smr_test.dir/smr/wire_fuzz_test.cpp.o.d"
  "CMakeFiles/smr_test.dir/smr/wire_test.cpp.o"
  "CMakeFiles/smr_test.dir/smr/wire_test.cpp.o.d"
  "smr_test"
  "smr_test.pdb"
  "smr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/consensus_test[1]_include.cmake")
include("/root/repo/build/tests/smr_test[1]_include.cmake")
include("/root/repo/build/tests/ledger_test[1]_include.cmake")
include("/root/repo/build/tests/ordering_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/bench_harness_test[1]_include.cmake")
